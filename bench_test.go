package intellog

// One benchmark per table and figure of the paper's evaluation (§6), plus
// the ablation benches DESIGN.md calls out. Each bench regenerates its
// table/figure end-to-end (simulate → train → measure) and reports the
// headline numbers as custom metrics, so `go test -bench=. -benchmem`
// reproduces the whole evaluation.

import (
	"sync"
	"testing"

	"intellog/internal/core"
	"intellog/internal/experiments"
	"intellog/internal/logging"
)

// trainFresh retrains a model from scratch (the unit BenchmarkTraining
// times).
func trainFresh(sessions []*logging.Session) *core.Model {
	return core.Train(sessions, core.Config{})
}

// benchEnv shares one trained environment across benchmarks; building it
// (training three systems on 20 jobs each) is itself measured by
// BenchmarkTraining.
var (
	benchOnce sync.Once
	benchInst *experiments.Env
)

func benchEnvironment() *experiments.Env {
	benchOnce.Do(func() {
		benchInst = experiments.NewEnv(101, 20)
		for _, fw := range experiments.Systems {
			benchInst.Model(fw) // pre-train
		}
	})
	return benchInst
}

// BenchmarkTraining measures the full training pipeline (Spell → Intel
// Keys → HW-graph) on one system's corpus.
func BenchmarkTraining(b *testing.B) {
	env := benchEnvironment()
	sessions := env.Training(logging.Spark)
	msgs := 0
	for _, s := range sessions {
		msgs += s.Len()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trainFresh(sessions)
		if len(m.Keys) == 0 {
			b.Fatal("no keys")
		}
	}
	b.ReportMetric(float64(msgs), "log-msgs")
}

// BenchmarkTable1NLLogs regenerates Table 1.
func BenchmarkTable1NLLogs(b *testing.B) {
	env := benchEnvironment()
	var rows []experiments.NLRow
	for i := 0; i < b.N; i++ {
		rows = env.Table1(2)
	}
	for _, r := range rows {
		b.ReportMetric(r.Pct(), "pctNL-"+r.System)
	}
}

// BenchmarkFigure1LogKeys regenerates the Fig. 1 walkthrough.
func BenchmarkFigure1LogKeys(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure1() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure3POSTagging regenerates the Fig. 3 walkthrough.
func BenchmarkFigure3POSTagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure3() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure4IntelKey regenerates the Fig. 4 transformation.
func BenchmarkFigure4IntelKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ik := experiments.Figure4()
		if len(ik.Operations) < 2 {
			b.Fatal("figure 4 lost operations")
		}
	}
}

// BenchmarkTable4Extraction regenerates Table 4 (per system).
func BenchmarkTable4Extraction(b *testing.B) {
	env := benchEnvironment()
	for _, fw := range experiments.Systems {
		fw := fw
		b.Run(string(fw), func(b *testing.B) {
			var row experiments.ExtractionRow
			for i := 0; i < b.N; i++ {
				row = env.Table4(fw)
			}
			b.ReportMetric(float64(row.IntelKeys), "intel-keys")
			b.ReportMetric(float64(row.Entities.Total), "entities")
			b.ReportMetric(float64(row.Entities.FP), "entity-FP")
			b.ReportMetric(float64(row.Entities.FN), "entity-FN")
			b.ReportMetric(float64(row.OpsMissed), "ops-missed")
		})
	}
}

// BenchmarkTable5GraphStats regenerates Table 5 (per system).
func BenchmarkTable5GraphStats(b *testing.B) {
	env := benchEnvironment()
	for _, fw := range experiments.Systems {
		fw := fw
		b.Run(string(fw), func(b *testing.B) {
			var row experiments.GraphStatsRow
			for i := 0; i < b.N; i++ {
				row = env.Table5(fw)
			}
			b.ReportMetric(row.AvgSessionLen, "session-len")
			b.ReportMetric(float64(row.Groups), "groups")
			b.ReportMetric(float64(row.CritGroups), "crit-groups")
			b.ReportMetric(row.AvgSubCrit, "avg-sub-crit")
		})
	}
}

// BenchmarkFigure8SparkHWGraph renders the Spark HW-graph.
func BenchmarkFigure8SparkHWGraph(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		if env.Figure8() == "" {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkFigure9Stitch builds the S³ graph of Spark.
func BenchmarkFigure9Stitch(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		if env.Figure9() == "" {
			b.Fatal("empty S3 graph")
		}
	}
}

// BenchmarkTable6Anomaly regenerates Table 6 (per system).
func BenchmarkTable6Anomaly(b *testing.B) {
	env := benchEnvironment()
	for _, fw := range experiments.Systems {
		fw := fw
		b.Run(string(fw), func(b *testing.B) {
			var row experiments.DetectionRow
			for i := 0; i < b.N; i++ {
				row, _ = env.Table6(fw)
			}
			b.ReportMetric(float64(row.Detected), "detected")
			b.ReportMetric(float64(row.FP), "FP")
			b.ReportMetric(float64(row.FN), "FN")
			b.ReportMetric(float64(row.PB), "unexpected-found")
		})
	}
}

// BenchmarkTable7CaseStudies runs the three case studies.
func BenchmarkTable7CaseStudies(b *testing.B) {
	env := benchEnvironment()
	isolated := 0.0
	for i := 0; i < b.N; i++ {
		isolated = 0
		if env.CaseStudy1().RootCauseIsolated {
			isolated++
		}
		s, z := env.CaseStudy2()
		if s.RootCauseIsolated {
			isolated++
		}
		if z.RootCauseIsolated {
			isolated++
		}
		if env.CaseStudy3().RootCauseIsolated {
			isolated++
		}
	}
	b.ReportMetric(isolated, "cases-isolated-of-4")
}

// BenchmarkTable8Comparison regenerates the tool comparison.
func BenchmarkTable8Comparison(b *testing.B) {
	env := benchEnvironment()
	var rows []experiments.ComparisonRow
	for i := 0; i < b.N; i++ {
		rows = env.Table8()
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Precision, "P%-"+r.Tool)
		b.ReportMetric(100*r.Recall, "R%-"+r.Tool)
	}
}

// BenchmarkTensorFlowExtension runs the §9 future-work experiment.
func BenchmarkTensorFlowExtension(b *testing.B) {
	env := benchEnvironment()
	var r experiments.TFExtensionResult
	for i := 0; i < b.N; i++ {
		r = env.TensorFlowExtension(10)
	}
	detected := 0.0
	for _, ok := range []bool{r.KillDetected, r.NetDetected, r.StallDetected} {
		if ok {
			detected++
		}
	}
	b.ReportMetric(detected, "faults-detected-of-3")
	b.ReportMetric(float64(r.CleanFP), "clean-FP")
}

// BenchmarkCloudSeerClaim runs the §8 automaton contrast.
func BenchmarkCloudSeerClaim(b *testing.B) {
	env := benchEnvironment()
	var c experiments.CloudSeerClaim
	for i := 0; i < b.N; i++ {
		c = env.CloudSeerExperiment()
	}
	if len(c.Points) > 0 {
		b.ReportMetric(100*c.Points[0].NovaFPRate, "novaFP%-small-train")
		b.ReportMetric(100*c.Points[0].SparkFPRate, "sparkFP%-small-train")
	}
	b.ReportMetric(c.SparkBranching, "spark-branching")
}

// BenchmarkAblationSpellThreshold sweeps Spell's t.
func BenchmarkAblationSpellThreshold(b *testing.B) {
	env := benchEnvironment()
	var pts []experiments.SpellThresholdPoint
	for i := 0; i < b.N; i++ {
		pts = env.AblationSpellThreshold(logging.MapReduce, nil)
	}
	for _, p := range pts {
		if p.T == 1.7 {
			b.ReportMetric(float64(p.Keys), "keys-at-1.7")
		}
	}
}

// BenchmarkAblationLastWords measures Algorithm 1's suffix rule.
func BenchmarkAblationLastWords(b *testing.B) {
	env := benchEnvironment()
	var lw experiments.LastWordsAblation
	for i := 0; i < b.N; i++ {
		lw = env.AblationLastWords(logging.Spark)
	}
	b.ReportMetric(float64(lw.WithRule), "groups-with-rule")
	b.ReportMetric(float64(lw.WithoutRule), "groups-without-rule")
}

// BenchmarkAblationCriticalKeys measures critical-key marking.
func BenchmarkAblationCriticalKeys(b *testing.B) {
	env := benchEnvironment()
	var ck experiments.CriticalKeysAblation
	for i := 0; i < b.N; i++ {
		ck = env.AblationCriticalKeys(logging.Spark, 4)
	}
	b.ReportMetric(float64(ck.DetectedWith), "kills-detected-with")
	b.ReportMetric(float64(ck.DetectedWithout), "kills-detected-without")
}

// BenchmarkAblationDeepLogTopG sweeps DeepLog's g.
func BenchmarkAblationDeepLogTopG(b *testing.B) {
	env := benchEnvironment()
	var pts []experiments.DeepLogGPoint
	for i := 0; i < b.N; i++ {
		pts = env.AblationDeepLogTopG(logging.Spark, []int{1, 9})
	}
	for _, p := range pts {
		if p.G == 9 {
			b.ReportMetric(100*p.Precision, "P%-g9")
		}
	}
}
