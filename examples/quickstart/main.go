// Quickstart: simulate a small Spark cluster, train IntelLog on clean
// runs, then detect an injected SIGKILL. This is the end-to-end flow of
// Fig. 2 in ~40 lines.
package main

import (
	"fmt"

	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	// A 8-node simulated YARN cluster and a HiBench-style job generator.
	cluster := sim.NewCluster(8, 42)
	gen := workload.NewGenerator(cluster, 43)

	// Train on clean runs (the paper trains on successful jobs only).
	training := gen.TrainingCorpus(logging.Spark, 10)
	model := core.Train(training, core.Config{})
	fmt.Printf("trained on %d sessions: %d Intel Keys, %d entity groups\n",
		len(training), len(model.Keys), len(model.Graph.Nodes))

	// Inject a SIGKILL into one container of a new job and detect.
	job := gen.Submit(logging.Spark, sim.FaultKill)
	report := model.Detect(job.Sessions)
	fmt.Printf("\njob %q: %d sessions, %d problematic\n",
		job.Spec.Name, len(job.Sessions), len(report.ProblematicSessions()))
	for _, a := range report.Anomalies {
		fmt.Printf("  [%s] %s: %s\n", a.Session, a.Kind, a.Detail)
	}

	// Ground truth for comparison.
	fmt.Println("\nground truth (sessions the fault touched):")
	for sid := range job.Affected {
		fmt.Printf("  %s\n", sid)
	}
}
