// Anomalyhunt reproduces the paper's case study 1 diagnosis flow: a
// MapReduce WordCount job suffers a network failure on one host; IntelLog
// narrows 200+ sessions to the problematic few, transforms the unexpected
// messages to Intel Messages, and two GroupBy queries isolate the failing
// host.
package main

import (
	"fmt"
	"sort"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/extract"
	"intellog/internal/intelstore"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	cluster := sim.NewCluster(26, 11)
	gen := workload.NewGenerator(cluster, 12)
	model := core.Train(gen.TrainingCorpus(logging.MapReduce, 12), core.Config{})

	// A 24GB WordCount with a network failure injected mid-run.
	job := cluster.RunJob(sim.JobSpec{
		Framework: logging.MapReduce, Name: "WordCount",
		InputMB: 24 * 1024, Containers: 32, CoresPerContainer: 8, MemoryMB: 4096,
	}, sim.FaultNetwork)

	report := model.Detect(job.Sessions)
	problematic := report.ProblematicSessions()
	fmt.Printf("step 1: IntelLog reports %d problematic sessions out of %d\n",
		len(problematic), len(job.Sessions))

	// Step 2: the unexpected messages, transformed to Intel Messages.
	var unexpected []*extract.Message
	groups := map[string]bool{}
	for _, a := range report.ByKind(detect.UnexpectedMessage) {
		if a.Extracted != nil {
			unexpected = append(unexpected, a.Extracted)
			groups[a.Group] = true
		}
	}
	fmt.Printf("step 2: %d unexpected messages; entity groups involved: %v\n",
		len(unexpected), sortedKeys(groups))

	// Step 3: GroupBy FETCHER — which fetchers hit connection failures?
	store := intelstore.New(unexpected)
	byFetcher := store.GroupByIdentifier("FETCHER")
	fmt.Printf("step 3: GroupBy FETCHER -> %d fetcher groups with failures\n", len(byFetcher))

	// Step 4: GroupBy ADDR — the failures name exactly one host.
	byAddr := store.GroupByLocality("ADDR")
	fmt.Printf("step 4: GroupBy ADDR -> %d group(s):\n", len(byAddr))
	for addr, g := range byAddr {
		fmt.Printf("  %s: %d failure messages\n", addr, g.Len())
	}
	if len(byAddr) == 1 {
		fmt.Println("\nroot cause isolated: all fetch failures point at a single host.")
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
