// Mlmonitor demonstrates the paper's §9 future work: IntelLog applied,
// unchanged, to a distributed machine-learning system (TensorFlow with
// parameter servers and workers). It reconstructs the training workflow,
// detects a parameter-server connectivity failure, and uses the Intel
// Message store's time-series projection to follow the training loss —
// the "metrics values" facet of Intel Messages (§3.3).
package main

import (
	"fmt"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/intelstore"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	cluster := sim.NewCluster(16, 31)
	gen := workload.NewGenerator(cluster, 32)

	model := core.Train(gen.TrainingCorpus(logging.TensorFlow, 10), core.Config{})
	fmt.Printf("trained on distributed-TF logs: %d Intel Keys, %d entity groups\n",
		len(model.Keys), len(model.Graph.Nodes))
	fmt.Println("\ntraining workflow (HW-graph):")
	fmt.Print(model.Graph.Render())

	// A healthy run: follow the loss series via the Intel Message store.
	run := gen.Submit(logging.TensorFlow, sim.FaultNone)
	store := intelstore.New(model.Messages(run.Sessions))
	series := store.Series("")
	stats := store.Stats("")
	fmt.Printf("\nloss series across %d workers: %d points, min=%.3f max=%.3f mean=%.3f\n",
		len(run.Sessions), len(series), stats.Min, stats.Max, stats.Mean)

	// A run whose workers intermittently lose a parameter server.
	bad := gen.Submit(logging.TensorFlow, sim.FaultNetwork)
	report := model.Detect(bad.Sessions)
	fmt.Printf("\nfaulty run: %d/%d sessions problematic\n",
		len(report.ProblematicSessions()), len(bad.Sessions))
	addrs := map[string]bool{}
	for _, a := range report.ByKind(detect.UnexpectedMessage) {
		if a.Extracted == nil {
			continue
		}
		for _, addr := range a.Extracted.Localities["ADDR"] {
			addrs[addr] = true
		}
	}
	fmt.Printf("unreachable parameter-server addresses named by the failures: %v\n", keys(addrs))
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
