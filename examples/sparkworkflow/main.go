// Sparkworkflow reconstructs and prints the Spark HW-graph of Fig. 8 —
// the hierarchical entity groups, their subroutines with critical Intel
// Keys, and the extracted operations — and contrasts it with the
// identifier-only S³ graph Stitch would build (Fig. 9).
package main

import (
	"fmt"
	"sort"

	"intellog/internal/baselines/stitch"
	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	cluster := sim.NewCluster(26, 7)
	gen := workload.NewGenerator(cluster, 8)
	model := core.Train(gen.TrainingCorpus(logging.Spark, 15), core.Config{})

	fmt.Println("=== Spark HW-graph (hierarchy; * marks critical groups) ===")
	fmt.Print(model.Graph.Render())

	fmt.Println("\n=== subroutines of the critical groups ===")
	for _, name := range model.Graph.CriticalGroups() {
		node := model.Graph.Nodes[name]
		sigs := make([]string, 0, len(node.Subroutines))
		for sig := range node.Subroutines {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			sub := node.Subroutines[sig]
			label := sig
			if label == "" {
				label = "NONE"
			}
			fmt.Printf("%s / %s:\n", name, label)
			for _, kid := range sub.Keys {
				ik := model.Keys[kid]
				marker := " "
				if sub.Critical[kid] {
					marker = "*"
				}
				ops := ""
				for _, op := range ik.Operations {
					ops += " " + op.String()
				}
				fmt.Printf("  %s %s  ->%s\n", marker, ik.String(), ops)
			}
		}
	}

	// The Stitch comparison: identifiers only, no semantics (§6.3).
	fmt.Println("\n=== Stitch S3 graph of the same logs (identifier relations only) ===")
	job := gen.Submit(logging.Spark, sim.FaultNone)
	fmt.Print(stitch.Build(model.Messages(job.Sessions)).Render())
	fmt.Println("\nNote: the S3 graph names identifier types only; the HW-graph above")
	fmt.Println("additionally carries entities, operations and critical-key subroutines.")
}
