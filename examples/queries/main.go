// Queries demonstrates the Intel Message store (§3.3): log messages become
// key-value records that can be filtered, grouped and exported as JSON —
// the structurized representation the paper stores in time-series
// databases.
package main

import (
	"fmt"
	"os"
	"sort"

	"intellog/internal/core"
	"intellog/internal/intelstore"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	cluster := sim.NewCluster(12, 21)
	gen := workload.NewGenerator(cluster, 22)
	model := core.Train(gen.TrainingCorpus(logging.Spark, 8), core.Config{})

	job := gen.Submit(logging.Spark, sim.FaultNone)
	store := intelstore.New(model.Messages(job.Sessions))
	fmt.Printf("job %q produced %d Intel Messages in %d sessions\n\n",
		job.Spec.Name, store.Len(), len(store.Sessions()))

	// Query 1: everything the 'block' component did, per block manager.
	blocks := store.WithEntity("block manager")
	fmt.Printf("messages about the block manager: %d\n", blocks.Len())

	// Query 2: task activity per session (the per-container task counts of
	// case study 3).
	fmt.Println("\ntask messages per session:")
	perSession := store.WithEntity("task").GroupBySession()
	ids := make([]string, 0, len(perSession))
	for id := range perSession {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %s: %d\n", id, perSession[id].Len())
	}

	// Query 3: TID cardinality — how many distinct tasks ran?
	byTID := store.GroupByIdentifier("TID")
	fmt.Printf("\ndistinct TIDs: %d\n", len(byTID))

	// Query 4: export one session's messages as JSON (truncated here).
	first := store.Sessions()[0]
	fmt.Printf("\nJSON export of session %s (first 600 bytes):\n", first)
	exportTruncated(store.WithSession(first))
}

func exportTruncated(s *intelstore.Store) {
	pr, pw, err := os.Pipe()
	if err != nil {
		fmt.Println("pipe:", err)
		return
	}
	go func() {
		defer pw.Close()
		if err := s.ExportJSON(pw); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
		}
	}()
	buf := make([]byte, 600)
	n, _ := pr.Read(buf)
	pr.Close()
	fmt.Println(string(buf[:n]) + "…")
}
