package nlp

import "strings"

// irregularNounLemmas maps irregular plurals to singulars.
var irregularNounLemmas = map[string]string{
	"children": "child", "indices": "index", "vertices": "vertex",
	"statuses": "status", "processes": "process", "classes": "class",
	"addresses": "address", "accesses": "access", "caches": "cache",
	"stages": "stage", "nodes": "node", "bytes": "byte", "data": "data",
	"metrics": "metric", "media": "medium", "criteria": "criterion",
	"queries": "query", "entries": "entry", "copies": "copy",
	"registries": "registry", "directories": "directory",
	"properties": "property", "dependencies": "dependency",
	"policies": "policy", "strategies": "strategy", "retries": "retry",
	"replicas": "replica", "quotas": "quota", "analyses": "analysis",
}

// verbLemmas maps inflected verb forms to base forms for the irregular
// verbs in the lexicon; regular forms are stripped by rule.
var verbLemmas = map[string]string{}

func init() {
	for base, irr := range irregularVerbs {
		verbLemmas[irr[0]] = base
		verbLemmas[irr[1]] = base
	}
	verbLemmas["is"] = "be"
	verbLemmas["are"] = "be"
	verbLemmas["was"] = "be"
	verbLemmas["were"] = "be"
	verbLemmas["been"] = "be"
	verbLemmas["being"] = "be"
	verbLemmas["has"] = "have"
	verbLemmas["had"] = "have"
	verbLemmas["done"] = "do"
	verbLemmas["freed"] = "free"
}

// Lemma reduces a word to its dictionary form given its POS tag: plural
// nouns to singulars (§3.1 lemmatizes extracted entity phrases to singular
// form) and inflected verbs to base form (used to canonicalize operation
// predicates).
func Lemma(word, tag string) string {
	lower := strings.ToLower(word)
	switch {
	case tag == TagNNS || tag == TagNNPS:
		return nounLemma(lower)
	case IsVerb(tag):
		return verbLemma(lower)
	default:
		return lower
	}
}

// nounLemma singularizes a plural noun.
func nounLemma(w string) string {
	if s, ok := irregularNounLemmas[w]; ok {
		return s
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses"), strings.HasSuffix(w, "shes"),
		strings.HasSuffix(w, "ches"), strings.HasSuffix(w, "xes"), strings.HasSuffix(w, "zzes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"), strings.HasSuffix(w, "us"), strings.HasSuffix(w, "is"):
		return w
	case strings.HasSuffix(w, "s") && len(w) > 2:
		return w[:len(w)-1]
	default:
		return w
	}
}

// verbLemma reduces an inflected verb to base form.
func verbLemma(w string) string {
	if b, ok := verbLemmas[w]; ok {
		return b
	}
	// If the word is itself a known base verb, keep it.
	if tags, ok := lexicon[w]; ok {
		for _, t := range tags {
			if t == TagVB {
				return w
			}
		}
	}
	switch {
	case strings.HasSuffix(w, "ying") && len(w) > 5:
		if base := w[:len(w)-4] + "ie"; isBaseVerb(base) {
			return base
		}
		return w[:len(w)-3]
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		stem := w[:len(w)-3]
		return unstem(stem)
	case strings.HasSuffix(w, "ied") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		stem := w[:len(w)-2]
		return unstem(stem)
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "es") && len(w) > 3:
		if isBaseVerb(w[:len(w)-2]) {
			return w[:len(w)-2]
		}
		return w[:len(w)-1]
	case strings.HasSuffix(w, "s") && len(w) > 2:
		return w[:len(w)-1]
	default:
		return w
	}
}

// unstem recovers a base verb from an -ing/-ed stem: restores a dropped
// final 'e' ("initializ" → "initialize") and undoes consonant doubling
// ("stopp" → "stop").
func unstem(stem string) string {
	if isBaseVerb(stem) {
		return stem
	}
	if withE := stem + "e"; isBaseVerb(withE) {
		return withE
	}
	if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
		if short := stem[:len(stem)-1]; isBaseVerb(short) {
			return short
		}
	}
	return stem
}

// isBaseVerb reports whether w has a VB reading in the lexicon.
func isBaseVerb(w string) bool {
	tags, ok := lexicon[w]
	if !ok {
		return false
	}
	for _, t := range tags {
		if t == TagVB {
			return true
		}
	}
	return false
}
