package nlp

import (
	"strings"
	"unicode"
)

// Tag assigns a Penn Treebank part-of-speech tag to every token in place
// and returns the slice. The tagger is a lexicon-plus-rules design:
//
//  1. shape rules classify numbers, identifiers, paths and camel-case
//     class names, which dominate log text and defeat statistical taggers
//     trained on newswire (the motivation for a log-specific tagger, §3);
//  2. the domain lexicon supplies candidate readings for words;
//  3. contextual rules disambiguate noun/verb readings ("map output" vs
//     "about to shuffle") using the neighbouring tags;
//  4. suffix heuristics cover out-of-lexicon words.
func Tag(tokens []Token) []Token {
	// First pass: shape rules and lexicon candidates.
	candidates := make([][]string, len(tokens))
	for i := range tokens {
		t := &tokens[i]
		if t.Tag == TagSYM { // punctuation pre-tagged by the tokenizer
			candidates[i] = []string{TagSYM}
			continue
		}
		if tag, ok := shapeTag(t.Text); ok {
			t.Tag = tag
			candidates[i] = []string{tag}
			continue
		}
		lower := strings.ToLower(t.Text)
		if tags, ok := lexicon[lower]; ok {
			candidates[i] = tags
			t.Tag = tags[0]
			continue
		}
		tag := suffixTag(t.Text)
		t.Tag = tag
		candidates[i] = []string{tag}
	}
	// Second pass: contextual disambiguation, left to right so earlier
	// decisions feed later ones.
	for i := range tokens {
		if len(candidates[i]) < 2 {
			continue
		}
		tokens[i].Tag = disambiguate(tokens, candidates, i)
	}
	return tokens
}

// TagMessage tokenizes and tags a message in one call.
func TagMessage(msg string) []Token {
	return Tag(Tokenize(msg))
}

// shapeTag classifies tokens by surface shape alone. ok is false when the
// token is an ordinary word that the lexicon or suffix rules should handle.
func shapeTag(text string) (string, bool) {
	if text == "" {
		return TagSYM, true
	}
	if text == "*" { // variable field placeholder in a log key
		return TagSYM, true
	}
	if !hasLetter(text) && !hasDigit(text) {
		return TagSYM, true // pure punctuation: "#", "->", "..."
	}
	if isNumeric(text) {
		return TagCD, true
	}
	if strings.Contains(text, "://") || strings.HasPrefix(text, "/") ||
		isHostPort(text) || isIPAddr(text) {
		return TagNNP, true // localities read as proper nouns
	}
	if strings.ContainsAny(text, "_#$@") {
		return TagNNP, true // identifier conventions
	}
	if hasDigit(text) && hasLetter(text) {
		return TagNNP, true // mixed alphanumerics: attempt IDs, versions
	}
	if IsCamel(text) {
		return TagNNP, true // class names: MapTask, BlockManagerId
	}
	if !hasLetter(text) {
		return TagSYM, true
	}
	return "", false
}

// isNumeric reports whether text is a number: digits with optional sign,
// decimal point, comma separators or trailing %.
func isNumeric(text string) bool {
	s := strings.TrimSuffix(text, "%")
	s = strings.TrimPrefix(s, "-")
	s = strings.TrimPrefix(s, "+")
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
			digits++
		case r == '.' || r == ',':
		default:
			return false
		}
	}
	return digits > 0
}

// suffixTag guesses a tag for an out-of-lexicon word.
func suffixTag(text string) string {
	lower := strings.ToLower(text)
	switch {
	case strings.HasSuffix(lower, "ing") && len(lower) > 4:
		return TagVBG
	case strings.HasSuffix(lower, "ed") && len(lower) > 3:
		return TagVBN
	case strings.HasSuffix(lower, "ly") && len(lower) > 3:
		return TagRB
	case strings.HasSuffix(lower, "ful"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "ible"), strings.HasSuffix(lower, "ous"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "ant"),
		strings.HasSuffix(lower, "ent"), strings.HasSuffix(lower, "less"):
		return TagJJ
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") && len(lower) > 3:
		return TagNNS
	case unicode.IsUpper(rune(text[0])):
		return TagNNP
	default:
		return TagNN
	}
}

// disambiguate picks among multiple lexicon readings for tokens[i] using
// the surrounding context. candidates[i] is ordered by lexical priority.
func disambiguate(tokens []Token, candidates [][]string, i int) string {
	cands := candidates[i]
	hasReading := func(pred func(string) bool) (string, bool) {
		for _, c := range cands {
			if pred(c) {
				return c, true
			}
		}
		return "", false
	}
	nounReading, hasNoun := hasReading(IsNoun)
	verbReading, hasVerb := hasReading(IsVerb)
	baseReading, hasBase := hasReading(func(t string) bool { return t == TagVB })
	jjReading, hasJJ := hasReading(IsAdjective)

	prevTag := ""
	for j := i - 1; j >= 0; j-- { // previous non-punctuation tag
		if tokens[j].Tag != TagSYM {
			prevTag = tokens[j].Tag
			break
		}
	}
	nextTag := ""
	nextNounish := false
	for j := i + 1; j < len(tokens); j++ {
		if tokens[j].Tag != TagSYM {
			nextTag = tokens[j].Tag
			// The next token's own tag is preliminary at this point; a noun
			// reading among its candidates is enough evidence ("map outputs"
			// where "outputs" still reads VBZ).
			nextNounish = IsNoun(nextTag)
			for _, c := range candidates[j] {
				if IsNoun(c) {
					nextNounish = true
				}
			}
			break
		}
	}

	switch {
	case prevTag == TagTO && hasBase:
		// "about to shuffle", "failed to connect"
		return baseReading
	case prevTag == TagMD && hasBase:
		// "cannot fetch"
		return baseReading
	case (prevTag == TagDT || prevTag == TagJJ || prevTag == TagIN || prevTag == "" && i > 0) && hasNoun:
		// determiner/adjective/preposition precedes → nominal: "the output",
		// "remote fetch", "from map". (prevTag=="" && i>0 means only
		// punctuation precedes, e.g. "[fetcher] ..." — keep priority order.)
		if prevTag == "" {
			break
		}
		return nounReading
	case IsNoun(prevTag) && hasNoun && (nextTag == "" || nextNounish || nextTag == TagIN || nextTag == TagTO || nextTag == TagCD):
		// noun compound continuation: "map output", "shuffle output of map",
		// "map outputs to fetcher"
		return nounReading
	case IsVerb(prevTag) && hasNoun:
		// direct-object position: "shuffle output", "read bytes"
		return nounReading
	case i > 0 && hasJJ && nextNounish && !isAuxiliary(wordBefore(tokens, i)):
		// attributive participial adjective mid-sentence: "sorted
		// segments", "completed container" — but keep "is sorted" verbal
		// and sentence-initial participles ("Finished task …") predicative.
		return jjReading
	case prevTag == TagCD && hasNoun && nextNounish:
		// counted noun compound: "5 map outputs"
		return nounReading
	case i == 0 && hasNoun && (IsNoun(nextTag) || nextTag == TagVBN):
		// noun-compound subject at sentence start: "Spill file created …",
		// "Shuffle assigned …" — a following noun or participle signals the
		// nominal reading.
		return nounReading
	case i == 0 && hasVerb:
		// imperative/participial sentence start: "Starting ...", "Registered ..."
		return verbReading
	case prevTag == TagPRP && hasVerb:
		return verbReading
	case IsNoun(prevTag) && hasVerb && (nextTag == TagDT || nextTag == TagCD || nextTag == TagNNP):
		// subject + verb + object evidence: "fetcher read 2264 bytes"
		return verbReading
	}
	return cands[0]
}

// wordBefore returns the previous non-punctuation token text, or "".
func wordBefore(tokens []Token, i int) string {
	for j := i - 1; j >= 0; j-- {
		if tokens[j].Tag != TagSYM {
			return tokens[j].Text
		}
	}
	return ""
}
