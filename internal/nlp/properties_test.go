package nlp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

// TestPropertyNounLemmaRoundTrip: pluralizing then lemmatizing a domain
// noun returns the noun.
func TestPropertyNounLemmaRoundTrip(t *testing.T) {
	for _, n := range domainNouns {
		pl := plural(n)
		if got := Lemma(pl, TagNNS); got != n {
			// Irregulars mapped explicitly are exempt only if they round
			// trip through the irregular table.
			t.Errorf("Lemma(plural(%q)=%q) = %q", n, pl, got)
		}
	}
}

// TestPropertyVerbLemmaRoundTrip: every generated inflection of a base
// verb lemmatizes back to the base.
func TestPropertyVerbLemmaRoundTrip(t *testing.T) {
	for _, v := range baseVerbs {
		forms := map[string]string{
			thirdPerson(v): TagVBZ,
			gerund(v):      TagVBG,
		}
		if irr, ok := irregularVerbs[v]; ok {
			forms[irr[0]] = TagVBD
			forms[irr[1]] = TagVBN
		} else {
			forms[pastTense(v)] = TagVBN
		}
		for form, tag := range forms {
			if got := Lemma(form, tag); got != v {
				t.Errorf("Lemma(%q,%s) = %q, want %q", form, tag, got, v)
			}
		}
	}
}

// TestPropertyTokenizeNoEmptyTokens: tokenization never yields empty
// token texts and covers every non-space character run.
func TestPropertyTokenizeNoEmptyTokens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{
			"task", "attempt_01", "fetcher#1", "host1:8020", "/tmp/x",
			"12,345", "4ms", "(TID", "4).", "[main]", "a=b", "MapTask",
		}
		var parts []string
		for i := 0; i < 1+rng.Intn(10); i++ {
			parts = append(parts, words[rng.Intn(len(words))])
		}
		msg := strings.Join(parts, " ")
		for _, tok := range Tokenize(msg) {
			if tok.Text == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTagTotal: every token receives a non-empty tag, and
// punctuation-only tokens receive SYM.
func TestPropertyTagTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a printable ASCII message from the fuzz bytes.
		var b strings.Builder
		for _, c := range raw {
			r := rune(c%95 + 32)
			b.WriteRune(r)
		}
		for _, tok := range TagMessage(b.String()) {
			if tok.Tag == "" {
				return false
			}
			punctOnly := true
			for _, r := range tok.Text {
				if unicode.IsLetter(r) || unicode.IsDigit(r) {
					punctOnly = false
				}
			}
			if punctOnly && tok.Tag != TagSYM {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySplitCamelLossless: the concatenation of SplitCamel parts
// equals the lower-cased input for letter-only words.
func TestPropertySplitCamelLossless(t *testing.T) {
	words := []string{"MapTask", "BlockManagerId", "HDFSBlock", "taskAttemptID", "simple", "X", "MRAppMaster"}
	for _, w := range words {
		joined := strings.Join(SplitCamel(w), "")
		if joined != strings.ToLower(w) {
			t.Errorf("SplitCamel(%q) lossy: %q", w, joined)
		}
	}
}

// TestPropertyParseRootsAreVerbsOrCD: every clause root the parser emits
// carries a verb tag (or the bare-number stand-in never happens for
// roots).
func TestPropertyParseRootsAreVerbs(t *testing.T) {
	msgs := []string{
		"fetcher#1 about to shuffle output of map attempt_01",
		"host1:13562 freed by fetcher#1 in 4ms",
		"Starting MapTask metrics system",
		"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
		"Task attempt_01 is done",
		"4 finished. Closing",
		"Registered signal handler for TERM",
		"Block broadcast_1 stored as values in memory with estimated size 4 KB",
	}
	for _, m := range msgs {
		p := ParseDeps(TagMessage(m))
		for _, r := range p.Roots {
			if !IsVerb(p.Tokens[r].Tag) {
				t.Errorf("%q: root %q tagged %s", m, p.Tokens[r].Text, p.Tokens[r].Tag)
			}
		}
		// Arcs reference valid token indices and known relations.
		for _, a := range p.Arcs {
			if a.Dep < 0 || a.Dep >= len(p.Tokens) {
				t.Fatalf("%q: arc dep out of range", m)
			}
			switch a.Rel {
			case RelRoot, RelXcomp, RelNsubj, RelNsubjPass, RelDobj, RelIobj, RelNmod:
			default:
				t.Errorf("%q: unknown relation %q", m, a.Rel)
			}
		}
	}
}
