// Package nlp provides the natural-language substrate IntelLog relies on:
// a log-aware tokenizer, a Penn Treebank part-of-speech tagger, a
// lemmatizer, a camel-case splitter and a rule-based dependency parser
// producing the Universal Dependencies subset of Table 3 in the paper.
//
// The paper uses OpenNLP for POS tagging and the Stanford parser for
// dependency structure. Neither exists for pure-stdlib Go, so this package
// implements both from scratch, tuned for the constrained register of
// system-log English: short, single-clause sentences over a bounded
// technical vocabulary with many identifiers.
package nlp

import "strings"

// Token is one token of a log message with its part-of-speech tag. Tag is
// empty until the token has been through Tag.
type Token struct {
	// Text is the surface form as it appears in the message.
	Text string
	// Tag is the Penn Treebank part-of-speech tag.
	Tag string
}

// Penn Treebank tags used by this package. The set is restricted to tags
// that occur in log text.
const (
	TagNN   = "NN"   // singular noun
	TagNNS  = "NNS"  // plural noun
	TagNNP  = "NNP"  // proper noun (also used for identifiers and camel-case class names)
	TagNNPS = "NNPS" // plural proper noun
	TagJJ   = "JJ"   // adjective
	TagVB   = "VB"   // verb, base form
	TagVBD  = "VBD"  // verb, past tense
	TagVBG  = "VBG"  // verb, gerund/present participle
	TagVBN  = "VBN"  // verb, past participle
	TagVBP  = "VBP"  // verb, non-3rd-person singular present
	TagVBZ  = "VBZ"  // verb, 3rd-person singular present
	TagMD   = "MD"   // modal
	TagIN   = "IN"   // preposition/subordinating conjunction
	TagTO   = "TO"   // "to"
	TagDT   = "DT"   // determiner
	TagCD   = "CD"   // cardinal number
	TagCC   = "CC"   // coordinating conjunction
	TagRB   = "RB"   // adverb
	TagPRP  = "PRP"  // personal pronoun
	TagSYM  = "SYM"  // symbol (also used for punctuation tokens)
	TagUH   = "UH"   // interjection
)

// IsNoun reports whether tag is one of the four noun tags. Table 2 of the
// paper treats all four as 'NN' for entity-pattern matching.
func IsNoun(tag string) bool {
	switch tag {
	case TagNN, TagNNS, TagNNP, TagNNPS:
		return true
	}
	return false
}

// IsVerb reports whether tag is any verb tag.
func IsVerb(tag string) bool {
	return strings.HasPrefix(tag, "VB")
}

// IsAdjective reports whether tag is an adjective tag.
func IsAdjective(tag string) bool { return tag == TagJJ }

// Texts returns the surface forms of tokens.
func Texts(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

// Tags returns the tags of tokens.
func Tags(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Tag
	}
	return out
}
