package nlp

import (
	"strings"
	"unicode"
)

// Tokenize splits a log message into tokens. It differs from a free-text
// tokenizer in what it keeps intact: identifiers ("attempt_01",
// "fetcher#1"), host:port pairs, IP addresses, filesystem and HDFS paths,
// URLs, decimal numbers ("1.0", "12,345") and size/duration literals stay
// single tokens, because downstream stages classify whole variable fields.
// Surrounding punctuation ([], (), quotes, trailing sentence punctuation)
// is stripped and emitted as SYM tokens so token positions still cover the
// full message.
func Tokenize(msg string) []Token {
	// Fields are scanned in place (no intermediate []string) and the
	// output gets one up-front allocation sized for the common case of a
	// field per token plus a little punctuation.
	n := 1
	for i := 0; i < len(msg); i++ {
		if msg[i] == ' ' {
			n++
		}
	}
	tokens := make([]Token, 0, n+n/4+2)
	start := -1
	for i := 0; i <= len(msg); i++ {
		if i == len(msg) || asciiSpace(msg[i]) {
			if start >= 0 {
				tokens = appendFieldTokens(tokens, msg[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return tokens
}

// asciiSpace matches the whitespace bytes strings.Fields splits on for
// ASCII input (log messages are ASCII; multi-byte whitespace does not
// occur in the corpora).
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// TokenizeWords is Tokenize with punctuation tokens removed; convenient for
// callers that only care about words (POS patterns, grouping).
func TokenizeWords(msg string) []Token {
	all := Tokenize(msg)
	out := all[:0]
	for _, t := range all {
		if t.Tag != TagSYM {
			out = append(out, t)
		}
	}
	return out
}

// appendFieldTokens splits one whitespace-delimited field into tokens.
// All emitted token texts are substrings of field, so the split never
// allocates beyond growing the output slice.
func appendFieldTokens(tokens []Token, field string) []Token {
	// Strip and emit leading bracket punctuation.
	for len(field) > 0 {
		switch field[0] {
		case '[', '(', '{', '"', '\'', '<':
			tokens = append(tokens, Token{Text: field[:1], Tag: TagSYM})
			field = field[1:]
			continue
		}
		break
	}
	// Strip trailing punctuation; it stays a suffix of field and is
	// emitted byte-by-byte after the word, in original order.
	end := len(field)
	for end > 0 {
		// '.' and ':' are structural only mid-token (decimals, versions,
		// host:port); at the end of a field they are sentence punctuation.
		switch field[end-1] {
		case ']', ')', '}', '"', '\'', '>', ',', ';', '!', '?', '.', ':':
			end--
			continue
		}
		break
	}
	trailing := field[end:]
	if field = field[:end]; field != "" {
		tokens = appendInnerPunct(tokens, field)
	}
	for i := 0; i < len(trailing); i++ {
		tokens = append(tokens, Token{Text: trailing[i : i+1], Tag: TagSYM})
	}
	return tokens
}

// appendInnerPunct handles fields with internal structure. Atomic fields
// (identifiers, paths, host:port, IPs, numbers, URLs) are kept whole;
// "word=value" splits on '=' so both sides are classified independently.
func appendInnerPunct(tokens []Token, field string) []Token {
	// "key=value" splits first — identifiers like "records_read=332015"
	// must expose the constant key and the variable value separately, or
	// every rendering becomes a distinct token.
	if i := strings.IndexByte(field, '='); i > 0 && i < len(field)-1 && !strings.Contains(field, "://") {
		tokens = appendInnerPunct(tokens, field[:i])
		tokens = append(tokens, Token{Text: "=", Tag: TagSYM})
		return appendInnerPunct(tokens, field[i+1:])
	}
	// "word#number" splits into word, #, number — the paper's Fig. 1 shows
	// "fetcher#1" tokenized as "fetcher # 1", which lets the word join
	// entity phrases while the number remains an identifier field.
	if i := strings.IndexByte(field, '#'); i > 0 && i < len(field)-1 &&
		isAlphaOnly(field[:i]) && allDigitsStr(field[i+1:]) {
		return append(tokens,
			Token{Text: field[:i]},
			Token{Text: field[i : i+1], Tag: TagSYM},
			Token{Text: field[i+1:]},
		)
	}
	return append(tokens, Token{Text: field})
}

func isAlphaOnly(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return true
}

func allDigitsStr(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// isAtomicField reports whether field should never be split further.
func isAtomicField(field string) bool {
	if strings.Contains(field, "://") || strings.HasPrefix(field, "/") {
		return true // URL or absolute path
	}
	if strings.ContainsAny(field, "_#") {
		return true // identifier convention: attempt_01, fetcher#1
	}
	if isHostPort(field) || isIPAddr(field) {
		return true
	}
	if hasDigit(field) && !strings.Contains(field, "=") {
		return true // mixed alphanumerics, versions, decimals
	}
	return false
}

func hasDigit(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func hasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// isHostPort reports whether s looks like "host:port" or "ip:port".
func isHostPort(s string) bool {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return false
	}
	port := s[i+1:]
	for _, r := range port {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	host := s[:i]
	return hostLike(host)
}

// hostLike reports whether s could be a hostname or IP.
func hostLike(s string) bool {
	if s == "" {
		return false
	}
	if isIPAddr(s) {
		return true
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return unicode.IsLetter(rune(s[0]))
}

// isIPAddr reports whether s is a dotted-quad IPv4 address.
func isIPAddr(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		for _, r := range p {
			if !unicode.IsDigit(r) {
				return false
			}
		}
	}
	return true
}
