package nlp

import (
	"strings"
	"unicode"
)

// Tokenize splits a log message into tokens. It differs from a free-text
// tokenizer in what it keeps intact: identifiers ("attempt_01",
// "fetcher#1"), host:port pairs, IP addresses, filesystem and HDFS paths,
// URLs, decimal numbers ("1.0", "12,345") and size/duration literals stay
// single tokens, because downstream stages classify whole variable fields.
// Surrounding punctuation ([], (), quotes, trailing sentence punctuation)
// is stripped and emitted as SYM tokens so token positions still cover the
// full message.
func Tokenize(msg string) []Token {
	var tokens []Token
	for _, field := range strings.Fields(msg) {
		tokens = appendFieldTokens(tokens, field)
	}
	return tokens
}

// TokenizeWords is Tokenize with punctuation tokens removed; convenient for
// callers that only care about words (POS patterns, grouping).
func TokenizeWords(msg string) []Token {
	all := Tokenize(msg)
	out := all[:0]
	for _, t := range all {
		if t.Tag != TagSYM {
			out = append(out, t)
		}
	}
	return out
}

// appendFieldTokens splits one whitespace-delimited field into tokens.
func appendFieldTokens(tokens []Token, field string) []Token {
	// Strip and emit leading bracket punctuation.
	for len(field) > 0 {
		r := rune(field[0])
		if r == '[' || r == '(' || r == '{' || r == '"' || r == '\'' || r == '<' {
			tokens = append(tokens, Token{Text: string(r), Tag: TagSYM})
			field = field[1:]
			continue
		}
		break
	}
	// Strip trailing punctuation into a pending list (emitted after the word).
	var trailing []string
	for len(field) > 0 {
		r := rune(field[len(field)-1])
		// '.' and ':' are structural only mid-token (decimals, versions,
		// host:port); at the end of a field they are sentence punctuation.
		if r == ']' || r == ')' || r == '}' || r == '"' || r == '\'' || r == '>' ||
			r == ',' || r == ';' || r == '!' || r == '?' || r == '.' || r == ':' {
			trailing = append([]string{string(r)}, trailing...)
			field = field[:len(field)-1]
			continue
		}
		break
	}
	if field != "" {
		tokens = append(tokens, splitInnerPunct(field)...)
	}
	for _, p := range trailing {
		tokens = append(tokens, Token{Text: p, Tag: TagSYM})
	}
	return tokens
}

// splitInnerPunct handles fields with internal structure. Atomic fields
// (identifiers, paths, host:port, IPs, numbers, URLs) are kept whole;
// "word=value" splits on '=' so both sides are classified independently.
func splitInnerPunct(field string) []Token {
	// "key=value" splits first — identifiers like "records_read=332015"
	// must expose the constant key and the variable value separately, or
	// every rendering becomes a distinct token.
	if i := strings.IndexByte(field, '='); i > 0 && i < len(field)-1 && !strings.Contains(field, "://") {
		left := splitInnerPunct(field[:i])
		right := splitInnerPunct(field[i+1:])
		out := append(left, Token{Text: "=", Tag: TagSYM})
		return append(out, right...)
	}
	// "word#number" splits into word, #, number — the paper's Fig. 1 shows
	// "fetcher#1" tokenized as "fetcher # 1", which lets the word join
	// entity phrases while the number remains an identifier field.
	if i := strings.IndexByte(field, '#'); i > 0 && i < len(field)-1 &&
		isAlphaOnly(field[:i]) && allDigitsStr(field[i+1:]) {
		return []Token{
			{Text: field[:i]},
			{Text: "#", Tag: TagSYM},
			{Text: field[i+1:]},
		}
	}
	return []Token{{Text: field}}
}

func isAlphaOnly(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return true
}

func allDigitsStr(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// isAtomicField reports whether field should never be split further.
func isAtomicField(field string) bool {
	if strings.Contains(field, "://") || strings.HasPrefix(field, "/") {
		return true // URL or absolute path
	}
	if strings.ContainsAny(field, "_#") {
		return true // identifier convention: attempt_01, fetcher#1
	}
	if isHostPort(field) || isIPAddr(field) {
		return true
	}
	if hasDigit(field) && !strings.Contains(field, "=") {
		return true // mixed alphanumerics, versions, decimals
	}
	return false
}

func hasDigit(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func hasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// isHostPort reports whether s looks like "host:port" or "ip:port".
func isHostPort(s string) bool {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return false
	}
	port := s[i+1:]
	for _, r := range port {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	host := s[:i]
	return hostLike(host)
}

// hostLike reports whether s could be a hostname or IP.
func hostLike(s string) bool {
	if s == "" {
		return false
	}
	if isIPAddr(s) {
		return true
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return unicode.IsLetter(rune(s[0]))
}

// isIPAddr reports whether s is a dotted-quad IPv4 address.
func isIPAddr(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		for _, r := range p {
			if !unicode.IsDigit(r) {
				return false
			}
		}
	}
	return true
}
