package nlp

import (
	"reflect"
	"strings"
	"testing"
)

func tagsOf(msg string) map[string]string {
	out := map[string]string{}
	for _, t := range TagMessage(msg) {
		out[t.Text] = t.Tag
	}
	return out
}

func TestTokenizeKeepsAtomicFields(t *testing.T) {
	// "fetcher#1" splits into "fetcher # 1" (the paper's Fig. 1 shows
	// exactly this tokenization); underscore identifiers stay atomic.
	toks := Tokenize("[fetcher#1] read 2264 bytes from map-output for attempt_01")
	texts := Texts(toks)
	want := []string{"[", "fetcher", "#", "1", "]", "read", "2264", "bytes", "from", "map-output", "for", "attempt_01"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("Tokenize = %v, want %v", texts, want)
	}
}

func TestTokenizeHostPortAndTrailing(t *testing.T) {
	toks := Tokenize("host1:13562 freed by fetcher#1 in 4ms.")
	texts := Texts(toks)
	want := []string{"host1:13562", "freed", "by", "fetcher", "#", "1", "in", "4ms", "."}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("Tokenize = %v, want %v", texts, want)
	}
}

func TestTokenizePathsAndURLs(t *testing.T) {
	toks := Tokenize("Created local directory at /tmp/blockmgr-8e2/11 from hdfs://nn:8020/user/data")
	texts := Texts(toks)
	if texts[4] != "/tmp/blockmgr-8e2/11" {
		t.Errorf("path token = %q", texts[4])
	}
	if texts[6] != "hdfs://nn:8020/user/data" {
		t.Errorf("url token = %q", texts[6])
	}
}

func TestTokenizeKeyValueSplit(t *testing.T) {
	toks := Tokenize("memoryLimit=334338464")
	texts := Texts(toks)
	want := []string{"memoryLimit", "=", "334338464"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("Tokenize = %v, want %v", texts, want)
	}
}

func TestTokenizeWordsDropsPunct(t *testing.T) {
	toks := TokenizeWords("[fetcher#1] read (2264) bytes.")
	for _, tok := range toks {
		if tok.Tag == TagSYM {
			t.Errorf("punct token %q survived TokenizeWords", tok.Text)
		}
	}
	if len(toks) != 5 { // fetcher, 1, read, 2264, bytes
		t.Errorf("got %d word tokens, want 5: %v", len(toks), Texts(toks))
	}
}

// Figure 3 of the paper: "Starting MapTask metrics system" tags as
// VBG NNP NNS NN.
func TestTagFigure3(t *testing.T) {
	toks := TagMessage("Starting MapTask metrics system")
	want := []string{TagVBG, TagNNP, TagNNS, TagNN}
	if got := Tags(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("Tags = %v, want %v (tokens %v)", got, want, Texts(toks))
	}
}

// Figure 1 line 1: fetcher and map are entities; attempt_01 an identifier.
func TestTagFetcherShuffle(t *testing.T) {
	m := tagsOf("fetcher#1 about to shuffle output of map attempt_01")
	if m["fetcher"] != TagNN {
		t.Errorf("fetcher = %s, want NN", m["fetcher"])
	}
	if m["1"] != TagCD || m["#"] != TagSYM {
		t.Errorf("fetcher id tokens wrong: 1=%s #=%s", m["1"], m["#"])
	}
	if m["shuffle"] != TagVB {
		t.Errorf("shuffle = %s, want VB after 'to'", m["shuffle"])
	}
	if m["output"] != TagNN {
		t.Errorf("output = %s, want NN", m["output"])
	}
	if m["map"] != TagNN {
		t.Errorf("map = %s, want NN", m["map"])
	}
	if m["attempt_01"] != TagNNP {
		t.Errorf("attempt_01 = %s, want NNP", m["attempt_01"])
	}
}

func TestTagFetcherRead(t *testing.T) {
	m := tagsOf("[fetcher#1] read 2264 bytes from map-output for attempt_01")
	if m["read"] != TagVBD && m["read"] != TagVB && m["read"] != TagVBN {
		t.Errorf("read = %s, want a verb tag", m["read"])
	}
	if m["2264"] != TagCD {
		t.Errorf("2264 = %s, want CD", m["2264"])
	}
	if m["bytes"] != TagNNS {
		t.Errorf("bytes = %s, want NNS", m["bytes"])
	}
}

func TestTagPassiveFreed(t *testing.T) {
	m := tagsOf("host1:13562 freed by fetcher#1 in 4ms")
	if m["host1:13562"] != TagNNP {
		t.Errorf("host:port = %s, want NNP", m["host1:13562"])
	}
	if m["freed"] != TagVBN {
		t.Errorf("freed = %s, want VBN", m["freed"])
	}
	if m["4ms"] != TagNNP { // mixed alphanumeric
		t.Errorf("4ms = %s, want NNP", m["4ms"])
	}
}

func TestTagNumbersAndPercent(t *testing.T) {
	m := tagsOf("reduce > copy at 0.51 done 85% of 12,345 tasks")
	if m["0.51"] != TagCD || m["85%"] != TagCD || m["12,345"] != TagCD {
		t.Errorf("numeric tags wrong: %v", m)
	}
}

func TestTagUnknownSuffixes(t *testing.T) {
	m := tagsOf("uberizing clusterized frobly unstoppable quxness")
	if m["uberizing"] != TagVBG {
		t.Errorf("uberizing = %s", m["uberizing"])
	}
	if m["clusterized"] != TagVBN {
		t.Errorf("clusterized = %s", m["clusterized"])
	}
	if m["frobly"] != TagRB {
		t.Errorf("frobly = %s", m["frobly"])
	}
	if m["unstoppable"] != TagJJ {
		t.Errorf("unstoppable = %s", m["unstoppable"])
	}
}

func TestIsCamel(t *testing.T) {
	yes := []string{"MapTask", "BlockManagerId", "taskAttempt", "HDFSBlock", "MRAppMaster"}
	no := []string{"Starting", "task", "ALLCAPS", "attempt_01", "map-output", "v1.2", "a"}
	for _, w := range yes {
		if !IsCamel(w) {
			t.Errorf("IsCamel(%q) = false, want true", w)
		}
	}
	for _, w := range no {
		if IsCamel(w) {
			t.Errorf("IsCamel(%q) = true, want false", w)
		}
	}
}

func TestSplitCamel(t *testing.T) {
	cases := map[string][]string{
		"MapTask":        {"map", "task"},
		"BlockManagerId": {"block", "manager", "id"},
		"HDFSBlock":      {"hdfs", "block"},
		"taskAttemptID":  {"task", "attempt", "id"},
		"MRAppMaster":    {"mr", "app", "master"},
		"simple":         {"simple"},
	}
	for in, want := range cases {
		if got := SplitCamel(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitCamel(%q) = %v, want %v", in, got, want)
		}
	}
	if CamelPhrase("MapTask") != "map task" {
		t.Error("CamelPhrase wrong")
	}
}

func TestLemmaNouns(t *testing.T) {
	cases := [][3]string{
		{"tasks", TagNNS, "task"},
		{"metrics", TagNNS, "metric"},
		{"directories", TagNNS, "directory"},
		{"processes", TagNNS, "process"},
		{"vertices", TagNNS, "vertex"},
		{"bytes", TagNNS, "byte"},
		{"status", TagNN, "status"},
		{"events", TagNNS, "event"},
	}
	for _, c := range cases {
		if got := Lemma(c[0], c[1]); got != c[2] {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c[0], c[1], got, c[2])
		}
	}
}

func TestLemmaVerbs(t *testing.T) {
	cases := [][3]string{
		{"Starting", TagVBG, "start"},
		{"Registered", TagVBN, "register"},
		{"freed", TagVBN, "free"},
		{"stopped", TagVBD, "stop"},
		{"initialized", TagVBN, "initialize"},
		{"got", TagVBD, "get"},
		{"sent", TagVBN, "send"},
		{"read", TagVBD, "read"},
		{"finishes", TagVBZ, "finish"},
		{"done", TagVBN, "do"},
		{"told", TagVBD, "tell"},
	}
	for _, c := range cases {
		if got := Lemma(c[0], c[1]); got != c[2] {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c[0], c[1], got, c[2])
		}
	}
}

// relOf returns the text of the dependent for the first arc with the given
// relation, or "".
func relOf(p Parse, rel string) string {
	for _, a := range p.Arcs {
		if a.Rel == rel {
			return p.Tokens[a.Dep].Text
		}
	}
	return ""
}

func TestParseActiveClause(t *testing.T) {
	p := ParseDeps(TagMessage("[fetcher#1] read 2264 bytes from map-output for attempt_01"))
	if len(p.Roots) != 1 {
		t.Fatalf("Roots = %v, want one root", p.Roots)
	}
	if got := p.Tokens[p.Roots[0]].Text; got != "read" {
		t.Errorf("root = %q, want read", got)
	}
	if got := relOf(p, RelNsubj); got != "fetcher" {
		t.Errorf("nsubj = %q, want fetcher", got)
	}
	if got := relOf(p, RelDobj); got != "bytes" {
		t.Errorf("dobj = %q, want bytes", got)
	}
	nmods := []string{}
	for _, a := range p.Arcs {
		if a.Rel == RelNmod {
			nmods = append(nmods, p.Tokens[a.Dep].Text)
		}
	}
	if len(nmods) != 2 || nmods[0] != "map-output" || nmods[1] != "attempt_01" {
		t.Errorf("nmods = %v, want [map-output attempt_01]", nmods)
	}
}

func TestParsePassiveClause(t *testing.T) {
	p := ParseDeps(TagMessage("host1:13562 freed by fetcher#1 in 4ms"))
	if len(p.Roots) != 1 || p.Tokens[p.Roots[0]].Text != "freed" {
		t.Fatalf("root wrong: %+v", p.Roots)
	}
	if got := relOf(p, RelNsubjPass); got != "host1:13562" {
		t.Errorf("nsubjpass = %q, want host1:13562", got)
	}
	if got := relOf(p, RelNmod); got != "fetcher" {
		t.Errorf("first nmod = %q, want fetcher", got)
	}
}

func TestParseXcompChain(t *testing.T) {
	p := ParseDeps(TagMessage("fetcher#1 about to shuffle output of map attempt_01"))
	if len(p.Roots) != 1 || p.Tokens[p.Roots[0]].Text != "shuffle" {
		t.Fatalf("root = %v, want shuffle", p.Roots)
	}
	if got := relOf(p, RelNsubj); got != "fetcher" {
		t.Errorf("nsubj = %q, want fetcher", got)
	}
	if got := relOf(p, RelDobj); got != "output" {
		t.Errorf("dobj = %q, want output", got)
	}
}

// Figure 4: two sentences, two predicates.
func TestParseFigure4TwoSentences(t *testing.T) {
	msg := "Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver"
	p := ParseDeps(TagMessage(msg))
	if len(p.Roots) != 2 {
		t.Fatalf("Roots = %d (%v), want 2", len(p.Roots), p.Roots)
	}
	if p.Tokens[p.Roots[0]].Text != "Finished" {
		t.Errorf("root 1 = %q, want Finished", p.Tokens[p.Roots[0]].Text)
	}
	if p.Tokens[p.Roots[1]].Text != "sent" {
		t.Errorf("root 2 = %q, want sent", p.Tokens[p.Roots[1]].Text)
	}
	if got := relOf(p, RelDobj); got != "task" {
		t.Errorf("dobj of Finished = %q, want task", got)
	}
	if got := relOf(p, RelNsubjPass); got != "result" {
		t.Errorf("nsubjpass = %q, want result", got)
	}
}

func TestParseAuxiliaryPassive(t *testing.T) {
	p := ParseDeps(TagMessage("Task attempt_01 is done"))
	if len(p.Roots) != 1 || p.Tokens[p.Roots[0]].Text != "done" {
		t.Fatalf("root wrong: %v", p.Roots)
	}
	if got := relOf(p, RelNsubjPass); got != "attempt_01" {
		t.Errorf("nsubjpass = %q, want attempt_01", got)
	}
}

func TestParseNoPredicate(t *testing.T) {
	// The paper calls out this MapReduce key as having no predicate.
	p := ParseDeps(TagMessage("Down to the last merge-pass, with 706 segments left of total size: 120 bytes"))
	if len(p.Roots) != 0 {
		roots := []string{}
		for _, r := range p.Roots {
			roots = append(roots, p.Tokens[r].Text)
		}
		t.Errorf("Roots = %v, want none", roots)
	}
}

func TestParseVagueTezKeys(t *testing.T) {
	p := ParseDeps(TagMessage("4 finished. Closing"))
	if len(p.Roots) != 2 {
		t.Fatalf("Roots = %v, want 2", p.Roots)
	}
}

func TestIsNounIsVerbHelpers(t *testing.T) {
	for _, tag := range []string{TagNN, TagNNS, TagNNP, TagNNPS} {
		if !IsNoun(tag) {
			t.Errorf("IsNoun(%s) = false", tag)
		}
	}
	if IsNoun(TagJJ) || IsNoun(TagVB) {
		t.Error("IsNoun over-accepts")
	}
	for _, tag := range []string{TagVB, TagVBD, TagVBG, TagVBN, TagVBP, TagVBZ} {
		if !IsVerb(tag) {
			t.Errorf("IsVerb(%s) = false", tag)
		}
	}
	if IsVerb(TagNN) {
		t.Error("IsVerb over-accepts")
	}
	if !IsAdjective(TagJJ) || IsAdjective(TagNN) {
		t.Error("IsAdjective wrong")
	}
}

func TestLookupLexicon(t *testing.T) {
	tags, ok := LookupLexicon("task")
	if !ok || len(tags) == 0 || tags[0] != TagNN {
		t.Errorf("LookupLexicon(task) = %v, %v", tags, ok)
	}
	if _, ok := LookupLexicon("zzzzz"); ok {
		t.Error("unknown word found in lexicon")
	}
}

func TestTagMessageIdempotentTexts(t *testing.T) {
	msg := "Registering block manager host1:38211 with 366.3 MB RAM, BlockManagerId(driver, host1, 38211, None)"
	toks := TagMessage(msg)
	joined := strings.Join(Texts(toks), " ")
	for _, w := range []string{"Registering", "block", "manager", "host1:38211", "BlockManagerId"} {
		if !strings.Contains(joined, w) {
			t.Errorf("token %q missing from %q", w, joined)
		}
	}
}
