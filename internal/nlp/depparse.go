package nlp

// Arc is one typed dependency: tokens[Dep] attaches to tokens[Head] with
// relation Rel. ROOT arcs use Head = -1.
type Arc struct {
	Head int
	Dep  int
	Rel  string
}

// Universal Dependencies relations emitted by the parser — exactly the
// seven relations of Table 3 in the paper.
const (
	RelRoot      = "ROOT"
	RelXcomp     = "xcomp"
	RelNsubj     = "nsubj"
	RelNsubjPass = "nsubjpass"
	RelDobj      = "dobj"
	RelIobj      = "iobj"
	RelNmod      = "nmod"
)

// Parse is a dependency analysis of a tagged token sequence. A log message
// may contain several sentences ("4 finished. Closing"), so Roots can hold
// more than one predicate index.
type Parse struct {
	Tokens []Token
	Arcs   []Arc
	Roots  []int
}

// ArcsFor returns the arcs whose head is the given token index.
func (p *Parse) ArcsFor(head int) []Arc {
	var out []Arc
	for _, a := range p.Arcs {
		if a.Head == head {
			out = append(out, a)
		}
	}
	return out
}

// ParseDeps analyses tagged tokens with head-percolation rules specialised
// for the single-clause register of log messages (§3.2): it locates each
// clause's predicate (main verb, auxiliary+participle, or an "about
// to"/"failed to" xcomp chain), then attaches the surrounding noun-phrase
// heads as nsubj/nsubjpass, dobj/iobj and nmod.
//
// The Stanford parser the paper uses produces full trees; only the Table 3
// relations influence IntelLog, so this parser emits exactly those.
func ParseDeps(tokens []Token) Parse {
	p := Parse{Tokens: tokens}
	start := 0
	for i := 0; i <= len(tokens); i++ {
		atBreak := i == len(tokens) ||
			(tokens[i].Tag == TagSYM && (tokens[i].Text == "." || tokens[i].Text == ";"))
		if !atBreak {
			continue
		}
		if i > start {
			parseClause(&p, start, i)
		}
		start = i + 1
	}
	return p
}

// parseClause analyses tokens[lo:hi] as one clause and appends arcs.
func parseClause(p *Parse, lo, hi int) {
	toks := p.Tokens
	pred, passive, aux := findPredicate(toks, lo, hi)
	if pred < 0 {
		return
	}
	p.Roots = append(p.Roots, pred)
	p.Arcs = append(p.Arcs, Arc{Head: -1, Dep: pred, Rel: RelRoot})

	// Subject: head of the NP immediately left of the predicate (or of its
	// auxiliary/xcomp chain start).
	leftEdge := pred
	if aux >= 0 {
		leftEdge = aux
	}
	if subj := npHeadLeft(toks, lo, leftEdge); subj >= 0 {
		rel := RelNsubj
		if passive {
			rel = RelNsubjPass
		}
		p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: subj, Rel: rel})
	}

	// Complements: scan right of the predicate. NPs inside parentheses are
	// annotations ("(TID 4)") and attach as nmod rather than objects.
	i := pred + 1
	depth := 0
	var bareNPs []int
	for i < hi {
		t := toks[i]
		switch {
		case t.Tag == TagSYM:
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				if depth > 0 {
					depth--
				}
			}
			i++
		case t.Tag == TagIN || t.Tag == TagTO:
			// Prepositional phrase → nmod on its NP head.
			obj, next := npHeadRight(toks, i+1, hi)
			if obj >= 0 {
				p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: obj, Rel: RelNmod})
				i = next
			} else {
				i++
			}
		case IsVerb(t.Tag) && t.Tag == TagVB && i > pred+1 && toks[i-1].Tag == TagTO:
			// Secondary xcomp inside the clause ("trying to connect ...").
			p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: i, Rel: RelXcomp})
			i++
		case IsNoun(t.Tag) || t.Tag == TagJJ || t.Tag == TagCD || t.Tag == TagDT:
			obj, next := npHeadRight(toks, i, hi)
			if obj < 0 {
				i++
				continue
			}
			if depth > 0 {
				p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: obj, Rel: RelNmod})
			} else {
				bareNPs = append(bareNPs, obj)
			}
			if next <= i {
				next = i + 1
			}
			i = next
		default:
			i++
		}
	}
	switch len(bareNPs) {
	case 0:
	case 1:
		p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: bareNPs[0], Rel: RelDobj})
	default:
		// Double-object construction: first NP is the recipient.
		p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: bareNPs[0], Rel: RelIobj})
		p.Arcs = append(p.Arcs, Arc{Head: pred, Dep: bareNPs[1], Rel: RelDobj})
	}
}

// findPredicate locates the clause's main predicate in tokens[lo:hi].
// It returns the predicate index, whether the clause is passive, and the
// index of an auxiliary/xcomp-chain start (-1 if none).
func findPredicate(toks []Token, lo, hi int) (pred int, passive bool, aux int) {
	aux = -1
	for i := lo; i < hi; i++ {
		t := toks[i]
		if !IsVerb(t.Tag) {
			continue
		}
		if isAuxiliary(t.Text) {
			// "is/was/has been" + participle → the participle is the root.
			for j := i + 1; j < hi; j++ {
				tj := toks[j]
				if tj.Tag == TagRB || tj.Tag == TagSYM || isAuxiliary(tj.Text) {
					continue
				}
				if tj.Tag == TagVBN {
					return j, true, i
				}
				if tj.Tag == TagVBG {
					return j, false, i
				}
				break
			}
			// Copula with no participle ("X is done" handled above; "X is
			// ready" has no operation predicate) — keep scanning.
			continue
		}
		if t.Tag == TagVB && i > lo && toks[i-1].Tag == TagTO {
			// "about to shuffle", "failed to connect": the infinitive is the
			// effective predicate (xcomp in Table 3). The chain start is the
			// first IN/verb before "to".
			start := i - 1
			for start > lo && (toks[start-1].Tag == TagIN || IsVerb(toks[start-1].Tag)) {
				start--
			}
			return i, false, start
		}
		if t.Tag == TagVBN {
			// Bare participle: passive if followed by a preposition or
			// clause end, e.g. "host freed by fetcher", "result sent to
			// driver", "4 finished". Sentence-initial participles
			// ("Registered BlockManager bm1") act as active predicates.
			if i == lo {
				return i, false, -1
			}
			return i, followedByNP(toks, i+1, hi) == false, -1
		}
		if t.Tag == TagVBD && !followedByNP(toks, i+1, hi) && i > lo {
			// Past form with no object and a preceding NP: ambiguous
			// active/passive ("result sent to driver" when tagged VBD);
			// treat as passive only if the verb also has a VBN reading.
			if tags, ok := lexicon[lemmaKey(t.Text)]; ok {
				for _, tg := range tags {
					if tg == TagVBN {
						return i, true, -1
					}
				}
			}
			return i, false, -1
		}
		return i, false, -1
	}
	return -1, false, -1
}

func lemmaKey(w string) string {
	return toLower(w)
}

func toLower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// isAuxiliary reports whether the word is a form of be/have used as an
// auxiliary.
func isAuxiliary(w string) bool {
	switch toLower(w) {
	case "is", "are", "was", "were", "be", "been", "being", "has", "have", "had", "am":
		return true
	}
	return false
}

// followedByNP reports whether a bare noun phrase starts at or after i
// (before any preposition) — evidence for an active reading.
func followedByNP(toks []Token, i, hi int) bool {
	for ; i < hi; i++ {
		t := toks[i]
		switch {
		case t.Tag == TagSYM || t.Tag == TagRB:
			continue
		case t.Tag == TagDT || t.Tag == TagJJ || t.Tag == TagCD || IsNoun(t.Tag):
			return true
		default:
			return false
		}
	}
	return false
}

// npHeadLeft finds the head (last noun) of the noun phrase that ends
// immediately left of idx, scanning down to lo. Intervening adverbs,
// punctuation and chain prepositions are skipped.
func npHeadLeft(toks []Token, lo, idx int) int {
	i := idx - 1
	for i >= lo {
		t := toks[i]
		if t.Tag == TagSYM || t.Tag == TagRB || t.Tag == TagIN || t.Tag == TagTO {
			i--
			continue
		}
		break
	}
	if i >= lo && IsNoun(toks[i].Tag) {
		return i
	}
	if i >= lo && toks[i].Tag == TagCD {
		// A numeric modifier may trail its head noun ("fetcher # 1 about
		// to …"); prefer the noun when one precedes the number.
		for j := i - 1; j >= lo; j-- {
			if toks[j].Tag == TagSYM {
				continue
			}
			if IsNoun(toks[j].Tag) {
				return j
			}
			break
		}
		// "4 finished" — a bare number can stand in for an omitted noun.
		return i
	}
	return -1
}

// npHeadRight finds the head of the noun phrase starting at or after i and
// returns (head index, index just past the NP). The head is the last noun
// of the maximal DT/JJ/CD/noun run; numeric-only phrases head at the
// number.
func npHeadRight(toks []Token, i, hi int) (int, int) {
	for i < hi && (toks[i].Tag == TagSYM || toks[i].Tag == TagRB) {
		i++
	}
	head := -1
	lastCD := -1
	j := i
	for ; j < hi; j++ {
		t := toks[j]
		switch {
		case IsNoun(t.Tag):
			head = j
		case t.Tag == TagJJ || t.Tag == TagDT:
		case t.Tag == TagCD:
			lastCD = j
		case t.Tag == TagSYM && t.Text == "#":
			// "fetcher # 1": the number is a modifier of the noun head.
		case t.Tag == TagSYM && (t.Text == "(" || t.Text == ")" || t.Text == "," || t.Text == "="):
			// NPs often carry parenthetical identifier annotations:
			// "task 1.0 in stage 1.0 (TID 4)"; a comma or '=' ends the NP.
			if head >= 0 || lastCD >= 0 {
				if head < 0 {
					head = lastCD
				}
				return head, j
			}
			return -1, j + 1
		default:
			if head < 0 {
				head = lastCD
			}
			return head, j
		}
	}
	if head < 0 {
		head = lastCD
	}
	return head, j
}
