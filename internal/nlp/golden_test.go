package nlp

import "testing"

// TestTaggerGoldenCorpus pins the tags of the load-bearing words across a
// corpus of realistic log lines from all five systems. Each case lists
// the tokens whose tags the downstream stages depend on.
func TestTaggerGoldenCorpus(t *testing.T) {
	cases := []struct {
		msg  string
		want map[string]string
	}{
		{"Changing view acls to hadoop",
			map[string]string{"Changing": TagVBG, "view": TagNN, "acls": TagNNS}},
		{"Connecting to driver spark://CoarseGrainedScheduler@host1:35000",
			map[string]string{"Connecting": TagVBG, "driver": TagNN}},
		// Regular past forms prefer the participle reading ("Registered X",
		// "freed by Y" dominate logs); the parser treats VBN and VBD roots
		// alike, so "started" pins to VBN here.
		{"MemoryStore started with capacity 366 MB",
			map[string]string{"MemoryStore": TagNNP, "started": TagVBN, "capacity": TagNN, "366": TagCD}},
		{"Created local directory at /tmp/blockmgr-8e2/11",
			map[string]string{"Created": TagVBN, "local": TagJJ, "directory": TagNN, "/tmp/blockmgr-8e2/11": TagNNP}},
		{"Registering BlockManager BlockManagerId_1_host3",
			map[string]string{"Registering": TagVBG, "BlockManager": TagNNP}},
		{"Got assigned task 42",
			map[string]string{"Got": TagVBD, "task": TagNN, "42": TagCD}},
		{"Getting 5 non-empty blocks out of 8 blocks",
			map[string]string{"Getting": TagVBG, "non-empty": TagJJ, "blocks": TagNNS}},
		{"Started 3 remote fetches in 12 ms",
			map[string]string{"Started": TagVBN, "remote": TagJJ, "fetches": TagNNS}},
		{"Invoking stop from shutdown hook",
			map[string]string{"Invoking": TagVBG, "stop": TagNN, "shutdown": TagNN, "hook": TagNN}},
		{"Job job_1551400000000_0001 transitioned from INITED to SETUP",
			map[string]string{"Job": TagNN, "job_1551400000000_0001": TagNNP, "transitioned": TagVBN}},
		{"Assigning host2:13562 with 1 map outputs to fetcher#3",
			map[string]string{"Assigning": TagVBG, "host2:13562": TagNNP, "map": TagNN, "outputs": TagNNS}},
		{"Merging 12 sorted segments",
			map[string]string{"Merging": TagVBG, "sorted": TagJJ, "segments": TagNNS}},
		{"Saved output of task attempt_01 to hdfs://nn1:8020/out/part-r-00000",
			map[string]string{"Saved": TagVBN, "output": TagNN, "task": TagNN}},
		{"Initializing table scan operator TS_0",
			map[string]string{"Initializing": TagVBG, "table": TagNN, "scan": TagNN, "operator": TagNN, "TS_0": TagNNP}},
		// "set" after a noun and before "to" reads nominal (like "outputs
		// to fetcher"); the operation in this key is a known miss (§6.2's
		// grammatically-awkward keys).
		{"Vertex vertex_01 parallelism set to 8 tasks",
			map[string]string{"Vertex": TagNN, "parallelism": TagNN}},
		{"Launching container container_01 on node host4",
			map[string]string{"Launching": TagVBG, "container": TagNN, "node": TagNN, "host4": TagNNP}},
		{"Took 12.07 seconds to build instance instance-0a1b2c3d",
			map[string]string{"Took": TagVBD, "12.07": TagCD, "seconds": TagNNS, "build": TagVB}},
		{"Restoring parameters from checkpoint at /ckpt/model.ckpt-0",
			map[string]string{"Restoring": TagVBG, "parameters": TagNNS, "checkpoint": TagNN}},
		{"global step 60 reached loss of 1.7580",
			map[string]string{"global": TagJJ, "step": TagNN, "reached": TagVBN, "loss": TagNN, "1.7580": TagCD}},
	}
	for _, c := range cases {
		got := map[string]string{}
		for _, tok := range TagMessage(c.msg) {
			if _, ok := got[tok.Text]; !ok {
				got[tok.Text] = tok.Tag
			}
		}
		for word, want := range c.want {
			if got[word] != want {
				t.Errorf("%q: %q tagged %s, want %s", c.msg, word, got[word], want)
			}
		}
	}
}
