package nlp

import "testing"

var benchMsgs = []string{
	"fetcher#1 about to shuffle output of map attempt_1551400000000_0001_m_000017_0",
	"host1:13562 freed by fetcher#1 in 4ms",
	"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
	"Registering block manager host1:38211 with 366.3 MB RAM, BlockManagerId(driver, host1, 38211, None)",
	"Container container_1551400000000_0001_01_000002 transitioned from LOCALIZED to RUNNING",
	"memoryLimit=334338464 mergeThreshold=220663392 ioSortFactor=10",
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchMsgs[i%len(benchMsgs)])
	}
}

func BenchmarkTagMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TagMessage(benchMsgs[i%len(benchMsgs)])
	}
}

func BenchmarkParseDeps(b *testing.B) {
	tagged := make([][]Token, len(benchMsgs))
	for i, m := range benchMsgs {
		tagged[i] = TagMessage(m)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseDeps(tagged[i%len(tagged)])
	}
}

func BenchmarkLemma(b *testing.B) {
	words := [][2]string{{"directories", TagNNS}, {"Registered", TagVBN}, {"metrics", TagNNS}, {"initializing", TagVBG}}
	for i := 0; i < b.N; i++ {
		w := words[i%len(words)]
		Lemma(w[0], w[1])
	}
}
