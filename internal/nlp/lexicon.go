package nlp

import "strings"

// The lexicon maps lower-cased surface forms to Penn Treebank tags in
// priority order (first = preferred reading absent contextual evidence).
// It is built at init from closed-class word lists, a base-verb list whose
// inflections are generated, a domain-noun list and an adjective list.
// Log vocabulary is narrow, so a few hundred lemmas give near-total
// coverage of analytics-system logs; everything else falls to the tagger's
// suffix/shape heuristics.
var lexicon = map[string][]string{}

// addLex appends tags for a word, keeping earlier (higher-priority)
// readings first and skipping duplicates.
func addLex(word string, tags ...string) {
	have := lexicon[word]
	for _, t := range tags {
		dup := false
		for _, h := range have {
			if h == t {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, t)
		}
	}
	lexicon[word] = have
}

// closedClass lists function words with a single dominant reading in logs.
var closedClass = map[string]string{
	// determiners
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "all": TagDT, "each": TagDT, "every": TagDT,
	"any": TagDT, "some": TagDT, "no": TagDT, "another": TagDT, "both": TagDT,
	"many": TagDT, "few": TagDT, "several": TagDT, "most": TagDT, "much": TagDT,
	// prepositions / subordinating conjunctions
	"of": TagIN, "in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN,
	"for": TagIN, "from": TagIN, "with": TagIN, "without": TagIN,
	"into": TagIN, "onto": TagIN, "over": TagIN, "under": TagIN,
	"after": TagIN, "before": TagIN, "during": TagIN, "until": TagIN,
	"via": TagIN, "per": TagIN, "as": TagIN, "out": TagIN, "off": TagIN,
	"within": TagIN, "about": TagIN, "against": TagIN, "between": TagIN,
	"because": TagIN, "since": TagIN, "while": TagIN, "if": TagIN,
	"whether": TagIN, "than": TagIN, "through": TagIN, "towards": TagIN,
	"up": TagIN, "down": TagIN,
	// conjunctions
	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC,
	// to
	"to": TagTO,
	// pronouns
	"it": TagPRP, "its": TagPRP, "itself": TagPRP, "we": TagPRP, "they": TagPRP,
	// modals
	"will": TagMD, "would": TagMD, "can": TagMD, "cannot": TagMD,
	"could": TagMD, "should": TagMD, "must": TagMD, "may": TagMD, "might": TagMD,
	// adverbs common in logs
	"not": TagRB, "now": TagRB, "already": TagRB, "again": TagRB,
	"successfully": TagRB, "currently": TagRB, "only": TagRB, "also": TagRB,
	"still": TagRB, "yet": TagRB, "soon": TagRB, "immediately": TagRB,
	"gracefully": TagRB, "normally": TagRB, "later": TagRB, "too": TagRB,
	"instead": TagRB, "there": TagRB, "here": TagRB, "randomly": TagRB,
	"asynchronously": TagRB, "periodically": TagRB, "locally": TagRB,
	"remotely": TagRB, "directly": TagRB, "first": TagRB,
}

// irregularVerbs maps base → [past, past participle]. 3rd-person -s and
// -ing are still generated regularly from the base.
var irregularVerbs = map[string][2]string{
	"get":    {"got", "gotten"},
	"send":   {"sent", "sent"},
	"read":   {"read", "read"},
	"tell":   {"told", "told"},
	"take":   {"took", "taken"},
	"run":    {"ran", "run"},
	"begin":  {"began", "begun"},
	"write":  {"wrote", "written"},
	"shut":   {"shut", "shut"},
	"set":    {"set", "set"},
	"put":    {"put", "put"},
	"find":   {"found", "found"},
	"lose":   {"lost", "lost"},
	"make":   {"made", "made"},
	"keep":   {"kept", "kept"},
	"leave":  {"left", "left"},
	"give":   {"gave", "given"},
	"go":     {"went", "gone"},
	"do":     {"did", "done"},
	"see":    {"saw", "seen"},
	"hit":    {"hit", "hit"},
	"split":  {"split", "split"},
	"spill":  {"spilled", "spilt"},
	"build":  {"built", "built"},
	"bind":   {"bound", "bound"},
	"throw":  {"threw", "thrown"},
	"catch":  {"caught", "caught"},
	"hold":   {"held", "held"},
	"meet":   {"met", "met"},
	"choose": {"chose", "chosen"},
}

// baseVerbs lists the verbs observed in analytics-system logs. Inflections
// are generated at init.
var baseVerbs = []string{
	"start", "stop", "register", "initialize", "initiate", "launch", "fetch",
	"shuffle", "free", "assign", "complete", "finish", "receive", "allocate",
	"merge", "sort", "clean", "close", "open", "connect", "disconnect",
	"submit", "schedule", "kill", "abort", "retry", "store", "remove", "add",
	"create", "delete", "update", "report", "request", "process", "commit",
	"execute", "invoke", "call", "load", "save", "delegate", "transition",
	"succeed", "fail", "expire", "terminate", "wait", "notify", "download",
	"upload", "copy", "move", "rename", "flush", "spawn", "fork", "exit",
	"reach", "exceed", "enable", "disable", "authenticate", "authorize",
	"change", "use", "try", "attempt", "handle", "resolve", "bind", "listen",
	"accept", "reject", "deny", "grant", "refresh", "recover", "restart",
	"resume", "suspend", "pause", "skip", "ignore", "drop", "discard",
	"evict", "replicate", "persist", "serialize", "deserialize", "compress",
	"decompress", "encrypt", "decrypt", "validate", "verify", "check",
	"scan", "search", "estimate", "compute", "calculate", "aggregate",
	"collect", "emit", "output", "generate", "produce", "consume", "poll",
	"acknowledge", "broadcast", "stream", "cache", "uncache", "unregister",
	"deallocate", "preempt", "localize", "contact", "ping", "mark", "track",
	"monitor", "measure", "record", "log", "trace", "dump", "rollback",
	"reload", "rebuild", "rerun", "need", "shrink", "grow", "stage",
	"return", "signal", "map", "reduce", "partition", "combine", "group",
	"join", "filter", "transform", "materialize", "instantiate", "destroy",
	"recommission", "decommission", "blacklist", "whitelist", "renew",
	"book", "reserve", "unreserve", "acquire", "release", "lock", "unlock",
	"own", "serve", "forward", "redirect", "respond", "reply", "time",
	"satisfy", "recalculate", "reschedule", "interrupt", "shut",
}

// domainNouns lists nouns from the analytics-log domain. Plurals are
// generated at init.
var domainNouns = []string{
	"task", "job", "container", "block", "manager", "memory", "executor",
	"driver", "stage", "fetcher", "output", "input", "node", "host",
	"directory", "file", "path", "data", "byte", "attempt", "application",
	"master", "system", "metric", "event", "heartbeat", "process", "thread",
	"segment", "pass", "record", "partition", "query", "vertex", "dag",
	"session", "token", "resource", "limit", "capacity", "size", "time",
	"handler", "hook", "variable", "result", "instance", "image",
	"disk", "buffer", "stream", "server", "service", "client", "connection",
	"port", "address", "user", "acl", "permission", "level", "progress",
	"status", "state", "error", "exception", "failure", "timeout",
	"cleanup", "folder", "store", "storage", "scheduler", "allocator",
	"tracker", "committer", "listener", "endpoint", "registry", "view",
	"mode", "version", "class", "plugin", "operator", "phase", "checkpoint",
	"worker", "core", "machine", "cluster", "queue", "pool", "shutdown",
	"startup", "configuration", "config", "property", "value", "key",
	"identifier", "id", "name", "type", "count", "number", "total",
	"rate", "ratio", "percentage", "second", "millisecond", "minute",
	"hour", "slot", "round", "iteration", "loop", "batch", "window",
	"offset", "length", "width", "height", "depth", "row", "column",
	"table", "database", "schema", "index", "entry", "element", "item",
	"object", "component", "module", "package", "library", "framework",
	"protocol", "message", "signature", "certificate", "credential",
	"authentication", "authorization", "security", "network", "interface",
	"gateway", "proxy", "router", "switch", "channel", "socket", "pipe",
	"schedule", "lifecycle", "lifespan", "duration", "interval", "period", "deadline",
	"environment", "context", "scope", "domain", "zone", "region", "rack",
	"replica", "copy", "backup", "snapshot", "log", "logger", "appender",
	"console", "terminal", "command", "argument", "option", "flag",
	"parameter", "setting", "default", "override", "priority", "weight",
	"score", "rank", "position", "location", "locality", "source", "target",
	"destination", "origin", "sink", "upstream", "downstream", "parent",
	"child", "sibling", "root", "leaf", "branch", "tree", "graph", "edge",
	"cycle", "chain", "sequence", "order", "list", "array", "set",
	"collection", "bucket", "bin", "shard", "chunk", "piece", "part",
	"fraction", "portion", "share", "quota", "budget", "allocation",
	"reservation", "assignment", "placement", "mapping", "binding",
	"association", "relation", "dependency", "requirement", "constraint",
	"rule", "policy", "strategy", "algorithm", "method", "function",
	"procedure", "routine", "subroutine", "operation", "action", "activity",
	"step", "transition", "tuple", "bit", "word", "line", "page",
	"frame", "header", "footer", "body", "payload", "content", "format",
	"encoding", "compression", "encryption", "checksum", "hash", "digest",
	"sample", "trace", "profile", "report", "summary", "detail", "info",
	"information", "knowledge", "insight", "statistic", "measurement",
	"observation", "reading", "signal", "alarm", "alert", "warning",
	"notification", "reminder", "request", "response", "reply", "answer",
	"call", "invocation", "execution", "completion", "termination",
	"initialization", "finalization", "preparation", "validation",
	"verification", "inspection", "audit", "review", "analysis", "merge",
	"spill", "split", "fetch", "map", "reduce", "shuffle", "broadcast",
	"cache", "commit", "rollback", "flush", "sync", "update", "upgrade",
	"downgrade", "patch", "fix", "bug", "issue", "problem", "cause",
	"effect", "impact", "consequence", "outcome", "retry", "delegation",
	"renewer", "filesystem", "namenode", "datanode", "localizer", "uberization",
	"kind", "sleep", "code", "tree", "reference", "slave", "range", "factor",
	"plan", "runner", "processor", "daemon", "agent", "monitor", "collector",
	"reporter", "emitter", "writer", "reader", "merger", "sorter", "combiner",
	"shuffler", "deserializer", "serializer", "decoder", "encoder",
}

// adjectives lists attributive adjectives seen in logs.
var adjectives = []string{
	"remote", "local", "temporary", "final", "initial", "new", "empty",
	"non-empty", "successful", "last", "physical", "virtual", "current",
	"available", "sorted", "complete", "incomplete", "abnormal", "normal",
	"maximum", "minimum", "internal", "external", "idle", "active",
	"inactive", "pending", "running", "finished", "failed", "killed",
	"unassigned", "assigned", "unhealthy", "healthy", "valid", "invalid",
	"stale", "fresh", "dirty", "big", "small", "large", "short", "long",
	"high", "low", "fast", "slow", "early", "late", "old", "soft", "hard",
	"full", "partial", "main", "primary", "secondary", "single", "multiple",
	"next", "previous", "such", "same", "different", "various", "certain",
	"possible", "impossible", "unable", "able", "ready", "busy", "free",
	"open", "closed", "shared", "exclusive", "public", "private",
	"configured", "default", "custom", "unknown", "null", "missing",
	"extra", "additional", "intermediate", "raw", "clean", "whole",
	"speculative", "preemptible", "lazy", "eager", "persistent",
	"transient", "ephemeral", "permanent", "deprecated", "legacy",
	"completed", "global",
}

// nounVerbAmbiguous lists words whose noun reading should win when flanked
// by noun evidence even though they inflect as verbs too.
var nounVerbAmbiguous = []string{
	"output", "map", "reduce", "shuffle", "merge", "spill", "split", "fetch",
	"request", "process", "store", "cache", "commit", "report", "signal",
	"attempt", "transition", "record", "log", "trace", "broadcast", "stream",
	"stop", "scan",
	"copy", "result", "call", "time", "stage", "partition", "group",
	"update", "retry", "sort", "flush", "cleanup", "start", "return",
}

func init() {
	for w, t := range closedClass {
		addLex(w, t)
	}
	// Forms of "be" and "have" get verb tags directly.
	addLex("is", TagVBZ)
	addLex("are", TagVBP)
	addLex("was", TagVBD)
	addLex("were", TagVBD)
	addLex("be", TagVB)
	addLex("been", TagVBN)
	addLex("being", TagVBG)
	addLex("has", TagVBZ)
	addLex("have", TagVBP)
	addLex("had", TagVBD)
	addLex("am", TagVBP)

	for _, v := range baseVerbs {
		addLex(v, TagVB)
		addLex(thirdPerson(v), TagVBZ)
		addLex(gerund(v), TagVBG)
		if irr, ok := irregularVerbs[v]; ok {
			addLex(irr[0], TagVBD)
			addLex(irr[1], TagVBN)
		} else {
			p := pastTense(v)
			addLex(p, TagVBN, TagVBD) // participle reading first: logs favour "Registered X", "freed by Y"
		}
	}
	for v, irr := range irregularVerbs {
		// Irregular verbs not in baseVerbs (e.g. "see") still get entries.
		addLex(v, TagVB)
		addLex(thirdPerson(v), TagVBZ)
		addLex(gerund(v), TagVBG)
		addLex(irr[0], TagVBD)
		addLex(irr[1], TagVBN)
	}
	for _, n := range domainNouns {
		addLex(n, TagNN)
		addLex(plural(n), TagNNS)
	}
	for _, a := range adjectives {
		addLex(a, TagJJ)
	}
	// Ambiguous words: ensure the noun reading is present; context rules
	// pick between readings.
	for _, w := range nounVerbAmbiguous {
		addLex(w, TagNN)
	}
	// A few forced fixes where generation produces the wrong surface form
	// or the domain demands an unusual priority.
	lexicon["done"] = []string{TagVBN}
	lexicon["data"] = []string{TagNN}
	lexicon["metrics"] = []string{TagNNS}
	lexicon["bytes"] = []string{TagNNS}
	lexicon["ms"] = []string{TagNN}
	lexicon["mb"] = []string{TagNN}
	lexicon["kb"] = []string{TagNN}
	lexicon["gb"] = []string{TagNN}
	lexicon["left"] = []string{TagJJ, TagVBN}
	lexicon["freed"] = []string{TagVBN, TagVBD}
}

// thirdPerson forms the 3rd-person singular present of a base verb.
func thirdPerson(v string) string {
	switch {
	case strings.HasSuffix(v, "s") || strings.HasSuffix(v, "sh") ||
		strings.HasSuffix(v, "ch") || strings.HasSuffix(v, "x") || strings.HasSuffix(v, "z"):
		return v + "es"
	case strings.HasSuffix(v, "y") && len(v) > 1 && !isVowel(v[len(v)-2]):
		return v[:len(v)-1] + "ies"
	case strings.HasSuffix(v, "o"):
		return v + "es"
	default:
		return v + "s"
	}
}

// gerund forms the -ing participle of a base verb.
func gerund(v string) string {
	switch {
	case strings.HasSuffix(v, "ie"):
		return v[:len(v)-2] + "ying"
	case strings.HasSuffix(v, "e") && !strings.HasSuffix(v, "ee") && v != "be":
		return v[:len(v)-1] + "ing"
	case doublesFinal(v):
		return v + string(v[len(v)-1]) + "ing"
	default:
		return v + "ing"
	}
}

// pastTense forms the regular -ed past of a base verb.
func pastTense(v string) string {
	switch {
	case strings.HasSuffix(v, "e"):
		return v + "d"
	case strings.HasSuffix(v, "y") && len(v) > 1 && !isVowel(v[len(v)-2]):
		return v[:len(v)-1] + "ied"
	case doublesFinal(v):
		return v + string(v[len(v)-1]) + "ed"
	default:
		return v + "ed"
	}
}

// doublesFinal reports whether a verb doubles its final consonant before
// -ing/-ed (CVC pattern in a stressed final syllable; approximated for the
// verbs in this lexicon).
func doublesFinal(v string) bool {
	switch v {
	case "stop", "submit", "commit", "drop", "skip", "map", "ping", "plan",
		"refer", "transfer", "swap", "trim", "log", "tag", "grab", "scan":
		return v != "ping" // "pinging", not "pingging"
	}
	return false
}

// plural forms the plural of a noun.
func plural(n string) string {
	switch {
	case strings.HasSuffix(n, "is") && len(n) > 3:
		return n[:len(n)-2] + "es" // analysis → analyses
	case strings.HasSuffix(n, "s") || strings.HasSuffix(n, "sh") ||
		strings.HasSuffix(n, "ch") || strings.HasSuffix(n, "x") || strings.HasSuffix(n, "z"):
		return n + "es"
	case strings.HasSuffix(n, "y") && len(n) > 1 && !isVowel(n[len(n)-2]):
		return n[:len(n)-1] + "ies"
	default:
		return n + "s"
	}
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// LookupLexicon returns the tag readings for a lower-cased word and whether
// the word is known.
func LookupLexicon(word string) ([]string, bool) {
	tags, ok := lexicon[word]
	return tags, ok
}
