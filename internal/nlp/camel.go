package nlp

import (
	"strings"
	"unicode"
)

// IsCamel reports whether word follows the camel-case class-name
// convention: at least two case transitions with an interior upper-case
// letter ("MapTask", "BlockManagerId", "taskAttempt"). Single capitalized
// words ("Starting") are not camel case.
func IsCamel(word string) bool {
	if len(word) < 2 || strings.ContainsAny(word, "_-#/:.") || hasDigit(word) {
		return false
	}
	interiorUpper := false
	hasLower := false
	for i, r := range word {
		if !unicode.IsLetter(r) {
			return false
		}
		if unicode.IsUpper(r) && i > 0 {
			interiorUpper = true
		}
		if unicode.IsLower(r) {
			hasLower = true
		}
	}
	return interiorUpper && hasLower
}

// SplitCamel splits a camel-case word into lower-cased words, keeping
// acronym runs together: "MapTask" → [map task], "HDFSBlockManager" →
// [hdfs block manager], "taskAttemptID" → [task attempt id]. Non-camel
// input returns the lower-cased word unchanged. This implements the
// camel-case entity filter of §3.1.
func SplitCamel(word string) []string {
	if word == "" {
		return nil
	}
	runes := []rune(word)
	var parts []string
	start := 0
	for i := 1; i < len(runes); i++ {
		prev, cur := runes[i-1], runes[i]
		boundary := false
		switch {
		case unicode.IsLower(prev) && unicode.IsUpper(cur):
			boundary = true // wordBreak: "mapTask"
		case unicode.IsUpper(prev) && unicode.IsUpper(cur) && i+1 < len(runes) && unicode.IsLower(runes[i+1]):
			boundary = true // acronym end: "HDFSBlock" splits before "Block"
		case unicode.IsLetter(prev) != unicode.IsLetter(cur):
			boundary = true // letter/digit transition
		}
		if boundary {
			parts = append(parts, strings.ToLower(string(runes[start:i])))
			start = i
		}
	}
	parts = append(parts, strings.ToLower(string(runes[start:])))
	return parts
}

// CamelPhrase is SplitCamel joined with spaces: "MapTask" → "map task".
func CamelPhrase(word string) string {
	return strings.Join(SplitCamel(word), " ")
}
