package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMergeAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Merge(path, "BenchmarkA", map[string]float64{"logs_per_sec": 100}); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, "BenchmarkB", map[string]float64{"logs_per_sec": 200}); err != nil {
		t.Fatal(err)
	}
	// A re-run replaces its own entry, keeps the other.
	if err := Merge(path, "BenchmarkA", map[string]float64{"logs_per_sec": 150}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatalf("archive not valid JSON: %v", err)
	}
	if all["BenchmarkA"]["logs_per_sec"] != 150 || all["BenchmarkB"]["logs_per_sec"] != 200 {
		t.Fatalf("archive = %v", all)
	}
}

func TestMergeEmptyPathNoop(t *testing.T) {
	if err := Merge("", "BenchmarkA", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeReplacesMalformedArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, "BenchmarkA", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var all map[string]map[string]float64
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatalf("archive not repaired: %v", err)
	}
	if all["BenchmarkA"]["x"] != 1 {
		t.Fatalf("archive = %v", all)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]map[string]float64{
		"Fast":  {"logs_per_sec": 1000},
		"Slow":  {"logs_per_sec": 1000},
		"Gone":  {"logs_per_sec": 500},
		"NoMet": {"other": 3},
	}
	cur := map[string]map[string]float64{
		"Fast": {"logs_per_sec": 900}, // -10%: inside band
		"Slow": {"logs_per_sec": 600}, // -40%: regression
	}
	ds := Compare(base, cur, "logs_per_sec", 0.25, HigherIsBetter)
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want 3 (NoMet skipped): %+v", len(ds), ds)
	}
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["Fast"]; d.Regressed || d.Ratio != 0.9 {
		t.Errorf("Fast = %+v, want ok at 0.9x", d)
	}
	if d := byName["Slow"]; !d.Regressed || d.Missing {
		t.Errorf("Slow = %+v, want regressed", d)
	}
	if d := byName["Gone"]; !d.Regressed || !d.Missing {
		t.Errorf("Gone = %+v, want missing+regressed", d)
	}
}

func TestCompareLowerIsBetter(t *testing.T) {
	base := map[string]map[string]float64{
		"Lean":    {"allocs_per_record": 10},
		"Bloated": {"allocs_per_record": 10},
		"Dropped": {"allocs_per_record": 10},
	}
	cur := map[string]map[string]float64{
		"Lean":    {"allocs_per_record": 11}, // +10%: inside band
		"Bloated": {"allocs_per_record": 15}, // +50%: regression
		"Dropped": {"logs_per_sec": 1},       // metric vanished: fail loudly
	}
	ds := Compare(base, cur, "allocs_per_record", 0.25, LowerIsBetter)
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["Lean"]; d.Regressed {
		t.Errorf("Lean = %+v, want ok at 1.1x", d)
	}
	if d := byName["Bloated"]; !d.Regressed || d.Missing {
		t.Errorf("Bloated = %+v, want regressed", d)
	}
	if d := byName["Dropped"]; !d.Regressed || !d.Missing {
		t.Errorf("Dropped = %+v, want missing+regressed", d)
	}
}

func TestParseDirection(t *testing.T) {
	if d, err := ParseDirection("higher"); err != nil || d != HigherIsBetter {
		t.Errorf("higher = %v, %v", d, err)
	}
	if d, err := ParseDirection("lower"); err != nil || d != LowerIsBetter {
		t.Errorf("lower = %v, %v", d, err)
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Error("sideways parsed")
	}
}

func TestLoadRoundTripsMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Merge(path, "B", map[string]float64{"logs_per_sec": 42}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["B"]["logs_per_sec"] != 42 {
		t.Errorf("Load = %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}
