package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMergeAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Merge(path, "BenchmarkA", map[string]float64{"logs_per_sec": 100}); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, "BenchmarkB", map[string]float64{"logs_per_sec": 200}); err != nil {
		t.Fatal(err)
	}
	// A re-run replaces its own entry, keeps the other.
	if err := Merge(path, "BenchmarkA", map[string]float64{"logs_per_sec": 150}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatalf("archive not valid JSON: %v", err)
	}
	if all["BenchmarkA"]["logs_per_sec"] != 150 || all["BenchmarkB"]["logs_per_sec"] != 200 {
		t.Fatalf("archive = %v", all)
	}
}

func TestMergeEmptyPathNoop(t *testing.T) {
	if err := Merge("", "BenchmarkA", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeReplacesMalformedArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, "BenchmarkA", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var all map[string]map[string]float64
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatalf("archive not repaired: %v", err)
	}
	if all["BenchmarkA"]["x"] != 1 {
		t.Fatalf("archive = %v", all)
	}
}
