// Package benchjson archives benchmark headline numbers as JSON so the
// perf trajectory stays machine-readable across commits. Each archive
// file holds one object per benchmark name; Merge rewrites the file with
// one benchmark's metrics replaced, preserving the others, so repeated
// bench runs accumulate into a single snapshot (BENCH_spell.json for the
// spell/throughput suite, BENCH_detect.json for the conformance
// detection suite — same schema).
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
)

// Merge folds one benchmark's metrics into the archive at path. A
// malformed existing archive is replaced rather than failing the bench.
// An empty path is a no-op, so callers can pass an unset env var
// directly.
func Merge(path, name string, metrics map[string]float64) error {
	if path == "" {
		return nil
	}
	all := map[string]map[string]float64{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &all); err != nil {
			all = map[string]map[string]float64{}
		}
	}
	all[name] = metrics
	raw, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal bench json: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
