package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Load reads an archive written by Merge: benchmark name → metric →
// value.
func Load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	all := map[string]map[string]float64{}
	if err := json.Unmarshal(raw, &all); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return all, nil
}

// Delta is one benchmark's baseline-vs-current comparison on a single
// metric (higher is better).
type Delta struct {
	Name      string
	Baseline  float64
	Current   float64
	Ratio     float64 // Current / Baseline
	Missing   bool    // benchmark absent from the current archive
	Regressed bool    // Ratio < 1 - tolerance (or Missing)
}

// Compare checks every baseline benchmark that carries metric against
// the current archive. tolerance is the allowed fractional slowdown
// (0.25 = current may be up to 25% below baseline before it counts as a
// regression); higher-is-better semantics. Baseline entries without the
// metric are skipped; results come back sorted by name.
func Compare(baseline, current map[string]map[string]float64, metric string, tolerance float64) []Delta {
	var out []Delta
	for name, metrics := range baseline {
		base, ok := metrics[metric]
		if !ok {
			continue
		}
		d := Delta{Name: name, Baseline: base}
		cur, ok := current[name]
		if !ok {
			d.Missing, d.Regressed = true, true
		} else {
			d.Current = cur[metric]
			if base > 0 {
				d.Ratio = d.Current / base
			}
			d.Regressed = d.Ratio < 1-tolerance
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
