package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Load reads an archive written by Merge: benchmark name → metric →
// value.
func Load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	all := map[string]map[string]float64{}
	if err := json.Unmarshal(raw, &all); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return all, nil
}

// Direction says which way a metric improves: throughput-style metrics
// regress when they fall, allocation/latency-style metrics regress when
// they rise.
type Direction int

const (
	HigherIsBetter Direction = iota
	LowerIsBetter
)

// ParseDirection maps the CLI spelling ("higher" | "lower") to a
// Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "higher":
		return HigherIsBetter, nil
	case "lower":
		return LowerIsBetter, nil
	}
	return 0, fmt.Errorf("unknown direction %q (want higher or lower)", s)
}

// Delta is one benchmark's baseline-vs-current comparison on a single
// metric.
type Delta struct {
	Name      string
	Baseline  float64
	Current   float64
	Ratio     float64 // Current / Baseline
	Missing   bool    // benchmark (or its metric) absent from the current archive
	Regressed bool    // outside the tolerance band in the bad direction (or Missing)
}

// Compare checks every baseline benchmark that carries metric against
// the current archive. tolerance is the allowed fractional drift toward
// worse: under HigherIsBetter, current may fall up to tolerance below
// baseline (0.25 = -25%) before it counts as a regression; under
// LowerIsBetter it may rise up to tolerance above. Baseline entries
// without the metric are skipped; a current entry that dropped the
// metric counts as missing (a silently vanished number should fail
// loudly, not pass as zero). Results come back sorted by name.
func Compare(baseline, current map[string]map[string]float64, metric string, tolerance float64, dir Direction) []Delta {
	var out []Delta
	for name, metrics := range baseline {
		base, ok := metrics[metric]
		if !ok {
			continue
		}
		d := Delta{Name: name, Baseline: base}
		cur, hasBench := current[name]
		curVal, hasMetric := cur[metric]
		if !hasBench || !hasMetric {
			d.Missing, d.Regressed = true, true
		} else {
			d.Current = curVal
			if base > 0 {
				d.Ratio = d.Current / base
			}
			if dir == LowerIsBetter {
				d.Regressed = d.Ratio > 1+tolerance
			} else {
				d.Regressed = d.Ratio < 1-tolerance
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
