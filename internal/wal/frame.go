// Package wal is the durability layer under intellogd's ingest path: a
// segment-rotated, CRC-framed write-ahead log (Log) that makes a 202
// ack mean "this record survives a crash", and a dead-letter queue
// (DLQ) that quarantines records failing parse or size validation
// instead of poisoning their batch.
//
// The frame vocabulary here is the ILS1 envelope the binary ingest
// protocol already speaks (internal/server/wirebin.go binds to these
// exported primitives), so one CRC/length/bounds discipline covers the
// wire and the disk: a WAL segment is a sequence of ILS1 frames and a
// torn tail is detected exactly like a corrupt wire frame — by length
// bounds and CRC, never by trusting bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"intellog/internal/logging"
)

// MaxFrame bounds a frame a reader will accept regardless of
// configuration — the decode-side allocation cap.
const MaxFrame = 64 << 20

// ZeroTimeNano is the on-wire/on-disk sentinel for the zero time.Time,
// whose UnixNano is undefined (year 1 is outside the int64-nanosecond
// range).
const ZeroTimeNano = int64(-1 << 63)

// ErrWire marks protocol-level decode failures (distinct from I/O
// errors, which pass through unwrapped).
var ErrWire = errors.New("wire protocol error")

// Errf builds an ErrWire-wrapped decode error.
func Errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
}

// AppendFrame wraps a finished body in the frame envelope:
//
//	u32  LE payload length n (= 1 type byte + body + 4 CRC bytes)
//	u8   frame type
//	...  body (n-5 bytes)
//	u32  LE CRC-32 (IEEE) over type byte + body
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	n := 1 + len(body) + 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, typ)
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(dst[len(dst)-1-len(body):])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// ReadFrame reads one frame, reusing buf (grown as needed) for the
// payload. The returned body aliases the buffer and is valid until the
// next call. max bounds the accepted frame length (≤ 0 means MaxFrame).
func ReadFrame(r io.Reader, buf []byte, max int) (typ byte, body, newBuf []byte, err error) {
	if max <= 0 || max > MaxFrame {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 5 {
		return 0, nil, buf, Errf("frame length %d below minimum", n)
	}
	if n > max {
		return 0, nil, buf, Errf("frame length %d exceeds limit %d", n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n, n+n/2)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	want := binary.LittleEndian.Uint32(buf[n-4:])
	if got := crc32.ChecksumIEEE(buf[:n-4]); got != want {
		return 0, nil, buf, Errf("frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return buf[0], buf[1 : n-4], buf, nil
}

// --- body primitives ---------------------------------------------------

// Uvarint decodes a uvarint, returning ok=false on malformed or
// truncated input.
func Uvarint(p []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, false
	}
	return v, p[n:], true
}

// Varint is Uvarint for signed values.
func Varint(p []byte) (v int64, rest []byte, ok bool) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, false
	}
	return v, p[n:], true
}

// Bytes decodes a uvarint-length-prefixed byte string as a view into p.
func Bytes(p []byte) (s, rest []byte, ok bool) {
	l, p, ok := Uvarint(p)
	if !ok || l > uint64(len(p)) {
		return nil, nil, false
	}
	return p[:l], p[l:], true
}

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// --- record codec ------------------------------------------------------

// AppendRecord encodes one logging.Record in the ILS1 batch layout:
// UnixNano + zone offset (ZeroTimeNano sentinel for the zero time),
// varint level, then uvarint-prefixed source/message/framework/session/
// template. The same bytes travel in wire Batch frames and WAL entries.
func AppendRecord(dst []byte, rec *logging.Record) []byte {
	nano := ZeroTimeNano
	off := 0
	if !rec.Time.IsZero() {
		nano = rec.Time.UnixNano()
		_, off = rec.Time.Zone()
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nano))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(off)))
	dst = binary.AppendVarint(dst, int64(rec.Level))
	dst = AppendString(dst, rec.Source)
	dst = AppendString(dst, rec.Message)
	dst = AppendString(dst, string(rec.Framework))
	dst = AppendString(dst, rec.SessionID)
	dst = AppendString(dst, rec.TemplateID)
	return dst
}

// DecodeRecord decodes one AppendRecord-encoded record, plain-copying
// every string (the boot-time replay path; the serving wire keeps its
// interning decoder in internal/server).
func DecodeRecord(p []byte) (rec logging.Record, rest []byte, err error) {
	if len(p) < 12 {
		return rec, nil, Errf("record truncated")
	}
	nano := int64(binary.LittleEndian.Uint64(p))
	off := int32(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	lvl, p, ok := Varint(p)
	if !ok {
		return rec, nil, Errf("record: bad level")
	}
	rec.Level = logging.Level(lvl)
	if nano != ZeroTimeNano {
		t := time.Unix(0, nano)
		if off == 0 {
			rec.Time = t.UTC()
		} else {
			rec.Time = t.In(time.FixedZone("", int(off)))
		}
	}
	var b []byte
	if b, p, ok = Bytes(p); !ok {
		return rec, nil, Errf("record: bad source")
	}
	rec.Source = string(b)
	if b, p, ok = Bytes(p); !ok {
		return rec, nil, Errf("record: bad message")
	}
	rec.Message = string(b)
	if b, p, ok = Bytes(p); !ok {
		return rec, nil, Errf("record: bad framework")
	}
	rec.Framework = logging.Framework(b)
	if b, p, ok = Bytes(p); !ok {
		return rec, nil, Errf("record: bad session")
	}
	rec.SessionID = string(b)
	if b, p, ok = Bytes(p); !ok {
		return rec, nil, Errf("record: bad template")
	}
	rec.TemplateID = string(b)
	return rec, p, nil
}
