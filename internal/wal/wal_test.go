package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"intellog/internal/logging"
)

func walRecords(prefix string, n int) []logging.Record {
	recs := make([]logging.Record, n)
	base := time.Unix(1700000000, 0).UTC()
	for i := range recs {
		recs[i] = logging.Record{
			Time:      base.Add(time.Duration(i) * time.Second),
			Level:     logging.Info,
			Source:    "scheduler.TaskSetManager",
			Message:   fmt.Sprintf("%s message %d", prefix, i),
			Framework: logging.Spark,
			SessionID: fmt.Sprintf("%s-sess-%d", prefix, i%3),
		}
	}
	return recs
}

func sameRecord(t *testing.T, got, want logging.Record) {
	t.Helper()
	if !got.Time.Equal(want.Time) || got.Level != want.Level ||
		got.Source != want.Source || got.Message != want.Message ||
		got.Framework != want.Framework || got.SessionID != want.SessionID ||
		got.TemplateID != want.TemplateID {
		t.Fatalf("record mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func collect(t *testing.T, l *Log, cursor uint64) []logging.Record {
	t.Helper()
	var out []logging.Record
	n, err := l.ReplayAfter(cursor, func(recs []logging.Record) error {
		out = append(out, recs...)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayAfter(%d): %v", cursor, err)
	}
	if n != uint64(len(out)) {
		t.Fatalf("ReplayAfter reported %d records, delivered %d", n, len(out))
	}
	return out
}

// TestAppendReopenReplay is the basic durability round trip: appended
// batches survive a close/reopen byte-identically and replay in order.
func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := walRecords("a", 7)
	if err := l.Append(want[:3]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[3:]); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 7 {
		t.Fatalf("Seq = %d, want 7", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != 7 {
		t.Fatalf("reopened Seq = %d, want 7", got)
	}
	if got := l2.TornBytes(); got != 0 {
		t.Fatalf("clean log reports %d torn bytes", got)
	}
	got := collect(t, l2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		sameRecord(t, got[i], want[i])
	}
}

// TestReplayCursorTrim pins the straddling-entry rule: a checkpoint
// cursor landing mid-entry replays only the uncovered suffix of that
// entry, never a covered record twice.
func TestReplayCursorTrim(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := walRecords("trim", 9)
	for i := 0; i < 9; i += 3 { // three entries of three records
		if err := l.Append(want[i : i+3]); err != nil {
			t.Fatal(err)
		}
	}
	for cursor := uint64(0); cursor <= 9; cursor++ {
		got := collect(t, l, cursor)
		rest := want[cursor:]
		if len(got) != len(rest) {
			t.Fatalf("cursor %d: replayed %d records, want %d", cursor, len(got), len(rest))
		}
		for i := range rest {
			sameRecord(t, got[i], rest[i])
		}
	}
}

// TestRotationAndTruncate drives the log across several segments with a
// small rotation threshold, then reclaims them with TruncateThrough and
// proves replay-after-reopen never resurrects a covered record.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 1}) // floors to 4096
	if err != nil {
		t.Fatal(err)
	}
	var want []logging.Record
	for i := 0; i < 40; i++ {
		batch := walRecords(fmt.Sprintf("seg%d", i), 10)
		want = append(want, batch...)
		if err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("expected rotation to produce ≥3 segments, got %d", n)
	}

	// Cover half: every fully covered closed segment must be deleted.
	before := countSegments(t, dir)
	cursor := uint64(len(want) / 2)
	if err := l.TruncateThrough(cursor); err != nil {
		t.Fatal(err)
	}
	if after := countSegments(t, dir); after >= before {
		t.Fatalf("TruncateThrough(%d) reclaimed nothing (%d → %d segments)", cursor, before, after)
	}
	got := collect(t, l, cursor)
	rest := want[cursor:]
	if len(got) != len(rest) {
		t.Fatalf("post-truncate replay: %d records, want %d", len(got), len(rest))
	}
	for i := range rest {
		sameRecord(t, got[i], rest[i])
	}

	// Cover everything: the active segment is replaced with a fresh one
	// and a reopened log replays nothing.
	if err := l.TruncateThrough(l.Seq()); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, uint64(len(want))); len(got) != 0 {
		t.Fatalf("fully covered log still replays %d records", len(got))
	}
	seq := l.Seq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != seq {
		t.Fatalf("reopened Seq = %d, want %d", got, seq)
	}
	if got := collect(t, l2, seq); len(got) != 0 {
		t.Fatalf("reopened fully covered log replays %d records", len(got))
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestTornTailHealing simulates the crash the WAL exists for: a partial
// frame at the tail of the active segment. Open must truncate it away,
// keep every complete entry, and leave the log appendable.
func TestTornTailHealing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := walRecords("torn", 5)
	if err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-write leaves a prefix of the next frame.
	seg := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := AppendFrame(nil, frameEntry, []byte("half an entry"))
	if _, err := f.Write(torn[:len(torn)-6]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.TornBytes(); got != int64(len(torn)-6) {
		t.Fatalf("TornBytes = %d, want %d", got, len(torn)-6)
	}
	if got := l2.Seq(); got != 5 {
		t.Fatalf("healed Seq = %d, want 5", got)
	}
	more := walRecords("post", 2)
	if err := l2.Append(more); err != nil {
		t.Fatalf("append after healing: %v", err)
	}
	got := collect(t, l2, 0)
	all := append(append([]logging.Record(nil), want...), more...)
	if len(got) != len(all) {
		t.Fatalf("replayed %d records after healing, want %d", len(got), len(all))
	}
	for i := range all {
		sameRecord(t, got[i], all[i])
	}
}

// TestCorruptEntryStopsScan flips a payload byte inside the last entry:
// the CRC discipline must drop that entry (and only it) as a torn tail.
func TestCorruptEntryStopsScan(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walRecords("keep", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walRecords("lose", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0x40
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != 3 {
		t.Fatalf("Seq after corrupt tail = %d, want 3", got)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d records, want the 3 intact ones", len(got))
	}
}

// TestSyncPolicies exercises each policy end to end (the observable
// contract is the same; Always and Interval just fsync along the way)
// and pins the flag-string round trip.
func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: p, SyncEvery: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(walRecords(p.String(), 4)); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("%v: explicit Sync: %v", p, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), back, err)
		}
	}
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncInterval {
		t.Fatalf("ParseSyncPolicy(\"\") = %v, %v; want the interval default", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

// TestEmptyAppendAndZeroTime: zero-record appends are no-ops, and the
// zero time.Time survives the sentinel encoding.
func TestEmptyAppendAndZeroTime(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 0 {
		t.Fatalf("Seq after empty append = %d", got)
	}
	rec := logging.Record{Message: "no timestamp", SessionID: "s"}
	if err := l.Append([]logging.Record{rec}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	if !got[0].Time.IsZero() {
		t.Fatalf("zero time came back as %v", got[0].Time)
	}
	sameRecord(t, got[0], rec)
}
