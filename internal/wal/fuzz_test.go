package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"intellog/internal/logging"
)

// fuzzEntryBody builds a WAL entry body (seq header + records) the way
// appendLocked does, for seeding the fuzzer with well-formed segments.
func fuzzEntryBody(first uint64, recs []logging.Record) []byte {
	body := binary.AppendUvarint(nil, first)
	body = binary.AppendUvarint(body, uint64(len(recs)))
	for i := range recs {
		body = AppendRecord(body, &recs[i])
	}
	return body
}

// FuzzWALSegment pins the boot-time safety contract: a segment file
// holding ARBITRARY bytes — garbage, a torn tail, a corrupt CRC, a
// foreign frame type, a seq gap — must open as a usable log, never
// panic, error or over-read. Whatever valid prefix the scan accepts
// must be internally consistent: ReplayAfter(0) delivers exactly Seq()
// records, and the log accepts and round-trips a fresh append.
func FuzzWALSegment(f *testing.F) {
	recs := []logging.Record{
		{Message: "task 1 finished", SessionID: "app-1", Framework: logging.Spark, Level: logging.Info},
		{Message: "fetch failed", SessionID: "app-2", Framework: logging.Spark, Level: logging.Error},
	}
	whole := AppendFrame(nil, frameEntry, fuzzEntryBody(1, recs))
	two := AppendFrame(append([]byte(nil), whole...), frameEntry, fuzzEntryBody(3, recs[:1]))
	f.Add([]byte{})
	f.Add(append([]byte(nil), whole...))
	f.Add(append([]byte(nil), two...))
	f.Add(two[:len(two)-3]) // torn tail
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-6] ^= 0x20
	f.Add(corrupt) // CRC mismatch
	f.Add(AppendFrame(nil, 9, []byte("not a wal frame")))
	f.Add(AppendFrame(nil, frameEntry, fuzzEntryBody(5, recs))) // seq gap: first entry must start at 1
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "00000000000000000001"+segmentExt)
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		defer l.Close()

		seq := l.Seq()
		var replayed uint64
		n, err := l.ReplayAfter(0, func(recs []logging.Record) error {
			replayed += uint64(len(recs))
			return nil
		})
		if err != nil {
			t.Fatalf("ReplayAfter on healed log: %v", err)
		}
		if n != replayed || n != seq {
			t.Fatalf("scan inconsistent: Seq=%d, ReplayAfter delivered %d (reported %d)", seq, replayed, n)
		}

		fresh := logging.Record{Message: "appended after heal", SessionID: "s"}
		if err := l.Append([]logging.Record{fresh}); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if got := l2.Seq(); got != seq+1 {
			t.Fatalf("reopened Seq = %d, want %d", got, seq+1)
		}
		var got []logging.Record
		if _, err := l2.ReplayAfter(seq, func(recs []logging.Record) error {
			got = append(got, recs...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Message != fresh.Message || got[0].SessionID != fresh.SessionID {
			t.Fatalf("appended record did not round-trip: %+v", got)
		}
	})
}
