package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func addLetters(t *testing.T, q *DLQ, prefix string, n int) {
	t.Helper()
	ls := make([]DeadLetter, n)
	for i := range ls {
		ls[i] = DeadLetter{
			Reason: "invalid JSON",
			Line:   fmt.Sprintf(`{"msg":"%s-%d"`, prefix, i), // the truncation is the point
		}
	}
	if err := q.Add(ls); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

// TestDLQAddListRemove is the basic lifecycle: add, page through List,
// remove a subset, and watch depth/cursor semantics hold.
func TestDLQAddListRemove(t *testing.T) {
	q, err := OpenDLQ(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	addLetters(t, q, "a", 5)
	if d := q.Depth(); d != 5 {
		t.Fatalf("Depth = %d, want 5", d)
	}

	page, next, depth := q.List(0, 2)
	if len(page) != 2 || depth != 5 {
		t.Fatalf("List(0,2) = %d entries, depth %d", len(page), depth)
	}
	if page[0].Seq != 1 || page[1].Seq != 2 || next != 2 {
		t.Fatalf("first page seqs %d,%d next %d; want 1,2,2", page[0].Seq, page[1].Seq, next)
	}
	rest, _, _ := q.List(next, 0)
	if len(rest) != 3 || rest[0].Seq != 3 {
		t.Fatalf("second page: %d entries starting at %d", len(rest), rest[0].Seq)
	}

	if n := q.Remove([]uint64{2, 4, 99}); n != 2 {
		t.Fatalf("Remove removed %d, want 2 (unknown seqs ignored)", n)
	}
	all, _, depth := q.List(0, 0)
	if depth != 3 || len(all) != 3 {
		t.Fatalf("after remove: depth %d, %d entries", depth, len(all))
	}
	for i, want := range []uint64{1, 3, 5} {
		if all[i].Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d", i, all[i].Seq, want)
		}
	}
}

// TestDLQPersistence proves adds and removes both survive a reopen: the
// tombstone lines keep a requeued entry dead, and seq assignment
// continues where the previous process stopped.
func TestDLQPersistence(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	addLetters(t, q, "p", 4)
	if n := q.Remove([]uint64{2}); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenDLQ(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	all, _, depth := q2.List(0, 0)
	if depth != 3 {
		t.Fatalf("reopened depth = %d, want 3", depth)
	}
	for i, want := range []uint64{1, 3, 4} {
		if all[i].Seq != want {
			t.Fatalf("reopened entry %d has seq %d, want %d", i, all[i].Seq, want)
		}
	}
	addLetters(t, q2, "after", 1)
	if fresh, _, _ := q2.List(4, 0); len(fresh) != 1 || fresh[0].Seq != 5 {
		t.Fatalf("seq did not continue past restart: %+v", fresh)
	}
}

// TestDLQRetention pins the disk bound: past retain live entries the
// oldest are dropped and counted, and the drop also survives reopen.
func TestDLQRetention(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	addLetters(t, q, "r", 5)
	if d := q.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want the retain bound 3", d)
	}
	if n := q.Dropped(); n != 2 {
		t.Fatalf("Dropped = %d, want 2", n)
	}
	all, _, _ := q.List(0, 0)
	if all[0].Seq != 3 {
		t.Fatalf("oldest survivor is seq %d, want 3 (1 and 2 aged out)", all[0].Seq)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenDLQ(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if d := q2.Depth(); d != 3 {
		t.Fatalf("reopened Depth = %d, want 3", d)
	}
}

// TestDLQMemoryOnly: with no directory the queue still provides full
// semantics, just without persistence.
func TestDLQMemoryOnly(t *testing.T) {
	q, err := OpenDLQ("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	addLetters(t, q, "m", 3)
	if d := q.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	if n := q.Remove([]uint64{2}); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	if d := q.Depth(); d != 1 {
		t.Fatalf("Depth after remove = %d", d)
	}
}

// TestDLQSegmentGC forces rotation with a tiny segment threshold and
// checks that a closed segment whose entries are all gone is deleted.
func TestDLQSegmentGC(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.segBytes = 64 // rotate roughly every line
	addLetters(t, q, "gc", 6)
	if got := countDLQSegments(t, dir); got < 3 {
		t.Fatalf("expected rotation to produce ≥3 segments, got %d", got)
	}

	// Killing the oldest entries must let their segments go.
	before := countDLQSegments(t, dir)
	q.Remove([]uint64{1, 2, 3})
	after := countDLQSegments(t, dir)
	if after >= before {
		t.Fatalf("GC reclaimed nothing (%d → %d segments)", before, after)
	}
	all, _, depth := q.List(0, 0)
	if depth != 3 || all[0].Seq != 4 {
		t.Fatalf("after GC: depth %d, first seq %d; want 3, 4", depth, all[0].Seq)
	}
}

func countDLQSegments(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, dlqSegmentPrefix+"*"+dlqSegmentExt))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestDLQTruncatedTrailingLine: the line a crash cut short is skipped on
// load instead of failing the whole queue.
func TestDLQTruncatedTrailingLine(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	addLetters(t, q, "t", 2)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, dlqSegmentPrefix+"*"+dlqSegmentExt))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk (err=%v)", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"reason":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2, err := OpenDLQ(dir, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer q2.Close()
	if d := q2.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want the 2 intact entries", d)
	}
}
