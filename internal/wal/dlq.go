package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// dlqSegmentPrefix/-Ext name DLQ segment files:
// seg-<first-seq, zero-padded>.ndjson.
const (
	dlqSegmentPrefix = "seg-"
	dlqSegmentExt    = ".ndjson"
)

// DeadLetter is one record refused by ingest validation, as handed to
// DLQ.Add: the verbatim NDJSON wire line (so a requeue can re-run it
// through the very same ingest path) plus why it was refused.
type DeadLetter struct {
	Reason string
	Line   string
}

// Entry is one stored dead letter, as listed by /v1/dlq.
type Entry struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Reason string    `json:"reason"`
	Line   string    `json:"line"`
}

// dlqLine is the on-disk NDJSON union: an Entry, or a requeue/retention
// tombstone ({"requeued": seq}) marking an earlier entry dead. Appending
// tombstones instead of rewriting segments keeps every write an append;
// segments whose entries are all dead are deleted whole.
type dlqLine struct {
	Entry
	Requeued uint64 `json:"requeued,omitempty"`
}

// DLQ is a per-tenant dead-letter queue: log-structured NDJSON segments
// holding refused records until an operator lists ([/v1/dlq]) and
// requeues or drops them. With an empty dir it runs memory-only (a
// stateless server still gets per-record refusal semantics, just
// without crash persistence). Retention is bounded: past retain live
// entries the oldest are dropped (counted in Dropped), so a poisoned
// firehose cannot fill the disk.
type DLQ struct {
	mu       sync.Mutex
	dir      string
	retain   int
	segBytes int64

	f        *os.File
	size     int64
	segments []uint64 // first seq assigned at each segment's creation
	live     []Entry  // ascending by Seq
	seq      uint64
	dropped  uint64
}

// OpenDLQ opens (creating if needed) the queue in dir; dir == "" means
// memory-only. retain bounds live entries (0 means 4096, negative
// unbounded).
func OpenDLQ(dir string, retain int) (*DLQ, error) {
	if retain == 0 {
		retain = 4096
	}
	q := &DLQ{dir: dir, retain: retain, segBytes: 4 << 20}
	if dir == "" {
		return q, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, dlqSegmentPrefix) || !strings.HasSuffix(name, dlqSegmentExt) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, dlqSegmentPrefix), dlqSegmentExt), 10, 64)
		if err != nil || n == 0 {
			continue
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	liveBySeq := map[uint64]Entry{}
	for _, first := range firsts {
		if err := q.loadSegment(q.segPath(first), liveBySeq); err != nil {
			return nil, err
		}
	}
	q.segments = firsts
	for _, e := range liveBySeq {
		q.live = append(q.live, e)
	}
	sort.Slice(q.live, func(i, j int) bool { return q.live[i].Seq < q.live[j].Seq })
	if len(firsts) == 0 {
		if err := q.openSegment(q.seq + 1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(q.segPath(firsts[len(firsts)-1]), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		q.f, q.size = f, fi.Size()
	}
	// Apply retention to whatever the previous process left behind.
	q.enforceRetentionLocked()
	q.collectSegmentsLocked()
	return q, nil
}

// loadSegment folds one segment's lines into the live map. A trailing
// line a crash cut short fails to parse and is skipped — dead letters
// are diagnostics, best-effort by design.
func (q *DLQ) loadSegment(path string, live map[uint64]Entry) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), MaxFrame)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln dlqLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			continue
		}
		if ln.Requeued != 0 {
			delete(live, ln.Requeued)
			continue
		}
		if ln.Seq == 0 {
			continue
		}
		live[ln.Seq] = ln.Entry
		if ln.Seq > q.seq {
			q.seq = ln.Seq
		}
	}
	return sc.Err()
}

func (q *DLQ) segPath(first uint64) string {
	return filepath.Join(q.dir, fmt.Sprintf("%s%020d%s", dlqSegmentPrefix, first, dlqSegmentExt))
}

func (q *DLQ) openSegment(first uint64) error {
	f, err := os.OpenFile(q.segPath(first), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if q.f != nil {
		q.f.Close()
	}
	q.f = f
	q.size = 0
	q.segments = append(q.segments, first)
	return nil
}

// writeLine appends one NDJSON line to the active segment, rotating by
// size first. Persistence errors are returned but the in-memory state
// has already advanced — the DLQ degrades to memory-only rather than
// refusing records.
func (q *DLQ) writeLine(ln dlqLine) error {
	if q.dir == "" {
		return nil
	}
	if q.f == nil || q.size >= q.segBytes {
		if err := q.openSegment(q.seq + 1); err != nil {
			return err
		}
	}
	b, err := json.Marshal(ln)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	n, err := q.f.Write(b)
	q.size += int64(n)
	return err
}

// Add appends dead letters, assigning each a sequence number, and
// enforces retention. The first persistence error is returned (callers
// surface it as a metric; admission is unaffected).
func (q *DLQ) Add(ls []DeadLetter) error {
	if len(ls) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now().UTC()
	var firstErr error
	for _, dl := range ls {
		q.seq++
		e := Entry{Seq: q.seq, At: now, Reason: dl.Reason, Line: dl.Line}
		q.live = append(q.live, e)
		if err := q.writeLine(dlqLine{Entry: e}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := q.enforceRetentionLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := q.collectSegmentsLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (q *DLQ) enforceRetentionLocked() error {
	if q.retain < 0 {
		return nil
	}
	var firstErr error
	for len(q.live) > q.retain {
		if err := q.writeLine(dlqLine{Requeued: q.live[0].Seq}); err != nil && firstErr == nil {
			firstErr = err
		}
		q.live = q.live[1:]
		q.dropped++
	}
	return firstErr
}

// collectSegmentsLocked deletes closed segments that no longer hold any
// live entry (everything in them was requeued or aged out).
func (q *DLQ) collectSegmentsLocked() error {
	if q.dir == "" {
		return nil
	}
	for len(q.segments) >= 2 {
		// Closed segment 0 holds entries with seqs in [segments[0],
		// segments[1]); it is dead iff no live seq falls in that range.
		hi := q.segments[1]
		i := sort.Search(len(q.live), func(i int) bool { return q.live[i].Seq >= q.segments[0] })
		if i < len(q.live) && q.live[i].Seq < hi {
			return nil
		}
		if err := os.Remove(q.segPath(q.segments[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		q.segments = q.segments[1:]
	}
	return nil
}

// List returns up to limit live entries with Seq > since (ascending)
// plus the cursor for the following page and the total live depth.
// limit <= 0 means no bound.
func (q *DLQ) List(since uint64, limit int) (entries []Entry, next uint64, depth int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	next = since
	i := sort.Search(len(q.live), func(i int) bool { return q.live[i].Seq > since })
	for ; i < len(q.live); i++ {
		if limit > 0 && len(entries) >= limit {
			break
		}
		entries = append(entries, q.live[i])
		next = q.live[i].Seq
	}
	return entries, next, len(q.live)
}

// Remove drops the named entries (post-requeue), appending tombstones
// so the drop survives a restart. Unknown seqs are ignored. Returns how
// many entries were actually removed.
func (q *DLQ) Remove(seqs []uint64) int {
	if len(seqs) == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	drop := make(map[uint64]bool, len(seqs))
	for _, s := range seqs {
		drop[s] = true
	}
	removed := 0
	kept := q.live[:0]
	for _, e := range q.live {
		if drop[e.Seq] {
			q.writeLine(dlqLine{Requeued: e.Seq})
			removed++
			continue
		}
		kept = append(kept, e)
	}
	q.live = kept
	q.collectSegmentsLocked()
	return removed
}

// Depth is the live entry count.
func (q *DLQ) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.live)
}

// Dropped counts entries the retention bound discarded (lifetime of
// this process).
func (q *DLQ) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Close closes the active segment file.
func (q *DLQ) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	err := q.f.Close()
	q.f = nil
	return err
}
