package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"intellog/internal/logging"
)

// frameEntry is the WAL's frame type, distinct from the wire protocol's
// Hello/Batch/Ack so a segment can never be confused for a connection
// capture.
const frameEntry byte = 4

// segmentExt names segment files: <first-seq, zero-padded>.wal.
const segmentExt = ".wal"

// SyncPolicy is when Append fsyncs before acking.
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per Options.SyncEvery: a crash
	// loses at most that window of acked records. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before every Append returns: an ack means the
	// records are on stable storage, at streaming-throughput cost.
	SyncAlways
	// SyncNone never fsyncs: the OS page cache decides. Survives process
	// crashes (the data is in kernel buffers) but not power loss.
	SyncNone
)

// ParseSyncPolicy maps the flag vocabulary ("always", "interval",
// "none"; empty means interval) to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("unknown WAL sync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "interval"
	}
}

// Options tunes a Log.
type Options struct {
	Sync         SyncPolicy
	SyncEvery    time.Duration // SyncInterval cadence; 0 means 100ms
	SegmentBytes int64         // rotation threshold; 0 means 8 MiB
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SegmentBytes < 4096 {
		o.SegmentBytes = 4096
	}
	return o
}

// Log is one tenant's write-ahead log: an append-only sequence of
// CRC-framed record batches across size-rotated segment files. Every
// record gets a sequence number (1-based, contiguous); a checkpoint
// that covers records through seq N lets TruncateThrough(N) reclaim
// the segments they occupy, and a boot-time ReplayAfter(N) re-feeds
// exactly the suffix a crash left unapplied.
//
// A torn tail — the partial frame an unlucky crash leaves at the end
// of the active segment — is detected by the frame length/CRC
// discipline at Open and truncated away; by construction it can only
// hold records that were never acked under their sync policy.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment, positioned at its end
	size     int64    // bytes in the active segment
	seq      uint64   // seq of the newest appended record
	segments []uint64 // first seq of each live segment, ascending
	torn     int64    // bytes truncated from the tail at Open
	dirty    bool     // unsynced appends outstanding
	lastSync time.Time
	failed   error // sticky: a failed write poisons the log until reopen
	buf      []byte
	fbuf     []byte
}

// Open opens (creating if needed) the log in dir, self-healing any torn
// tail on the newest segment.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentExt) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, segmentExt), 10, 64)
		if err != nil || n == 0 {
			continue // stray file; not ours
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	if len(firsts) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Only the newest segment can hold a torn tail (older ones were
	// rotated away intact); scanning it yields both the tail cut and the
	// log's record cursor.
	last := firsts[len(firsts)-1]
	next, validOff, size, err := scanSegment(l.segPath(last), last, nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.segPath(last), os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	l.torn = size - validOff
	if l.torn > 0 {
		if err := f.Truncate(validOff); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.size = validOff
	l.seq = next - 1
	l.segments = firsts
	return l, nil
}

func (l *Log) segPath(first uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d%s", first, segmentExt))
}

// Seq returns the sequence number of the newest appended record (0 when
// the log has never held one).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns the live segment count.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// TornBytes reports how many torn-tail bytes Open truncated away.
func (l *Log) TornBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Append durably logs a batch of records as one entry (split only if it
// would overflow the frame cap) and advances Seq by len(recs). Whether
// "durably" means fsynced is the sync policy's call; on return under
// SyncAlways the records are on stable storage. A write failure is
// sticky: the log refuses further appends so callers fail loudly
// instead of acking records the disk silently dropped.
func (l *Log) Append(recs []logging.Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("wal %s: disabled by earlier write failure: %w", l.dir, l.failed)
	}
	if err := l.appendLocked(recs); err != nil {
		return err
	}
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) appendLocked(recs []logging.Record) error {
	body := binary.AppendUvarint(l.buf[:0], l.seq+1)
	body = binary.AppendUvarint(body, uint64(len(recs)))
	for i := range recs {
		body = AppendRecord(body, &recs[i])
	}
	l.buf = body[:0]
	if len(body)+9 > MaxFrame {
		if len(recs) == 1 {
			return Errf("record of %d bytes exceeds the frame cap", len(body))
		}
		half := len(recs) / 2
		if err := l.appendLocked(recs[:half]); err != nil {
			return err
		}
		return l.appendLocked(recs[half:])
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return err
		}
	}
	frame := AppendFrame(l.fbuf[:0], frameEntry, body)
	l.fbuf = frame[:0]
	if _, err := l.f.Write(frame); err != nil {
		l.failed = err
		return err
	}
	l.size += int64(len(frame))
	l.seq += uint64(len(recs))
	l.dirty = true
	return nil
}

func (l *Log) rotateLocked() error {
	if l.dirty && l.opts.Sync != SyncNone {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegmentLocked(l.seq + 1)
}

func (l *Log) openSegmentLocked(first uint64) error {
	f, err := os.OpenFile(l.segPath(first), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.size = 0
	l.dirty = false
	l.segments = append(l.segments, first)
	if l.opts.Sync != SyncNone {
		// The new name must itself survive a crash, or a replay would
		// miss the whole segment.
		return syncDir(l.dir)
	}
	return nil
}

// Sync flushes outstanding appends to stable storage regardless of
// policy (shutdown, or an explicit durability point).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.f == nil {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// ReplayAfter feeds every logged record with seq > cursor to fn, in
// append order, entry by entry (entries that straddle the cursor are
// trimmed to the uncovered suffix). Returns how many records fn saw. A
// fn error aborts the replay.
func (l *Log) ReplayAfter(cursor uint64, fn func([]logging.Record) error) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var replayed uint64
	for i, first := range l.segments {
		if i+1 < len(l.segments) && l.segments[i+1]-1 <= cursor {
			continue // closed segment fully covered by the checkpoint
		}
		if i == len(l.segments)-1 && l.seq <= cursor {
			continue // active segment fully covered
		}
		_, _, _, err := scanSegment(l.segPath(first), first, func(entryFirst uint64, recs []logging.Record) error {
			if len(recs) == 0 || entryFirst+uint64(len(recs))-1 <= cursor {
				return nil
			}
			if entryFirst <= cursor {
				recs = recs[cursor-entryFirst+1:]
			}
			replayed += uint64(len(recs))
			return fn(recs)
		})
		if err != nil {
			return replayed, err
		}
	}
	return replayed, nil
}

// TruncateThrough reclaims every segment whose records are all covered
// by a checkpoint cursor: closed segments are deleted, and a fully
// covered active segment is replaced with a fresh one so boot replay
// never re-reads applied entries.
func (l *Log) TruncateThrough(cursor uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor > l.seq {
		cursor = l.seq
	}
	removed := false
	// Closed segment i spans [segments[i], segments[i+1]-1].
	for len(l.segments) >= 2 && l.segments[1]-1 <= cursor {
		if err := os.Remove(l.segPath(l.segments[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.segments = l.segments[1:]
		removed = true
	}
	if len(l.segments) == 1 && l.seq <= cursor && l.size > 0 && l.f != nil {
		if err := l.f.Close(); err != nil {
			l.failed = err
			return err
		}
		old := l.segments[0]
		l.segments = l.segments[:0]
		if err := os.Remove(l.segPath(old)); err != nil && !os.IsNotExist(err) {
			l.failed = err
			return err
		}
		if err := l.openSegmentLocked(l.seq + 1); err != nil {
			l.failed = err
			return err
		}
		removed = true
	}
	if removed && l.opts.Sync != SyncNone {
		return syncDir(l.dir)
	}
	return nil
}

// Close flushes (under a syncing policy) and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty && l.opts.Sync != SyncNone {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// scanSegment walks one segment file from the start, fully decoding
// each entry (frame envelope, CRC, seq contiguity from first, record
// payloads) and calling fn — when non-nil — with its records. It stops
// at the first byte that fails any of those checks: that is the torn
// tail a crash mid-write leaves, reported as size-validOff, never an
// error. Only real I/O failures (and fn errors) return non-nil.
func scanSegment(path string, first uint64, fn func(entryFirst uint64, recs []logging.Record) error) (next uint64, validOff, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return first, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return first, 0, 0, err
	}
	size = fi.Size()
	next = first
	br := bufio.NewReaderSize(f, 32<<10)
	var buf []byte
	for {
		var typ byte
		var body []byte
		typ, body, buf, err = ReadFrame(br, buf, 0)
		if err != nil {
			if errors.Is(err, io.EOF) ||
				errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrWire) {
				return next, validOff, size, nil // clean end or torn tail
			}
			return next, validOff, size, err
		}
		if typ != frameEntry {
			return next, validOff, size, nil
		}
		entryFirst, p, ok := Uvarint(body)
		if !ok || entryFirst != next {
			return next, validOff, size, nil
		}
		count, p, ok := Uvarint(p)
		if !ok {
			return next, validOff, size, nil
		}
		var recs []logging.Record
		good := true
		for i := uint64(0); i < count; i++ {
			rec, rest, derr := DecodeRecord(p)
			if derr != nil {
				good = false
				break
			}
			p = rest
			recs = append(recs, rec)
		}
		if !good || len(p) != 0 {
			return next, validOff, size, nil
		}
		if fn != nil {
			if ferr := fn(entryFirst, recs); ferr != nil {
				return next, validOff, size, ferr
			}
		}
		next += count
		validOff += int64(4 + 1 + len(body) + 4)
	}
}

// syncDir fsyncs a directory so file creations and removals inside it
// survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
