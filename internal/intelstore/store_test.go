package intelstore

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"intellog/internal/extract"
)

func corpus() []*extract.Message {
	return []*extract.Message{
		{KeyID: 1, Session: "c1", Entities: []string{"fetcher"},
			Identifiers: map[string][]string{"FETCHER": {"fetcher#1"}},
			Localities:  map[string][]string{"ADDR": {"hostA:13562"}}},
		{KeyID: 1, Session: "c1", Entities: []string{"fetcher"},
			Identifiers: map[string][]string{"FETCHER": {"fetcher#2"}},
			Localities:  map[string][]string{"ADDR": {"hostA:13562"}}},
		{KeyID: 2, Session: "c2", Entities: []string{"task"},
			Identifiers: map[string][]string{"TASK": {"t9"}}},
	}
}

func TestWithEntityAndLen(t *testing.T) {
	s := New(corpus())
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	f := s.WithEntity("fetcher")
	if f.Len() != 2 {
		t.Errorf("fetcher view = %d msgs", f.Len())
	}
	if s.WithEntity("driver").Len() != 0 {
		t.Error("nonexistent entity matched")
	}
}

func TestGroupByIdentifier(t *testing.T) {
	groups := New(corpus()).GroupByIdentifier("FETCHER")
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups["fetcher#1"].Len() != 1 {
		t.Error("fetcher#1 group wrong")
	}
}

// The case-study-1 flow: entity filter → GroupBy identifier → GroupBy
// locality narrows to the single failing host.
func TestCaseStudyFlow(t *testing.T) {
	byLoc := New(corpus()).WithEntity("fetcher").GroupByLocality("ADDR")
	if len(byLoc) != 1 {
		t.Fatalf("locality groups = %d, want 1", len(byLoc))
	}
	if _, ok := byLoc["hostA:13562"]; !ok {
		t.Error("missing hostA group")
	}
}

func TestSessionsAndGroupBySession(t *testing.T) {
	s := New(corpus())
	if got := s.Sessions(); !reflect.DeepEqual(got, []string{"c1", "c2"}) {
		t.Errorf("Sessions = %v", got)
	}
	bySess := s.GroupBySession()
	if bySess["c1"].Len() != 2 || bySess["c2"].Len() != 1 {
		t.Error("GroupBySession wrong")
	}
	if s.WithSession("c2").Len() != 1 {
		t.Error("WithSession wrong")
	}
}

func TestWithIdentifierType(t *testing.T) {
	if New(corpus()).WithIdentifierType("TASK").Len() != 1 {
		t.Error("WithIdentifierType wrong")
	}
}

func TestExportJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := New(corpus()).ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 3 {
		t.Errorf("decoded %d messages", len(decoded))
	}
}

func TestSeriesAndStats(t *testing.T) {
	t0 := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	msgs := []*extract.Message{
		{Time: t0.Add(2 * time.Second), Values: map[string][]string{"ms": {"30"}}},
		{Time: t0, Values: map[string][]string{"ms": {"10"}}},
		{Time: t0.Add(time.Second), Values: map[string][]string{"ms": {"20"}, "byte": {"1,024"}}},
		{Time: t0.Add(3 * time.Second), Values: map[string][]string{"ms": {"bogus"}}},
	}
	s := New(msgs)
	series := s.Series("ms")
	if len(series) != 3 {
		t.Fatalf("series has %d points, want 3", len(series))
	}
	if !sort.SliceIsSorted(series, func(i, j int) bool { return series[i].Time.Before(series[j].Time) }) {
		t.Error("series not time-ordered")
	}
	st := s.Stats("ms")
	if st.Count != 3 || st.Min != 10 || st.Max != 30 || st.Mean != 20 {
		t.Errorf("Stats = %+v", st)
	}
	// Comma-grouped values parse.
	if b := s.Stats("byte"); b.Count != 1 || b.Sum != 1024 {
		t.Errorf("byte stats = %+v", b)
	}
	// Empty unit.
	if e := s.Stats("zz"); e.Count != 0 || e.Mean != 0 {
		t.Errorf("empty stats = %+v", e)
	}
}

func TestBetween(t *testing.T) {
	t0 := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	msgs := []*extract.Message{
		{Time: t0}, {Time: t0.Add(time.Minute)}, {Time: t0.Add(2 * time.Minute)},
	}
	got := New(msgs).Between(t0.Add(30*time.Second), t0.Add(90*time.Second))
	if got.Len() != 1 {
		t.Errorf("Between kept %d, want 1", got.Len())
	}
}
