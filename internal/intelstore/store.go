// Package intelstore stores Intel Messages as queryable structured
// records (§3.3: "an Intel Message can be considered as a collection of
// key-value pairs … users can use queries to request data"). The GroupBy
// operators are the ones the paper's case study 1 applies to narrow 259
// sessions down to one failing host.
package intelstore

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"intellog/internal/extract"
)

// Store is an immutable query view over Intel Messages.
type Store struct {
	msgs []*extract.Message
}

// New wraps messages in a store.
func New(msgs []*extract.Message) *Store { return &Store{msgs: msgs} }

// Len returns the number of messages in the view.
func (s *Store) Len() int { return len(s.msgs) }

// Messages returns the view's messages.
func (s *Store) Messages() []*extract.Message { return s.msgs }

// Filter returns the sub-view matching the predicate.
func (s *Store) Filter(pred func(*extract.Message) bool) *Store {
	var out []*extract.Message
	for _, m := range s.msgs {
		if pred(m) {
			out = append(out, m)
		}
	}
	return &Store{msgs: out}
}

// WithEntity keeps messages whose key extracted the entity phrase.
func (s *Store) WithEntity(entity string) *Store {
	return s.Filter(func(m *extract.Message) bool {
		for _, e := range m.Entities {
			if e == entity {
				return true
			}
		}
		return false
	})
}

// WithIdentifierType keeps messages carrying an identifier of the type.
func (s *Store) WithIdentifierType(typ string) *Store {
	return s.Filter(func(m *extract.Message) bool {
		return len(m.Identifiers[typ]) > 0
	})
}

// WithSession keeps one session's messages.
func (s *Store) WithSession(id string) *Store {
	return s.Filter(func(m *extract.Message) bool { return m.Session == id })
}

// GroupByIdentifier partitions the view by the values of one identifier
// type. Messages without that type are dropped.
func (s *Store) GroupByIdentifier(typ string) map[string]*Store {
	return s.groupBy(func(m *extract.Message) []string { return m.Identifiers[typ] })
}

// GroupByLocality partitions the view by locality values of one class
// (e.g. "ADDR" or "HOST").
func (s *Store) GroupByLocality(class string) map[string]*Store {
	return s.groupBy(func(m *extract.Message) []string { return m.Localities[class] })
}

// GroupBySession partitions the view by session ID.
func (s *Store) GroupBySession() map[string]*Store {
	return s.groupBy(func(m *extract.Message) []string {
		if m.Session == "" {
			return nil
		}
		return []string{m.Session}
	})
}

func (s *Store) groupBy(keys func(*extract.Message) []string) map[string]*Store {
	groups := map[string]*Store{}
	for _, m := range s.msgs {
		for _, k := range keys(m) {
			g, ok := groups[k]
			if !ok {
				g = &Store{}
				groups[k] = g
			}
			g.msgs = append(g.msgs, m)
		}
	}
	return groups
}

// Sessions returns the distinct session IDs in the view, sorted.
func (s *Store) Sessions() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range s.msgs {
		if m.Session != "" && !seen[m.Session] {
			seen[m.Session] = true
			out = append(out, m.Session)
		}
	}
	sort.Strings(out)
	return out
}

// ExportJSON writes the view as a JSON array of Intel Messages — the
// paper's storage format, queryable with JSON tools.
func (s *Store) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.msgs)
}

// Between keeps the messages within [from, to).
func (s *Store) Between(from, to time.Time) *Store {
	return s.Filter(func(m *extract.Message) bool {
		return !m.Time.Before(from) && m.Time.Before(to)
	})
}

// Point is one sample of a value time series.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Series extracts the time series of a value unit across the view —
// the paper notes Intel Messages "naturally fit in the storage structure
// of time series databases" (§3.3); this is that projection. Messages
// whose value fails to parse are skipped.
func (s *Store) Series(unit string) []Point {
	var out []Point
	for _, m := range s.msgs {
		for _, raw := range m.Values[unit] {
			f, err := strconv.ParseFloat(strings.ReplaceAll(raw, ",", ""), 64)
			if err != nil {
				continue
			}
			out = append(out, Point{Time: m.Time, Value: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// ValueStats summarises a value unit's series.
type ValueStats struct {
	Count     int
	Min, Max  float64
	Mean, Sum float64
}

// Stats computes summary statistics for a value unit across the view.
func (s *Store) Stats(unit string) ValueStats {
	var st ValueStats
	for _, p := range s.Series(unit) {
		if st.Count == 0 || p.Value < st.Min {
			st.Min = p.Value
		}
		if st.Count == 0 || p.Value > st.Max {
			st.Max = p.Value
		}
		st.Sum += p.Value
		st.Count++
	}
	if st.Count > 0 {
		st.Mean = st.Sum / float64(st.Count)
	}
	return st
}
