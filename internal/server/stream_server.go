package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"intellog/internal/batch"
	"intellog/internal/logging"
	"intellog/internal/metrics"
	"intellog/internal/wal"
)

// helloTimeout bounds how long a fresh connection may dawdle before
// completing the magic + Hello exchange.
const helloTimeout = 30 * time.Second

// ServeStream accepts binary-protocol ingest connections on ln until
// the listener is closed (then it returns nil) or fails. Each
// connection serves one tenant, named in its Hello frame; record
// admission, backpressure and counters are exactly the NDJSON
// handler's, answered as Ack frames instead of HTTP statuses.
func (s *Server) ServeStream(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.trackConn(conn, true)
		s.reg.Counter("intellogd_stream_connections_total",
			"binary ingest connections accepted").Inc()
		go func() {
			defer s.trackConn(conn, false)
			defer conn.Close()
			if err := s.serveStreamConn(conn); err != nil &&
				!errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("intellogd: stream conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// trackConn registers live stream connections so Close/Kill can sever
// them (their goroutines would otherwise outlive the server).
func (s *Server) trackConn(conn net.Conn, add bool) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if add {
		if s.streamConns == nil {
			s.streamConns = map[net.Conn]struct{}{}
		}
		s.streamConns[conn] = struct{}{}
	} else {
		delete(s.streamConns, conn)
	}
}

// closeStreamConns severs every live binary-protocol connection.
func (s *Server) closeStreamConns() {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for conn := range s.streamConns {
		conn.Close()
	}
}

// serveStreamConn runs one binary ingest connection: magic, Hello,
// then Batch frames acked in arrival order. Acks buffer through bw and
// flush only when no further frame is already readable, so a
// pipelining client gets its verdicts in batches instead of one
// syscall each.
func (s *Server) serveStreamConn(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if string(magic[:]) != streamMagic {
		return wireErrf("bad magic %q", magic[:])
	}

	maxFrame := int(s.cfg.MaxBodyBytes)
	var fbuf, abuf []byte
	sendAck := func(a streamAck) error {
		abuf = appendFrame(abuf[:0], frameAck, appendAck(nil, a))
		if _, err := bw.Write(abuf); err != nil {
			return err
		}
		// Batched acks: another frame already buffered means the client
		// is pipelining — hold the flush and let its verdict share the
		// write.
		if br.Buffered() > 0 {
			return nil
		}
		return bw.Flush()
	}

	typ, body, fbuf, err := readFrame(br, fbuf, maxFrame)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return wireErrf("expected hello, got frame type %d", typ)
	}
	tenantName, fw, err := parseHello(body)
	if err != nil {
		sendAck(streamAck{Status: ackBadRecord, Msg: err.Error()})
		return err
	}
	if fw == "" {
		fw = s.cfg.DefaultFramework
	}
	if !fw.Known() {
		err := wireErrf("unknown framework %q", fw)
		sendAck(streamAck{Status: ackBadRecord, Msg: err.Error()})
		return err
	}
	t, err := s.Tenant(tenantName)
	if err != nil {
		st := 500
		switch {
		case errors.Is(err, errBadTenant):
			st = ackBadRecord
		case errors.As(err, &errUnknownTenant{}):
			st = 404
		}
		sendAck(streamAck{Status: st, Msg: err.Error()})
		return err
	}
	if err := sendAck(streamAck{Status: ackAccepted}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})

	// The per-connection resolver: small fields dedup through a bounded
	// intern table; message bytes resolve against the model's lookup
	// cache first, so the overwhelmingly common repeat-rendering costs
	// no allocation and the detector's own cache probe later hits the
	// very same string.
	intern := &wireIntern{}
	resolver := &batchResolver{
		intern: intern,
		msg: func(b []byte) string {
			if canon, _, _, ok := t.det.Cache.Peek(b); ok {
				return canon
			}
			return string(b)
		},
	}

	// resyncSeq, when non-zero, is the refused frame the client must
	// retransmit next; frames with any other seq bounce with 425 so the
	// accepted stream keeps per-session order (go-back-N).
	var resyncSeq uint64
	for {
		typ, body, fbuf, err = readFrame(br, fbuf, maxFrame)
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Clean end of stream: client closed after its last ack.
				return nil
			}
			return err
		}
		if typ != frameBatch {
			return wireErrf("unexpected frame type %d", typ)
		}
		select {
		case <-s.closed:
			sendAck(streamAck{Status: ackShutdown, Msg: "server draining"})
			return nil
		default:
		}
		// Decode into a rented batch (decodeBatch appends into — and may
		// grow — its backing array; either way the batch keeps it).
		// Ownership passes to admitStreamBatch; the refusal paths before
		// it release here.
		b := s.batches.Get()
		seq, recs, err := decodeBatch(body, resolver, b.Recs[:0])
		b.Recs = recs
		if err != nil {
			b.Release()
			return err
		}
		if resyncSeq != 0 && seq != resyncSeq {
			b.Release()
			if err := sendAck(streamAck{Seq: seq, Status: ackRetryEarly}); err != nil {
				return err
			}
			continue
		}
		ack := s.admitStreamBatch(t, fw, seq, b)
		if ack.Status == ackAccepted {
			resyncSeq = 0
		} else {
			resyncSeq = seq
		}
		if err := sendAck(ack); err != nil {
			return err
		}
	}
}

// admitStreamBatch validates and enqueues one decoded batch, mirroring
// handleIngest's admission rules record for record: an invalid record
// (no message, oversized) dead-letters individually instead of failing
// the frame, so one bad record no longer rejects its neighbors.
//
// It always takes ownership of the rented batch: enqueue consumes it on
// acceptance, every refusal releases it before the ack goes back (a
// refused frame is retransmitted and decoded into a fresh rental).
func (s *Server) admitStreamBatch(t *tenant, fw logging.Framework, seq uint64, b *batch.Batch) streamAck {
	recs := b.Recs
	kept := recs[:0]
	skipped := 0
	var dead []wal.DeadLetter
	for i := range recs {
		if reason := s.validateStreamRecord(&recs[i]); reason != "" {
			dead = append(dead, wal.DeadLetter{Reason: reason, Line: deadLetterLine(&recs[i])})
			continue
		}
		if recs[i].SessionID == "" {
			skipped++
			continue
		}
		if recs[i].Framework == "" {
			recs[i].Framework = fw
		}
		kept = append(kept, recs[i])
	}
	b.Recs = kept
	t.skipped.Add(uint64(skipped))
	if len(kept) > s.cfg.QueueRecords {
		b.Release()
		return streamAck{Seq: seq, Status: ackTooLarge, Skipped: skipped,
			Msg: "batch exceeds the tenant queue budget; split it"}
	}
	ok, err := t.enqueueBatch(b)
	if err != nil {
		b.Release()
		return streamAck{Seq: seq, Status: ackShutdown, Skipped: skipped,
			Msg: "write-ahead log failed; batch not accepted: " + err.Error()}
	}
	if !ok {
		b.Release()
		return streamAck{Seq: seq, Status: ackQueueFull, Skipped: skipped,
			RetryMs: 1000, Msg: "ingest queue full"}
	}
	t.deadLetter(dead)
	s.reg.Counter("intellogd_stream_batches_total",
		"binary ingest batches accepted, per tenant",
		metrics.Label{Key: "tenant", Value: t.name}).Inc()
	return streamAck{Seq: seq, Status: ackAccepted,
		Accepted: len(kept), Skipped: skipped, Dead: len(dead)}
}

// validateStreamRecord applies per-record validation to a structured
// (binary-wire) record; a non-empty reason dead-letters it. Size is
// judged on the string payload, the analogue of the NDJSON line cap.
func (s *Server) validateStreamRecord(rec *logging.Record) string {
	if rec.Message == "" {
		return "record has no message"
	}
	size := len(rec.Message) + len(rec.Source) + len(rec.SessionID) +
		len(rec.TemplateID) + len(rec.Framework)
	if size > s.cfg.MaxRecordBytes {
		return fmt.Sprintf("record payload of %d bytes exceeds the %d-byte record cap",
			size, s.cfg.MaxRecordBytes)
	}
	return ""
}

// deadLetterLine renders a structured record as the NDJSON wire line
// the DLQ stores, so a binary-wire dead letter requeues through the
// same path as an HTTP one.
func deadLetterLine(rec *logging.Record) string {
	if out, ok := appendWireRecord(nil, rec); ok {
		return string(out[:len(out)-1]) // strip the trailing newline
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return ""
	}
	return string(b)
}
