package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"intellog/internal/logging"
)

func TestRetryDelayJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const hint = time.Second
	lo, hi := 8*hint/10, 12*hint/10
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := retryDelay(hint, rng)
		if d < lo || d > hi {
			t.Fatalf("retryDelay(%v) = %v outside [%v, %v]", hint, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Errorf("jitter produced only %d distinct delays in 1000 draws", len(seen))
	}
	if d := retryDelay(0, rng); d != minRetryDelay {
		t.Errorf("retryDelay(0) = %v, want the %v floor (no hint must still back off)", d, minRetryDelay)
	}
}

// TestRetryDelayFloor pins the busy-loop fix: no combination of a small
// hint and unlucky jitter may produce a zero (or near-zero) sleep — a
// refused worker hammering a saturated server with back-to-back
// retries is the failure mode the floor exists to prevent.
func TestRetryDelayFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, hint := range []time.Duration{
		-time.Second, 0, time.Nanosecond, time.Microsecond, time.Millisecond, minRetryDelay,
	} {
		for i := 0; i < 200; i++ {
			if d := retryDelay(hint, rng); d < minRetryDelay {
				t.Fatalf("retryDelay(%v) = %v, below the %v floor", hint, d, minRetryDelay)
			}
		}
	}
	// Large hints must still jitter around the hint, not the floor.
	if d := retryDelay(time.Second, rng); d < 800*time.Millisecond {
		t.Fatalf("retryDelay(1s) = %v, jitter band broken", d)
	}
}

// TestReplayRetryJitter drives Replay against a stub ingest endpoint
// whose admission is flaky — the first several batches are refused with
// a Retry-After hint — and asserts the retries (a) eventually deliver
// every record, and (b) back off by the jittered hint, not the bare one:
// every recorded sleep sits in the ±20% band and they are not all equal.
func TestReplayRetryJitter(t *testing.T) {
	const refusals = 8
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ingest" {
			http.NotFound(w, r)
			return
		}
		if attempts.Add(1) <= refusals {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		n := 0
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			if len(sc.Bytes()) > 0 {
				n++
			}
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: n})
	}))
	defer hs.Close()

	var mu sync.Mutex
	var slept []time.Duration
	orig := retrySleep
	retrySleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	defer func() { retrySleep = orig }()

	var recs []logging.Record
	for i := 0; i < 120; i++ {
		recs = append(recs, logging.Record{
			Message:   fmt.Sprintf("record %d", i),
			SessionID: fmt.Sprintf("s%d", i%6),
			Framework: logging.Spark,
		})
	}
	c := &Client{Base: hs.URL, Tenant: "t"}
	res, err := c.Replay(recs, ReplayOptions{Batch: 16, Concurrency: 3, MaxRetries: 20})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Records != len(recs) {
		t.Errorf("accepted %d records, want %d", res.Records, len(recs))
	}
	if res.Rejected != refusals {
		t.Errorf("rejected = %d, want %d", res.Rejected, refusals)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(slept) != refusals {
		t.Fatalf("recorded %d backoff sleeps, want %d", len(slept), refusals)
	}
	lo, hi := 800*time.Millisecond, 1200*time.Millisecond
	distinct := map[time.Duration]bool{}
	for _, d := range slept {
		if d < lo || d > hi {
			t.Errorf("backoff %v outside jitter band [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d backoffs identical (%v): jitter not applied", len(slept), slept[0])
	}
}
