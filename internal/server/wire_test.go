package server

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"intellog/internal/logging"
)

// TestFastWireRecordMatchesEncodingJSON is the codec's differential
// oracle: for every line the fast decoder accepts, its result must
// equal encoding/json's; for every record the fast appender emits, the
// bytes must decode identically through both decoders.
func TestFastWireRecordMatchesEncodingJSON(t *testing.T) {
	recs := []logging.Record{
		{},
		{
			Time: time.Date(2019, 3, 2, 9, 0, 0, 123456789, time.UTC), Level: logging.Info,
			Source: "BlockManager", Message: "Registering worker node_01",
			Framework: logging.Spark, SessionID: "container_01", TemplateID: "t7",
		},
		{
			Time:  time.Date(2026, 8, 5, 12, 30, 0, 0, time.FixedZone("", 3600)),
			Level: logging.Fatal, Message: "plain ascii with spaces and: punctuation?!",
		},
		{Level: -3, Message: "negative level"},
	}
	for i, rec := range recs {
		t.Run(fmt.Sprintf("roundtrip-%d", i), func(t *testing.T) {
			line, ok := appendWireRecord(nil, &rec)
			if !ok {
				t.Fatalf("fast appender declined plain record %+v", rec)
			}
			// The emitted line must be bytes encoding/json also produces.
			want, err := json.Marshal(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if string(line) != string(want)+"\n" {
				t.Fatalf("fast line %q, encoding/json %q", line, want)
			}
			var fast, std WireRecord
			if !fastWireRecord(line[:len(line)-1], &fast, nil) {
				t.Fatalf("fast decoder declined its own output %q", line)
			}
			if err := json.Unmarshal(line[:len(line)-1], &std); err != nil {
				t.Fatal(err)
			}
			if !fast.Time.Equal(std.Time) {
				t.Errorf("Time: fast %v, std %v", fast.Time, std.Time)
			}
			fast.Time, std.Time = time.Time{}, time.Time{}
			if !reflect.DeepEqual(fast, std) {
				t.Errorf("fast %+v, std %+v", fast, std)
			}
		})
	}
}

// TestFastWireRecordFallbacks pins the inputs the fast path must
// decline — every one of them either needs encoding/json semantics
// (escapes, unicode, case-insensitive keys) or is malformed (and
// falling back routes it to encoding/json's proper error).
func TestFastWireRecordFallbacks(t *testing.T) {
	appendCases := []logging.Record{
		{Message: `quote " inside`},
		{Message: "back\\slash"},
		{Message: "control\x07char"},
		{Message: "non-ascii é"},
		{Source: "tab\there"},
		{Time: time.Date(12026, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, rec := range appendCases {
		if out, ok := appendWireRecord([]byte("prefix"), &rec); ok {
			t.Errorf("appender accepted %+v", rec)
		} else if string(out) != "prefix" {
			t.Errorf("declined append did not restore buf: %q", out)
		}
	}

	decodeCases := []string{
		``,
		`[]`,
		`{"Message":"a"`,
		`{"Message":"a"} trailing`,
		`{"Message":"with \"escape\""}`,
		`{"Message":"é"}`,
		`{"message":"lowercase key needs case folding"}`,
		`{"Unknown":"field"}`,
		`{"Level":"INFO"}`,
		`{"Level":1.5}`,
		`{"Level":12345678901}`,
		`{"Time":"not a time"}`,
		`{"Message":"a",}`,
		`{"Message":1}`,
	}
	for _, raw := range decodeCases {
		var wr WireRecord
		if fastWireRecord([]byte(raw), &wr, &batchResolver{intern: &wireIntern{}}) {
			t.Errorf("fast decoder accepted %q", raw)
		}
	}

	// The lines it declines must still work end to end via the fallback:
	// simulate the handler's retry.
	raw := []byte(`{"message":"lowercase key","SessionID":"s"}`)
	var wr WireRecord
	if fastWireRecord(raw, &wr, nil) {
		t.Fatal("expected fallback")
	}
	wr = WireRecord{}
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Message != "lowercase key" || wr.SessionID != "s" {
		t.Errorf("fallback decode = %+v", wr)
	}
}
