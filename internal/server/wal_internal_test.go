package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"intellog/internal/logging"
)

// TestCheckpointFsyncFaultInjection simulates a disk that accepts
// writes but dies at fsync: saveCheckpoint must surface the error, leave
// the previous checkpoint byte-intact, and clean up its temp file — the
// atomic-replace contract power loss depends on.
func TestCheckpointFsyncFaultInjection(t *testing.T) {
	modelDir, stateDir := t.TempDir(), t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tn, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := tn.enqueueRecords(testRecords("sess-1", 3)); err != nil || !ok {
		t.Fatalf("enqueue: ok=%v err=%v", ok, err)
	}
	if !tn.controlCut(func(cut uint64) { err = tn.saveCheckpoint(cut) }, true) {
		t.Fatal("control barrier refused")
	}
	if err != nil {
		t.Fatalf("healthy checkpoint: %v", err)
	}
	good, err := os.ReadFile(tn.checkpointPath())
	if err != nil {
		t.Fatal(err)
	}

	// The disk dies. More records arrive; the checkpoint attempt must
	// fail loudly and leave the good checkpoint alone.
	dead := errors.New("injected fsync failure")
	orig := fileSync
	fileSync = func(*os.File) error { return dead }
	defer func() { fileSync = orig }()

	if ok, err := tn.enqueueRecords(testRecords("sess-2", 3)); err != nil || !ok {
		t.Fatalf("enqueue: ok=%v err=%v", ok, err)
	}
	var saveErr error
	if !tn.controlCut(func(cut uint64) { saveErr = tn.saveCheckpoint(cut) }, true) {
		t.Fatal("control barrier refused")
	}
	if !errors.Is(saveErr, dead) {
		t.Fatalf("saveCheckpoint under fsync failure = %v, want the injected error", saveErr)
	}
	after, err := os.ReadFile(tn.checkpointPath())
	if err != nil {
		t.Fatalf("previous checkpoint gone after failed save: %v", err)
	}
	if !bytes.Equal(good, after) {
		t.Fatal("failed checkpoint attempt modified the previous checkpoint")
	}
	if tmps, _ := filepath.Glob(filepath.Join(stateDir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("failed checkpoint left temp files behind: %v", tmps)
	}

	// Disk recovers; the next checkpoint goes through and advances.
	fileSync = orig
	if !tn.controlCut(func(cut uint64) { saveErr = tn.saveCheckpoint(cut) }, true) {
		t.Fatal("control barrier refused")
	}
	if saveErr != nil {
		t.Fatalf("post-recovery checkpoint: %v", saveErr)
	}
	recovered, err := os.ReadFile(tn.checkpointPath())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(recovered, good) {
		t.Fatal("post-recovery checkpoint did not advance past the pre-failure one")
	}
}

// TestStreamDeadLetterAck drives the binary wire with a batch holding an
// invalid record: the frame must be accepted (not 400'd whole, the old
// behavior), the bad record counted in the ack's Dead field, and the
// entry listed on the tenant's DLQ.
func TestStreamDeadLetterAck(t *testing.T) {
	s, addr := bootStreamServer(t, Config{})
	c := &Client{Tenant: "acme"}
	sc, err := c.DialStream(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	recs := sparkRecs("sess-a", 3)
	recs = append(recs, logging.Record{SessionID: "sess-a", Framework: logging.Spark}) // no message
	resp, err := sc.Send(recs)
	if err != nil {
		t.Fatalf("batch with one invalid record refused: %v", err)
	}
	if resp.Accepted != 3 || resp.DeadLettered != 1 {
		t.Fatalf("ack = %+v, want 3 accepted, 1 dead-lettered", resp)
	}
	tn, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	entries, _, depth := tn.dlq.List(0, 0)
	if depth != 1 || len(entries) != 1 {
		t.Fatalf("DLQ depth = %d, want the 1 invalid record", depth)
	}
	if entries[0].Reason != "record has no message" {
		t.Fatalf("DLQ reason = %q", entries[0].Reason)
	}
}
