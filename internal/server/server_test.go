package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"intellog/internal/conformance"
	"intellog/internal/detect"
	"intellog/internal/logging"
)

// saveSparkModel writes the cached spark reference model as tenant name.
func saveSparkModel(t *testing.T, dir, name string) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, name+modelExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.ModelFor(logging.Spark).Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func testRecords(session string, n int) []logging.Record {
	recs := make([]logging.Record, n)
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i] = logging.Record{
			Time:      base.Add(time.Duration(i) * time.Second),
			Level:     logging.Info,
			Source:    "Test",
			Message:   fmt.Sprintf("test message %d", i),
			SessionID: session,
			Framework: logging.Spark,
		}
	}
	return recs
}

// TestBackpressure429 fills a tiny ingest queue behind a gated worker and
// proves admission control: the overflowing batch gets a typed 429 with
// Retry-After, queued records never exceed the budget (no unbounded
// buffering), and ingest recovers once the worker drains.
func TestBackpressure429(t *testing.T) {
	modelDir := t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir, QueueRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	tn, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	// Gate the worker so queued records stay queued deterministically.
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		if !tn.control(func() { close(entered); <-release }, true) {
			t.Error("gate control refused")
		}
	}()
	<-entered

	c := &Client{Base: hs.URL, Tenant: "acme"}
	if _, err := c.IngestRecords(testRecords("sess-a", 3)); err != nil {
		t.Fatalf("first batch within budget refused: %v", err)
	}
	_, err = c.IngestRecords(testRecords("sess-b", 3))
	qf, ok := err.(ErrQueueFull)
	if !ok {
		t.Fatalf("overflow batch: got err %v, want ErrQueueFull", err)
	}
	if qf.RetryAfter <= 0 {
		t.Fatalf("429 carried no usable Retry-After: %v", qf.RetryAfter)
	}
	if got := tn.pending.Load(); got != 3 {
		t.Fatalf("pending records = %d after refusal, want 3 (refused batch must not buffer)", got)
	}
	if got := tn.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// Recovery: release the worker, wait for the drain, ingest again.
	close(release)
	if !tn.control(func() {}, true) {
		t.Fatal("control barrier refused")
	}
	if got := tn.pending.Load(); got != 0 {
		t.Fatalf("pending records = %d after drain, want 0", got)
	}
	if _, err := c.IngestRecords(testRecords("sess-b", 3)); err != nil {
		t.Fatalf("post-drain batch refused: %v", err)
	}
}

// TestLRUEviction proves the resident-tenant cap: loading past
// MaxTenants drains and checkpoints the least-recently-used tenant, and
// touching it again restores from that checkpoint (stream state intact).
func TestLRUEviction(t *testing.T) {
	modelDir, stateDir := t.TempDir(), t.TempDir()
	for _, name := range []string{"a", "b", "c"} {
		saveSparkModel(t, modelDir, name)
	}
	s, err := New(Config{ModelDir: modelDir, StateDir: stateDir, MaxTenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ta, err := s.Tenant("a")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := ta.enqueueRecords(testRecords("sess-1", 2)); err != nil || !ok {
		t.Fatalf("enqueue refused (ok=%v err=%v)", ok, err)
	}
	if !ta.control(func() {}, true) {
		t.Fatal("drain barrier refused")
	}
	if _, err := s.Tenant("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tenant("c"); err != nil { // evicts a
		t.Fatal(err)
	}
	if n := len(s.resident()); n != 2 {
		t.Fatalf("resident tenants = %d, want 2", n)
	}
	ckpt := filepath.Join(stateDir, "a"+checkpointExt)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("eviction left no checkpoint for a: %v", err)
	}

	ta2, err := s.Tenant("a") // reload; evicts b
	if err != nil {
		t.Fatal(err)
	}
	if ta2 == ta {
		t.Fatal("reload returned the evicted instance")
	}
	if !ta2.restored {
		t.Fatal("reloaded tenant did not restore from its checkpoint")
	}
	if got := ta2.sd.SessionsSeen(); got != 1 {
		t.Fatalf("restored SessionsSeen = %d, want 1", got)
	}
	if n := len(s.resident()); n != 2 {
		t.Fatalf("resident tenants = %d after reload, want 2", n)
	}
}

// TestAnomalyLogPaging exercises the sink: dense cursor paging, the
// retention trim, and the dropped count that distinguishes a trimmed gap
// from a quiet stream.
func TestAnomalyLogPaging(t *testing.T) {
	l := newAnomalyLog(0)
	var batch []detect.Anomaly
	for seq := uint64(1); seq <= 10; seq++ {
		batch = append(batch, detect.Anomaly{Seq: seq, Session: fmt.Sprintf("s%d", seq)})
	}
	l.append(batch)

	page, next, dropped := l.after(0, 3)
	if len(page) != 3 || next != 3 || dropped != 0 {
		t.Fatalf("after(0,3) = %d entries, next %d, dropped %d; want 3, 3, 0", len(page), next, dropped)
	}
	if page[0].Seq != 1 || page[2].Seq != 3 {
		t.Fatalf("page seqs = %d..%d, want 1..3", page[0].Seq, page[2].Seq)
	}
	page, next, _ = l.after(next, 0)
	if len(page) != 7 || next != 10 {
		t.Fatalf("after(3,∞) = %d entries, next %d; want 7, 10", len(page), next)
	}
	page, next, _ = l.after(10, 0)
	if len(page) != 0 || next != 10 {
		t.Fatalf("after(10,∞) = %d entries, next %d; want 0, 10", len(page), next)
	}

	// Retention: cap at 4 → seqs 1..6 trimmed; a stale cursor resumes at
	// the window start and the response says how much is gone.
	trimmed := newAnomalyLog(4)
	trimmed.append(batch)
	page, next, dropped = trimmed.after(2, 0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(page) != 4 || page[0].Seq != 7 || next != 10 {
		t.Fatalf("stale cursor page = %d entries from seq %d, next %d; want 4 from 7, next 10",
			len(page), page[0].Seq, next)
	}
}

// TestAnomalyLogCursorOverflow pins the cursor clamp: a client-supplied
// since near MaxUint64 must land past the retained window (empty page,
// cursor echoed back), not overflow int and panic indexing.
func TestAnomalyLogCursorOverflow(t *testing.T) {
	l := newAnomalyLog(0)
	l.append([]detect.Anomaly{{Seq: 1}, {Seq: 2}, {Seq: 3}})
	for _, since := range []uint64{3, 4, 1 << 40, math.MaxUint64 - 1, math.MaxUint64} {
		page, next, _ := l.after(since, 0)
		if len(page) != 0 || next != since {
			t.Fatalf("after(%d) = %d entries, next %d; want 0 entries, next %d",
				since, len(page), next, since)
		}
	}
}

// TestOversizedBatch413 proves a batch larger than the entire queue
// budget is refused with a non-retryable 413, not the retryable 429 that
// would loop clients forever on a permanently unacceptable request.
func TestOversizedBatch413(t *testing.T) {
	modelDir := t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir, QueueRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	c := &Client{Base: hs.URL, Tenant: "acme"}
	_, err = c.IngestRecords(testRecords("sess-a", 5))
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized batch: err %v, want HTTP 413", err)
	}
	if _, ok := err.(ErrQueueFull); ok {
		t.Fatal("oversized batch surfaced as retryable ErrQueueFull")
	}
	if _, err := c.IngestRecords(testRecords("sess-a", 4)); err != nil {
		t.Fatalf("exactly-budget batch refused: %v", err)
	}
}

// TestJunkCheckpointIgnored boots a server over a state dir holding
// checkpoint files with invalid tenant basenames: they are skipped, not
// turned into a startup failure.
func TestJunkCheckpointIgnored(t *testing.T) {
	modelDir, stateDir := t.TempDir(), t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	for _, junk := range []string{".hidden" + checkpointExt, "bad name" + checkpointExt} {
		if err := os.WriteFile(filepath.Join(stateDir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{ModelDir: modelDir, StateDir: stateDir})
	if err != nil {
		t.Fatalf("junk checkpoint files failed boot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStickyRestoredAcrossCheckpoint proves the raw-line sessionizer's
// stickiness survives a checkpoint + kill + restart: an ID-less line
// ingested by the successor process still attributes to the session that
// was active at the cut instead of being dropped.
func TestStickyRestoredAcrossCheckpoint(t *testing.T) {
	modelDir, stateDir := t.TempDir(), t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	cfg := Config{ModelDir: modelDir, StateDir: stateDir}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	c := &Client{Base: hs.URL, Tenant: "acme"}

	body := `{"line": "19/03/01 12:00:01 INFO Executor: starting container_1234567890_0001_01_000001"}`
	resp, err := hs.Client().Post(hs.URL+"/v1/ingest?tenant=acme", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	s.Kill()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	tn, err := s2.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if !tn.restored {
		t.Fatal("tenant did not restore from checkpoint")
	}
	idless := `{"line": "19/03/01 12:00:02 INFO Executor: heartbeat"}`
	resp, err = hs2.Client().Post(hs2.URL+"/v1/ingest?tenant=acme", "application/x-ndjson", strings.NewReader(idless))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tn.control(func() {}, true)
	if got := tn.skipped.Load(); got != 0 {
		t.Fatalf("restored tenant dropped %d ID-less lines; sticky state lost", got)
	}
	if got := tn.records.Load(); got != 1 {
		t.Fatalf("accepted records = %d, want 1", got)
	}
	if got := tn.sd.Pending(); got != 1 {
		t.Fatalf("pending sessions = %d, want 1 (ID-less line must join the restored session)", got)
	}
}

// TestIngestFrameworkParam pins the ?framework= contract on the raw-line
// path: unknown names are rejected up front, and a known name selects
// the parser for raw lines instead of being silently ignored in favor of
// the tenant default.
func TestIngestFrameworkParam(t *testing.T) {
	modelDir := t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/ingest?tenant=acme&framework=nope",
		"application/x-ndjson", strings.NewReader(`{"line": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown framework: status %d, want 400", resp.StatusCode)
	}

	// A log4j-format line is unparsable under the spark default but must
	// parse when the request says framework=yarn.
	body := `{"line": "2019-03-01 12:00:00,123 INFO [main] org.apache.hadoop.yarn.NodeManager: starting container_1234567890_0001_01_000001"}`
	resp, err = hs.Client().Post(hs.URL+"/v1/ingest?tenant=acme&framework=yarn",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("yarn raw line: status %d, want 202", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 || ir.Skipped != 0 {
		t.Fatalf("yarn raw line: accepted %d, skipped %d; want 1 accepted (formatter must follow the framework parameter)",
			ir.Accepted, ir.Skipped)
	}
}

// TestMetricsEndpoint ingests through HTTP and checks the scrape carries
// the serving-layer series with believable values.
func TestMetricsEndpoint(t *testing.T) {
	modelDir := t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	c := &Client{Base: hs.URL, Tenant: "acme"}
	if _, err := c.IngestRecords(testRecords("sess-1", 5)); err != nil {
		t.Fatal(err)
	}
	tn, _ := s.Tenant("acme")
	tn.control(func() {}, true) // drain so gauges are settled

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`intellogd_ingest_records_total{tenant="acme"} 5`,
		`intellogd_ingest_batches_total{tenant="acme"} 1`,
		`intellogd_pending_sessions{tenant="acme"} 1`,
		`intellogd_queue_records{tenant="acme"} 0`,
		`intellogd_resident_tenants 1`,
		"# TYPE intellogd_ingest_records_total counter",
		"# TYPE intellogd_pending_sessions gauge",
		"intellogd_lookup_cache_hits",
		"intellogd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}

// TestTenantErrors maps bad and unknown tenants to 400 and 404.
func TestTenantErrors(t *testing.T) {
	s, err := New(Config{ModelDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	for _, tc := range []struct {
		tenant string
		want   string
	}{
		{"", "400"},
		{"../../etc/passwd", "400"},
		{"no-such-tenant", "404"},
	} {
		c := &Client{Base: hs.URL, Tenant: tc.tenant}
		_, err := c.Report()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("tenant %q: err %v, want HTTP %s", tc.tenant, err, tc.want)
		}
	}
}

// TestValidTenantName pins the name filter.
func TestValidTenantName(t *testing.T) {
	for name, want := range map[string]bool{
		"acme":                   true,
		"team-1.prod":            true,
		"A_b-3":                  true,
		"":                       false,
		".hidden":                false,
		"a/../b":                 false,
		"a..b":                   false,
		"with space":             false,
		"slash/inside":           false,
		strings.Repeat("x", 129): false,
	} {
		if got := validTenantName(name); got != want {
			t.Errorf("validTenantName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestRawLineIngest drives the `{"line": ...}` wire mode: raw framework
// lines are parsed and sessionized server-side; unparsable or
// pre-session chatter is skipped and counted, not fatal.
func TestRawLineIngest(t *testing.T) {
	modelDir := t.TempDir()
	saveSparkModel(t, modelDir, "acme")
	s, err := New(Config{ModelDir: modelDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := strings.Join([]string{
		`{"line": "19/03/01 12:00:00 INFO Daemon: warming up"}`, // no session yet → skip
		`{"line": "19/03/01 12:00:01 INFO Executor: starting container_1234567890_0001_01_000001"}`,
		`{"line": "19/03/01 12:00:02 INFO Executor: heartbeat"}`, // sticks to current session
		`{"line": "definitely not a spark line"}`,                // parse failure → skip
	}, "\n")
	resp, err := hs.Client().Post(hs.URL+"/v1/ingest?tenant=acme", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	tn, _ := s.Tenant("acme")
	tn.control(func() {}, true)
	if got := tn.records.Load(); got != 2 {
		t.Fatalf("accepted records = %d, want 2", got)
	}
	if got := tn.skipped.Load(); got != 2 {
		t.Fatalf("skipped lines = %d, want 2", got)
	}
	if got := tn.sd.Pending(); got != 1 {
		t.Fatalf("pending sessions = %d, want 1", got)
	}
}
