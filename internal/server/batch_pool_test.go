package server

import (
	"encoding/json"
	"reflect"
	"testing"

	"intellog/internal/batch"
	"intellog/internal/conformance"
	"intellog/internal/logging"
)

// TestPooledDecodeDifferential pins the pooled batch lifecycle against
// the unpooled baseline on every conformance corpus, over both wire
// forms: each corpus is encoded with the production encoders, decoded
// once into freshly allocated slices and once into a single pooled
// batch that is recycled corpus after corpus, and the two decodes must
// be identical record for record. A recycled backing array that leaked
// state between fills (stale records, un-reset length, clobbered
// strings) fails here before it could ever reach the detector.
func TestPooledDecodeDifferential(t *testing.T) {
	pool := batch.NewPool(0)
	pool.DetectLeaks(func(capa int) { t.Errorf("leaked a %d-cap batch", capa) })

	for _, spec := range conformance.DefaultMatrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			recs := spec.Generate().Records

			// NDJSON wire: the replay client's encoder, then the ingest
			// fast path (with strict encoding/json fallback) both ways.
			var lines [][]byte
			for i := range recs {
				line, ok := appendWireRecord(nil, &recs[i])
				if !ok {
					j, err := json.Marshal(WireRecord{Record: recs[i]})
					if err != nil {
						t.Fatal(err)
					}
					line = append(j, '\n')
				}
				lines = append(lines, line[:len(line)-1])
			}
			plain := decodeNDJSON(t, lines, nil)
			b := pool.Get()
			for _, line := range lines {
				b.Append(decodeOneNDJSON(t, line, &batchResolver{intern: &wireIntern{}}))
			}
			if !reflect.DeepEqual(plain, b.Recs) {
				t.Fatalf("NDJSON: pooled decode diverges from unpooled")
			}
			b.Release()

			// ILS1 wire: one encoded frame body, decoded into a fresh
			// slice and into a recycled pooled batch.
			body := appendBatch(nil, 7, recs)
			_, fresh, err := decodeBatch(body, &batchResolver{intern: &wireIntern{}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			pb := pool.Get()
			seq, out, err := decodeBatch(body, &batchResolver{intern: &wireIntern{}}, pb.Recs[:0])
			pb.Recs = out
			if err != nil {
				t.Fatal(err)
			}
			if seq != 7 {
				t.Fatalf("seq = %d, want 7", seq)
			}
			if !reflect.DeepEqual(fresh, pb.Recs) {
				t.Fatalf("ILS1: pooled decode diverges from unpooled")
			}
			pb.Release()
		})
	}

	if st := pool.Stats(); st.Outstanding != 0 || st.Leaked != 0 {
		t.Fatalf("pool not quiesced after all corpora: %+v", st)
	}
}

// decodeNDJSON decodes lines the unpooled way: a fresh record slice, a
// per-call resolver (nil intern behaves like a cold one).
func decodeNDJSON(t *testing.T, lines [][]byte, br *batchResolver) []logging.Record {
	t.Helper()
	var out []logging.Record
	for _, line := range lines {
		out = append(out, decodeOneNDJSON(t, line, br))
	}
	return out
}

func decodeOneNDJSON(t *testing.T, line []byte, br *batchResolver) logging.Record {
	t.Helper()
	var wr WireRecord
	if !fastWireRecord(line, &wr, br) {
		wr = WireRecord{}
		if err := json.Unmarshal(line, &wr); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	return wr.Record
}
