package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"intellog/internal/logging"
)

// wireRecords is a record set that exercises every encoding edge the
// batch body has: zero time, UTC, odd fixed zones, empty fields,
// non-ASCII text, embedded newlines and invalid UTF-8.
func wireRecords() []logging.Record {
	return []logging.Record{
		{
			Time:      time.Date(2026, 3, 1, 12, 0, 0, 123456789, time.UTC),
			Level:     logging.Info,
			Source:    "BlockManager",
			Message:   "Registering block manager 10.0.0.7:39631",
			Framework: logging.Spark,
			SessionID: "container_0001_01_000001",
		},
		{
			Time:       time.Date(2026, 3, 1, 17, 30, 0, 0, time.FixedZone("", 5*3600+1800)),
			Level:      logging.Warn,
			Source:     "Fetcher",
			Message:    "multi\nline\nstack trace",
			Framework:  logging.MapReduce,
			SessionID:  "container_0001_01_000002",
			TemplateID: "t-17",
		},
		{
			// Zero time is a sentinel on the wire; everything else empty
			// except the message (admission requires one).
			Message: "naked message \xff\xfe not utf8 é",
		},
		{
			Time:    time.Unix(0, 1).UTC(),
			Level:   logging.Fatal,
			Source:  strings.Repeat("s", 300), // multi-byte uvarint length
			Message: "",
		},
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, frameHello, appendHello(nil, "acme", logging.Spark))
	buf = appendFrame(buf, frameBatch, appendBatch(nil, 7, wireRecords()))
	buf = appendFrame(buf, frameAck, appendAck(nil, streamAck{Seq: 7, Status: ackAccepted, Accepted: 4}))

	r := bytes.NewReader(buf)
	var fbuf []byte

	typ, body, fbuf, err := readFrame(r, fbuf, 0)
	if err != nil || typ != frameHello {
		t.Fatalf("hello frame: type=%d err=%v", typ, err)
	}
	tenant, fw, err := parseHello(body)
	if err != nil || tenant != "acme" || fw != logging.Spark {
		t.Fatalf("parseHello = (%q, %q, %v)", tenant, fw, err)
	}

	typ, body, fbuf, err = readFrame(r, fbuf, 0)
	if err != nil || typ != frameBatch {
		t.Fatalf("batch frame: type=%d err=%v", typ, err)
	}
	seq, recs, err := decodeBatch(body, &batchResolver{intern: &wireIntern{}}, nil)
	if err != nil {
		t.Fatalf("decodeBatch: %v", err)
	}
	if seq != 7 {
		t.Fatalf("seq = %d, want 7", seq)
	}
	want := wireRecords()
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		// Times compare by wire fidelity (instant + zone offset), not by
		// zone identity: the decoder rebuilds zones as unnamed offsets.
		if !recs[i].Time.Equal(want[i].Time) {
			t.Fatalf("record %d time = %v, want %v", i, recs[i].Time, want[i].Time)
		}
		if g, w := recs[i].Time.Format(time.RFC3339Nano), want[i].Time.Format(time.RFC3339Nano); g != w {
			t.Fatalf("record %d rendered time = %q, want %q", i, g, w)
		}
		recs[i].Time, want[i].Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(recs[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}

	typ, body, _, err = readFrame(r, fbuf, 0)
	if err != nil || typ != frameAck {
		t.Fatalf("ack frame: type=%d err=%v", typ, err)
	}
	ack, err := parseAck(body)
	if err != nil {
		t.Fatalf("parseAck: %v", err)
	}
	if ack.Seq != 7 || ack.Status != ackAccepted || ack.Accepted != 4 {
		t.Fatalf("ack = %+v", ack)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after three frames", r.Len())
	}
}

func TestWireAckRoundTrip(t *testing.T) {
	in := streamAck{Seq: 42, Status: ackQueueFull, Accepted: 0, Skipped: 3,
		RetryMs: 1000, Msg: "ingest queue full"}
	out, err := parseAck(appendAck(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("ack round trip = %+v, want %+v", out, in)
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	valid := appendFrame(nil, frameAck, appendAck(nil, streamAck{Status: ackAccepted}))

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff // flip a CRC byte

	flipped := append([]byte(nil), valid...)
	flipped[5] ^= 0x01 // flip a body byte, keep the stale CRC

	undersized := []byte{4, 0, 0, 0, frameAck}

	oversized := make([]byte, 4)
	oversized[0] = 0xff
	oversized[1] = 0xff
	oversized[2] = 0xff
	oversized[3] = 0x7f

	cases := []struct {
		name string
		data []byte
		wire bool // must be a protocol error, not an I/O error
	}{
		{"empty", nil, false},
		{"truncated header", valid[:2], false},
		{"truncated payload", valid[:len(valid)-3], false},
		{"length below minimum", undersized, true},
		{"length above limit", oversized, true},
		{"corrupt crc", corrupt, true},
		{"corrupt body", flipped, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := readFrame(bytes.NewReader(tc.data), nil, 1<<20)
			if err == nil {
				t.Fatal("readFrame accepted malformed input")
			}
			if tc.wire && !errors.Is(err, errWire) {
				t.Fatalf("err = %v, want a wire protocol error", err)
			}
			if !tc.wire && errors.Is(err, errWire) {
				t.Fatalf("err = %v, want a plain I/O error", err)
			}
		})
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	good := appendBatch(nil, 1, wireRecords())
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"bare seq", good[:1]},
		{"impossible count", append(appendBatch(nil, 1, nil)[:1], 0xff, 0xff, 0x03)},
		{"truncated record", good[:len(good)-2]},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := decodeBatch(tc.body, nil, nil); err == nil {
				t.Fatal("decodeBatch accepted malformed body")
			}
		})
	}
}

func TestParseHelloRejectsMalformed(t *testing.T) {
	good := appendHello(nil, "acme", logging.Spark)
	bad := [][]byte{
		nil,
		{99}, // unknown version
		good[:2],
		append(append([]byte(nil), good...), 0), // trailing byte
	}
	for i, body := range bad {
		if _, _, err := parseHello(body); err == nil {
			t.Fatalf("case %d: parseHello accepted malformed body", i)
		}
	}
}

// TestWireInternBounded pins the interner's memory contract: feed it far
// more distinct strings than its cap and the table must reset rather
// than grow, while every returned string still equals its input.
func TestWireInternBounded(t *testing.T) {
	in := &wireIntern{}
	for i := 0; i < 3*wireInternCap; i++ {
		s := fmt.Sprintf("session-%d", i)
		if got := in.get([]byte(s)); got != s {
			t.Fatalf("get(%q) = %q", s, got)
		}
		if len(in.m) > wireInternCap {
			t.Fatalf("intern table grew to %d entries (cap %d)", len(in.m), wireInternCap)
		}
	}
	// Repeats still dedup after the resets.
	a := in.get([]byte("stable"))
	b := in.get([]byte("stable"))
	if a != b {
		t.Fatalf("repeat lookup diverged: %q vs %q", a, b)
	}
}

// FuzzWireFrame pins the decoder's safety contract: arbitrary bytes —
// truncated, oversized, corrupt-CRC, or structurally malformed — must
// produce an error, never a panic, over-read or runaway allocation. A
// batch body that does decode must re-encode and re-decode to the same
// records (idempotence after the first decode).
func FuzzWireFrame(f *testing.F) {
	f.Add(append([]byte(nil), appendFrame(nil, frameHello, appendHello(nil, "acme", logging.Spark))...))
	f.Add(appendFrame(nil, frameBatch, appendBatch(nil, 3, wireRecords())))
	f.Add(appendFrame(nil, frameAck, appendAck(nil, streamAck{Seq: 3, Status: ackQueueFull, RetryMs: 1000, Msg: "full"})))
	f.Add([]byte{4, 0, 0, 0, frameBatch})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	corrupt := appendFrame(nil, frameBatch, appendBatch(nil, 1, wireRecords()[:1]))
	corrupt[len(corrupt)-2] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, body, _, err := readFrame(r, nil, 1<<20)
			if err != nil {
				if err != io.EOF && !errors.Is(err, errWire) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			switch typ {
			case frameHello:
				parseHello(body)
			case frameAck:
				parseAck(body)
			case frameBatch:
				seq, recs, err := decodeBatch(body, &batchResolver{intern: &wireIntern{}}, nil)
				if err != nil {
					continue
				}
				again := appendBatch(nil, seq, recs)
				seq2, recs2, err := decodeBatch(again, &batchResolver{intern: &wireIntern{}}, nil)
				if err != nil {
					t.Fatalf("re-decode of re-encoded batch failed: %v", err)
				}
				if seq2 != seq || len(recs2) != len(recs) {
					t.Fatalf("re-decode changed shape: seq %d→%d, %d→%d records",
						seq, seq2, len(recs), len(recs2))
				}
				for i := range recs {
					if !recs[i].Time.Equal(recs2[i].Time) {
						t.Fatalf("record %d time drifted on re-encode", i)
					}
					recs[i].Time, recs2[i].Time = time.Time{}, time.Time{}
					if !reflect.DeepEqual(recs[i], recs2[i]) {
						t.Fatalf("record %d drifted on re-encode: %+v vs %+v", i, recs[i], recs2[i])
					}
				}
			}
		}
	})
}
