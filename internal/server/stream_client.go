package server

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"intellog/internal/logging"
)

// StreamConn is one persistent binary-protocol ingest connection (see
// wirebin.go) for the client's tenant. It is not safe for concurrent
// use; replay opens one connection per worker.
type StreamConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	wbuf []byte // frame build buffer, reused per send
	rbuf []byte // frame read buffer, reused per ack

	seq     uint64
	refused bool // last Send was refused; retry must reuse its seq
}

// DialStream opens a binary ingest connection to addr (the daemon's
// -stream-addr listener), performs the magic/Hello exchange for the
// client's tenant, and returns the ready connection. fw may be empty
// for the server default.
func (c *Client) DialStream(addr string, fw logging.Framework) (*StreamConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	sc := &StreamConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 256<<10),
	}
	sc.wbuf = append(sc.wbuf, streamMagic...)
	sc.wbuf = appendFrame(sc.wbuf, frameHello, appendHello(nil, c.Tenant, fw))
	if _, err := sc.bw.Write(sc.wbuf); err != nil {
		conn.Close()
		return nil, err
	}
	if err := sc.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := sc.readAck()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ack.Status != ackAccepted {
		conn.Close()
		return nil, fmt.Errorf("stream hello refused (%d): %s", ack.Status, ack.Msg)
	}
	return sc, nil
}

// Close tears the connection down.
func (sc *StreamConn) Close() error { return sc.conn.Close() }

// sendBatchFrame writes (without flushing) one Batch frame.
func (sc *StreamConn) sendBatchFrame(seq uint64, recs []logging.Record) error {
	sc.wbuf = appendFrame(sc.wbuf[:0], frameBatch, appendBatch(nil, seq, recs))
	_, err := sc.bw.Write(sc.wbuf)
	return err
}

// readAck reads the next Ack frame.
func (sc *StreamConn) readAck() (streamAck, error) {
	typ, body, rbuf, err := readFrame(sc.br, sc.rbuf, 0)
	sc.rbuf = rbuf
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return streamAck{}, err
	}
	if typ != frameAck {
		return streamAck{}, wireErrf("expected ack, got frame type %d", typ)
	}
	return parseAck(body)
}

// Send ships one batch and waits for its verdict — the synchronous
// counterpart of Client.IngestRecords over the binary wire. A full
// queue returns ErrQueueFull carrying the server's backoff hint;
// calling Send again retransmits under the refused sequence number, as
// the protocol's ordering contract requires.
func (sc *StreamConn) Send(recs []logging.Record) (IngestResponse, error) {
	if !sc.refused {
		sc.seq++
	}
	if err := sc.sendBatchFrame(sc.seq, recs); err != nil {
		return IngestResponse{}, err
	}
	if err := sc.bw.Flush(); err != nil {
		return IngestResponse{}, err
	}
	ack, err := sc.readAck()
	if err != nil {
		return IngestResponse{}, err
	}
	if ack.Seq != sc.seq {
		return IngestResponse{}, wireErrf("ack for seq %d, want %d", ack.Seq, sc.seq)
	}
	switch ack.Status {
	case ackAccepted:
		sc.refused = false
		return IngestResponse{Accepted: ack.Accepted, Skipped: ack.Skipped, DeadLettered: ack.Dead}, nil
	case ackQueueFull:
		sc.refused = true
		return IngestResponse{}, ErrQueueFull{RetryAfter: time.Duration(ack.RetryMs) * time.Millisecond}
	default:
		sc.refused = true
		return IngestResponse{}, fmt.Errorf("stream ingest refused (%d): %s", ack.Status, ack.Msg)
	}
}

// StreamReplayOptions tunes a binary-protocol load replay.
type StreamReplayOptions struct {
	// Batch is the records-per-frame batch size (default 256).
	Batch int
	// Concurrency is the number of parallel connections; records shard
	// across them by session hash (default 1).
	Concurrency int
	// Window is the per-connection pipelining depth: how many frames may
	// be in flight unacked (default 4).
	Window int
	// MaxRetries bounds retries per frame on 429 (default 50).
	MaxRetries int
}

// ReplayStream is Client.Replay over the binary protocol: records shard
// across Concurrency persistent connections by session hash, each
// connection pipelines up to Window frames, and a refused frame is
// retransmitted go-back-N style (the refused frame and everything sent
// after it, in order) so per-session record order survives both the
// backpressure and the pipelining.
func (c *Client) ReplayStream(addr string, recs []logging.Record, opts StreamReplayOptions) (ReplayResult, error) {
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Window <= 0 {
		opts.Window = 4
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 50
	}

	shards := make([][]logging.Record, opts.Concurrency)
	for _, r := range recs {
		h := fnv.New32a()
		h.Write([]byte(r.SessionID))
		i := int(h.Sum32()) % opts.Concurrency
		if i < 0 {
			i += opts.Concurrency
		}
		shards[i] = append(shards[i], r)
	}

	type workerStat struct {
		records, batches, rejected int
		latencies                  []time.Duration
		err                        error
	}
	stats := make([]workerStat, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, recs []logging.Record) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(int64(w) + 1))
			sc, err := c.DialStream(addr, "")
			if err != nil {
				st.err = err
				return
			}
			defer sc.Close()
			st.err = replayStreamWorker(sc, recs, opts, rng, func(lat time.Duration, accepted int) {
				st.latencies = append(st.latencies, lat)
				st.records += accepted
				st.batches++
			}, func() { st.rejected++ })
		}(w, shards[w])
	}
	wg.Wait()

	res := ReplayResult{Duration: time.Since(start)}
	var lat []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return res, stats[i].err
		}
		res.Records += stats[i].records
		res.Batches += stats[i].batches
		res.Rejected += stats[i].rejected
		lat = append(lat, stats[i].latencies...)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P50 = lat[len(lat)/2]
		res.P99 = lat[(len(lat)*99)/100]
	}
	if secs := res.Duration.Seconds(); secs > 0 {
		res.RecPerSec = float64(res.Records) / secs
	}
	return res, nil
}

// replayStreamWorker drives one connection: fill the window, read the
// oldest verdict, and on a refusal drain the doomed tail's 425s, back
// off, and retransmit the whole window under the original sequence
// numbers.
func replayStreamWorker(sc *StreamConn, recs []logging.Record, opts StreamReplayOptions,
	rng *rand.Rand, onAck func(time.Duration, int), onReject func()) error {
	type flight struct {
		seq    uint64
		recs   []logging.Record
		sentAt time.Time
	}
	var inflight []flight
	retries := 0
	off := 0
	for off < len(recs) || len(inflight) > 0 {
		for len(inflight) < opts.Window && off < len(recs) {
			end := off + opts.Batch
			if end > len(recs) {
				end = len(recs)
			}
			sc.seq++
			f := flight{seq: sc.seq, recs: recs[off:end], sentAt: time.Now()}
			if err := sc.sendBatchFrame(f.seq, f.recs); err != nil {
				return err
			}
			inflight = append(inflight, f)
			off = end
		}
		if err := sc.bw.Flush(); err != nil {
			return err
		}
		ack, err := sc.readAck()
		if err != nil {
			return err
		}
		front := &inflight[0]
		if ack.Seq != front.seq {
			return wireErrf("ack for seq %d, want %d", ack.Seq, front.seq)
		}
		switch ack.Status {
		case ackAccepted:
			onAck(time.Since(front.sentAt), ack.Accepted)
			inflight = inflight[1:]
			retries = 0
		case ackQueueFull:
			onReject()
			retries++
			if retries > opts.MaxRetries {
				return fmt.Errorf("frame still refused after %d retries: queue full", opts.MaxRetries)
			}
			// The frames pipelined behind the refused one were bounced
			// with 425 (retry-early); consume those verdicts so the ack
			// stream realigns, then retransmit the window in order.
			for i := 1; i < len(inflight); i++ {
				tail, err := sc.readAck()
				if err != nil {
					return err
				}
				if tail.Seq != inflight[i].seq || tail.Status != ackRetryEarly {
					return wireErrf("expected 425 for seq %d, got %d for seq %d",
						inflight[i].seq, tail.Status, tail.Seq)
				}
			}
			retrySleep(retryDelay(time.Duration(ack.RetryMs)*time.Millisecond, rng))
			for i := range inflight {
				inflight[i].sentAt = time.Now()
				if err := sc.sendBatchFrame(inflight[i].seq, inflight[i].recs); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("stream ingest refused (%d): %s", ack.Status, ack.Msg)
		}
	}
	return nil
}
