package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"intellog/internal/conformance"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/server"
)

// metricValue extracts one sample from a Prometheus text exposition.
func metricValue(t *testing.T, text, name, tenant string) float64 {
	t.Helper()
	needle := fmt.Sprintf(`%s{tenant=%q}`, name, tenant)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, needle) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, needle)), 64)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", needle)
	return 0
}

// TestServeWALKillRestartConformance is the crash-window drill the WAL
// exists for, over every corpus of the conformance matrix: ingest a
// third, checkpoint, ingest another third that is ACKED BUT NEVER
// CHECKPOINTED, SIGKILL, restart, finish the stream. Without the WAL
// the middle third vanishes (it was acked, then lost); with it, boot
// replay must reconstruct the stream so exactly that the combined
// two-life report canonicalizes byte-identical to a serial, never-
// crashed server over the same corpus.
func TestServeWALKillRestartConformance(t *testing.T) {
	for _, spec := range conformance.DefaultMatrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			corpus := spec.Generate()
			want := serveCorpus(t, spec, corpus, 1)

			modelDir, stateDir := t.TempDir(), t.TempDir()
			writeModel(t, modelDir, "acme", spec.Framework)
			cfg := server.Config{
				ModelDir: modelDir, StateDir: stateDir,
				DefaultFramework: spec.Framework,
			}
			cut1 := len(corpus.Records) / 3
			cut2 := 2 * len(corpus.Records) / 3

			// First life: checkpoint covers [0, cut1); the crash window
			// [cut1, cut2) is acked into the WAL and nowhere else.
			srv1, hs1 := bootServer(t, cfg)
			c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
			if _, err := c1.Replay(corpus.Records[:cut1], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
				t.Fatalf("first-life replay: %v", err)
			}
			if err := c1.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			// Read the served findings BEFORE the crash window: its records
			// will be replayed in the second life and re-emit their findings
			// there, so reading them now (and only now) counts each exactly
			// once across the two lives.
			preKill, err := c1.AllAnomalies()
			if err != nil {
				t.Fatalf("pre-kill anomalies: %v", err)
			}
			res, err := c1.Replay(corpus.Records[cut1:cut2], server.ReplayOptions{Batch: 64, Concurrency: 1})
			if err != nil {
				t.Fatalf("crash-window replay: %v", err)
			}
			if res.Records != cut2-cut1 {
				t.Fatalf("crash window acked %d records, want %d", res.Records, cut2-cut1)
			}
			hs1.Close()
			srv1.Kill() // no drain, no final checkpoint: the acked window survives only in the WAL

			// Second life: boot replay must re-feed exactly the crash window.
			srv2, hs2 := bootServer(t, cfg)
			defer srv2.Close()
			c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
			text, err := c2.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			if got := metricValue(t, text, "intellogd_wal_replayed_records", "acme"); got != float64(cut2-cut1) {
				t.Fatalf("wal_replayed_records = %v, want the %d-record crash window", got, cut2-cut1)
			}
			if _, err := c2.Replay(corpus.Records[cut2:], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
				t.Fatalf("second-life replay: %v", err)
			}
			if _, err := c2.Flush(); err != nil {
				t.Fatal(err)
			}
			rep, err := c2.Report()
			if err != nil {
				t.Fatal(err)
			}
			combined := detect.Report{Sessions: rep.Sessions}
			for _, a := range preKill {
				combined.Anomalies = append(combined.Anomalies, a.Anomaly)
			}
			combined.Anomalies = append(combined.Anomalies, rep.Anomalies...)
			got, err := conformance.Canonicalize(&combined)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("WAL kill/restart report diverges from the never-crashed server\nclean:\n%s\ncrashed:\n%s", want, got)
			}
		})
	}
}

// postNDJSON posts raw NDJSON lines to /v1/ingest and decodes the
// response at any status.
func postNDJSON(t *testing.T, base, tenant, body string) (int, server.IngestResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest?tenant="+tenant, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.IngestResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestIngestDeadLetterAndRequeue pins the batch-poisoning fix end to
// end: a batch carrying malformed records is accepted (202), its valid
// records are delivered, and the bad ones land in the DLQ with
// per-record reasons, listable and (once fixed) requeueable — here they
// stay broken, so requeue reports them failed and leaves them queued.
func TestIngestDeadLetterAndRequeue(t *testing.T) {
	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", logging.Spark)
	srv, hs := bootServer(t, server.Config{
		ModelDir: modelDir, StateDir: stateDir, DefaultFramework: logging.Spark,
	})
	defer srv.Close()
	c := &server.Client{Base: hs.URL, Tenant: "acme"}

	body := strings.Join([]string{
		`{"message":"task 1 ok","sessionId":"app-1"}`,
		`{"message":"task 2 ok","sessionId":"app-1"}`,
		`{"message":"truncated json","sessionId":`, // invalid JSON → DLQ
		`{"sessionId":"app-2"}`,                    // no message → DLQ
	}, "\n")
	code, res := postNDJSON(t, hs.URL, "acme", body)
	if code != http.StatusAccepted {
		t.Fatalf("status %d, want 202: one bad record must not fail its batch", code)
	}
	if res.Accepted != 2 || res.DeadLettered != 2 {
		t.Fatalf("response %+v, want accepted 2, deadLettered 2", res)
	}

	dlq, err := c.DLQ(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dlq.Depth != 2 || len(dlq.Entries) != 2 {
		t.Fatalf("DLQ depth %d with %d entries, want 2", dlq.Depth, len(dlq.Entries))
	}
	if !strings.Contains(dlq.Entries[0].Reason, "invalid JSON") {
		t.Fatalf("first entry reason %q, want an invalid-JSON reason", dlq.Entries[0].Reason)
	}
	if !strings.Contains(dlq.Entries[1].Reason, "no message") {
		t.Fatalf("second entry reason %q, want a no-message reason", dlq.Entries[1].Reason)
	}
	if dlq.Entries[0].Line != `{"message":"truncated json","sessionId":` {
		t.Fatalf("DLQ did not store the verbatim wire line: %q", dlq.Entries[0].Line)
	}

	// The records are still broken, so requeue must fail them — and keep
	// them retrievable rather than silently dropping.
	rq, err := c.DLQRequeue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Requeued != 0 || rq.Failed != 2 || rq.Depth != 2 {
		t.Fatalf("requeue of still-broken entries = %+v, want 0 requeued, 2 failed, depth 2", rq)
	}

	// The valid records were really delivered.
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Fatalf("sessions = %d, want the 1 session the valid records formed", rep.Sessions)
	}
}

// TestOversizedRecordDeadLettersNotBatch pins the record-cap semantics:
// a single record past MaxRecordBytes inside an otherwise valid batch is
// dead-lettered with its reason while its neighbors deliver (202, never
// 413) — and after a restart with a raised cap, requeueing it yields a
// detection report byte-identical to a server that ingested everything
// in one clean life. The whole-body cap still 413s.
func TestOversizedRecordDeadLettersNotBatch(t *testing.T) {
	recs := make([]logging.Record, 6)
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i] = logging.Record{
			Time:      base.Add(time.Duration(i) * time.Second),
			Level:     logging.Info,
			Message:   fmt.Sprintf("Registering block manager 10.0.0.%d", i),
			Framework: logging.Spark,
			SessionID: "app-small",
		}
	}
	big := logging.Record{
		Time:      base.Add(10 * time.Second),
		Level:     logging.Info,
		Message:   "huge payload " + strings.Repeat("x", 600),
		Framework: logging.Spark,
		SessionID: "app-big",
	}

	// Reference: a clean server with the default (large) cap sees every
	// record, small ones first — the order the requeue run produces.
	refModels := t.TempDir()
	writeModel(t, refModels, "acme", logging.Spark)
	refSrv, refHS := bootServer(t, server.Config{ModelDir: refModels, DefaultFramework: logging.Spark})
	defer refSrv.Close()
	refC := &server.Client{Base: refHS.URL, Tenant: "acme"}
	if _, err := refC.IngestRecords(append(append([]logging.Record(nil), recs...), big)); err != nil {
		t.Fatal(err)
	}
	if _, err := refC.Flush(); err != nil {
		t.Fatal(err)
	}
	refRep, err := refC.Report()
	if err != nil {
		t.Fatal(err)
	}
	want, err := conformance.Canonicalize(&refRep)
	if err != nil {
		t.Fatal(err)
	}

	// Life 1: a tight record cap dead-letters the big record only.
	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", logging.Spark)
	cfg := server.Config{
		ModelDir: modelDir, StateDir: stateDir,
		DefaultFramework: logging.Spark, MaxRecordBytes: 256,
	}
	srv1, hs1 := bootServer(t, cfg)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	res, err := c1.IngestRecords(append(append([]logging.Record(nil), recs...), big))
	if err != nil {
		t.Fatalf("batch with one oversized record must be 202, got %v", err)
	}
	if res.Accepted != len(recs) || res.DeadLettered != 1 {
		t.Fatalf("response %+v, want %d accepted, 1 dead-lettered", res, len(recs))
	}
	dlq, err := c1.DLQ(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dlq.Depth != 1 || !strings.Contains(dlq.Entries[0].Reason, "record cap") {
		t.Fatalf("DLQ = %+v, want the oversized record with a record-cap reason", dlq)
	}
	// No checkpoint: the acked records and the dead letter survive the
	// kill purely through the WAL and the DLQ segments.
	hs1.Close()
	srv1.Kill()

	// Life 2: the cap is raised; the dead letter requeues cleanly and the
	// stream converges with the clean run.
	cfg.MaxRecordBytes = 0 // default 1 MiB
	srv2, hs2 := bootServer(t, cfg)
	defer srv2.Close()
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	rq, err := c2.DLQRequeue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Requeued != 1 || rq.Failed != 0 || rq.Depth != 0 {
		t.Fatalf("requeue under the raised cap = %+v, want 1 requeued, depth 0", rq)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	got, err := conformance.Canonicalize(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("requeued stream diverges from clean ingest\nclean:\n%s\nrequeued:\n%s", want, got)
	}

	// The whole-body budget keeps its non-retryable 413.
	tinySrv, tinyHS := bootServer(t, server.Config{
		ModelDir: refModels, DefaultFramework: logging.Spark, MaxBodyBytes: 128,
	})
	defer tinySrv.Close()
	code, _ := postNDJSON(t, tinyHS.URL, "acme",
		`{"message":"`+strings.Repeat("y", 400)+`","sessionId":"s"}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("body past MaxBodyBytes answered %d, want 413", code)
	}
}
