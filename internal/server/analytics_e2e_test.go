package server_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"intellog/internal/conformance"
	"intellog/internal/server"
)

// TestServeAnalyticsEndpoints exercises the analytics surface end to
// end: ingest a faulted corpus over HTTP, then read clusters (with
// cursor pagination), per-anomaly explanations, rollups, and the new
// /metrics gauges.
func TestServeAnalyticsEndpoints(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()

	modelDir := t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	srv, hs := bootServer(t, server.Config{ModelDir: modelDir, DefaultFramework: spec.Framework})
	defer srv.Close()

	c := &server.Client{Base: hs.URL, Tenant: "acme"}
	if _, err := c.Replay(corpus.Records, server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	full, err := c.Clusters(0, 0)
	if err != nil {
		t.Fatalf("clusters: %v", err)
	}
	if len(full.Clusters) == 0 || full.Observed == 0 {
		t.Fatalf("faulted corpus produced no clusters: %+v", full)
	}
	explained := 0
	for _, cl := range full.Clusters {
		if cl.Count == 0 || cl.Label == "" {
			t.Fatalf("malformed cluster %+v", cl)
		}
		if cl.Explanation != nil {
			explained++
			if cl.Explanation.RootCause == "" || len(cl.Explanation.Path) == 0 {
				t.Fatalf("cluster %d explanation lacks a root-cause path: %+v", cl.ID, cl.Explanation)
			}
		}
	}
	if explained == 0 {
		t.Fatal("no cluster carries a root-cause explanation")
	}

	// Page through at limit 1: the walk must reassemble the full list.
	var walked []uint64
	var since uint64
	for {
		page, err := c.Clusters(since, 1)
		if err != nil {
			t.Fatalf("clusters page: %v", err)
		}
		if len(page.Clusters) == 0 {
			break
		}
		walked = append(walked, page.Clusters[0].ID)
		if page.Next == since {
			break
		}
		since = page.Next
	}
	if len(walked) != len(full.Clusters) {
		t.Fatalf("pagination walk found %d clusters, full listing has %d", len(walked), len(full.Clusters))
	}
	for i, id := range walked {
		if id != full.Clusters[i].ID {
			t.Fatalf("pagination walk diverges at %d: %d != %d", i, id, full.Clusters[i].ID)
		}
	}

	rollups, err := c.Rollups(0, 0)
	if err != nil {
		t.Fatalf("rollups: %v", err)
	}
	if len(rollups.Buckets) == 0 {
		t.Fatal("no rollup buckets for a corpus with anomalies")
	}
	if rollups.Window != "1m0s" || rollups.Budget != 10 {
		t.Fatalf("rollup defaults = window %s budget %g, want 1m0s / 10", rollups.Window, rollups.Budget)
	}
	var counted uint64
	for _, b := range rollups.Buckets {
		counted += b.Total
	}
	if counted != full.Observed {
		t.Fatalf("rollup buckets count %d anomalies, engine observed %d", counted, full.Observed)
	}

	// Explain a retained grouped anomaly; a seq past the log is a 404.
	page, err := c.Anomalies(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Anomalies) == 0 {
		t.Fatal("no anomalies retained")
	}
	var seq uint64
	var found bool
	for _, a := range page.Anomalies {
		if a.Anomaly.Group != "" {
			seq, found = a.Seq, true
			break
		}
	}
	if !found {
		t.Fatal("no grouped anomaly to explain")
	}
	expl, err := c.Explain(seq)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if expl.Seq != seq || expl.ClusterID == 0 || expl.ClusterLabel == "" {
		t.Fatalf("explain(%d) lacks cluster identity: %+v", seq, expl)
	}
	if expl.Explanation == nil || expl.Explanation.RootCause == "" || len(expl.Explanation.Path) == 0 {
		t.Fatalf("explain(%d) lacks a root-cause path: %+v", seq, expl.Explanation)
	}
	if _, err := c.Explain(page.Next + 100000); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("explain of unretained seq = %v, want a 404", err)
	}

	// The analytics gauges surface on /metrics.
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"intellogd_analytics_anomalies_observed_total",
		"intellogd_analytics_clusters",
		"intellogd_analytics_localizations_total",
		"intellogd_analytics_alerts_firing",
		"intellogd_anomaly_log_trimmed_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}

// TestServeAnalyticsKillRestartIdentity is the analytics crash drill:
// clusters, explanations and rollups served after a checkpoint, kill
// and restore must be byte-identical to a server that lived through the
// whole stream in one life — the engine's state is a pure function of
// the anomaly multiset, and the checkpoint carries it exactly.
func TestServeAnalyticsKillRestartIdentity(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()

	fetch := func(c *server.Client) (clusters, rollups []byte) {
		t.Helper()
		cl, err := c.Clusters(0, 0)
		if err != nil {
			t.Fatalf("clusters: %v", err)
		}
		ro, err := c.Rollups(0, 0)
		if err != nil {
			t.Fatalf("rollups: %v", err)
		}
		cb, err := json.MarshalIndent(cl, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := json.MarshalIndent(ro, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return cb, rb
	}

	// Reference: one life, whole stream.
	refModels := t.TempDir()
	writeModel(t, refModels, "acme", spec.Framework)
	refSrv, refHS := bootServer(t, server.Config{ModelDir: refModels, DefaultFramework: spec.Framework})
	defer refSrv.Close()
	refC := &server.Client{Base: refHS.URL, Tenant: "acme"}
	if _, err := refC.Replay(corpus.Records, server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	if _, err := refC.Flush(); err != nil {
		t.Fatal(err)
	}
	wantClusters, wantRollups := fetch(refC)

	// Crash drill: half the stream, checkpoint, kill, restore, rest.
	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	cfg := server.Config{ModelDir: modelDir, StateDir: stateDir, DefaultFramework: spec.Framework}
	cut := len(corpus.Records) / 2

	srv1, hs1 := bootServer(t, cfg)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	if _, err := c1.Replay(corpus.Records[:cut], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("first-life replay: %v", err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	hs1.Close()
	srv1.Kill()

	srv2, hs2 := bootServer(t, cfg)
	defer srv2.Close()
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	if _, err := c2.Replay(corpus.Records[cut:], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("second-life replay: %v", err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotClusters, gotRollups := fetch(c2)

	if !bytes.Equal(gotClusters, wantClusters) {
		t.Errorf("kill/restart clusters diverge from single-life server\nwant:\n%s\ngot:\n%s", wantClusters, gotClusters)
	}
	if !bytes.Equal(gotRollups, wantRollups) {
		t.Errorf("kill/restart rollups diverge from single-life server\nwant:\n%s\ngot:\n%s", wantRollups, gotRollups)
	}
}
