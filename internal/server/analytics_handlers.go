package server

import (
	"net/http"
	"strconv"

	"intellog/internal/analytics"
	"intellog/internal/detect"
)

// ClustersResponse is one /v1/anomalies/clusters page: near-duplicate
// anomaly clusters ordered by ID, each carrying its root-cause
// explanation. Next is the cursor to pass as ?since= for the following
// page (clusters with ID > since).
type ClustersResponse struct {
	Clusters []analytics.Cluster `json:"clusters"`
	Next     uint64              `json:"next"`
	// Observed and Shapes summarize the whole engine, not just the page.
	Observed uint64 `json:"observed"`
	Shapes   int    `json:"shapes"`
}

// RollupsResponse is one /v1/rollups page: time-bucketed anomaly counts
// ordered by window start, plus the SLO burn-rate alerts evaluated at
// the newest observed event time. Next is the newest returned window's
// start (unix seconds), for ?since= cursoring.
type RollupsResponse struct {
	Window  string             `json:"window"`
	Budget  float64            `json:"budget"`
	Buckets []analytics.Bucket `json:"buckets"`
	Alerts  []analytics.Alert  `json:"alerts"`
	Next    int64              `json:"next"`
}

// ExplainResponse answers /v1/anomalies/{seq}/explain: the retained
// anomaly, its cluster identity, and the HW-graph walk from the
// earliest deviating group in its session to the erroneous one.
type ExplainResponse struct {
	Seq          uint64                 `json:"seq"`
	Anomaly      detect.Anomaly         `json:"anomaly"`
	ClusterID    uint64                 `json:"clusterId,omitempty"`
	ClusterLabel string                 `json:"clusterLabel,omitempty"`
	Explanation  *analytics.Explanation `json:"explanation,omitempty"`
}

// cursorParams parses the shared ?since= / ?limit= pagination idiom.
// Reports false after answering 400.
func cursorParams(w http.ResponseWriter, r *http.Request) (since uint64, limit int, ok bool) {
	q := r.URL.Query()
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "since: %v", err)
			return 0, 0, false
		}
		since = n
	}
	limit = 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return 0, 0, false
		}
		limit = n
	}
	return since, limit, true
}

// handleClusters serves the cluster inventory, cursor-paginated by
// cluster ID (content-stable, so a cursor survives restarts and is
// identical across the batch/stream/resume paths).
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	since, limit, ok := cursorParams(w, r)
	if !ok {
		return
	}
	snap := t.engine.Snapshot()
	resp := ClustersResponse{
		Clusters: []analytics.Cluster{},
		Next:     since,
		Observed: snap.Observed,
		Shapes:   snap.Shapes,
	}
	for _, c := range snap.Clusters {
		if c.ID <= since {
			continue
		}
		if len(resp.Clusters) >= limit {
			break
		}
		resp.Clusters = append(resp.Clusters, c)
		resp.Next = c.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRollups serves the time-bucketed rollups, cursor-paginated by
// window start.
func (s *Server) handleRollups(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	since, limit, ok := cursorParams(w, r)
	if !ok {
		return
	}
	snap := t.engine.Snapshot()
	resp := RollupsResponse{
		Window:  snap.Rollup.Window,
		Budget:  snap.Rollup.Budget,
		Buckets: []analytics.Bucket{},
		Alerts:  snap.Rollup.Alerts,
		Next:    int64(since),
	}
	for _, b := range snap.Rollup.Buckets {
		start := b.Start.Unix()
		if since != 0 && start <= int64(since) {
			continue
		}
		if len(resp.Buckets) >= limit {
			break
		}
		resp.Buckets = append(resp.Buckets, b)
		resp.Next = start
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExplain localizes one retained anomaly by seq.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "seq: %v", err)
		return
	}
	a, ok := t.sink.get(seq)
	if !ok {
		httpError(w, http.StatusNotFound,
			"anomaly %d is not in tenant %s's retained window", seq, t.name)
		return
	}
	ae := t.engine.Explain(&a)
	writeJSON(w, http.StatusOK, ExplainResponse{
		Seq:          seq,
		Anomaly:      a,
		ClusterID:    ae.ClusterID,
		ClusterLabel: ae.ClusterLabel,
		Explanation:  ae.Explanation,
	})
}
