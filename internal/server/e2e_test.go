package server_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"intellog/internal/conformance"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/server"
)

// writeModel trains (via the shared conformance cache) and saves the
// framework's reference model under dir as tenant `name`.
func writeModel(t *testing.T, dir, name string, fw logging.Framework) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.ModelFor(fw).Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// bootServer builds a Server over the dirs and exposes it via httptest.
func bootServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// TestServeConformance is the end-to-end differential check: a corpus
// ingested through the full HTTP path (NDJSON encode → wire → decode →
// queue → worker → streaming detector) must canonicalize byte-identical
// to plain batch detection over the same records. Runs a clean and a
// faulted corpus.
func TestServeConformance(t *testing.T) {
	matrix := conformance.DefaultMatrix()
	for _, spec := range []conformance.Spec{matrix[0], matrix[1]} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			corpus := spec.Generate()
			m := conformance.ModelFor(spec.Framework)

			wantRep := conformance.BatchPath(m.Detector(), corpus.Records)
			want, err := conformance.Canonicalize(wantRep)
			if err != nil {
				t.Fatal(err)
			}

			modelDir := t.TempDir()
			writeModel(t, modelDir, "acme", spec.Framework)
			srv, hs := bootServer(t, server.Config{
				ModelDir:         modelDir,
				DefaultFramework: spec.Framework,
			})
			defer srv.Close()

			c := &server.Client{Base: hs.URL, Tenant: "acme"}
			res, err := c.Replay(corpus.Records, server.ReplayOptions{Batch: 64, Concurrency: 1})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Records != len(corpus.Records) {
				t.Fatalf("replay accepted %d records, corpus has %d", res.Records, len(corpus.Records))
			}
			if _, err := c.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			rep, err := c.Report()
			if err != nil {
				t.Fatalf("report: %v", err)
			}
			got, err := conformance.Canonicalize(&rep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("served report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
			}
		})
	}
}

// TestServeConcurrentIngestConformance proves per-session ordering (and
// therefore the conformance guarantee) survives concurrent senders: the
// replay client shards by session, so C=4 must still match batch.
func TestServeConcurrentIngestConformance(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()
	m := conformance.ModelFor(spec.Framework)
	want, err := conformance.Canonicalize(conformance.BatchPath(m.Detector(), corpus.Records))
	if err != nil {
		t.Fatal(err)
	}

	modelDir := t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	srv, hs := bootServer(t, server.Config{ModelDir: modelDir, DefaultFramework: spec.Framework})
	defer srv.Close()

	c := &server.Client{Base: hs.URL, Tenant: "acme"}
	if _, err := c.Replay(corpus.Records, server.ReplayOptions{Batch: 32, Concurrency: 4}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	got, err := conformance.Canonicalize(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("concurrent-ingest report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
	}
}

// serveCorpus replays a corpus through a fresh server at the given
// worker-pool size, flushes, and returns the canonicalized report.
func serveCorpus(t *testing.T, spec conformance.Spec, corpus *conformance.Corpus, workers int) []byte {
	t.Helper()
	modelDir := t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	srv, hs := bootServer(t, server.Config{
		ModelDir:         modelDir,
		DefaultFramework: spec.Framework,
		IngestWorkers:    workers,
	})
	defer srv.Close()

	c := &server.Client{Base: hs.URL, Tenant: "acme"}
	res, err := c.Replay(corpus.Records, server.ReplayOptions{Batch: 48, Concurrency: 3})
	if err != nil {
		t.Fatalf("replay (workers=%d): %v", workers, err)
	}
	if res.Records != len(corpus.Records) {
		t.Fatalf("replay accepted %d records, corpus has %d", res.Records, len(corpus.Records))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatalf("flush (workers=%d): %v", workers, err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatalf("report (workers=%d): %v", workers, err)
	}
	canon, err := conformance.Canonicalize(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// TestServeShardedIngestConformance proves the session-sharded worker
// pool preserves detection semantics end to end: every corpus of the
// matrix, ingested with IngestWorkers=4 and concurrent senders, must
// canonicalize byte-identical to the serial single-worker server over
// the same wire path. (The reference is the serial *server*, not local
// batch detection: the line-fault corpora carry invalid UTF-8 that JSON
// transport legitimately rewrites on both sides alike.) Per-session
// ordering holds because a session always routes to the same worker;
// cross-session interleaving is erased by canonicalization.
func TestServeShardedIngestConformance(t *testing.T) {
	for _, spec := range conformance.DefaultMatrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			corpus := spec.Generate()
			want := serveCorpus(t, spec, corpus, 1)
			got := serveCorpus(t, spec, corpus, 4)
			if !bytes.Equal(got, want) {
				t.Fatalf("sharded-ingest report diverges from serial server\nserial:\n%s\nsharded:\n%s", want, got)
			}
		})
	}
}

// TestServeShardedKillRestartConformance reruns the crash drill with the
// worker pool engaged on both lives: the checkpoint barrier must cut the
// accepted stream exactly even with four workers in flight, and the
// combined two-life findings must still match batch detection.
func TestServeShardedKillRestartConformance(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()
	m := conformance.ModelFor(spec.Framework)
	want, err := conformance.Canonicalize(conformance.BatchPath(m.Detector(), corpus.Records))
	if err != nil {
		t.Fatal(err)
	}

	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	cfg := server.Config{
		ModelDir: modelDir, StateDir: stateDir,
		DefaultFramework: spec.Framework,
		IngestWorkers:    4,
	}
	cut := len(corpus.Records) / 2

	srv1, hs1 := bootServer(t, cfg)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	if _, err := c1.Replay(corpus.Records[:cut], server.ReplayOptions{Batch: 48, Concurrency: 3}); err != nil {
		t.Fatalf("first-life replay: %v", err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	preKill, err := c1.AllAnomalies()
	if err != nil {
		t.Fatalf("pre-kill anomalies: %v", err)
	}
	var maxSeq uint64
	for _, a := range preKill {
		if a.Seq <= maxSeq && maxSeq != 0 {
			t.Fatalf("pre-kill anomaly seqs not increasing: %d after %d", a.Seq, maxSeq)
		}
		maxSeq = a.Seq
	}
	hs1.Close()
	srv1.Kill()

	srv2, hs2 := bootServer(t, cfg)
	defer srv2.Close()
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	if _, err := c2.Replay(corpus.Records[cut:], server.ReplayOptions{Batch: 48, Concurrency: 3}); err != nil {
		t.Fatalf("second-life replay: %v", err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	combined := detect.Report{Sessions: rep.Sessions}
	for _, a := range preKill {
		combined.Anomalies = append(combined.Anomalies, a.Anomaly)
	}
	combined.Anomalies = append(combined.Anomalies, rep.Anomalies...)
	got, err := conformance.Canonicalize(&combined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded kill/restart report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
	}
}

// TestServeKillRestartConformance is the crash drill over HTTP: ingest
// half the corpus, checkpoint, kill the server without a graceful drain,
// boot a successor over the same state dir, ingest the rest, and require
// the combined pre-kill + post-restart findings to canonicalize
// byte-identical to batch detection. The anomaly cursor must also carry
// across the restart (persisted AnomalySeq), so pre- and post-kill pages
// never overlap.
func TestServeKillRestartConformance(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()
	m := conformance.ModelFor(spec.Framework)
	want, err := conformance.Canonicalize(conformance.BatchPath(m.Detector(), corpus.Records))
	if err != nil {
		t.Fatal(err)
	}

	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	cfg := server.Config{ModelDir: modelDir, StateDir: stateDir, DefaultFramework: spec.Framework}

	cut := len(corpus.Records) / 2

	// First life: half the stream, explicit checkpoint, then a crash.
	srv1, hs1 := bootServer(t, cfg)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	if _, err := c1.Replay(corpus.Records[:cut], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("first-life replay: %v", err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	preKill, err := c1.AllAnomalies()
	if err != nil {
		t.Fatalf("pre-kill anomalies: %v", err)
	}
	var maxSeq uint64
	for _, a := range preKill {
		if a.Seq <= maxSeq && maxSeq != 0 {
			t.Fatalf("pre-kill anomaly seqs not increasing: %d after %d", a.Seq, maxSeq)
		}
		maxSeq = a.Seq
	}
	hs1.Close()
	srv1.Kill() // no final checkpoint: the explicit one is all that survives

	// Second life: restore from the checkpoint, finish the stream.
	srv2, hs2 := bootServer(t, cfg)
	defer srv2.Close()
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	if _, err := c2.Replay(corpus.Records[cut:], server.ReplayOptions{Batch: 64, Concurrency: 1}); err != nil {
		t.Fatalf("second-life replay: %v", err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}

	// The restored detector must stamp past the persisted cursor.
	page, err := c2.Anomalies(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range page.Anomalies {
		if a.Seq <= maxSeq && maxSeq > 0 {
			t.Fatalf("post-restart seq %d does not advance past pre-kill max %d", a.Seq, maxSeq)
		}
	}

	rep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	// The successor's report covers post-restart emissions plus restored
	// in-flight sessions; pre-kill findings were already served from the
	// first life. Combine the two lives, as an operator's client would.
	combined := detect.Report{Sessions: rep.Sessions}
	for _, a := range preKill {
		combined.Anomalies = append(combined.Anomalies, a.Anomaly)
	}
	combined.Anomalies = append(combined.Anomalies, rep.Anomalies...)
	got, err := conformance.Canonicalize(&combined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("kill/restart report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
	}
}
