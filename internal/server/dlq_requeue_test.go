package server_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"intellog/internal/logging"
	"intellog/internal/server"
)

// TestDLQRequeueIdempotent pins requeue-twice semantics: once a seq
// range has been requeued (and tombstoned), replaying the same requeue
// request must be a no-op — no duplicate records reach the detector,
// and the tombstones survive a restart.
func TestDLQRequeueIdempotent(t *testing.T) {
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	big := func(i int) logging.Record {
		return logging.Record{
			Time:      base.Add(time.Duration(i) * time.Second),
			Level:     logging.Info,
			Message:   fmt.Sprintf("oversized payload %d ", i) + strings.Repeat("x", 600),
			Framework: logging.Spark,
			SessionID: "app-big",
		}
	}

	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", logging.Spark)
	cfg := server.Config{
		ModelDir: modelDir, StateDir: stateDir,
		DefaultFramework: logging.Spark, MaxRecordBytes: 256,
	}
	srv1, hs1 := bootServer(t, cfg)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	if _, err := c1.IngestRecords([]logging.Record{big(0), big(1)}); err != nil {
		t.Fatal(err)
	}
	dlq, err := c1.DLQ(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dlq.Depth != 2 {
		t.Fatalf("DLQ depth %d, want 2", dlq.Depth)
	}
	seqs := []uint64{dlq.Entries[0].Seq, dlq.Entries[1].Seq}
	hs1.Close()
	srv1.Kill()

	// Raise the cap: the dead letters become requeueable.
	cfg.MaxRecordBytes = 0
	srv2, hs2 := bootServer(t, cfg)
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	rq, err := c2.DLQRequeue(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Requeued != 2 || rq.Failed != 0 || rq.Depth != 0 {
		t.Fatalf("first requeue = %+v, want 2 requeued, depth 0", rq)
	}
	// Same cursor range again: the seqs are tombstoned, so nothing moves.
	for i := 0; i < 2; i++ {
		rq, err = c2.DLQRequeue(seqs)
		if err != nil {
			t.Fatal(err)
		}
		if rq.Requeued != 0 || rq.Failed != 0 || rq.Depth != 0 {
			t.Fatalf("repeat requeue %d = %+v, want a no-op", i, rq)
		}
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1: repeat requeues must not re-deliver records", rep.Sessions)
	}
	hs2.Close()
	srv2.Kill()

	// Tombstones persisted: a successor over the same state dir boots
	// with an empty queue, and requeue is still a no-op.
	srv3, hs3 := bootServer(t, cfg)
	defer srv3.Close()
	c3 := &server.Client{Base: hs3.URL, Tenant: "acme"}
	dlq, err = c3.DLQ(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dlq.Depth != 0 || len(dlq.Entries) != 0 {
		t.Fatalf("restarted DLQ = %+v, want empty: tombstones must survive the restart", dlq)
	}
	if rq, err = c3.DLQRequeue(seqs); err != nil || rq.Requeued != 0 || rq.Depth != 0 {
		t.Fatalf("post-restart requeue = %+v (%v), want a no-op", rq, err)
	}
}

// TestDLQPaginationPageBoundary pins the cursor behavior when a page
// ends exactly at the last live entry: the final full page returns the
// terminal cursor, and the page after it is empty with the cursor
// unmoved.
func TestDLQPaginationPageBoundary(t *testing.T) {
	modelDir := t.TempDir()
	writeModel(t, modelDir, "acme", logging.Spark)
	srv, hs := bootServer(t, server.Config{ModelDir: modelDir, DefaultFramework: logging.Spark})
	defer srv.Close()
	c := &server.Client{Base: hs.URL, Tenant: "acme"}

	// Six invalid lines → six dead letters.
	const n = 6
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf(`{"message":"bad %d","sessionId":`, i))
	}
	code, res := postNDJSON(t, hs.URL, "acme", strings.Join(lines, "\n"))
	if code != http.StatusAccepted || res.DeadLettered != n {
		t.Fatalf("status %d, dead-lettered %d, want 202 with %d", code, res.DeadLettered, n)
	}

	// One page of exactly n: the cursor lands on the last entry.
	page, err := c.DLQ(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != n || page.Depth != n {
		t.Fatalf("page = %d entries depth %d, want %d", len(page.Entries), page.Depth, n)
	}
	last := page.Entries[n-1].Seq
	if page.Next != last {
		t.Fatalf("full-page cursor = %d, want last seq %d", page.Next, last)
	}

	// The page after the boundary is empty and does not move the cursor.
	empty, err := c.DLQ(page.Next, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Entries) != 0 || empty.Next != page.Next {
		t.Fatalf("past-the-end page = %d entries next %d, want 0 entries, cursor %d",
			len(empty.Entries), empty.Next, page.Next)
	}

	// Walking at limit n-1 splits n entries into a full page and a
	// single-entry page whose cursor equals the boundary cursor.
	first, err := c.DLQ(0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Entries) != n-1 {
		t.Fatalf("first page = %d entries, want %d", len(first.Entries), n-1)
	}
	second, err := c.DLQ(first.Next, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Entries) != 1 || second.Next != last {
		t.Fatalf("second page = %d entries next %d, want 1 entry ending at %d",
			len(second.Entries), second.Next, last)
	}
}
