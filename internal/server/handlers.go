package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/wal"
)

// WireRecord is one NDJSON ingest line. Structured records embed the
// logging.Record fields directly (lossless, what the replay client
// sends); alternatively a raw "line" is parsed through the tenant's
// framework formatter and sessionizer, mirroring `intellog stream`.
type WireRecord struct {
	// Line, when non-empty, is a raw log line in the framework's on-disk
	// format; all other fields are ignored.
	Line string `json:"line,omitempty"`
	logging.Record
}

// IngestResponse reports what one /v1/ingest call did.
type IngestResponse struct {
	Accepted int `json:"accepted"`
	Skipped  int `json:"skipped,omitempty"`
	// DeadLettered counts records routed to the tenant's dead-letter
	// queue (malformed JSON, no message, oversized) instead of failing
	// the batch; list them on /v1/dlq.
	DeadLettered int `json:"deadLettered,omitempty"`
}

// DLQResponse is one /v1/dlq page.
type DLQResponse struct {
	Entries []wal.Entry `json:"entries"`
	// Next is the cursor to pass as since on the following call.
	Next uint64 `json:"next"`
	// Depth is the tenant's total live dead-letter count.
	Depth int `json:"depth"`
	// Dropped counts entries the retention bound has discarded.
	Dropped uint64 `json:"dropped,omitempty"`
}

// RequeueRequest selects dead letters for /v1/dlq/requeue; an empty or
// absent body requeues everything live.
type RequeueRequest struct {
	Seqs []uint64 `json:"seqs,omitempty"`
}

// RequeueResponse reports a /v1/dlq/requeue outcome. Requeued entries
// re-ran ingest validation, were admitted, and left the queue; Failed
// ones still fail validation (or carry no session) and stay put.
// Requeue is at-least-once: a crash between admission and the tombstone
// write can replay an entry on the next requeue.
type RequeueResponse struct {
	Requeued int `json:"requeued"`
	Failed   int `json:"failed,omitempty"`
	Depth    int `json:"depth"`
}

// AnomaliesResponse is one /v1/anomalies page.
type AnomaliesResponse struct {
	Anomalies []SeqAnomaly `json:"anomalies"`
	// Next is the cursor to pass as since on the following call.
	Next uint64 `json:"next"`
	// Dropped counts findings the bounded retention window has discarded
	// since startup; a cursor older than the window resumes at its start.
	Dropped uint64 `json:"dropped,omitempty"`
}

// FlushResponse reports an explicit end-of-stream flush.
type FlushResponse struct {
	Sessions int `json:"sessions"`
	Findings int `json:"findings"`
}

// TenantInfo is one row of /v1/tenants.
type TenantInfo struct {
	Name            string `json:"name"`
	PendingSessions int    `json:"pendingSessions"`
	SessionsSeen    int    `json:"sessionsSeen"`
	QueuedRecords   int64  `json:"queuedRecords"`
	IngestedRecords uint64 `json:"ingestedRecords"`
	RejectedBatches uint64 `json:"rejectedBatches"`
	Anomalies       int    `json:"anomalies"`
	Restored        bool   `json:"restored,omitempty"`
	DLQDepth        int    `json:"dlqDepth,omitempty"`
	WALReplayed     uint64 `json:"walReplayed,omitempty"`
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/anomalies", s.handleAnomalies)
	mux.HandleFunc("/v1/anomalies/clusters", s.handleClusters)
	mux.HandleFunc("/v1/anomalies/{seq}/explain", s.handleExplain)
	mux.HandleFunc("/v1/rollups", s.handleRollups)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/flush", s.handleFlush)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/hwgraph", s.handleHWGraph)
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/dlq", s.handleDLQ)
	mux.HandleFunc("/v1/dlq/requeue", s.handleDLQRequeue)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// tenantOf resolves the request's tenant, mapping load failures to HTTP
// codes. Returns nil after writing the error response.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.URL.Query().Get("tenant")
	t, err := s.Tenant(name)
	if err != nil {
		switch {
		case errors.Is(err, errBadTenant):
			httpError(w, http.StatusBadRequest, "missing or invalid tenant parameter")
		case errors.As(err, &errUnknownTenant{}):
			httpError(w, http.StatusNotFound, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "load tenant: %v", err)
		}
		return nil
	}
	return t
}

// scanBufs recycles the ingest scanner's line buffers — one 64KB
// allocation per POST otherwise, pure GC load under replay.
var scanBufs = sync.Pool{New: func() any { return make([]byte, 0, 64<<10) }}

// batchSizeHint estimates a record count from an ingest body size (the
// replay client's structured lines run ~150-200 bytes each; undershoot
// a little and let append take one growth step rather than several).
func batchSizeHint(contentLength int64) int {
	const approxLineBytes = 192
	n := contentLength / approxLineBytes
	switch {
	case n <= 0:
		return 64
	case n > 65536:
		return 65536
	default:
		return int(n)
	}
}

// handleIngest accepts an NDJSON batch of records and queues it for the
// tenant's worker. A full queue answers 429 with Retry-After — the
// bounded-buffering contract: the server never absorbs more than the
// configured budget per tenant.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	fw := s.cfg.DefaultFramework
	formatter := t.formatter
	if q := r.URL.Query().Get("framework"); q != "" {
		fw = logging.Framework(q)
		if !fw.Known() {
			httpError(w, http.StatusBadRequest, "unknown framework %q", q)
			return
		}
		// Raw lines parse through the requested framework's formatter,
		// not the tenant default — the parameter applies to both wire
		// forms or not at all.
		formatter = logging.FormatterFor(fw)
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	scanner := bufio.NewScanner(body)
	sb := scanBufs.Get().([]byte)
	defer scanBufs.Put(sb) //nolint:staticcheck // slice reuse, not a pointer
	// The scanner must be able to hold any line the body limit admits:
	// a line past MaxRecordBytes is read whole and dead-lettered as one
	// record, not turned into a scan error that fails its whole batch.
	scanner.Buffer(sb, s.scanLineLimit())
	// Decode into a rented batch, pre-sized from the request size (~wire
	// bytes per record) so append doesn't re-copy the record array. The
	// handler owns it until enqueueBatch accepts it; every refusal path
	// below must release it.
	b := s.batches.Get()
	b.Grow(batchSizeHint(r.ContentLength))
	resolver := &batchResolver{
		intern: &wireIntern{},
		msg: func(b []byte) string {
			if canon, _, _, ok := t.det.Cache.Peek(b); ok {
				return canon
			}
			return string(b)
		},
	}
	skipped := 0
	var dead []wal.DeadLetter
	for scanner.Scan() {
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		rec, verdict, reason := s.classifyLine(t, raw, fw, formatter, resolver)
		switch verdict {
		case lineRecord:
			b.Append(rec)
		case lineSkip:
			skipped++
		case lineDead:
			// One bad record must not poison its neighbors: quarantine it
			// with its reason and keep going. The entries are written only
			// after the batch is admitted — a refused batch gets retried
			// verbatim by the client and would duplicate them.
			dead = append(dead, wal.DeadLetter{Reason: reason, Line: string(raw)})
		}
	}
	if err := scanner.Err(); err != nil {
		b.Release()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes; split the batch", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	t.skipped.Add(uint64(skipped))

	// A batch larger than the whole queue budget can never be admitted;
	// a retryable 429 would send well-behaved clients (the replay client
	// included) into a futile retry loop, so refuse it outright.
	accepted := b.Len()
	if accepted > s.cfg.QueueRecords {
		b.Release()
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d records exceeds tenant %s's whole queue budget (%d) and can never be admitted; split the batch",
			accepted, t.name, s.cfg.QueueRecords)
		return
	}
	ok, err := t.enqueueBatch(b)
	if err != nil {
		b.Release()
		httpError(w, http.StatusInternalServerError,
			"tenant %s write-ahead log failed; batch not accepted: %v", t.name, err)
		return
	}
	if !ok {
		b.Release()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"tenant %s ingest queue full (%d records budget); retry later", t.name, s.cfg.QueueRecords)
		return
	}
	t.deadLetter(dead)
	writeJSON(w, http.StatusAccepted,
		IngestResponse{Accepted: accepted, Skipped: skipped, DeadLettered: len(dead)})
}

// scanLineLimit is the ingest scanner's maximum token size: every line
// the body cap admits must be scannable so oversized records can be
// dead-lettered individually.
func (s *Server) scanLineLimit() int {
	limit := int(s.cfg.MaxBodyBytes) + 1
	if limit < s.cfg.MaxRecordBytes+1 {
		limit = s.cfg.MaxRecordBytes + 1
	}
	return limit
}

// lineVerdict classifies one ingest line.
type lineVerdict int

const (
	lineRecord lineVerdict = iota // a valid record to enqueue
	lineSkip                      // silently dropped (unparsable raw line / no session)
	lineDead                      // dead-lettered with a per-record reason
)

// classifyLine runs per-record ingest validation on one NDJSON wire
// line — size cap, JSON shape, raw-line parse, message presence — and
// is shared by /v1/ingest and /v1/dlq/requeue, so a requeued entry
// faces exactly the rules live traffic does.
func (s *Server) classifyLine(t *tenant, raw []byte, fw logging.Framework,
	formatter logging.Formatter, resolver *batchResolver) (logging.Record, lineVerdict, string) {
	if len(raw) > s.cfg.MaxRecordBytes {
		return logging.Record{}, lineDead,
			fmt.Sprintf("record of %d bytes exceeds the %d-byte record cap", len(raw), s.cfg.MaxRecordBytes)
	}
	var wr WireRecord
	if !fastWireRecord(raw, &wr, resolver) {
		wr = WireRecord{}
		if err := json.Unmarshal(raw, &wr); err != nil {
			return logging.Record{}, lineDead, fmt.Sprintf("invalid JSON: %v", err)
		}
	}
	if wr.Line != "" {
		rec, ok := t.parseLine(formatter, wr.Line)
		if !ok {
			return logging.Record{}, lineSkip, ""
		}
		return rec, lineRecord, ""
	}
	rec := wr.Record
	if rec.Message == "" {
		return logging.Record{}, lineDead, "record has no message (and no raw line)"
	}
	if rec.SessionID == "" {
		return logging.Record{}, lineSkip, ""
	}
	if rec.Framework == "" {
		rec.Framework = fw
	}
	return rec, lineRecord, ""
}

// parseLine parses one raw log line through the given formatter and the
// tenant's sticky sessionizer.
func (t *tenant) parseLine(f logging.Formatter, line string) (logging.Record, bool) {
	rec, ok := f.Parse(line)
	if !ok {
		return logging.Record{}, false
	}
	t.assignMu.Lock()
	ok = t.assigner.Assign(&rec)
	t.assignMu.Unlock()
	return rec, ok
}

// handleAnomalies serves the cursor-paginated anomaly log.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "since: %v", err)
			return
		}
		since = n
	}
	limit := 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	anomalies, next, dropped := t.sink.after(since, limit)
	if anomalies == nil {
		anomalies = []SeqAnomaly{}
	}
	writeJSON(w, http.StatusOK, AnomaliesResponse{Anomalies: anomalies, Next: next, Dropped: dropped})
}

// handleReport serves the cumulative detection report: every retained
// finding plus the sessions-seen count, in detect.Report shape — after a
// flush it is exactly what a batch run over the same stream reports
// (proven byte-identical by the conformance e2e once canonicalized).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	rep := detect.Report{
		Sessions:  t.sd.SessionsSeen(),
		Anomalies: t.sink.all(),
	}
	if rep.Anomalies == nil {
		rep.Anomalies = []detect.Anomaly{}
	}
	writeJSON(w, http.StatusOK, &rep)
}

// handleFlush finalizes every in-flight session (explicit end of
// stream). The op rides the tenant queue, so it serializes behind all
// accepted ingest.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	var resp FlushResponse
	ok := t.control(func() {
		rep := t.sd.Flush()
		t.sink.append(rep.Anomalies)
		s.countAnomalies(t.name, rep.Anomalies)
		resp = FlushResponse{Sessions: rep.Sessions, Findings: len(rep.Anomalies)}
	}, true)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "tenant %s is shutting down", t.name)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint forces a checkpoint at the current exact ingest cut.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	if s.cfg.StateDir == "" {
		httpError(w, http.StatusConflict, "no state directory configured")
		return
	}
	var saveErr error
	ok := t.controlCut(func(cut uint64) { saveErr = t.saveCheckpoint(cut) }, true)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "tenant %s is shutting down", t.name)
		return
	}
	if saveErr != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", saveErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"checkpoint": t.checkpointPath()})
}

// handleHWGraph exports the tenant's trained HW-graph.
func (s *Server) handleHWGraph(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, t.model.Graph)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		fmt.Fprint(w, t.model.Graph.DOT())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, t.model.Graph.Render())
	default:
		httpError(w, http.StatusBadRequest, "format %q (want json, dot or text)", format)
	}
}

// handleTenants lists resident tenants, most recently used first.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	var out []TenantInfo
	for _, t := range s.resident() {
		out = append(out, TenantInfo{
			Name:            t.name,
			PendingSessions: t.sd.Pending(),
			SessionsSeen:    t.sd.SessionsSeen(),
			QueuedRecords:   t.pending.Load(),
			IngestedRecords: t.records.Load(),
			RejectedBatches: t.rejected.Load(),
			Anomalies:       t.sink.len(),
			Restored:        t.restored,
			DLQDepth:        t.dlq.Depth(),
			WALReplayed:     t.walReplayed.Load(),
		})
	}
	if out == nil {
		out = []TenantInfo{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDLQ serves the cursor-paginated dead-letter listing: every
// record per-record validation refused, with its reason and verbatim
// wire line, oldest first.
func (s *Server) handleDLQ(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "since: %v", err)
			return
		}
		since = n
	}
	limit := 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	entries, next, depth := t.dlq.List(since, limit)
	if entries == nil {
		entries = []wal.Entry{}
	}
	writeJSON(w, http.StatusOK, DLQResponse{
		Entries: entries,
		Next:    next,
		Depth:   depth,
		Dropped: t.dlq.Dropped(),
	})
}

// handleDLQRequeue re-runs dead-lettered records through ingest
// validation under the server's *current* configuration and enqueues
// the ones that now pass (the typical flow: records dead-lettered under
// a tight record cap are requeued after the cap is raised, or after a
// client bug producing bad JSON is fixed and the lines hand-edited).
// Entries that still fail stay in the queue untouched. A full ingest
// queue aborts with 429 before anything is removed, so no entry is ever
// lost to backpressure.
func (s *Server) handleDLQRequeue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	fw := s.cfg.DefaultFramework
	formatter := t.formatter
	if q := r.URL.Query().Get("framework"); q != "" {
		fw = logging.Framework(q)
		if !fw.Known() {
			httpError(w, http.StatusBadRequest, "unknown framework %q", q)
			return
		}
		formatter = logging.FormatterFor(fw)
	}
	var req RequeueRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			httpError(w, http.StatusBadRequest, "request body: %v", err)
			return
		}
	}
	var want map[uint64]bool
	if len(req.Seqs) > 0 {
		want = make(map[uint64]bool, len(req.Seqs))
		for _, seq := range req.Seqs {
			want[seq] = true
		}
	}
	entries, _, _ := t.dlq.List(0, 0)
	b := s.batches.Get()
	var okSeqs []uint64
	failed := 0
	for _, e := range entries {
		if want != nil && !want[e.Seq] {
			continue
		}
		rec, verdict, _ := s.classifyLine(t, []byte(e.Line), fw, formatter, nil)
		if verdict != lineRecord {
			failed++
			continue
		}
		b.Append(rec)
		okSeqs = append(okSeqs, e.Seq)
	}
	if b.Len() > s.cfg.QueueRecords {
		n := b.Len()
		b.Release()
		httpError(w, http.StatusRequestEntityTooLarge,
			"%d requeueable records exceed tenant %s's whole queue budget (%d); requeue a subset via seqs",
			n, t.name, s.cfg.QueueRecords)
		return
	}
	ok, err := t.enqueueBatch(b)
	if err != nil {
		b.Release()
		httpError(w, http.StatusInternalServerError,
			"tenant %s write-ahead log failed; nothing requeued: %v", t.name, err)
		return
	}
	if !ok {
		b.Release()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"tenant %s ingest queue full; nothing requeued, retry later", t.name)
		return
	}
	t.dlq.Remove(okSeqs)
	writeJSON(w, http.StatusOK, RequeueResponse{
		Requeued: len(okSeqs),
		Failed:   failed,
		Depth:    t.dlq.Depth(),
	})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": len(s.resident())})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
