package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

// WireRecord is one NDJSON ingest line. Structured records embed the
// logging.Record fields directly (lossless, what the replay client
// sends); alternatively a raw "line" is parsed through the tenant's
// framework formatter and sessionizer, mirroring `intellog stream`.
type WireRecord struct {
	// Line, when non-empty, is a raw log line in the framework's on-disk
	// format; all other fields are ignored.
	Line string `json:"line,omitempty"`
	logging.Record
}

// IngestResponse reports what one /v1/ingest call did.
type IngestResponse struct {
	Accepted int `json:"accepted"`
	Skipped  int `json:"skipped,omitempty"`
}

// AnomaliesResponse is one /v1/anomalies page.
type AnomaliesResponse struct {
	Anomalies []SeqAnomaly `json:"anomalies"`
	// Next is the cursor to pass as since on the following call.
	Next uint64 `json:"next"`
	// Dropped counts findings the bounded retention window has discarded
	// since startup; a cursor older than the window resumes at its start.
	Dropped uint64 `json:"dropped,omitempty"`
}

// FlushResponse reports an explicit end-of-stream flush.
type FlushResponse struct {
	Sessions int `json:"sessions"`
	Findings int `json:"findings"`
}

// TenantInfo is one row of /v1/tenants.
type TenantInfo struct {
	Name            string `json:"name"`
	PendingSessions int    `json:"pendingSessions"`
	SessionsSeen    int    `json:"sessionsSeen"`
	QueuedRecords   int64  `json:"queuedRecords"`
	IngestedRecords uint64 `json:"ingestedRecords"`
	RejectedBatches uint64 `json:"rejectedBatches"`
	Anomalies       int    `json:"anomalies"`
	Restored        bool   `json:"restored,omitempty"`
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/anomalies", s.handleAnomalies)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/flush", s.handleFlush)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/hwgraph", s.handleHWGraph)
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// tenantOf resolves the request's tenant, mapping load failures to HTTP
// codes. Returns nil after writing the error response.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.URL.Query().Get("tenant")
	t, err := s.Tenant(name)
	if err != nil {
		switch {
		case errors.Is(err, errBadTenant):
			httpError(w, http.StatusBadRequest, "missing or invalid tenant parameter")
		case errors.As(err, &errUnknownTenant{}):
			httpError(w, http.StatusNotFound, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "load tenant: %v", err)
		}
		return nil
	}
	return t
}

// scanBufs recycles the ingest scanner's line buffers — one 64KB
// allocation per POST otherwise, pure GC load under replay.
var scanBufs = sync.Pool{New: func() any { return make([]byte, 0, 64<<10) }}

// batchSizeHint estimates a record count from an ingest body size (the
// replay client's structured lines run ~150-200 bytes each; undershoot
// a little and let append take one growth step rather than several).
func batchSizeHint(contentLength int64) int {
	const approxLineBytes = 192
	n := contentLength / approxLineBytes
	switch {
	case n <= 0:
		return 64
	case n > 65536:
		return 65536
	default:
		return int(n)
	}
}

// handleIngest accepts an NDJSON batch of records and queues it for the
// tenant's worker. A full queue answers 429 with Retry-After — the
// bounded-buffering contract: the server never absorbs more than the
// configured budget per tenant.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	fw := s.cfg.DefaultFramework
	formatter := t.formatter
	if q := r.URL.Query().Get("framework"); q != "" {
		fw = logging.Framework(q)
		if !fw.Known() {
			httpError(w, http.StatusBadRequest, "unknown framework %q", q)
			return
		}
		// Raw lines parse through the requested framework's formatter,
		// not the tenant default — the parameter applies to both wire
		// forms or not at all.
		formatter = logging.FormatterFor(fw)
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	scanner := bufio.NewScanner(body)
	sb := scanBufs.Get().([]byte)
	defer scanBufs.Put(sb) //nolint:staticcheck // slice reuse, not a pointer
	scanner.Buffer(sb, 1<<20)
	// Pre-size the batch from the request size (~wire bytes per record)
	// so append doesn't re-copy the record array while decoding.
	recs := make([]logging.Record, 0, batchSizeHint(r.ContentLength))
	resolver := &batchResolver{
		intern: &wireIntern{},
		msg: func(b []byte) string {
			if canon, _, _, ok := t.det.Cache.Peek(b); ok {
				return canon
			}
			return string(b)
		},
	}
	skipped := 0
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var wr WireRecord
		if !fastWireRecord(raw, &wr, resolver) {
			wr = WireRecord{}
			if err := json.Unmarshal(raw, &wr); err != nil {
				httpError(w, http.StatusBadRequest, "line %d: %v", line, err)
				return
			}
		}
		if wr.Line != "" {
			rec, ok := t.parseLine(formatter, wr.Line)
			if !ok {
				skipped++
				continue
			}
			recs = append(recs, rec)
			continue
		}
		rec := wr.Record
		if rec.Message == "" {
			httpError(w, http.StatusBadRequest, "line %d: record has no message (and no raw line)", line)
			return
		}
		if rec.SessionID == "" {
			skipped++
			continue
		}
		if rec.Framework == "" {
			rec.Framework = fw
		}
		recs = append(recs, rec)
	}
	if err := scanner.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	t.skipped.Add(uint64(skipped))

	// A batch larger than the whole queue budget can never be admitted;
	// a retryable 429 would send well-behaved clients (the replay client
	// included) into a futile retry loop, so refuse it outright.
	if len(recs) > s.cfg.QueueRecords {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d records exceeds tenant %s's whole queue budget (%d) and can never be admitted; split the batch",
			len(recs), t.name, s.cfg.QueueRecords)
		return
	}
	if !t.enqueueBatch(recs) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"tenant %s ingest queue full (%d records budget); retry later", t.name, s.cfg.QueueRecords)
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: len(recs), Skipped: skipped})
}

// parseLine parses one raw log line through the given formatter and the
// tenant's sticky sessionizer.
func (t *tenant) parseLine(f logging.Formatter, line string) (logging.Record, bool) {
	rec, ok := f.Parse(line)
	if !ok {
		return logging.Record{}, false
	}
	t.assignMu.Lock()
	ok = t.assigner.Assign(&rec)
	t.assignMu.Unlock()
	return rec, ok
}

// handleAnomalies serves the cursor-paginated anomaly log.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "since: %v", err)
			return
		}
		since = n
	}
	limit := 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	anomalies, next, dropped := t.sink.after(since, limit)
	if anomalies == nil {
		anomalies = []SeqAnomaly{}
	}
	writeJSON(w, http.StatusOK, AnomaliesResponse{Anomalies: anomalies, Next: next, Dropped: dropped})
}

// handleReport serves the cumulative detection report: every retained
// finding plus the sessions-seen count, in detect.Report shape — after a
// flush it is exactly what a batch run over the same stream reports
// (proven byte-identical by the conformance e2e once canonicalized).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	rep := detect.Report{
		Sessions:  t.sd.SessionsSeen(),
		Anomalies: t.sink.all(),
	}
	if rep.Anomalies == nil {
		rep.Anomalies = []detect.Anomaly{}
	}
	writeJSON(w, http.StatusOK, &rep)
}

// handleFlush finalizes every in-flight session (explicit end of
// stream). The op rides the tenant queue, so it serializes behind all
// accepted ingest.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	var resp FlushResponse
	ok := t.control(func() {
		rep := t.sd.Flush()
		t.sink.append(rep.Anomalies)
		s.countAnomalies(t.name, rep.Anomalies)
		resp = FlushResponse{Sessions: rep.Sessions, Findings: len(rep.Anomalies)}
	}, true)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "tenant %s is shutting down", t.name)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint forces a checkpoint at the current exact ingest cut.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	if s.cfg.StateDir == "" {
		httpError(w, http.StatusConflict, "no state directory configured")
		return
	}
	var saveErr error
	ok := t.control(func() { saveErr = t.saveCheckpoint() }, true)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "tenant %s is shutting down", t.name)
		return
	}
	if saveErr != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", saveErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"checkpoint": t.checkpointPath()})
}

// handleHWGraph exports the tenant's trained HW-graph.
func (s *Server) handleHWGraph(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOf(w, r)
	if t == nil {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, t.model.Graph)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		fmt.Fprint(w, t.model.Graph.DOT())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, t.model.Graph.Render())
	default:
		httpError(w, http.StatusBadRequest, "format %q (want json, dot or text)", format)
	}
}

// handleTenants lists resident tenants, most recently used first.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	var out []TenantInfo
	for _, t := range s.resident() {
		out = append(out, TenantInfo{
			Name:            t.name,
			PendingSessions: t.sd.Pending(),
			SessionsSeen:    t.sd.SessionsSeen(),
			QueuedRecords:   t.pending.Load(),
			IngestedRecords: t.records.Load(),
			RejectedBatches: t.rejected.Load(),
			Anomalies:       t.sink.len(),
			Restored:        t.restored,
		})
	}
	if out == nil {
		out = []TenantInfo{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": len(s.resident())})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
