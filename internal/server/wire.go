package server

import (
	"encoding/binary"
	"strconv"
	"time"
	"unicode/utf8"

	"intellog/internal/logging"
)

// The NDJSON wire format is plain encoding/json over WireRecord, but
// the reflective codec dominates the serving CPU profile (checkValid +
// decodeState eat ~half the intellogd samples under replay, detection
// under a tenth). This file is the fast path both ends share: a
// hand-rolled decoder for the structured record shape the replay client
// emits, and a matching appender the client uses to build batches.
// Either side falls back to encoding/json the moment a line strays from
// the simple shape — an escape sequence, non-ASCII text, an unknown
// key — so wire semantics stay exactly encoding/json's; the fast path
// only ever accepts inputs on which the two agree.

// wireIntern dedups the small wire strings that repeat across the
// records of one ingest request — session IDs, sources, template IDs,
// framework names. One batch carries each session ID and source dozens
// of times; interning turns those into one allocation each, which
// matters because GC work is the second-largest band in the serving
// profile after the codec itself. Scoped to a single request or
// connection (one goroutine), so it needs no locking.
//
// The table is bounded: an HTTP-scoped interner dies with its request,
// but a binary-protocol connection lives for the whole replay, and an
// adversarial (or merely high-cardinality) stream of distinct session
// IDs would otherwise grow it without limit. At wireInternCap entries
// the table resets wholesale — dedup restarts warm within a batch,
// which is where virtually all the repetition lives, and the evicted
// strings stay reachable only from the records that used them.
type wireIntern struct {
	m map[string]string
}

// wireInternCap bounds one interner's table. Real streams carry a few
// hundred distinct small strings; the cap only exists to make the
// worst case a reset instead of a leak.
const wireInternCap = 4096

func (in *wireIntern) get(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // no-alloc lookup
		return s
	}
	s := string(b)
	if in.m == nil {
		in.m = make(map[string]string, 64)
	} else if len(in.m) >= wireInternCap {
		clear(in.m)
	}
	in.m[s] = s
	return s
}

// plainWireChar marks bytes that may appear verbatim inside a fast-path
// string literal: printable ASCII except the terminator '"' and the
// escape introducer '\'. One table load replaces the three compares the
// scan's inner loop used to make per byte.
var plainWireChar = func() (t [256]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		t[c] = true
	}
	t['"'] = false
	t['\\'] = false
	return
}()

const (
	swarOnes uint64 = 0x0101010101010101
	swarHigh uint64 = 0x8080808080808080
)

// hasSpecialWireByte reports whether any byte of the 8-byte word must
// end or fail the fast string scan: a control byte (< 0x20), '"', '\\',
// or non-ASCII (>= 0x80). Standard SWAR detectors (hasless/hasvalue),
// exact for these operands — but correctness only needs no false
// negatives, since the scalar loop after the chunked skip re-judges the
// flagged word byte by byte.
func hasSpecialWireByte(x uint64) bool {
	quote := x ^ (swarOnes * '"')
	slash := x ^ (swarOnes * '\\')
	mask := x & swarHigh                        // >= 0x80
	mask |= (x - swarOnes*0x20) & ^x & swarHigh // < 0x20
	mask |= (quote - swarOnes) & ^quote & swarHigh
	mask |= (slash - swarOnes) & ^slash & swarHigh
	return mask != 0
}

// scanWireString scans the string literal at raw[i] and returns its
// body (plain printable ASCII, so the bytes are the value), the index
// past the closing quote, and whether the literal fits the fast shape.
// The scan is a single pass with no re-slicing: an 8-byte SWAR skip
// over plain runs, then a table-driven byte loop for the remainder.
func scanWireString(raw []byte, i int) ([]byte, int, bool) {
	if i >= len(raw) || raw[i] != '"' {
		return nil, i, false
	}
	i++
	start := i
	for i+8 <= len(raw) && !hasSpecialWireByte(binary.LittleEndian.Uint64(raw[i:])) {
		i += 8
	}
	for i < len(raw) && plainWireChar[raw[i]] {
		i++
	}
	if i < len(raw) && raw[i] == '"' {
		return raw[start:i], i + 1, true
	}
	return nil, i, false
}

// fastWireRecord decodes one structured NDJSON line into wr. It handles
// a single flat object whose keys are exactly Record's fields (any
// order, any subset, plus "line"), with plain printable-ASCII string
// values and a bare-integer Level. br may be nil. Returns false — with
// wr possibly half-filled, the caller must re-decode from scratch — on
// anything else: escapes, non-ASCII, unknown keys, unexpected value
// shapes, malformed JSON.
func fastWireRecord(raw []byte, wr *WireRecord, br *batchResolver) bool {
	i := 0
	ws := func() {
		for i < len(raw) {
			switch raw[i] {
			case ' ', '\t', '\r', '\n':
				i++
			default:
				return
			}
		}
	}

	ws()
	if i >= len(raw) || raw[i] != '{' {
		return false
	}
	i++
	ws()
	if i < len(raw) && raw[i] == '}' {
		i++
		ws()
		return i == len(raw)
	}
	for {
		ws()
		key, ni, ok := scanWireString(raw, i)
		if !ok {
			return false
		}
		i = ni
		ws()
		if i >= len(raw) || raw[i] != ':' {
			return false
		}
		i++
		ws()
		if string(key) == "Level" {
			// Level rides the wire as a bare integer (logging.Level has no
			// custom marshaler). Anything else — fractions, exponents,
			// strings — falls back to encoding/json.
			neg := false
			if i < len(raw) && raw[i] == '-' {
				neg = true
				i++
			}
			start := i
			n := 0
			for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
				n = n*10 + int(raw[i]-'0')
				i++
			}
			if i == start || i-start > 9 {
				return false
			}
			if neg {
				n = -n
			}
			wr.Level = logging.Level(n)
		} else {
			quote := i
			val, ni, ok := scanWireString(raw, i)
			if !ok {
				return false
			}
			i = ni
			switch string(key) { // the conversion is elided in a switch
			case "Time":
				// Hand the still-quoted literal to time.Time's own parser,
				// so accepted formats match encoding/json exactly.
				if err := wr.Time.UnmarshalJSON(raw[quote:i]); err != nil {
					return false
				}
			case "Source":
				wr.Source = br.small(val)
			case "Message":
				// Resolve against the tenant's lookup cache when wired
				// (batchResolver.msg): the overwhelmingly common repeat
				// rendering lands on the model's interned string with no
				// allocation, and the detector's own cache probe then
				// hits that very string.
				wr.Message = br.message(val)
			case "Framework":
				wr.Framework = logging.Framework(br.small(val))
			case "SessionID":
				wr.SessionID = br.small(val)
			case "TemplateID":
				wr.TemplateID = br.small(val)
			case "line":
				wr.Line = string(val)
			default:
				return false
			}
		}
		ws()
		if i >= len(raw) {
			return false
		}
		switch raw[i] {
		case ',':
			i++
		case '}':
			i++
			ws()
			return i == len(raw)
		default:
			return false
		}
	}
}

// appendWireRecord appends rec's NDJSON line (newline included) when
// every field fits the fast shape; returns ok=false with buf untouched
// when the caller must fall back to encoding/json for this record.
func appendWireRecord(buf []byte, rec *logging.Record) ([]byte, bool) {
	if y := rec.Time.Year(); y < 0 || y > 9999 {
		// time.Time.MarshalJSON rejects these; AppendFormat would not.
		return buf, false
	}
	n := len(buf)
	buf = append(buf, `{"Time":"`...)
	buf = rec.Time.AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","Level":`...)
	buf = strconv.AppendInt(buf, int64(rec.Level), 10)
	var ok bool
	if buf, ok = appendField(buf, `,"Source":"`, rec.Source); !ok {
		return buf[:n], false
	}
	if buf, ok = appendField(buf, `","Message":"`, rec.Message); !ok {
		return buf[:n], false
	}
	if buf, ok = appendField(buf, `","Framework":"`, string(rec.Framework)); !ok {
		return buf[:n], false
	}
	if buf, ok = appendField(buf, `","SessionID":"`, rec.SessionID); !ok {
		return buf[:n], false
	}
	if buf, ok = appendField(buf, `","TemplateID":"`, rec.TemplateID); !ok {
		return buf[:n], false
	}
	return append(buf, `"}`+"\n"...), true
}

// appendField appends the field separator (closing the previous value
// and opening this string) plus val, when val needs no escaping.
func appendField(buf []byte, sep, val string) ([]byte, bool) {
	for i := 0; i < len(val); i++ {
		c := val[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			return buf, false
		}
	}
	buf = append(buf, sep...)
	return append(buf, val...), true
}
