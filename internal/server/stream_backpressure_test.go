package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"intellog/internal/conformance"
	"intellog/internal/logging"
)

// bootStreamServer builds a Server with the spark reference model for
// tenant "acme" and exposes its binary ingest listener.
func bootStreamServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.ModelDir == "" {
		cfg.ModelDir = t.TempDir()
		f, err := os.Create(filepath.Join(cfg.ModelDir, "acme.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := conformance.ModelFor(logging.Spark).Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.DefaultFramework == "" {
		cfg.DefaultFramework = logging.Spark
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.ServeStream(ln)
	return s, ln.Addr().String()
}

func sparkRecs(session string, n int) []logging.Record {
	recs := make([]logging.Record, n)
	for i := range recs {
		recs[i] = logging.Record{
			Time:      time.Date(2026, 3, 1, 12, 0, i, 0, time.UTC),
			Level:     logging.Info,
			Source:    "BlockManager",
			Message:   fmt.Sprintf("Registering block manager 10.0.0.%d", i),
			Framework: logging.Spark,
			SessionID: session,
		}
	}
	return recs
}

// TestStreamGoBackN drives the refusal protocol deterministically: park
// the tenant's worker pool at the control barrier so the queue cannot
// drain, fill the record budget, and verify the exact ack sequence the
// wire contract promises — 202 while the budget holds, 429 for the
// frame that busts it, 425 for anything pipelined behind the refusal,
// then 202s again once the refused frame is retransmitted in order.
func TestStreamGoBackN(t *testing.T) {
	s, addr := bootStreamServer(t, Config{QueueRecords: 100})
	c := &Client{Tenant: "acme"}
	sc, err := c.DialStream(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	tnt, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}

	// Park every ingest worker at the barrier; nothing drains until we
	// release them, so admission decisions depend only on what we sent.
	started, release := make(chan struct{}), make(chan struct{})
	go tnt.control(func() {
		close(started)
		<-release
	}, true)
	<-started

	// Seq 1: 60 records fit the 100-record budget.
	resp, err := sc.Send(sparkRecs("sess-a", 60))
	if err != nil {
		t.Fatalf("first batch refused: %v", err)
	}
	if resp.Accepted != 60 {
		t.Fatalf("first batch accepted %d records, want 60", resp.Accepted)
	}

	// Seq 2: 60 more would hold 120 — refused with the backoff hint.
	var qf ErrQueueFull
	if _, err := sc.Send(sparkRecs("sess-b", 60)); !errors.As(err, &qf) {
		t.Fatalf("over-budget batch: err = %v, want ErrQueueFull", err)
	}
	if qf.RetryAfter <= 0 {
		t.Fatalf("queue-full verdict carries no retry hint: %+v", qf)
	}

	// Seq 3 pipelined behind the refusal must bounce with 425 — the
	// server accepts nothing until seq 2 is retransmitted.
	if err := sc.sendBatchFrame(3, sparkRecs("sess-c", 10)); err != nil {
		t.Fatal(err)
	}
	if err := sc.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	ack, err := sc.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 3 || ack.Status != ackRetryEarly {
		t.Fatalf("pipelined frame ack = %+v, want seq 3 status %d", ack, ackRetryEarly)
	}

	// Release the workers and wait for the queue to drain.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for tnt.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %d records pending", tnt.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Retransmit seq 2 (Send reuses the refused seq), then seq 3 — both
	// admitted now, proving the resync window closed in order.
	if resp, err = sc.Send(sparkRecs("sess-b", 60)); err != nil || resp.Accepted != 60 {
		t.Fatalf("retransmitted batch: resp=%+v err=%v", resp, err)
	}
	if resp, err = sc.Send(sparkRecs("sess-c", 10)); err != nil || resp.Accepted != 10 {
		t.Fatalf("post-resync batch: resp=%+v err=%v", resp, err)
	}

	if got := tnt.records.Load(); got != 130 {
		t.Fatalf("tenant accepted %d records, want 130 (no loss, no duplication)", got)
	}
}

// TestStreamReplayBackpressureConformance proves detection semantics
// survive real backpressure: a replay into a queue one-third the
// in-flight window must hit 429s, retransmit go-back-N style, and still
// produce a report byte-identical to batch detection, with every record
// accepted exactly once.
func TestStreamReplayBackpressureConformance(t *testing.T) {
	old := retrySleep
	retrySleep = func(time.Duration) { time.Sleep(time.Millisecond) }
	defer func() { retrySleep = old }()

	spec := conformance.DefaultMatrix()[0] // spark-clean
	corpus := spec.Generate()
	m := conformance.ModelFor(spec.Framework)
	want, err := conformance.Canonicalize(conformance.BatchPath(m.Detector(), corpus.Records))
	if err != nil {
		t.Fatal(err)
	}

	s, addr := bootStreamServer(t, Config{QueueRecords: 96})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	tnt, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}

	// Park the workers while the first windows land so refusals are
	// guaranteed (48×4 in flight against a 96-record budget), then let
	// the replay grind through under live drain.
	started, release := make(chan struct{}), make(chan struct{})
	go tnt.control(func() {
		close(started)
		<-release
	}, true)
	<-started

	c := &Client{Base: hs.URL, Tenant: "acme"}
	type result struct {
		res ReplayResult
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := c.ReplayStream(addr, corpus.Records, StreamReplayOptions{
			Batch: 48, Concurrency: 1, Window: 4, MaxRetries: 100000,
		})
		done <- result{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	r := <-done
	if r.err != nil {
		t.Fatalf("replay under backpressure: %v", r.err)
	}
	if r.res.Rejected == 0 {
		t.Fatal("replay saw no 429s; the backpressure path was not exercised")
	}
	if r.res.Records != len(corpus.Records) {
		t.Fatalf("replay accepted %d records, corpus has %d", r.res.Records, len(corpus.Records))
	}

	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	got, err := conformance.Canonicalize(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("backpressured report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
	}
}
