package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
)

// task is one unit of work on a tenant's queue: either an ingest batch
// or a control operation (checkpoint, flush, test gates). Control ops
// ride the same queue as batches, so they serialize behind every record
// accepted before them — a checkpoint therefore captures an exact cut of
// the ingest stream without pausing the HTTP layer.
type task struct {
	recs []logging.Record
	ctl  func()
	done chan struct{} // closed once processed; nil for fire-and-forget
}

// tenant is one resident tenant: a trained model, its streaming
// detector, a bounded ingest queue drained by a single worker goroutine,
// and the anomaly log that backs the query endpoints.
type tenant struct {
	name string
	srv  *Server

	model *core.Model
	det   *detect.Detector
	sd    *detect.StreamDetector
	sink  *anomalyLog

	// queue is drained by run(). sendMu guards the close handshake:
	// senders hold it shared and check closed before sending; close
	// takes it exclusively, so no send can race the close.
	queue   chan task
	sendMu  sync.RWMutex
	closed  bool
	pending atomic.Int64 // records queued but not yet consumed
	worker  sync.WaitGroup

	// assignMu guards the raw-line sessionizer (handlers run
	// concurrently; stickiness state is shared).
	assignMu  sync.Mutex
	assigner  logging.SessionAssigner
	formatter logging.Formatter

	// ingest counters (mirrored into /metrics).
	records  atomic.Uint64 // accepted records
	batches  atomic.Uint64 // accepted batches
	rejected atomic.Uint64 // batches refused with 429
	skipped  atomic.Uint64 // lines dropped (unparsable / no session)

	restored bool // loaded from a checkpoint at startup
}

// newTenant assembles a tenant around a loaded model and optional
// checkpointed stream state.
func newTenant(srv *Server, name string, m *core.Model, st *detect.StreamState) (*tenant, error) {
	t := &tenant{
		name:      name,
		srv:       srv,
		model:     m,
		sink:      newAnomalyLog(srv.cfg.AnomalyLog),
		queue:     make(chan task, srv.cfg.queueBatches()),
		formatter: logging.FormatterFor(srv.cfg.DefaultFramework),
	}
	t.det = m.Detector()
	if st != nil {
		sd, err := detect.RestoreStreamDetector(t.det, srv.cfg.Stream, st)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: restore stream: %w", name, err)
		}
		t.sd = sd
		t.assigner.Resume(st.Sticky)
		t.restored = true
	} else {
		t.sd = detect.NewStream(t.det, srv.cfg.Stream)
	}
	t.worker.Add(1)
	go t.run()
	return t, nil
}

// run is the tenant worker: the single goroutine that feeds the
// streaming detector, so records of one tenant are consumed in ingest
// order and control ops see a quiesced detector.
func (t *tenant) run() {
	defer t.worker.Done()
	for tk := range t.queue {
		if tk.ctl != nil {
			tk.ctl()
		} else {
			for i := range tk.recs {
				anoms := t.sd.Consume(tk.recs[i])
				if len(anoms) > 0 {
					t.sink.append(anoms)
					t.srv.countAnomalies(t.name, anoms)
				}
			}
			t.pending.Add(int64(-len(tk.recs)))
		}
		if tk.done != nil {
			close(tk.done)
		}
	}
}

// enqueueBatch admits a record batch under the per-tenant budget.
// Admission is two-staged: reserve record budget, then a non-blocking
// channel send — if either fails the batch is refused (the caller
// answers 429) and nothing is buffered, so a saturated tenant holds at
// most QueueRecords records plus one in-flight batch, never an unbounded
// backlog.
func (t *tenant) enqueueBatch(recs []logging.Record) bool {
	if len(recs) == 0 {
		return true
	}
	n := int64(len(recs))
	max := int64(t.srv.cfg.QueueRecords)
	for {
		cur := t.pending.Load()
		if cur+n > max {
			t.rejected.Add(1)
			return false
		}
		if t.pending.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if !t.submit(task{recs: recs}, false) {
		t.pending.Add(-n)
		t.rejected.Add(1)
		return false
	}
	t.records.Add(uint64(len(recs)))
	t.batches.Add(1)
	return true
}

// submit places a task on the queue. block selects between a blocking
// send (control ops that must land) and try-send (ingest admission and
// the periodic checkpointer, which both prefer refusal over waiting).
// Returns false if the tenant is closed or the try-send found no room.
func (t *tenant) submit(tk task, block bool) bool {
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closed {
		return false
	}
	if block {
		t.queue <- tk
		return true
	}
	select {
	case t.queue <- tk:
		return true
	default:
		return false
	}
}

// control runs fn on the worker goroutine, after everything already
// queued, and waits for it to finish. Returns false if the tenant is
// closed.
func (t *tenant) control(fn func()) bool {
	done := make(chan struct{})
	if !t.submit(task{ctl: fn, done: done}, true) {
		return false
	}
	<-done
	return true
}

// checkpointPath is the tenant's checkpoint file.
func (t *tenant) checkpointPath() string {
	return filepath.Join(t.srv.cfg.StateDir, t.name+checkpointExt)
}

// saveCheckpoint persists the model plus current stream state
// atomically (write + rename). It must only run from the worker
// goroutine or after the worker has exited, so the snapshot pairs with
// an exact position in the accepted ingest stream.
func (t *tenant) saveCheckpoint() error {
	if t.srv.cfg.StateDir == "" {
		return nil
	}
	path := t.checkpointPath()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	st := t.sd.State()
	// Carry the raw-line sessionizer's stickiness so a restored tenant
	// keeps attributing ID-less lines instead of dropping them. The
	// assigner tracks the latest *accepted* line, which may run slightly
	// ahead of the worker's consumed cut — the right side to err on,
	// since queued-but-unconsumed records are lost on a crash anyway.
	t.assignMu.Lock()
	st.Sticky = t.assigner.Current()
	t.assignMu.Unlock()
	if err := core.SaveCheckpoint(f, t.model, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// close stops the tenant: no further sends are admitted, the queue is
// closed, and once the worker has drained everything already accepted,
// a final checkpoint is written (when checkpoint is true and a state
// dir is configured). Safe to call more than once.
func (t *tenant) close(checkpoint bool) error {
	t.sendMu.Lock()
	already := t.closed
	if !already {
		t.closed = true
		close(t.queue)
	}
	t.sendMu.Unlock()
	t.worker.Wait()
	if already || !checkpoint {
		return nil
	}
	return t.saveCheckpoint()
}
