package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
)

// task is one unit of work on a tenant worker's queue: either an ingest
// sub-batch or a control step (one leg of a pool-wide barrier). Control
// steps ride the same queues as batches, so they serialize behind every
// record accepted before them — a checkpoint therefore captures an exact
// cut of the ingest stream without pausing the HTTP layer.
type task struct {
	recs []logging.Record
	ctl  func()
}

// tenant is one resident tenant: a trained model, its streaming
// detector, a bounded session-sharded ingest queue pool, and the anomaly
// log that backs the query endpoints.
type tenant struct {
	name string
	srv  *Server

	model *core.Model
	det   *detect.Detector
	sd    *detect.StreamDetector
	sink  *anomalyLog

	// queues are drained by one worker goroutine each; a record routes to
	// queues[hash(sessionID) % len(queues)], so records of one session are
	// always consumed in ingest order by the same worker while sessions
	// spread across the pool. sendMu guards the close handshake: senders
	// hold it shared and check closed before sending; close takes it
	// exclusively, so no send can race the close. routeMu serializes the
	// enqueue side across queues: every multi-queue placement (a split
	// batch, a control barrier) happens atomically with respect to every
	// other, which keeps batch admission all-or-nothing and makes a
	// barrier a true cut — no batch lands partly before it on one queue
	// and partly after it on another. Workers only ever drain, so a
	// len < cap check under routeMu guarantees the following send cannot
	// block.
	queues  []chan task
	sendMu  sync.RWMutex
	routeMu sync.Mutex
	closed  bool
	pending atomic.Int64 // records queued but not yet consumed
	worker  sync.WaitGroup

	// assignMu guards the raw-line sessionizer (handlers run
	// concurrently; stickiness state is shared).
	assignMu  sync.Mutex
	assigner  logging.SessionAssigner
	formatter logging.Formatter

	// ingest counters (mirrored into /metrics).
	records  atomic.Uint64 // accepted records
	batches  atomic.Uint64 // accepted batches
	rejected atomic.Uint64 // batches refused with 429
	skipped  atomic.Uint64 // lines dropped (unparsable / no session)

	restored bool // loaded from a checkpoint at startup
}

// newTenant assembles a tenant around a loaded model and optional
// checkpointed stream state.
func newTenant(srv *Server, name string, m *core.Model, st *detect.StreamState) (*tenant, error) {
	t := &tenant{
		name:      name,
		srv:       srv,
		model:     m,
		sink:      newAnomalyLog(srv.cfg.AnomalyLog),
		queues:    make([]chan task, srv.cfg.ingestWorkers()),
		formatter: logging.FormatterFor(srv.cfg.DefaultFramework),
	}
	for i := range t.queues {
		t.queues[i] = make(chan task, srv.cfg.queueBatches())
	}
	t.det = m.Detector()
	if st != nil {
		sd, err := detect.RestoreStreamDetector(t.det, srv.cfg.Stream, st)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: restore stream: %w", name, err)
		}
		t.sd = sd
		t.assigner.Resume(st.Sticky)
		t.restored = true
	} else {
		t.sd = detect.NewStream(t.det, srv.cfg.Stream)
	}
	// Prime the anomaly log with the detector's emission cursor so the
	// dense log admits findings in stamp order even when pool workers
	// append out of order (and restored tenants continue past their
	// checkpointed cursor).
	t.sink.prime(t.sd.AnomalySeq() + 1)
	t.worker.Add(len(t.queues))
	for _, q := range t.queues {
		go t.run(q)
	}
	return t, nil
}

// run is one tenant worker: it feeds the streaming detector with its
// queue's records (every session routes to exactly one queue, so records
// of one session are consumed in ingest order) and flushes each task's
// findings to the anomaly sink in one batched append. Each task goes
// through the detector's two-stage ConsumeBatch, so the tokenize/lookup/
// bind stage of even a single-worker tenant fans out across the CPUs
// while the stateful apply stays ordered.
func (t *tenant) run(q chan task) {
	defer t.worker.Done()
	for tk := range q {
		if tk.ctl != nil {
			tk.ctl()
			continue
		}
		if anoms := t.sd.ConsumeBatch(tk.recs, 0); len(anoms) > 0 {
			t.sink.append(anoms)
			t.srv.countAnomalies(t.name, anoms)
		}
		t.pending.Add(int64(-len(tk.recs)))
	}
}

// route maps a session ID to its worker queue (FNV-1a, like the client's
// replay sharding — any stable hash works; nothing persists it).
func (t *tenant) route(session string) int {
	if len(t.queues) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(session); i++ {
		h ^= uint32(session[i])
		h *= 16777619
	}
	return int(h % uint32(len(t.queues)))
}

// enqueueBatch admits a record batch under the per-tenant budget.
// Admission is two-staged: reserve record budget, then an all-or-nothing
// placement of the batch's per-worker splits — if either stage fails the
// batch is refused (the caller answers 429) and nothing is buffered, so
// a saturated tenant holds at most QueueRecords records plus the
// in-flight tasks, never an unbounded backlog.
func (t *tenant) enqueueBatch(recs []logging.Record) bool {
	if len(recs) == 0 {
		return true
	}
	n := int64(len(recs))
	max := int64(t.srv.cfg.QueueRecords)
	for {
		cur := t.pending.Load()
		if cur+n > max {
			t.rejected.Add(1)
			return false
		}
		if t.pending.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if !t.sendBatch(recs) {
		t.pending.Add(-n)
		t.rejected.Add(1)
		return false
	}
	t.records.Add(uint64(len(recs)))
	t.batches.Add(1)
	return true
}

// sendBatch splits a batch by session route (preserving input order
// within each split) and places the splits atomically: under routeMu
// every target queue is checked for room before anything is sent, so
// admission is all-or-nothing and the sends never block.
func (t *tenant) sendBatch(recs []logging.Record) bool {
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closed {
		return false
	}
	if len(t.queues) == 1 {
		select {
		case t.queues[0] <- task{recs: recs}:
			return true
		default:
			return false
		}
	}
	split := make([][]logging.Record, len(t.queues))
	for i := range recs {
		w := t.route(recs[i].SessionID)
		split[w] = append(split[w], recs[i])
	}
	t.routeMu.Lock()
	defer t.routeMu.Unlock()
	for w, rs := range split {
		if len(rs) > 0 && len(t.queues[w]) >= cap(t.queues[w]) {
			return false
		}
	}
	for w, rs := range split {
		if len(rs) > 0 {
			t.queues[w] <- task{recs: rs}
		}
	}
	return true
}

// control runs fn with the whole worker pool quiesced, after everything
// already queued, and waits for it to finish: a barrier task fans out to
// every queue under routeMu (so it cuts the accepted stream at one exact
// point), each worker parks once it reaches its leg, fn runs on the
// calling goroutine, and closing the release resumes the pool. Returns
// false if the tenant is closed. block=false refuses instead of waiting
// when any queue is full (the periodic checkpointer prefers skipping a
// cycle over stalling ingest).
func (t *tenant) control(fn func(), block bool) bool {
	t.sendMu.RLock()
	if t.closed {
		t.sendMu.RUnlock()
		return false
	}
	release := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(len(t.queues))
	leg := task{ctl: func() {
		ready.Done()
		<-release
	}}
	t.routeMu.Lock()
	if !block {
		for _, q := range t.queues {
			if len(q) >= cap(q) {
				t.routeMu.Unlock()
				t.sendMu.RUnlock()
				return false
			}
		}
	}
	// With block=true a send may wait on a full queue; its worker is still
	// draining (it cannot have parked: its leg is enqueued exactly once,
	// by us, later), so the send always progresses and no ingest sneaks
	// in between legs — routeMu is held across the whole fan-out.
	for _, q := range t.queues {
		q <- leg
	}
	t.routeMu.Unlock()
	t.sendMu.RUnlock()
	ready.Wait()
	fn()
	close(release)
	return true
}

// checkpointPath is the tenant's checkpoint file.
func (t *tenant) checkpointPath() string {
	return filepath.Join(t.srv.cfg.StateDir, t.name+checkpointExt)
}

// saveCheckpoint persists the model plus current stream state
// atomically (write + rename). It must only run with the worker pool
// quiesced (inside a control barrier, or after the workers have exited),
// so the snapshot pairs with an exact position in the accepted ingest
// stream.
func (t *tenant) saveCheckpoint() error {
	if t.srv.cfg.StateDir == "" {
		return nil
	}
	path := t.checkpointPath()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	st := t.sd.State()
	// Carry the raw-line sessionizer's stickiness so a restored tenant
	// keeps attributing ID-less lines instead of dropping them. The
	// assigner tracks the latest *accepted* line, which may run slightly
	// ahead of the worker's consumed cut — the right side to err on,
	// since queued-but-unconsumed records are lost on a crash anyway.
	t.assignMu.Lock()
	st.Sticky = t.assigner.Current()
	t.assignMu.Unlock()
	if err := core.SaveCheckpoint(f, t.model, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// close stops the tenant: no further sends are admitted, the queues are
// closed, and once the workers have drained everything already accepted,
// a final checkpoint is written (when checkpoint is true and a state
// dir is configured). Safe to call more than once.
func (t *tenant) close(checkpoint bool) error {
	t.sendMu.Lock()
	already := t.closed
	if !already {
		t.closed = true
		for _, q := range t.queues {
			close(q)
		}
	}
	t.sendMu.Unlock()
	t.worker.Wait()
	if already || !checkpoint {
		return nil
	}
	return t.saveCheckpoint()
}
