package server

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"intellog/internal/analytics"
	"intellog/internal/batch"
	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/metrics"
	"intellog/internal/wal"
)

// task is one unit of work on a tenant worker's queue: either an ingest
// sub-batch or a control step (one leg of a pool-wide barrier). Control
// steps ride the same queues as batches, so they serialize behind every
// record accepted before them — a checkpoint therefore captures an exact
// cut of the ingest stream without pausing the HTTP layer.
//
// A batch task carries the pooled batch itself: placement on the queue
// is the ownership hand-off, and the worker that drains it releases it
// back to the pool after the detector consumes it.
type task struct {
	b   *batch.Batch
	ctl func()
}

// tenant is one resident tenant: a trained model, its streaming
// detector, a bounded session-sharded ingest queue pool, and the anomaly
// log that backs the query endpoints.
type tenant struct {
	name string
	srv  *Server

	model *core.Model
	det   *detect.Detector
	sd    *detect.StreamDetector
	sink  *anomalyLog

	// engine aggregates the tenant's admitted anomalies into clusters,
	// rollups, and root-cause explanations. It is fed exactly once per
	// finding through the sink's admission callback, so WAL replay,
	// multi-worker reordering, and client retries all collapse to one
	// observation per seq. Its state rides the checkpoint.
	engine *analytics.Engine

	// queues are drained by one worker goroutine each; a record routes to
	// queues[hash(sessionID) % len(queues)], so records of one session are
	// always consumed in ingest order by the same worker while sessions
	// spread across the pool. sendMu guards the close handshake: senders
	// hold it shared and check closed before sending; close takes it
	// exclusively, so no send can race the close. routeMu serializes the
	// enqueue side across queues: every multi-queue placement (a split
	// batch, a control barrier) happens atomically with respect to every
	// other, which keeps batch admission all-or-nothing and makes a
	// barrier a true cut — no batch lands partly before it on one queue
	// and partly after it on another. Workers only ever drain, so a
	// len < cap check under routeMu guarantees the following send cannot
	// block.
	queues  []chan task
	sendMu  sync.RWMutex
	routeMu sync.Mutex
	closed  bool
	pending atomic.Int64 // records queued but not yet consumed
	worker  sync.WaitGroup

	// assignMu guards the raw-line sessionizer (handlers run
	// concurrently; stickiness state is shared).
	assignMu  sync.Mutex
	assigner  logging.SessionAssigner
	formatter logging.Formatter

	// wal, when non-nil, is the tenant's write-ahead log: every batch is
	// appended (and, per the sync policy, fsynced) under routeMu between
	// the queue-room check and the channel sends, so WAL order equals
	// queue placement order and a control barrier's cut corresponds to
	// an exact WAL sequence number. dlq is always non-nil (memory-only
	// without a state dir) and quarantines records refused by per-record
	// validation.
	wal *wal.Log
	dlq *wal.DLQ

	// ingest counters (mirrored into /metrics).
	records     atomic.Uint64 // accepted records
	batches     atomic.Uint64 // accepted batches
	rejected    atomic.Uint64 // batches refused with 429
	skipped     atomic.Uint64 // lines dropped (unparsable / no session)
	walReplayed atomic.Uint64 // records recovered from the WAL at boot

	restored bool // loaded from a checkpoint at startup
}

// newTenant assembles a tenant around a loaded model, optional
// checkpointed stream state, and the checkpoint's analytics payload
// (nil starts aggregation fresh).
func newTenant(srv *Server, name string, m *core.Model, st *detect.StreamState, analyticsState []byte) (*tenant, error) {
	t := &tenant{
		name:      name,
		srv:       srv,
		model:     m,
		sink:      newAnomalyLog(srv.cfg.AnomalyLog),
		queues:    make([]chan task, srv.cfg.ingestWorkers()),
		formatter: logging.FormatterFor(srv.cfg.DefaultFramework),
	}
	for i := range t.queues {
		t.queues[i] = make(chan task, srv.cfg.queueBatches())
	}
	t.det = m.Detector()
	if st != nil {
		sd, err := detect.RestoreStreamDetector(t.det, srv.cfg.Stream, st)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: restore stream: %w", name, err)
		}
		t.sd = sd
		t.assigner.Resume(st.Sticky)
		t.restored = true
	} else {
		t.sd = detect.NewStream(t.det, srv.cfg.Stream)
	}
	// Prime the anomaly log with the detector's emission cursor so the
	// dense log admits findings in stamp order even when pool workers
	// append out of order (and restored tenants continue past their
	// checkpointed cursor).
	t.sink.prime(t.sd.AnomalySeq() + 1)
	// The analytics engine must be wired before WAL replay and worker
	// start: replayed findings past the checkpoint cursor flow through
	// the same admission callback as live ones.
	if analyticsState != nil {
		eng, err := analytics.RestoreJSON(srv.cfg.Analytics, m.Graph, analyticsState)
		if err != nil {
			// A bad payload must not block serving: aggregation restarts
			// fresh while detection resumes from the checkpoint as usual.
			log.Printf("intellogd: tenant %s: analytics state unreadable (starting fresh): %v", name, err)
			eng = analytics.NewEngine(srv.cfg.Analytics, m.Graph)
		}
		t.engine = eng
	} else {
		t.engine = analytics.NewEngine(srv.cfg.Analytics, m.Graph)
	}
	t.sink.onAdmit = t.engine.ObserveBatch
	dlq, err := wal.OpenDLQ(srv.dlqDir(name), srv.cfg.DLQRetain)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: open dlq: %w", name, err)
	}
	t.dlq = dlq
	if srv.cfg.walEnabled() {
		if err := t.openWALAndReplay(st); err != nil {
			dlq.Close()
			return nil, err
		}
	}
	t.worker.Add(len(t.queues))
	for _, q := range t.queues {
		go t.run(q)
	}
	return t, nil
}

// openWALAndReplay opens the tenant's write-ahead log and feeds every
// record past the checkpoint's WAL cursor back through the detector —
// the crash-window records that were 202-acked but not yet covered by a
// checkpoint. It runs before the worker pool starts, so the replay is a
// strictly ordered prefix of whatever the new life ingests; recovery is
// deterministic from (checkpoint, WAL suffix), so repeated crashes
// replay to the same state.
func (t *tenant) openWALAndReplay(st *detect.StreamState) error {
	pol, err := wal.ParseSyncPolicy(t.srv.cfg.WALSync)
	if err != nil {
		return fmt.Errorf("tenant %s: %w", t.name, err)
	}
	wl, err := wal.Open(t.srv.walDir(t.name), wal.Options{
		Sync:         pol,
		SyncEvery:    t.srv.cfg.WALSyncEvery,
		SegmentBytes: t.srv.cfg.WALSegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("tenant %s: open wal: %w", t.name, err)
	}
	t.wal = wl
	if torn := wl.TornBytes(); torn > 0 {
		log.Printf("intellogd: tenant %s: wal: truncated %d-byte torn tail (records past it were never acked)",
			t.name, torn)
	}
	var cursor uint64
	if st != nil {
		cursor = st.WALSeq
	}
	if seq := wl.Seq(); cursor > seq {
		// A checkpoint ahead of the log means the WAL directory was
		// tampered with (or lost); the checkpoint is still authoritative
		// for everything it covers, so boot rather than refuse.
		log.Printf("intellogd: tenant %s: checkpoint covers wal seq %d but the log ends at %d",
			t.name, cursor, seq)
		cursor = seq
	}
	replayed, err := wl.ReplayAfter(cursor, func(recs []logging.Record) error {
		if anoms := t.sd.ConsumeBatch(recs, 0); len(anoms) > 0 {
			t.sink.append(anoms)
			t.srv.countAnomalies(t.name, anoms)
		}
		return nil
	})
	if err != nil {
		wl.Close()
		return fmt.Errorf("tenant %s: wal replay: %w", t.name, err)
	}
	if replayed > 0 {
		t.walReplayed.Add(replayed)
		log.Printf("intellogd: tenant %s: replayed %d wal records past checkpoint cursor %d",
			t.name, replayed, cursor)
	}
	return nil
}

// run is one tenant worker: it feeds the streaming detector with its
// queue's records (every session routes to exactly one queue, so records
// of one session are consumed in ingest order) and flushes each task's
// findings to the anomaly sink in one batched append. Each task goes
// through the detector's two-stage ConsumeBatch, so the tokenize/lookup/
// bind stage of even a single-worker tenant fans out across the CPUs
// while the stateful apply stays ordered.
func (t *tenant) run(q chan task) {
	defer t.worker.Done()
	for tk := range q {
		if tk.ctl != nil {
			tk.ctl()
			continue
		}
		if anoms := t.sd.ConsumeBatch(tk.b.Recs, 0); len(anoms) > 0 {
			t.sink.append(anoms)
			t.srv.countAnomalies(t.name, anoms)
		}
		n := tk.b.Len()
		// The detector consumed in place and retains nothing from the
		// backing array (anomalies copy out what they keep), so the batch
		// recycles here — the end of its ownership chain.
		tk.b.Release()
		t.pending.Add(int64(-n))
	}
}

// route maps a session ID to its worker queue (FNV-1a, like the client's
// replay sharding — any stable hash works; nothing persists it).
func (t *tenant) route(session string) int {
	if len(t.queues) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(session); i++ {
		h ^= uint32(session[i])
		h *= 16777619
	}
	return int(h % uint32(len(t.queues)))
}

// enqueueBatch admits a pooled record batch under the per-tenant budget.
// Admission is two-staged: reserve record budget, then an all-or-nothing
// placement of the batch's per-worker splits — if either stage fails the
// batch is refused (the caller answers 429) and nothing is buffered, so
// a saturated tenant holds at most QueueRecords records plus the
// in-flight tasks, never an unbounded backlog. A non-nil error means the
// write-ahead append failed after admission succeeded: the batch is NOT
// buffered and the caller must answer a hard failure (500/503), never an
// ack — acking what the WAL could not hold would silently re-open the
// crash window.
//
// Ownership: the batch is consumed (queued, ultimately released by a
// worker) exactly when enqueueBatch returns (true, nil). On every other
// outcome the caller still owns it — typically to release it after
// writing the refusal.
func (t *tenant) enqueueBatch(b *batch.Batch) (bool, error) {
	if b.Len() == 0 {
		b.Release()
		return true, nil
	}
	n := int64(b.Len())
	max := int64(t.srv.cfg.QueueRecords)
	for {
		cur := t.pending.Load()
		if cur+n > max {
			t.rejected.Add(1)
			return false, nil
		}
		if t.pending.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	ok, err := t.sendBatch(b)
	if !ok || err != nil {
		t.pending.Add(-n)
		if err == nil {
			t.rejected.Add(1)
		}
		return false, err
	}
	t.records.Add(uint64(n))
	t.batches.Add(1)
	return true, nil
}

// enqueueRecords is enqueueBatch over a plain record slice: it copies
// recs into a rented batch, admits it, and releases the rental itself
// on refusal — for callers (WAL-less internal paths, tests) that don't
// hold a rental of their own.
func (t *tenant) enqueueRecords(recs []logging.Record) (bool, error) {
	b := t.srv.batches.Get()
	b.Grow(len(recs))
	b.Recs = append(b.Recs, recs...)
	ok, err := t.enqueueBatch(b)
	if !ok || err != nil {
		b.Release()
	}
	return ok, err
}

// sendBatch splits a batch by session route (preserving input order
// within each split) and places the splits atomically: under routeMu
// every target queue is checked for room before anything is sent, so
// admission is all-or-nothing and the sends never block. The WAL append
// sits between the room check and the sends, inside the same routeMu
// critical section: refused batches never touch the log (a client 429
// retry cannot duplicate records on replay), and no record can land on
// a queue before a control barrier yet in the log after the barrier's
// cut.
func (t *tenant) sendBatch(b *batch.Batch) (bool, error) {
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closed {
		return false, nil
	}
	if len(t.queues) == 1 && t.wal == nil {
		// No WAL: the single channel itself orders sends against control
		// barriers, so the lock-free fast path stands.
		select {
		case t.queues[0] <- task{b: b}:
			return true, nil
		default:
			return false, nil
		}
	}
	if len(t.queues) == 1 {
		t.routeMu.Lock()
		defer t.routeMu.Unlock()
		if len(t.queues[0]) >= cap(t.queues[0]) {
			return false, nil
		}
		if err := t.walAppend(b.Recs); err != nil {
			return false, err
		}
		t.queues[0] <- task{b: b}
		return true, nil
	}
	// Multi-queue: copy each record into its route's own pooled
	// sub-batch (input order preserved within a split), then place the
	// splits atomically and recycle the original. Splits are rented
	// lazily — a single-session batch costs one sub-batch, not one per
	// queue.
	split := make([]*batch.Batch, len(t.queues))
	for i := range b.Recs {
		w := t.route(b.Recs[i].SessionID)
		if split[w] == nil {
			split[w] = t.srv.batches.Get()
		}
		split[w].Append(b.Recs[i])
	}
	releaseSplits := func() {
		for _, sb := range split {
			if sb != nil {
				sb.Release()
			}
		}
	}
	t.routeMu.Lock()
	defer t.routeMu.Unlock()
	for w, sb := range split {
		if sb != nil && len(t.queues[w]) >= cap(t.queues[w]) {
			releaseSplits()
			return false, nil
		}
	}
	if err := t.walAppend(b.Recs); err != nil {
		releaseSplits()
		return false, err
	}
	for w, sb := range split {
		if sb != nil {
			t.queues[w] <- task{b: sb}
		}
	}
	b.Release()
	return true, nil
}

// walAppend durably logs an admitted batch (no-op without a WAL). Must
// run under routeMu — see sendBatch.
func (t *tenant) walAppend(recs []logging.Record) error {
	if t.wal == nil {
		return nil
	}
	if err := t.wal.Append(recs); err != nil {
		t.srv.reg.Counter("intellogd_wal_append_errors_total",
			"failed write-ahead-log appends per tenant",
			metrics.Label{Key: "tenant", Value: t.name}).Inc()
		return err
	}
	return nil
}

// deadLetter quarantines records that failed per-record validation.
// Callers append only after their batch's valid records were admitted —
// a refused (429/413) batch will be retried by the client verbatim, and
// dead-lettering it early would duplicate the entries.
func (t *tenant) deadLetter(ls []wal.DeadLetter) {
	if len(ls) == 0 {
		return
	}
	if err := t.dlq.Add(ls); err != nil {
		log.Printf("intellogd: tenant %s: dlq: %v", t.name, err)
		t.srv.reg.Counter("intellogd_dlq_write_errors_total",
			"failed dead-letter persistence attempts per tenant",
			metrics.Label{Key: "tenant", Value: t.name}).Inc()
	}
	t.srv.reg.Counter("intellogd_dlq_records_total",
		"records dead-lettered per tenant",
		metrics.Label{Key: "tenant", Value: t.name}).Add(float64(len(ls)))
}

// control runs fn with the whole worker pool quiesced — see controlCut,
// which it wraps for callers that don't need the barrier's WAL cut.
func (t *tenant) control(fn func(), block bool) bool {
	return t.controlCut(func(uint64) { fn() }, block)
}

// controlCut runs fn with the whole worker pool quiesced, after
// everything already queued, and waits for it to finish: a barrier task
// fans out to every queue under routeMu (so it cuts the accepted stream
// at one exact point), each worker parks once it reaches its leg, fn
// runs on the calling goroutine, and closing the release resumes the
// pool. fn receives the WAL sequence of the barrier's cut — captured
// under the same routeMu hold that places the legs, so it covers
// exactly the records queued before the barrier (concurrent barriers
// each get their own cut; a shared field would let a later barrier's
// larger cut leak into an earlier checkpoint and truncate unapplied
// records). Returns false if the tenant is closed. block=false refuses
// instead of waiting when any queue is full (the periodic checkpointer
// prefers skipping a cycle over stalling ingest).
func (t *tenant) controlCut(fn func(walCut uint64), block bool) bool {
	t.sendMu.RLock()
	if t.closed {
		t.sendMu.RUnlock()
		return false
	}
	release := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(len(t.queues))
	leg := task{ctl: func() {
		ready.Done()
		<-release
	}}
	t.routeMu.Lock()
	if !block {
		for _, q := range t.queues {
			if len(q) >= cap(q) {
				t.routeMu.Unlock()
				t.sendMu.RUnlock()
				return false
			}
		}
	}
	// With block=true a send may wait on a full queue; its worker is still
	// draining (it cannot have parked: its leg is enqueued exactly once,
	// by us, later), so the send always progresses and no ingest sneaks
	// in between legs — routeMu is held across the whole fan-out.
	var cut uint64
	if t.wal != nil {
		cut = t.wal.Seq()
	}
	for _, q := range t.queues {
		q <- leg
	}
	t.routeMu.Unlock()
	t.sendMu.RUnlock()
	ready.Wait()
	fn(cut)
	close(release)
	return true
}

// checkpointPath is the tenant's checkpoint file.
func (t *tenant) checkpointPath() string {
	return filepath.Join(t.srv.cfg.StateDir, t.name+checkpointExt)
}

// fileSync flushes a file (or directory) to stable storage; a variable
// so the checkpoint fault-injection test can simulate a dying disk.
var fileSync = func(f *os.File) error { return f.Sync() }

// syncParentDir fsyncs a directory so a just-renamed file's directory
// entry survives power loss.
func syncParentDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = fileSync(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// saveCheckpoint persists the model plus current stream state
// atomically and durably: the temp file is fsynced before the rename
// and the state directory after it, so a power loss at any point leaves
// either the old checkpoint or the complete new one — never a torn or
// unlinked file. It must only run with the worker pool quiesced (inside
// a control barrier, or after the workers have exited), so the snapshot
// pairs with an exact position in the accepted ingest stream; walCut is
// that position's WAL sequence (0 without a WAL), stamped into the
// state so boot replay knows where coverage ends, and every WAL segment
// it covers is truncated once the checkpoint is safely down.
func (t *tenant) saveCheckpoint(walCut uint64) error {
	if t.srv.cfg.StateDir == "" {
		return nil
	}
	path := t.checkpointPath()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	st := t.sd.State()
	// Carry the raw-line sessionizer's stickiness so a restored tenant
	// keeps attributing ID-less lines instead of dropping them. The
	// assigner tracks the latest *accepted* line, which may run slightly
	// ahead of the worker's consumed cut — the right side to err on:
	// with a WAL the gap replays on boot, without one it is lost anyway.
	t.assignMu.Lock()
	st.Sticky = t.assigner.Current()
	t.assignMu.Unlock()
	st.WALSeq = walCut
	// The quiesced pool means no admission callback is mid-flight, so
	// the engine state pairs exactly with the stream cut.
	analyticsState, err := t.engine.StateJSON()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := core.SaveCheckpointState(f, t.model, st, 0, analyticsState); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := fileSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncParentDir(t.srv.cfg.StateDir); err != nil {
		return err
	}
	if t.wal != nil {
		// The checkpoint covers everything through walCut; the segments
		// holding those records are dead weight now. A truncate failure
		// costs only re-replay on the next boot, never correctness.
		if err := t.wal.TruncateThrough(walCut); err != nil {
			log.Printf("intellogd: tenant %s: wal truncate: %v", t.name, err)
		}
	}
	return nil
}

// close stops the tenant: no further sends are admitted, the queues are
// closed, and once the workers have drained everything already accepted,
// a final checkpoint is written (when checkpoint is true and a state
// dir is configured). Safe to call more than once.
func (t *tenant) close(checkpoint bool) error {
	t.sendMu.Lock()
	already := t.closed
	if !already {
		t.closed = true
		for _, q := range t.queues {
			close(q)
		}
	}
	t.sendMu.Unlock()
	t.worker.Wait()
	if already {
		return nil
	}
	var err error
	if checkpoint {
		// All appends are done (closed was set under sendMu), so Seq() is
		// the final cut and the drained detector state covers all of it.
		var cut uint64
		if t.wal != nil {
			cut = t.wal.Seq()
		}
		err = t.saveCheckpoint(cut)
	}
	if t.wal != nil {
		if cerr := t.wal.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := t.dlq.Close(); err == nil {
		err = cerr
	}
	return err
}
