package server

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"intellog/internal/logging"
)

// retrySleep pauses a replay worker before it retries a 429'd batch.
// Swappable so tests can observe backoff decisions without real sleeps.
var retrySleep = time.Sleep

// minRetryDelay floors every backoff sleep. Without it a tiny (or
// absent) Retry-After hint — or the jitter rounding one down — yields a
// zero-length sleep, and a refused worker busy-loops against a server
// that is saturated by definition, burning both sides' CPU on retries
// that cannot succeed yet.
const minRetryDelay = 10 * time.Millisecond

// retryDelay jitters the server's Retry-After hint by ±20%: when many
// replay workers are refused in the same admission window, a bare hint
// would wake them in lockstep and they'd collide at the queue again;
// spreading the wakeups lets the pool drain between waves. The result
// is never below minRetryDelay, hint or no hint.
func retryDelay(hint time.Duration, rng *rand.Rand) time.Duration {
	if hint <= 0 {
		return minRetryDelay
	}
	d := time.Duration(float64(hint) * (0.8 + 0.4*rng.Float64()))
	if d < minRetryDelay {
		d = minRetryDelay
	}
	return d
}

// ReplayOptions tunes a load replay against a running server.
type ReplayOptions struct {
	// Batch is the records-per-request batch size (default 256).
	Batch int
	// Concurrency is the number of parallel sender workers (default 1).
	// Records are sharded across workers by session hash, so each
	// session's records still arrive in order — the invariant the
	// streaming detector's conformance guarantee rests on.
	Concurrency int
	// MaxRetries bounds retries per batch on 429 (default 50).
	MaxRetries int
}

// ReplayResult summarizes one replay run.
type ReplayResult struct {
	Records   int           // records sent (accepted)
	Batches   int           // batches posted successfully
	Rejected  int           // 429 responses absorbed (each retried)
	Duration  time.Duration // wall time of the send phase
	P50       time.Duration // median per-batch POST latency
	P99       time.Duration // 99th percentile per-batch POST latency
	RecPerSec float64       // accepted records / wall seconds
}

// Replay streams the records to the server in batches, honoring 429
// backpressure (sleep Retry-After, retry the same batch). Records are
// partitioned across workers by session so per-session order is
// preserved at any concurrency.
func (c *Client) Replay(recs []logging.Record, opts ReplayOptions) (ReplayResult, error) {
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 50
	}

	shards := make([][]logging.Record, opts.Concurrency)
	for _, r := range recs {
		h := fnv.New32a()
		h.Write([]byte(r.SessionID))
		i := int(h.Sum32()) % opts.Concurrency
		if i < 0 {
			i += opts.Concurrency
		}
		shards[i] = append(shards[i], r)
	}

	type workerStat struct {
		records, batches, rejected int
		latencies                  []time.Duration
		err                        error
	}
	stats := make([]workerStat, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, recs []logging.Record) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for off := 0; off < len(recs); off += opts.Batch {
				end := off + opts.Batch
				if end > len(recs) {
					end = len(recs)
				}
				batch := recs[off:end]
				retries := 0
				for {
					t0 := time.Now()
					resp, err := c.IngestRecords(batch)
					st.latencies = append(st.latencies, time.Since(t0))
					if qf, ok := err.(ErrQueueFull); ok {
						st.rejected++
						retries++
						if retries > opts.MaxRetries {
							st.err = fmt.Errorf("batch still refused after %d retries: %w", opts.MaxRetries, err)
							return
						}
						retrySleep(retryDelay(qf.RetryAfter, rng))
						continue
					}
					if err != nil {
						st.err = err
						return
					}
					st.records += resp.Accepted
					st.batches++
					break
				}
			}
		}(w, shards[w])
	}
	wg.Wait()

	res := ReplayResult{Duration: time.Since(start)}
	var lat []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return res, stats[i].err
		}
		res.Records += stats[i].records
		res.Batches += stats[i].batches
		res.Rejected += stats[i].rejected
		lat = append(lat, stats[i].latencies...)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P50 = lat[len(lat)/2]
		res.P99 = lat[(len(lat)*99)/100]
	}
	if secs := res.Duration.Seconds(); secs > 0 {
		res.RecPerSec = float64(res.Records) / secs
	}
	return res, nil
}
