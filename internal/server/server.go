// Package server is intellogd's serving layer: a multi-tenant HTTP
// front-end over the streaming detector. Each tenant is a trained core
// model whose log stream is ingested as NDJSON batches on /v1/ingest,
// consumed by a dedicated worker through a detect.StreamDetector, and
// queried back through cursor-paginated anomaly, report and HW-graph
// endpoints. Production concerns are first-class: per-tenant bounded
// ingest queues with 429 admission control, a background checkpointer
// built on core.SaveCheckpoint so a restart resumes mid-stream, an LRU
// cap on resident tenants, Prometheus metrics and pprof.
package server

import (
	"container/list"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"intellog/internal/analytics"
	"intellog/internal/batch"
	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/metrics"
	"intellog/internal/wal"
)

// checkpointExt is the suffix of per-tenant checkpoint files under
// Config.StateDir.
const checkpointExt = ".ckpt"

// modelExt is the suffix of per-tenant model files under Config.ModelDir.
const modelExt = ".json"

// walDirExt and dlqDirExt are the suffixes of the per-tenant
// write-ahead-log and dead-letter directories under Config.StateDir.
const (
	walDirExt = ".wal"
	dlqDirExt = ".dlq"
)

// Config tunes the serving layer.
type Config struct {
	// ModelDir holds one trained model per tenant: <dir>/<tenant>.json,
	// as written by `intellog train`. A tenant with no model file is
	// unknown (404).
	ModelDir string
	// StateDir holds per-tenant checkpoints: <dir>/<tenant>.ckpt. Empty
	// disables checkpointing (and restart recovery).
	StateDir string
	// MaxTenants caps resident tenants; past it the least-recently-used
	// tenant is drained, checkpointed and evicted. 0 means a default of
	// 32; negative means unbounded.
	MaxTenants int
	// QueueRecords bounds each tenant's ingest queue in records; a batch
	// that would exceed it is refused with 429. 0 means a default of
	// 8192.
	QueueRecords int
	// IngestWorkers sets each tenant's ingest worker-pool size. Records
	// route to workers by session hash, so per-session ingest order is
	// preserved at any size while sessions proceed in parallel; control
	// ops (checkpoint, flush, drain) barrier the whole pool, so their
	// exact-cut semantics are unchanged. 0 or 1 means a single worker
	// (the serial pipeline).
	IngestWorkers int
	// AnomalyLog bounds each tenant's retained anomaly history (the
	// /v1/anomalies window). 0 means a default of 65536; negative means
	// unbounded.
	AnomalyLog int
	// CheckpointEvery is the background checkpoint cadence; 0 disables
	// periodic checkpoints (final checkpoints on shutdown still happen).
	CheckpointEvery time.Duration
	// Stream configures each tenant's streaming detector (idle timeout,
	// session/message caps, shards).
	Stream detect.StreamConfig
	// DefaultFramework is assumed for ingested records that carry no
	// framework and for raw-line parsing; empty means spark.
	DefaultFramework logging.Framework
	// MaxBodyBytes bounds one ingest request body. 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxRecordBytes bounds one ingest record (NDJSON line, or a
	// structured record's string fields on the binary wire). A larger
	// record dead-letters individually instead of failing its batch. 0
	// means 1 MiB.
	MaxRecordBytes int
	// DisableWAL turns the per-tenant write-ahead log off. With a
	// StateDir and the WAL on (the default), every 202-acked record is
	// logged before it is queued and replayed through the model on boot,
	// so a crash between checkpoints loses nothing; without it, recovery
	// falls back to the last checkpoint alone. No StateDir means no WAL
	// regardless.
	DisableWAL bool
	// WALSync is the WAL fsync policy: "always", "interval" or "none"
	// (empty means interval; see wal.ParseSyncPolicy).
	WALSync string
	// WALSyncEvery is the fsync cadence under the "interval" policy; 0
	// means 100ms.
	WALSyncEvery time.Duration
	// WALSegmentBytes is the WAL segment rotation threshold; 0 means
	// 8 MiB.
	WALSegmentBytes int64
	// DLQRetain bounds each tenant's live dead-letter entries (oldest
	// dropped past it). 0 means 4096; negative means unbounded.
	DLQRetain int
	// Analytics tunes each tenant's anomaly-aggregation engine (cluster
	// threshold, rollup window, SLO budget, table bounds). Zero values
	// take the analytics package defaults.
	Analytics analytics.Config
}

// defaults fills zero values.
func (c *Config) defaults() {
	if c.MaxTenants == 0 {
		c.MaxTenants = 32
	}
	if c.QueueRecords == 0 {
		c.QueueRecords = 8192
	}
	if c.AnomalyLog == 0 {
		c.AnomalyLog = 65536
	}
	if c.DefaultFramework == "" {
		c.DefaultFramework = logging.Spark
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 1 << 20
	}
	if c.DLQRetain == 0 {
		c.DLQRetain = 4096
	}
}

// walEnabled reports whether tenants run with a write-ahead log.
func (c *Config) walEnabled() bool {
	return c.StateDir != "" && !c.DisableWAL
}

// queueBatches sizes a tenant's task channel. The record budget is the
// real bound; the channel just needs enough slots that batch count never
// binds before it under reasonable batch sizes, without costing memory
// per idle tenant.
func (c *Config) queueBatches() int {
	n := c.QueueRecords / 8
	if n < 16 {
		n = 16
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

// ingestWorkers is the per-tenant worker-pool size (≥ 1).
func (c *Config) ingestWorkers() int {
	if c.IngestWorkers <= 1 {
		return 1
	}
	return c.IngestWorkers
}

// Server is the serving layer. Create with New, expose via Handler, and
// stop with Close (graceful) or Kill (abandon, for crash testing).
type Server struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*list.Element // name → element holding *tenant
	lru      *list.List               // front = most recently used
	evicting map[string]chan struct{} // names mid-eviction

	reg    *metrics.Registry
	closed chan struct{}
	stopWG sync.WaitGroup // background checkpointer

	// batches is the server-wide record-batch pool: both ingest wires
	// fill rented batches and the tenant workers release them after the
	// detector consumes in place — see internal/batch for the ownership
	// contract.
	batches *batch.Pool

	// streamConns tracks live binary-protocol ingest connections (see
	// ServeStream) so shutdown can sever them.
	streamMu    sync.Mutex
	streamConns map[net.Conn]struct{}

	started time.Time
}

// New builds a Server and restores every tenant that left a checkpoint
// in StateDir (bounded by MaxTenants; beyond that the rest stay on disk
// until first use).
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	if _, err := wal.ParseSyncPolicy(cfg.WALSync); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		tenants:  map[string]*list.Element{},
		lru:      list.New(),
		evicting: map[string]chan struct{}{},
		reg:      metrics.NewRegistry(),
		closed:   make(chan struct{}),
		batches:  batch.NewPool(0),
		started:  time.Now(),
	}
	s.registerGauges()
	if err := s.restoreCheckpointed(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery > 0 {
		s.stopWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// restoreCheckpointed pre-warms tenants whose checkpoints survived the
// previous process, so sessions that were in flight at shutdown resume
// before any new traffic arrives.
func (s *Server) restoreCheckpointed() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var name string
		fromWAL := false
		switch {
		case !e.IsDir() && strings.HasSuffix(e.Name(), checkpointExt):
			name = strings.TrimSuffix(e.Name(), checkpointExt)
		case e.IsDir() && strings.HasSuffix(e.Name(), walDirExt) && s.cfg.walEnabled():
			// A WAL directory without a checkpoint is a tenant that
			// crashed before its first checkpoint: its acked records live
			// only in the log, so it must boot (and replay) now, not at
			// first use.
			name = strings.TrimSuffix(e.Name(), walDirExt)
			fromWAL = true
		default:
			continue
		}
		// A stray file with an invalid tenant basename is junk, not a
		// reason to refuse to boot: skip it (loadTenant would never have
		// written it, so no real state is being ignored).
		if !validTenantName(name) {
			log.Printf("intellogd: ignoring state %s: invalid tenant name",
				filepath.Join(s.cfg.StateDir, e.Name()))
			continue
		}
		if s.cfg.MaxTenants > 0 && s.lru.Len() >= s.cfg.MaxTenants {
			break
		}
		_, err := s.Tenant(name)
		if err != nil && fromWAL && errors.As(err, &errUnknownTenant{}) {
			// An orphaned WAL (model deleted since) shouldn't block boot.
			log.Printf("intellogd: ignoring wal for %s: %v", name, err)
			continue
		}
		if err != nil {
			return fmt.Errorf("restore tenant %s: %w", name, err)
		}
	}
	return nil
}

// Tenant returns the named tenant, loading it on first use: from its
// checkpoint when one exists (restart recovery), otherwise from its
// trained model file. Loading past MaxTenants evicts the
// least-recently-used tenant (drained and checkpointed first).
func (s *Server) Tenant(name string) (*tenant, error) {
	if !validTenantName(name) {
		return nil, errBadTenant
	}
	for {
		s.mu.Lock()
		if e, ok := s.tenants[name]; ok {
			s.lru.MoveToFront(e)
			s.mu.Unlock()
			return e.Value.(*tenant), nil
		}
		// A tenant mid-eviction still owns its checkpoint file; wait for
		// the eviction to finish before reloading, or the fresh instance
		// would restore pre-eviction state.
		if ch, ok := s.evicting[name]; ok {
			s.mu.Unlock()
			<-ch
			continue
		}
		s.mu.Unlock()

		t, err := s.loadTenant(name)
		if err != nil {
			return nil, err
		}

		s.mu.Lock()
		if e, ok := s.tenants[name]; ok {
			// Lost a load race; keep the resident instance.
			s.lru.MoveToFront(e)
			s.mu.Unlock()
			t.close(false)
			return e.Value.(*tenant), nil
		}
		e := s.lru.PushFront(t)
		s.tenants[name] = e
		var evictees []*tenant
		for s.cfg.MaxTenants > 0 && s.lru.Len() > s.cfg.MaxTenants {
			back := s.lru.Back()
			ev := back.Value.(*tenant)
			s.lru.Remove(back)
			delete(s.tenants, ev.name)
			s.evicting[ev.name] = make(chan struct{})
			evictees = append(evictees, ev)
		}
		s.mu.Unlock()

		for _, ev := range evictees {
			ev.close(true)
			s.mu.Lock()
			close(s.evicting[ev.name])
			delete(s.evicting, ev.name)
			s.mu.Unlock()
		}
		return t, nil
	}
}

// errBadTenant rejects tenant names that could escape the model/state
// directories or collide with file suffixes.
var errBadTenant = fmt.Errorf("invalid tenant name")

// errUnknownTenant marks a tenant with no trained model on disk.
type errUnknownTenant struct{ name string }

func (e errUnknownTenant) Error() string {
	return fmt.Sprintf("unknown tenant %q: no model or checkpoint on disk", e.name)
}

// validTenantName permits [a-zA-Z0-9._-], no leading dot, length 1..128.
func validTenantName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

// walDir is the tenant's write-ahead-log segment directory.
func (s *Server) walDir(name string) string {
	return filepath.Join(s.cfg.StateDir, name+walDirExt)
}

// dlqDir is the tenant's dead-letter segment directory; empty (the
// DLQ's memory-only mode) without a state dir.
func (s *Server) dlqDir(name string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, name+dlqDirExt)
}

// loadTenant reads a tenant's state from disk: checkpoint first (it
// embeds the model), then the trained model file.
func (s *Server) loadTenant(name string) (*tenant, error) {
	if s.cfg.StateDir != "" {
		path := filepath.Join(s.cfg.StateDir, name+checkpointExt)
		if f, err := os.Open(path); err == nil {
			m, st, _, analyticsState, err := core.LoadCheckpointState(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", path, err)
			}
			return newTenant(s, name, m, st, analyticsState)
		}
	}
	if s.cfg.ModelDir == "" {
		return nil, errUnknownTenant{name}
	}
	path := filepath.Join(s.cfg.ModelDir, name+modelExt)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errUnknownTenant{name}
		}
		return nil, err
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	return newTenant(s, name, m, nil, nil)
}

// resident snapshots the resident tenants (most recently used first).
func (s *Server) resident() []*tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*tenant, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*tenant))
	}
	return out
}

// checkpointLoop periodically checkpoints every resident tenant. The
// checkpoint op rides the tenant queue (exact cut semantics); a tenant
// whose queue is saturated skips the cycle rather than stalling ingest.
func (s *Server) checkpointLoop() {
	defer s.stopWG.Done()
	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			for _, t := range s.resident() {
				t := t
				ok := t.controlCut(func(cut uint64) {
					if err := t.saveCheckpoint(cut); err == nil {
						s.reg.Counter("intellogd_checkpoints_total",
							"checkpoints written per tenant",
							metrics.Label{Key: "tenant", Value: t.name}).Inc()
					} else {
						s.reg.Counter("intellogd_checkpoint_errors_total",
							"failed checkpoint writes per tenant",
							metrics.Label{Key: "tenant", Value: t.name}).Inc()
					}
				}, false)
				if !ok {
					s.reg.Counter("intellogd_checkpoint_skips_total",
						"checkpoint cycles skipped because the tenant queue was saturated",
						metrics.Label{Key: "tenant", Value: t.name}).Inc()
				}
			}
		}
	}
}

// Close is the graceful shutdown: the background checkpointer stops,
// every tenant queue is closed and drained, and final checkpoints are
// written. The HTTP listener should be shut down first so no new ingest
// races the drain.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.closeStreamConns()
	s.stopWG.Wait()
	var firstErr error
	for _, t := range s.resident() {
		if err := t.close(true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Kill is the crash-shaped stop used by tests and kill/resume drills: it
// stops background work and abandons tenant state without writing final
// checkpoints — whatever the last checkpoint captured is what a
// successor process will see.
func (s *Server) Kill() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.closeStreamConns()
	s.stopWG.Wait()
	for _, t := range s.resident() {
		t.close(false)
	}
}

// countAnomalies mirrors emitted findings into the per-kind counters,
// batched per kind so a burst of findings costs one registry probe and
// one atomic add per kind instead of one of each per anomaly.
func (s *Server) countAnomalies(tenantName string, as []detect.Anomaly) {
	var counts [int(detect.Overflow) + 1]int
	for i := range as {
		if k := as[i].Kind; k >= 0 && int(k) < len(counts) {
			counts[k]++
		}
	}
	for k, n := range counts {
		if n == 0 {
			continue
		}
		s.reg.Counter("intellogd_anomalies_total",
			"anomalies emitted, by tenant and kind",
			metrics.Label{Key: "tenant", Value: tenantName},
			metrics.Label{Key: "kind", Value: detect.Kind(k).String()}).Add(float64(n))
	}
}

// registerGauges wires the scrape-time gauge collectors: queue and
// session state read straight off the detectors, plus the model lookup
// cache hit rate.
func (s *Server) registerGauges() {
	perTenant := func(value func(*tenant) float64) func() []metrics.Sample {
		return func() []metrics.Sample {
			var out []metrics.Sample
			for _, t := range s.resident() {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Key: "tenant", Value: t.name}},
					Value:  value(t),
				})
			}
			return out
		}
	}
	s.reg.CounterFunc("intellogd_ingest_records_total",
		"records accepted onto ingest queues per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.records.Load()) }))
	s.reg.CounterFunc("intellogd_ingest_batches_total",
		"ingest batches accepted per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.batches.Load()) }))
	s.reg.CounterFunc("intellogd_ingest_rejected_total",
		"ingest batches refused with 429 (backpressure) per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.rejected.Load()) }))
	s.reg.CounterFunc("intellogd_ingest_skipped_total",
		"ingested lines dropped (unparsable or no session) per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.skipped.Load()) }))
	s.reg.GaugeFunc("intellogd_pending_sessions",
		"in-flight sessions per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.sd.Pending()) }))
	s.reg.GaugeFunc("intellogd_sessions_seen",
		"sessions ever opened per tenant (survives checkpoints)",
		perTenant(func(t *tenant) float64 { return float64(t.sd.SessionsSeen()) }))
	s.reg.GaugeFunc("intellogd_queue_records",
		"ingested records queued but not yet consumed, per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.pending.Load()) }))
	s.reg.GaugeFunc("intellogd_expiry_heap_depth",
		"scheduled idle-expiry heap entries per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.sd.ExpiryDepth()) }))
	s.reg.GaugeFunc("intellogd_anomaly_log_size",
		"anomalies retained in the query window per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.sink.len()) }))
	s.reg.GaugeFunc("intellogd_lookup_cache_hits",
		"model lookup-cache hits per tenant",
		perTenant(func(t *tenant) float64 {
			h, _ := t.det.Cache.Stats()
			return float64(h)
		}))
	s.reg.GaugeFunc("intellogd_lookup_cache_misses",
		"model lookup-cache misses per tenant",
		perTenant(func(t *tenant) float64 {
			_, m := t.det.Cache.Stats()
			return float64(m)
		}))
	s.reg.CounterFunc("intellogd_wal_replayed_records",
		"records recovered from the write-ahead log at tenant boot",
		perTenant(func(t *tenant) float64 { return float64(t.walReplayed.Load()) }))
	s.reg.GaugeFunc("intellogd_wal_seq",
		"newest write-ahead-log record sequence per tenant",
		perTenant(func(t *tenant) float64 {
			if t.wal == nil {
				return 0
			}
			return float64(t.wal.Seq())
		}))
	s.reg.GaugeFunc("intellogd_wal_segments",
		"live write-ahead-log segment files per tenant",
		perTenant(func(t *tenant) float64 {
			if t.wal == nil {
				return 0
			}
			return float64(t.wal.Segments())
		}))
	s.reg.GaugeFunc("intellogd_dlq_depth",
		"live dead-letter entries per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.dlq.Depth()) }))
	s.reg.CounterFunc("intellogd_dlq_dropped_total",
		"dead-letter entries discarded by the retention bound per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.dlq.Dropped()) }))
	s.reg.CounterFunc("intellogd_anomaly_log_trimmed_total",
		"anomalies dropped from the query window by retention per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.sink.trimmedCount()) }))
	s.reg.CounterFunc("intellogd_analytics_anomalies_observed_total",
		"anomalies folded into the analytics engine per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().Observed) }))
	s.reg.GaugeFunc("intellogd_analytics_shapes",
		"distinct anomaly templates tracked per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().Shapes) }))
	s.reg.GaugeFunc("intellogd_analytics_clusters",
		"live near-duplicate anomaly clusters per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().Clusters) }))
	s.reg.GaugeFunc("intellogd_analytics_tracked_sessions",
		"sessions with deviation evidence tracked per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().TrackedSessions) }))
	s.reg.CounterFunc("intellogd_analytics_localizations_total",
		"root-cause localizations computed per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().Localizations) }))
	s.reg.GaugeFunc("intellogd_analytics_alerts_firing",
		"SLO burn-rate alerts currently firing per tenant",
		perTenant(func(t *tenant) float64 { return float64(t.engine.Stats().AlertsFiring) }))
	s.reg.GaugeFunc("intellogd_resident_tenants",
		"tenants currently resident",
		func() []metrics.Sample {
			s.mu.Lock()
			n := s.lru.Len()
			s.mu.Unlock()
			return []metrics.Sample{{Value: float64(n)}}
		})
	s.reg.GaugeFunc("intellogd_uptime_seconds",
		"seconds since the server started",
		func() []metrics.Sample {
			return []metrics.Sample{{Value: time.Since(s.started).Seconds()}}
		})
	one := func(v float64) []metrics.Sample { return []metrics.Sample{{Value: v}} }
	s.reg.CounterFunc("intellogd_batch_pool_hits_total",
		"batch-pool rentals served from the home freelist shard",
		func() []metrics.Sample { return one(float64(s.batches.Stats().Hits)) })
	s.reg.CounterFunc("intellogd_batch_pool_steals_total",
		"batch-pool rentals served by stealing from a sibling shard",
		func() []metrics.Sample { return one(float64(s.batches.Stats().Steals)) })
	s.reg.CounterFunc("intellogd_batch_pool_misses_total",
		"batch-pool rentals that allocated a fresh batch",
		func() []metrics.Sample { return one(float64(s.batches.Stats().Misses)) })
	s.reg.GaugeFunc("intellogd_batch_pool_outstanding",
		"pooled batches currently rented and not yet released; a growing floor at quiesce is a leak",
		func() []metrics.Sample { return one(float64(s.batches.Stats().Outstanding)) })
	// Runtime GC passthrough, so replay harnesses can measure collector
	// pressure (and allocs/record, from the mallocs delta) off /metrics
	// instead of attaching a profiler.
	var msMu sync.Mutex
	var msAt time.Time
	var ms runtime.MemStats
	memstats := func() *runtime.MemStats {
		msMu.Lock()
		defer msMu.Unlock()
		// One stop-the-world read covers all the GC collectors of a
		// scrape (and any scrape burst inside the freshness window).
		if time.Since(msAt) > 50*time.Millisecond {
			runtime.ReadMemStats(&ms)
			msAt = time.Now()
		}
		return &ms
	}
	s.reg.GaugeFunc("intellogd_gc_cpu_fraction",
		"fraction of available CPU spent in the garbage collector since process start",
		func() []metrics.Sample { return one(memstats().GCCPUFraction) })
	s.reg.CounterFunc("intellogd_gc_pause_seconds_total",
		"cumulative stop-the-world GC pause time",
		func() []metrics.Sample { return one(float64(memstats().PauseTotalNs) / 1e9) })
	s.reg.CounterFunc("intellogd_gc_cycles_total",
		"completed garbage-collection cycles",
		func() []metrics.Sample { return one(float64(memstats().NumGC)) })
	s.reg.CounterFunc("intellogd_mallocs_total",
		"cumulative heap objects allocated (runtime.MemStats.Mallocs)",
		func() []metrics.Sample { return one(float64(memstats().Mallocs)) })
	s.reg.GaugeFunc("intellogd_heap_alloc_bytes",
		"bytes of live heap (runtime.MemStats.HeapAlloc)",
		func() []metrics.Sample { return one(float64(memstats().HeapAlloc)) })
}
