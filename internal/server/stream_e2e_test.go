package server_test

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"

	"intellog/internal/conformance"
	"intellog/internal/detect"
	"intellog/internal/server"
)

// canonicalizeServed canonicalizes a batch-path report as a report-API
// client would observe it: through one JSON round trip. The binary
// ingest wire carries record bytes verbatim, but the report endpoint is
// JSON, which rewrites invalid UTF-8 (the line-fault corpora carry
// some) into U+FFFD on the way out; a round trip applies the identical
// rewrite to the local reference. For valid UTF-8 this is the identity.
func canonicalizeServed(t *testing.T, rep *detect.Report) []byte {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var rt detect.Report
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	canon, err := conformance.Canonicalize(&rt)
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// bootStreamListener exposes srv's binary ingest protocol on a loopback
// listener and returns its address.
func bootStreamListener(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)
	return ln.Addr().String()
}

// TestStreamServeConformance is the binary-protocol differential check
// over the whole matrix: a corpus replayed through the length-prefixed
// wire (encode → frame → CRC → decode → queue → worker → streaming
// detector) must canonicalize byte-identical to plain batch detection.
// Unlike the NDJSON path, the binary wire carries record bytes verbatim
// — no JSON UTF-8 rewriting on ingest — so even the line-fault corpora
// compare against local batch detection (normalized only for the JSON
// report endpoint), pipelined and sharded across three connections.
func TestStreamServeConformance(t *testing.T) {
	for _, spec := range conformance.DefaultMatrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			corpus := spec.Generate()
			m := conformance.ModelFor(spec.Framework)
			want := canonicalizeServed(t, conformance.BatchPath(m.Detector(), corpus.Records))

			modelDir := t.TempDir()
			writeModel(t, modelDir, "acme", spec.Framework)
			srv, hs := bootServer(t, server.Config{
				ModelDir:         modelDir,
				DefaultFramework: spec.Framework,
				IngestWorkers:    4,
			})
			defer srv.Close()
			addr := bootStreamListener(t, srv)

			c := &server.Client{Base: hs.URL, Tenant: "acme"}
			res, err := c.ReplayStream(addr, corpus.Records, server.StreamReplayOptions{
				Batch: 48, Concurrency: 3, Window: 4,
			})
			if err != nil {
				t.Fatalf("stream replay: %v", err)
			}
			if res.Records != len(corpus.Records) {
				t.Fatalf("stream replay accepted %d records, corpus has %d", res.Records, len(corpus.Records))
			}
			if _, err := c.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			rep, err := c.Report()
			if err != nil {
				t.Fatalf("report: %v", err)
			}
			got, err := conformance.Canonicalize(&rep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stream-served report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
			}
		})
	}
}

// TestStreamKillRestartConformance is the crash drill over the binary
// protocol: half the corpus over a persistent connection, checkpoint,
// kill (which severs the live stream connections), boot a successor on
// the same state dir, replay the rest over a fresh connection, and
// require the combined two-life findings to canonicalize byte-identical
// to batch detection, with the anomaly cursor advancing across lives.
func TestStreamKillRestartConformance(t *testing.T) {
	spec := conformance.DefaultMatrix()[1] // spark-faulted
	corpus := spec.Generate()
	m := conformance.ModelFor(spec.Framework)
	want, err := conformance.Canonicalize(conformance.BatchPath(m.Detector(), corpus.Records))
	if err != nil {
		t.Fatal(err)
	}

	modelDir, stateDir := t.TempDir(), t.TempDir()
	writeModel(t, modelDir, "acme", spec.Framework)
	cfg := server.Config{
		ModelDir: modelDir, StateDir: stateDir,
		DefaultFramework: spec.Framework,
	}
	cut := len(corpus.Records) / 2

	srv1, hs1 := bootServer(t, cfg)
	addr1 := bootStreamListener(t, srv1)
	c1 := &server.Client{Base: hs1.URL, Tenant: "acme"}
	if _, err := c1.ReplayStream(addr1, corpus.Records[:cut], server.StreamReplayOptions{
		Batch: 64, Concurrency: 1, Window: 4,
	}); err != nil {
		t.Fatalf("first-life stream replay: %v", err)
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	preKill, err := c1.AllAnomalies()
	if err != nil {
		t.Fatalf("pre-kill anomalies: %v", err)
	}
	var maxSeq uint64
	for _, a := range preKill {
		if a.Seq <= maxSeq && maxSeq != 0 {
			t.Fatalf("pre-kill anomaly seqs not increasing: %d after %d", a.Seq, maxSeq)
		}
		maxSeq = a.Seq
	}
	hs1.Close()
	srv1.Kill() // severs the stream listener's live connections too

	srv2, hs2 := bootServer(t, cfg)
	defer srv2.Close()
	addr2 := bootStreamListener(t, srv2)
	c2 := &server.Client{Base: hs2.URL, Tenant: "acme"}
	if _, err := c2.ReplayStream(addr2, corpus.Records[cut:], server.StreamReplayOptions{
		Batch: 64, Concurrency: 1, Window: 4,
	}); err != nil {
		t.Fatalf("second-life stream replay: %v", err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}

	page, err := c2.Anomalies(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range page.Anomalies {
		if a.Seq <= maxSeq && maxSeq > 0 {
			t.Fatalf("post-restart seq %d does not advance past pre-kill max %d", a.Seq, maxSeq)
		}
	}

	rep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	combined := detect.Report{Sessions: rep.Sessions}
	for _, a := range preKill {
		combined.Anomalies = append(combined.Anomalies, a.Anomaly)
	}
	combined.Anomalies = append(combined.Anomalies, rep.Anomalies...)
	got, err := conformance.Canonicalize(&combined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream kill/restart report diverges from batch detection\nbatch:\n%s\nserved:\n%s", want, got)
	}
}
