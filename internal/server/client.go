package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

// Client talks to an intellogd server for one tenant. It is the
// programmatic face of the wire protocol, shared by the replay/bench
// subcommand and the e2e conformance tests.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:7171".
	Base string
	// Tenant names the model on the server.
	Tenant string
	// HTTP is the underlying client; defaults to a 30s-timeout client.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string, q url.Values) string {
	if q == nil {
		q = url.Values{}
	}
	q.Set("tenant", c.Tenant)
	return c.Base + path + "?" + q.Encode()
}

// apiError decodes an error response body.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

// batchBufs recycles NDJSON batch buffers across IngestRecords calls —
// the replay path posts thousands of ~100KB batches, and re-growing a
// fresh buffer for each is pure GC load. A buffer goes back to the pool
// only after the POST has fully consumed it.
var batchBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ErrQueueFull reports a 429 from /v1/ingest together with the server's
// requested backoff.
type ErrQueueFull struct {
	RetryAfter time.Duration
}

func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("server queue full (retry after %s)", e.RetryAfter)
}

// IngestRecords posts one NDJSON batch of structured records. A full
// queue returns ErrQueueFull carrying the server's Retry-After.
func (c *Client) IngestRecords(recs []logging.Record) (IngestResponse, error) {
	buf := batchBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer batchBufs.Put(buf)
	var enc *json.Encoder
	for i := range recs {
		// Build lines through the shared fast appender; encoding/json
		// handles the rare record it declines (escapes, non-ASCII).
		if out, ok := appendWireRecord(buf.AvailableBuffer(), &recs[i]); ok {
			buf.Write(out)
			continue
		}
		if enc == nil {
			enc = json.NewEncoder(buf)
		}
		if err := enc.Encode(&recs[i]); err != nil {
			return IngestResponse{}, err
		}
	}
	resp, err := c.http().Post(c.url("/v1/ingest", nil), "application/x-ndjson", buf)
	if err != nil {
		return IngestResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				retry = time.Duration(n) * time.Second
			}
		}
		io.Copy(io.Discard, resp.Body)
		return IngestResponse{}, ErrQueueFull{RetryAfter: retry}
	}
	if resp.StatusCode != http.StatusAccepted {
		return IngestResponse{}, apiError(resp)
	}
	var out IngestResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Flush finalizes every in-flight session on the server.
func (c *Client) Flush() (FlushResponse, error) {
	resp, err := c.http().Post(c.url("/v1/flush", nil), "application/json", nil)
	if err != nil {
		return FlushResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return FlushResponse{}, apiError(resp)
	}
	var out FlushResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Checkpoint forces a checkpoint at the current ingest cut.
func (c *Client) Checkpoint() error {
	resp, err := c.http().Post(c.url("/v1/checkpoint", nil), "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Report fetches the tenant's cumulative detection report.
func (c *Client) Report() (detect.Report, error) {
	resp, err := c.http().Get(c.url("/v1/report", nil))
	if err != nil {
		return detect.Report{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return detect.Report{}, apiError(resp)
	}
	var out detect.Report
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Anomalies fetches one page of anomalies after the given cursor.
func (c *Client) Anomalies(since uint64, limit int) (AnomaliesResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	resp, err := c.http().Get(c.url("/v1/anomalies", q))
	if err != nil {
		return AnomaliesResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return AnomaliesResponse{}, apiError(resp)
	}
	var out AnomaliesResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// AllAnomalies pages through the anomaly log from cursor 0.
func (c *Client) AllAnomalies() ([]SeqAnomaly, error) {
	var all []SeqAnomaly
	var since uint64
	for {
		page, err := c.Anomalies(since, 1000)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Anomalies...)
		if len(page.Anomalies) == 0 || page.Next == since {
			return all, nil
		}
		since = page.Next
	}
}

// Clusters fetches one page of anomaly clusters after the given
// cluster-ID cursor.
func (c *Client) Clusters(since uint64, limit int) (ClustersResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	resp, err := c.http().Get(c.url("/v1/anomalies/clusters", q))
	if err != nil {
		return ClustersResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ClustersResponse{}, apiError(resp)
	}
	var out ClustersResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Explain fetches the root-cause localization for one retained anomaly.
func (c *Client) Explain(seq uint64) (ExplainResponse, error) {
	path := "/v1/anomalies/" + strconv.FormatUint(seq, 10) + "/explain"
	resp, err := c.http().Get(c.url(path, nil))
	if err != nil {
		return ExplainResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ExplainResponse{}, apiError(resp)
	}
	var out ExplainResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Rollups fetches one page of time-bucketed rollups after the given
// window-start cursor (unix seconds).
func (c *Client) Rollups(since int64, limit int) (RollupsResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatInt(since, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	resp, err := c.http().Get(c.url("/v1/rollups", q))
	if err != nil {
		return RollupsResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RollupsResponse{}, apiError(resp)
	}
	var out RollupsResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// DLQ fetches one page of the tenant's dead-letter queue.
func (c *Client) DLQ(since uint64, limit int) (DLQResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	resp, err := c.http().Get(c.url("/v1/dlq", q))
	if err != nil {
		return DLQResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return DLQResponse{}, apiError(resp)
	}
	var out DLQResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// DLQRequeue asks the server to re-validate and re-enqueue dead
// letters: the named seqs, or everything live when seqs is empty.
func (c *Client) DLQRequeue(seqs []uint64) (RequeueResponse, error) {
	body, err := json.Marshal(RequeueRequest{Seqs: seqs})
	if err != nil {
		return RequeueResponse{}, err
	}
	resp, err := c.http().Post(c.url("/v1/dlq/requeue", nil), "application/json", bytes.NewReader(body))
	if err != nil {
		return RequeueResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RequeueResponse{}, apiError(resp)
	}
	var out RequeueResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http().Get(c.Base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Healthz probes liveness.
func (c *Client) Healthz() error {
	resp, err := c.http().Get(c.Base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// WaitReady polls /healthz until the server answers or the deadline
// passes — for scripts that boot the daemon and immediately drive it.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = c.Healthz(); lastErr == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not ready after %s: %w", timeout, lastErr)
}
