package server

import (
	"sync"

	"intellog/internal/detect"
)

// anomalyLog is one tenant's append-only anomaly history, addressed by
// the streaming detector's emission sequence numbers (Anomaly.Seq). It
// backs the cursor-paginated /v1/anomalies endpoint and the cumulative
// /v1/report view. Retention is bounded: past maxRetain entries the
// oldest are trimmed, and a cursor pointing before the retained window
// simply resumes at its start (the response reports how many findings
// the window has dropped, so clients can tell a gap from a quiet
// stream).
type anomalyLog struct {
	mu sync.Mutex
	// entries[i] holds the anomaly with Seq == first + i: the detector
	// stamps gaplessly and the tenant worker appends in emission order,
	// so the log is dense and seq→index is O(1) arithmetic.
	entries []detect.Anomaly
	// first is the Seq of entries[0]; zero while the log is empty.
	first uint64
	// trimmed counts entries dropped by retention since startup.
	trimmed uint64
	// maxRetain bounds len(entries); ≤ 0 means unbounded.
	maxRetain int
}

func newAnomalyLog(maxRetain int) *anomalyLog {
	return &anomalyLog{maxRetain: maxRetain}
}

// append records stamped anomalies in emission order.
func (l *anomalyLog) append(as []detect.Anomaly) {
	if len(as) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		l.first = as[0].Seq
	}
	l.entries = append(l.entries, as...)
	if l.maxRetain > 0 && len(l.entries) > l.maxRetain {
		drop := len(l.entries) - l.maxRetain
		l.entries = append(l.entries[:0], l.entries[drop:]...)
		l.first += uint64(drop)
		l.trimmed += uint64(drop)
	}
}

// SeqAnomaly is one anomaly with its cursor, as served to clients.
type SeqAnomaly struct {
	Seq     uint64         `json:"seq"`
	Anomaly detect.Anomaly `json:"anomaly"`
}

// after returns up to limit anomalies with Seq > since, the cursor to
// pass next (the max Seq returned, or since when nothing matched), and
// the total count retention has dropped. limit ≤ 0 means no page bound.
func (l *anomalyLog) after(since uint64, limit int) (out []SeqAnomaly, next uint64, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next = since
	dropped = l.trimmed
	if len(l.entries) == 0 {
		return nil, next, dropped
	}
	start := 0
	if since >= l.first {
		// Keep the offset in uint64 and clamp before converting: a
		// client-supplied cursor near MaxUint64 must land past the end,
		// not overflow int and panic indexing.
		d := since - l.first
		if d >= uint64(len(l.entries)) {
			start = len(l.entries)
		} else {
			start = int(d) + 1
		}
	}
	for i := start; i < len(l.entries); i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		a := l.entries[i]
		out = append(out, SeqAnomaly{Seq: a.Seq, Anomaly: a})
		next = a.Seq
	}
	return out, next, dropped
}

// all copies the retained anomalies in emission order.
func (l *anomalyLog) all() []detect.Anomaly {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]detect.Anomaly(nil), l.entries...)
}

// len returns the retained count.
func (l *anomalyLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
