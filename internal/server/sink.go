package server

import (
	"sync"

	"intellog/internal/detect"
)

// anomalyLog is one tenant's append-only anomaly history, addressed by
// the streaming detector's emission sequence numbers (Anomaly.Seq). It
// backs the cursor-paginated /v1/anomalies endpoint and the cumulative
// /v1/report view. Retention is bounded: past maxRetain entries the
// oldest are trimmed, and a cursor pointing before the retained window
// simply resumes at its start (the response reports how many findings
// the window has dropped, so clients can tell a gap from a quiet
// stream).
type anomalyLog struct {
	mu sync.Mutex
	// entries[i] holds the anomaly with Seq == first + i: the detector
	// stamps gaplessly and entries only leave pending in seq order, so
	// the log is dense and seq→index is O(1) arithmetic.
	entries []detect.Anomaly
	// first is the Seq of entries[0]; zero while the log is empty.
	first uint64
	// nextSeq is the seq the dense log admits next. Primed by the tenant
	// from its detector's cursor (prime), so restored tenants continue
	// where the checkpoint left off.
	nextSeq uint64
	// pending parks findings a fast worker appended ahead of a slower
	// worker's lower-seq findings (possible with IngestWorkers > 1); they
	// move to the dense log the moment the gap fills, so readers never
	// see seq go backwards. Nil until first needed.
	pending map[uint64]detect.Anomaly
	// trimmed counts entries dropped by retention since startup.
	trimmed uint64
	// maxRetain bounds len(entries); ≤ 0 means unbounded.
	maxRetain int
	// onAdmit, when set, receives every anomaly the moment the dense log
	// admits it (in seq order, exactly once — duplicates below the cursor
	// never reach it). It is the analytics engine's feed point: retention
	// trimming happens after admission, so aggregation sees the full
	// stream even when the queryable window is bounded. Set before any
	// appends (newTenant wires it ahead of WAL replay and worker start)
	// and invoked outside the log's lock.
	onAdmit func([]detect.Anomaly)
}

func newAnomalyLog(maxRetain int) *anomalyLog {
	return &anomalyLog{maxRetain: maxRetain}
}

// prime sets the next seq the log admits (the detector's cursor + 1).
func (l *anomalyLog) prime(next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq = next
}

// append records stamped anomalies. Appends may arrive out of emission
// order across the ingest worker pool; in-order findings land in the
// dense log immediately, ahead-of-order ones park in pending until the
// missing seqs arrive (they always do: every stamped anomaly is appended
// by the worker that consumed its record before that worker takes more
// work, and control barriers quiesce the pool).
func (l *anomalyLog) append(as []detect.Anomaly) {
	if len(as) == 0 {
		return
	}
	var admitted []detect.Anomaly
	l.mu.Lock()
	for i := range as {
		a := as[i]
		if l.nextSeq == 0 {
			// Unprimed (zero-value log in tests): admit from the first
			// append's leading seq.
			l.nextSeq = a.Seq
		}
		switch {
		case a.Seq == l.nextSeq:
			l.push(a)
			admitted = append(admitted, a)
			l.nextSeq++
			for {
				p, ok := l.pending[l.nextSeq]
				if !ok {
					break
				}
				delete(l.pending, l.nextSeq)
				l.push(p)
				admitted = append(admitted, p)
				l.nextSeq++
			}
		case a.Seq > l.nextSeq:
			if l.pending == nil {
				l.pending = map[uint64]detect.Anomaly{}
			}
			l.pending[a.Seq] = a
		default:
			// Below the admitted cursor: a duplicate; drop it.
		}
	}
	cb := l.onAdmit
	l.mu.Unlock()
	if cb != nil && len(admitted) > 0 {
		cb(admitted)
	}
}

// push appends one in-order anomaly to the dense log and applies
// retention. Caller holds mu.
func (l *anomalyLog) push(a detect.Anomaly) {
	if len(l.entries) == 0 {
		l.first = a.Seq
	}
	l.entries = append(l.entries, a)
	if l.maxRetain > 0 && len(l.entries) > l.maxRetain {
		drop := len(l.entries) - l.maxRetain
		l.entries = append(l.entries[:0], l.entries[drop:]...)
		l.first += uint64(drop)
		l.trimmed += uint64(drop)
	}
}

// SeqAnomaly is one anomaly with its cursor, as served to clients.
type SeqAnomaly struct {
	Seq     uint64         `json:"seq"`
	Anomaly detect.Anomaly `json:"anomaly"`
}

// after returns up to limit anomalies with Seq > since, the cursor to
// pass next (the max Seq returned, or since when nothing matched), and
// the total count retention has dropped. limit ≤ 0 means no page bound.
func (l *anomalyLog) after(since uint64, limit int) (out []SeqAnomaly, next uint64, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next = since
	dropped = l.trimmed
	if len(l.entries) == 0 {
		return nil, next, dropped
	}
	start := 0
	if since >= l.first {
		// Keep the offset in uint64 and clamp before converting: a
		// client-supplied cursor near MaxUint64 must land past the end,
		// not overflow int and panic indexing.
		d := since - l.first
		if d >= uint64(len(l.entries)) {
			start = len(l.entries)
		} else {
			start = int(d) + 1
		}
	}
	for i := start; i < len(l.entries); i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		a := l.entries[i]
		out = append(out, SeqAnomaly{Seq: a.Seq, Anomaly: a})
		next = a.Seq
	}
	return out, next, dropped
}

// all copies the retained anomalies in emission order.
func (l *anomalyLog) all() []detect.Anomaly {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]detect.Anomaly(nil), l.entries...)
}

// len returns the retained count.
func (l *anomalyLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// trimmedCount returns how many entries retention has dropped.
func (l *anomalyLog) trimmedCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimmed
}

// get returns the anomaly at seq, if still retained.
func (l *anomalyLog) get(seq uint64) (detect.Anomaly, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 || seq < l.first {
		return detect.Anomaly{}, false
	}
	d := seq - l.first
	if d >= uint64(len(l.entries)) {
		return detect.Anomaly{}, false
	}
	return l.entries[d], true
}
