package server

import (
	"encoding/binary"
	"time"

	"intellog/internal/logging"
	"intellog/internal/wal"
)

// This file is the length-prefixed binary ingest protocol ("ILS1") that
// intellogd serves beside NDJSON HTTP. A client opens a persistent TCP
// connection, writes the 4-byte magic and a Hello frame naming the
// tenant, and then streams Batch frames of structured records; the
// server answers every frame with an Ack carrying the same admission
// semantics as /v1/ingest (202 accepted, 429 queue-full + retry hint,
// 413 over-budget, 400 malformed) plus 425 for frames refused only
// because an earlier frame must be retransmitted first (go-back-N, so
// per-session record order survives pipelining).
//
// Every frame is
//
//	u32  LE payload length n (= 1 type byte + body + 4 CRC bytes)
//	u8   frame type
//	...  body (n-5 bytes)
//	u32  LE CRC-32 (IEEE) over type byte + body
//
// Bodies use fixed-width little-endian integers for timestamps, varints
// for small counts, and uvarint-length-prefixed raw bytes for strings.
// Record timestamps travel as UnixNano plus the zone offset in seconds,
// which round-trips everything RFC3339 can express (the JSON wire
// form's fidelity); the zero time.Time is a sentinel since its UnixNano
// is out of range. The decode side never trusts a length without
// bounds-checking it first — a truncated, oversized or corrupt frame is
// an error, never a panic or over-read (FuzzWireFrame pins this).

// streamMagic opens every binary ingest connection.
const streamMagic = "ILS1"

// streamVersion is the protocol revision carried in Hello.
const streamVersion = 1

// Frame types.
const (
	frameHello byte = 1 // client → server: version, tenant, framework
	frameBatch byte = 2 // client → server: seq + records
	frameAck   byte = 3 // server → client: per-frame admission verdict
)

// Ack statuses (HTTP codes where one exists, so the two wire forms stay
// one vocabulary).
const (
	ackAccepted   = 202 // batch queued
	ackBadRecord  = 400 // malformed record (empty message)
	ackTooLarge   = 413 // batch exceeds the whole queue budget
	ackRetryEarly = 425 // refused: an earlier refused frame must be resent first
	ackQueueFull  = 429 // admission refused, retry after retryMs
	ackShutdown   = 503 // server draining; the connection is closing
)

// maxWireFrame bounds a frame a peer will accept regardless of
// configuration — the decode-side allocation cap.
const maxWireFrame = wal.MaxFrame

// zeroTimeNano is the on-wire sentinel for the zero time.Time, whose
// UnixNano is undefined (year 1 is outside the int64-nanosecond range).
const zeroTimeNano = wal.ZeroTimeNano

// errWire marks protocol-level decode failures (distinct from I/O
// errors, which pass through unwrapped). The frame envelope and body
// primitives now live in internal/wal — the write-ahead log persists
// entries in the same CRC-framed vocabulary, so one implementation
// covers the wire and the disk; these bindings keep the server-side
// vocabulary in place.
var errWire = wal.ErrWire

func wireErrf(format string, args ...any) error {
	return wal.Errf(format, args...)
}

var (
	appendFrame = wal.AppendFrame
	readFrame   = wal.ReadFrame

	wireUvarint     = wal.Uvarint
	wireVarint      = wal.Varint
	wireBytes       = wal.Bytes
	appendWireBytes = wal.AppendString
)

// --- Hello -------------------------------------------------------------

// appendHello builds a Hello frame body.
func appendHello(dst []byte, tenant string, fw logging.Framework) []byte {
	dst = append(dst, streamVersion)
	dst = appendWireBytes(dst, tenant)
	return appendWireBytes(dst, string(fw))
}

// parseHello decodes a Hello body.
func parseHello(p []byte) (tenant string, fw logging.Framework, err error) {
	if len(p) < 1 {
		return "", "", wireErrf("hello: empty body")
	}
	if v := p[0]; v != streamVersion {
		return "", "", wireErrf("hello: unsupported version %d", v)
	}
	p = p[1:]
	tb, p, ok := wireBytes(p)
	if !ok {
		return "", "", wireErrf("hello: bad tenant")
	}
	fb, p, ok := wireBytes(p)
	if !ok {
		return "", "", wireErrf("hello: bad framework")
	}
	if len(p) != 0 {
		return "", "", wireErrf("hello: %d trailing bytes", len(p))
	}
	return string(tb), logging.Framework(fb), nil
}

// --- Batch -------------------------------------------------------------

// appendBatch builds a Batch frame body from structured records.
func appendBatch(dst []byte, seq uint64, recs []logging.Record) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for i := range recs {
		dst = wal.AppendRecord(dst, &recs[i])
	}
	return dst
}

// batchResolver materializes a decoded record's strings. intern dedups
// the small repeating fields (session IDs, sources); msg, when set,
// resolves message bytes against an interned rendering the model
// already owns (the lookup cache), so repeats cost no allocation at
// all. A nil resolver plain-copies everything.
type batchResolver struct {
	intern *wireIntern
	msg    func([]byte) string
}

func (br *batchResolver) message(b []byte) string {
	if br != nil && br.msg != nil {
		return br.msg(b)
	}
	return string(b)
}

func (br *batchResolver) small(b []byte) string {
	if br == nil {
		return string(b)
	}
	return br.intern.get(b)
}

// decodeBatch decodes a Batch body, appending the records to recs. The
// record strings are materialized through br (the payload buffer is
// reused by the next frame, so views cannot escape).
func decodeBatch(p []byte, br *batchResolver, recs []logging.Record) (seq uint64, out []logging.Record, err error) {
	seq, p, ok := wireUvarint(p)
	if !ok {
		return 0, recs, wireErrf("batch: bad seq")
	}
	count, p, ok := wireUvarint(p)
	if !ok {
		return 0, recs, wireErrf("batch: bad record count")
	}
	// Each record costs ≥ 17 bytes on the wire; a count the remaining
	// body cannot possibly hold is malformed, not an allocation order.
	if count > uint64(len(p)/17)+1 {
		return 0, recs, wireErrf("batch: record count %d exceeds body", count)
	}
	if need := len(recs) + int(count); cap(recs) < need {
		grown := make([]logging.Record, len(recs), need)
		copy(grown, recs)
		recs = grown
	}
	for i := uint64(0); i < count; i++ {
		if len(p) < 12 {
			return 0, recs, wireErrf("batch: record %d truncated", i)
		}
		nano := int64(binary.LittleEndian.Uint64(p))
		off := int32(binary.LittleEndian.Uint32(p[8:]))
		p = p[12:]
		lvl, rest, ok := wireVarint(p)
		if !ok {
			return 0, recs, wireErrf("batch: record %d: bad level", i)
		}
		p = rest
		var rec logging.Record
		rec.Level = logging.Level(lvl)
		if nano != zeroTimeNano {
			t := time.Unix(0, nano)
			if off == 0 {
				rec.Time = t.UTC()
			} else {
				rec.Time = t.In(time.FixedZone("", int(off)))
			}
		}
		var b []byte
		if b, p, ok = wireBytes(p); !ok {
			return 0, recs, wireErrf("batch: record %d: bad source", i)
		}
		rec.Source = br.small(b)
		if b, p, ok = wireBytes(p); !ok {
			return 0, recs, wireErrf("batch: record %d: bad message", i)
		}
		rec.Message = br.message(b)
		if b, p, ok = wireBytes(p); !ok {
			return 0, recs, wireErrf("batch: record %d: bad framework", i)
		}
		rec.Framework = logging.Framework(br.small(b))
		if b, p, ok = wireBytes(p); !ok {
			return 0, recs, wireErrf("batch: record %d: bad session", i)
		}
		rec.SessionID = br.small(b)
		if b, p, ok = wireBytes(p); !ok {
			return 0, recs, wireErrf("batch: record %d: bad template", i)
		}
		rec.TemplateID = br.small(b)
		recs = append(recs, rec)
	}
	if len(p) != 0 {
		return 0, recs, wireErrf("batch: %d trailing bytes", len(p))
	}
	return seq, recs, nil
}

// --- Ack ---------------------------------------------------------------

// streamAck is one server verdict for one client frame.
type streamAck struct {
	Seq      uint64 // echoes the batch seq (0 for the hello ack)
	Status   int    // ackAccepted, ackQueueFull, ...
	Accepted int
	Skipped  int
	Dead     int    // records dead-lettered out of an accepted batch
	RetryMs  int    // backoff hint, set with ackQueueFull
	Msg      string // human-readable detail on errors
}

// appendAck builds an Ack frame body.
func appendAck(dst []byte, a streamAck) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, uint64(a.Status))
	dst = binary.AppendUvarint(dst, uint64(a.Accepted))
	dst = binary.AppendUvarint(dst, uint64(a.Skipped))
	dst = binary.AppendUvarint(dst, uint64(a.Dead))
	dst = binary.AppendUvarint(dst, uint64(a.RetryMs))
	return appendWireBytes(dst, a.Msg)
}

// parseAck decodes an Ack body.
func parseAck(p []byte) (streamAck, error) {
	var a streamAck
	var ok bool
	if a.Seq, p, ok = wireUvarint(p); !ok {
		return a, wireErrf("ack: bad seq")
	}
	var v uint64
	if v, p, ok = wireUvarint(p); !ok || v > 999 {
		return a, wireErrf("ack: bad status")
	}
	a.Status = int(v)
	if v, p, ok = wireUvarint(p); !ok || v > uint64(maxWireFrame) {
		return a, wireErrf("ack: bad accepted count")
	}
	a.Accepted = int(v)
	if v, p, ok = wireUvarint(p); !ok || v > uint64(maxWireFrame) {
		return a, wireErrf("ack: bad skipped count")
	}
	a.Skipped = int(v)
	if v, p, ok = wireUvarint(p); !ok || v > uint64(maxWireFrame) {
		return a, wireErrf("ack: bad dead count")
	}
	a.Dead = int(v)
	if v, p, ok = wireUvarint(p); !ok || v > 1<<30 {
		return a, wireErrf("ack: bad retry hint")
	}
	a.RetryMs = int(v)
	var b []byte
	if b, p, ok = wireBytes(p); !ok {
		return a, wireErrf("ack: bad message")
	}
	a.Msg = string(b)
	if len(p) != 0 {
		return a, wireErrf("ack: %d trailing bytes", len(p))
	}
	return a, nil
}
