package experiments

import (
	"fmt"
	"sort"
	"strings"

	"intellog/internal/detect"
	"intellog/internal/extract"
	"intellog/internal/intelstore"
	"intellog/internal/logging"
	"intellog/internal/sim"
)

// CaseStudy records one Table 7 walkthrough.
type CaseStudy struct {
	Name              string
	SessionsTotal     int
	SessionsReported  int
	Steps             []string
	RootCauseIsolated bool
}

// Format renders the case study.
func (c CaseStudy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "case %q: sessions D/T = %d/%d, root cause isolated: %v\n",
		c.Name, c.SessionsReported, c.SessionsTotal, c.RootCauseIsolated)
	for _, s := range c.Steps {
		fmt.Fprintf(&b, "  - %s\n", s)
	}
	return b.String()
}

// CaseStudy1 reproduces case 1: a MapReduce WordCount job hits a network
// problem on one host; the GroupBy drill-down over the unexpected Intel
// Messages isolates the failing host.
func (e *Env) CaseStudy1() CaseStudy {
	m := e.Model(logging.MapReduce)
	spec := sim.JobSpec{Framework: logging.MapReduce, Name: "WordCount",
		InputMB: 30 * 1024, Containers: 32, CoresPerContainer: 8, MemoryMB: 4096}
	res := e.Cluster.RunJob(spec, sim.FaultNetwork)

	cs := CaseStudy{Name: "MR WordCount / network problem", SessionsTotal: len(res.Sessions)}
	report := m.Detect(res.Sessions)
	cs.SessionsReported = len(report.ProblematicSessions())
	cs.Steps = append(cs.Steps, fmt.Sprintf("IntelLog reports %d problematic sessions out of %d",
		cs.SessionsReported, cs.SessionsTotal))

	// Transform the unexpected messages to Intel Messages and check their
	// entity group.
	var unexpected []*extract.Message
	groups := map[string]bool{}
	for _, a := range report.ByKind(detect.UnexpectedMessage) {
		if a.Extracted != nil {
			unexpected = append(unexpected, a.Extracted)
			groups[a.Group] = true
		}
	}
	cs.Steps = append(cs.Steps, fmt.Sprintf("%d unexpected messages, entity groups: %v",
		len(unexpected), keysOf(groups)))

	store := intelstore.New(unexpected)
	byFetcher := store.GroupByIdentifier("FETCHER")
	cs.Steps = append(cs.Steps, fmt.Sprintf("GroupBy FETCHER -> %d groups with connection failures", len(byFetcher)))
	byAddr := store.GroupByLocality("ADDR")
	cs.Steps = append(cs.Steps, fmt.Sprintf("GroupBy ADDR -> %d group(s): %v", len(byAddr), keysOfStores(byAddr)))
	cs.RootCauseIsolated = len(byAddr) == 1 && len(byFetcher) >= 1
	return cs
}

// CaseStudy2 reproduces case 2: Spark KMeans and Tez Query 8 finish
// successfully but spill to disk; IntelLog surfaces the new 'spill'
// entity, and a re-run with a larger memory limit passes clean.
func (e *Env) CaseStudy2() (spark, tez CaseStudy) {
	run := func(fw logging.Framework, name string, memoryMB int) CaseStudy {
		m := e.Model(fw)
		spec := sim.JobSpec{Framework: fw, Name: name, InputMB: 4096,
			Containers: 8, CoresPerContainer: 4, MemoryMB: memoryMB}
		res := e.Cluster.RunJob(spec, sim.FaultSpill)
		cs := CaseStudy{Name: string(fw) + " " + name + " / performance issue",
			SessionsTotal: len(res.Sessions)}
		report := m.Detect(res.Sessions)
		cs.SessionsReported = len(report.ProblematicSessions())
		spillEntity := false
		diskPath := false
		for _, a := range report.ByKind(detect.UnexpectedMessage) {
			if a.Extracted == nil {
				continue
			}
			for _, en := range a.Extracted.Entities {
				if strings.Contains(en, "spill") {
					spillEntity = true
				}
			}
			if len(a.Extracted.Localities["PATH"]) > 0 {
				diskPath = true
			}
		}
		cs.Steps = append(cs.Steps,
			fmt.Sprintf("new entity 'spill' extracted from unexpected messages: %v", spillEntity),
			fmt.Sprintf("unexpected messages record a disk path: %v", diskPath))

		// Verification run: same configuration but a larger memory limit.
		// The spill messages must disappear (sporadic unrelated findings may
		// remain — the paper's own FPs stem from rare in-distribution
		// orderings unseen in training).
		spec.MemoryMB *= 4
		clean := e.Cluster.RunJob(spec, sim.FaultNone)
		cleanReport := m.Detect(clean.Sessions)
		spillAfter := 0
		for _, a := range cleanReport.ByKind(detect.UnexpectedMessage) {
			if a.Extracted == nil {
				continue
			}
			for _, en := range a.Extracted.Entities {
				if strings.Contains(en, "spill") {
					spillAfter++
				}
			}
		}
		cs.Steps = append(cs.Steps, fmt.Sprintf("re-run with %dMB memory: %d spill messages, %d total findings",
			spec.MemoryMB, spillAfter, len(cleanReport.Anomalies)))
		cs.RootCauseIsolated = spillEntity && spillAfter == 0
		return cs
	}
	return run(logging.Spark, "KMeans", 2048), run(logging.Tez, "Query 8", 1024)
}

// CaseStudy3 reproduces case 3 (SPARK-19731): a Spark WordCount job
// finishes with no unexpected messages, but half the containers never ran
// a task; IntelLog reports the sessions whose 'task' entity group is
// absent.
func (e *Env) CaseStudy3() CaseStudy {
	m := e.Model(logging.Spark)
	spec := sim.JobSpec{Framework: logging.Spark, Name: "WordCount",
		InputMB: 512, Containers: 8, CoresPerContainer: 8, MemoryMB: 16384}
	res := e.Cluster.RunJob(spec, sim.FaultIdleContainers)

	cs := CaseStudy{Name: "Spark WordCount / SPARK-19731 idle containers",
		SessionsTotal: len(res.Sessions)}
	report := m.Detect(res.Sessions)

	unexpected := len(report.ByKind(detect.UnexpectedMessage))
	cs.Steps = append(cs.Steps, fmt.Sprintf("unexpected log messages: %d (the job succeeded)", unexpected))

	missingTask := map[string]bool{}
	for _, a := range report.ByKind(detect.MissingGroup) {
		if a.Group == "task" {
			missingTask[a.Session] = true
		}
	}
	cs.SessionsReported = len(missingTask)
	cs.Steps = append(cs.Steps, fmt.Sprintf("%d/%d sessions contain no message of the 'task' entity group",
		len(missingTask), len(res.Sessions)))
	cs.RootCauseIsolated = unexpected == 0 && len(missingTask) == len(res.Affected) && len(missingTask) > 0
	return cs
}

func keysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysOfStores(m map[string]*intelstore.Store) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
