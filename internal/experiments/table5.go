package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/logging"
)

// GraphStatsRow is one Table 5 row: session lengths vs HW-graph sizes.
type GraphStatsRow struct {
	System        string
	AvgSessionLen float64
	Groups        int
	CritGroups    int
	MaxSubLen     int
	AvgSubAll     float64
	AvgSubCrit    float64
}

// Table5 measures the paper's five Table 5 metrics over the trained
// HW-graph and the training sessions.
func (e *Env) Table5(fw logging.Framework) GraphStatsRow {
	m := e.Model(fw)
	sessions := e.Training(fw)

	totalLen := 0
	for _, s := range sessions {
		totalLen += s.Len()
	}
	row := GraphStatsRow{System: string(fw)}
	if len(sessions) > 0 {
		row.AvgSessionLen = float64(totalLen) / float64(len(sessions))
	}

	critical := map[string]bool{}
	for _, g := range m.Graph.CriticalGroups() {
		critical[g] = true
	}
	row.Groups = len(m.Graph.Nodes)
	row.CritGroups = len(critical)

	subsAll, lenAll := 0, 0
	subsCrit, lenCrit := 0, 0
	for name, node := range m.Graph.Nodes {
		for _, sub := range node.Subroutines {
			n := len(sub.Keys)
			subsAll++
			lenAll += n
			if n > row.MaxSubLen {
				row.MaxSubLen = n
			}
			if critical[name] {
				subsCrit++
				lenCrit += n
			}
		}
	}
	if subsAll > 0 {
		row.AvgSubAll = float64(lenAll) / float64(subsAll)
	}
	if subsCrit > 0 {
		row.AvgSubCrit = float64(lenCrit) / float64(subsCrit)
	}
	return row
}

// FormatTable5 renders the rows like the paper's Table 5.
func FormatTable5(rows []GraphStatsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s %26s\n",
		"System", "session len", "groups all/crit", "sub len max / avg / avg-crit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.0f %9d / %-4d %12d / %.1f / %.1f\n",
			r.System, r.AvgSessionLen, r.Groups, r.CritGroups,
			r.MaxSubLen, r.AvgSubAll, r.AvgSubCrit)
	}
	return b.String()
}
