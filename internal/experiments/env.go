// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the simulated cluster: Table 1 (NL-log fractions),
// Figures 1/3/4 (extraction walkthroughs), Table 4 (extraction accuracy),
// Table 5 (HW-graph statistics), Figures 8/9 (Spark HW-graph and S³
// graph), Table 6 (anomaly detection), Table 7 (case studies) and Table 8
// (IntelLog vs DeepLog vs LogCluster). Absolute numbers differ from the
// paper (different substrate); the shapes are the reproduction target —
// see EXPERIMENTS.md.
package experiments

import (
	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

// Env is a shared experiment environment: one simulated cluster and
// workload generator per run, with cached trained models.
type Env struct {
	Cluster *sim.Cluster
	Gen     *workload.Generator
	// TrainJobs is the number of clean jobs per system used for training.
	TrainJobs int

	models   map[logging.Framework]*core.Model
	training map[logging.Framework][]*logging.Session
}

// NewEnv builds an environment. trainJobs ≤ 0 defaults to 10.
func NewEnv(seed int64, trainJobs int) *Env {
	if trainJobs <= 0 {
		trainJobs = 10
	}
	cluster := sim.NewCluster(26, seed) // 26 workers + master, as in §6.1
	return &Env{
		Cluster:   cluster,
		Gen:       workload.NewGenerator(cluster, seed+1),
		TrainJobs: trainJobs,
		models:    map[logging.Framework]*core.Model{},
		training:  map[logging.Framework][]*logging.Session{},
	}
}

// Training returns (and caches) the clean training sessions for a system.
func (e *Env) Training(fw logging.Framework) []*logging.Session {
	if s, ok := e.training[fw]; ok {
		return s
	}
	s := e.Gen.TrainingCorpus(fw, e.TrainJobs)
	e.training[fw] = s
	return s
}

// Model returns (and caches) the trained IntelLog model for a system.
func (e *Env) Model(fw logging.Framework) *core.Model {
	if m, ok := e.models[fw]; ok {
		return m
	}
	m := core.Train(e.Training(fw), core.Config{})
	e.models[fw] = m
	return m
}

// Systems are the three targeted analytics systems.
var Systems = []logging.Framework{logging.Spark, logging.MapReduce, logging.Tez}
