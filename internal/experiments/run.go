package experiments

import (
	"fmt"
	"io"

	"intellog/internal/logging"
)

// RunOptions selects what Run regenerates.
type RunOptions struct {
	// Run selects one experiment by name, or "all" (and "") for the full
	// evaluation.
	Run string
	// TrainJobs is the number of training jobs per system (≤ 0 defaults to
	// 10, see NewEnv).
	TrainJobs int
	// Seed is the simulation seed.
	Seed int64
}

// RunNames lists the accepted RunOptions.Run values (minus "all").
var RunNames = []string{
	"table1", "figure1", "figure3", "figure4", "table4", "table5",
	"figure8", "figure9", "table6", "table7", "table8", "ablations",
	"cloudseer", "tensorflow",
}

// Run regenerates the selected tables and figures of the paper's
// evaluation (§6) and writes them in the paper's layout. It is the body
// of cmd/experiments, exported so the conformance golden test regenerates
// the exact bytes the CLI prints. The output is deterministic for a fixed
// RunOptions: the simulation, workload draws and model training are all
// seeded, and every printed table renders from sorted state.
func Run(w io.Writer, opts RunOptions) error {
	if opts.Run == "" {
		opts.Run = "all"
	}

	env := NewEnv(opts.Seed, opts.TrainJobs)
	want := func(name string) bool { return opts.Run == "all" || opts.Run == name }
	section := func(title string) { fmt.Fprintf(w, "\n=== %s ===\n", title) }
	ran := false

	if want("table1") {
		ran = true
		section("Table 1: natural-language log fractions")
		fmt.Fprint(w, FormatTable1(env.Table1(3)))
	}
	if want("figure1") {
		ran = true
		section("Figure 1: fetcher subroutine log keys")
		fmt.Fprint(w, Figure1())
	}
	if want("figure3") {
		ran = true
		section("Figure 3: POS tagging via sample message")
		fmt.Fprint(w, Figure3())
	}
	if want("figure4") {
		ran = true
		section("Figure 4: log key -> Intel Key")
		fmt.Fprint(w, FormatFigure4(Figure4()))
	}
	if want("table4") {
		ran = true
		section("Table 4: information-extraction accuracy (vs simulator ground truth)")
		var rows []ExtractionRow
		for _, fw := range Systems {
			rows = append(rows, env.Table4(fw))
		}
		fmt.Fprint(w, FormatTable4(rows))
	}
	if want("table5") {
		ran = true
		section("Table 5: log and HW-graph statistics")
		var rows []GraphStatsRow
		for _, fw := range Systems {
			rows = append(rows, env.Table5(fw))
		}
		fmt.Fprint(w, FormatTable5(rows))
	}
	if want("figure8") {
		ran = true
		section("Figure 8(a): Spark HW-graph (critical groups starred)")
		fmt.Fprint(w, env.Figure8())
		section("Figure 8(b): subroutines of the critical groups (operations; * = critical key)")
		fmt.Fprint(w, env.Figure8b())
	}
	if want("figure9") {
		ran = true
		section("Figure 9: Stitch S3 graph of Spark")
		fmt.Fprint(w, env.Figure9())
	}
	if want("table6") {
		ran = true
		section("Table 6: anomaly detection (30 jobs per system, 15 injected)")
		var rows []DetectionRow
		for _, fw := range Systems {
			row, _ := env.Table6(fw)
			rows = append(rows, row)
		}
		fmt.Fprint(w, FormatTable6(rows))
	}
	if want("table7") {
		ran = true
		section("Table 7: case studies")
		fmt.Fprint(w, env.CaseStudy1().Format())
		s, z := env.CaseStudy2()
		fmt.Fprint(w, s.Format())
		fmt.Fprint(w, z.Format())
		fmt.Fprint(w, env.CaseStudy3().Format())
	}
	if want("table8") {
		ran = true
		section("Table 8: anomaly-detection comparison")
		fmt.Fprint(w, FormatTable8(env.Table8()))
	}
	if want("ablations") {
		ran = true
		section("Ablations")
		pts := env.AblationSpellThreshold(logging.MapReduce, nil)
		lw := env.AblationLastWords(logging.Spark)
		ck := env.AblationCriticalKeys(logging.Spark, 6)
		dl := env.AblationDeepLogTopG(logging.Spark, nil)
		fmt.Fprint(w, FormatAblations(pts, lw, ck, dl))
	}
	if want("cloudseer") {
		ran = true
		section("CloudSeer automaton claim (§8 related work)")
		fmt.Fprint(w, env.CloudSeerExperiment().Format())
	}
	if want("tensorflow") {
		ran = true
		section("TensorFlow extension (§9 future work)")
		fmt.Fprint(w, env.TensorFlowExtension(opts.TrainJobs/2).Format())
	}
	if !ran {
		return fmt.Errorf("unknown -run %q", opts.Run)
	}
	return nil
}
