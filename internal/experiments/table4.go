package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/extract"
	"intellog/internal/logging"
	"intellog/internal/nlp"
)

// Counts is a Total/FP/FN triple as reported in Table 4.
type Counts struct {
	Total, FP, FN int
}

func (c Counts) String() string { return fmt.Sprintf("%d / %d / %d", c.Total, c.FP, c.FN) }

// ExtractionRow is one Table 4 row.
type ExtractionRow struct {
	System    string
	Consumed  int
	IntelKeys int
	Entities  Counts
	IDs       Counts
	Values    Counts
	Locs      Counts
	OpsTotal  int
	OpsMissed int
}

// Table4 scores information extraction for one system against the
// simulator's template annotations: the ground truth plays the role of
// the paper's manual comparison against logging statements in the source.
func (e *Env) Table4(fw logging.Framework) ExtractionRow {
	m := e.Model(fw)
	sessions := e.Training(fw)

	// Map templates to the Intel Keys their messages matched.
	tplKeys := map[string]map[int]bool{}
	consumed := 0
	for _, s := range sessions {
		for i := range s.Records {
			rec := &s.Records[i]
			consumed++
			k := m.Parser.Lookup(nlp.Texts(nlp.Tokenize(rec.Message)))
			if k == nil {
				continue
			}
			if tplKeys[rec.TemplateID] == nil {
				tplKeys[rec.TemplateID] = map[int]bool{}
			}
			tplKeys[rec.TemplateID][k.ID] = true
		}
	}

	row := ExtractionRow{System: string(fw), Consumed: consumed, IntelKeys: len(m.Keys)}
	inv := e.Cluster.Inventory(fw)
	for _, tpl := range inv.Templates {
		keys := tplKeys[tpl.ID]
		if len(keys) == 0 || !tpl.NL {
			// §5: key-value dumps are pattern-matched and ignored, so they
			// are not scored for information extraction.
			continue
		}
		// Union the extraction results of every key the template produced.
		entities := map[string]bool{}
		nIDs, nVals, nLocs := 0, 0, 0
		preds := map[string]bool{}
		for id := range keys {
			ik := m.Keys[id]
			if ik == nil {
				continue
			}
			for _, e := range ik.Entities {
				entities[e] = true
			}
			ids, vals, locs := slotCounts(ik)
			nIDs = maxInt(nIDs, ids)
			nVals = maxInt(nVals, vals)
			nLocs = maxInt(nLocs, locs)
			for _, op := range ik.Operations {
				preds[op.Predicate] = true
			}
		}

		// Entities: set comparison against the annotation.
		gt := map[string]bool{}
		for _, g := range tpl.Entities {
			gt[g] = true
		}
		row.Entities.Total += len(gt)
		for g := range gt {
			if !entities[g] {
				row.Entities.FN++
			}
		}
		for ex := range entities {
			if !gt[ex] {
				row.Entities.FP++
			}
		}

		// Identifier/value/locality counts.
		scoreCounts(&row.IDs, len(tpl.IDFields), nIDs)
		scoreCounts(&row.Values, len(tpl.ValueFields), nVals)
		scoreCounts(&row.Locs, len(tpl.LocFields), nLocs)

		// Operations: predicate coverage; there are no FP operations by
		// construction (other fields cannot be categorized as operations).
		row.OpsTotal += len(tpl.Operations)
		for _, op := range tpl.Operations {
			if !preds[op.Predicate] {
				row.OpsMissed++
			}
		}
	}
	return row
}

// slotCounts counts a key's identifier, value and locality slots.
func slotCounts(ik *extract.IntelKey) (ids, vals, locs int) {
	for _, s := range ik.Slots {
		switch s.Kind {
		case extract.SlotIdentifier:
			ids++
		case extract.SlotValue:
			vals++
		case extract.SlotLocality:
			locs++
		}
	}
	return
}

// scoreCounts folds one template's field counts into a Counts cell.
func scoreCounts(c *Counts, gt, got int) {
	c.Total += gt
	if got > gt {
		c.FP += got - gt
	}
	if gt > got {
		c.FN += gt - got
	}
}

// FormatTable4 renders extraction rows like the paper's Table 4.
func FormatTable4(rows []ExtractionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %5s | %-12s | %-12s | %-12s | %-12s | %s\n",
		"System", "Consumed", "Keys", "Entities", "Identifiers", "Values", "Locations", "Ops (tot/miss)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9d %5d | %-12s | %-12s | %-12s | %-12s | %d / %d\n",
			r.System, r.Consumed, r.IntelKeys,
			r.Entities.String(), r.IDs.String(), r.Values.String(), r.Locs.String(),
			r.OpsTotal, r.OpsMissed)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
