package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

// JobClass labels a detection-corpus job for scoring.
type JobClass int

// Job classes: Injected problems count toward D/FN; Unexpected are real
// problems beyond the injection set (the paper's "(P/B)" column:
// performance issues and bugs); Clean jobs flagged are false positives.
const (
	ClassClean JobClass = iota
	ClassInjected
	ClassUnexpected
)

// LabeledJob pairs a simulated job with its scoring class.
type LabeledJob struct {
	Res   *sim.JobResult
	Class JobClass
}

// DetectionCorpus reproduces the §6.4 injection protocol: five config
// sets; per set, jobs injected with the three real-world problems plus
// non-injected jobs. For Spark, some non-injected jobs carry the benign
// slow-shutdown config effect (the paper's false-positive source) or the
// SPARK-19731 idle-container bug; Tez carries memory-limit spills
// (the paper's unexpected performance problems).
func (e *Env) DetectionCorpus(fw logging.Framework) []LabeledJob {
	var jobs []LabeledJob
	submit := func(cfg workload.ConfigSet, fault sim.FaultKind, class JobClass) {
		spec := e.Gen.SpecWithConfig(fw, cfg)
		jobs = append(jobs, LabeledJob{Res: e.Cluster.RunJob(spec, fault), Class: class})
	}
	for ci, cfg := range workload.DefaultConfigSets {
		submit(cfg, sim.FaultKill, ClassInjected)
		submit(cfg, sim.FaultNetwork, ClassInjected)
		submit(cfg, sim.FaultNode, ClassInjected)
		// Three non-injected jobs per config set.
		extra := [3]sim.FaultKind{sim.FaultNone, sim.FaultNone, sim.FaultNone}
		var classes [3]JobClass
		switch fw {
		case logging.Spark:
			if ci == 0 || ci == 2 {
				extra[0] = sim.FaultSlowShutdown // benign config effect → FP if flagged
			}
			if ci == 1 || ci == 3 {
				extra[1] = sim.FaultIdleContainers // the SPARK-19731 bug
				classes[1] = ClassUnexpected
			}
			if ci == 4 {
				extra[2] = sim.FaultSpill
				classes[2] = ClassUnexpected
			}
		case logging.Tez:
			if ci == 1 || ci == 3 || ci == 4 {
				extra[0] = sim.FaultSpill
				classes[0] = ClassUnexpected
			}
		}
		for i, f := range extra {
			submit(cfg, f, classes[i])
		}
	}
	return jobs
}

// DetectionRow is one Table 6 row.
type DetectionRow struct {
	System      string
	MinSessions int
	MaxSessions int
	MinLen      int
	MaxLen      int
	Detected    int // injected problems detected (D)
	FP          int // non-problem jobs flagged
	FN          int // injected problems missed
	PB          int // unexpected real problems detected ((P/B))
}

// Table6 runs IntelLog detection over the corpus and scores it at job
// granularity (a problem is detected when any of the job's sessions is
// reported).
func (e *Env) Table6(fw logging.Framework) (DetectionRow, []LabeledJob) {
	m := e.Model(fw)
	jobs := e.DetectionCorpus(fw)
	row := DetectionRow{System: string(fw), MinSessions: 1 << 30, MinLen: 1 << 30}
	for _, j := range jobs {
		ns := len(j.Res.Sessions)
		row.MinSessions = minInt(row.MinSessions, ns)
		row.MaxSessions = maxInt(row.MaxSessions, ns)
		for _, s := range j.Res.Sessions {
			row.MinLen = minInt(row.MinLen, s.Len())
			row.MaxLen = maxInt(row.MaxLen, s.Len())
		}
		flagged := len(m.Detect(j.Res.Sessions).Anomalies) > 0
		switch j.Class {
		case ClassInjected:
			if flagged {
				row.Detected++
			} else {
				row.FN++
			}
		case ClassUnexpected:
			if flagged {
				row.PB++
			}
		case ClassClean:
			if flagged {
				row.FP++
			}
		}
	}
	return row, jobs
}

// FormatTable6 renders rows like the paper's Table 6.
func FormatTable6(rows []DetectionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s %18s\n", "System", "sessions", "session len", "D / FP / FN / (P/B)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d~%-6d %6d~%-7d %5d / %d / %d / (%d)\n",
			r.System, r.MinSessions, r.MaxSessions, r.MinLen, r.MaxLen,
			r.Detected, r.FP, r.FN, r.PB)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
