package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/baselines/deeplog"
	"intellog/internal/core"
	"intellog/internal/group"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/sim"
	"intellog/internal/spell"
)

// SpellThresholdPoint is one point of the Spell-threshold ablation.
type SpellThresholdPoint struct {
	T    float64
	Keys int
}

// AblationSpellThreshold sweeps Spell's threshold t over one system's
// training corpus and reports the resulting key counts (the paper fixes
// t=1.7 empirically; this shows the sensitivity).
func (e *Env) AblationSpellThreshold(fw logging.Framework, ts []float64) []SpellThresholdPoint {
	if len(ts) == 0 {
		ts = []float64{1.1, 1.3, 1.5, 1.7, 2.0, 2.5, 3.0}
	}
	sessions := e.Training(fw)
	var out []SpellThresholdPoint
	for _, t := range ts {
		p := spell.NewParser(t)
		for _, s := range sessions {
			for i := range s.Records {
				p.Consume(nlp.Texts(nlp.Tokenize(s.Records[i].Message)))
			}
		}
		out = append(out, SpellThresholdPoint{T: t, Keys: len(p.Keys())})
	}
	return out
}

// MergeGuardAblation compares Spell with and without the constant-word
// merge guard.
type MergeGuardAblation struct {
	System string
	// GuardedKeys is the key count with the guard (this repo's default).
	GuardedKeys int
	// ClassicKeys is the count under the original LCS-only rule.
	ClassicKeys int
	// Conflated counts classic keys whose wildcards cover positions that
	// are constant words under the guarded parse — verb/entity text
	// erased by over-merging ("Registering …" with "Registered …").
	Conflated int
}

// AblationMergeGuard measures what the constant-word merge guard buys:
// without it, distinct logging statements that share most tokens merge
// into one key, erasing the semantic words IntelLog extracts from.
func (e *Env) AblationMergeGuard(fw logging.Framework) MergeGuardAblation {
	sessions := e.Training(fw)
	guarded := spell.NewParser(0)
	classic := spell.NewClassicParser(0)
	for _, s := range sessions {
		for i := range s.Records {
			toks := nlp.Texts(nlp.Tokenize(s.Records[i].Message))
			guarded.Consume(toks)
			classic.Consume(append([]string(nil), toks...))
		}
	}
	res := MergeGuardAblation{
		System:      string(fw),
		GuardedKeys: len(guarded.Keys()),
		ClassicKeys: len(classic.Keys()),
	}
	// A classic key is conflated when it wildcards a pure-alphabetic word
	// from its own sample — constant text a logging statement cannot vary.
	for _, k := range classic.Keys() {
		if len(k.Tokens) != len(k.Sample) {
			res.Conflated++
			continue
		}
		for i, tok := range k.Tokens {
			if tok == spell.Wildcard && isAlphaWord(k.Sample[i]) {
				res.Conflated++
				break
			}
		}
	}
	return res
}

func isAlphaWord(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			if r < 'A' || r > 'Z' {
				return false
			}
		}
	}
	return true
}

// LastWordsAblation compares entity-group counts with and without
// Algorithm 1's shared-suffix rejection.
type LastWordsAblation struct {
	System       string
	WithRule     int
	WithoutRule  int
	MergedGroups int // groups lost when the rule is off (over-merging)
}

// AblationLastWords measures the last-words rule's effect on grouping.
func (e *Env) AblationLastWords(fw logging.Framework) LastWordsAblation {
	m := e.Model(fw)
	var entities []string
	for _, ik := range m.Keys {
		entities = append(entities, ik.Entities...)
	}
	with := group.Build(entities)
	without := group.BuildWithOptions(entities, group.Options{DisableLastWordsRule: true})
	return LastWordsAblation{
		System:       string(fw),
		WithRule:     len(with.List),
		WithoutRule:  len(without.List),
		MergedGroups: len(with.List) - len(without.List),
	}
}

// CriticalKeysAblation compares kill-detection with and without critical
// Intel Key marking.
type CriticalKeysAblation struct {
	System          string
	DetectedWith    int
	DetectedWithout int
	Jobs            int
}

// AblationCriticalKeys measures how many SIGKILL injections only the
// critical-key check catches.
func (e *Env) AblationCriticalKeys(fw logging.Framework, jobs int) CriticalKeysAblation {
	if jobs <= 0 {
		jobs = 6
	}
	sessions := e.Training(fw)
	with := core.Train(sessions, core.Config{})
	without := core.Train(sessions, core.Config{
		DisableCriticalKeys: true, DisableMissingGroupCheck: true, DisableHierarchyCheck: true,
	})
	res := CriticalKeysAblation{System: string(fw), Jobs: jobs}
	for i := 0; i < jobs; i++ {
		j := e.Gen.Submit(fw, sim.FaultKill)
		if len(with.Detect(j.Sessions).Anomalies) > 0 {
			res.DetectedWith++
		}
		if len(without.Detect(j.Sessions).Anomalies) > 0 {
			res.DetectedWithout++
		}
	}
	return res
}

// DeepLogGPoint is one point of the DeepLog top-g sweep.
type DeepLogGPoint struct {
	G         int
	Precision float64
	Recall    float64
}

// AblationDeepLogTopG sweeps DeepLog's top-g parameter on one system.
func (e *Env) AblationDeepLogTopG(fw logging.Framework, gs []int) []DeepLogGPoint {
	if len(gs) == 0 {
		gs = []int{1, 3, 5, 9, 15}
	}
	m := e.Model(fw)
	var trainSeqs [][]int
	for _, s := range e.Training(fw) {
		trainSeqs = append(trainSeqs, keySeq(m, s))
	}
	dl := deeplog.Train(trainSeqs, 3)
	corpus := e.DetectionCorpus(fw)

	var out []DeepLogGPoint
	for _, g := range gs {
		tp, fp, fn := 0, 0, 0
		for _, j := range corpus {
			problem := j.Class != ClassClean
			for _, s := range j.Res.Sessions {
				flagged := dl.SessionAnomalous(keySeq(m, s), g)
				isProblem := problem && j.Res.Affected[s.ID]
				switch {
				case flagged && isProblem:
					tp++
				case flagged && !isProblem:
					fp++
				case !flagged && isProblem:
					fn++
				}
			}
		}
		pt := DeepLogGPoint{G: g}
		if tp+fp > 0 {
			pt.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			pt.Recall = float64(tp) / float64(tp+fn)
		}
		out = append(out, pt)
	}
	return out
}

// FormatAblations renders the ablation results.
func FormatAblations(spellPts []SpellThresholdPoint, lw LastWordsAblation, ck CriticalKeysAblation, dl []DeepLogGPoint) string {
	var b strings.Builder
	b.WriteString("Spell threshold sweep (t -> #keys): ")
	for _, p := range spellPts {
		fmt.Fprintf(&b, "%.1f:%d ", p.T, p.Keys)
	}
	fmt.Fprintf(&b, "\nlast-words rule (%s): with=%d groups, without=%d groups\n",
		lw.System, lw.WithRule, lw.WithoutRule)
	fmt.Fprintf(&b, "critical keys (%s): kill detection %d/%d with, %d/%d without\n",
		ck.System, ck.DetectedWith, ck.Jobs, ck.DetectedWithout, ck.Jobs)
	b.WriteString("DeepLog top-g sweep (g -> P/R): ")
	for _, p := range dl {
		fmt.Fprintf(&b, "%d:%.2f/%.2f ", p.G, p.Precision, p.Recall)
	}
	b.WriteString("\n")
	return b.String()
}
