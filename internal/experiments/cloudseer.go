package experiments

import (
	"fmt"
	"regexp"
	"strings"

	"intellog/internal/baselines/cloudseer"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// CloudSeerPoint is one training-size point of the §8 demonstration.
type CloudSeerPoint struct {
	TrainSessions int
	NovaFPRate    float64
	SparkFPRate   float64
}

// CloudSeerClaim holds the §8 demonstration: a CloudSeer-style automaton
// is accurate on fixed-order infrastructure sessions (nova-compute
// request lifecycles) but fails on analytics sessions (Spark executors)
// in both of its regimes — under-trained it floods with false positives,
// and with enough training it degenerates into accepting every
// interleaving (transition density ≈ saturated), losing all detection
// power.
type CloudSeerClaim struct {
	Points []CloudSeerPoint
	// Branching is the automaton's average out-degree (transitions per
	// state) after full training — a fixed-order lifecycle stays near 1,
	// while interleaved analytics logs explode toward the key count.
	NovaBranching  float64
	SparkBranching float64
}

var novaInstancePattern = regexp.MustCompile(`instance-[0-9a-f]{8}`)

// CloudSeerExperiment sweeps training sizes and measures clean-session
// false-positive rates for both corpora, plus the trained automatons'
// transition densities.
func (e *Env) CloudSeerExperiment() CloudSeerClaim {
	byInstance := func(r *logging.Record) string {
		return novaInstancePattern.FindString(r.Message)
	}
	novaTrain := logging.SplitBySession(e.Cluster.RunNovaRequests(120), byInstance)
	novaDetect := logging.SplitBySession(e.Cluster.RunNovaRequests(40), byInstance)

	sparkTrain := e.Training(logging.Spark)
	var sparkDetect []*logging.Session
	for i := 0; i < 4; i++ {
		res := e.Gen.Submit(logging.Spark, 0)
		sparkDetect = append(sparkDetect, res.Sessions...)
	}

	var claim CloudSeerClaim
	for _, n := range []int{12, 40, len(sparkTrain)} {
		pt := CloudSeerPoint{TrainSessions: n}
		pt.NovaFPRate, _ = automatonFPRate(capSessions(novaTrain, n), novaDetect)
		pt.SparkFPRate, _ = automatonFPRate(capSessions(sparkTrain, n), sparkDetect)
		claim.Points = append(claim.Points, pt)
	}
	_, claim.NovaBranching = automatonFPRate(novaTrain, novaDetect)
	_, claim.SparkBranching = automatonFPRate(sparkTrain, sparkDetect)
	return claim
}

func capSessions(s []*logging.Session, n int) []*logging.Session {
	if n >= len(s) {
		return s
	}
	return s[:n]
}

// automatonFPRate trains Spell + the automaton on the training sessions
// and returns the fraction of clean detection sessions flagged, plus the
// automaton's branching factor.
func automatonFPRate(train, detect []*logging.Session) (float64, float64) {
	parser := spell.NewParser(0)
	var seqs [][]int
	for _, s := range train {
		seqs = append(seqs, consumeSeq(parser, s))
	}
	m := cloudseer.Train(seqs)
	branching := 0.0
	if st := m.States(); st > 0 {
		branching = float64(m.Transitions()) / float64(st)
	}
	if len(detect) == 0 {
		return 0, branching
	}
	fp := 0
	for _, s := range detect {
		if m.Anomalous(lookupSeq(parser, s)) {
			fp++
		}
	}
	return float64(fp) / float64(len(detect)), branching
}

// consumeSeq streams a session through the parser (training mode).
func consumeSeq(p *spell.Parser, s *logging.Session) []int {
	seq := make([]int, 0, s.Len())
	for i := range s.Records {
		k := p.Consume(nlp.Texts(nlp.Tokenize(s.Records[i].Message)))
		if k != nil {
			seq = append(seq, k.ID)
		}
	}
	return seq
}

// lookupSeq maps a session to key IDs without mutating the parser; -1
// marks unmatched messages.
func lookupSeq(p *spell.Parser, s *logging.Session) []int {
	seq := make([]int, 0, s.Len())
	for i := range s.Records {
		k := p.Lookup(nlp.Texts(nlp.Tokenize(s.Records[i].Message)))
		if k == nil {
			seq = append(seq, -1)
			continue
		}
		seq = append(seq, k.ID)
	}
	return seq
}

// Format renders the claim.
func (c CloudSeerClaim) Format() string {
	var b strings.Builder
	b.WriteString("CloudSeer-style automaton checker (§8 related-work claim):\n")
	b.WriteString("  clean-session FP rate by training size (nova | spark):\n")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "    %4d sessions: %5.0f%% | %5.0f%%\n",
			p.TrainSessions, 100*p.NovaFPRate, 100*p.SparkFPRate)
	}
	fmt.Fprintf(&b, "  automaton branching factor after full training: nova %.1f, spark %.1f\n",
		c.NovaBranching, c.SparkBranching)
	b.WriteString("  -> on analytics logs the automaton either floods with FPs (small training)\n")
	b.WriteString("     or saturates into accepting any interleaving (large training)\n")
	return b.String()
}
