package experiments

import (
	"strings"
	"sync"
	"testing"

	"intellog/internal/logging"
)

var (
	envOnce sync.Once
	envInst *Env
)

// testEnv shares one trained environment across tests (training three
// systems is the expensive part).
func testEnv() *Env {
	envOnce.Do(func() {
		envInst = NewEnv(7, 20)
	})
	return envInst
}

func TestTable1Shape(t *testing.T) {
	rows := testEnv().Table1(2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byName := map[string]NLRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.Total == 0 {
			t.Errorf("%s: empty corpus", r.System)
		}
	}
	if p := byName["Spark"].Pct(); p != 100 {
		t.Errorf("Spark NL%% = %.1f, want 100", p)
	}
	if p := byName["nova-compute"].Pct(); p != 100 {
		t.Errorf("nova NL%% = %.1f, want 100", p)
	}
	for _, sys := range []string{"MapReduce", "Tez", "Yarn"} {
		p := byName[sys].Pct()
		if p < 85 || p >= 100 {
			t.Errorf("%s NL%% = %.1f, want high but below 100", sys, p)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Spark") {
		t.Error("format missing rows")
	}
}

func TestFigure1(t *testing.T) {
	// These are character-for-character the log keys of the paper's Fig. 1.
	out := Figure1()
	if !strings.Contains(out, "fetcher # * about to shuffle output of map *") {
		t.Errorf("Figure1 missing shuffle key:\n%s", out)
	}
	if !strings.Contains(out, "* freed by fetcher # * in *") {
		t.Errorf("Figure1 missing freed key:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	out := Figure3()
	if !strings.Contains(out, "Starting/VBG") || !strings.Contains(out, "system/NN") {
		t.Errorf("Figure3 tags wrong:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	ik := Figure4()
	out := FormatFigure4(ik)
	for _, want := range []string{"task", "finish", "send", "TID"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	var rows []ExtractionRow
	for _, fw := range Systems {
		rows = append(rows, testEnv().Table4(fw))
	}
	for _, r := range rows {
		if r.IntelKeys < 15 {
			t.Errorf("%s: only %d Intel Keys", r.System, r.IntelKeys)
		}
		if r.Entities.Total == 0 || r.IDs.Total == 0 || r.Values.Total == 0 {
			t.Errorf("%s: empty ground truth: %+v", r.System, r)
		}
		// Extraction must be mostly right: errors bounded by half the total.
		if r.Entities.FN*2 > r.Entities.Total {
			t.Errorf("%s: entity FN %d of %d", r.System, r.Entities.FN, r.Entities.Total)
		}
		if r.IDs.FN*2 > r.IDs.Total {
			t.Errorf("%s: identifier FN %d of %d", r.System, r.IDs.FN, r.IDs.Total)
		}
		if r.OpsMissed*2 > r.OpsTotal {
			t.Errorf("%s: missed %d of %d operations", r.System, r.OpsMissed, r.OpsTotal)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "spark") {
		t.Error("format wrong")
	}
}

func TestTable5Shape(t *testing.T) {
	for _, fw := range Systems {
		r := testEnv().Table5(fw)
		if r.Groups == 0 || r.CritGroups == 0 {
			t.Fatalf("%s: no groups: %+v", r.System, r)
		}
		if r.CritGroups > r.Groups {
			t.Errorf("%s: more critical than total groups", r.System)
		}
		// The paper's headline: groups are 5–10x fewer than session length.
		if float64(r.Groups) >= r.AvgSessionLen {
			t.Errorf("%s: groups (%d) not smaller than session length (%.0f)",
				r.System, r.Groups, r.AvgSessionLen)
		}
		if r.MaxSubLen == 0 || r.AvgSubCrit < r.AvgSubAll {
			t.Errorf("%s: subroutine stats odd: %+v", r.System, r)
		}
	}
}

func TestFigure8SparkGraph(t *testing.T) {
	out := testEnv().Figure8()
	for _, grp := range []string{"task", "block", "driver", "memory", "shutdown"} {
		if !strings.Contains(out, grp) {
			t.Errorf("Figure8 missing group %q:\n%s", grp, out)
		}
	}
}

func TestFigure9StitchGraph(t *testing.T) {
	out := testEnv().Figure9()
	if !strings.Contains(out, "1:n") {
		t.Errorf("Figure9 has no hierarchical relation:\n%s", out)
	}
	if !strings.Contains(out, "STAGE") || !strings.Contains(out, "TID") {
		t.Errorf("Figure9 missing identifier types:\n%s", out)
	}
}

func TestTable6Shape(t *testing.T) {
	var rows []DetectionRow
	for _, fw := range Systems {
		row, jobs := testEnv().Table6(fw)
		rows = append(rows, row)
		if len(jobs) != 30 {
			t.Errorf("%s: %d jobs, want 30", fw, len(jobs))
		}
		if row.Detected+row.FN != 15 {
			t.Errorf("%s: D+FN = %d, want 15 injected", fw, row.Detected+row.FN)
		}
		if row.Detected < 12 {
			t.Errorf("%s: detected only %d/15", fw, row.Detected)
		}
		if row.FP > 4 {
			t.Errorf("%s: %d false positives", fw, row.FP)
		}
		if row.MaxSessions < row.MinSessions || row.MaxLen < row.MinLen {
			t.Errorf("%s: ranges inverted: %+v", fw, row)
		}
	}
	out := FormatTable6(rows)
	if !strings.Contains(out, "D / FP / FN") {
		t.Error("format wrong")
	}
}

func TestTable7CaseStudies(t *testing.T) {
	e := testEnv()
	cs1 := e.CaseStudy1()
	if !cs1.RootCauseIsolated {
		t.Errorf("case 1 failed to isolate the host:\n%s", cs1.Format())
	}
	if cs1.SessionsReported == 0 || cs1.SessionsReported > cs1.SessionsTotal/4 {
		t.Errorf("case 1 reported %d of %d sessions", cs1.SessionsReported, cs1.SessionsTotal)
	}
	spark, tez := e.CaseStudy2()
	if !spark.RootCauseIsolated {
		t.Errorf("case 2 (Spark) failed:\n%s", spark.Format())
	}
	if !tez.RootCauseIsolated {
		t.Errorf("case 2 (Tez) failed:\n%s", tez.Format())
	}
	cs3 := e.CaseStudy3()
	if !cs3.RootCauseIsolated {
		t.Errorf("case 3 failed:\n%s", cs3.Format())
	}
}

// TestTable8Shape asserts the paper's comparison shape: IntelLog wins on
// precision and F-measure; DeepLog keeps high recall but its precision
// collapses on analytics logs; LogCluster sits between on precision.
func TestTable8Shape(t *testing.T) {
	rows := testEnv().Table8()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTool := map[string]ComparisonRow{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	il, dl, lc := byTool["IntelLog"], byTool["DeepLog"], byTool["LogCluster"]
	if il.Precision < 0.75 || il.Recall < 0.75 {
		t.Errorf("IntelLog P/R = %.2f/%.2f, want both high", il.Precision, il.Recall)
	}
	if dl.Recall < 0.9 {
		t.Errorf("DeepLog recall = %.2f, want ~1", dl.Recall)
	}
	// The paper's gap is ~10x (8.81% vs 87.23%); the simulated corpus is
	// cleaner than a real cluster, so assert a ≥2x collapse.
	if dl.Precision > il.Precision*0.55 {
		t.Errorf("DeepLog precision = %.2f should collapse vs IntelLog %.2f", dl.Precision, il.Precision)
	}
	if lc.Precision < dl.Precision {
		t.Errorf("LogCluster precision %.2f below DeepLog %.2f", lc.Precision, dl.Precision)
	}
	out := FormatTable8(rows)
	if !strings.Contains(out, "N/A") {
		t.Error("LogCluster recall should print N/A")
	}
}

func TestAblations(t *testing.T) {
	e := testEnv()
	pts := e.AblationSpellThreshold(logging.MapReduce, nil)
	if len(pts) == 0 {
		t.Fatal("no sweep points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Keys > pts[i-1].Keys {
			t.Errorf("key count should not grow with t: %v", pts)
			break
		}
	}
	lw := e.AblationLastWords(logging.Spark)
	if lw.WithRule < lw.WithoutRule {
		t.Errorf("last-words rule should keep more (or equal) groups: %+v", lw)
	}
	ck := e.AblationCriticalKeys(logging.Spark, 4)
	if ck.DetectedWith < ck.DetectedWithout {
		t.Errorf("critical keys should not hurt detection: %+v", ck)
	}
	if ck.DetectedWith < 3 {
		t.Errorf("critical-key detection too weak: %+v", ck)
	}
	dl := e.AblationDeepLogTopG(logging.Spark, []int{1, 9})
	if len(dl) != 2 || dl[0].Recall < dl[1].Recall {
		t.Errorf("top-g sweep odd: %+v", dl)
	}
	if FormatAblations(pts, lw, ck, dl) == "" {
		t.Error("empty ablation format")
	}
}

func TestTensorFlowExtension(t *testing.T) {
	r := testEnv().TensorFlowExtension(10)
	if r.IntelKeys < 10 || r.Groups < 5 {
		t.Fatalf("TF model too small: %+v", r)
	}
	if !r.KillDetected {
		t.Error("worker kill not detected")
	}
	if !r.NetDetected {
		t.Error("parameter-server connectivity failure not detected")
	}
	if !r.StallDetected {
		t.Error("input-pipeline stall not detected")
	}
	if r.CleanFP > 1 {
		t.Errorf("clean TF jobs flagged: %d/%d", r.CleanFP, r.CleanJobs)
	}
	if !strings.Contains(r.Format(), "TensorFlow extension") {
		t.Error("Format wrong")
	}
}

func TestAblationMergeGuard(t *testing.T) {
	r := testEnv().AblationMergeGuard(logging.Spark)
	if r.GuardedKeys == 0 || r.ClassicKeys == 0 {
		t.Fatalf("empty ablation: %+v", r)
	}
	if r.Conflated == 0 {
		t.Errorf("classic Spell should conflate some keys: %+v", r)
	}
}

// TestCloudSeerClaim verifies the §8 contrast: the automaton checker is
// accurate on fixed-order infrastructure sessions but floods with false
// positives on analytics sessions.
func TestCloudSeerClaim(t *testing.T) {
	c := testEnv().CloudSeerExperiment()
	if len(c.Points) == 0 {
		t.Fatal("no sweep points")
	}
	small := c.Points[0] // smallest training size
	if small.NovaFPRate > 0.2 {
		t.Errorf("nova FP at small training = %.2f, want near zero (fixed-order sessions)", small.NovaFPRate)
	}
	if small.SparkFPRate < 0.5 {
		t.Errorf("Spark FP at small training = %.2f, want high (interleavings unseen)", small.SparkFPRate)
	}
	// With full training the Spark automaton degenerates: its branching
	// factor explodes while the lifecycle automaton stays a near-chain.
	if c.SparkBranching < 2*c.NovaBranching {
		t.Errorf("Spark branching %.2f not >> nova %.2f", c.SparkBranching, c.NovaBranching)
	}
	if !strings.Contains(c.Format(), "CloudSeer") {
		t.Error("Format wrong")
	}
}
