package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/logging"
	"intellog/internal/sim"
)

// NLRow is one Table 1 row: natural-language log lines vs total.
type NLRow struct {
	System string
	NL     int
	Total  int
}

// Pct returns the NL percentage.
func (r NLRow) Pct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.NL) / float64(r.Total)
}

// Table1 generates a mixed corpus (analytics jobs, YARN daemon logs, nova
// requests) and counts natural-language log lines per system, using the
// template ground-truth NL flag — the paper's clause criterion.
func (e *Env) Table1(jobsPerSystem int) []NLRow {
	if jobsPerSystem <= 0 {
		jobsPerSystem = 5
	}
	counts := map[logging.Framework]map[string]int{
		logging.Spark: {}, logging.MapReduce: {}, logging.Tez: {}, logging.Yarn: {},
	}
	for _, fw := range Systems {
		for i := 0; i < jobsPerSystem; i++ {
			res := e.Gen.Submit(fw, sim.FaultNone)
			for _, s := range res.Sessions {
				for _, rec := range s.Records {
					counts[fw][rec.TemplateID]++
				}
			}
			for _, rec := range res.YarnRecords {
				counts[logging.Yarn][rec.TemplateID]++
			}
		}
	}
	novaCounts := map[string]int{}
	for _, rec := range e.Cluster.RunNovaRequests(jobsPerSystem * 40) {
		novaCounts[rec.TemplateID]++
	}

	var rows []NLRow
	add := func(name string, inv *sim.Inventory, c map[string]int) {
		nl, total := inv.NLStats(c)
		rows = append(rows, NLRow{System: name, NL: nl, Total: total})
	}
	add("Spark", e.Cluster.Spark, counts[logging.Spark])
	add("MapReduce", e.Cluster.MR, counts[logging.MapReduce])
	add("Tez", e.Cluster.Tez, counts[logging.Tez])
	add("Yarn", e.Cluster.Yarn, counts[logging.Yarn])
	add("nova-compute", e.Cluster.Nova, novaCounts)
	return rows
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []NLRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s\n", "System", "NL logs", "total", "% NL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %10d %7.1f%%\n", r.System, r.NL, r.Total, r.Pct())
	}
	return b.String()
}
