package experiments

import (
	"fmt"
	"sort"
	"strings"

	"intellog/internal/baselines/stitch"
	"intellog/internal/extract"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/sim"
	"intellog/internal/spell"
)

// Figure1 reproduces the Fig. 1 walkthrough: the fetcher subroutine's raw
// messages on the left, the extracted log keys on the right.
func Figure1() string {
	msgs := []string{
		"fetcher#1 about to shuffle output of map attempt_01",
		"fetcher#1 read 2264 bytes from map-output for attempt_01",
		"host1:13562 freed by fetcher#1 in 4ms",
		"fetcher#2 about to shuffle output of map attempt_02",
		"fetcher#2 read 108 bytes from map-output for attempt_02",
		"host2:13562 freed by fetcher#2 in 11ms",
	}
	p := spell.NewParser(0)
	var keys []*spell.Key
	for _, m := range msgs {
		keys = append(keys, p.Consume(nlp.Texts(nlp.Tokenize(m))))
	}
	var b strings.Builder
	b.WriteString("log messages                                            -> log keys\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "%-55s -> %s\n", msgs[i], keys[i].String())
	}
	return b.String()
}

// Figure3 reproduces the Fig. 3 POS-tagging flow: the log key, its sample
// message, and the tags mapped back onto the key.
func Figure3() string {
	sample := "Starting MapTask metrics system"
	key := "* MapTask metrics system"
	toks := nlp.TagMessage(sample)
	var b strings.Builder
	fmt.Fprintf(&b, "log key:        %s\n", key)
	fmt.Fprintf(&b, "sample message: %s\n", sample)
	b.WriteString("POS tags:       ")
	for _, t := range toks {
		fmt.Fprintf(&b, "%s/%s ", t.Text, t.Tag)
	}
	b.WriteString("\n")
	return b.String()
}

// Figure4 reproduces the Fig. 4 transformation of the Spark task-finish
// key into an Intel Key.
func Figure4() *extract.IntelKey {
	p := spell.NewParser(0)
	msgs := []string{
		"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
		"Finished task 3.0 in stage 1.0 (TID 7). 1401 bytes result sent to driver",
	}
	var k *spell.Key
	for _, m := range msgs {
		k = p.Consume(nlp.Texts(nlp.Tokenize(m)))
	}
	return extract.BuildIntelKey(k)
}

// FormatFigure4 renders the Intel Key like the right side of Fig. 4.
func FormatFigure4(ik *extract.IntelKey) string {
	var b strings.Builder
	fmt.Fprintf(&b, "log key:    %s\n", ik.String())
	fmt.Fprintf(&b, "entities:   %s\n", strings.Join(ik.Entities, ", "))
	var ids, vals []string
	for _, s := range ik.Slots {
		switch s.Kind {
		case extract.SlotIdentifier:
			ids = append(ids, s.Type)
		case extract.SlotValue:
			vals = append(vals, s.Type)
		}
	}
	fmt.Fprintf(&b, "identifiers: %s\n", strings.Join(ids, ", "))
	fmt.Fprintf(&b, "values:      %s\n", strings.Join(vals, ", "))
	var ops []string
	for _, op := range ik.Operations {
		ops = append(ops, op.String())
	}
	fmt.Fprintf(&b, "operations:  %s\n", strings.Join(ops, " "))
	return b.String()
}

// Figure8 renders the Spark HW-graph hierarchy (critical groups starred).
func (e *Env) Figure8() string {
	return e.Model(logging.Spark).Graph.Render()
}

// Figure8b renders the subroutine view of Fig. 8(b): each critical
// group's subroutines with their Intel Keys' operations, critical keys
// starred.
func (e *Env) Figure8b() string {
	m := e.Model(logging.Spark)
	var b strings.Builder
	for _, name := range m.Graph.CriticalGroups() {
		node := m.Graph.Nodes[name]
		sigs := make([]string, 0, len(node.Subroutines))
		for sig := range node.Subroutines {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			sub := node.Subroutines[sig]
			label := sig
			if label == "" {
				label = "NONE"
			}
			fmt.Fprintf(&b, "%s / %s:\n", name, label)
			for _, kid := range sub.Keys {
				ik := m.Keys[kid]
				marker := " "
				if sub.Critical[kid] {
					marker = "*"
				}
				var ops []string
				for _, op := range ik.Operations {
					ops = append(ops, op.String())
				}
				fmt.Fprintf(&b, "  %s %s\n", marker, strings.Join(ops, " "))
			}
		}
	}
	return b.String()
}

// Figure9 builds the Stitch S³ graph from one Spark job's Intel Messages.
func (e *Env) Figure9() string {
	m := e.Model(logging.Spark)
	res := e.Gen.Submit(logging.Spark, sim.FaultNone)
	msgs := m.Messages(res.Sessions)
	return stitch.Build(msgs).Render()
}
