package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/baselines/deeplog"
	"intellog/internal/baselines/logcluster"
	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/nlp"
)

// ComparisonRow is one Table 8 row.
type ComparisonRow struct {
	Tool      string
	Precision float64
	Recall    float64
	F1        float64
	// RecallNA mirrors the paper's presentation: LogCluster reduces the
	// logs a user must examine rather than enumerating problems, so its
	// recall is not applicable.
	RecallNA bool
}

// Table8 scores IntelLog, DeepLog and LogCluster at session granularity
// over the combined detection corpora of all three systems. Ground truth:
// a session is a problem session when its job's fault is a real problem
// (injected or unexpected) and the fault touched that session.
func (e *Env) Table8() []ComparisonRow {
	type labeled struct {
		seq     []int
		problem bool
		flagged map[string]bool // per tool
	}
	var sessions []*labeled

	// DeepLog/LogCluster train on the same key-ID sequences IntelLog's
	// Spell stage produces — the fairest shared representation.
	trainSeqs := map[logging.Framework][][]int{}
	for _, fw := range Systems {
		m := e.Model(fw)
		for _, s := range e.Training(fw) {
			trainSeqs[fw] = append(trainSeqs[fw], keySeq(m, s))
		}
	}

	tools := []string{"IntelLog", "DeepLog", "LogCluster"}
	stats := map[string]*struct{ tp, fp, fn int }{}
	for _, tool := range tools {
		stats[tool] = &struct{ tp, fp, fn int }{}
	}

	for _, fw := range Systems {
		m := e.Model(fw)
		dl := deeplog.Train(trainSeqs[fw], 3)
		lc := logcluster.Train(trainSeqs[fw], 0.85)
		corpus := e.DetectionCorpus(fw)
		for _, j := range corpus {
			realProblem := j.Class != ClassClean
			report := m.Detect(j.Res.Sessions)
			flaggedIntel := map[string]bool{}
			for _, sid := range report.ProblematicSessions() {
				flaggedIntel[sid] = true
			}
			for _, s := range j.Res.Sessions {
				seq := keySeq(m, s)
				l := &labeled{
					seq:     seq,
					problem: realProblem && j.Res.Affected[s.ID],
					flagged: map[string]bool{
						"IntelLog":   flaggedIntel[s.ID],
						"DeepLog":    dl.SessionAnomalous(seq, 9),
						"LogCluster": lc.Anomalous(seq),
					},
				}
				sessions = append(sessions, l)
				for _, tool := range tools {
					st := stats[tool]
					switch {
					case l.flagged[tool] && l.problem:
						st.tp++
					case l.flagged[tool] && !l.problem:
						st.fp++
					case !l.flagged[tool] && l.problem:
						st.fn++
					}
				}
			}
		}
	}

	var rows []ComparisonRow
	for _, tool := range tools {
		st := stats[tool]
		r := ComparisonRow{Tool: tool}
		if st.tp+st.fp > 0 {
			r.Precision = float64(st.tp) / float64(st.tp+st.fp)
		}
		if st.tp+st.fn > 0 {
			r.Recall = float64(st.tp) / float64(st.tp+st.fn)
		}
		if r.Precision+r.Recall > 0 {
			r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
		}
		if tool == "LogCluster" {
			r.RecallNA = true
		}
		rows = append(rows, r)
	}
	return rows
}

// keySeq maps a session's records to Spell key IDs (-1 for unmatched —
// novel messages a next-key model must treat as anomalous).
func keySeq(m *core.Model, s *logging.Session) []int {
	seq := make([]int, 0, s.Len())
	for i := range s.Records {
		k := m.Parser.Lookup(nlp.Texts(nlp.Tokenize(s.Records[i].Message)))
		if k == nil {
			seq = append(seq, -1)
			continue
		}
		seq = append(seq, k.ID)
	}
	return seq
}

// FormatTable8 renders the comparison like the paper's Table 8.
func FormatTable8(rows []ComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "tool", "precision", "recall", "F-measure")
	for _, r := range rows {
		recall, f1 := fmt.Sprintf("%.2f%%", 100*r.Recall), fmt.Sprintf("%.2f%%", 100*r.F1)
		if r.RecallNA {
			recall, f1 = "N/A", "N/A"
		}
		fmt.Fprintf(&b, "%-12s %9.2f%% %10s %10s\n", r.Tool, 100*r.Precision, recall, f1)
	}
	return b.String()
}
