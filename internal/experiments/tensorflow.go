package experiments

import (
	"fmt"
	"strings"

	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
)

// TFExtensionResult summarises the §9 future-work experiment: IntelLog
// applied, unchanged, to a distributed machine-learning system.
type TFExtensionResult struct {
	IntelKeys     int
	Groups        int
	CritGroups    int
	KillDetected  bool
	NetDetected   bool
	StallDetected bool
	CleanFP       int
	CleanJobs     int
}

// TensorFlowExtension trains IntelLog on simulated distributed-TensorFlow
// jobs (parameter servers + workers) and checks that the same pipeline —
// no code changes, only the log formatter — reconstructs the training
// workflow and detects worker kills, parameter-server connectivity
// failures and input-pipeline stalls.
func (e *Env) TensorFlowExtension(trainJobs int) TFExtensionResult {
	if trainJobs <= 0 {
		trainJobs = 12
	}
	sessions := e.Gen.TrainingCorpus(logging.TensorFlow, trainJobs)
	m := core.Train(sessions, core.Config{})

	res := TFExtensionResult{
		IntelKeys:  len(m.Keys),
		Groups:     len(m.Graph.Nodes),
		CritGroups: len(m.Graph.CriticalGroups()),
	}
	detected := func(fault sim.FaultKind) bool {
		job := e.Gen.Submit(logging.TensorFlow, fault)
		return len(m.Detect(job.Sessions).Anomalies) > 0
	}
	res.KillDetected = detected(sim.FaultKill)
	res.NetDetected = detected(sim.FaultNetwork)
	res.StallDetected = detected(sim.FaultSpill)
	res.CleanJobs = 4
	for i := 0; i < res.CleanJobs; i++ {
		if detected(sim.FaultNone) {
			res.CleanFP++
		}
	}
	return res
}

// Format renders the extension result.
func (r TFExtensionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TensorFlow extension (§9 future work):\n")
	fmt.Fprintf(&b, "  Intel Keys: %d, entity groups: %d (%d critical)\n",
		r.IntelKeys, r.Groups, r.CritGroups)
	fmt.Fprintf(&b, "  worker kill detected: %v\n", r.KillDetected)
	fmt.Fprintf(&b, "  parameter-server connectivity failure detected: %v\n", r.NetDetected)
	fmt.Fprintf(&b, "  input-pipeline stall detected: %v\n", r.StallDetected)
	fmt.Fprintf(&b, "  clean-job false positives: %d/%d\n", r.CleanFP, r.CleanJobs)
	return b.String()
}
