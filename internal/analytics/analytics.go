// Package analytics is intellogd's aggregation layer over the anomaly
// log: it turns the raw per-tenant finding stream into operator-grade
// answers. Three products, one engine:
//
//   - Near-duplicate clusters. Every anomaly reduces to its "shape" —
//     the sorted multiset of template terms from detect.ClusterTerms —
//     and shapes are linked into clusters by cosine similarity over
//     IDF-weighted term vectors (reusing the LogCluster baseline's
//     vector machinery). Ten thousand repeats of one fault become one
//     cluster with a count.
//
//   - Root-cause localization. For each cluster (and on demand for a
//     single anomaly) the engine walks the HW-graph backward from the
//     erroneous group through parent and BEFORE edges to the earliest
//     deviating group in the same session, and attaches the forward
//     causal path as the cluster's explanation.
//
//   - Time-bucketed rollups with SLO burn-rate alerts: per-window
//     anomaly counts split by kind and cluster, plus fast/slow burn
//     alerts against a configured anomalies-per-window budget.
//
// The engine's one structural guarantee is order independence: its
// observable state (Snapshot) is a pure function of the multiset of
// anomalies observed, never of their arrival order. The serving layer's
// batch, streaming, and crash-resume paths emit the same findings in
// different orders, and the conformance oracle demands byte-identical
// results from all of them — so clustering is connected components over
// content-keyed shapes (recomputed lazily, not greedy online
// assignment), every aggregate is a count, min, max, or saturating
// distinct-count, and rollup retention is an event-time horizon rather
// than an eviction queue. The documented exception: once a bounded
// table (shapes, tracked sessions) overflows its cap, which entries
// survive becomes arrival-dependent; caps are sized so that regime is
// an overload mode, not normal operation.
package analytics

import "time"

// Config bounds and tunes one tenant's analytics engine. Zero values
// select the defaults noted on each field.
type Config struct {
	// Threshold is the cosine-similarity cut for linking two anomaly
	// shapes into one cluster (0 ⇒ 0.60).
	Threshold float64
	// Window is the rollup bucket width (0 ⇒ 1m).
	Window time.Duration
	// Budget is the SLO: tolerated anomalies per window. Burn rate is
	// observed rate divided by this (0 ⇒ 10).
	Budget float64
	// MaxShapes caps distinct anomaly shapes (0 ⇒ 4096). Anomalies whose
	// shape would exceed the cap still count in rollup totals, under a
	// catch-all "other" cluster.
	MaxShapes int
	// MaxBuckets caps retained rollup windows (0 ⇒ 4096): buckets whose
	// start falls more than MaxBuckets windows behind the newest observed
	// event time are dropped.
	MaxBuckets int
	// MaxSessions caps per-session deviation tracking (0 ⇒ 16384).
	MaxSessions int
	// SessionCap saturates distinct-session counting per shape and per
	// bucket (0 ⇒ 4096): counts are exact up to the cap, then freeze.
	SessionCap int
}

const (
	defaultThreshold   = 0.60
	defaultWindow      = time.Minute
	defaultBudget      = 10
	defaultMaxShapes   = 4096
	defaultMaxBuckets  = 4096
	defaultMaxSessions = 16384
	defaultSessionCap  = 4096
)

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = defaultThreshold
	}
	if c.Window <= 0 {
		c.Window = defaultWindow
	}
	if c.Budget <= 0 {
		c.Budget = defaultBudget
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = defaultMaxShapes
	}
	if c.MaxBuckets <= 0 {
		c.MaxBuckets = defaultMaxBuckets
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = defaultMaxSessions
	}
	if c.SessionCap <= 0 {
		c.SessionCap = defaultSessionCap
	}
	return c
}

// Burn-rate alert policy, after the common two-window SRE shape: a
// short window catching sharp spikes and a long window catching slow
// leaks. Windows are in rollup buckets.
const (
	FastBurnWindows   = 1
	FastBurnThreshold = 14.0
	SlowBurnWindows   = 6
	SlowBurnThreshold = 6.0
)
