package analytics

import (
	"sort"
	"strconv"
	"time"

	"intellog/internal/detect"
)

// observeBucket rolls the anomaly into its event-time window. Retention
// is a horizon, not an eviction queue: buckets more than MaxBuckets
// windows behind the newest observed window are dropped and never
// recreated. That keeps the retained bucket set a pure function of the
// anomaly multiset — the set of windows within the final horizon, each
// with exact counts — regardless of arrival order (an early arrival
// gets bucketed and later swept; a late arrival is refused at the
// horizon; either way the final state is identical).
func (e *Engine) observeBucket(a *detect.Anomaly, sp *shape, at int64) {
	win := int64(e.cfg.Window / time.Second)
	if win <= 0 {
		win = 1
	}
	sec := at / int64(time.Second)
	if at < 0 && at%int64(time.Second) != 0 {
		sec-- // floor, not truncate, for pre-epoch times
	}
	start := sec - mod(sec, win)

	if !e.anyAt || start > e.maxStart {
		e.maxStart = start
		e.anyAt = true
		// Sweep on every horizon advance, not just when full: a bucket
		// below the horizon lingering until the table fills would make
		// the retained set depend on arrival order.
		e.sweepBuckets()
	}
	if start <= e.horizon() {
		e.bucketsDropped++
		return
	}

	b := e.buckets[start]
	if b == nil {
		b = &bucket{
			start:    start,
			kinds:    map[string]uint64{},
			shapes:   map[int]uint64{},
			sessions: map[string]struct{}{},
		}
		e.buckets[start] = b
	}
	b.total++
	b.kinds[a.Kind.String()]++
	if sp != nil {
		b.shapes[sp.id]++
	} else {
		b.shapes[-1]++
	}
	if !b.frozen {
		if _, ok := b.sessions[a.Session]; !ok {
			b.sessions[a.Session] = struct{}{}
			b.sessionCount++
			if b.sessionCount >= e.cfg.SessionCap {
				b.sessions, b.frozen = nil, true
			}
		}
	}
}

// horizon is the oldest retained window start (exclusive).
func (e *Engine) horizon() int64 {
	if !e.anyAt {
		return -1 << 62
	}
	win := int64(e.cfg.Window / time.Second)
	if win <= 0 {
		win = 1
	}
	return e.maxStart - int64(e.cfg.MaxBuckets)*win
}

func (e *Engine) sweepBuckets() {
	h := e.horizon()
	for start, b := range e.buckets {
		if start <= h {
			e.bucketsDropped += b.total
			delete(e.buckets, start)
		}
	}
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Bucket is one rollup window in a snapshot.
type Bucket struct {
	Start time.Time         `json:"start"`
	Total uint64            `json:"total"`
	Kinds map[string]uint64 `json:"kinds,omitempty"`
	// Clusters maps cluster ID (decimal string) → anomaly count in this
	// window; the key "other" collects anomalies whose shape was over
	// the MaxShapes cap.
	Clusters map[string]uint64 `json:"clusters,omitempty"`
	// Sessions is the distinct sessions active in the window, exact up
	// to SessionCap then saturated.
	Sessions int `json:"sessions"`
}

// Alert is one burn-rate evaluation against the SLO budget.
type Alert struct {
	Name      string  `json:"name"`
	Windows   int     `json:"windows"`
	BurnRate  float64 `json:"burnRate"`
	Threshold float64 `json:"threshold"`
	Firing    bool    `json:"firing"`
}

// Rollup is the time-bucketed view in a snapshot.
type Rollup struct {
	Window  string   `json:"window"`
	Budget  float64  `json:"budget"`
	Buckets []Bucket `json:"buckets"`
	Alerts  []Alert  `json:"alerts"`
}

// rollupLocked builds the rollup view. clusterOf maps shape id → cluster
// ID string ("other" for -1). Alerts evaluate at event time — relative
// to the newest observed window, not the wall clock — so the view is
// reproducible and testable.
func (e *Engine) rollupLocked(clusterOf func(int) string) Rollup {
	starts := make([]int64, 0, len(e.buckets))
	for s := range e.buckets {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	out := Rollup{Window: e.cfg.Window.String(), Budget: e.cfg.Budget}
	for _, s := range starts {
		b := e.buckets[s]
		bk := Bucket{
			Start:    time.Unix(s, 0).UTC(),
			Total:    b.total,
			Sessions: b.sessionCount,
		}
		if len(b.kinds) > 0 {
			bk.Kinds = make(map[string]uint64, len(b.kinds))
			for k, n := range b.kinds {
				bk.Kinds[k] = n
			}
		}
		if len(b.shapes) > 0 {
			bk.Clusters = make(map[string]uint64)
			for id, n := range b.shapes {
				bk.Clusters[clusterOf(id)] += n
			}
		}
		out.Buckets = append(out.Buckets, bk)
	}
	out.Alerts = e.alertsLocked(starts)
	return out
}

// alertsLocked evaluates the two-window burn-rate policy over the
// newest windows. Summation runs in ascending start order so the
// floating-point result is run-independent.
func (e *Engine) alertsLocked(sortedStarts []int64) []Alert {
	win := int64(e.cfg.Window / time.Second)
	if win <= 0 {
		win = 1
	}
	eval := func(name string, windows int, threshold float64) Alert {
		var total uint64
		if e.anyAt {
			lo := e.maxStart - int64(windows-1)*win
			for _, s := range sortedStarts {
				if s >= lo && s <= e.maxStart {
					total += e.buckets[s].total
				}
			}
		}
		burn := float64(total) / (float64(windows) * e.cfg.Budget)
		return Alert{
			Name: name, Windows: windows,
			BurnRate: burn, Threshold: threshold,
			Firing: burn >= threshold,
		}
	}
	return []Alert{
		eval("fast-burn", FastBurnWindows, FastBurnThreshold),
		eval("slow-burn", SlowBurnWindows, SlowBurnThreshold),
	}
}

// clusterKeyFor renders a cluster ID for bucket maps.
func clusterKey(id uint64) string { return strconv.FormatUint(id, 10) }
