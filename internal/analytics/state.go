package analytics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"intellog/internal/hwgraph"
)

// State is the engine's serialized form, carried inside the tenant
// checkpoint (as an opaque payload from the core's point of view) so a
// restart resumes aggregation instead of resetting it. Everything
// derivable is rebuilt on restore: the term interner, document
// frequencies, and cluster components come from the shapes.
type State struct {
	Version       int            `json:"version"`
	Observed      uint64         `json:"observed"`
	Localizations uint64         `json:"localizations"`
	MaxStart      int64          `json:"maxStart"`
	AnyAt         bool           `json:"anyAt"`
	Shapes        []shapeState   `json:"shapes,omitempty"`
	Buckets       []bucketState  `json:"buckets,omitempty"`
	Sessions      []sessionState `json:"sessions,omitempty"`

	ShapesDropped   uint64 `json:"shapesDropped,omitempty"`
	BucketsDropped  uint64 `json:"bucketsDropped,omitempty"`
	SessionsEvicted uint64 `json:"sessionsEvicted,omitempty"`
}

// shapeState preserves shapeList order: bucket states reference shapes
// positionally.
type shapeState struct {
	Terms         []string `json:"terms"`
	Count         uint64   `json:"count"`
	Kind          string   `json:"kind"`
	Group         string   `json:"group,omitempty"`
	Signature     string   `json:"signature,omitempty"`
	Sample        string   `json:"sample,omitempty"`
	SampleSession string   `json:"sampleSession,omitempty"`
	FirstAt       int64    `json:"firstAt"`
	Sessions      []string `json:"sessions,omitempty"`
	SessionCount  int      `json:"sessionCount"`
	Frozen        bool     `json:"frozen,omitempty"`
}

type bucketState struct {
	Start        int64             `json:"start"`
	Total        uint64            `json:"total"`
	Kinds        map[string]uint64 `json:"kinds,omitempty"`
	Shapes       map[string]uint64 `json:"shapes,omitempty"` // shape index (decimal; -1 = catch-all) → count
	Sessions     []string          `json:"sessions,omitempty"`
	SessionCount int               `json:"sessionCount"`
	Frozen       bool              `json:"frozen,omitempty"`
}

type sessionState struct {
	ID     string    `json:"id"`
	LastAt int64     `json:"lastAt"`
	Count  uint64    `json:"count"`
	Groups []groupAt `json:"groups,omitempty"`
}

type groupAt struct {
	Group string `json:"group"`
	At    int64  `json:"at"`
}

const stateVersion = 1

// State captures the engine for checkpointing.
func (e *Engine) State() *State {
	e.mu.Lock()
	defer e.mu.Unlock()

	st := &State{
		Version:         stateVersion,
		Observed:        e.observed,
		Localizations:   e.localizations,
		MaxStart:        e.maxStart,
		AnyAt:           e.anyAt,
		ShapesDropped:   e.shapesDropped,
		BucketsDropped:  e.bucketsDropped,
		SessionsEvicted: e.sessionsEvicted,
	}
	for _, sp := range e.shapeList {
		ss := shapeState{
			Terms:         sp.terms,
			Count:         sp.count,
			Kind:          sp.kind,
			Group:         sp.group,
			Signature:     sp.signature,
			Sample:        sp.sample,
			SampleSession: sp.sampleSes,
			FirstAt:       sp.firstAt,
			SessionCount:  sp.sessionCount,
			Frozen:        sp.frozen,
		}
		ss.Sessions = sortedSet(sp.sessions)
		st.Shapes = append(st.Shapes, ss)
	}
	starts := make([]int64, 0, len(e.buckets))
	for s := range e.buckets {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		b := e.buckets[s]
		bs := bucketState{
			Start:        b.start,
			Total:        b.total,
			Kinds:        b.kinds,
			SessionCount: b.sessionCount,
			Frozen:       b.frozen,
		}
		bs.Shapes = make(map[string]uint64, len(b.shapes))
		for id, n := range b.shapes {
			bs.Shapes[strconv.Itoa(id)] = n
		}
		bs.Sessions = sortedSet(b.sessions)
		st.Buckets = append(st.Buckets, bs)
	}
	ids := make([]string, 0, len(e.sessions))
	for id := range e.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		si := e.sessions[id]
		ss := sessionState{ID: id, LastAt: si.lastAt, Count: si.count}
		groups := make([]string, 0, len(si.groups))
		for g := range si.groups {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			ss.Groups = append(ss.Groups, groupAt{Group: g, At: si.groups[g]})
		}
		st.Sessions = append(st.Sessions, ss)
	}
	return st
}

// StateJSON is State marshaled, for embedding in the checkpoint.
func (e *Engine) StateJSON() ([]byte, error) {
	return json.Marshal(e.State())
}

// Restore rebuilds an engine from a captured State.
func Restore(cfg Config, graph *hwgraph.Graph, st *State) (*Engine, error) {
	if st.Version != stateVersion {
		return nil, fmt.Errorf("analytics: unsupported state version %d", st.Version)
	}
	e := NewEngine(cfg, graph)
	e.observed = st.Observed
	e.localizations = st.Localizations
	e.maxStart = st.MaxStart
	e.anyAt = st.AnyAt
	e.shapesDropped = st.ShapesDropped
	e.bucketsDropped = st.BucketsDropped
	e.sessionsEvicted = st.SessionsEvicted

	for _, ss := range st.Shapes {
		sp := &shape{
			id:           len(e.shapeList),
			key:          strings.Join(ss.Terms, "\x1f"),
			terms:        ss.Terms,
			vec:          map[int]int{},
			count:        ss.Count,
			kind:         ss.Kind,
			group:        ss.Group,
			signature:    ss.Signature,
			sample:       ss.Sample,
			sampleSes:    ss.SampleSession,
			firstAt:      ss.FirstAt,
			sessionCount: ss.SessionCount,
			frozen:       ss.Frozen,
		}
		for _, t := range ss.Terms {
			id, ok := e.terms[t]
			if !ok {
				id = len(e.termNames)
				e.terms[t] = id
				e.termNames = append(e.termNames, t)
				e.df = append(e.df, 0)
			}
			if sp.vec[id] == 0 {
				e.df[id]++
			}
			sp.vec[id]++
		}
		if !sp.frozen {
			sp.sessions = make(map[string]struct{}, len(ss.Sessions))
			for _, s := range ss.Sessions {
				sp.sessions[s] = struct{}{}
			}
		}
		e.shapes[sp.key] = sp
		e.shapeList = append(e.shapeList, sp)
	}
	e.compDirty = true

	for _, bs := range st.Buckets {
		b := &bucket{
			start:        bs.Start,
			total:        bs.Total,
			kinds:        bs.Kinds,
			shapes:       map[int]uint64{},
			sessionCount: bs.SessionCount,
			frozen:       bs.Frozen,
		}
		if b.kinds == nil {
			b.kinds = map[string]uint64{}
		}
		for idStr, n := range bs.Shapes {
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return nil, fmt.Errorf("analytics: bad shape ref %q in bucket state", idStr)
			}
			b.shapes[id] = n
		}
		if !b.frozen {
			b.sessions = make(map[string]struct{}, len(bs.Sessions))
			for _, s := range bs.Sessions {
				b.sessions[s] = struct{}{}
			}
		}
		e.buckets[b.start] = b
	}

	for _, ss := range st.Sessions {
		si := &sessionInfo{lastAt: ss.LastAt, count: ss.Count, groups: map[string]int64{}}
		for _, g := range ss.Groups {
			si.groups[g.Group] = g.At
		}
		e.sessions[ss.ID] = si
	}
	return e, nil
}

// RestoreJSON is Restore from a marshaled State.
func RestoreJSON(cfg Config, graph *hwgraph.Graph, data []byte) (*Engine, error) {
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("analytics: decoding state: %w", err)
	}
	return Restore(cfg, graph, &st)
}

func sortedSet(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
