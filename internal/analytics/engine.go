package analytics

import (
	"strings"
	"sync"

	"intellog/internal/detect"
	"intellog/internal/hwgraph"
)

// Engine is one tenant's analytics state: the shape table, rollup
// buckets, and per-session deviation tracker, plus the memoized
// clustering over the shapes. All methods are safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	graph *hwgraph.Graph

	// Term interner: shape vectors index into this space, and df counts
	// the shapes (documents) containing each term — the IDF corpus.
	terms     map[string]int
	termNames []string
	df        []int

	shapes    map[string]*shape // shape key → shape
	shapeList []*shape          // by internal id (arrival order; never exported)

	buckets  map[int64]*bucket // window start (unix sec) → bucket
	maxStart int64             // newest window start observed (retention horizon anchor)
	anyAt    bool

	sessions map[string]*sessionInfo

	observed      uint64
	localizations uint64

	shapesDropped   uint64
	bucketsDropped  uint64
	sessionsEvicted uint64

	// comp memoizes connected components over shapeList (index → root
	// index); invalidated when a shape is added.
	comp      []int
	compDirty bool
}

// shape is one distinct anomaly template: the unit of clustering. All
// aggregates are order-independent (counts, mins, saturating distinct
// sets) so the shape is a pure function of its member multiset.
type shape struct {
	id        int
	key       string   // terms joined with \x1f — the identity
	terms     []string // sorted
	vec       map[int]int
	count     uint64
	kind      string
	group     string
	signature string
	sample    string // lexicographically smallest member Detail
	sampleSes string // lexicographically smallest member session ID
	firstAt   int64  // earliest member event time (unix ns)

	sessions     map[string]struct{} // nil once frozen at SessionCap
	sessionCount int
	frozen       bool
}

// bucket is one rollup window.
type bucket struct {
	start  int64 // unix seconds, window-floored
	total  uint64
	kinds  map[string]uint64
	shapes map[int]uint64 // shape id (-1 = over-cap catch-all) → count

	sessions     map[string]struct{}
	sessionCount int
	frozen       bool
}

// sessionInfo tracks which groups deviated in one session — the
// evidence set the deviation walk localizes against.
type sessionInfo struct {
	lastAt int64
	count  uint64
	groups map[string]int64 // group → earliest deviation event time (unix ns)
}

// NewEngine builds an empty engine. graph may be nil (explanations
// degrade to single-step paths).
func NewEngine(cfg Config, graph *hwgraph.Graph) *Engine {
	return &Engine{
		cfg:      cfg.withDefaults(),
		graph:    graph,
		terms:    map[string]int{},
		shapes:   map[string]*shape{},
		buckets:  map[int64]*bucket{},
		sessions: map[string]*sessionInfo{},
	}
}

// Observe folds one anomaly into the engine.
func (e *Engine) Observe(a *detect.Anomaly) {
	e.mu.Lock()
	e.observe(a)
	e.mu.Unlock()
}

// ObserveBatch folds a batch of anomalies under one lock acquisition.
func (e *Engine) ObserveBatch(as []detect.Anomaly) {
	if len(as) == 0 {
		return
	}
	e.mu.Lock()
	for i := range as {
		e.observe(&as[i])
	}
	e.mu.Unlock()
}

func (e *Engine) observe(a *detect.Anomaly) {
	e.observed++
	at := a.At.UnixNano()

	sp := e.shapeFor(a)
	if sp != nil {
		sp.count++
		if sp.count == 1 || at < sp.firstAt {
			sp.firstAt = at
		}
		if sp.sample == "" || (a.Detail != "" && a.Detail < sp.sample) {
			sp.sample = a.Detail
		}
		if sp.sampleSes == "" || a.Session < sp.sampleSes {
			sp.sampleSes = a.Session
		}
		if !sp.frozen {
			if _, ok := sp.sessions[a.Session]; !ok {
				sp.sessions[a.Session] = struct{}{}
				sp.sessionCount++
				if sp.sessionCount >= e.cfg.SessionCap {
					sp.sessions, sp.frozen = nil, true
				}
			}
		}
	}

	e.observeBucket(a, sp, at)
	e.observeSession(a, at)
}

// shapeFor interns the anomaly's shape, creating it if the table has
// room. Returns nil past MaxShapes for unseen shapes (the anomaly still
// rolls up under the catch-all).
func (e *Engine) shapeFor(a *detect.Anomaly) *shape {
	terms := a.ClusterTerms()
	key := strings.Join(terms, "\x1f")
	if sp := e.shapes[key]; sp != nil {
		return sp
	}
	if len(e.shapeList) >= e.cfg.MaxShapes {
		e.shapesDropped++
		return nil
	}
	sp := &shape{
		id:        len(e.shapeList),
		key:       key,
		terms:     terms,
		vec:       map[int]int{},
		kind:      a.Kind.String(),
		group:     a.Group,
		signature: a.Signature,
		sessions:  map[string]struct{}{},
	}
	for _, t := range terms {
		id, ok := e.terms[t]
		if !ok {
			id = len(e.termNames)
			e.terms[t] = id
			e.termNames = append(e.termNames, t)
			e.df = append(e.df, 0)
		}
		if sp.vec[id] == 0 {
			e.df[id]++
		}
		sp.vec[id]++
	}
	e.shapes[key] = sp
	e.shapeList = append(e.shapeList, sp)
	e.compDirty = true
	return sp
}

func (e *Engine) observeSession(a *detect.Anomaly, at int64) {
	si := e.sessions[a.Session]
	if si == nil {
		if len(e.sessions) >= e.cfg.MaxSessions {
			e.evictOldestSession()
		}
		si = &sessionInfo{lastAt: at, groups: map[string]int64{}}
		e.sessions[a.Session] = si
	}
	si.count++
	if at > si.lastAt {
		si.lastAt = at
	}
	if a.Group != "" {
		if prev, ok := si.groups[a.Group]; !ok || at < prev {
			si.groups[a.Group] = at
		}
	}
}

// evictOldestSession drops the tracked session with the oldest last
// activity (ties on smallest ID). The choice is deterministic for a
// given table, but which sessions are in the table past the cap depends
// on arrival order — the documented overload exception.
func (e *Engine) evictOldestSession() {
	var victim string
	var victimAt int64
	for id, si := range e.sessions {
		if victim == "" || si.lastAt < victimAt || (si.lastAt == victimAt && id < victim) {
			victim, victimAt = id, si.lastAt
		}
	}
	if victim != "" {
		delete(e.sessions, victim)
		e.sessionsEvicted++
	}
}
