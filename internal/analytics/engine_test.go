package analytics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"intellog/internal/detect"
	"intellog/internal/hwgraph"
)

func testGraph() *hwgraph.Graph {
	return &hwgraph.Graph{
		Nodes: map[string]*hwgraph.Node{
			"driver":   {Name: "driver", Children: []string{"executor"}},
			"executor": {Name: "executor", Children: []string{"task", "shuffle"}},
			"task":     {Name: "task", Next: []string{"shuffle"}},
			"shuffle":  {Name: "shuffle"},
		},
		Roots:         []string{"driver"},
		TotalSessions: 3,
	}
}

// testAnomalies builds a mixed workload: two recurring fault templates
// across many sessions, plus a scattering of distinct findings.
func testAnomalies() []detect.Anomaly {
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	var as []detect.Anomaly
	for i := 0; i < 40; i++ {
		ses := "app_" + strconv.Itoa(i%7)
		as = append(as, detect.Anomaly{
			At: base.Add(time.Duration(i) * 9 * time.Second), Session: ses,
			Kind: detect.MissingCriticalKeys, Group: "task", Signature: "sig-a",
			MissingKeys: []int{3, 7},
			Detail:      "subroutine missed keys in " + ses,
		})
	}
	for i := 0; i < 25; i++ {
		ses := "app_" + strconv.Itoa(i%5)
		as = append(as, detect.Anomaly{
			At: base.Add(time.Duration(i) * 13 * time.Second), Session: ses,
			Kind: detect.OrderViolation, Group: "shuffle", Signature: "sig-b",
			Pairs:  [][2]int{{1, 2}},
			Detail: "order broke in " + ses,
		})
	}
	for i := 0; i < 10; i++ {
		as = append(as, detect.Anomaly{
			At: base.Add(time.Duration(i) * time.Minute), Session: "app_solo",
			Kind: detect.MissingGroup, Group: "grp_" + strconv.Itoa(i),
			Detail: "group absent " + strconv.Itoa(i),
		})
	}
	return as
}

func snapshotJSON(t *testing.T, e *Engine) []byte {
	t.Helper()
	b, err := json.MarshalIndent(e.Snapshot(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOrderIndependence is the engine's central contract: any feed
// order of the same anomaly multiset yields a byte-identical snapshot.
func TestOrderIndependence(t *testing.T) {
	as := testAnomalies()
	ref := NewEngine(Config{}, testGraph())
	ref.ObserveBatch(as)
	want := snapshotJSON(t, ref)

	for seed := int64(1); seed <= 5; seed++ {
		shuffled := append([]detect.Anomaly(nil), as...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		e := NewEngine(Config{}, testGraph())
		// Mix batch and one-at-a-time feeds too.
		for i := 0; i < len(shuffled); {
			if i%3 == 0 {
				end := i + 5
				if end > len(shuffled) {
					end = len(shuffled)
				}
				e.ObserveBatch(shuffled[i:end])
				i = end
			} else {
				e.Observe(&shuffled[i])
				i++
			}
		}
		if got := snapshotJSON(t, e); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: snapshot differs from reference\ngot:\n%s\nwant:\n%s", seed, got, want)
		}
	}
}

// TestStateRoundTrip: checkpoint mid-feed, restore, finish the feed —
// identical to the uninterrupted engine.
func TestStateRoundTrip(t *testing.T) {
	as := testAnomalies()
	ref := NewEngine(Config{}, testGraph())
	ref.ObserveBatch(as)
	want := snapshotJSON(t, ref)

	for _, cut := range []int{0, 1, len(as) / 3, len(as) / 2, len(as) - 1, len(as)} {
		e := NewEngine(Config{}, testGraph())
		e.ObserveBatch(as[:cut])
		raw, err := e.StateJSON()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreJSON(Config{}, testGraph(), raw)
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		restored.ObserveBatch(as[cut:])
		if got := snapshotJSON(t, restored); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: snapshot differs after restore\ngot:\n%s\nwant:\n%s", cut, got, want)
		}
	}
}

func TestClustersAggregateDuplicates(t *testing.T) {
	e := NewEngine(Config{}, testGraph())
	as := testAnomalies()
	e.ObserveBatch(as)
	snap := e.Snapshot()

	if snap.Observed != uint64(len(as)) {
		t.Fatalf("observed = %d, want %d", snap.Observed, len(as))
	}
	// The 40 repeated missing-keys findings share one shape; find its
	// cluster and check aggregation.
	var taskCluster *Cluster
	for i := range snap.Clusters {
		c := &snap.Clusters[i]
		if c.Kinds["missing-critical-keys"] > 0 {
			taskCluster = c
			break
		}
	}
	if taskCluster == nil {
		t.Fatalf("no missing-critical-keys cluster in %d clusters", len(snap.Clusters))
	}
	if taskCluster.Count < 40 {
		t.Fatalf("task cluster count = %d, want ≥ 40", taskCluster.Count)
	}
	if taskCluster.Sessions != 7 {
		t.Fatalf("task cluster sessions = %d, want 7", taskCluster.Sessions)
	}
	if taskCluster.Explanation == nil || len(taskCluster.Explanation.Path) == 0 {
		t.Fatalf("task cluster has no explanation path")
	}
	if len(snap.Clusters) >= len(as) {
		t.Fatalf("clustering aggregated nothing: %d clusters for %d anomalies", len(snap.Clusters), len(as))
	}
}

func TestExplainWalksToRootCause(t *testing.T) {
	e := NewEngine(Config{}, testGraph())
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	// task deviates first, then shuffle errs in the same session: the
	// walk from shuffle must localize task as root cause.
	as := []detect.Anomaly{
		{At: base, Session: "s1", Kind: detect.MissingCriticalKeys, Group: "task", Signature: "a", Detail: "d1"},
		{At: base.Add(time.Second), Session: "s1", Kind: detect.OrderViolation, Group: "shuffle", Signature: "b", Detail: "d2"},
	}
	e.ObserveBatch(as)

	got := e.Explain(&as[1])
	if got.ClusterID == 0 || got.ClusterLabel == "" {
		t.Fatalf("no cluster identity: %+v", got)
	}
	if got.Explanation == nil || got.Explanation.RootCause != "task" {
		t.Fatalf("root cause = %+v, want task", got.Explanation)
	}
	wantPath := []string{"task", "shuffle"}
	if len(got.Explanation.Path) != len(wantPath) {
		t.Fatalf("path = %+v, want %v", got.Explanation.Path, wantPath)
	}
	for i, step := range got.Explanation.Path {
		if step.Group != wantPath[i] {
			t.Fatalf("path[%d] = %q, want %q", i, step.Group, wantPath[i])
		}
	}
}

func TestRollupBucketsAndAlerts(t *testing.T) {
	cfg := Config{Window: time.Minute, Budget: 2}
	e := NewEngine(cfg, testGraph())
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	// 30 anomalies inside the newest window: burn 30/2 = 15 ≥ 14 fast
	// threshold; slow-burn over 6 windows: 30/(6*2) = 2.5 < 6.
	var as []detect.Anomaly
	for i := 0; i < 30; i++ {
		as = append(as, detect.Anomaly{
			At: base.Add(time.Duration(i) * time.Second), Session: "s",
			Kind: detect.OrderViolation, Group: "task", Detail: "d",
		})
	}
	// And a quiet older window.
	as = append(as, detect.Anomaly{
		At: base.Add(-10 * time.Minute), Session: "s2",
		Kind: detect.MissingGroup, Group: "task", Detail: "old",
	})
	e.ObserveBatch(as)

	snap := e.Snapshot()
	if len(snap.Rollup.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(snap.Rollup.Buckets))
	}
	newest := snap.Rollup.Buckets[1]
	if newest.Total != 30 || newest.Sessions != 1 {
		t.Fatalf("newest bucket = %+v", newest)
	}
	var fast, slow *Alert
	for i := range snap.Rollup.Alerts {
		switch snap.Rollup.Alerts[i].Name {
		case "fast-burn":
			fast = &snap.Rollup.Alerts[i]
		case "slow-burn":
			slow = &snap.Rollup.Alerts[i]
		}
	}
	if fast == nil || !fast.Firing || fast.BurnRate != 15 {
		t.Fatalf("fast-burn = %+v, want firing at 15", fast)
	}
	if slow == nil || slow.Firing {
		t.Fatalf("slow-burn = %+v, want not firing", slow)
	}
}

// TestBucketHorizon: anomalies older than MaxBuckets windows behind the
// newest are dropped identically whether they arrive early or late.
func TestBucketHorizon(t *testing.T) {
	cfg := Config{Window: time.Minute, MaxBuckets: 3}
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	old := detect.Anomaly{At: base.Add(-time.Hour), Session: "s", Kind: detect.MissingGroup, Group: "g", Detail: "old"}
	fresh := detect.Anomaly{At: base, Session: "s", Kind: detect.MissingGroup, Group: "g", Detail: "new"}

	early := NewEngine(cfg, nil)
	early.Observe(&old)
	early.Observe(&fresh)
	late := NewEngine(cfg, nil)
	late.Observe(&fresh)
	late.Observe(&old)

	a := snapshotJSON(t, early)
	b := snapshotJSON(t, late)
	if !bytes.Equal(a, b) {
		t.Fatalf("horizon not order-independent:\n%s\nvs\n%s", a, b)
	}
	if n := len(early.Snapshot().Rollup.Buckets); n != 1 {
		t.Fatalf("buckets = %d, want 1 (old window beyond horizon)", n)
	}
}

func TestStatsAndMetricsView(t *testing.T) {
	e := NewEngine(Config{}, testGraph())
	e.ObserveBatch(testAnomalies())
	e.Snapshot() // computes explanations
	st := e.Stats()
	if st.Observed == 0 || st.Shapes == 0 || st.Clusters == 0 || st.TrackedSessions == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.Localizations == 0 {
		t.Fatalf("no localizations counted: %+v", st)
	}
}
