package analytics

import (
	"sort"
	"strings"
	"time"

	"intellog/internal/baselines/logcluster"
	"intellog/internal/detect"
	"intellog/internal/hwgraph"
)

// Cluster is one near-duplicate anomaly cluster in a snapshot.
type Cluster struct {
	// ID is a stable content hash of the label shape — the pagination
	// cursor. It never depends on arrival order.
	ID uint64 `json:"id"`
	// Label is the representative shape's terms (space-joined): the
	// lexicographically smallest member shape.
	Label string `json:"label"`
	// Count is total member anomalies; Shapes is distinct templates.
	Count  uint64            `json:"count"`
	Shapes int               `json:"shapes"`
	Kinds  map[string]uint64 `json:"kinds,omitempty"`
	// Groups are the distinct HW-graph groups implicated, sorted.
	Groups []string `json:"groups,omitempty"`
	// Sessions sums the member shapes' distinct-session counts (an
	// upper bound when sessions span shapes; exact below SessionCap for
	// single-shape clusters).
	Sessions int       `json:"sessions"`
	FirstAt  time.Time `json:"firstAt"`
	// Sample is a representative member detail.
	Sample string `json:"sample,omitempty"`
	// Explanation localizes the cluster's root cause on the HW-graph.
	Explanation *Explanation `json:"explanation,omitempty"`
}

// Explanation is a root-cause localization: the forward causal path
// from the earliest deviating group to the erroneous one.
type Explanation struct {
	// Session is the member session the deviation evidence came from.
	Session string `json:"session,omitempty"`
	// RootCause is the earliest deviating group on the backward walk.
	RootCause string `json:"rootCause"`
	// Path walks forward from RootCause to the anomalous group.
	Path []hwgraph.WalkStep `json:"path"`
	// Deviating lists every group that deviated in the session, sorted.
	Deviating []string `json:"deviating,omitempty"`
}

// Snapshot is the engine's full observable state, canonically ordered:
// byte-identical JSON for the same anomaly multiset regardless of
// arrival order. Overload counters (drops, evictions) are deliberately
// excluded — they are arrival-dependent; see Stats.
type Snapshot struct {
	Observed uint64    `json:"observed"`
	Shapes   int       `json:"shapes"`
	Clusters []Cluster `json:"clusters"`
	Rollup   Rollup    `json:"rollup"`
}

// fnv64a of the shape key: the cluster's stable identity.
func clusterID(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// componentsLocked returns the memoized connected components of the
// shape graph: shapes are nodes, and an edge links two shapes whose
// IDF-weighted term vectors reach the cosine threshold. Components are
// a pure function of the edge set, so the clustering is independent of
// both shape-arrival order and union order — unlike greedy centroid
// assignment, which the LogCluster baseline can afford but the
// byte-identity guarantee cannot.
func (e *Engine) componentsLocked() []int {
	if !e.compDirty && e.comp != nil {
		return e.comp
	}
	n := len(e.shapeList)
	idf := make([]float64, len(e.df))
	for t, d := range e.df {
		if d > 0 {
			idf[t] = logcluster.IDF(n, d)
		}
	}
	vecs := make([]logcluster.Vector, n)
	for i, sp := range e.shapeList {
		v := make(logcluster.Vector, len(sp.vec))
		for t, c := range sp.vec {
			v[t] = logcluster.TFWeight(c) * idf[t]
		}
		vecs[i] = v
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if logcluster.Cosine(vecs[i], vecs[j]) >= e.cfg.Threshold {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = find(i)
	}
	e.comp, e.compDirty = comp, false
	return comp
}

// Snapshot renders the canonical view: clusters sorted by ID, buckets
// by start.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()

	comp := e.componentsLocked()
	members := map[int][]*shape{} // component root → member shapes
	for i, sp := range e.shapeList {
		members[comp[i]] = append(members[comp[i]], sp)
	}

	snap := &Snapshot{Observed: e.observed, Shapes: len(e.shapeList)}
	shapeCluster := make(map[int]string, len(e.shapeList)) // shape id → cluster key
	for _, ms := range members {
		c := e.buildCluster(ms)
		for _, sp := range ms {
			shapeCluster[sp.id] = clusterKey(c.ID)
		}
		snap.Clusters = append(snap.Clusters, c)
	}
	sort.Slice(snap.Clusters, func(i, j int) bool { return snap.Clusters[i].ID < snap.Clusters[j].ID })

	snap.Rollup = e.rollupLocked(func(shapeID int) string {
		if k, ok := shapeCluster[shapeID]; ok {
			return k
		}
		return "other"
	})
	return snap
}

// buildCluster aggregates one component's member shapes. Every field is
// a count, min, or sorted set over member content — order-independent.
func (e *Engine) buildCluster(ms []*shape) Cluster {
	label := ms[0]
	for _, sp := range ms[1:] {
		if sp.key < label.key {
			label = sp
		}
	}
	c := Cluster{
		ID:     clusterID(label.key),
		Label:  strings.Join(label.terms, " "),
		Shapes: len(ms),
		Kinds:  map[string]uint64{},
	}
	groups := map[string]bool{}
	var firstAt int64
	for i, sp := range ms {
		c.Count += sp.count
		c.Kinds[sp.kind] += sp.count
		c.Sessions += sp.sessionCount
		if sp.group != "" {
			groups[sp.group] = true
		}
		if i == 0 || sp.firstAt < firstAt {
			firstAt = sp.firstAt
		}
		if c.Sample == "" || (sp.sample != "" && sp.sample < c.Sample) {
			c.Sample = sp.sample
		}
	}
	c.FirstAt = time.Unix(0, firstAt).UTC()
	for g := range groups {
		c.Groups = append(c.Groups, g)
	}
	sort.Strings(c.Groups)
	c.Explanation = e.explainLocked(label.group, label.sampleSes, c.Groups)
	return c
}

// explainLocked localizes group's root cause using the session's
// deviation evidence (falling back to the cluster's own group set if
// the session is no longer tracked). Returns nil for groupless
// anomalies (e.g. overflow findings).
func (e *Engine) explainLocked(group, session string, fallback []string) *Explanation {
	if group == "" {
		return nil
	}
	deviating := map[string]bool{group: true}
	usedSession := ""
	if si := e.sessions[session]; si != nil {
		usedSession = session
		for g := range si.groups {
			deviating[g] = true
		}
	} else {
		for _, g := range fallback {
			deviating[g] = true
		}
	}
	expl := &Explanation{Session: usedSession}
	if e.graph != nil {
		expl.Path = e.graph.DeviationWalk(group, func(g string) bool { return deviating[g] })
	} else {
		expl.Path = []hwgraph.WalkStep{{Group: group, Deviating: true}}
	}
	expl.RootCause = expl.Path[0].Group
	for g := range deviating {
		expl.Deviating = append(expl.Deviating, g)
	}
	sort.Strings(expl.Deviating)
	e.localizations++
	return expl
}

// AnomalyExplanation answers /v1/anomalies/{seq}/explain: the anomaly's
// cluster identity plus its localization.
type AnomalyExplanation struct {
	ClusterID    uint64       `json:"clusterId,omitempty"`
	ClusterLabel string       `json:"clusterLabel,omitempty"`
	Explanation  *Explanation `json:"explanation,omitempty"`
}

// Explain localizes one anomaly against its own session's deviation
// evidence and names the cluster it belongs to.
func (e *Engine) Explain(a *detect.Anomaly) *AnomalyExplanation {
	e.mu.Lock()
	defer e.mu.Unlock()

	out := &AnomalyExplanation{}
	terms := a.ClusterTerms()
	if sp := e.shapes[strings.Join(terms, "\x1f")]; sp != nil {
		comp := e.componentsLocked()
		root := comp[sp.id]
		label := sp
		for i, other := range e.shapeList {
			if comp[i] == root && other.key < label.key {
				label = other
			}
		}
		out.ClusterID = clusterID(label.key)
		out.ClusterLabel = strings.Join(label.terms, " ")
	}
	out.Explanation = e.explainLocked(a.Group, a.Session, nil)
	return out
}

// Stats is the metrics view: cheap gauges plus the arrival-dependent
// overload counters excluded from Snapshot.
type Stats struct {
	Observed        uint64
	Shapes          int
	Clusters        int
	TrackedSessions int
	Localizations   uint64
	AlertsFiring    int
	ShapesDropped   uint64
	BucketsDropped  uint64
	SessionsEvicted uint64
}

// Stats reports current engine statistics for /metrics.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	comp := e.componentsLocked()
	roots := map[int]bool{}
	for _, r := range comp {
		roots[r] = true
	}
	starts := make([]int64, 0, len(e.buckets))
	for s := range e.buckets {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	firing := 0
	for _, a := range e.alertsLocked(starts) {
		if a.Firing {
			firing++
		}
	}
	return Stats{
		Observed:        e.observed,
		Shapes:          len(e.shapeList),
		Clusters:        len(roots),
		TrackedSessions: len(e.sessions),
		Localizations:   e.localizations,
		AlertsFiring:    firing,
		ShapesDropped:   e.shapesDropped,
		BucketsDropped:  e.bucketsDropped,
		SessionsEvicted: e.sessionsEvicted,
	}
}
