package sim

import "intellog/internal/logging"

// HDFSTemplates models HDFS datanode logs: the block write pipeline
// (receive, packet responder, finalize), the block scanner, and the
// heartbeat/block-report service. One datanode process is one session.
// The message shapes follow the public LogHub HDFS corpus family (see
// internal/corpus for the loader of the real dataset's layout).
func HDFSTemplates() *Inventory {
	ts := []*Template{
		// --- startup ------------------------------------------------------------
		tpl("hdfs.dn.starting", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Starting DataNode with hostname {host} and storage id {sid}",
			ents("datanode", "hostname", "storage id"), locs("host"), ids("sid"),
			ops(op("", "start", "datanode"))),
		tpl("hdfs.dn.registered", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Registered datanode {host} with namenode {nn}",
			ents("datanode", "namenode"), locs("host", "nn"),
			ops(op("", "register", "datanode"))),
		tpl("hdfs.dn.pool.joined", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Joined block pool {bp} on namenode {nn}",
			ents("block pool", "namenode"), ids("bp"), locs("nn"),
			ops(op("", "join", "block pool"))),

		// --- block write pipeline ----------------------------------------------
		tpl("hdfs.dn.block.receiving", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Receiving block {blk} src {src} dest {dest}",
			ents("block"), ids("blk"), locs("src", "dest"),
			ops(op("", "receive", "block"))),
		tpl("hdfs.dn.responder.terminating", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"PacketResponder for block {blk} terminating",
			ents("packetresponder", "block"), ids("blk"),
			ops(op("packetresponder", "terminate", ""))),
		tpl("hdfs.dn.block.received", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Received block {blk} of size {bytes} from {src}",
			ents("block"), ids("blk"), vals("bytes"), locs("src"),
			ops(op("", "receive", "block"))),
		tpl("hdfs.dn.block.finalized", "org.apache.hadoop.hdfs.server.datanode.fsdataset.impl.FsDatasetImpl",
			"Finalizing block {blk} on volume {path}",
			ents("block", "volume"), ids("blk"), locs("path"),
			ops(op("", "finalize", "block"))),
		tpl("hdfs.dn.mirror.forward", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Forwarding block {blk} to mirror {mirror}",
			ents("block", "mirror"), ids("blk"), locs("mirror"),
			ops(op("", "forward", "block"))),

		// --- scanner and service threads ----------------------------------------
		tpl("hdfs.dn.scanner.verified", "org.apache.hadoop.hdfs.server.datanode.BlockPoolSliceScanner",
			"Verification succeeded for block {blk}",
			ents("verification", "block"), ids("blk"),
			ops(op("verification", "succeed", ""))),
		tpl("hdfs.dn.heartbeat.kv", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"heartbeats={n} blocks={m} capacity={mb}MB",
			nonNL(), vals("n", "m", "mb")),
		tpl("hdfs.dn.blockreport", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Sent block report with {n} blocks to namenode {nn} in {ms} ms",
			ents("block report", "namenode"), vals("n", "ms"), locs("nn"),
			ops(op("", "send", "block report"))),
		tpl("hdfs.dn.deleting", "org.apache.hadoop.hdfs.server.datanode.fsdataset.impl.FsDatasetAsyncDiskService",
			"Scheduling block {blk} for deletion",
			ents("block", "deletion"), ids("blk"),
			ops(op("", "schedule", "block"))),
		tpl("hdfs.dn.shutdown", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Shutting down DataNode and closing all block pools",
			ents("datanode", "block pool"),
			ops(op("", "shut down", "datanode"))),

		// --- anomalous ----------------------------------------------------------
		tpl("hdfs.anom.mirror.broken", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Exception writing block {blk} to mirror {mirror} connection reset by peer",
			level(logging.Error), anomalous(),
			ents("block", "mirror", "connection"), ids("blk"), locs("mirror"),
			ops(op("", "fail", ""), op("", "write", "block"))),
		tpl("hdfs.anom.pipeline.rebuild", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Recovering write pipeline for block {blk} after excluding datanode {mirror}",
			level(logging.Warn), anomalous(),
			ents("write pipeline", "block", "datanode"), ids("blk"), locs("mirror"),
			ops(op("", "recover", "write pipeline"))),
		tpl("hdfs.anom.slow.write", "org.apache.hadoop.hdfs.server.datanode.DataNode",
			"Slow BlockReceiver write packet to disk for block {blk} took {ms} ms",
			level(logging.Warn), anomalous(),
			ents("blockreceiver", "packet", "block"), ids("blk"), vals("ms"),
			ops(op("", "write", "packet"))),
		tpl("hdfs.anom.volume.failed", "org.apache.hadoop.hdfs.server.datanode.fsdataset.impl.FsDatasetImpl",
			"Removing failed volume {path} after repeated io errors",
			level(logging.Error), anomalous(),
			ents("volume", "io error"), locs("path"),
			ops(op("", "remove", "volume"))),
	}
	return NewInventory(logging.HDFS, ts)
}
