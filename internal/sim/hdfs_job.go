package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runHDFS simulates one batch of block writes against a set of datanodes.
// Each datanode process is a session (HDFS daemons are not containerised,
// so no YARN daemon records are produced). The write count scales with
// InputMB the way other generators' round counts do.
//
// Fault mapping:
//   - Kill/Node: one datanode truncates mid-pipeline (SIGKILL — the block
//     pool shutdown lines never appear).
//   - Network: one datanode's mirror connection flaps; it logs broken
//     pipes and pipeline rebuilds.
//   - Spill (the disk-pressure analogue): one datanode logs slow packet
//     writes and eventually drops a volume.
func (c *Cluster) runHDFS(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}

	dns := maxInt(2, spec.Containers)
	blocks := maxInt(2, spec.InputMB/256)
	killIdx, netNode, deadNode := c.pickFaultTargets(dns, fault)
	badDN := -1
	if fault == FaultNetwork || fault == FaultSpill {
		badDN = c.rng.Intn(dns)
	}

	blkID := func() string {
		sign := ""
		if c.rng.Intn(2) == 0 {
			sign = "-"
		}
		return fmt.Sprintf("blk_%s%d", sign, 1000000000000000000+c.rng.Int63n(8000000000000000000))
	}

	for dn := 0; dn < dns; dn++ {
		host := c.pickNode()
		if fault == FaultNode && dn == killIdx {
			host = deadNode
		}
		// The port is offset by the datanode index so two datanodes that
		// land on the same simulated host still get distinct session IDs.
		sid := fmt.Sprintf("dn_%04d_%s_%d", app, host, 50010+dn)
		th := newThread(c.rng, time.Duration(c.rng.Intn(200))*time.Millisecond)
		th.emit(c.HDFSInv.Get("hdfs.dn.starting"),
			v("host", host, "sid", fmt.Sprintf("DS-%08x-%s", c.rng.Int63n(1<<31), host)))
		th.emit(c.HDFSInv.Get("hdfs.dn.registered"), v("host", host, "nn", "nn1:8020"))
		th.emit(c.HDFSInv.Get("hdfs.dn.pool.joined"),
			v("bp", fmt.Sprintf("BP-%d-nn1", c.epoch), "nn", "nn1:8020"))

		anomalous := false
		for b := 0; b < blocks; b++ {
			th.wait(time.Duration(100+c.rng.Intn(300)) * time.Millisecond)
			blk := blkID()
			src, dest := c.pickNode(), host
			mirror := c.pickNode()
			if fault == FaultNetwork && dn == badDN {
				mirror = netNode
			}
			th.emit(c.HDFSInv.Get("hdfs.dn.block.receiving"),
				v("blk", blk, "src", src+":50010", "dest", dest+":50010"))
			if fault == FaultNetwork && dn == badDN && c.rng.Intn(2) == 0 {
				th.emit(c.HDFSInv.Get("hdfs.anom.mirror.broken"),
					v("blk", blk, "mirror", mirror+":50010"))
				th.emit(c.HDFSInv.Get("hdfs.anom.pipeline.rebuild"),
					v("blk", blk, "mirror", mirror+":50010"))
				anomalous = true
			} else if c.rng.Intn(3) > 0 {
				th.emit(c.HDFSInv.Get("hdfs.dn.mirror.forward"),
					v("blk", blk, "mirror", mirror+":50010"))
			}
			if fault == FaultSpill && dn == badDN && c.rng.Intn(2) == 0 {
				th.emit(c.HDFSInv.Get("hdfs.anom.slow.write"),
					v("blk", blk, "ms", itoa(300+c.rng.Intn(9000))))
				anomalous = true
			}
			th.emit(c.HDFSInv.Get("hdfs.dn.responder.terminating"), v("blk", blk))
			th.emit(c.HDFSInv.Get("hdfs.dn.block.received"),
				v("blk", blk, "bytes", itoa(1048576+c.rng.Intn(66060288)), "src", src+":50010"))
			th.emit(c.HDFSInv.Get("hdfs.dn.block.finalized"),
				v("blk", blk, "path", fmt.Sprintf("/data/%d/current", 1+c.rng.Intn(4))))
			if c.rng.Intn(4) == 0 {
				th.emit(c.HDFSInv.Get("hdfs.dn.scanner.verified"), v("blk", blk))
			}
			if c.rng.Intn(3) == 0 {
				th.emit(c.HDFSInv.Get("hdfs.dn.heartbeat.kv"),
					v("n", itoa(b+1), "m", itoa(100+c.rng.Intn(5000)), "mb", itoa(200000+c.rng.Intn(800000))))
			}
			if c.rng.Intn(5) == 0 {
				th.emit(c.HDFSInv.Get("hdfs.dn.deleting"), v("blk", blkID()))
			}
		}
		// A degraded datanode must log at least one fault line even if every
		// per-block draw spared it — the fault touched it.
		if fault == FaultNetwork && dn == badDN && !anomalous {
			th.emit(c.HDFSInv.Get("hdfs.anom.mirror.broken"),
				v("blk", blkID(), "mirror", netNode+":50010"))
			anomalous = true
		}
		if fault == FaultSpill && dn == badDN {
			if !anomalous {
				th.emit(c.HDFSInv.Get("hdfs.anom.slow.write"),
					v("blk", blkID(), "ms", itoa(300+c.rng.Intn(9000))))
			}
			th.emit(c.HDFSInv.Get("hdfs.anom.volume.failed"),
				v("path", fmt.Sprintf("/data/%d/current", 1+c.rng.Intn(4))))
			anomalous = true
		}
		th.emit(c.HDFSInv.Get("hdfs.dn.blockreport"),
			v("n", itoa(100+c.rng.Intn(5000)), "nn", "nn1:8020", "ms", itoa(5+c.rng.Intn(200))))
		th.emit(c.HDFSInv.Get("hdfs.dn.shutdown"), nil)

		events := th.events
		if (fault == FaultKill || fault == FaultNode) && dn == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[sid] = true
		} else if anomalous {
			res.Affected[sid] = true
		}
		res.Sessions = append(res.Sessions, materialize(sid, logging.HDFS, c.clock, events))
	}
	return res
}
