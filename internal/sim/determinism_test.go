package sim

// Determinism is a contract of the simulator, not an accident: the
// conformance harness (internal/conformance) and the experiments golden
// test regenerate corpora from (seed, config) and compare byte-for-byte,
// so any hidden source of nondeterminism — map iteration, wall-clock
// reads, unseeded RNGs — breaks them. These tests pin the contract at
// the sim layer directly: same seed + same submission sequence must
// yield a byte-identical rendered log stream, identical daemon-side YARN
// records, and an identical ground-truth Affected set, for every
// framework × fault combination.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"intellog/internal/logging"
)

// renderResult flattens a job result into one canonical string: every
// session's records rendered through the framework formatter, the YARN
// daemon records, and the sorted ground-truth set.
func renderResult(res *JobResult) string {
	var b strings.Builder
	for _, s := range res.Sessions {
		fmt.Fprintf(&b, "== session %s (%s, %d records)\n", s.ID, s.Framework, s.Len())
		f := logging.FormatterFor(s.Framework)
		for _, r := range s.Records {
			b.WriteString(f.Render(r))
			b.WriteByte('\n')
		}
	}
	yf := logging.FormatterFor(logging.Yarn)
	fmt.Fprintf(&b, "== yarn (%d records)\n", len(res.YarnRecords))
	for _, r := range res.YarnRecords {
		b.WriteString(yf.Render(r))
		b.WriteByte('\n')
	}
	affected := make([]string, 0, len(res.Affected))
	for id := range res.Affected {
		affected = append(affected, id)
	}
	sort.Strings(affected)
	fmt.Fprintf(&b, "== affected %v\n", affected)
	return b.String()
}

// runOnce builds a fresh cluster from the seed and submits one job, so
// two calls share no state at all.
func runOnce(seed int64, spec JobSpec, fault FaultKind) *JobResult {
	return NewCluster(8, seed).RunJob(spec, fault)
}

func TestJobStreamDeterminism(t *testing.T) {
	frameworks := []logging.Framework{
		logging.Spark, logging.MapReduce, logging.Tez, logging.TensorFlow,
		logging.Flink, logging.HDFS, logging.YarnRM,
	}
	faults := []FaultKind{FaultNone, FaultKill, FaultNetwork, FaultNode, FaultSpill, FaultIdleContainers, FaultSlowShutdown}
	for _, fw := range frameworks {
		for _, fault := range faults {
			fw, fault := fw, fault
			t.Run(fmt.Sprintf("%s/%s", fw, fault), func(t *testing.T) {
				t.Parallel()
				spec := JobSpec{
					Framework: fw, Name: "determinism-probe",
					InputMB: 1024, Containers: 4, CoresPerContainer: 2, MemoryMB: 2048,
				}
				const seed = 424242
				a := renderResult(runOnce(seed, spec, fault))
				b := renderResult(runOnce(seed, spec, fault))
				if a != b {
					t.Fatalf("same seed produced different streams; first divergence:\n%s", firstLineDiff(a, b))
				}
				if a == "" {
					t.Fatal("rendered stream is empty")
				}
			})
		}
	}
}

// TestJobStreamSeedSensitivity guards against the opposite failure: a
// simulator that ignores its seed would pass the determinism test
// trivially.
func TestJobStreamSeedSensitivity(t *testing.T) {
	spec := JobSpec{
		Framework: logging.Spark, Name: "determinism-probe",
		InputMB: 1024, Containers: 4, CoresPerContainer: 2, MemoryMB: 2048,
	}
	a := renderResult(runOnce(1, spec, FaultKill))
	b := renderResult(runOnce(2, spec, FaultKill))
	if a == b {
		t.Fatal("different seeds produced byte-identical streams; simulator is ignoring its seed")
	}
}

func TestFaultInjectorDeterminism(t *testing.T) {
	mk := func() *FaultInjector {
		f := NewFaultInjector(777)
		f.TruncateProb, f.CorruptProb, f.DuplicateProb = 0.2, 0.2, 0.2
		f.ReorderWindow, f.CutProb = 5, 0.5
		return f
	}
	res := NewCluster(6, 31).RunJob(JobSpec{
		Framework: logging.MapReduce, Name: "inj-probe",
		InputMB: 512, Containers: 4, CoresPerContainer: 2, MemoryMB: 2048,
	}, FaultNone)
	var recs []logging.Record
	for _, s := range res.Sessions {
		recs = append(recs, s.Records...)
	}
	var lines []string
	f := logging.FormatterFor(logging.MapReduce)
	for _, r := range recs {
		lines = append(lines, f.Render(r))
	}

	p1 := mk().Perturb(append([]logging.Record(nil), recs...))
	p2 := mk().Perturb(append([]logging.Record(nil), recs...))
	if len(p1) != len(p2) {
		t.Fatalf("Perturb lengths diverge: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Message != p2[i].Message || !p1[i].Time.Equal(p2[i].Time) || p1[i].SessionID != p2[i].SessionID {
			t.Fatalf("Perturb record %d diverged:\n%+v\n%+v", i, p1[i], p2[i])
		}
	}

	l1 := mk().PerturbLines(append([]string(nil), lines...))
	l2 := mk().PerturbLines(append([]string(nil), lines...))
	if strings.Join(l1, "\n") != strings.Join(l2, "\n") {
		t.Fatalf("PerturbLines diverged; first divergence:\n%s",
			firstLineDiff(strings.Join(l1, "\n"), strings.Join(l2, "\n")))
	}
}

func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
