package sim

import "sort"

// Ground-truth export for the conformance harness: the simulator knows
// exactly which sessions a fault touched (JobResult.Affected), and the
// harness scores detection against that annotation. These helpers give
// the annotation a deterministic, aggregate shape.

// AffectedIDs returns the fault-touched session IDs of one job, sorted.
func (r *JobResult) AffectedIDs() []string {
	out := make([]string, 0, len(r.Affected))
	for id := range r.Affected {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SessionIDs returns every session ID of one job, in session order.
func (r *JobResult) SessionIDs() []string {
	out := make([]string, 0, len(r.Sessions))
	for _, s := range r.Sessions {
		out = append(out, s.ID)
	}
	return out
}

// MergeAffected unions the Affected annotations of several jobs into one
// ground-truth set.
func MergeAffected(jobs []*JobResult) map[string]bool {
	out := map[string]bool{}
	for _, j := range jobs {
		for id := range j.Affected {
			out[id] = true
		}
	}
	return out
}
