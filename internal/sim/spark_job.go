package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runSpark simulates one Spark job: Containers executor containers, each a
// session; tasks are spread over stages and interleave within an executor
// up to CoresPerContainer at a time. The driver runs on the client and is
// not a YARN session (matching the paper's per-container session counts).
func (c *Cluster) runSpark(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}

	stages := 1 + spec.InputMB/512
	if spec.Name == "KMeans" || spec.Name == "PageRank" {
		stages += 3 // iterative workloads run extra stages
	}
	tasksPerStage := maxInt(spec.Containers, spec.InputMB/128)

	// Fault targets. Network-style faults hit one victim executor's
	// fetches hard and graze the rest with low probability — on a large
	// cluster most executors never touch the failed node, which keeps the
	// share of problem sessions small (as in the paper's case studies).
	killTarget, netNode, deadNode := c.pickFaultTargets(spec.Containers, fault)
	victim := -1
	switch fault {
	case FaultNetwork:
		victim = c.rng.Intn(spec.Containers)
	case FaultNode:
		victim = killTarget
	case FaultSpill:
		victim = c.rng.Intn(spec.Containers)
	}
	idle := map[int]bool{}
	if fault == FaultIdleContainers {
		// SPARK-19731: the input is small enough that some executors never
		// receive a task.
		tasksPerStage = maxInt(1, spec.Containers/2)
		for i := tasksPerStage; i < spec.Containers; i++ {
			idle[i] = true
		}
	}

	tid := 0
	driverAddr := fmt.Sprintf("%s:%d", c.pickNode(), 35000+c.rng.Intn(1000))
	for exec := 0; exec < spec.Containers; exec++ {
		cid := c.containerID(app, exec+2)
		node := c.pickNode()
		if fault == FaultNode && exec == killTarget {
			node = deadNode
		}
		main := newThread(c.rng, 0)

		// Startup.
		for _, sig := range []string{"TERM", "HUP", "INT"} {
			main.emit(c.Spark.Get("spark.signal.registered"), v("sig", sig))
		}
		main.emit(c.Spark.Get("spark.acl.view"), v("user", "hadoop"))
		main.emit(c.Spark.Get("spark.acl.modify"), v("user", "hadoop"))
		main.emit(c.Spark.Get("spark.acl.disabled"), nil)
		main.emit(c.Spark.Get("spark.driver.connecting"), v("driverurl", "spark://CoarseGrainedScheduler@"+driverAddr))
		main.emit(c.Spark.Get("spark.driver.registered"), nil)
		main.emit(c.Spark.Get("spark.driver.props"), v("addr", driverAddr))
		main.emit(c.Spark.Get("spark.driver.executor"), v("execid", itoa(exec+1), "host", node))
		main.emit(c.Spark.Get("spark.memory.started"), v("cap", itoa(spec.MemoryMB*6/10)))
		main.emit(c.Spark.Get("spark.directory.created"),
			v("path", fmt.Sprintf("/tmp/blockmgr-%04x/%02d", c.rng.Intn(1<<16), exec)))
		main.emit(c.Spark.Get("spark.env.slf4j"), nil)
		main.emit(c.Spark.Get("spark.env.blocktransfer"), nil)
		main.emit(c.Spark.Get("spark.env.outputcommit"), nil)
		main.emit(c.Spark.Get("spark.serializer"), nil)
		main.emit(c.Spark.Get("spark.netty.server"), v("addr", fmt.Sprintf("%s:%d", node, 33000+c.rng.Intn(2000))))
		main.emit(c.Spark.Get("spark.ui.bound"),
			v("svc", "org.apache.spark.network.netty.NettyBlockTransferService", "port", itoa(33000+c.rng.Intn(2000))))
		bmid := fmt.Sprintf("BlockManagerId_%d_%s", exec+1, node)
		main.emit(c.Spark.Get("spark.block.manager.registering"), v("bmid", bmid))
		main.emit(c.Spark.Get("spark.block.manager.registered"), v("bmid", bmid))
		main.emit(c.Spark.Get("spark.block.manager.initialized"), v("bmid", bmid))

		// Tasks per stage, interleaved across core slots.
		threads := []*threadGen{main}
		forcedFail := false
		if !idle[exec] {
			base := main.now
			for stage := 0; stage < stages; stage++ {
				bcast := itoa(stage)
				bc := newThread(c.rng, base)
				bc.emit(c.Spark.Get("spark.broadcast.reading"), v("bid", bcast))
				bc.emit(c.Spark.Get("spark.broadcast.read"), v("bid", bcast, "ms", itoa(3+c.rng.Intn(40))))
				bc.emit(c.Spark.Get("spark.broadcast.stored"), v("bid", bcast, "kb", itoa(4+c.rng.Intn(64))))
				threads = append(threads, bc)

				myTasks := tasksPerStage / spec.Containers
				if exec < tasksPerStage%spec.Containers {
					myTasks++
				}
				slotEnd := make([]time.Duration, maxInt(1, spec.CoresPerContainer))
				for ti := 0; ti < myTasks; ti++ {
					slot := ti % len(slotEnd)
					start := maxDur(base+50*time.Millisecond, slotEnd[slot])
					th := newThread(c.rng, start)
					tid++
					c.sparkTask(th, spec, stage, ti, tid, fault, exec == victim, netNode, &forcedFail)
					slotEnd[slot] = th.now
					threads = append(threads, th)
				}
				maxEnd := base
				for _, e := range slotEnd {
					maxEnd = maxDur(maxEnd, e)
				}
				base = maxEnd + 20*time.Millisecond
			}
			main.now = base
		} else {
			main.wait(2 * time.Second)
		}

		// Shutdown.
		main.emit(c.Spark.Get("spark.shutdown.driver.commanded"), nil)
		main.emit(c.Spark.Get("spark.shutdown.invoking"), nil)
		if fault == FaultSlowShutdown && c.rng.Intn(2) == 0 {
			main.emit(c.Spark.Get("spark.anom.driver.disconnected"), v("addr", driverAddr))
			res.Affected[cid] = true
		}
		main.emit(c.Spark.Get("spark.directory.deleting"),
			v("path", fmt.Sprintf("/tmp/blockmgr-%04x/%02d", c.rng.Intn(1<<16), exec)))
		main.emit(c.Spark.Get("spark.memory.cleared"), nil)
		main.emit(c.Spark.Get("spark.block.manager.stopped"), nil)
		main.emit(c.Spark.Get("spark.shutdown.hook"), nil)

		// The heartbeater is its own thread and keeps reporting until the
		// executor actually stops, so its lines interleave with both the
		// task phase and the shutdown messages.
		hb := newThread(c.rng, 2*time.Second)
		for hb.now < main.now {
			hb.emit(c.Spark.Get("spark.heartbeat.sent"), v("n", itoa(c.rng.Intn(30))))
			if c.rng.Intn(4) == 0 {
				hb.emit(c.Spark.Get("spark.cleaner.cleaned"), v("accid", itoa(1+c.rng.Intn(500))))
			}
			hb.wait(time.Duration(400+c.rng.Intn(400)) * time.Millisecond)
		}
		threads = append(threads, hb)

		events := mergeThreads(threads...)
		if (fault == FaultKill || fault == FaultNode) && exec == killTarget {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		}
		if idle[exec] {
			res.Affected[cid] = true
		}
		if fault == FaultNetwork || (fault == FaultNode && exec != killTarget) {
			// fetch failures already emitted inside sparkTask for this exec?
			// Affected marking happens there via sentinel template check.
			for _, e := range events {
				if e.tpl.Anomalous {
					res.Affected[cid] = true
					break
				}
			}
		}
		if fault == FaultSpill {
			for _, e := range events {
				if e.tpl.Anomalous {
					res.Affected[cid] = true
					break
				}
			}
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.Spark, c.clock, events))
	}

	res.YarnRecords = c.yarnForJob(app, len(res.Sessions))
	return res
}

// sparkTask emits one task's lifecycle into its thread. onVictim marks
// tasks on the executor a network-style or spill fault targets.
func (c *Cluster) sparkTask(th *threadGen, spec JobSpec, stage, taskIdx, tid int, fault FaultKind, onVictim bool, netNode string, forcedFail *bool) {
	sTid := itoa(tid)
	sStage := fmt.Sprintf("%d.0", stage)
	sIdx := fmt.Sprintf("%d.0", taskIdx)
	th.emit(c.Spark.Get("spark.task.assigned"), v("tid", sTid))
	th.emit(c.Spark.Get("spark.task.running"), v("taskidx", sIdx, "stageid", sStage, "tid", sTid))
	if stage == 0 && taskIdx == 0 {
		th.emit(c.Spark.Get("spark.task.fetching.jar"),
			v("uri", "spark://"+netNodeOr(netNode, "host1")+":35000/jars/app.jar", "ts", itoa(1551400000)))
		th.emit(c.Spark.Get("spark.task.added.classloader"), v("path", "/tmp/app.jar"))
	}
	if stage > 0 {
		// Shuffle read stage.
		n := 1 + c.rng.Intn(8)
		th.emit(c.Spark.Get("spark.block.getting"), v("n", itoa(n), "m", itoa(n+c.rng.Intn(4))))
		if fault == FaultNetwork || fault == FaultNode {
			addr := fmt.Sprintf("%s:%d", netNode, 7337)
			failProb := 20 // 1-in-20 for bystander executors
			if onVictim {
				failProb = 4 // the victim's shuffle partners live on the dead node
			}
			fail := c.rng.Intn(failProb) == 0
			if onVictim && !*forcedFail {
				fail = true // the victim's first shuffle read always hits the node
			}
			if fail {
				*forcedFail = true
				th.emit(c.Spark.Get("spark.anom.fetch.failed"), v("addr", addr))
				th.emit(c.Spark.Get("spark.anom.fetch.retry"),
					v("blockid", fmt.Sprintf("shuffle_%d_%d_0", stage-1, taskIdx), "addr", addr, "ms", itoa(5000)))
			}
		}
		th.emit(c.Spark.Get("spark.fetch.started"), v("n", itoa(n), "ms", itoa(1+c.rng.Intn(30))))
		th.emit(c.Spark.Get("spark.fetch.local"), v("n", itoa(c.rng.Intn(4))))
	}
	spillNow := fault == FaultSpill && onVictim && c.rng.Intn(2) == 0
	if fault == FaultSpill && onVictim && !*forcedFail {
		spillNow = true
	}
	if spillNow {
		*forcedFail = true
		th.emit(c.Spark.Get("spark.anom.spill"), v("thr", itoa(40+tid), "mb", itoa(spec.MemoryMB/2)))
		th.emit(c.Spark.Get("spark.anom.spill.file"),
			v("path", fmt.Sprintf("/tmp/spill-%04x.dat", c.rng.Intn(1<<16)), "mb", itoa(spec.MemoryMB/2)))
	}
	if c.rng.Intn(3) == 0 {
		th.emit(c.Spark.Get("spark.block.stored.memory"),
			v("blockid", fmt.Sprintf("rdd_%d_%d", stage, taskIdx), "kb", itoa(64+c.rng.Intn(4096))))
	}
	if c.rng.Intn(5) == 0 {
		th.emit(c.Spark.Get("spark.block.found"), v("blockid", fmt.Sprintf("rdd_%d_%d", stage, taskIdx)))
	}
	th.wait(time.Duration(50+c.rng.Intn(400)) * time.Millisecond)
	th.emit(c.Spark.Get("spark.task.finished"),
		v("taskidx", sIdx, "stageid", sStage, "tid", sTid, "bytes", itoa(900+c.rng.Intn(3000))))
}

// pickFaultTargets selects the container index and nodes a fault hits.
func (c *Cluster) pickFaultTargets(containers int, fault FaultKind) (target int, netNode, deadNode string) {
	target = -1
	netNode = c.pickNode()
	deadNode = netNode
	switch fault {
	case FaultKill, FaultNode:
		if containers > 0 {
			target = c.rng.Intn(containers)
		}
	}
	return target, netNode, deadNode
}

func netNodeOr(n, def string) string {
	if n == "" {
		return def
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
