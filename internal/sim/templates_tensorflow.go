package sim

import "intellog/internal/logging"

// TensorFlowTemplates models distributed TensorFlow training containers
// (parameter servers + workers under ParameterServerStrategy) — the
// paper's §9 future work. Messages follow tf.estimator / distributed
// runtime logging.
func TensorFlowTemplates() *Inventory {
	ts := []*Template{
		// --- server bring-up (both roles) --------------------------------------
		tpl("tf.server.started", "tensorflow/core/distributed_runtime/rpc/grpc_server_lib.cc",
			"Started server with target {target}",
			ents("server", "target"), locs("target"),
			ops(op("", "start", "server"))),
		tpl("tf.channel.cache", "tensorflow/core/distributed_runtime/rpc/grpc_channel.cc",
			"Initialize GrpcChannelCache for job {jobname} at {addr}",
			ents("grpc channel cache", "job"), ids("jobname"), locs("addr"),
			ops(op("", "initialize", "grpc channel cache"))),
		tpl("tf.device.created", "tensorflow/core/common_runtime/device_factory.cc",
			"Created device {device} with {mb} MB memory",
			ents("device", "memory"), ids("device"), vals("mb"),
			ops(op("", "create", "device"))),

		// --- parameter server ---------------------------------------------------
		tpl("tf.ps.joined", "tensorflow/core/distributed_runtime/server_lib.cc",
			"Parameter server task {tasknum} joined the cluster",
			ents("parameter server task", "cluster"), ids("tasknum"),
			ops(op("parameter server task", "join", "cluster"))),
		tpl("tf.ps.serving", "tensorflow/core/distributed_runtime/master.cc",
			"Serving variable shards for {n} workers",
			ents("variable shard", "worker"), vals("n"),
			ops(op("", "serve", "variable shard"))),

		// --- worker training loop ------------------------------------------------
		tpl("tf.worker.session", "tensorflow/core/distributed_runtime/master_session.cc",
			"Start master session {sessid} with config",
			ents("master session"), ids("sessid"),
			ops(op("", "start", "master session"))),
		tpl("tf.graph.init", "tensorflow/python/training/monitored_session.py",
			"Graph was finalized",
			ents("graph"), ops(op("graph", "finish", ""))),
		tpl("tf.ckpt.restoring", "tensorflow/python/training/saver.py",
			"Restoring parameters from checkpoint at {path}",
			ents("parameter", "checkpoint"), locs("path"),
			ops(op("", "restore", "parameter"))),
		tpl("tf.init.running", "tensorflow/python/training/monitored_session.py",
			"Running local init op",
			ents("local init op"), ops(op("", "run", "local init op"))),
		tpl("tf.init.done", "tensorflow/python/training/monitored_session.py",
			"Done running local init op",
			ents("local init op"), ops(op("", "run", "local init op"))),
		tpl("tf.step.loss", "tensorflow/python/training/basic_session_run_hooks.py",
			"global step {step} reached loss of {loss}",
			ents("global step", "loss"), ids("step"), vals("loss"),
			ops(op("global step", "reach", "loss"))),
		tpl("tf.step.rate.kv", "tensorflow/python/training/basic_session_run_hooks.py",
			"steps_per_sec={a} examples_per_sec={b}",
			nonNL(), vals("a", "b")),
		tpl("tf.ckpt.saving", "tensorflow/python/training/basic_session_run_hooks.py",
			"Saving checkpoints for step {step} into {path}",
			ents("checkpoint"), ids("step"), locs("path"),
			ops(op("", "save", "checkpoint"))),
		tpl("tf.loss.final", "tensorflow/python/training/estimator.py",
			"Loss for final step is {loss}",
			ents("loss", "final step"), vals("loss"),
			ops()),
		tpl("tf.worker.shutdown", "tensorflow/core/distributed_runtime/worker.cc",
			"Worker session closed and shutdown complete",
			ents("worker session", "shutdown"),
			ops(op("worker session", "close", ""))),

		// --- anomalous -------------------------------------------------------------
		tpl("tf.anom.grpc.unavailable", "tensorflow/core/distributed_runtime/rpc/grpc_remote_worker.cc",
			"Failed to connect to all addresses for job ps task {tasknum} at {addr}",
			level(logging.Error), anomalous(),
			ents("address", "job"), ids("tasknum"), locs("addr"),
			ops(op("", "fail", ""), op("", "connect", "address"))),
		tpl("tf.anom.grpc.retry", "tensorflow/core/distributed_runtime/rpc/grpc_remote_worker.cc",
			"Retrying rpc to {addr} after {ms} ms backoff",
			level(logging.Warn), anomalous(),
			ents("rpc"), locs("addr"), vals("ms"),
			ops(op("", "retry", "rpc"))),
		tpl("tf.anom.step.stall", "tensorflow/python/training/basic_session_run_hooks.py",
			"No progress on global step for {s} seconds",
			level(logging.Warn), anomalous(),
			ents("progress", "global step"), vals("s"),
			ops()),
		tpl("tf.anom.ckpt.failed", "tensorflow/python/training/saver.py",
			"Failed to save checkpoint to {path} because the filesystem is unavailable",
			level(logging.Error), anomalous(),
			ents("checkpoint", "filesystem"), locs("path"),
			ops(op("", "fail", ""), op("", "save", "checkpoint"))),
	}
	return NewInventory(logging.TensorFlow, ts)
}
