package sim

import (
	"strings"
	"testing"

	"intellog/internal/logging"
)

func tfSpec(containers, inputMB int) JobSpec {
	return JobSpec{
		Framework: logging.TensorFlow, Name: "ResNet50",
		InputMB: inputMB, Containers: containers, CoresPerContainer: 4, MemoryMB: 8192,
	}
}

func TestTensorFlowJobShape(t *testing.T) {
	c := NewCluster(8, 61)
	res := c.RunJob(tfSpec(8, 1024), FaultNone)
	// 2 parameter servers + 6 workers.
	if len(res.Sessions) != 8 {
		t.Fatalf("sessions = %d, want 8", len(res.Sessions))
	}
	psSessions, workerSessions := 0, 0
	for _, s := range res.Sessions {
		joined, loss := false, false
		for _, r := range s.Records {
			switch r.TemplateID {
			case "tf.ps.joined":
				joined = true
			case "tf.step.loss":
				loss = true
			}
		}
		switch {
		case joined && !loss:
			psSessions++
		case loss && !joined:
			workerSessions++
		default:
			t.Errorf("session %s is neither pure PS nor pure worker", s.ID)
		}
	}
	if psSessions != 2 || workerSessions != 6 {
		t.Errorf("ps=%d workers=%d, want 2/6", psSessions, workerSessions)
	}
	if len(res.Affected) != 0 {
		t.Error("clean TF job marked affected")
	}
}

func TestTensorFlowSessionLengthScalesWithInput(t *testing.T) {
	c := NewCluster(8, 62)
	small := c.RunJob(tfSpec(4, 256), FaultNone)
	big := c.RunJob(tfSpec(4, 4096), FaultNone)
	if big.TotalRecords() <= small.TotalRecords() {
		t.Errorf("records: big=%d small=%d — training length should scale with input",
			big.TotalRecords(), small.TotalRecords())
	}
}

func TestTensorFlowKillTruncates(t *testing.T) {
	c := NewCluster(8, 63)
	res := c.RunJob(tfSpec(8, 512), FaultKill)
	if len(res.Affected) != 1 {
		t.Fatalf("kill affected %d sessions", len(res.Affected))
	}
	for _, s := range res.Sessions {
		if res.Affected[s.ID] && s.Records[s.Len()-1].TemplateID == "tf.worker.shutdown" {
			t.Error("killed worker still shut down cleanly")
		}
	}
}

func TestTensorFlowNetworkFaultNamesOnePS(t *testing.T) {
	c := NewCluster(8, 64)
	res := c.RunJob(tfSpec(8, 1024), FaultNetwork)
	if len(res.Affected) == 0 {
		t.Fatal("network fault affected nothing")
	}
	addrs := map[string]bool{}
	for _, s := range res.Sessions {
		for _, r := range s.Records {
			if r.TemplateID == "tf.anom.grpc.unavailable" {
				for _, f := range strings.Fields(r.Message) {
					if strings.Contains(f, ":2222") {
						addrs[f] = true
					}
				}
			}
		}
	}
	if len(addrs) != 1 {
		t.Errorf("grpc failures name %d addresses, want 1: %v", len(addrs), addrs)
	}
}

func TestTensorFlowFormatterRoundTrip(t *testing.T) {
	c := NewCluster(4, 65)
	res := c.RunJob(tfSpec(4, 256), FaultNone)
	f := logging.FormatterFor(logging.TensorFlow)
	rec := res.Sessions[0].Records[0]
	parsed, ok := f.Parse(f.Render(rec))
	if !ok {
		t.Fatalf("round-trip parse failed for %q", f.Render(rec))
	}
	if parsed.Message != rec.Message || parsed.Level != rec.Level {
		t.Errorf("round trip mismatch: %+v vs %+v", parsed, rec)
	}
}
