package sim

import (
	"fmt"
	"testing"
	"time"

	"intellog/internal/logging"
)

func faultCorpus(sessions, perSession int) []logging.Record {
	t0 := time.Date(2019, 3, 1, 8, 0, 0, 0, time.UTC)
	var recs []logging.Record
	for s := 0; s < sessions; s++ {
		for i := 0; i < perSession; i++ {
			recs = append(recs, logging.Record{
				Time:      t0.Add(time.Duration(s*perSession+i) * time.Second),
				Message:   fmt.Sprintf("task %d finished on host%d", i, s),
				SessionID: fmt.Sprintf("container_%02d", s),
			})
		}
	}
	return recs
}

func TestFaultInjectorDeterministic(t *testing.T) {
	recs := faultCorpus(4, 10)
	mk := func() *FaultInjector {
		f := NewFaultInjector(42)
		f.TruncateProb = 0.3
		f.CorruptProb = 0.3
		f.DuplicateProb = 0.3
		f.ReorderWindow = 3
		f.CutProb = 0.5
		return f
	}
	a := mk().Perturb(append([]logging.Record(nil), recs...))
	b := mk().Perturb(append([]logging.Record(nil), recs...))
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i].Message != b[i].Message || !a[i].Time.Equal(b[i].Time) {
			t.Fatalf("same seed diverged at record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFaultInjectorReorderBounded(t *testing.T) {
	recs := faultCorpus(1, 200)
	f := NewFaultInjector(7)
	f.ReorderWindow = 4
	out := f.Perturb(recs)
	if len(out) != 200 {
		t.Fatalf("reorder changed record count: %d", len(out))
	}
	// A record never moves more than the window from its original slot.
	orig := map[string]int{}
	for i, r := range recs {
		orig[r.Message] = i
	}
	moved := false
	for i, r := range out {
		d := i - orig[r.Message]
		if d < 0 {
			d = -d
		}
		if d > f.ReorderWindow {
			t.Errorf("record %q displaced %d slots, window %d", r.Message, d, f.ReorderWindow)
		}
		if d > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("reordering moved nothing")
	}
}

func TestFaultInjectorCutsSessionTails(t *testing.T) {
	recs := faultCorpus(10, 20)
	f := NewFaultInjector(3)
	f.CutProb = 1 // cut every session
	out := f.Perturb(recs)
	if len(out) >= len(recs) {
		t.Fatalf("cutting every session kept %d of %d records", len(out), len(recs))
	}
	// Cuts drop tails: the records kept per session must be a prefix.
	next := map[string]int{}
	for _, r := range out {
		want := fmt.Sprintf("task %d finished", next[r.SessionID])
		if len(r.Message) < len(want) || r.Message[:len(want)] != want {
			t.Fatalf("session %s kept non-prefix record %q", r.SessionID, r.Message)
		}
		next[r.SessionID]++
	}
	for id, n := range next {
		if n == 0 || n > 20 {
			t.Errorf("session %s kept %d records", id, n)
		}
	}
}

func TestFaultInjectorDuplicatesAndMangles(t *testing.T) {
	recs := faultCorpus(2, 50)
	f := NewFaultInjector(11)
	f.DuplicateProb = 0.5
	out := f.Perturb(recs)
	if len(out) <= len(recs) {
		t.Errorf("duplication did not grow the stream: %d -> %d", len(recs), len(out))
	}

	g := NewFaultInjector(12)
	g.TruncateProb = 0.8
	g.CorruptProb = 0.8
	mangled := 0
	lines := make([]string, 0, len(recs))
	for _, r := range recs {
		lines = append(lines, r.Message)
	}
	for i, l := range g.PerturbLines(lines) {
		if l != recs[i].Message {
			mangled++
		}
	}
	if mangled == 0 {
		t.Error("high-probability mangling changed nothing")
	}
}

func TestFaultInjectorDescribe(t *testing.T) {
	f := NewFaultInjector(1)
	if got := f.DescribeFaults(); got != "none" {
		t.Errorf("idle injector describes as %q", got)
	}
	f.CorruptProb = 0.1
	f.CutProb = 0.1
	if got := f.DescribeFaults(); got != "corrupt,cut" {
		t.Errorf("DescribeFaults = %q", got)
	}
}
