package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// hiveOperators are the Hive physical operators a TPC-H-like query plan
// draws from (table scan, filter, select, join, group-by, reduce sink,
// file sink, limit), each with its per-kind init template.
var hiveOperators = []struct {
	prefix string
	tplID  string
}{
	{"TS", "tez.op.init.ts"},
	{"FIL", "tez.op.init.fil"},
	{"SEL", "tez.op.init.sel"},
	{"JOIN", "tez.op.init.join"},
	{"GBY", "tez.op.init.gby"},
	{"RS", "tez.op.init.rs"},
	{"FS", "tez.op.init.fs"},
	{"LIM", "tez.op.init.lim"},
}

// runTez simulates one Tez (Hive) query: a DAGAppMaster container plus
// reusable task containers; each container runs several task attempts for
// the query's vertices, with Hive operator logs — including the vague
// "{op} finished. Closing" / "{op} Close done" keys of §6.2.
func (c *Cluster) runTez(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}
	dagID := fmt.Sprintf("dag_%d_%04d_1", c.epoch, app)

	vertices := 2 + c.rng.Intn(4) // Map/Reducer vertices in the query plan
	tasksPerVertex := maxInt(1, spec.InputMB/256)
	containers := maxInt(1, spec.Containers)
	killIdx, netNode, deadNode := c.pickFaultTargets(containers, fault)

	// --- DAG AM -------------------------------------------------------------
	am := newThread(c.rng, 0)
	am.emit(c.Tez.Get("tez.am.created"), v("appid", c.appID(app)))
	am.emit(c.Tez.Get("tez.am.dag.submitted"), v("dagid", dagID, "user", "hive"))
	var attempts []tezAttempt
	for vtx := 0; vtx < vertices; vtx++ {
		vid := fmt.Sprintf("vertex_%d_%04d_1_%02d", c.epoch, app, vtx)
		am.emit(c.Tez.Get("tez.am.vertex.created"), v("vid", vid, "dagid", dagID))
		am.emit(c.Tez.Get("tez.am.vertex.init"), v("vid", vid))
		am.emit(c.Tez.Get("tez.am.parallelism"), v("vid", vid, "n", itoa(tasksPerVertex)))
		if vtx > 0 {
			prev := fmt.Sprintf("vertex_%d_%04d_1_%02d", c.epoch, app, vtx-1)
			am.emit(c.Tez.Get("tez.am.edge"), v("v1", prev, "v2", vid))
		}
		am.emit(c.Tez.Get("tez.am.vertex.running"), v("vid", vid))
		scheduledContainers := map[int]bool{}
		for t := 0; t < tasksPerVertex; t++ {
			att := fmt.Sprintf("attempt_%d_%04d_1_%02d_%06d_0", c.epoch, app, vtx, t)
			cidx := (vtx*tasksPerVertex + t) % containers
			attempts = append(attempts, tezAttempt{vid: vid, att: att, vtx: vtx, container: cidx})
			if scheduledContainers[cidx] || vtx > 0 {
				am.emit(c.Tez.Get("tez.am.container.reused"), v("cid", c.containerID(app, cidx+2), "attempt", att))
			} else {
				am.emit(c.Tez.Get("tez.am.task.scheduled"), v("attempt", att, "cid", c.containerID(app, cidx+2)))
			}
			scheduledContainers[cidx] = true
		}
	}
	for vtx := 0; vtx < vertices; vtx++ {
		vid := fmt.Sprintf("vertex_%d_%04d_1_%02d", c.epoch, app, vtx)
		am.emit(c.Tez.Get("tez.am.vertex.succeeded"), v("vid", vid))
	}
	am.emit(c.Tez.Get("tez.am.dag.finished"), v("dagid", dagID))
	amCID := c.containerID(app, 1)
	res.Sessions = append(res.Sessions, materialize(amCID, logging.Tez, c.clock, am.events))

	// --- task containers ---------------------------------------------------------
	forcedFail := false
	for cidx := 0; cidx < containers; cidx++ {
		cid := c.containerID(app, cidx+2)
		node := c.pickNode()
		if fault == FaultNode && cidx == killIdx {
			node = deadNode
		}
		_ = node
		th := newThread(c.rng, time.Duration(300+c.rng.Intn(300))*time.Millisecond)
		th.emit(c.Tez.Get("tez.child.starting"), v("cid", cid, "attempt", firstAttemptOf(attempts, cidx)))
		th.emit(c.Tez.Get("tez.child.localized"),
			v("uri", fmt.Sprintf("hdfs://nn1:8020/apps/tez/%s/hive-exec.jar", c.appID(app))))
		th.emit(c.Tez.Get("tez.child.workdir"),
			v("path", fmt.Sprintf("/data/yarn/local/%s/%02d", c.appID(app), cidx)))
		anomalous := false
		for _, a := range attempts {
			if a.container != cidx {
				continue
			}
			if c.tezAttempt(th, spec, a, fault, netNode, &forcedFail) {
				anomalous = true
			}
		}
		th.emit(c.Tez.Get("tez.child.exit"), v("cid", cid))

		events := th.events
		if (fault == FaultKill || fault == FaultNode) && cidx == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		} else if anomalous {
			res.Affected[cid] = true
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.Tez, c.clock, events))
	}

	res.YarnRecords = c.yarnForJob(app, len(res.Sessions))
	return res
}

type tezAttempt struct {
	vid       string
	att       string
	vtx       int
	container int
}

// tezAttempt emits one task attempt's lifecycle; returns whether it
// produced anomalous messages.
func (c *Cluster) tezAttempt(th *threadGen, spec JobSpec, a tezAttempt, fault FaultKind, netNode string, forcedFail *bool) bool {
	anomalous := false
	th.emit(c.Tez.Get("tez.task.init"), v("attempt", a.att))
	th.emit(c.Tez.Get("tez.task.starting"), v("attempt", a.att))
	heartbeatStart := th.now
	th.emit(c.Tez.Get("tez.input.init"), v("inputid", fmt.Sprintf("input_%d_0", a.vtx), "vid", a.vid))
	th.emit(c.Tez.Get("tez.output.init"), v("outputid", fmt.Sprintf("output_%d_0", a.vtx), "vid", a.vid))
	th.emit(c.Tez.Get("tez.processor.init"), v("vid", a.vid))

	// Reduce-side vertices shuffle their inputs concurrently with operator
	// initialisation (Tez pipelines the two), so their log lines interleave
	// nondeterministically.
	shuffleTh := newThread(c.rng, th.now)
	if a.vtx > 0 {
		n := 1 + c.rng.Intn(6)
		shuffleTh.emit(c.Tez.Get("tez.shuffle.assigned"), v("n", itoa(n), "attempt", a.att))
		for f := 0; f < n; f++ {
			netFault := fault == FaultNetwork || fault == FaultNode
			fail := netFault && c.rng.Intn(8) == 0
			if netFault && !*forcedFail {
				fail = true // at least one fetch in the job hits the failed node
			}
			if fail {
				*forcedFail = true
				shuffleTh.emit(c.Tez.Get("tez.anom.fetch.failed"),
					v("fid", itoa(f%2+1), "addr", netNode+":13563", "attempt", a.att))
				anomalous = true
				continue
			}
			src := fmt.Sprintf("attempt_%s_src_%06d_0", a.att[8:len(a.att)-9], f)
			shuffleTh.emit(c.Tez.Get("tez.shuffle.fetch"),
				v("fid", itoa(f%2+1), "srcattempt", src, "bytes", itoa(2000+c.rng.Intn(80000))))
		}
		shuffleTh.emit(c.Tez.Get("tez.shuffle.done"), v("attempt", a.att, "ms", itoa(5+c.rng.Intn(90))))
	}

	// Hive operator pipeline, initialising while the shuffle runs. The
	// operator mix is a random draw per attempt — query plans differ.
	opTh := newThread(c.rng, th.now)
	nops := 3 + c.rng.Intn(len(hiveOperators)-2)
	opids := make([]string, nops)
	kinds := c.rng.Perm(len(hiveOperators))
	for i := 0; i < nops; i++ {
		kind := hiveOperators[kinds[i%len(kinds)]]
		opids[i] = fmt.Sprintf("%s_%d", kind.prefix, i)
		opTh.emit(c.Tez.Get(kind.tplID), v("opid", opids[i]))
	}
	th.events = append(th.events, mergeThreads(shuffleTh, opTh)...)
	th.now = maxDur(shuffleTh.now, opTh.now)
	if fault == FaultSpill && c.rng.Intn(2) == 0 {
		th.emit(c.Tez.Get("tez.anom.spill"),
			v("path", fmt.Sprintf("/tmp/hive/spill_%04x.out", c.rng.Intn(1<<16))))
		th.emit(c.Tez.Get("tez.anom.spill.file"),
			v("path", fmt.Sprintf("/tmp/hive/spill_%04x.out", c.rng.Intn(1<<16)), "mb", itoa(spec.MemoryMB/2)))
		anomalous = true
	}
	for i := 0; i < nops; i++ {
		th.emit(c.Tez.Get("tez.op.forward"), v("opid", opids[i], "n", itoa(100+c.rng.Intn(100000))))
	}
	for i := nops - 1; i >= 0; i-- {
		th.emit(c.Tez.Get("tez.op.finished.closing"), v("opid", opids[i]))
		th.emit(c.Tez.Get("tez.op.close.done"), v("opid", opids[i]))
	}
	th.emit(c.Tez.Get("tez.task.counters.kv"),
		v("a", itoa(c.rng.Intn(1<<20)), "b", itoa(c.rng.Intn(1<<20)), "c", itoa(c.rng.Intn(1<<10))))
	th.emit(c.Tez.Get("tez.task.done"), v("attempt", a.att))
	th.emit(c.Tez.Get("tez.task.closed"), v("attempt", a.att, "ms", itoa(10+c.rng.Intn(200))))

	// The TaskReporter heartbeats concurrently with the whole attempt.
	beats := 2 + c.rng.Intn(3) + spec.InputMB/1024
	reporter := newThread(c.rng, heartbeatStart)
	interval := (th.now - heartbeatStart) / time.Duration(beats+1)
	for step := 1; step <= beats && reporter.now < th.now; step++ {
		reporter.emit(c.Tez.Get("tez.task.heartbeat"),
			v("attempt", a.att, "frac", fmt.Sprintf("0.%02d", minI(99, step*100/(beats+1)))))
		reporter.wait(interval + time.Duration(c.rng.Intn(15))*time.Millisecond)
	}
	th.events = mergeThreads(th, reporter)
	return anomalous
}

func firstAttemptOf(attempts []tezAttempt, cidx int) string {
	for _, a := range attempts {
		if a.container == cidx {
			return a.att
		}
	}
	return "attempt_0_0000_1_00_000000_0"
}
