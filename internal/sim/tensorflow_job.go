package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runTensorFlow simulates one distributed training job under
// ParameterServerStrategy: Containers/4 parameter-server containers (min
// 1) plus worker containers, each a session. Training length (global
// steps) scales with InputMB; workers heartbeat loss lines and save
// checkpoints periodically, so sessions have the variable-length,
// value-heavy profile of real ML training logs.
func (c *Cluster) runTensorFlow(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}

	ps := maxInt(1, spec.Containers/4)
	workers := maxInt(1, spec.Containers-ps)
	steps := maxInt(20, spec.InputMB/16)
	killIdx, netNode, deadNode := c.pickFaultTargets(workers, fault)

	// Parameter-server containers.
	psAddrs := make([]string, ps)
	for i := 0; i < ps; i++ {
		node := c.pickNode()
		psAddrs[i] = fmt.Sprintf("%s:%d", node, 2222+i)
		if fault == FaultNode && i == 0 && killIdx < 0 {
			node = deadNode
		}
		cid := c.containerID(app, i+1)
		th := newThread(c.rng, 0)
		th.emit(c.TF.Get("tf.server.started"), v("target", "grpc://"+psAddrs[i]))
		th.emit(c.TF.Get("tf.device.created"), v("device", fmt.Sprintf("device_CPU_%d", i), "mb", itoa(spec.MemoryMB)))
		th.emit(c.TF.Get("tf.channel.cache"), v("jobname", fmt.Sprintf("job_worker_%d", i), "addr", psAddrs[i]))
		th.emit(c.TF.Get("tf.ps.joined"), v("tasknum", itoa(i)))
		th.emit(c.TF.Get("tf.ps.serving"), v("n", itoa(workers)))
		th.wait(time.Duration(steps*40) * time.Millisecond)
		th.emit(c.TF.Get("tf.worker.shutdown"), nil)
		res.Sessions = append(res.Sessions, materialize(cid, logging.TensorFlow, c.clock, th.events))
	}

	// For a network fault, one PS address lives on the failed node.
	badPS := 0
	if fault == FaultNetwork || fault == FaultNode {
		badPS = c.rng.Intn(ps)
		psAddrs[badPS] = netNode + ":2222"
	}

	// Worker containers.
	for w := 0; w < workers; w++ {
		cid := c.containerID(app, ps+w+1)
		node := c.pickNode()
		if fault == FaultNode && w == killIdx {
			node = deadNode
		}
		_ = node
		th := newThread(c.rng, time.Duration(100+c.rng.Intn(200))*time.Millisecond)
		th.emit(c.TF.Get("tf.server.started"), v("target", fmt.Sprintf("grpc://%s:2223", c.pickNode())))
		th.emit(c.TF.Get("tf.device.created"), v("device", fmt.Sprintf("device_CPU_%d", w), "mb", itoa(spec.MemoryMB)))
		for i := 0; i < ps; i++ {
			th.emit(c.TF.Get("tf.channel.cache"), v("jobname", fmt.Sprintf("job_ps_%d", i), "addr", psAddrs[i]))
		}
		th.emit(c.TF.Get("tf.worker.session"), v("sessid", fmt.Sprintf("session_%08x", c.rng.Int63n(1<<31))))
		th.emit(c.TF.Get("tf.graph.init"), nil)
		th.emit(c.TF.Get("tf.ckpt.restoring"), v("path", fmt.Sprintf("/ckpt/%s/model.ckpt-0", c.appID(app))))
		th.emit(c.TF.Get("tf.init.running"), nil)
		th.emit(c.TF.Get("tf.init.done"), nil)

		anomalous := false
		loss := 4.0 + c.rng.Float64()
		for s := 1; s <= steps; s += 5 + c.rng.Intn(10) {
			loss *= 0.85 + 0.1*c.rng.Float64()
			th.emit(c.TF.Get("tf.step.loss"),
				v("step", itoa(s), "loss", fmt.Sprintf("%.4f", loss)))
			if c.rng.Intn(3) == 0 {
				th.emit(c.TF.Get("tf.step.rate.kv"),
					v("a", fmt.Sprintf("%d.%d", 10+c.rng.Intn(40), c.rng.Intn(10)), "b", itoa(800+c.rng.Intn(4000))))
			}
			if c.rng.Intn(4) == 0 {
				th.emit(c.TF.Get("tf.ckpt.saving"),
					v("step", itoa(s), "path", fmt.Sprintf("/ckpt/%s/model.ckpt-%d", c.appID(app), s)))
			}
			if (fault == FaultNetwork || fault == FaultNode) && c.rng.Intn(3) == 0 {
				th.emit(c.TF.Get("tf.anom.grpc.unavailable"),
					v("tasknum", itoa(badPS), "addr", psAddrs[badPS]))
				th.emit(c.TF.Get("tf.anom.grpc.retry"),
					v("addr", psAddrs[badPS], "ms", itoa(100*(1+c.rng.Intn(8)))))
				anomalous = true
			}
			if fault == FaultSpill && c.rng.Intn(6) == 0 {
				// For ML jobs the "performance issue" analogue is a stalled
				// step counter (e.g. slow input pipeline).
				th.emit(c.TF.Get("tf.anom.step.stall"), v("s", itoa(30+c.rng.Intn(200))))
				anomalous = true
			}
		}
		th.emit(c.TF.Get("tf.loss.final"), v("loss", fmt.Sprintf("%.4f", loss)))
		th.emit(c.TF.Get("tf.ckpt.saving"),
			v("step", itoa(steps), "path", fmt.Sprintf("/ckpt/%s/model.ckpt-%d", c.appID(app), steps)))
		th.emit(c.TF.Get("tf.worker.shutdown"), nil)

		events := th.events
		if (fault == FaultKill || fault == FaultNode) && w == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		} else if anomalous {
			res.Affected[cid] = true
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.TensorFlow, c.clock, events))
	}

	res.YarnRecords = c.yarnForJob(app, len(res.Sessions))
	return res
}
