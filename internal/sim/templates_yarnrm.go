package sim

import "intellog/internal/logging"

// YarnRMTemplates models a ResourceManager HA pair: leader election
// through ZooKeeper, active/standby transitions, app lifecycle handling
// on the active, and state-store sync on the standby. Each RM instance
// is one session; the interesting failure mode is failover, where the
// standby wins the election and replays recovery.
func YarnRMTemplates() *Inventory {
	ts := []*Template{
		// --- shared daemon lifecycle -------------------------------------------
		tpl("rm.started", "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager",
			"Starting ResourceManager {rmid} at {host}",
			ents("resourcemanager"), ids("rmid"), locs("host"),
			ops(op("", "start", "resourcemanager"))),
		tpl("rm.zk.connected", "org.apache.hadoop.ha.ActiveStandbyElector",
			"Session connected to zookeeper quorum {quorum}",
			ents("session", "zookeeper quorum"), locs("quorum"),
			ops(op("session", "connect", ""))),
		tpl("rm.election.joined", "org.apache.hadoop.ha.ActiveStandbyElector",
			"Joined leader election for {rmid}",
			ents("leader election"), ids("rmid"),
			ops(op("", "join", "leader election"))),
		tpl("rm.statestore.loaded", "org.apache.hadoop.yarn.server.resourcemanager.recovery.ZKRMStateStore",
			"Loaded RM state store with {n} applications",
			ents("rm state store", "application"), vals("n"),
			ops(op("", "load", "rm state store"))),
		tpl("rm.sync.kv", "org.apache.hadoop.yarn.server.resourcemanager.recovery.ZKRMStateStore",
			"synced={n} pending={m} lagms={ms}",
			nonNL(), vals("n", "m", "ms")),
		tpl("rm.shutdown", "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager",
			"Transitioning ResourceManager {rmid} services to state STOPPED",
			ents("resourcemanager"), ids("rmid"),
			ops(op("", "stop", "resourcemanager"))),

		// --- active role --------------------------------------------------------
		tpl("rm.active.elected", "org.apache.hadoop.ha.ActiveStandbyElector",
			"Checking for any old active which needs to be fenced",
			ents("old active"),
			ops(op("", "check", "old active"))),
		tpl("rm.active.transition", "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager",
			"Transitioning {rmid} to active state",
			ents("active state"), ids("rmid"),
			ops(op("", "transition", "active state"))),
		tpl("rm.app.submitted", "org.apache.hadoop.yarn.server.resourcemanager.ClientRMService",
			"Application {app} submitted by user {user}",
			ents("application", "user"), ids("app", "user"),
			ops(op("", "submit", "application"))),
		tpl("rm.app.accepted", "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl",
			"Application {app} state change from SUBMITTED to ACCEPTED",
			ents("application"), ids("app"),
			ops(op("application", "change", ""))),
		tpl("rm.attempt.registered", "org.apache.hadoop.yarn.server.resourcemanager.ApplicationMasterService",
			"AM registration for attempt {attempt} from host {host}",
			ents("am registration", "attempt"), ids("attempt"), locs("host"),
			ops(op("", "register", "am"))),
		tpl("rm.container.allocated", "org.apache.hadoop.yarn.server.resourcemanager.scheduler.SchedulerNode",
			"Assigned container {container} of capacity memory {mb} on host {host}",
			ents("container", "capacity"), ids("container"), vals("mb"), locs("host"),
			ops(op("", "assign", "container"))),
		tpl("rm.app.finished", "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl",
			"Application {app} state change from RUNNING to FINISHED",
			ents("application"), ids("app"),
			ops(op("application", "change", ""))),
		tpl("rm.attempt.unregistered", "org.apache.hadoop.yarn.server.resourcemanager.ApplicationMasterService",
			"AM for attempt {attempt} unregistered with final status SUCCEEDED",
			ents("am", "attempt"), ids("attempt"),
			ops(op("am", "unregister", ""))),

		// --- standby role -------------------------------------------------------
		tpl("rm.standby.transition", "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager",
			"Transitioning {rmid} to standby state",
			ents("standby state"), ids("rmid"),
			ops(op("", "transition", "standby state"))),
		tpl("rm.standby.watching", "org.apache.hadoop.ha.ActiveStandbyElector",
			"Watching the active's election znode {znode} for deletion",
			ents("election znode"), ids("znode"),
			ops(op("", "watch", "election znode"))),

		// --- anomalous: failover and degradation -------------------------------
		tpl("rm.anom.zk.expired", "org.apache.hadoop.ha.ActiveStandbyElector",
			"Zookeeper session for {rmid} expired connection loss to quorum {quorum}",
			level(logging.Error), anomalous(),
			ents("zookeeper session", "connection"), ids("rmid"), locs("quorum"),
			ops(op("zookeeper session", "expire", ""))),
		tpl("rm.anom.fencing", "org.apache.hadoop.yarn.server.resourcemanager.recovery.ZKRMStateStore",
			"Fencing old active {rmid} before taking over the state store",
			level(logging.Warn), anomalous(),
			ents("old active", "state store"), ids("rmid"),
			ops(op("", "fence", "old active"))),
		tpl("rm.anom.failover.recovering", "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager",
			"Failover detected recovering {n} running applications from the state store",
			level(logging.Warn), anomalous(),
			ents("failover", "application", "state store"), vals("n"),
			ops(op("", "recover", "application"))),
		tpl("rm.anom.nm.resync", "org.apache.hadoop.yarn.server.resourcemanager.ResourceTrackerService",
			"Node {host} asked to resync after resourcemanager restart",
			level(logging.Warn), anomalous(),
			ents("node", "resourcemanager"), locs("host"),
			ops(op("node", "resync", ""))),
		tpl("rm.anom.statestore.slow", "org.apache.hadoop.yarn.server.resourcemanager.recovery.ZKRMStateStore",
			"Slow state store write took {ms} ms exceeding the fencing budget",
			level(logging.Warn), anomalous(),
			ents("state store write", "fencing budget"), vals("ms"),
			ops(op("state store write", "exceed", ""))),
	}
	return NewInventory(logging.YarnRM, ts)
}
