package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runFlink simulates one Flink streaming job: a JobManager container plus
// TaskManager containers, each a session. The job runs a fixed pipeline
// (source → transform → sink tasks spread across TaskManagers) through a
// number of checkpoint rounds scaled by InputMB, so session lengths vary
// with input size the way the Hadoop generators' do.
//
// Fault mapping:
//   - Kill/Node: one TaskManager session truncates mid-stream (SIGKILL —
//     no shutdown lines), and its in-flight checkpoints expire on the
//     JobManager.
//   - Network: the JobManager heartbeat path to one TaskManager degrades;
//     that TaskManager logs heartbeat timeouts and reconnect attempts and
//     declines barriers, the JobManager logs expired checkpoints.
//   - Spill (the performance-issue analogue): one TaskManager
//     backpressures, queuing checkpoint barriers for seconds.
func (c *Cluster) runFlink(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}

	jobID := fmt.Sprintf("%016x", c.rng.Int63())
	tms := maxInt(1, spec.Containers-1)
	rounds := maxInt(3, spec.InputMB/512)
	tasksPerTM := maxInt(1, spec.CoresPerContainer)
	killIdx, netNode, deadNode := c.pickFaultTargets(tms, fault)
	badTM := -1
	if fault == FaultNetwork || fault == FaultSpill {
		badTM = c.rng.Intn(tms)
	}

	taskName := func(tm, slot int) string {
		kinds := []string{"Source_Kafka", "Map_Enrich", "Window_Aggregate", "Sink_Parquet"}
		return fmt.Sprintf("%s_%d_%d", kinds[(tm+slot)%len(kinds)], tm, slot)
	}

	// --- JobManager ---------------------------------------------------------
	jm := newThread(c.rng, 0)
	jmCID := c.containerID(app, 1)
	jm.emit(c.Flink.Get("flink.jm.rest.started"), v("addr", c.pickNode()+":8081"))
	jm.emit(c.Flink.Get("flink.jm.rm.started"), v("addr", c.pickNode()+":6123"))
	jm.emit(c.Flink.Get("flink.jm.job.received"), v("jobid", jobID))
	for tm := 0; tm < tms; tm++ {
		jm.emit(c.Flink.Get("flink.jm.slot.request"),
			v("profile", fmt.Sprintf("slot_%dcpu_%dmb", spec.CoresPerContainer, spec.MemoryMB), "jobid", jobID))
	}
	jm.emit(c.Flink.Get("flink.jm.job.running"), v("jobid", jobID))
	for tm := 0; tm < tms; tm++ {
		host := c.pickNode()
		if fault == FaultNode && tm == killIdx {
			host = deadNode
		}
		for slot := 0; slot < tasksPerTM; slot++ {
			jm.emit(c.Flink.Get("flink.jm.task.deploying"),
				v("taskname", taskName(tm, slot), "attempt", itoa(tm*tasksPerTM+slot), "host", host))
		}
	}
	jmAnomalous := false
	for ck := 1; ck <= rounds; ck++ {
		jm.wait(time.Duration(200+c.rng.Intn(400)) * time.Millisecond)
		jm.emit(c.Flink.Get("flink.jm.ckpt.triggering"), v("ckpt", itoa(ck), "jobid", jobID))
		failedRound := (fault == FaultNetwork && c.rng.Intn(2) == 0) ||
			((fault == FaultKill || fault == FaultNode) && ck > rounds/2)
		if failedRound {
			jm.emit(c.Flink.Get("flink.anom.ckpt.expired"), v("ckpt", itoa(ck), "jobid", jobID))
			jmAnomalous = true
			continue
		}
		jm.emit(c.Flink.Get("flink.jm.ckpt.completed"),
			v("ckpt", itoa(ck), "jobid", jobID,
				"bytes", itoa(100000+c.rng.Intn(4000000)), "ms", itoa(40+c.rng.Intn(400))))
	}
	jm.emit(c.Flink.Get("flink.jm.job.finished"), v("jobid", jobID))
	if jmAnomalous {
		res.Affected[jmCID] = true
	}
	res.Sessions = append(res.Sessions, materialize(jmCID, logging.Flink, c.clock, jm.events))

	// --- TaskManagers -------------------------------------------------------
	for tm := 0; tm < tms; tm++ {
		cid := c.containerID(app, tm+2)
		host := c.pickNode()
		if fault == FaultNode && tm == killIdx {
			host = deadNode
		}
		th := newThread(c.rng, time.Duration(50+c.rng.Intn(150))*time.Millisecond)
		th.emit(c.Flink.Get("flink.tm.started"),
			v("rid", fmt.Sprintf("tm_%s_%04d_%02d", host, app, tm), "addr", host+":6122"))
		for slot := 0; slot < tasksPerTM; slot++ {
			th.emit(c.Flink.Get("flink.tm.slot.offered"), v("slot", itoa(slot)))
		}
		for slot := 0; slot < tasksPerTM; slot++ {
			name, att := taskName(tm, slot), itoa(tm*tasksPerTM+slot)
			th.emit(c.Flink.Get("flink.tm.task.deploying"), v("taskname", name, "attempt", att))
			th.emit(c.Flink.Get("flink.tm.task.running"), v("taskname", name, "attempt", att))
			th.emit(c.Flink.Get("flink.tm.statebackend"), v("taskname", name))
		}

		anomalous := false
		for ck := 1; ck <= rounds; ck++ {
			th.wait(time.Duration(200+c.rng.Intn(400)) * time.Millisecond)
			if fault == FaultNetwork && tm == badTM && c.rng.Intn(2) == 0 {
				th.emit(c.Flink.Get("flink.anom.heartbeat.timeout"), v("addr", netNode+":6123"))
				th.emit(c.Flink.Get("flink.anom.reconnect"),
					v("addr", netNode+":6123", "ms", itoa(100*(1+c.rng.Intn(10)))))
				th.emit(c.Flink.Get("flink.anom.ckpt.declined"),
					v("ckpt", itoa(ck), "taskname", taskName(tm, c.rng.Intn(tasksPerTM))))
				anomalous = true
				continue
			}
			if fault == FaultSpill && tm == badTM && c.rng.Intn(2) == 0 {
				th.emit(c.Flink.Get("flink.anom.backpressure"),
					v("taskname", taskName(tm, c.rng.Intn(tasksPerTM)), "s", itoa(5+c.rng.Intn(55))))
				anomalous = true
			}
			for slot := 0; slot < tasksPerTM; slot++ {
				th.emit(c.Flink.Get("flink.tm.ckpt.snapshot"),
					v("ckpt", itoa(ck), "taskname", taskName(tm, slot), "ms", itoa(5+c.rng.Intn(120))))
				th.emit(c.Flink.Get("flink.tm.ckpt.ack"),
					v("ckpt", itoa(ck), "taskname", taskName(tm, slot)))
			}
			if c.rng.Intn(3) == 0 {
				th.emit(c.Flink.Get("flink.tm.watermark.kv"),
					v("wm", itoa(1551400000+ck*1000+c.rng.Intn(1000)), "n", itoa(c.rng.Intn(100000))))
			}
		}
		// A network-degraded TaskManager must log at least one timeout even
		// if every per-round draw spared it — the fault touched it.
		if fault == FaultNetwork && tm == badTM && !anomalous {
			th.emit(c.Flink.Get("flink.anom.heartbeat.timeout"), v("addr", netNode+":6123"))
			anomalous = true
		}
		for slot := 0; slot < tasksPerTM; slot++ {
			th.emit(c.Flink.Get("flink.tm.task.finished"),
				v("taskname", taskName(tm, slot), "attempt", itoa(tm*tasksPerTM+slot)))
		}
		th.emit(c.Flink.Get("flink.tm.shutdown"), nil)

		events := th.events
		if (fault == FaultKill || fault == FaultNode) && tm == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		} else if anomalous {
			res.Affected[cid] = true
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.Flink, c.clock, events))
	}

	res.YarnRecords = c.yarnForJob(app, len(res.Sessions))
	return res
}
