package sim

import (
	"intellog/internal/extract"
	"intellog/internal/logging"
)

// Option configures a template at construction.
type Option func(*Template)

// tpl builds a template. Templates default to INFO level and natural
// language; options attach the ground-truth annotations.
func tpl(id, source, text string, opts ...Option) *Template {
	t := &Template{ID: id, Source: source, Level: logging.Info, Text: text, NL: true}
	for _, o := range opts {
		o(t)
	}
	return t
}

// ents annotates the ground-truth entity phrases.
func ents(e ...string) Option { return func(t *Template) { t.Entities = e } }

// ids annotates the identifier placeholders.
func ids(f ...string) Option { return func(t *Template) { t.IDFields = f } }

// vals annotates the value placeholders.
func vals(f ...string) Option { return func(t *Template) { t.ValueFields = f } }

// locs annotates the locality placeholders.
func locs(f ...string) Option { return func(t *Template) { t.LocFields = f } }

// ops annotates the ground-truth operations.
func ops(o ...extract.Operation) Option { return func(t *Template) { t.Operations = o } }

// op is a shorthand operation constructor.
func op(subj, pred, obj string) extract.Operation {
	return extract.Operation{Subject: subj, Predicate: pred, Object: obj}
}

// nonNL marks a template as not natural language (key-value dump).
func nonNL() Option { return func(t *Template) { t.NL = false } }

// anomalous marks a fault-only template.
func anomalous() Option { return func(t *Template) { t.Anomalous = true } }

// level overrides the record severity.
func level(l logging.Level) Option { return func(t *Template) { t.Level = l } }
