package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"intellog/internal/logging"
)

// FaultKind enumerates the injectable problems. Kill, Network and Node
// reproduce the paper's three real-world scenarios (§6.4); Spill and
// IdleContainers reproduce the performance issue and SPARK-19731 bug of
// the case studies; SlowShutdown reproduces the paper's false-positive
// scenario (a benign message unseen in training due to config changes).
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultKill
	FaultNetwork
	FaultNode
	FaultSpill
	FaultIdleContainers
	FaultSlowShutdown
)

var faultNames = [...]string{"none", "kill", "network", "node", "spill", "idle-containers", "slow-shutdown"}

// String returns the fault's name.
func (f FaultKind) String() string {
	if f < FaultNone || f > FaultSlowShutdown {
		return fmt.Sprintf("fault(%d)", int(f))
	}
	return faultNames[f]
}

// JobSpec describes one submitted job.
type JobSpec struct {
	// Framework selects the generator.
	Framework logging.Framework
	// Name is the workload name (WordCount, KMeans, TPC-H Q8, …).
	Name string
	// InputMB drives session counts and lengths (the paper: "different
	// data sizes and configurations cause various log sequence lengths").
	InputMB int
	// Containers is the number of worker containers (executors / parallel
	// task slots); the AM is extra where applicable.
	Containers int
	// CoresPerContainer bounds intra-container task parallelism.
	CoresPerContainer int
	// MemoryMB is the per-container memory (configuration flavour only).
	MemoryMB int
}

// JobResult is a finished simulated job.
type JobResult struct {
	Spec JobSpec
	// Fault is the injected problem (FaultNone for clean jobs).
	Fault FaultKind
	// Sessions are the per-container log sessions (the unit IntelLog
	// analyses).
	Sessions []*logging.Session
	// YarnRecords are the daemon-side NM/RM log lines (Table 1 corpus).
	YarnRecords []logging.Record
	// Affected marks the session IDs the fault touched (ground truth for
	// precision/recall).
	Affected map[string]bool
}

// TotalRecords returns the number of log messages across sessions.
func (r *JobResult) TotalRecords() int {
	n := 0
	for _, s := range r.Sessions {
		n += s.Len()
	}
	return n
}

// Cluster is the simulated YARN cluster.
type Cluster struct {
	Nodes []string

	Spark   *Inventory
	MR      *Inventory
	Tez     *Inventory
	Yarn    *Inventory
	Nova    *Inventory
	TF      *Inventory
	Flink   *Inventory
	HDFSInv *Inventory
	RM      *Inventory

	rng    *rand.Rand
	clock  time.Time
	appSeq int
	epoch  int64
}

// NewCluster builds a cluster of n worker nodes with a deterministic RNG.
func NewCluster(n int, seed int64) *Cluster {
	if n < 1 {
		n = 1
	}
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("host%d", i+1)
	}
	return &Cluster{
		Nodes:   nodes,
		Spark:   SparkTemplates(),
		MR:      MapReduceTemplates(),
		Tez:     TezTemplates(),
		Yarn:    YarnTemplates(),
		Nova:    NovaTemplates(),
		TF:      TensorFlowTemplates(),
		Flink:   FlinkTemplates(),
		HDFSInv: HDFSTemplates(),
		RM:      YarnRMTemplates(),
		rng:     rand.New(rand.NewSource(seed)),
		clock:   time.Date(2019, 3, 1, 8, 0, 0, 0, time.UTC),
		epoch:   1551400000000,
	}
}

// nextApp reserves an application number and advances the cluster clock.
func (c *Cluster) nextApp() int {
	c.appSeq++
	c.clock = c.clock.Add(time.Duration(30+c.rng.Intn(90)) * time.Second)
	return c.appSeq
}

// appID formats a YARN application ID.
func (c *Cluster) appID(seq int) string { return fmt.Sprintf("application_%d_%04d", c.epoch, seq) }

// containerID formats a YARN container ID.
func (c *Cluster) containerID(app, n int) string {
	return fmt.Sprintf("container_%d_%04d_01_%06d", c.epoch, app, n)
}

// attemptID formats an MR task attempt ID ("m" or "r" kind).
func (c *Cluster) attemptID(app int, kind string, task int) string {
	return fmt.Sprintf("attempt_%d_%04d_%s_%06d_0", c.epoch, app, kind, task)
}

// pickNode returns a random node name.
func (c *Cluster) pickNode() string { return c.Nodes[c.rng.Intn(len(c.Nodes))] }

// event is a template emission at a relative offset within a session.
type event struct {
	at   time.Duration
	tpl  *Template
	vals map[string]string
}

// threadGen accumulates one logical thread's events with a drifting clock.
type threadGen struct {
	events []event
	now    time.Duration
	rng    *rand.Rand
}

// newThread starts a thread at the given offset.
func newThread(rng *rand.Rand, start time.Duration) *threadGen {
	return &threadGen{now: start, rng: rng}
}

// emit appends an event after a small random delay.
func (g *threadGen) emit(tpl *Template, vals map[string]string) {
	g.now += time.Duration(1+g.rng.Intn(40)) * time.Millisecond
	g.events = append(g.events, event{at: g.now, tpl: tpl, vals: vals})
}

// wait advances the thread clock.
func (g *threadGen) wait(d time.Duration) { g.now += d }

// mergeThreads interleaves threads by offset (stable).
func mergeThreads(threads ...*threadGen) []event {
	var all []event
	for _, t := range threads {
		all = append(all, t.events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	return all
}

// materialize renders events into a session starting at the given time.
func materialize(id string, fw logging.Framework, start time.Time, events []event) *logging.Session {
	s := &logging.Session{ID: id, Framework: fw}
	for _, e := range events {
		s.Records = append(s.Records, logging.Record{
			Time:       start.Add(e.at),
			Level:      e.tpl.Level,
			Source:     e.tpl.Source,
			Message:    e.tpl.Render(e.vals),
			Framework:  fw,
			SessionID:  id,
			TemplateID: e.tpl.ID,
		})
	}
	return s
}

// truncateAt drops the events after fraction f of the span — the SIGKILL
// model (no grace period, so no cleanup messages).
func truncateAt(events []event, f float64) []event {
	if len(events) == 0 {
		return events
	}
	cut := time.Duration(float64(events[len(events)-1].at) * f)
	out := events[:0]
	for _, e := range events {
		if e.at <= cut {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = events[:1]
	}
	return out
}

// v is shorthand for a values map.
func v(kv ...string) map[string]string {
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// itoa is shorthand for decimal formatting.
func itoa(n int) string { return fmt.Sprintf("%d", n) }
