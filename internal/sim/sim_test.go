package sim

import (
	"strings"
	"testing"

	"intellog/internal/logging"
)

func TestTemplateRender(t *testing.T) {
	tp := tpl("x.y", "Src", "fetcher#{fid} read {bytes} bytes")
	got := tp.Render(map[string]string{"fid": "1", "bytes": "2264"})
	if got != "fetcher#1 read 2264 bytes" {
		t.Errorf("Render = %q", got)
	}
	// Missing placeholder renders as 0, never leaking braces.
	if got := tp.Render(nil); strings.ContainsAny(got, "{}") {
		t.Errorf("Render leaked braces: %q", got)
	}
}

func TestTemplatePlaceholders(t *testing.T) {
	tp := tpl("x.y", "Src", "a {p} b {q} c")
	ph := tp.Placeholders()
	if len(ph) != 2 || ph[0] != "p" || ph[1] != "q" {
		t.Errorf("Placeholders = %v", ph)
	}
}

func TestInventoryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate template ID did not panic")
		}
	}()
	NewInventory(logging.Spark, []*Template{tpl("a", "S", "x"), tpl("a", "S", "y")})
}

func TestInventoryUnknownGetPanics(t *testing.T) {
	inv := NewInventory(logging.Spark, []*Template{tpl("a", "S", "x")})
	defer func() {
		if recover() == nil {
			t.Error("unknown template ID did not panic")
		}
	}()
	inv.Get("nope")
}

// TestAnnotationFieldsExist verifies every annotated ID/value/locality
// field is an actual placeholder of its template, across all inventories.
func TestAnnotationFieldsExist(t *testing.T) {
	for _, inv := range []*Inventory{SparkTemplates(), MapReduceTemplates(), TezTemplates(), YarnTemplates(), NovaTemplates()} {
		for _, tp := range inv.Templates {
			ph := map[string]bool{}
			for _, p := range tp.Placeholders() {
				ph[p] = true
			}
			for _, lists := range [][]string{tp.IDFields, tp.ValueFields, tp.LocFields} {
				for _, f := range lists {
					if !ph[f] {
						t.Errorf("%s: annotated field %q is not a placeholder", tp.ID, f)
					}
				}
			}
		}
	}
}

func TestSparkJobShape(t *testing.T) {
	c := NewCluster(8, 42)
	res := c.RunJob(JobSpec{Framework: logging.Spark, Name: "WordCount", InputMB: 1024, Containers: 4, CoresPerContainer: 2, MemoryMB: 2048}, FaultNone)
	if len(res.Sessions) != 4 {
		t.Fatalf("sessions = %d, want 4 executors", len(res.Sessions))
	}
	for _, s := range res.Sessions {
		if s.Len() < 20 {
			t.Errorf("session %s has only %d records", s.ID, s.Len())
		}
		first, last := s.Records[0], s.Records[s.Len()-1]
		if first.TemplateID != "spark.signal.registered" {
			t.Errorf("session starts with %s", first.TemplateID)
		}
		if last.TemplateID != "spark.shutdown.hook" {
			t.Errorf("session ends with %s", last.TemplateID)
		}
		for i := 1; i < s.Len(); i++ {
			if s.Records[i].Time.Before(s.Records[i-1].Time) {
				t.Fatalf("timestamps not monotonic in %s", s.ID)
			}
		}
	}
	if len(res.Affected) != 0 {
		t.Errorf("clean job marked affected sessions: %v", res.Affected)
	}
	if len(res.YarnRecords) == 0 {
		t.Error("no YARN daemon records")
	}
}

func TestSparkNoAnomalousTemplatesWhenClean(t *testing.T) {
	c := NewCluster(8, 7)
	res := c.RunJob(JobSpec{Framework: logging.Spark, Name: "KMeans", InputMB: 2048, Containers: 6, CoresPerContainer: 4, MemoryMB: 4096}, FaultNone)
	inv := SparkTemplates()
	for _, s := range res.Sessions {
		for _, r := range s.Records {
			if inv.Get(r.TemplateID).Anomalous {
				t.Fatalf("clean run emitted anomalous template %s", r.TemplateID)
			}
		}
	}
}

func TestSparkKillTruncates(t *testing.T) {
	c := NewCluster(8, 11)
	res := c.RunJob(JobSpec{Framework: logging.Spark, Name: "Sort", InputMB: 1024, Containers: 4, CoresPerContainer: 2, MemoryMB: 2048}, FaultKill)
	if len(res.Affected) != 1 {
		t.Fatalf("kill affected %d sessions, want 1", len(res.Affected))
	}
	for _, s := range res.Sessions {
		if res.Affected[s.ID] {
			if s.Records[s.Len()-1].TemplateID == "spark.shutdown.hook" {
				t.Error("killed session still ends with shutdown hook")
			}
		}
	}
}

func TestSparkIdleContainers(t *testing.T) {
	c := NewCluster(8, 13)
	res := c.RunJob(JobSpec{Framework: logging.Spark, Name: "WordCount", InputMB: 256, Containers: 8, CoresPerContainer: 2, MemoryMB: 2048}, FaultIdleContainers)
	if len(res.Affected) == 0 {
		t.Fatal("no idle containers marked")
	}
	for _, s := range res.Sessions {
		hasTask := false
		for _, r := range s.Records {
			if strings.HasPrefix(r.TemplateID, "spark.task.") {
				hasTask = true
			}
		}
		if res.Affected[s.ID] && hasTask {
			t.Errorf("idle session %s has task messages", s.ID)
		}
		if !res.Affected[s.ID] && !hasTask {
			t.Errorf("busy session %s has no task messages", s.ID)
		}
	}
}

func TestMapReduceJobShape(t *testing.T) {
	c := NewCluster(8, 21)
	res := c.RunJob(JobSpec{Framework: logging.MapReduce, Name: "WordCount", InputMB: 1024, Containers: 8, CoresPerContainer: 2, MemoryMB: 2048}, FaultNone)
	// 1 AM + 8 maps (1024/128) + 2 reduces.
	if len(res.Sessions) != 11 {
		t.Fatalf("sessions = %d, want 11", len(res.Sessions))
	}
	// Reducers run the Fig. 1 fetcher subroutine.
	foundShuffle := false
	for _, s := range res.Sessions {
		for _, r := range s.Records {
			if r.TemplateID == "mr.fetcher.shuffle" {
				foundShuffle = true
				if !strings.Contains(r.Message, "about to shuffle output of map attempt_") {
					t.Errorf("fetcher message = %q", r.Message)
				}
			}
		}
	}
	if !foundShuffle {
		t.Error("no fetcher shuffle messages")
	}
}

func TestMapReduceNetworkFault(t *testing.T) {
	c := NewCluster(4, 33)
	res := c.RunJob(JobSpec{Framework: logging.MapReduce, Name: "Sort", InputMB: 2048, Containers: 8, CoresPerContainer: 2, MemoryMB: 2048}, FaultNetwork)
	if len(res.Affected) == 0 {
		t.Fatal("network fault affected no sessions")
	}
	// Affected sessions carry fetch-failure messages naming one host.
	hosts := map[string]bool{}
	for _, s := range res.Sessions {
		for _, r := range s.Records {
			if r.TemplateID == "mr.anom.fetch.connect" {
				parts := strings.Fields(r.Message)
				for _, p := range parts {
					if strings.Contains(p, ":13562") {
						hosts[strings.Split(p, ":")[0]] = true
					}
				}
			}
		}
	}
	if len(hosts) != 1 {
		t.Errorf("fetch failures name %d hosts, want exactly 1 (the failed node): %v", len(hosts), hosts)
	}
}

func TestTezJobShape(t *testing.T) {
	c := NewCluster(8, 55)
	res := c.RunJob(JobSpec{Framework: logging.Tez, Name: "Query 8", InputMB: 1024, Containers: 4, CoresPerContainer: 1, MemoryMB: 1024}, FaultNone)
	if len(res.Sessions) != 5 { // AM + 4 containers
		t.Fatalf("sessions = %d, want 5", len(res.Sessions))
	}
	vague := 0
	for _, s := range res.Sessions {
		for _, r := range s.Records {
			if r.TemplateID == "tez.op.finished.closing" || r.TemplateID == "tez.op.close.done" {
				vague++
			}
		}
	}
	if vague == 0 {
		t.Error("no vague Hive operator keys emitted")
	}
}

func TestNLStatsPerFramework(t *testing.T) {
	c := NewCluster(8, 77)
	counts := map[string]int{}
	for i := 0; i < 3; i++ {
		res := c.RunJob(JobSpec{Framework: logging.MapReduce, Name: "WordCount", InputMB: 1024, Containers: 8, CoresPerContainer: 2, MemoryMB: 2048}, FaultNone)
		for _, s := range res.Sessions {
			for _, r := range s.Records {
				counts[r.TemplateID]++
			}
		}
	}
	nl, total := c.MR.NLStats(counts)
	if total == 0 || nl == 0 {
		t.Fatal("no messages counted")
	}
	frac := float64(nl) / float64(total)
	if frac < 0.80 || frac >= 1.0 {
		t.Errorf("MR NL fraction = %.3f, want high but below 1.0", frac)
	}
}

func TestNovaRequests(t *testing.T) {
	c := NewCluster(4, 99)
	recs := c.RunNovaRequests(5)
	if len(recs) < 35 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Framework != logging.NovaCompute {
			t.Fatal("wrong framework")
		}
	}
	// Nova corpus is 100% NL (Table 1).
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.TemplateID]++
	}
	nl, total := c.Nova.NLStats(counts)
	if nl != total {
		t.Errorf("nova NL = %d/%d, want 100%%", nl, total)
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultKill.String() != "kill" || FaultNone.String() != "none" || FaultIdleContainers.String() != "idle-containers" {
		t.Error("fault names wrong")
	}
	if FaultKind(42).String() != "fault(42)" {
		t.Error("out-of-range fault name")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		c := NewCluster(8, 123)
		res := c.RunJob(JobSpec{Framework: logging.Spark, Name: "WordCount", InputMB: 512, Containers: 2, CoresPerContainer: 2, MemoryMB: 1024}, FaultNone)
		var b strings.Builder
		for _, s := range res.Sessions {
			for _, r := range s.Records {
				b.WriteString(r.Message)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	if run() != run() {
		t.Error("same seed produced different logs")
	}
}
