package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// RunJob dispatches to the framework generator.
func (c *Cluster) RunJob(spec JobSpec, fault FaultKind) *JobResult {
	if spec.Containers < 1 {
		spec.Containers = 1
	}
	if spec.CoresPerContainer < 1 {
		spec.CoresPerContainer = 1
	}
	if spec.MemoryMB < 256 {
		spec.MemoryMB = 1024
	}
	if spec.InputMB < 1 {
		spec.InputMB = 128
	}
	switch spec.Framework {
	case logging.Spark:
		return c.runSpark(spec, fault)
	case logging.MapReduce:
		return c.runMapReduce(spec, fault)
	case logging.Tez:
		return c.runTez(spec, fault)
	case logging.TensorFlow:
		return c.runTensorFlow(spec, fault)
	case logging.Flink:
		return c.runFlink(spec, fault)
	case logging.HDFS:
		return c.runHDFS(spec, fault)
	case logging.YarnRM:
		return c.runYarnRM(spec, fault)
	default:
		panic(fmt.Sprintf("sim: no generator for framework %q", spec.Framework))
	}
}

// yarnForJob emits the NodeManager/ResourceManager daemon lines for one
// job's containers (Table 1 corpus; not per-container sessions).
func (c *Cluster) yarnForJob(app, containers int) []logging.Record {
	th := newThread(c.rng, 0)
	appID := c.appID(app)
	th.emit(c.Yarn.Get("yarn.rm.submitted"), v("appid", appID, "user", "hadoop"))
	th.emit(c.Yarn.Get("yarn.rm.accepted"), v("appid", appID, "user", "hadoop", "queue", "default"))
	for i := 0; i < containers; i++ {
		cid := c.containerID(app, i+1)
		host := c.pickNode()
		th.emit(c.Yarn.Get("yarn.rm.allocated"), v("cid", cid, "mb", itoa(1024+1024*c.rng.Intn(4)), "host", host))
		th.emit(c.Yarn.Get("yarn.nm.start.request"), v("cid", cid, "user", "hadoop"))
		th.emit(c.Yarn.Get("yarn.nm.transition.localizing"), v("cid", cid))
		if i == 0 {
			th.emit(c.Yarn.Get("yarn.nm.localizing"), v("uri", fmt.Sprintf("hdfs://nn1:8020/apps/%s/job.jar", appID)))
		}
		th.emit(c.Yarn.Get("yarn.nm.transition.localized"), v("cid", cid))
		th.emit(c.Yarn.Get("yarn.nm.launch"), v("cid", cid, "host", host))
		th.emit(c.Yarn.Get("yarn.nm.transition.running"), v("cid", cid))
		th.emit(c.Yarn.Get("yarn.nm.monitor.kv"),
			v("pid", itoa(10000+c.rng.Intn(50000)), "cid", cid, "a", itoa(400+c.rng.Intn(2000)), "b", itoa(2000+c.rng.Intn(4000))))
	}
	for i := 0; i < containers; i++ {
		cid := c.containerID(app, i+1)
		th.emit(c.Yarn.Get("yarn.nm.stopping"), v("cid", cid))
		th.emit(c.Yarn.Get("yarn.nm.transition.done"), v("cid", cid))
		th.emit(c.Yarn.Get("yarn.nm.removing"), v("cid", cid, "appid", appID))
	}
	th.emit(c.Yarn.Get("yarn.rm.completed"), v("appid", appID))

	var out []logging.Record
	for _, e := range th.events {
		out = append(out, logging.Record{
			Time: c.clock.Add(e.at), Level: e.tpl.Level, Source: e.tpl.Source,
			Message: e.tpl.Render(e.vals), Framework: logging.Yarn, TemplateID: e.tpl.ID,
		})
	}
	return out
}

// RunNovaRequests emits n VM-request lifecycles from nova-compute (the
// Table 1 nova corpus; the paper excludes the periodic resource dumps, so
// none are generated).
func (c *Cluster) RunNovaRequests(n int) []logging.Record {
	var out []logging.Record
	for i := 0; i < n; i++ {
		inst := fmt.Sprintf("instance-%08x", c.rng.Int63n(1<<31))
		th := newThread(c.rng, time.Duration(i)*time.Second)
		th.emit(c.Nova.Get("nova.spawn.start"), v("inst", inst))
		th.emit(c.Nova.Get("nova.image.creating"), v("inst", inst))
		th.emit(c.Nova.Get("nova.claim.total"), v("host", c.pickNode(), "inst", inst))
		th.emit(c.Nova.Get("nova.vm.started"), v("inst", inst))
		th.emit(c.Nova.Get("nova.build.took"), v("s", fmt.Sprintf("%d.%02d", 8+c.rng.Intn(20), c.rng.Intn(100)), "inst", inst))
		if c.rng.Intn(4) == 0 {
			th.emit(c.Nova.Get("nova.vm.paused"), v("inst", inst))
			th.emit(c.Nova.Get("nova.vm.resumed"), v("inst", inst))
		}
		th.emit(c.Nova.Get("nova.terminating"), v("inst", inst))
		th.emit(c.Nova.Get("nova.destroyed"), v("inst", inst))
		th.emit(c.Nova.Get("nova.cleanup"), v("path", fmt.Sprintf("/var/lib/nova/instances/%s", inst)))
		for _, e := range th.events {
			out = append(out, logging.Record{
				Time: c.clock.Add(e.at), Level: e.tpl.Level, Source: e.tpl.Source,
				Message: e.tpl.Render(e.vals), Framework: logging.NovaCompute, TemplateID: e.tpl.ID,
			})
		}
	}
	return out
}

// Inventory returns the template inventory for a framework.
func (c *Cluster) Inventory(fw logging.Framework) *Inventory {
	switch fw {
	case logging.Spark:
		return c.Spark
	case logging.MapReduce:
		return c.MR
	case logging.Tez:
		return c.Tez
	case logging.Yarn:
		return c.Yarn
	case logging.NovaCompute:
		return c.Nova
	case logging.TensorFlow:
		return c.TF
	case logging.Flink:
		return c.Flink
	case logging.HDFS:
		return c.HDFSInv
	case logging.YarnRM:
		return c.RM
	default:
		return nil
	}
}
