package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runYarnRM simulates a ResourceManager HA pair handling one application:
// rm1 wins the initial election and runs the app lifecycle, rm2 idles in
// standby syncing the state store. Each RM instance is one session (RM
// daemons are not containerised, so no extra YARN daemon records).
//
// Fault mapping — faults always strike the active RM, which is where HA
// failure modes live:
//   - Kill/Node: rm1 truncates mid-lifecycle (SIGKILL); rm2 detects the
//     lost leader, fences rm1, replays recovery and goes active. Both
//     sessions are affected ground truth.
//   - Network: rm1's ZooKeeper session expires in a connectivity blip;
//     it logs the expiry and rejoins the election without losing the
//     leadership.
//   - Spill (the degradation analogue): rm1's state-store writes slow
//     down past the fencing budget.
func (c *Cluster) runYarnRM(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}

	appID := c.appID(app)
	attempt := fmt.Sprintf("appattempt_%d_%04d_000001", c.epoch, app)
	quorum := "zk1:2181,zk2:2181,zk3:2181"
	znode := fmt.Sprintf("/yarn-leader-election/cluster/ActiveStandbyElectorLock_%04d", app)
	allocs := maxInt(2, spec.Containers)
	syncs := maxInt(3, spec.InputMB/512)
	_, netNode, deadNode := c.pickFaultTargets(2, fault)
	failover := fault == FaultKill || fault == FaultNode

	rm1ID := fmt.Sprintf("rm1_%04d", app)
	rm2ID := fmt.Sprintf("rm2_%04d", app)
	host1 := c.pickNode()
	if fault == FaultNode {
		host1 = deadNode
	}
	host2 := c.pickNode()

	// --- rm1: the initially active instance ---------------------------------
	rm1 := newThread(c.rng, 0)
	rm1.emit(c.RM.Get("rm.started"), v("rmid", "rm1", "host", host1+":8032"))
	rm1.emit(c.RM.Get("rm.zk.connected"), v("quorum", quorum))
	rm1.emit(c.RM.Get("rm.election.joined"), v("rmid", "rm1"))
	rm1.emit(c.RM.Get("rm.active.elected"), nil)
	rm1.emit(c.RM.Get("rm.active.transition"), v("rmid", "rm1"))
	rm1.emit(c.RM.Get("rm.statestore.loaded"), v("n", itoa(c.rng.Intn(20))))
	rm1.emit(c.RM.Get("rm.app.submitted"), v("app", appID, "user", "hadoop"))
	rm1.emit(c.RM.Get("rm.app.accepted"), v("app", appID))
	rm1.emit(c.RM.Get("rm.attempt.registered"), v("attempt", attempt, "host", c.pickNode()))
	rm1Anomalous := false
	for i := 0; i < allocs; i++ {
		rm1.wait(time.Duration(50+c.rng.Intn(200)) * time.Millisecond)
		rm1.emit(c.RM.Get("rm.container.allocated"),
			v("container", c.containerID(app, i+1), "mb", itoa(1024+1024*c.rng.Intn(4)), "host", c.pickNode()))
		if fault == FaultNetwork && !rm1Anomalous && i == allocs/2 {
			rm1.emit(c.RM.Get("rm.anom.zk.expired"), v("rmid", "rm1", "quorum", quorum))
			rm1.emit(c.RM.Get("rm.zk.connected"), v("quorum", quorum))
			rm1.emit(c.RM.Get("rm.election.joined"), v("rmid", "rm1"))
			rm1Anomalous = true
		}
		if fault == FaultSpill && c.rng.Intn(2) == 0 {
			rm1.emit(c.RM.Get("rm.anom.statestore.slow"), v("ms", itoa(2000+c.rng.Intn(8000))))
			rm1Anomalous = true
		}
		if c.rng.Intn(3) == 0 {
			rm1.emit(c.RM.Get("rm.sync.kv"),
				v("n", itoa(i+1), "m", itoa(c.rng.Intn(5)), "ms", itoa(1+c.rng.Intn(40))))
		}
	}
	// A degraded state store must log at least one slow write even if every
	// per-allocation draw spared it.
	if fault == FaultSpill && !rm1Anomalous {
		rm1.emit(c.RM.Get("rm.anom.statestore.slow"), v("ms", itoa(2000+c.rng.Intn(8000))))
		rm1Anomalous = true
	}
	rm1.emit(c.RM.Get("rm.app.finished"), v("app", appID))
	rm1.emit(c.RM.Get("rm.attempt.unregistered"), v("attempt", attempt))
	rm1.emit(c.RM.Get("rm.shutdown"), v("rmid", "rm1"))

	rm1Events := rm1.events
	if failover {
		rm1Events = truncateAt(rm1Events, 0.3+0.4*c.rng.Float64())
		res.Affected[rm1ID] = true
	} else if rm1Anomalous {
		res.Affected[rm1ID] = true
	}
	res.Sessions = append(res.Sessions, materialize(rm1ID, logging.YarnRM, c.clock, rm1Events))

	// --- rm2: the standby instance ------------------------------------------
	rm2 := newThread(c.rng, time.Duration(100+c.rng.Intn(200))*time.Millisecond)
	rm2.emit(c.RM.Get("rm.started"), v("rmid", "rm2", "host", host2+":8032"))
	rm2.emit(c.RM.Get("rm.zk.connected"), v("quorum", quorum))
	rm2.emit(c.RM.Get("rm.election.joined"), v("rmid", "rm2"))
	rm2.emit(c.RM.Get("rm.standby.transition"), v("rmid", "rm2"))
	rm2.emit(c.RM.Get("rm.standby.watching"), v("znode", znode))
	for i := 0; i < syncs; i++ {
		rm2.wait(time.Duration(200+c.rng.Intn(400)) * time.Millisecond)
		rm2.emit(c.RM.Get("rm.sync.kv"),
			v("n", itoa(i+1), "m", itoa(c.rng.Intn(5)), "ms", itoa(1+c.rng.Intn(40))))
	}
	if failover {
		// The active's znode vanishes; rm2 fences it and takes over.
		rm2.wait(time.Duration(300+c.rng.Intn(300)) * time.Millisecond)
		rm2.emit(c.RM.Get("rm.anom.fencing"), v("rmid", "rm1"))
		rm2.emit(c.RM.Get("rm.active.elected"), nil)
		rm2.emit(c.RM.Get("rm.active.transition"), v("rmid", "rm2"))
		rm2.emit(c.RM.Get("rm.anom.failover.recovering"), v("n", itoa(1+c.rng.Intn(5))))
		rm2.emit(c.RM.Get("rm.statestore.loaded"), v("n", itoa(1+c.rng.Intn(20))))
		for i := 0; i < 1+c.rng.Intn(3); i++ {
			rm2.emit(c.RM.Get("rm.anom.nm.resync"), v("host", c.pickNode()))
		}
		if fault == FaultNode {
			// The dead node's NM never resyncs; note the mirror on netNode.
			rm2.emit(c.RM.Get("rm.anom.nm.resync"), v("host", netNode))
		}
		rm2.emit(c.RM.Get("rm.app.finished"), v("app", appID))
		rm2.emit(c.RM.Get("rm.attempt.unregistered"), v("attempt", attempt))
		res.Affected[rm2ID] = true
	}
	rm2.emit(c.RM.Get("rm.shutdown"), v("rmid", "rm2"))
	res.Sessions = append(res.Sessions, materialize(rm2ID, logging.YarnRM, c.clock, rm2.events))

	return res
}
