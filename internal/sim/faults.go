package sim

import (
	"math/rand"
	"sort"
	"strings"

	"intellog/internal/logging"
)

// FaultInjector perturbs a log stream the way real collection pipelines
// do: lines arrive truncated or corrupted (agent restarts, disk-full
// writes), records are duplicated (at-least-once shipping), timestamps
// interleave slightly out of order (multi-threaded appenders, clock
// skew), and sessions cut off mid-stream (container kills, rotated-away
// files). The online detector must survive all of it without panicking
// and with bounded memory; tests and the `intellog stream -fault-*` flags
// drive corpora through an injector to prove that end to end.
//
// All perturbation is driven by the seeded RNG, so a given configuration
// replays identically.
type FaultInjector struct {
	// TruncateProb chops a line/message at a random byte (possibly
	// mid-rune — truncation does not respect UTF-8 boundaries).
	TruncateProb float64
	// CorruptProb overwrites a few random bytes with garbage.
	CorruptProb float64
	// DuplicateProb emits an item twice (at-least-once delivery).
	DuplicateProb float64
	// ReorderWindow bounds timestamp reordering: each item may be displaced
	// by at most this many positions from its original slot. Zero disables
	// reordering.
	ReorderWindow int
	// CutProb is the per-session probability of a mid-session stream cut:
	// the session's records after a random fraction of its span are
	// dropped. Applies to record streams only (lines carry no session).
	CutProb float64

	rng *rand.Rand
}

// NewFaultInjector returns an injector with a deterministic RNG. Fault
// probabilities start at zero; set the ones the scenario needs.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// mangle applies truncation/corruption to one text item.
func (f *FaultInjector) mangle(text string) string {
	if f.TruncateProb > 0 && f.rng.Float64() < f.TruncateProb && len(text) > 1 {
		text = text[:1+f.rng.Intn(len(text)-1)]
	}
	if f.CorruptProb > 0 && f.rng.Float64() < f.CorruptProb && len(text) > 0 {
		b := []byte(text)
		for n := 1 + f.rng.Intn(3); n > 0 && len(b) > 0; n-- {
			b[f.rng.Intn(len(b))] = byte(f.rng.Intn(256))
		}
		text = string(b)
	}
	return text
}

// reorder displaces items by at most ReorderWindow positions: each item's
// index is jittered forward by up to the window and the stream stably
// re-sorted by jittered index. Any item j ≥ i+window+1 keeps a strictly
// larger key than item i, and any j ≤ i-window-1 a strictly smaller one,
// so the displacement bound |new-old| ≤ window is hard, not probabilistic.
func reorder[T any](f *FaultInjector, items []T) {
	w := f.ReorderWindow
	if w <= 0 {
		return
	}
	keys := make([]int, len(items))
	for i := range keys {
		keys[i] = i + f.rng.Intn(w+1)
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]T, len(items))
	for p, i := range idx {
		out[p] = items[i]
	}
	copy(items, out)
}

// PerturbLines fault-injects a raw line stream (the CLI path): cuts do
// not apply, truncation can destroy a line's header so it no longer
// parses — which is exactly the robustness the parser front-end must
// have.
func (f *FaultInjector) PerturbLines(lines []string) []string {
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		l = f.mangle(l)
		out = append(out, l)
		if f.DuplicateProb > 0 && f.rng.Float64() < f.DuplicateProb {
			out = append(out, l)
		}
	}
	reorder(f, out)
	return out
}

// Perturb fault-injects a parsed record stream: session cuts first (whole
// tails vanish), then per-record duplication and message mangling, then
// bounded reordering of the merged stream.
func (f *FaultInjector) Perturb(recs []logging.Record) []logging.Record {
	recs = f.cutSessions(recs)
	out := make([]logging.Record, 0, len(recs))
	for _, r := range recs {
		r.Message = f.mangle(r.Message)
		out = append(out, r)
		if f.DuplicateProb > 0 && f.rng.Float64() < f.DuplicateProb {
			out = append(out, r)
		}
	}
	reorder(f, out)
	return out
}

// cutSessions drops the tail of randomly chosen sessions after a random
// fraction of their record count — the stream analogue of truncateAt's
// SIGKILL model.
func (f *FaultInjector) cutSessions(recs []logging.Record) []logging.Record {
	if f.CutProb <= 0 {
		return recs
	}
	counts := map[string]int{}
	order := []string{}
	for _, r := range recs {
		if _, ok := counts[r.SessionID]; !ok {
			order = append(order, r.SessionID)
		}
		counts[r.SessionID]++
	}
	sort.Strings(order) // RNG draws must not depend on map iteration
	keep := map[string]int{}
	for _, id := range order {
		n := counts[id]
		keep[id] = n
		if f.rng.Float64() < f.CutProb && n > 1 {
			keep[id] = 1 + f.rng.Intn(n-1)
		}
	}
	out := recs[:0:0]
	seen := map[string]int{}
	for _, r := range recs {
		if seen[r.SessionID] < keep[r.SessionID] {
			out = append(out, r)
		}
		seen[r.SessionID]++
	}
	return out
}

// FaultFlagsDoc is the one-line help text shared by CLI fault flags.
const FaultFlagsDoc = "probabilities in [0,1]; 0 disables"

// DescribeFaults summarizes the active perturbations (for CLI banners).
func (f *FaultInjector) DescribeFaults() string {
	var parts []string
	add := func(cond bool, s string) {
		if cond {
			parts = append(parts, s)
		}
	}
	add(f.TruncateProb > 0, "truncate")
	add(f.CorruptProb > 0, "corrupt")
	add(f.DuplicateProb > 0, "duplicate")
	add(f.ReorderWindow > 0, "reorder")
	add(f.CutProb > 0, "cut")
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
