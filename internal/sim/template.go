// Package sim simulates the log-facing behaviour of the paper's testbed:
// a YARN-managed cluster running Hadoop MapReduce, Spark and Tez (plus the
// YARN daemons and a nova-compute corpus for Table 1). IntelLog only ever
// sees log text, so the simulator's contract is to emit realistic,
// natural-language log sessions — variable lengths driven by input size
// and configuration, interleaved concurrent subroutines, per-container
// sessions — with ground-truth annotations carried on each template so
// extraction accuracy (Table 4) and anomaly detection (Tables 6–8) can be
// scored without manual source inspection.
package sim

import (
	"fmt"
	"strings"

	"intellog/internal/extract"
	"intellog/internal/logging"
)

// Template is one logging statement of a simulated framework. Text
// contains {name} placeholders for variable fields; the annotation fields
// are the ground truth a perfect extractor would produce for the
// corresponding log key.
type Template struct {
	// ID is a unique dotted name, e.g. "spark.task.finished".
	ID string
	// Framework is the producing system.
	Framework logging.Framework
	// Source is the logging component name put in the log header.
	Source string
	// Level is the record's severity.
	Level logging.Level
	// Text is the message with {placeholder} variable fields.
	Text string
	// NL marks whether the message is natural language (contains a clause);
	// ground truth for Table 1.
	NL bool

	// Entities lists the entity phrases of the key (ground truth).
	Entities []string
	// IDFields names the placeholders that are identifiers.
	IDFields []string
	// ValueFields names the placeholders that are values.
	ValueFields []string
	// LocFields names the placeholders that are localities.
	LocFields []string
	// Operations lists the ground-truth operations.
	Operations []extract.Operation
	// Anomalous marks fault-only templates that never appear in normal
	// training runs (used when scoring detection).
	Anomalous bool
}

// Render substitutes placeholder values into the template text. Missing
// placeholders render as "0" so templates never leak braces.
func (t *Template) Render(vals map[string]string) string {
	var b strings.Builder
	text := t.Text
	for {
		i := strings.IndexByte(text, '{')
		if i < 0 {
			b.WriteString(text)
			return b.String()
		}
		j := strings.IndexByte(text[i:], '}')
		if j < 0 {
			b.WriteString(text)
			return b.String()
		}
		b.WriteString(text[:i])
		name := text[i+1 : i+j]
		if v, ok := vals[name]; ok {
			b.WriteString(v)
		} else {
			b.WriteString("0")
		}
		text = text[i+j+1:]
	}
}

// Placeholders returns the placeholder names in order of appearance.
func (t *Template) Placeholders() []string {
	var out []string
	text := t.Text
	for {
		i := strings.IndexByte(text, '{')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(text[i:], '}')
		if j < 0 {
			return out
		}
		out = append(out, text[i+1:i+j])
		text = text[i+j+1:]
	}
}

// Inventory is a framework's template set indexed by ID.
type Inventory struct {
	Framework logging.Framework
	Templates []*Template
	byID      map[string]*Template
}

// NewInventory indexes templates and validates ID uniqueness.
func NewInventory(fw logging.Framework, templates []*Template) *Inventory {
	inv := &Inventory{Framework: fw, Templates: templates, byID: map[string]*Template{}}
	for _, t := range templates {
		if _, dup := inv.byID[t.ID]; dup {
			panic(fmt.Sprintf("sim: duplicate template id %q", t.ID))
		}
		if t.Framework == "" {
			t.Framework = fw
		}
		inv.byID[t.ID] = t
	}
	return inv
}

// Get returns the template with the given ID, panicking on unknown IDs
// (template references are static, so a miss is a programming error).
func (inv *Inventory) Get(id string) *Template {
	t, ok := inv.byID[id]
	if !ok {
		panic(fmt.Sprintf("sim: unknown template id %q", id))
	}
	return t
}

// NLStats counts natural-language vs total templates weighted by the
// given per-template message counts (Table 1's inputs).
func (inv *Inventory) NLStats(counts map[string]int) (nl, total int) {
	for _, t := range inv.Templates {
		n := counts[t.ID]
		total += n
		if t.NL {
			nl += n
		}
	}
	return nl, total
}
