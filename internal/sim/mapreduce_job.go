package sim

import (
	"fmt"
	"time"

	"intellog/internal/logging"
)

// runMapReduce simulates one MapReduce job: an MRAppMaster container plus
// map-task and reduce-task containers, each a session. Reducers run the
// Fig. 1 fetcher subroutine against every map output.
func (c *Cluster) runMapReduce(spec JobSpec, fault FaultKind) *JobResult {
	app := c.nextApp()
	res := &JobResult{Spec: spec, Fault: fault, Affected: map[string]bool{}}
	jobID := fmt.Sprintf("job_%d_%04d", c.epoch, app)

	maps := maxInt(1, spec.InputMB/128)
	reduces := maxInt(1, spec.Containers/4)
	total := maps + reduces

	killIdx, netNode, deadNode := c.pickFaultTargets(total, fault)

	mapAttempts := make([]string, maps)
	mapAddrs := make([]string, maps)
	for i := range mapAttempts {
		mapAttempts[i] = c.attemptID(app, "m", i)
		node := c.pickNode()
		if fault == FaultNode && i == killIdx {
			node = deadNode
		}
		mapAddrs[i] = fmt.Sprintf("%s:13562", node)
	}
	// A network failure only matters on a node that hosts work: fail the
	// node serving one of the map outputs, so the reducers' fetches hit it.
	if fault == FaultNetwork && maps > 0 {
		netNode = addrNode(mapAddrs[c.rng.Intn(maps)])
	}

	// --- AM container -------------------------------------------------------
	am := newThread(c.rng, 0)
	am.emit(c.MR.Get("mr.am.created"), v("appid", c.appID(app)))
	am.emit(c.MR.Get("mr.am.tokens"), v("jobid", jobID))
	am.emit(c.MR.Get("mr.am.job.setup"), v("jobid", jobID))
	am.emit(c.MR.Get("mr.am.uber"), v("jobid", jobID))
	am.emit(c.MR.Get("mr.am.committer"), nil)
	am.emit(c.MR.Get("mr.am.splits"), v("n", itoa(maps), "jobid", jobID))
	am.emit(c.MR.Get("mr.am.job.running"), v("jobid", jobID))
	allAttempts := append(append([]string(nil), mapAttempts...), func() []string {
		var rs []string
		for i := 0; i < reduces; i++ {
			rs = append(rs, c.attemptID(app, "r", i))
		}
		return rs
	}()...)
	for i, att := range allAttempts {
		am.emit(c.MR.Get("mr.am.attempt.unassigned"), v("attempt", att))
		am.emit(c.MR.Get("mr.am.container.assigned"), v("cid", c.containerID(app, i+2), "attempt", att))
		am.emit(c.MR.Get("mr.am.attempt.assigned"), v("attempt", att))
		am.emit(c.MR.Get("mr.am.attempt.running"), v("attempt", att))
	}
	am.emit(c.MR.Get("mr.am.stats.kv"), v("a", itoa(reduces), "b", itoa(maps), "c", "0", "d", itoa(maps)))
	am.emit(c.MR.Get("mr.am.progress"), v("n", itoa(reduces)))
	for _, att := range allAttempts {
		if fault == FaultNode && attOnNode(att, mapAttempts, killIdx) {
			am.emit(c.MR.Get("mr.anom.attempt.failed"), v("attempt", att))
			continue
		}
		am.emit(c.MR.Get("mr.am.attempt.succeeded"), v("attempt", att))
	}
	if fault == FaultNode {
		am.emit(c.MR.Get("mr.anom.lostnode"), v("host", deadNode, "n", itoa(1+c.rng.Intn(maps))))
	}
	for i := range allAttempts {
		am.emit(c.MR.Get("mr.am.completed"), v("cid", c.containerID(app, i+2)))
	}
	am.emit(c.MR.Get("mr.am.job.committing"), v("jobid", jobID))
	am.emit(c.MR.Get("mr.am.job.succeeded"), v("jobid", jobID))
	am.emit(c.MR.Get("mr.am.history"), v("uri", fmt.Sprintf("hdfs://nn1:8020/history/%s.jhist", jobID)))
	amCID := c.containerID(app, 1)
	amEvents := am.events
	if fault == FaultNode {
		res.Affected[amCID] = true
	}
	res.Sessions = append(res.Sessions, materialize(amCID, logging.MapReduce, c.clock, amEvents))

	// --- map containers -------------------------------------------------------
	for i := 0; i < maps; i++ {
		cid := c.containerID(app, i+2)
		th := newThread(c.rng, time.Duration(200+c.rng.Intn(400))*time.Millisecond)
		c.mrMapContainer(th, spec, app, i, mapAttempts[i])
		events := th.events
		if (fault == FaultKill || fault == FaultNode) && i == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.MapReduce, c.clock, events))
	}

	// --- reduce containers ------------------------------------------------------
	for i := 0; i < reduces; i++ {
		idx := maps + i
		cid := c.containerID(app, idx+2)
		att := c.attemptID(app, "r", i)
		main := newThread(c.rng, time.Duration(1500+c.rng.Intn(500))*time.Millisecond)
		main.emit(c.MR.Get("mr.map.child.starting"), v("attempt", att))
		main.emit(c.MR.Get("mr.reduce.metrics.starting"), nil)
		main.emit(c.MR.Get("mr.reduce.merger.kv"),
			v("a", itoa(spec.MemoryMB*70/100), "b", itoa(spec.MemoryMB/4), "c", itoa(spec.MemoryMB/2), "d", "10"))
		main.emit(c.MR.Get("mr.reduce.eventfetcher"), v("attempt", att))

		// Fetchers pull every map output, interleaved over a configuration-
		// and load-dependent number of fetcher threads; the event fetcher
		// keeps polling for map-completion events concurrently. The thread
		// count and per-fetch message repetitions make the interleaving
		// order data-dependent, as on a real cluster.
		nFetchers := 2 + c.rng.Intn(6)
		fetchers := make([]*threadGen, nFetchers)
		for f := range fetchers {
			fetchers[f] = newThread(c.rng, main.now+time.Duration(f)*7*time.Millisecond)
		}
		poller := newThread(c.rng, main.now)
		for p := 0; p < 1+len(mapAttempts)/4; p++ {
			poller.emit(c.MR.Get("mr.reduce.eventfetcher"), v("attempt", att))
			poller.wait(time.Duration(30+c.rng.Intn(60)) * time.Millisecond)
		}
		anomalous := false
		for m, srcAtt := range mapAttempts {
			f := c.rng.Intn(nFetchers)
			th := fetchers[f]
			fid := itoa(f + 1)
			addr := mapAddrs[m]
			failing := (fault == FaultNetwork || fault == FaultNode) &&
				addrNode(addr) == netNode
			th.emit(c.MR.Get("mr.reduce.assigning"), v("addr", addr, "n", "1", "fid", fid))
			if failing {
				th.emit(c.MR.Get("mr.anom.fetch.connect"), v("fid", fid, "addr", addr, "n", "1"))
				th.emit(c.MR.Get("mr.anom.fetch.retry"), v("addr", addr, "n", itoa(1+c.rng.Intn(3))))
				if fault == FaultNetwork {
					th.emit(c.MR.Get("mr.anom.toomany"), v("attempt", srcAtt, "addr", addr))
				}
				anomalous = true
				continue
			}
			th.emit(c.MR.Get("mr.fetcher.shuffle"), v("fid", fid, "attempt", srcAtt))
			for r := 0; r < 1+c.rng.Intn(3); r++ {
				th.emit(c.MR.Get("mr.fetcher.read"),
					v("fid", fid, "attempt", srcAtt, "bytes", itoa(1000+c.rng.Intn(90000))))
			}
			th.emit(c.MR.Get("mr.fetcher.freed"), v("addr", addr, "fid", fid, "ms", itoa(1+c.rng.Intn(20))))
		}
		fetchers = append(fetchers, poller)
		tail := newThread(c.rng, mergeEnd(fetchers)+10*time.Millisecond)
		tail.emit(c.MR.Get("mr.reduce.eventfetcher.stop"), nil)
		tail.emit(c.MR.Get("mr.reduce.phase.copy"), v("attempt", att))
		tail.emit(c.MR.Get("mr.reduce.merge.segments"), v("n", itoa(maps)))
		tail.emit(c.MR.Get("mr.reduce.merge.lastpass"), v("n", itoa(maps), "bytes", itoa(10000+c.rng.Intn(500000))))
		tail.emit(c.MR.Get("mr.reduce.merge.disk"), v("n", itoa(maps), "bytes", itoa(10000+c.rng.Intn(500000))))
		tail.emit(c.MR.Get("mr.reduce.phase.sort"), v("attempt", att))
		tail.emit(c.MR.Get("mr.reduce.phase.reduce"), v("attempt", att))
		tail.emit(c.MR.Get("mr.task.committing"), v("attempt", att))
		tail.emit(c.MR.Get("mr.reduce.save"),
			v("attempt", att, "uri", fmt.Sprintf("hdfs://nn1:8020/out/%s/part-r-%05d", jobID, i)))
		tail.emit(c.MR.Get("mr.task.done"), v("attempt", att))

		events := mergeThreads(append(fetchers, main, tail)...)
		if (fault == FaultKill || fault == FaultNode) && idx == killIdx {
			events = truncateAt(events, 0.3+0.5*c.rng.Float64())
			res.Affected[cid] = true
		} else if anomalous {
			res.Affected[cid] = true
		}
		res.Sessions = append(res.Sessions, materialize(cid, logging.MapReduce, c.clock, events))
	}

	res.YarnRecords = c.yarnForJob(app, len(res.Sessions))
	return res
}

// mrMapContainer emits a map-task container's events.
func (c *Cluster) mrMapContainer(th *threadGen, spec JobSpec, app, idx int, attempt string) {
	th.emit(c.MR.Get("mr.map.child.starting"), v("attempt", attempt))
	th.emit(c.MR.Get("mr.map.metrics.starting"), nil)
	th.emit(c.MR.Get("mr.map.metrics.started"), nil)
	th.emit(c.MR.Get("mr.map.split"),
		v("uri", fmt.Sprintf("hdfs://nn1:8020/in/part-%05d:%d+134217728", idx, idx*134217728)))
	th.emit(c.MR.Get("mr.map.output.collector"), nil)
	th.emit(c.MR.Get("mr.map.buffer.kv"),
		v("a", itoa(spec.MemoryMB*83886), "b", "0", "c", itoa(spec.MemoryMB*104857), "d", "26214396"))
	reporterStart := th.now
	// Spill rounds scale with the job's input: bigger jobs overflow the
	// sort buffer more often, which is what stretches map sessions (§2.2).
	spills := 1 + c.rng.Intn(3) + spec.InputMB/1024
	th.wait(time.Duration(60+c.rng.Intn(200)) * time.Millisecond)
	for s := 0; s < spills; s++ {
		th.wait(time.Duration(30+c.rng.Intn(120)) * time.Millisecond)
		th.emit(c.MR.Get("mr.map.spill.starting"), nil)
		th.emit(c.MR.Get("mr.map.buffer.kv"),
			v("a", itoa(c.rng.Intn(1<<24)), "b", itoa(c.rng.Intn(1<<24)), "c", itoa(c.rng.Intn(1<<24)), "d", itoa(c.rng.Intn(1<<20))))
		th.emit(c.MR.Get("mr.map.spill.finished"), v("spillid", itoa(s)))
	}
	th.emit(c.MR.Get("mr.map.flush.starting"), nil)
	th.wait(time.Duration(30+c.rng.Intn(80)) * time.Millisecond)
	th.emit(c.MR.Get("mr.map.spill.finished"), v("spillid", itoa(spills)))
	th.emit(c.MR.Get("mr.map.sort.kv"), v("a", itoa(c.rng.Intn(1<<20)), "b", itoa(c.rng.Intn(1<<20)), "c", itoa(c.rng.Intn(1<<18))))
	th.emit(c.MR.Get("mr.task.committing"), v("attempt", attempt))
	th.emit(c.MR.Get("mr.task.done"), v("attempt", attempt))
	th.emit(c.MR.Get("mr.map.metrics.stopping"), nil)
	th.emit(c.MR.Get("mr.map.metrics.stopped"), nil)

	// The TaskReporter heartbeats from its own thread in Hadoop, so
	// progress lines interleave nondeterministically with the work
	// messages; the count scales with input size (data size drives session
	// length, §2.2).
	reporter := newThread(c.rng, reporterStart)
	progress := 14 + c.rng.Intn(10) + spec.InputMB/128
	interval := (th.now - reporterStart) / time.Duration(progress+1)
	for step := 1; step <= progress && reporter.now < th.now; step++ {
		reporter.emit(c.MR.Get("mr.map.progress"),
			v("attempt", attempt, "frac", fmt.Sprintf("0.%02d", minI(99, step*100/(progress+1)))))
		reporter.wait(interval + time.Duration(c.rng.Intn(20))*time.Millisecond)
	}
	th.events = mergeThreads(th, reporter)
}

// attOnNode reports whether the attempt is the map attempt hosted on the
// failed node.
func attOnNode(att string, mapAttempts []string, killIdx int) bool {
	if killIdx < 0 || killIdx >= len(mapAttempts) {
		return false
	}
	return att == mapAttempts[killIdx]
}

// addrNode strips the port from "host:port".
func addrNode(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mergeEnd returns the max clock across threads.
func mergeEnd(threads []*threadGen) time.Duration {
	var end time.Duration
	for _, t := range threads {
		end = maxDur(end, t.now)
	}
	return end
}
