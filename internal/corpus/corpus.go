// Package corpus loads real-world log corpora in the LogHub line layouts
// (HDFS datanode logs sessionized by block ID, BGL supercomputer logs
// sessionized by node, with per-line alert labels). Each layout is a
// logging.Formatter, so files stream through logging.ParseLinesBytes —
// the same zero-copy byte path the ingest server uses — and the loaders
// double as conformance inputs: parsed records plus ground truth.
package corpus

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"time"

	"intellog/internal/logging"
)

// BGL is the framework stamp for Blue Gene/L RAS records. It is local to
// the corpus layer on purpose: BGL is a labelled evaluation corpus, not a
// servable framework, so it stays out of logging.Known().
const BGL logging.Framework = "bgl"

// Corpus is a loaded labelled log file.
type Corpus struct {
	// Records are the parsed lines with SessionID stamped (block ID for
	// HDFS, node for BGL). Lines that match no session stay grouped under
	// the empty session ID.
	Records []logging.Record
	// Truth maps session ID -> ground-truth anomalous, from the label
	// sidecar (HDFS) or the per-line alert labels (BGL). Sessions absent
	// from the map are unlabelled.
	Truth map[string]bool
}

// hdfsLayout is the LogHub HDFS timestamp: "081109 203615".
const hdfsLayout = "060102 150405"

// bglLayout is the LogHub BGL full timestamp: "2005-06-03-15.42.50.363779".
const bglLayout = "2006-01-02-15.04.05.000000"

var (
	hdfsLine = regexp.MustCompile(`^(\d{6} \d{6}) (\d+) (TRACE|DEBUG|INFO|WARN|WARNING|ERROR|FATAL) ([^:]+): (.*)$`)
	blkID    = regexp.MustCompile(`blk_-?\d+`)
	bglLine  = regexp.MustCompile(`^(\S+) (\d+) (\d{4}\.\d{2}\.\d{2}) (\S+) (\d{4}-\d{2}-\d{2}-\d{2}\.\d{2}\.\d{2}\.\d+) (\S+) (\S+) (\S+) (\S+) (.*)$`)
)

// HDFSFormat parses the LogHub HDFS datanode layout:
//
//	081109 203615 148 INFO dfs.DataNode$PacketResponder: PacketResponder 1 for block blk_38865049064139660 terminating
//
// (date, time, pid, level, component, message). The session ID is the
// block ID mentioned in the message, the sessionization the LogHub
// benchmarks use; lines that mention no block get an empty session ID.
type HDFSFormat struct{}

// Parse implements logging.Formatter.
func (HDFSFormat) Parse(line string) (logging.Record, bool) {
	m := hdfsLine.FindStringSubmatch(line)
	if m == nil {
		return logging.Record{}, false
	}
	t, err := time.Parse(hdfsLayout, m[1])
	if err != nil {
		return logging.Record{}, false
	}
	return logging.Record{
		Time:      t,
		Level:     logging.ParseLevel(m[3]),
		Source:    m[4],
		Message:   m[5],
		Framework: logging.HDFS,
		SessionID: blkID.FindString(m[5]),
	}, true
}

// Render implements logging.Formatter. The pid column is rendered as 0;
// the layout carries it but the record model (rightly) does not.
func (HDFSFormat) Render(rec logging.Record) string {
	return fmt.Sprintf("%s 0 %s %s: %s",
		rec.Time.Format(hdfsLayout), rec.Level, rec.Source, rec.Message)
}

// BGLFormat parses the LogHub BGL RAS layout:
//
//   - 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected
//
// (alert label, epoch, date, node, timestamp, node, type, component,
// level, message). The session ID is the node. The alert label — "-" for
// normal lines, an alert category otherwise — is ground truth, consumed
// by LoadBGL; Parse itself drops it, and Render writes "-", because
// labels are evaluation metadata, not log content.
type BGLFormat struct{}

// Parse implements logging.Formatter.
func (BGLFormat) Parse(line string) (logging.Record, bool) {
	m := bglLine.FindStringSubmatch(line)
	if m == nil {
		return logging.Record{}, false
	}
	t, err := time.Parse(bglLayout, m[5])
	if err != nil {
		return logging.Record{}, false
	}
	lvl := logging.ParseLevel(m[9])
	if m[9] == "SEVERE" {
		lvl = logging.Error
	}
	return logging.Record{
		Time:      t,
		Level:     lvl,
		Source:    m[8],
		Message:   m[10],
		Framework: BGL,
		SessionID: m[4],
	}, true
}

// Render implements logging.Formatter.
func (BGLFormat) Render(rec logging.Record) string {
	lvl := rec.Level.String()
	if lvl == "WARN" {
		lvl = "WARNING"
	}
	return fmt.Sprintf("- %d %s %s %s %s RAS %s %s %s",
		rec.Time.Unix(), rec.Time.Format("2006.01.02"), rec.SessionID,
		rec.Time.Format(bglLayout), rec.SessionID, rec.Source, lvl, rec.Message)
}

// LoadHDFS parses a LogHub-shaped HDFS log image through the zero-copy
// byte path, with an optional anomaly_label.csv sidecar ("BlockId,Label"
// rows, Label ∈ {Normal, Anomaly}) providing ground truth. logData must
// stay live while the records are in use (see ParseLinesBytes).
func LoadHDFS(logData, labelData []byte) Corpus {
	return Corpus{
		Records: logging.ParseLinesBytes(HDFSFormat{}, logData),
		Truth:   ParseHDFSLabels(labelData),
	}
}

// ParseHDFSLabels parses the LogHub anomaly_label.csv sidecar. A header
// row and blank lines are skipped; malformed rows are ignored rather
// than rejected, since the loader also runs under fuzzing.
func ParseHDFSLabels(data []byte) map[string]bool {
	if len(data) == 0 {
		return nil
	}
	truth := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		blk, label, ok := strings.Cut(line, ",")
		if !ok || !strings.HasPrefix(blk, "blk_") {
			continue
		}
		truth[blk] = strings.EqualFold(strings.TrimSpace(label), "Anomaly")
	}
	return truth
}

// LoadBGL parses a LogHub-shaped BGL log image through the zero-copy
// byte path. Ground truth comes from the in-line alert labels: a node is
// anomalous if any of its lines carries a label other than "-".
func LoadBGL(data []byte) Corpus {
	c := Corpus{
		Records: logging.ParseLinesBytes(BGLFormat{}, data),
		Truth:   make(map[string]bool),
	}
	// Second pass for the labels Parse drops. Splitting mirrors
	// ParseLinesBytes so labels line up with records.
	rest := data
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line = rest[:i]
			rest = rest[i+1:]
		} else {
			rest = nil
		}
		s := string(line)
		m := bglLine.FindStringSubmatch(s)
		if m == nil {
			continue
		}
		// Mirror Parse exactly: a line whose timestamp fails to parse
		// produced no record, so it must not produce a label either.
		if _, ok := (BGLFormat{}).Parse(s); !ok {
			continue
		}
		node := m[4]
		if m[1] != "-" {
			c.Truth[node] = true
		} else if _, ok := c.Truth[node]; !ok {
			c.Truth[node] = false
		}
	}
	return c
}

// Sessions groups the corpus records into sessions, dropping the
// unsessionized remainder (lines that matched no block / node).
func (c Corpus) Sessions() []*logging.Session {
	var out []*logging.Session
	for _, s := range logging.GroupSessions(c.Records) {
		if s.ID != "" {
			out = append(out, s)
		}
	}
	return out
}
