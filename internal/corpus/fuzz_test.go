package corpus

import (
	"strings"
	"testing"

	"intellog/internal/logging"
)

// FuzzCorpusLoader fuzzes both LogHub-shaped loaders with one input
// treated as every role at once: HDFS log image, HDFS label sidecar, and
// BGL log image. The invariants are the loaders' contract with the
// ingest path:
//
//  1. no input panics a loader;
//  2. the zero-copy byte path and the string path parse identically;
//  3. every parsed record groups under the session its line names.
func FuzzCorpusLoader(f *testing.F) {
	f.Add([]byte("081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106 dest: /10.250.19.102:50010\n"))
	f.Add([]byte("- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected\n"))
	f.Add([]byte("KERNDTLB 1117842440 2005.06.03 R23-M0-NE-C:J05-U01 2005-06-03-16.47.20.730542 R23-M0-NE-C:J05-U01 RAS KERNEL FATAL data TLB error interrupt"))
	f.Add([]byte("BlockId,Label\nblk_1,Anomaly\nblk_2,Normal\n"))
	f.Add([]byte("081109 203526 145 WARN dfs.DataNode$DataXceiver: IOException for block blk_750\njava.io.IOException: Connection reset by peer\n\tat read0(Native Method)\n"))
	f.Add([]byte("\n\n\x00\xff garbage « line\n081109 invalid trailer"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fm := range []logging.Formatter{HDFSFormat{}, BGLFormat{}} {
			byBytes := logging.ParseLinesBytes(fm, data)
			byString := logging.ParseLines(fm, strings.Split(string(data), "\n"))
			if len(byBytes) != len(byString) {
				t.Fatalf("%T: byte path %d records, string path %d", fm, len(byBytes), len(byString))
			}
			for i := range byBytes {
				if byBytes[i] != byString[i] {
					t.Fatalf("%T: record %d differs between byte and string paths", fm, i)
				}
			}
		}

		hdfs := LoadHDFS(data, data)
		for _, r := range hdfs.Records {
			if r.SessionID != "" && !strings.HasPrefix(r.SessionID, "blk_") {
				t.Fatalf("HDFS record sessionized to non-block ID %q", r.SessionID)
			}
		}
		for blk := range hdfs.Truth {
			if !strings.HasPrefix(blk, "blk_") {
				t.Fatalf("label sidecar accepted non-block ID %q", blk)
			}
		}

		bgl := LoadBGL(data)
		sessions := make(map[string]bool)
		for _, r := range bgl.Records {
			sessions[r.SessionID] = true
		}
		for node := range bgl.Truth {
			if !sessions[node] {
				t.Fatalf("BGL truth names node %q with no parsed records", node)
			}
		}
		for _, s := range bgl.Sessions() {
			if s.ID == "" {
				t.Fatal("Sessions() leaked the unsessionized remainder")
			}
		}
	})
}
