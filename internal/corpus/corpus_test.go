package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intellog/internal/logging"
)

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// requireSamePaths asserts the zero-copy byte path and the string path
// produce identical records — the contract FuzzCorpusLoader also checks,
// pinned here on the real fixtures.
func requireSamePaths(t *testing.T, f logging.Formatter, data []byte) []logging.Record {
	t.Helper()
	byBytes := logging.ParseLinesBytes(f, data)
	byString := logging.ParseLines(f, strings.Split(string(data), "\n"))
	if len(byBytes) != len(byString) {
		t.Fatalf("byte path parsed %d records, string path %d", len(byBytes), len(byString))
	}
	for i := range byBytes {
		if byBytes[i] != byString[i] {
			t.Fatalf("record %d differs between byte and string paths:\n%+v\n%+v",
				i, byBytes[i], byString[i])
		}
	}
	return byBytes
}

func TestLoadHDFS(t *testing.T) {
	logData := readFixture(t, "hdfs_sample.log")
	labelData := readFixture(t, "hdfs_labels.csv")
	recs := requireSamePaths(t, HDFSFormat{}, logData)

	c := LoadHDFS(logData, labelData)
	if len(c.Records) != len(recs) {
		t.Fatalf("LoadHDFS parsed %d records, want %d", len(c.Records), len(recs))
	}
	sessions := c.Sessions()
	if len(sessions) != 4 {
		t.Fatalf("got %d block sessions, want 4", len(sessions))
	}
	for _, s := range sessions {
		if !strings.HasPrefix(s.ID, "blk_") {
			t.Fatalf("session %q is not a block ID", s.ID)
		}
		if s.Framework != logging.HDFS {
			t.Fatalf("session %s framework = %q", s.ID, s.Framework)
		}
	}
	if len(c.Truth) != 4 {
		t.Fatalf("got %d labels, want 4", len(c.Truth))
	}
	if !c.Truth["blk_7503483334202473044"] {
		t.Fatal("blk_7503483334202473044 should be labelled anomalous")
	}
	if c.Truth["blk_-1608999687919862906"] {
		t.Fatal("blk_-1608999687919862906 should be labelled normal")
	}

	// The stack-trace continuation lines must fold into the IOException
	// record, not vanish or start records of their own.
	var ioexc *logging.Record
	for i := range c.Records {
		if strings.Contains(c.Records[i].Message, "IOException in BlockReceiver") {
			ioexc = &c.Records[i]
		}
	}
	if ioexc == nil {
		t.Fatal("IOException record not parsed")
	}
	if !strings.Contains(ioexc.Message, "Connection reset by peer") ||
		!strings.Contains(ioexc.Message, "FileDispatcher.read0") {
		t.Fatalf("continuation lines not folded into the exception record: %q", ioexc.Message)
	}
	if ioexc.Level != logging.Warn {
		t.Fatalf("exception record level = %v, want WARN", ioexc.Level)
	}
}

func TestLoadBGL(t *testing.T) {
	data := readFixture(t, "bgl_sample.log")
	recs := requireSamePaths(t, BGLFormat{}, data)
	if len(recs) != 18 {
		t.Fatalf("parsed %d records, want 18", len(recs))
	}

	c := LoadBGL(data)
	sessions := c.Sessions()
	if len(sessions) != 5 {
		t.Fatalf("got %d node sessions, want 5", len(sessions))
	}
	wantTruth := map[string]bool{
		"R02-M1-N0-C:J12-U11": false,
		"R16-M1-N2-C:J17-U01": false,
		"R23-M0-NE-C:J05-U01": true, // KERNDTLB alerts
		"R24-M0-N1-C:J13-U11": false,
		"R30-M0-N9-C:J16-U01": true, // APPSEV + APPREAD alerts
	}
	if len(c.Truth) != len(wantTruth) {
		t.Fatalf("got %d labelled nodes, want %d", len(c.Truth), len(wantTruth))
	}
	for node, want := range wantTruth {
		if got, ok := c.Truth[node]; !ok || got != want {
			t.Fatalf("truth[%s] = %v (present=%v), want %v", node, got, ok, want)
		}
	}

	// SEVERE maps to Error; the label column never leaks into the message.
	for _, r := range c.Records {
		if strings.Contains(r.Message, "Error reading message prefix") && r.Level != logging.Error {
			t.Fatalf("SEVERE line parsed with level %v", r.Level)
		}
		if strings.HasPrefix(r.Message, "KERNDTLB") || strings.HasPrefix(r.Message, "APPSEV") {
			t.Fatalf("alert label leaked into message: %q", r.Message)
		}
	}
}

// TestRoundTrip renders parsed records back to lines and re-parses them:
// the second parse must reproduce the records exactly (labels and pid
// columns are deliberately lossy; record fields are not).
func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		f       logging.Formatter
		fixture string
	}{
		{"hdfs", HDFSFormat{}, "hdfs_sample.log"},
		{"bgl", BGLFormat{}, "bgl_sample.log"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			recs := logging.ParseLinesBytes(tc.f, readFixture(t, tc.fixture))
			for i, r := range recs {
				// Folded multi-line messages cannot ride a single rendered
				// line; round-trip their first line only.
				r.Message, _, _ = strings.Cut(r.Message, "\n")
				line := tc.f.Render(r)
				got, ok := tc.f.Parse(line)
				if !ok {
					t.Fatalf("record %d: rendered line does not re-parse: %q", i, line)
				}
				if got != r {
					t.Fatalf("record %d did not round-trip:\n%+v\n%+v", i, r, got)
				}
			}
		})
	}
}
