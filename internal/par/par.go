// Package par provides the tiny worker-pool primitive shared by the
// embarrassingly parallel pipeline stages (Intel Key building,
// per-session binding, per-session detection). It replaces three
// copy-pasted pool loops whose unbuffered work channels made the producer
// block once per item.
package par

import (
	"runtime"
	"sync"
)

// Workers is the pool size: one worker per CPU.
func Workers() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// ForEachIndex runs fn(i) for every i in [0, n) on a pool of Workers()
// goroutines. The work channel is fully buffered and filled before the
// workers start, so neither side ever blocks on hand-off. Callers write
// results positionally, which keeps output deterministic regardless of
// scheduling. fn must be safe to call concurrently.
func ForEachIndex(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
