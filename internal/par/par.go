// Package par provides the tiny worker-pool primitive shared by the
// embarrassingly parallel pipeline stages (Intel Key building,
// per-session binding, per-session detection, batch-detect sharding).
// It replaces three copy-pasted pool loops whose unbuffered work
// channels made the producer block once per item.
package par

import (
	"runtime"
	"sync"
)

// Workers is the default pool size: one worker per CPU.
func Workers() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// ForEachIndex runs fn(i) for every i in [0, n) on a pool of Workers()
// goroutines. See ForEach for the contract.
func ForEachIndex(n int, fn func(i int)) {
	ForEach(n, Workers(), fn)
}

// ForEach runs fn(i) for every i in [0, n) on a pool of exactly
// min(workers, n) goroutines — callers that want genuine concurrency
// beyond the CPU count (e.g. shard-count conformance runs under -race on
// small machines) pass workers explicitly. The work channel is fully
// buffered and filled before the workers start, so neither side ever
// blocks on hand-off. Callers write results positionally, which keeps
// output deterministic regardless of scheduling. fn must be safe to call
// concurrently.
//
// A panic inside fn does not crash the process from a worker goroutine:
// the first panic value is captured, the remaining items drain through
// the surviving workers, and the panic is re-raised on the caller's
// goroutine once the pool has quiesced — the same observable behavior as
// the serial path, so callers can rely on recover working at the call
// site at any worker count.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for i := range work {
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
