package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	ForEachIndex(0, func(int) { called = true })
	if called {
		t.Fatal("fn called for an empty index range")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{1, 2, 7, 100} {
			var hits [100]atomic.Int32
			ForEach(n, workers, func(i int) { hits[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times, want 1", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachWorkersExceedItems(t *testing.T) {
	// More workers than items must not spawn idle goroutines that race
	// the close, nor skip items.
	var count atomic.Int32
	ForEach(3, 128, func(i int) { count.Add(1) })
	if got := count.Load(); got != 3 {
		t.Fatalf("ran %d items, want 3", got)
	}
}

func TestForEachSingleProc(t *testing.T) {
	// GOMAXPROCS=1 must not deadlock or lose items — workers are real
	// goroutines, not OS threads, so the pool still drains.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var count atomic.Int32
	ForEach(50, 8, func(i int) { count.Add(1) })
	if got := count.Load(); got != 50 {
		t.Fatalf("ran %d items, want 50", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	// A panic in a worker must surface on the caller's goroutine, not
	// crash the process, at any worker count (incl. the serial path).
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachPanicStillRunsOtherItems(t *testing.T) {
	// With multiple workers, surviving workers drain the remaining items
	// before the captured panic re-raises — no goroutine leaks, no hangs.
	var count atomic.Int32
	func() {
		defer func() { recover() }()
		ForEach(32, 4, func(i int) {
			if i == 0 {
				panic("first")
			}
			count.Add(1)
		})
	}()
	if got := count.Load(); got < 28 {
		t.Fatalf("only %d non-panicking items ran", got)
	}
}
