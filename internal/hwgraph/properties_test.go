package hwgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intellog/internal/extract"
)

// TestPropertySubroutineInvariants feeds random instance sequences and
// checks structural invariants of the trained subroutine.
func TestPropertySubroutineInvariants(t *testing.T) {
	f := func(seed int64, nInstances uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSubroutine("X")
		n := int(nInstances%8) + 1
		universe := 6
		present := make([]map[int]bool, 0, n)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(8)
			seq := make([]int, l)
			p := map[int]bool{}
			for j := range seq {
				seq[j] = rng.Intn(universe)
				p[seq[j]] = true
			}
			s.Update(seq)
			present = append(present, p)
		}
		known := map[int]bool{}
		for _, k := range s.Keys {
			known[k] = true
		}
		for k, crit := range s.Critical {
			// Critical keys are known keys.
			if crit && !known[k] {
				return false
			}
			// A critical key appeared in every instance.
			if crit {
				for _, p := range present {
					if !p[k] {
						return false
					}
				}
			}
		}
		// Before is antisymmetric.
		for a, succ := range s.Before {
			for b := range succ {
				if s.Before[b][a] {
					return false
				}
			}
		}
		// Instances counted.
		return s.Instances == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySubroutineNoViolationOnTrainedOrder: replaying any sequence
// consistent with every training sequence yields no violations of the
// final model when training repeated one fixed order.
func TestPropertySubroutineNoViolationOnTrainedOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 2 + rng.Intn(6)
		seq := rng.Perm(l)
		s := NewSubroutine("X")
		for i := 0; i < 3; i++ {
			s.Update(seq)
		}
		return len(s.Violations(seq)) == 0 && len(s.MissingCritical(seq)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAssignInstancesPartition: every input message lands in
// exactly one instance, and instance order preserves message order.
func TestPropertyAssignInstancesPartition(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%24) + 1
		msgs := make([]*extract.Message, count)
		for i := range msgs {
			ids := map[string][]string{}
			if rng.Intn(3) > 0 {
				typ := []string{"TASK", "STAGE", "FETCHER"}[rng.Intn(3)]
				ids[typ] = []string{[]string{"a", "b", "c", "d"}[rng.Intn(4)]}
			}
			msgs[i] = &extract.Message{KeyID: rng.Intn(5), Identifiers: ids}
		}
		instances := AssignInstances(msgs)
		total := 0
		seen := map[*extract.Message]bool{}
		for _, in := range instances {
			prevIdx := -1
			for _, m := range in.Msgs {
				if seen[m] {
					return false // message in two instances
				}
				seen[m] = true
				total++
				// Order preserved: find index in msgs.
				idx := indexOfMsg(msgs, m)
				if idx <= prevIdx {
					return false
				}
				prevIdx = idx
			}
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func indexOfMsg(msgs []*extract.Message, m *extract.Message) int {
	for i, x := range msgs {
		if x == m {
			return i
		}
	}
	return -1
}

// TestPropertySpanRelationInverse: the relation of a towards b is always
// the inverse of b towards a.
func TestPropertySpanRelationInverse(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := Span{First: int(a1 % 32), Last: int(a1%32) + int(a2%32)}
		b := Span{First: int(b1 % 32), Last: int(b1%32) + int(b2%32)}
		return spanRelation(a, b) == spanRelation(b, a).Inverse()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyGraphPlacement: every group is placed exactly once (either
// a root or exactly one parent's child).
func TestPropertyGraphPlacement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := []*extract.IntelKey{
			ikey(0, "alpha"), ikey(1, "beta"), ikey(2, "gamma"), ikey(3, "delta"),
		}
		b := NewBuilder(keys)
		for s := 0; s < 4; s++ {
			var msgs []*extract.Message
			for i := 0; i < 8; i++ {
				msgs = append(msgs, msg(rng.Intn(4), nil))
			}
			b.AddSession(msgs)
		}
		g := b.Graph()
		placed := map[string]int{}
		for _, r := range g.Roots {
			placed[r]++
		}
		for _, n := range g.Nodes {
			for _, c := range n.Children {
				placed[c]++
			}
		}
		for name := range g.Nodes {
			if placed[name] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
