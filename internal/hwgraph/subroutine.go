// Package hwgraph builds the Hierarchical Workflow graph of §4.1: entity
// groups with lifespan-derived PARENT/BEFORE/PARALLEL relations between
// them, and per-group subroutines — ordered Intel Key sequences with
// critical-key marking — assembled by Algorithm 2 across training
// sessions.
package hwgraph

import (
	"sort"
	"strings"

	"intellog/internal/extract"
)

// Instance is one subroutine instance inside a session: the log messages
// sharing (subset-related) identifier values, per Algorithm 2.
type Instance struct {
	// IDs is the union of identifier values observed (the S_v).
	IDs map[string]bool
	// Types is the set of identifier types, whose sorted join is the
	// subroutine signature.
	Types map[string]bool
	// Msgs holds the instance's messages in log order.
	Msgs []*extract.Message
}

// Signature returns the instance's subroutine signature: the sorted
// identifier types joined with "+", or "" for the NONE instance.
func (in *Instance) Signature() string { return signatureOf(in.Types) }

func signatureOf(types map[string]bool) string {
	if len(types) == 0 {
		return ""
	}
	keys := make([]string, 0, len(types))
	for t := range types {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return strings.Join(keys, "+")
}

// AssignInstances implements the per-session loop of Algorithm 2: messages
// with no identifiers accumulate in the NONE instance; a message whose
// identifier set is a subset or superset of an existing instance's set
// joins (and widens) that instance; otherwise it founds a new instance.
func AssignInstances(msgs []*extract.Message) []*Instance {
	none := &Instance{IDs: map[string]bool{}, Types: map[string]bool{}}
	instances := []*Instance{none}
	for _, m := range msgs {
		set := m.IdentifierSet()
		if len(set) == 0 {
			none.Msgs = append(none.Msgs, m)
			continue
		}
		var target *Instance
		for _, in := range instances[1:] {
			if subsetRelated(set, in.IDs) {
				target = in
				break
			}
		}
		if target == nil {
			target = &Instance{IDs: map[string]bool{}, Types: map[string]bool{}}
			instances = append(instances, target)
		}
		for _, v := range set {
			target.IDs[v] = true
		}
		for t := range m.Identifiers {
			target.Types[t] = true
		}
		target.Msgs = append(target.Msgs, m)
	}
	if len(none.Msgs) == 0 {
		instances = instances[1:]
	}
	return instances
}

// subsetRelated reports whether set ⊆ ids or ids ⊆ set (Algorithm 2 line
// 9–10).
func subsetRelated(set []string, ids map[string]bool) bool {
	inIds := 0
	for _, v := range set {
		if ids[v] {
			inIds++
		}
	}
	if inIds == len(set) {
		return true // set ⊆ ids
	}
	return inIds == len(ids) && len(ids) > 0 // ids ⊆ set
}

// Subroutine is the trained order model for one signature within an
// entity group: the Intel Keys observed, BEFORE relations among them, and
// the critical keys that appear in every instance (Fig. 5).
type Subroutine struct {
	// Signature is the sorted identifier-type join.
	Signature string `json:"signature"`
	// Keys lists Intel Key IDs in first-seen order.
	Keys []int `json:"keys"`
	// Critical marks keys present in every observed instance.
	Critical map[int]bool `json:"critical"`
	// Before holds the surviving order relations: Before[a][b] means key a
	// always appeared before key b.
	Before map[int]map[int]bool `json:"before"`
	// Instances counts observed instances.
	Instances int `json:"instances"`

	// broken records key pairs whose order relation was observed in both
	// directions and therefore removed (parallel keys, Fig. 5).
	broken map[[2]int]bool
}

// NewSubroutine returns an empty subroutine for a signature.
func NewSubroutine(sig string) *Subroutine {
	return &Subroutine{
		Signature: sig,
		Critical:  map[int]bool{},
		Before:    map[int]map[int]bool{},
	}
}

// Update implements UPDATESUBROUTINE (Fig. 5) for one instance's key
// sequence: first co-occurrence of a key pair records a BEFORE relation;
// a later inversion breaks it (the keys become parallel); keys absent
// from an instance lose critical status; keys first seen after other
// instances existed are never critical.
func (s *Subroutine) Update(seq []int) {
	order := firstOccurrence(seq)
	present := map[int]bool{}
	for _, k := range order {
		present[k] = true
	}
	// Key membership and criticality.
	known := map[int]bool{}
	for _, k := range s.Keys {
		known[k] = true
	}
	for _, k := range order {
		if !known[k] {
			s.Keys = append(s.Keys, k)
			// Critical only if this is the very first instance.
			s.Critical[k] = s.Instances == 0
		}
	}
	if s.Instances > 0 {
		for k := range s.Critical {
			if s.Critical[k] && !present[k] {
				s.Critical[k] = false
			}
		}
	}
	// Order relations among co-present keys.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := order[i], order[j]
			if s.before(b, a) {
				// Inversion observed: break both directions → parallel.
				delete(s.Before[b], a)
				delete(s.Before[a], b)
				s.brokenPairs()[pairKey(a, b)] = true
				continue
			}
			if !s.pairSeen(a, b) {
				if s.Before[a] == nil {
					s.Before[a] = map[int]bool{}
				}
				s.Before[a][b] = true
			}
		}
	}
	s.Instances++
}

// Violations returns the order relations an instance's key sequence
// breaks: pairs (a,b) with a trained BEFORE b but b observed first.
func (s *Subroutine) Violations(seq []int) [][2]int {
	order := firstOccurrence(seq)
	pos := map[int]int{}
	for i, k := range order {
		pos[k] = i
	}
	var out [][2]int
	for a, succ := range s.Before {
		pa, oka := pos[a]
		if !oka {
			continue
		}
		for b := range succ {
			if pb, okb := pos[b]; okb && pb < pa {
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MissingCritical returns the critical keys absent from an instance's key
// sequence.
func (s *Subroutine) MissingCritical(seq []int) []int {
	present := map[int]bool{}
	for _, k := range seq {
		present[k] = true
	}
	var out []int
	for _, k := range s.Keys {
		if s.Critical[k] && !present[k] {
			out = append(out, k)
		}
	}
	return out
}

// CriticalLen returns the number of critical keys.
func (s *Subroutine) CriticalLen() int {
	n := 0
	for _, c := range s.Critical {
		if c {
			n++
		}
	}
	return n
}

// before reports whether a trained BEFORE relation a→b exists.
func (s *Subroutine) before(a, b int) bool { return s.Before[a][b] }

// pairSeen reports whether keys a and b have co-occurred before, either
// with a surviving order relation or as an explicitly broken (parallel)
// pair.
func (s *Subroutine) pairSeen(a, b int) bool {
	if s.before(a, b) || s.before(b, a) {
		return true
	}
	return s.brokenPairs()[pairKey(a, b)]
}

// brokenPairs lazily allocates the broken-pair set.
func (s *Subroutine) brokenPairs() map[[2]int]bool {
	if s.broken == nil {
		s.broken = map[[2]int]bool{}
	}
	return s.broken
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// firstOccurrence reduces a key sequence to first occurrences, preserving
// order.
func firstOccurrence(seq []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, k := range seq {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
