// Package hwgraph builds the Hierarchical Workflow graph of §4.1: entity
// groups with lifespan-derived PARENT/BEFORE/PARALLEL relations between
// them, and per-group subroutines — ordered Intel Key sequences with
// critical-key marking — assembled by Algorithm 2 across training
// sessions.
package hwgraph

import (
	"sort"
	"strings"
	"sync/atomic"

	"intellog/internal/extract"
)

// Instance is one subroutine instance inside a session: the log messages
// sharing (subset-related) identifier values, per Algorithm 2. Sessions
// shatter into tens of thousands of small instances, so the identifier
// sets live in bitsets over run-scoped dense value IDs and the type set
// in a small sorted slice — no per-instance maps.
type Instance struct {
	// Msgs holds the instance's messages in log order.
	Msgs []*extract.Message

	// ord is the instance's creation rank within one AssignInstances run;
	// ties between candidate instances resolve to the earliest-created
	// one, matching the in-order scan of Algorithm 2.
	ord int
	// bits is the instance's value set (the S_v) over the run's dense
	// value IDs, and nIDs its population count.
	bits []uint64
	nIDs int
	// types is the sorted distinct identifier types. When typesShared is
	// set it aliases a Message's cached IdentifierTypes slice (the common
	// case: every message of an instance carries the same type set) and
	// must be copied before mutation. typesBuf is the instance's private
	// merge buffer for that copy, retained across Assigner recycling so
	// mixed-type instances stop allocating once the pool is warm.
	types       []string
	typesBuf    []string
	typesShared bool
	// sig caches Signature once computed (sigOK distinguishes a cached ""
	// from an uncomputed one). Instances whose types come whole from one
	// message inherit the message's cached join, so the common case never
	// builds the string at all.
	sig   string
	sigOK bool
	// vals is the run's dense-ID → value table, shared by every instance
	// of one AssignInstances call (for IDValues).
	vals []string
}

// bit reports whether dense value id is in the instance's set.
func (in *Instance) bit(id int) bool {
	w := id >> 6
	return w < len(in.bits) && in.bits[w]&(1<<(id&63)) != 0
}

// setBit adds dense value id to the instance's set.
func (in *Instance) setBit(id int) {
	w := id >> 6
	for len(in.bits) <= w {
		in.bits = append(in.bits, 0)
	}
	in.bits[w] |= 1 << (id & 63)
	in.nIDs++
}

// IDValues returns the instance's identifier values (the S_v), sorted.
func (in *Instance) IDValues() []string {
	out := make([]string, 0, in.nIDs)
	for id, v := range in.vals {
		if in.bit(id) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Signature returns the instance's subroutine signature: the sorted
// identifier types joined with "+", or "" for the NONE instance.
func (in *Instance) Signature() string {
	if in.sigOK {
		return in.sig
	}
	if len(in.types) > 0 {
		in.sig = strings.Join(in.types, "+")
	}
	in.sigOK = true
	return in.sig
}

// AssignInstances implements the per-session loop of Algorithm 2: messages
// with no identifiers accumulate in the NONE instance; a message whose
// identifier set is a subset or superset of an existing instance's set
// joins (and widens) that instance; otherwise it founds a new instance.
// The result stays valid indefinitely; hot paths that consume instances
// before assigning again should hold an Assigner instead.
func AssignInstances(msgs []*extract.Message) []*Instance {
	return new(Assigner).Assign(msgs)
}

// Assigner runs AssignInstances with reusable scratch state. Training and
// detection call Algorithm 2 once per (session, group) pair — tens of
// thousands of short runs — and the per-run value tables and instance
// structs dominated the allocation profile, so an Assigner keeps them
// across runs. Identifier values arrive pre-interned on the messages
// (ValueInterner ids, cached per distinct rendering); each run remaps
// them to run-dense ids through an epoch-stamped array, so the hot loop
// never hashes a string. The returned instances (and their IDValues) are
// only valid until the next Assign call on the same Assigner; callers
// that retain instances must use AssignInstances.
type Assigner struct {
	vi    *ValueInterner
	runID int
	g2r   []int32 // interner id → run-dense id, valid when stamp matches
	stamp []int   // runID that last assigned g2r's entry

	vals    []string      // run-dense id → value
	byValue [][]*Instance // run-dense id → instances containing it, creation order
	setIDs  []int         // per message: deduped run-dense ids of the set
	setCnt  []int         // occurrence count per entry of setIDs (sets can
	// repeat a value, and the ids ⊆ set comparison counts occurrences)
	instances []*Instance
	free      []*Instance // expired runs' instances, recycled with their capacity
	arena     []Instance  // chunked Instance allocation
}

// SetValues points the assigner at the model's value interner, so
// message-cached interned ids (same owner) are used directly. A nil
// interner is ignored.
func (a *Assigner) SetValues(vi *ValueInterner) {
	if vi != nil {
		a.vi = vi
	}
}

// newInstance hands out a reset Instance: recycled from an expired run
// when possible (keeping the grown Msgs/bits backing arrays), from the
// chunked arena otherwise.
func (a *Assigner) newInstance(ord int) *Instance {
	if n := len(a.free); n > 0 {
		in := a.free[n-1]
		a.free = a.free[:n-1]
		*in = Instance{Msgs: in.Msgs[:0], bits: in.bits[:0], typesBuf: in.typesBuf, ord: ord}
		return in
	}
	if len(a.arena) == 0 {
		a.arena = make([]Instance, 256)
	}
	in := &a.arena[0]
	a.arena = a.arena[1:]
	in.ord = ord
	return in
}

// Assign is AssignInstances over the reusable scratch. Instead of
// scanning every instance per message, byValue indexes instances by the
// identifier values they contain. Any subset-related instance shares at
// least one value with the message's (non-empty) set — set ⊆ IDs puts
// every set value in IDs, and IDs ⊆ set the reverse — so the union of the
// per-value lists is a complete candidate set, and the earliest-created
// subset-related candidate is exactly the instance the in-order scan
// would have picked first.
func (a *Assigner) Assign(msgs []*extract.Message) []*Instance {
	if a.vi == nil {
		a.vi = NewValueInterner()
	}
	a.runID++
	a.vals = a.vals[:0]
	a.byValue = a.byValue[:0]
	// The previous run's instances are contractually dead once Assign is
	// called again; recycle them (with their backing arrays) instead of
	// leaving them to the collector.
	a.free = append(a.free, a.instances...)
	a.instances = a.instances[:0]
	none := a.newInstance(0)
	instances := append(a.instances, none)
	// Consecutive-duplicate fast path: session streams repeat the same
	// rendering back-to-back (heartbeats, retry storms), and repeats share
	// one prototype Message pointer. Immediately after m was assigned to
	// lastTarget, every one of m's values is in lastTarget and no other
	// instance has changed, so the scan would pick lastTarget again; the
	// repeat reduces to one append.
	var lastMsg *extract.Message
	var lastTarget *Instance
	for _, m := range msgs {
		if m == lastMsg {
			lastTarget.Msgs = append(lastTarget.Msgs, m)
			continue
		}
		set := m.IdentifierSet()
		if len(set) == 0 {
			none.Msgs = append(none.Msgs, m)
			lastMsg, lastTarget = m, none
			continue
		}
		ii := m.Interned()
		if ii == nil || ii.Owner != a.vi {
			// Message bound outside the model's prewarm path (e.g. an
			// uncached BindSession miss): intern now, uncached.
			ii = a.vi.internSet(set)
		}
		setIDs, setCnt := a.setIDs[:0], a.setCnt[:0]
		for i, gid := range ii.IDs {
			for int(gid) >= len(a.g2r) {
				a.g2r = append(a.g2r, 0)
				a.stamp = append(a.stamp, 0)
			}
			var id int32
			if a.stamp[gid] == a.runID {
				id = a.g2r[gid]
			} else {
				a.stamp[gid] = a.runID
				id = int32(len(a.vals))
				a.g2r[gid] = id
				a.vals = append(a.vals, ii.Vals[i])
				if len(a.byValue) < cap(a.byValue) {
					// Reuse the expired run's posting-list backing array.
					a.byValue = a.byValue[:id+1]
					a.byValue[id] = a.byValue[id][:0]
				} else {
					a.byValue = append(a.byValue, nil)
				}
			}
			setIDs = append(setIDs, int(id))
			setCnt = append(setCnt, int(ii.Counts[i]))
		}
		a.setIDs, a.setCnt = setIDs, setCnt
		var target *Instance
		for _, id := range setIDs {
			for _, in := range a.byValue[id] {
				if (target == nil || in.ord < target.ord) && subsetRelated(setIDs, setCnt, ii.Total, in) {
					target = in
				}
			}
		}
		if target == nil {
			target = a.newInstance(len(instances))
			instances = append(instances, target)
		}
		for _, id := range setIDs {
			if !target.bit(id) {
				target.setBit(id)
				a.byValue[id] = append(a.byValue[id], target)
			}
		}
		a.mergeTypes(target, m)
		target.Msgs = append(target.Msgs, m)
		lastMsg, lastTarget = m, target
	}
	for _, in := range instances {
		in.vals = a.vals
	}
	a.instances = instances
	if len(none.Msgs) == 0 {
		instances = instances[1:]
	}
	return instances
}

// mergeTypes folds m's identifier-type set into target's, preserving the
// shared-slice fast path: a fresh instance aliases the message's cached
// set (and its cached signature join); a genuine merge copies into the
// instance's retained buffer first.
func (a *Assigner) mergeTypes(target *Instance, m *extract.Message) {
	if mts := m.IdentifierTypes(); target.types == nil {
		target.types = mts
		target.typesShared = true
		// Inherit the message's cached signature join — built once per
		// distinct rendering instead of once per instance.
		target.sig = m.TypeSignature()
		target.sigOK = true
	} else if !sameStrings(target.types, mts) {
		if target.typesShared {
			// Copy into the instance's retained merge buffer rather than
			// a fresh slice; the shared (message-cached) set itself is
			// never mutated.
			target.types = append(target.typesBuf[:0], target.types...)
			target.typesShared = false
		}
		for _, t := range mts {
			target.types = insertSorted(target.types, t)
		}
		target.typesBuf = target.types
		target.sig, target.sigOK = "", false
	}
}

// sameStrings reports whether a and b hold the same sequence. Instance
// type sets usually alias the same cached slice, so identical backing
// arrays short-circuit before any comparison.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insertSorted inserts v into sorted s if absent. Type sets hold a
// handful of entries, so a linear scan beats any set structure.
func insertSorted(s []string, v string) []string {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// subsetRelated reports whether set ⊆ in.IDs or in.IDs ⊆ set (Algorithm 2
// line 9–10), over the run's dense value IDs. set holds the distinct ids,
// cnt their occurrence counts, and total the set's length with
// duplicates; occurrences are counted because the instance-side
// comparison matches total occurrences against the instance's set size.
func subsetRelated(set, cnt []int, total int, in *Instance) bool {
	inIds := 0
	for i, id := range set {
		if in.bit(id) {
			inIds += cnt[i]
		}
	}
	if inIds == total {
		return true // set ⊆ ids
	}
	return inIds == in.nIDs && in.nIDs > 0 // ids ⊆ set
}

// Subroutine is the trained order model for one signature within an
// entity group: the Intel Keys observed, BEFORE relations among them, and
// the critical keys that appear in every instance (Fig. 5).
type Subroutine struct {
	// Signature is the sorted identifier-type join.
	Signature string `json:"signature"`
	// Keys lists Intel Key IDs in first-seen order.
	Keys []int `json:"keys"`
	// Critical marks keys present in every observed instance.
	Critical map[int]bool `json:"critical"`
	// Before holds the surviving order relations: Before[a][b] means key a
	// always appeared before key b.
	Before map[int]map[int]bool `json:"before"`
	// Instances counts observed instances.
	Instances int `json:"instances"`

	// broken records key pairs whose order relation was observed in both
	// directions and therefore removed (parallel keys, Fig. 5).
	broken map[[2]int]bool
	// scratch backs Update's first-occurrence buffer across calls. Update
	// runs only during (sequential) training; concurrent detection paths
	// like Violations must not touch it.
	scratch []int
	// frozen caches detection-time views of Before and Critical (see
	// frozenTables), built lazily on first check and invalidated by
	// Update. Concurrent detection workers may race the first build; the
	// tables are deterministic, so the duplicate work is harmless.
	frozen atomic.Pointer[frozenTables]
}

// frozenTables is the detection-shaped view of a trained subroutine:
// the surviving BEFORE relations flattened to a pair list sorted by
// (a, b), and the critical keys in Keys order. ViolationsOrder and
// MissingCritical used to re-walk the training maps per instance —
// map iteration per check dominated the structural-check CPU profile —
// whereas these slices scan linearly and yield already-sorted output.
type frozenTables struct {
	pairs    [][2]int
	critical []int
}

// tables returns the frozen views, building them on first use.
func (s *Subroutine) tables() *frozenTables {
	if t := s.frozen.Load(); t != nil {
		return t
	}
	t := &frozenTables{}
	for _, k := range s.Keys {
		if s.Critical[k] {
			t.critical = append(t.critical, k)
		}
	}
	for a, succ := range s.Before {
		for b := range succ {
			t.pairs = append(t.pairs, [2]int{a, b})
		}
	}
	sort.Slice(t.pairs, func(i, j int) bool {
		if t.pairs[i][0] != t.pairs[j][0] {
			return t.pairs[i][0] < t.pairs[j][0]
		}
		return t.pairs[i][1] < t.pairs[j][1]
	})
	s.frozen.Store(t)
	return t
}

// NewSubroutine returns an empty subroutine for a signature.
func NewSubroutine(sig string) *Subroutine {
	return &Subroutine{
		Signature: sig,
		Critical:  map[int]bool{},
		Before:    map[int]map[int]bool{},
	}
}

// Update implements UPDATESUBROUTINE (Fig. 5) for one instance's key
// sequence: first co-occurrence of a key pair records a BEFORE relation;
// a later inversion breaks it (the keys become parallel); keys absent
// from an instance lose critical status; keys first seen after other
// instances existed are never critical.
func (s *Subroutine) Update(seq []int) {
	order := firstOccurrenceInto(s.scratch[:0], seq)
	s.scratch = order
	// Key membership and criticality. order and s.Keys hold a handful of
	// distinct keys, so linear scans beat per-call set maps.
	for _, k := range order {
		if !containsInt(s.Keys, k) {
			s.Keys = append(s.Keys, k)
			// Critical only if this is the very first instance.
			s.Critical[k] = s.Instances == 0
		}
	}
	if s.Instances > 0 {
		for k := range s.Critical {
			if s.Critical[k] && !containsInt(order, k) {
				s.Critical[k] = false
			}
		}
	}
	// Order relations among co-present keys.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := order[i], order[j]
			if s.before(b, a) {
				// Inversion observed: break both directions → parallel.
				delete(s.Before[b], a)
				delete(s.Before[a], b)
				s.brokenPairs()[pairKey(a, b)] = true
				continue
			}
			if !s.pairSeen(a, b) {
				if s.Before[a] == nil {
					s.Before[a] = map[int]bool{}
				}
				s.Before[a][b] = true
			}
		}
	}
	s.Instances++
	// Invalidate the frozen detection views; the next check rebuilds them
	// from the updated maps.
	s.frozen.Store(nil)
}

// Violations returns the order relations an instance's key sequence
// breaks: pairs (a,b) with a trained BEFORE b but b observed first.
func (s *Subroutine) Violations(seq []int) [][2]int {
	return s.ViolationsOrder(firstOccurrence(seq))
}

// ViolationsOrder is Violations over a sequence already reduced to first
// occurrences (see FirstOccurrenceInto) — the detection hot path reduces
// once per instance into caller scratch and feeds every check from it.
func (s *Subroutine) ViolationsOrder(order []int) [][2]int {
	var out [][2]int
	t := s.tables()
	lastA, lastPA := -1, -1
	for _, p := range t.pairs {
		a, b := p[0], p[1]
		pa := lastPA
		if a != lastA {
			pa = indexOfInt(order, a)
			lastA, lastPA = a, pa
		}
		if pa < 0 {
			continue
		}
		if pb := indexOfInt(order, b); pb >= 0 && pb < pa {
			out = append(out, p)
		}
	}
	// t.pairs is sorted by (a, b), so out already is — no per-call sort.
	return out
}

// MissingCritical returns the critical keys absent from an instance's key
// sequence. Duplicates in seq are irrelevant, so a first-occurrence-
// reduced sequence (FirstOccurrenceInto) gives the same answer cheaper.
func (s *Subroutine) MissingCritical(seq []int) []int {
	var out []int
	for _, k := range s.tables().critical {
		if !containsInt(seq, k) {
			out = append(out, k)
		}
	}
	return out
}

// CriticalLen returns the number of critical keys.
func (s *Subroutine) CriticalLen() int {
	n := 0
	for _, c := range s.Critical {
		if c {
			n++
		}
	}
	return n
}

// before reports whether a trained BEFORE relation a→b exists.
func (s *Subroutine) before(a, b int) bool { return s.Before[a][b] }

// pairSeen reports whether keys a and b have co-occurred before, either
// with a surviving order relation or as an explicitly broken (parallel)
// pair.
func (s *Subroutine) pairSeen(a, b int) bool {
	if s.before(a, b) || s.before(b, a) {
		return true
	}
	return s.brokenPairs()[pairKey(a, b)]
}

// brokenPairs lazily allocates the broken-pair set.
func (s *Subroutine) brokenPairs() map[[2]int]bool {
	if s.broken == nil {
		s.broken = map[[2]int]bool{}
	}
	return s.broken
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// firstOccurrence reduces a key sequence to first occurrences, preserving
// order.
func firstOccurrence(seq []int) []int {
	return firstOccurrenceInto(nil, seq)
}

// FirstOccurrenceInto reduces a key sequence to first occurrences,
// preserving order, appending into out (pass scratch[:0] to reuse a
// buffer). The result feeds ViolationsOrder and MissingCritical without
// a per-instance allocation.
func FirstOccurrenceInto(out, seq []int) []int {
	return firstOccurrenceInto(out, seq)
}

// firstOccurrenceInto is firstOccurrence appending into out. Typical
// instance sequences hold a handful of distinct keys, so the output
// doubles as the membership set; a map takes over only when the
// quadratic scan could actually bite.
func firstOccurrenceInto(out, seq []int) []int {
	if len(seq) <= 64 {
	next:
		for _, k := range seq {
			for _, o := range out {
				if o == k {
					continue next
				}
			}
			out = append(out, k)
		}
		return out
	}
	seen := make(map[int]bool, len(seq))
	for _, k := range seq {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// containsInt reports whether s contains v.
func containsInt(s []int, v int) bool { return indexOfInt(s, v) >= 0 }

// indexOfInt returns the index of v in s, or -1.
func indexOfInt(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
