package hwgraph

import "sort"

// WalkStep is one hop of a deviation walk: the group reached, and the
// trained edge that led forward into it ("parent" for containment,
// "before" for a temporal BEFORE relation; empty on the path's first
// step).
type WalkStep struct {
	Group     string `json:"group"`
	Edge      string `json:"edge,omitempty"`
	Deviating bool   `json:"deviating"`
}

// DeviationWalk localizes a root cause: starting from the erroneous
// group, it walks the trained graph backward — through parent edges
// (a container starts before its children) and BEFORE-predecessor edges
// (a group that must finish before this one starts) — and returns the
// forward causal path from the earliest deviating group reached down to
// the starting group. deviating reports whether a group misbehaved in
// the session under examination.
//
// "Earliest" is the deviating group farthest back along the walk (the
// most upstream cause the deviation evidence supports); distance ties
// break on the lexicographically smallest group name. Neighbors are
// expanded in sorted order, so the walk is deterministic for a given
// graph and deviating set. If the starting group is unknown or nothing
// upstream deviates, the path is the single starting step.
func (g *Graph) DeviationWalk(from string, deviating func(string) bool) []WalkStep {
	if g.Nodes[from] == nil {
		return []WalkStep{{Group: from, Deviating: deviating(from)}}
	}
	g.backOnce.Do(g.buildBackEdges)

	// BFS backward from `from`. via[n] records the forward edge n → next
	// hop toward `from`, so the chosen root's chain reads out forward.
	type hop struct {
		next string
		edge string
	}
	via := map[string]hop{from: {}}
	dist := map[string]int{from: 0}
	queue := []string{from}
	root, rootDist := from, 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.back[n] {
			if _, seen := via[e.from]; seen {
				continue
			}
			via[e.from] = hop{next: n, edge: e.edge}
			dist[e.from] = dist[n] + 1
			queue = append(queue, e.from)
			if deviating(e.from) {
				if d := dist[e.from]; d > rootDist || (d == rootDist && e.from < root) {
					root, rootDist = e.from, d
				}
			}
		}
	}

	var path []WalkStep
	for n, edge := root, ""; ; {
		path = append(path, WalkStep{Group: n, Edge: edge, Deviating: deviating(n)})
		if n == from {
			break
		}
		h := via[n]
		n, edge = h.next, h.edge
	}
	return path
}

// backEdge is a backward hop: `from` is upstream of the node it is
// indexed under, reached forward via `edge`.
type backEdge struct {
	from string
	edge string
}

// buildBackEdges inverts the graph's parent and BEFORE relations into a
// per-node predecessor list, sorted for deterministic expansion. The
// graph is frozen once trained, so the index is computed once.
func (g *Graph) buildBackEdges() {
	back := make(map[string][]backEdge)
	names := make([]string, 0, len(g.Nodes))
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node := g.Nodes[name]
		for _, c := range node.Children {
			back[c] = append(back[c], backEdge{from: name, edge: "parent"})
		}
		for _, nx := range node.Next {
			back[nx] = append(back[nx], backEdge{from: name, edge: "before"})
		}
	}
	for _, es := range back {
		sort.Slice(es, func(i, j int) bool {
			if es[i].from != es[j].from {
				return es[i].from < es[j].from
			}
			return es[i].edge < es[j].edge
		})
	}
	g.back = back
}

// ParentOf returns the group containing n, or "" for roots. It is the
// exported form of the placement helper the trainer uses internally.
func (g *Graph) ParentOf(n string) string { return parentOf(g, n) }
