package hwgraph

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"intellog/internal/extract"
)

// msg fabricates an Intel Message with the given key and identifiers.
func msg(keyID int, ids map[string][]string) *extract.Message {
	if ids == nil {
		ids = map[string][]string{}
	}
	return &extract.Message{KeyID: keyID, Identifiers: ids}
}

func id1(typ, val string) map[string][]string { return map[string][]string{typ: {val}} }

func TestAssignInstancesNoneAndMerge(t *testing.T) {
	msgs := []*extract.Message{
		msg(0, nil),               // NONE
		msg(1, id1("TASK", "t1")), // instance A
		msg(2, id1("TASK", "t2")), // instance B
		msg(3, map[string][]string{"TASK": {"t1"}, "TID": {"x9"}}), // superset of A → joins A
		msg(4, id1("TID", "x9")),                                   // subset of A (now contains x9) → joins A
		msg(5, nil),                                                // NONE
	}
	instances := AssignInstances(msgs)
	if len(instances) != 3 {
		t.Fatalf("got %d instances, want 3 (NONE, A, B)", len(instances))
	}
	none := instances[0]
	if none.Signature() != "" || len(none.Msgs) != 2 {
		t.Errorf("NONE instance wrong: sig=%q msgs=%d", none.Signature(), len(none.Msgs))
	}
	a := instances[1]
	if len(a.Msgs) != 3 {
		t.Errorf("instance A has %d msgs, want 3", len(a.Msgs))
	}
	if got := a.Signature(); got != "TASK+TID" {
		t.Errorf("A signature = %q, want TASK+TID", got)
	}
	b := instances[2]
	if len(b.Msgs) != 1 || b.Signature() != "TASK" {
		t.Errorf("instance B wrong: %v %q", len(b.Msgs), b.Signature())
	}
}

func TestAssignInstancesDropsEmptyNone(t *testing.T) {
	instances := AssignInstances([]*extract.Message{msg(1, id1("TASK", "t1"))})
	if len(instances) != 1 {
		t.Fatalf("got %d instances, want 1", len(instances))
	}
	if instances[0].Signature() != "TASK" {
		t.Error("wrong signature")
	}
}

// TestSubroutineFigure5 reproduces the Fig. 5 walkthrough: two sessions of
// [A B C D], then [A C B D] breaks B–C order, then [A B C] demotes D.
func TestSubroutineFigure5(t *testing.T) {
	const (
		A = 0
		B = 1
		C = 2
		D = 3
	)
	s := NewSubroutine("ID1+ID2")
	s.Update([]int{A, B, C, D})
	s.Update([]int{A, B, C, D})
	if !s.Critical[A] || !s.Critical[B] || !s.Critical[C] || !s.Critical[D] {
		t.Fatalf("all keys should be critical after identical instances: %v", s.Critical)
	}
	if !s.Before[B][C] {
		t.Fatal("B before C should hold")
	}
	s.Update([]int{A, C, B, D})
	if s.Before[B][C] || s.Before[C][B] {
		t.Errorf("B and C should be parallel after inversion: %v", s.Before)
	}
	if !s.Before[A][B] || !s.Before[A][C] || !s.Before[B][D] {
		t.Errorf("unrelated relations must survive: %v", s.Before)
	}
	s.Update([]int{A, B, C})
	if s.Critical[D] {
		t.Error("D must lose critical status after absence")
	}
	if !s.Critical[A] {
		t.Error("A must stay critical")
	}
	if s.CriticalLen() != 3 {
		t.Errorf("CriticalLen = %d, want 3", s.CriticalLen())
	}
	// A later re-occurrence of the B/C pair must not resurrect the order.
	s.Update([]int{A, B, C, D})
	if s.Before[B][C] || s.Before[C][B] {
		t.Error("broken pair resurrected")
	}
}

func TestSubroutineLateKeyNeverCritical(t *testing.T) {
	s := NewSubroutine("")
	s.Update([]int{1, 2})
	s.Update([]int{1, 2, 3})
	if s.Critical[3] {
		t.Error("late-arriving key marked critical")
	}
	if !reflect.DeepEqual(s.Keys, []int{1, 2, 3}) {
		t.Errorf("Keys = %v", s.Keys)
	}
}

func TestSubroutineViolationsAndMissing(t *testing.T) {
	s := NewSubroutine("")
	s.Update([]int{1, 2, 3})
	s.Update([]int{1, 2, 3})
	if v := s.Violations([]int{2, 1, 3}); len(v) != 1 || v[0] != [2]int{1, 2} {
		t.Errorf("Violations = %v, want [[1 2]]", v)
	}
	if v := s.Violations([]int{1, 2, 3}); len(v) != 0 {
		t.Errorf("clean sequence has violations: %v", v)
	}
	if m := s.MissingCritical([]int{1, 3}); len(m) != 1 || m[0] != 2 {
		t.Errorf("MissingCritical = %v, want [2]", m)
	}
	if m := s.MissingCritical([]int{1, 2, 3}); len(m) != 0 {
		t.Errorf("complete sequence missing: %v", m)
	}
}

func TestSubroutineDuplicateKeysInInstance(t *testing.T) {
	s := NewSubroutine("")
	s.Update([]int{1, 1, 2, 1})
	if !reflect.DeepEqual(s.Keys, []int{1, 2}) {
		t.Errorf("Keys = %v, want [1 2]", s.Keys)
	}
	if !s.Before[1][2] {
		t.Error("first occurrence should define order")
	}
}

func TestSpanRelation(t *testing.T) {
	cases := []struct {
		a, b Span
		want Relation
	}{
		{Span{0, 10}, Span{2, 5}, Parent},
		{Span{2, 5}, Span{0, 10}, Child},
		{Span{0, 3}, Span{4, 8}, Before},
		{Span{4, 8}, Span{0, 3}, After},
		{Span{0, 5}, Span{3, 8}, Parallel},
		{Span{0, 5}, Span{0, 5}, Parallel},
	}
	for _, c := range cases {
		if got := spanRelation(c.a, c.b); got != c.want {
			t.Errorf("spanRelation(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelTrackerDowngradesToParallel(t *testing.T) {
	tr := newRelTracker([]string{"a", "b"})
	tr.observe([]int{0, 1}, []Span{{0, 10}, {2, 5}})
	if got := tr.relation("a", "b"); got != Parent {
		t.Fatalf("relation = %v, want Parent", got)
	}
	if got := tr.relation("b", "a"); got != Child {
		t.Fatalf("inverse = %v, want Child", got)
	}
	// A session where b escapes a's lifespan breaks the PARENT relation.
	tr.observe([]int{0, 1}, []Span{{0, 10}, {8, 12}})
	if got := tr.relation("a", "b"); got != Parallel {
		t.Errorf("relation after conflict = %v, want Parallel", got)
	}
}

func TestRelationStringAndInverse(t *testing.T) {
	if Parent.String() != "PARENT" || Before.String() != "BEFORE" || Parallel.String() != "PARALLEL" {
		t.Error("relation names wrong")
	}
	if Parent.Inverse() != Child || Before.Inverse() != After || Parallel.Inverse() != Parallel {
		t.Error("inverse wrong")
	}
	if Relation(99).String() != "REL(99)" {
		t.Error("out-of-range relation name")
	}
}

// ikey fabricates an Intel Key with just an ID and entities.
func ikey(id int, entities ...string) *extract.IntelKey {
	return &extract.IntelKey{ID: id, Entities: entities, NaturalLanguage: true}
}

// buildSession produces a canonical session: acl; memory open; task work
// (inside memory); memory close; shutdown.
func buildSession(taskID string) []*extract.Message {
	return []*extract.Message{
		msg(0, nil),                 // acl
		msg(1, nil),                 // memory started
		msg(3, id1("TASK", taskID)), // task start
		msg(4, id1("TASK", taskID)), // task finish
		msg(2, nil),                 // memory cleared
		msg(5, nil),                 // shutdown
	}
}

func testBuilder() *Builder {
	keys := []*extract.IntelKey{
		ikey(0, "acl"),
		ikey(1, "memory"),
		ikey(2, "memory store"),
		ikey(3, "task"),
		ikey(4, "task"),
		ikey(5, "shutdown"),
	}
	// Align message KeyIDs with builder: key 4 reuses entity task.
	b := NewBuilder(keys)
	return b
}

func TestBuilderHierarchy(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	b.AddSession(buildSession("t2"))
	g := b.Graph()

	if g.TotalSessions != 2 {
		t.Errorf("TotalSessions = %d", g.TotalSessions)
	}
	mem := g.Nodes["memory"]
	if mem == nil {
		t.Fatalf("no memory node; nodes = %v", nodeNames(g))
	}
	if !containsStr(mem.Children, "task") {
		t.Errorf("task should be child of memory; children = %v, roots = %v", mem.Children, g.Roots)
	}
	if !containsStr(g.Roots, "acl") || !containsStr(g.Roots, "shutdown") {
		t.Errorf("roots = %v, want acl and shutdown at top level", g.Roots)
	}
	if containsStr(g.Roots, "task") {
		t.Errorf("task must not be a root: %v", g.Roots)
	}
	if got := g.Relation("acl", "memory"); got != Before {
		t.Errorf("acl vs memory = %v, want BEFORE", got)
	}
	if !containsStr(g.Nodes["acl"].Next, "memory") {
		t.Errorf("acl.Next = %v, want memory", g.Nodes["acl"].Next)
	}
}

func TestBuilderCriticalGroups(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	g := b.Graph()
	if !g.Nodes["memory"].Critical {
		t.Error("memory group has two keys → critical")
	}
	if !g.Nodes["task"].Critical {
		t.Error("task group has two keys → critical")
	}
	if g.Nodes["acl"].Critical {
		t.Error("acl group: one key, one message → not critical")
	}
	crit := g.CriticalGroups()
	if !containsStr(crit, "memory") || containsStr(crit, "acl") {
		t.Errorf("CriticalGroups = %v", crit)
	}
}

func TestBuilderExpectedGroups(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	// Second session without shutdown messages.
	b.AddSession(buildSession("t2")[:5])
	g := b.Graph()
	exp := g.ExpectedGroups()
	if containsStr(exp, "shutdown") {
		t.Errorf("shutdown appeared in 1/2 sessions; expected = %v", exp)
	}
	if !containsStr(exp, "task") || !containsStr(exp, "memory") {
		t.Errorf("expected groups = %v, want task and memory", exp)
	}
}

func TestBuilderSubroutines(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	b.AddSession(buildSession("t2"))
	g := b.Graph()
	task := g.Nodes["task"]
	sub := task.Subroutines["TASK"]
	if sub == nil {
		t.Fatalf("no TASK subroutine; have %v", task.Subroutines)
	}
	if !reflect.DeepEqual(sub.Keys, []int{3, 4}) {
		t.Errorf("subroutine keys = %v, want [3 4]", sub.Keys)
	}
	if !sub.Critical[3] || !sub.Critical[4] {
		t.Errorf("both keys critical: %v", sub.Critical)
	}
	if !sub.Before[3][4] {
		t.Error("start before finish")
	}
	if sub.Instances != 2 {
		t.Errorf("Instances = %d, want 2", sub.Instances)
	}
}

func TestBuilderMiscGroup(t *testing.T) {
	keys := []*extract.IntelKey{ikey(0), ikey(1, "task")}
	b := NewBuilder(keys)
	b.AddSession([]*extract.Message{msg(0, nil), msg(1, id1("TASK", "t"))})
	g := b.Graph()
	if g.Nodes[MiscGroup] == nil {
		t.Fatalf("no misc group; nodes = %v", nodeNames(g))
	}
	if !reflect.DeepEqual(g.Nodes[MiscGroup].Keys, []int{0}) {
		t.Errorf("misc keys = %v", g.Nodes[MiscGroup].Keys)
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	g := b.Graph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded struct {
		Nodes map[string]*Node `json:"nodes"`
		Roots []string         `json:"roots"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded.Nodes) != len(g.Nodes) || len(decoded.Roots) != len(g.Roots) {
		t.Error("JSON round trip lost structure")
	}
}

func TestGraphRender(t *testing.T) {
	b := testBuilder()
	b.AddSession(buildSession("t1"))
	b.AddSession(buildSession("t2"))
	g := b.Graph()
	out := g.Render()
	if !strings.Contains(out, "memory") || !strings.Contains(out, "  task") {
		t.Errorf("Render output missing hierarchy:\n%s", out)
	}
}

func TestEmptySessionIgnored(t *testing.T) {
	b := testBuilder()
	b.AddSession(nil)
	if b.sessions != 0 {
		t.Error("empty session counted")
	}
}

func nodeNames(g *Graph) []string {
	var out []string
	for n := range g.Nodes {
		out = append(out, n)
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
