package hwgraph

import (
	"sync"

	"intellog/internal/extract"
)

// ValueInterner assigns dense int32 ids to identifier values across a
// model's lifetime. Algorithm 2 compares identifier sets tens of
// thousands of times per corpus; with values interned once per distinct
// rendering (cached on the bound prototype), the per-message work becomes
// pure integer array operations — no string hashing in the hot loop.
//
// The interner is safe for concurrent use; InternMessage results are
// cached on the message, so the lock is only taken once per distinct
// rendering (or per message on the uncached fallback path).
type ValueInterner struct {
	mu  sync.Mutex
	ids map[string]int32
}

// NewValueInterner returns an empty interner.
func NewValueInterner() *ValueInterner {
	return &ValueInterner{ids: map[string]int32{}}
}

// InternMessage computes and caches the message's interned identifier
// set. Call at prototype build time, while the message is still private
// to one goroutine. Messages without identifiers are left untouched.
func (vi *ValueInterner) InternMessage(m *extract.Message) {
	set := m.IdentifierSet()
	if len(set) == 0 {
		return
	}
	if ii := m.Interned(); ii != nil && ii.Owner == vi {
		return
	}
	m.SetInterned(vi.internSet(set))
}

// internSet interns a sorted identifier multiset.
func (vi *ValueInterner) internSet(set []string) *extract.InternedIDs {
	ii := &extract.InternedIDs{Owner: vi, Total: len(set)}
	vi.mu.Lock()
	for i, v := range set {
		if i > 0 && v == set[i-1] { // sorted: duplicates are adjacent
			ii.Counts[len(ii.Counts)-1]++
			continue
		}
		id, ok := vi.ids[v]
		if !ok {
			id = int32(len(vi.ids))
			vi.ids[v] = id
		}
		ii.IDs = append(ii.IDs, id)
		ii.Vals = append(ii.Vals, v)
		ii.Counts = append(ii.Counts, 1)
	}
	vi.mu.Unlock()
	return ii
}
