package hwgraph

import (
	"strings"
	"testing"
)

func exportFixture() *Graph {
	return &Graph{
		Nodes: map[string]*Node{
			"executor": {Name: "executor", Keys: []int{1, 2}, Critical: true,
				Subroutines: map[string]*Subroutine{"sig": nil},
				Children:    []string{"task"}, Sessions: 3},
			"task": {Name: "task", Keys: []int{3}, Next: []string{"shuffle"}, Sessions: 3},
			"shuffle": {Name: "shuffle", Keys: []int{4}, Sessions: 2,
				Entities: []string{`say "hi"`}},
		},
		Roots:         []string{"executor"},
		TotalSessions: 3,
	}
}

func TestDOTExport(t *testing.T) {
	g := exportFixture()
	dot := g.DOT()

	for _, want := range []string{
		"digraph hwgraph {",
		`"executor" -> "task";`,
		`"task" -> "shuffle" [style=dashed, label="before"];`,
		"peripheries=2", // critical double border
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Errorf("DOT output not closed:\n%s", dot)
	}
	// Determinism: repeated renders are byte-identical despite map-backed
	// node storage.
	if again := g.DOT(); again != dot {
		t.Error("DOT output differs across renders")
	}
}

func TestDOTQuoteEscapes(t *testing.T) {
	got := dotQuote("a\"b\\c\nd")
	want := `"a\"b\\c\nd"`
	if got != want {
		t.Errorf("dotQuote = %s, want %s", got, want)
	}
}
