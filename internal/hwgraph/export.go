package hwgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the HW-graph in Graphviz dot form — the operator-facing
// export of the Fig. 8 workflow view, served by the daemon's
// /v1/hwgraph?format=dot endpoint. Hierarchy (PARENT) edges are solid,
// sibling BEFORE edges dashed; critical groups get a double border. The
// output is deterministic: nodes and edges are emitted in sorted order.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph hwgraph {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")

	names := make([]string, 0, len(g.Nodes))
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		n := g.Nodes[name]
		attrs := []string{fmt.Sprintf("label=%s", dotQuote(dotLabel(n)))}
		if n.Critical {
			attrs = append(attrs, "peripheries=2")
		}
		fmt.Fprintf(&b, "  %s [%s];\n", dotQuote(name), strings.Join(attrs, ", "))
	}
	for _, name := range names {
		n := g.Nodes[name]
		children := append([]string(nil), n.Children...)
		sort.Strings(children)
		for _, c := range children {
			fmt.Fprintf(&b, "  %s -> %s;\n", dotQuote(name), dotQuote(c))
		}
		for _, next := range n.Next {
			fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"before\"];\n", dotQuote(name), dotQuote(next))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// dotLabel summarizes a node for display: name, subroutine count and
// training-session support.
func dotLabel(n *Node) string {
	return fmt.Sprintf("%s\n%d keys · %d subroutines · %d sessions",
		n.Name, len(n.Keys), len(n.Subroutines), n.Sessions)
}

// dotQuote escapes a string as a dot double-quoted ID.
func dotQuote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return `"` + s + `"`
}
