package hwgraph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Relation between two entity groups, derived from their lifespans across
// every training session (Fig. 6). PARENT and BEFORE require the relation
// to hold in every session where both groups appear; otherwise the groups
// are PARALLEL.
type Relation int

// Relations of Fig. 6 plus the auxiliary inverses of Fig. 7.
const (
	Parallel Relation = iota
	Parent
	Before
	Child
	After
)

var relationNames = [...]string{"PARALLEL", "PARENT", "BEFORE", "CHILD", "AFTER"}

// String returns the paper's upper-case relation name.
func (r Relation) String() string {
	if r < Parallel || r > After {
		return fmt.Sprintf("REL(%d)", int(r))
	}
	return relationNames[r]
}

// Inverse returns the opposite relation (PARENT↔CHILD, BEFORE↔AFTER).
func (r Relation) Inverse() Relation {
	switch r {
	case Parent:
		return Child
	case Before:
		return After
	case Child:
		return Parent
	case After:
		return Before
	default:
		return Parallel
	}
}

// Span is a group's lifespan within one session, measured in message
// indices (robust against timestamp ties).
type Span struct {
	First, Last int
}

// relTracker aggregates pairwise relations across sessions. The group
// population is fixed before training starts, so pairs live in flat
// n×n matrices indexed by dense group ids — the per-session fold never
// hashes a string.
type relTracker struct {
	// idx maps group name → dense id. Ids are assigned in lexicographic
	// name order, so the lower id is also the lexicographically smaller
	// name; pair p = lo*n + hi stores the aggregate from lo's perspective.
	idx   map[string]int
	names []string
	n     int
	// state holds the current aggregate relation per canonical pair;
	// seen marks pairs co-observed at least once.
	state []Relation
	seen  []bool
	// support counts the sessions in which both groups appeared. PARENT and
	// BEFORE are only trusted with enough support: a relation that held in
	// a handful of co-occurrences is likely incidental ordering, not
	// structure.
	support []int
	// minSupport is the trust threshold applied by relation().
	minSupport int
}

// newRelTracker prepares the tracker for a fixed set of group names,
// which must be sorted.
func newRelTracker(names []string) *relTracker {
	n := len(names)
	idx := make(map[string]int, n)
	for i, name := range names {
		idx[name] = i
	}
	return &relTracker{
		idx:     idx,
		names:   names,
		n:       n,
		state:   make([]Relation, n*n),
		seen:    make([]bool, n*n),
		support: make([]int, n*n),
	}
}

// observe folds one session's lifespans into the aggregate. touched
// holds the session's group ids in ascending order; spans is indexed by
// group id.
func (t *relTracker) observe(touched []int, spans []Span) {
	for i := 0; i < len(touched); i++ {
		for j := i + 1; j < len(touched); j++ {
			a, b := touched[i], touched[j]
			r := spanRelation(spans[a], spans[b])
			p := a*t.n + b
			t.support[p]++
			if !t.seen[p] {
				t.seen[p] = true
				t.state[p] = r
				continue
			}
			if t.state[p] != r {
				t.state[p] = Parallel
			}
		}
	}
}

// Relation returns the aggregate relation of a towards b, downgraded to
// PARALLEL when the pair lacks support.
func (t *relTracker) relation(a, b string) Relation {
	if a == b {
		return Parallel
	}
	ia, oka := t.idx[a]
	ib, okb := t.idx[b]
	if !oka || !okb {
		return Parallel
	}
	inverse := false
	if ia > ib {
		ia, ib = ib, ia
		inverse = true
	}
	p := ia*t.n + ib
	if t.support[p] < t.minSupport {
		return Parallel
	}
	r := t.state[p]
	if inverse {
		return r.Inverse()
	}
	return r
}

// SessionRelation derives the Fig. 6 relation of a towards b for one
// session's spans. Exposed for the detection phase's hierarchy check.
func SessionRelation(a, b Span) Relation { return spanRelation(a, b) }

// spanRelation derives the Fig. 6 relation of a towards b for one session.
func spanRelation(a, b Span) Relation {
	switch {
	case a.First == b.First && a.Last == b.Last:
		return Parallel
	case a.First <= b.First && b.Last <= a.Last:
		return Parent
	case b.First <= a.First && a.Last <= b.Last:
		return Child
	case a.Last < b.First:
		return Before
	case b.Last < a.First:
		return After
	default:
		return Parallel
	}
}

// Node is one entity group in the HW-graph.
type Node struct {
	// Name is the group name (the shared sub-phrase).
	Name string `json:"name"`
	// Entities are the member entity phrases.
	Entities []string `json:"entities"`
	// Keys are the Intel Key IDs whose entities map into this group.
	Keys []int `json:"keys"`
	// Subroutines maps signature → trained subroutine.
	Subroutines map[string]*Subroutine `json:"subroutines"`
	// Children are child group names (their lifespans nest inside ours in
	// every session).
	Children []string `json:"children,omitempty"`
	// Next are sibling groups that always start after this group ends.
	Next []string `json:"next,omitempty"`
	// Critical marks groups per the §6.3 criteria: multiple Intel Keys, or
	// an Intel Key with multiple messages in one session.
	Critical bool `json:"critical"`
	// Sessions counts training sessions in which the group appeared.
	Sessions int `json:"sessions"`
}

// Graph is the trained HW-graph for one targeted system.
type Graph struct {
	// Nodes maps group name → node.
	Nodes map[string]*Node `json:"nodes"`
	// Roots are top-level group names in placement order.
	Roots []string `json:"roots"`
	// TotalSessions counts the training sessions consumed.
	TotalSessions int `json:"totalSessions"`

	rels *relTracker

	// back indexes backward (predecessor) edges for DeviationWalk; built
	// lazily from the frozen node set.
	backOnce sync.Once
	back     map[string][]backEdge
}

// Relation exposes the aggregate lifespan relation of group a towards b.
func (g *Graph) Relation(a, b string) Relation { return g.rels.relation(a, b) }

// ExpectedGroups returns groups present in every training session — their
// absence in a detection session is an anomaly (how the paper's case
// study 3 flags Spark containers that never run a task).
func (g *Graph) ExpectedGroups() []string {
	var out []string
	for name, n := range g.Nodes {
		if n.Sessions == g.TotalSessions && g.TotalSessions > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// CriticalGroups returns the names of critical groups, sorted.
func (g *Graph) CriticalGroups() []string {
	var out []string
	for name, n := range g.Nodes {
		if n.Critical {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// RelationRecord is the serialised form of one trained pairwise relation.
type RelationRecord struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Rel     Relation `json:"rel"`
	Support int      `json:"support"`
}

// graphJSON is the serialised graph.
type graphJSON struct {
	Nodes         map[string]*Node `json:"nodes"`
	Roots         []string         `json:"roots"`
	TotalSessions int              `json:"totalSessions"`
	MinSupport    int              `json:"minSupport"`
	Relations     []RelationRecord `json:"relations"`
}

// MarshalJSON renders the graph including the trained pairwise relations,
// so a loaded graph can still run the detection-phase hierarchy check.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Nodes: g.Nodes, Roots: g.Roots, TotalSessions: g.TotalSessions}
	if g.rels != nil {
		out.MinSupport = g.rels.minSupport
		// Group ids are assigned in lexicographic name order, so the scan
		// emits records sorted by (A, B).
		t := g.rels
		for lo := 0; lo < t.n; lo++ {
			for hi := lo + 1; hi < t.n; hi++ {
				p := lo*t.n + hi
				if !t.seen[p] {
					continue
				}
				out.Relations = append(out.Relations, RelationRecord{
					A: t.names[lo], B: t.names[hi], Rel: t.state[p], Support: t.support[p],
				})
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a graph serialised by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	g.Nodes = in.Nodes
	g.Roots = in.Roots
	g.TotalSessions = in.TotalSessions
	nameSet := map[string]bool{}
	for _, r := range in.Relations {
		nameSet[r.A] = true
		nameSet[r.B] = true
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	g.rels = newRelTracker(names)
	g.rels.minSupport = in.MinSupport
	for _, r := range in.Relations {
		p := g.rels.idx[r.A]*g.rels.n + g.rels.idx[r.B]
		g.rels.state[p] = r.Rel
		g.rels.seen[p] = true
		g.rels.support[p] = r.Support
	}
	return nil
}

// assemble performs the Fig. 7 construction: repeatedly take the groups
// with no unplaced parent and no unplaced predecessor; place them (under
// their most specific placed parent, or as roots), then cross out their
// relations.
func (g *Graph) assemble() {
	names := make([]string, 0, len(g.Nodes))
	for n := range g.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	placed := map[string]bool{}
	for len(placed) < len(names) {
		var ready []string
		for _, n := range names {
			if placed[n] {
				continue
			}
			blocked := false
			for _, m := range names {
				if m == n || placed[m] {
					continue
				}
				switch g.rels.relation(n, m) {
				case Child, After:
					blocked = true
				}
				if blocked {
					break
				}
			}
			if !blocked {
				ready = append(ready, n)
			}
		}
		if len(ready) == 0 {
			// Inconsistent relations (possible when PARENT and BEFORE
			// observations conflict across pairs): break the tie by
			// placing all remaining groups at once.
			for _, n := range names {
				if !placed[n] {
					ready = append(ready, n)
				}
			}
		}
		for _, n := range ready {
			parent := g.mostSpecificParent(n, placed)
			if parent == "" {
				g.Roots = append(g.Roots, n)
			} else {
				p := g.Nodes[parent]
				p.Children = append(p.Children, n)
			}
			placed[n] = true
		}
	}
	// Sibling BEFORE edges.
	for _, n := range names {
		for _, m := range names {
			if n != m && g.rels.relation(n, m) == Before && sameParent(g, n, m) {
				g.Nodes[n].Next = append(g.Nodes[n].Next, m)
			}
		}
		sort.Strings(g.Nodes[n].Next)
	}
}

// mostSpecificParent returns the placed PARENT of n that is itself a
// descendant of every other placed parent of n ("" if none).
func (g *Graph) mostSpecificParent(n string, placed map[string]bool) string {
	var parents []string
	for m := range g.Nodes {
		if m != n && placed[m] && g.rels.relation(m, n) == Parent {
			parents = append(parents, m)
		}
	}
	if len(parents) == 0 {
		return ""
	}
	sort.Strings(parents)
	best := parents[0]
	for _, p := range parents[1:] {
		// p more specific than best if best is p's ancestor (best PARENT p).
		if g.rels.relation(best, p) == Parent {
			best = p
		}
	}
	return best
}

// sameParent reports whether two groups were placed under the same parent
// (or are both roots).
func sameParent(g *Graph, a, b string) bool {
	return parentOf(g, a) == parentOf(g, b)
}

func parentOf(g *Graph, n string) string {
	for name, node := range g.Nodes {
		for _, c := range node.Children {
			if c == n {
				return name
			}
		}
	}
	return ""
}

// Render returns an indented text rendering of the hierarchy, for the
// Fig. 8-style workflow views.
func (g *Graph) Render() string {
	var b strings.Builder
	var walk func(name string, depth int)
	walk = func(name string, depth int) {
		n := g.Nodes[name]
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(name)
		if n.Critical {
			b.WriteString(" *")
		}
		if len(n.Next) > 0 {
			b.WriteString(" -> " + strings.Join(n.Next, ", "))
		}
		b.WriteString("\n")
		children := append([]string(nil), n.Children...)
		sort.Strings(children)
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	roots := append([]string(nil), g.Roots...)
	sort.Strings(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
