package hwgraph_test

import (
	"fmt"

	"intellog/internal/extract"
	"intellog/internal/hwgraph"
)

// A minimal two-session training run: the task group's lifespan nests
// inside the memory group's in both sessions, so the HW-graph places it
// as a child (Fig. 6/7).
func ExampleBuilder() {
	keys := []*extract.IntelKey{
		{ID: 0, Entities: []string{"memory"}, NaturalLanguage: true},
		{ID: 1, Entities: []string{"task"}, NaturalLanguage: true},
		{ID: 2, Entities: []string{"task"}, NaturalLanguage: true},
		{ID: 3, Entities: []string{"memory"}, NaturalLanguage: true},
	}
	b := hwgraph.NewBuilder(keys)
	session := func(task string) []*extract.Message {
		ids := map[string][]string{"TASK": {task}}
		return []*extract.Message{
			{KeyID: 0},                   // memory started
			{KeyID: 1, Identifiers: ids}, // task start
			{KeyID: 2, Identifiers: ids}, // task finish
			{KeyID: 3},                   // memory cleared
		}
	}
	b.AddSession(session("t1"))
	b.AddSession(session("t2"))
	g := b.Graph()
	fmt.Println(g.Relation("memory", "task"))
	fmt.Print(g.Render())
	// Output:
	// PARENT
	// memory *
	//   task *
}

// Subroutines learn order and criticality from instances (Fig. 5).
func ExampleSubroutine_Update() {
	s := hwgraph.NewSubroutine("TASK")
	s.Update([]int{1, 2, 3})
	s.Update([]int{1, 3, 2}) // 2 and 3 swap: they become parallel
	s.Update([]int{1, 2})    // 3 absent: no longer critical
	fmt.Println("keys:", s.Keys)
	fmt.Println("critical 1:", s.Critical[1], " 3:", s.Critical[3])
	fmt.Println("1 before 2:", s.Before[1][2], " 2 before 3:", s.Before[2][3])
	// Output:
	// keys: [1 2 3]
	// critical 1: true  3: false
	// 1 before 2: true  2 before 3: false
}
