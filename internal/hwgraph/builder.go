package hwgraph

import (
	"sort"

	"intellog/internal/extract"
	"intellog/internal/group"
)

// MiscGroup collects Intel Keys that extracted no entities; they still
// participate in detection (unexpected-message matching) but carry no
// nomenclature signal.
const MiscGroup = "(misc)"

// Builder accumulates training sessions and produces the HW-graph.
type Builder struct {
	// Keys maps Intel Key ID → key.
	Keys map[int]*extract.IntelKey
	// Groups is the Algorithm 1 entity grouping.
	Groups *group.Groups
	// KeyGroups maps Intel Key ID → the entity groups it belongs to.
	KeyGroups map[int][]string

	subs          map[string]map[string]*Subroutine // group → signature → subroutine
	rels          *relTracker
	groupSessions map[string]int
	groupKeys     map[string]map[int]bool
	multiPerSess  map[string]bool // group had a key with >1 message in one session
	sessions      int
}

// NewBuilder indexes the Intel Keys, builds the entity grouping from
// their entities, and prepares per-group state.
func NewBuilder(keys []*extract.IntelKey) *Builder {
	b := &Builder{
		Keys:          map[int]*extract.IntelKey{},
		KeyGroups:     map[int][]string{},
		subs:          map[string]map[string]*Subroutine{},
		rels:          newRelTracker(),
		groupSessions: map[string]int{},
		groupKeys:     map[string]map[int]bool{},
		multiPerSess:  map[string]bool{},
	}
	var entities []string
	for _, k := range keys {
		b.Keys[k.ID] = k
		entities = append(entities, k.Entities...)
	}
	b.Groups = group.Build(entities)
	for _, k := range keys {
		groups := map[string]bool{}
		for _, e := range k.Entities {
			for _, g := range b.Groups.GroupsOf(e) {
				groups[g] = true
			}
		}
		if len(groups) == 0 {
			groups[MiscGroup] = true
		}
		names := make([]string, 0, len(groups))
		for g := range groups {
			names = append(names, g)
		}
		sort.Strings(names)
		b.KeyGroups[k.ID] = names
		for _, g := range names {
			if b.groupKeys[g] == nil {
				b.groupKeys[g] = map[int]bool{}
			}
			b.groupKeys[g][k.ID] = true
		}
	}
	return b
}

// GroupMessages partitions a session's messages by entity group,
// preserving order and recording each message's session index. A message
// belongs to every group its Intel Key belongs to.
func (b *Builder) GroupMessages(msgs []*extract.Message) (map[string][]*extract.Message, map[string]Span) {
	byGroup := map[string][]*extract.Message{}
	spans := map[string]Span{}
	for idx, m := range msgs {
		for _, g := range b.KeyGroups[m.KeyID] {
			byGroup[g] = append(byGroup[g], m)
			sp, ok := spans[g]
			if !ok {
				spans[g] = Span{First: idx, Last: idx}
			} else {
				sp.Last = idx
				spans[g] = sp
			}
		}
	}
	return byGroup, spans
}

// AddSession folds one training session (its Intel Messages in log order)
// into the model: group lifespans feed the relation tracker, and each
// group's messages are split into subroutine instances (Algorithm 2)
// that update the per-signature subroutines.
func (b *Builder) AddSession(msgs []*extract.Message) {
	if len(msgs) == 0 {
		return
	}
	b.sessions++
	byGroup, spans := b.GroupMessages(msgs)
	b.rels.observe(spans)
	for g, gmsgs := range byGroup {
		b.groupSessions[g]++
		// Criterion 2 for critical groups: a key with multiple messages in
		// a single session.
		perKey := map[int]int{}
		for _, m := range gmsgs {
			perKey[m.KeyID]++
			if perKey[m.KeyID] > 1 {
				b.multiPerSess[g] = true
			}
		}
		for _, inst := range AssignInstances(gmsgs) {
			sig := inst.Signature()
			if b.subs[g] == nil {
				b.subs[g] = map[string]*Subroutine{}
			}
			sub := b.subs[g][sig]
			if sub == nil {
				sub = NewSubroutine(sig)
				b.subs[g][sig] = sub
			}
			seq := make([]int, len(inst.Msgs))
			for i, m := range inst.Msgs {
				seq[i] = m.KeyID
			}
			sub.Update(seq)
		}
	}
}

// Graph finalises the model into the HW-graph. PARENT/BEFORE relations
// require support in at least 10% of training sessions (min 2) to be
// trusted; rare co-occurrences stay PARALLEL.
func (b *Builder) Graph() *Graph {
	b.rels.minSupport = b.sessions / 10
	if b.rels.minSupport < 2 {
		b.rels.minSupport = 2
	}
	g := &Graph{Nodes: map[string]*Node{}, TotalSessions: b.sessions, rels: b.rels}
	for _, gr := range b.Groups.List {
		b.addNode(g, gr.Name, gr.Entities)
	}
	if _, ok := b.groupKeys[MiscGroup]; ok {
		b.addNode(g, MiscGroup, nil)
	}
	g.assemble()
	return g
}

func (b *Builder) addNode(g *Graph, name string, entities []string) {
	keyIDs := make([]int, 0, len(b.groupKeys[name]))
	for id := range b.groupKeys[name] {
		keyIDs = append(keyIDs, id)
	}
	sort.Ints(keyIDs)
	subs := b.subs[name]
	if subs == nil {
		subs = map[string]*Subroutine{}
	}
	g.Nodes[name] = &Node{
		Name:        name,
		Entities:    entities,
		Keys:        keyIDs,
		Subroutines: subs,
		Critical:    len(keyIDs) > 1 || b.multiPerSess[name],
		Sessions:    b.groupSessions[name],
	}
}
