package hwgraph

import (
	"sort"

	"intellog/internal/extract"
	"intellog/internal/group"
)

// MiscGroup collects Intel Keys that extracted no entities; they still
// participate in detection (unexpected-message matching) but carry no
// nomenclature signal.
const MiscGroup = "(misc)"

// Builder accumulates training sessions and produces the HW-graph.
type Builder struct {
	// Keys maps Intel Key ID → key.
	Keys map[int]*extract.IntelKey
	// Groups is the Algorithm 1 entity grouping.
	Groups *group.Groups
	// KeyGroups maps Intel Key ID → the entity groups it belongs to.
	KeyGroups map[int][]string

	rels      *relTracker
	groupKeys map[string]map[int]bool
	sessions  int
	values    *ValueInterner

	// Dense group indexing: allGroups lists every group with at least one
	// key in lexicographic order, groupIdx inverts it, and keyGroupIdx
	// maps Intel Key ID → ascending group ids. The per-message training
	// loop runs entirely on these ids — no string hashing.
	allGroups   []string
	groupIdx    map[string]int
	keyGroupIdx [][]int // indexed by Intel Key ID

	// Per-group aggregates, indexed by group id.
	subsByGroup   []map[string]*Subroutine // signature → subroutine
	groupSessions []int
	multiPerSess  []bool // group had a key with >1 message in one session

	// Per-session scratch, reused across AddSession calls (the builder
	// folds sessions sequentially): Algorithm 2 state, the group
	// partition, spans and touched-group marks, the per-key multiplicity
	// counter, and the instance key-sequence buffer.
	asn     Assigner
	byGroup [][]*extract.Message
	spans   []Span
	mark    []bool
	touched []int
	perKey  map[int]int
	seq     []int
}

// NewBuilder indexes the Intel Keys, builds the entity grouping from
// their entities, and prepares per-group state.
func NewBuilder(keys []*extract.IntelKey) *Builder {
	b := &Builder{
		Keys:      map[int]*extract.IntelKey{},
		KeyGroups: map[int][]string{},
		groupKeys: map[string]map[int]bool{},
	}
	var entities []string
	for _, k := range keys {
		b.Keys[k.ID] = k
		entities = append(entities, k.Entities...)
	}
	b.Groups = group.Build(entities)
	for _, k := range keys {
		groups := map[string]bool{}
		for _, e := range k.Entities {
			for _, g := range b.Groups.GroupsOf(e) {
				groups[g] = true
			}
		}
		if len(groups) == 0 {
			groups[MiscGroup] = true
		}
		names := make([]string, 0, len(groups))
		for g := range groups {
			names = append(names, g)
		}
		sort.Strings(names)
		b.KeyGroups[k.ID] = names
		for _, g := range names {
			if b.groupKeys[g] == nil {
				b.groupKeys[g] = map[int]bool{}
			}
			b.groupKeys[g][k.ID] = true
		}
	}
	for g := range b.groupKeys {
		b.allGroups = append(b.allGroups, g)
	}
	sort.Strings(b.allGroups)
	b.groupIdx = make(map[string]int, len(b.allGroups))
	for i, g := range b.allGroups {
		b.groupIdx[g] = i
	}
	maxID := -1
	for id := range b.KeyGroups {
		if id > maxID {
			maxID = id
		}
	}
	b.keyGroupIdx = make([][]int, maxID+1)
	for id, names := range b.KeyGroups {
		idxs := make([]int, len(names))
		for i, g := range names {
			idxs[i] = b.groupIdx[g] // names sorted → idxs ascending
		}
		b.keyGroupIdx[id] = idxs
	}
	n := len(b.allGroups)
	b.rels = newRelTracker(b.allGroups)
	b.subsByGroup = make([]map[string]*Subroutine, n)
	b.groupSessions = make([]int, n)
	b.multiPerSess = make([]bool, n)
	b.byGroup = make([][]*extract.Message, n)
	b.spans = make([]Span, n)
	b.mark = make([]bool, n)
	b.perKey = map[int]int{}
	b.values = NewValueInterner()
	b.asn.SetValues(b.values)
	return b
}

// Values returns the builder's value interner. Callers that bind message
// prototypes before AddSession should pass them through
// ValueInterner.InternMessage so Algorithm 2 skips string interning.
func (b *Builder) Values() *ValueInterner { return b.values }

// GroupMessages partitions a session's messages by entity group,
// preserving order and recording each message's session index. A message
// belongs to every group its Intel Key belongs to.
func (b *Builder) GroupMessages(msgs []*extract.Message) (map[string][]*extract.Message, map[string]Span) {
	byGroup := map[string][]*extract.Message{}
	spans := map[string]Span{}
	for idx, m := range msgs {
		for _, g := range b.KeyGroups[m.KeyID] {
			byGroup[g] = append(byGroup[g], m)
			sp, ok := spans[g]
			if !ok {
				spans[g] = Span{First: idx, Last: idx}
			} else {
				sp.Last = idx
				spans[g] = sp
			}
		}
	}
	return byGroup, spans
}

// AddSession folds one training session (its Intel Messages in log order)
// into the model: group lifespans feed the relation tracker, and each
// group's messages are split into subroutine instances (Algorithm 2)
// that update the per-signature subroutines.
func (b *Builder) AddSession(msgs []*extract.Message) {
	if len(msgs) == 0 {
		return
	}
	b.sessions++
	touched := b.touched[:0]
	for idx, m := range msgs {
		if m.KeyID < 0 || m.KeyID >= len(b.keyGroupIdx) {
			continue
		}
		for _, gi := range b.keyGroupIdx[m.KeyID] {
			if !b.mark[gi] {
				b.mark[gi] = true
				touched = append(touched, gi)
				b.spans[gi] = Span{First: idx, Last: idx}
				// Keep the group slice's backing array from earlier
				// sessions.
				b.byGroup[gi] = b.byGroup[gi][:0]
			} else {
				b.spans[gi].Last = idx
			}
			b.byGroup[gi] = append(b.byGroup[gi], m)
		}
	}
	sort.Ints(touched)
	b.touched = touched
	b.rels.observe(touched, b.spans)
	for _, gi := range touched {
		b.mark[gi] = false
		gmsgs := b.byGroup[gi]
		b.groupSessions[gi]++
		// Criterion 2 for critical groups: a key with multiple messages in
		// a single session.
		clear(b.perKey)
		for _, m := range gmsgs {
			b.perKey[m.KeyID]++
			if b.perKey[m.KeyID] > 1 {
				b.multiPerSess[gi] = true
			}
		}
		for _, inst := range b.asn.Assign(gmsgs) {
			sig := inst.Signature()
			subs := b.subsByGroup[gi]
			if subs == nil {
				subs = map[string]*Subroutine{}
				b.subsByGroup[gi] = subs
			}
			sub := subs[sig]
			if sub == nil {
				sub = NewSubroutine(sig)
				subs[sig] = sub
			}
			seq := b.seq[:0]
			for _, m := range inst.Msgs {
				seq = append(seq, m.KeyID)
			}
			b.seq = seq
			sub.Update(seq)
		}
	}
}

// Graph finalises the model into the HW-graph. PARENT/BEFORE relations
// require support in at least 10% of training sessions (min 2) to be
// trusted; rare co-occurrences stay PARALLEL.
func (b *Builder) Graph() *Graph {
	b.rels.minSupport = b.sessions / 10
	if b.rels.minSupport < 2 {
		b.rels.minSupport = 2
	}
	g := &Graph{Nodes: map[string]*Node{}, TotalSessions: b.sessions, rels: b.rels}
	for _, gr := range b.Groups.List {
		b.addNode(g, gr.Name, gr.Entities)
	}
	if _, ok := b.groupKeys[MiscGroup]; ok {
		b.addNode(g, MiscGroup, nil)
	}
	g.assemble()
	return g
}

func (b *Builder) addNode(g *Graph, name string, entities []string) {
	keyIDs := make([]int, 0, len(b.groupKeys[name]))
	for id := range b.groupKeys[name] {
		keyIDs = append(keyIDs, id)
	}
	sort.Ints(keyIDs)
	var subs map[string]*Subroutine
	var sessions int
	var multi bool
	if gi, ok := b.groupIdx[name]; ok {
		subs = b.subsByGroup[gi]
		sessions = b.groupSessions[gi]
		multi = b.multiPerSess[gi]
	}
	if subs == nil {
		subs = map[string]*Subroutine{}
	}
	g.Nodes[name] = &Node{
		Name:        name,
		Entities:    entities,
		Keys:        keyIDs,
		Subroutines: subs,
		Critical:    len(keyIDs) > 1 || multi,
		Sessions:    sessions,
	}
}
