package hwgraph

import (
	"reflect"
	"testing"
)

// walkFixture: driver contains executor contains task; task BEFORE
// shuffle BEFORE commit.
func walkFixture() *Graph {
	return &Graph{
		Nodes: map[string]*Node{
			"driver":   {Name: "driver", Children: []string{"executor"}},
			"executor": {Name: "executor", Children: []string{"task", "shuffle", "commit"}},
			"task":     {Name: "task", Next: []string{"shuffle"}},
			"shuffle":  {Name: "shuffle", Next: []string{"commit"}},
			"commit":   {Name: "commit"},
		},
		Roots:         []string{"driver"},
		TotalSessions: 3,
	}
}

func devSet(groups ...string) func(string) bool {
	set := map[string]bool{}
	for _, g := range groups {
		set[g] = true
	}
	return func(g string) bool { return set[g] }
}

func TestDeviationWalkFindsEarliestUpstream(t *testing.T) {
	g := walkFixture()
	// commit erred, and both task and shuffle deviated: the walk must
	// surface task (two BEFORE hops back) as the earliest cause and
	// report the forward chain.
	got := g.DeviationWalk("commit", devSet("commit", "shuffle", "task"))
	want := []WalkStep{
		{Group: "task", Deviating: true},
		{Group: "shuffle", Edge: "before", Deviating: true},
		{Group: "commit", Edge: "before", Deviating: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %+v, want %+v", got, want)
	}
}

func TestDeviationWalkThroughParentEdges(t *testing.T) {
	g := walkFixture()
	// Only the enclosing driver deviated: the walk crosses clean
	// intermediate groups (executor) to reach it.
	got := g.DeviationWalk("task", devSet("task", "driver"))
	want := []WalkStep{
		{Group: "driver", Deviating: true},
		{Group: "executor", Edge: "parent"},
		{Group: "task", Edge: "parent", Deviating: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %+v, want %+v", got, want)
	}
}

func TestDeviationWalkNoUpstreamDeviation(t *testing.T) {
	g := walkFixture()
	got := g.DeviationWalk("shuffle", devSet("shuffle"))
	want := []WalkStep{{Group: "shuffle", Deviating: true}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %+v, want %+v", got, want)
	}
	// Unknown group: single-step path, no panic.
	got = g.DeviationWalk("ghost", devSet())
	want = []WalkStep{{Group: "ghost"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %+v, want %+v", got, want)
	}
}

func TestDeviationWalkDeterministic(t *testing.T) {
	g := walkFixture()
	first := g.DeviationWalk("commit", devSet("task", "driver", "commit"))
	for i := 0; i < 50; i++ {
		if got := g.DeviationWalk("commit", devSet("task", "driver", "commit")); !reflect.DeepEqual(got, first) {
			t.Fatalf("walk differs on repeat %d: %+v vs %+v", i, got, first)
		}
	}
}

func TestParentOf(t *testing.T) {
	g := walkFixture()
	if p := g.ParentOf("task"); p != "executor" {
		t.Fatalf("ParentOf(task) = %q, want executor", p)
	}
	if p := g.ParentOf("driver"); p != "" {
		t.Fatalf("ParentOf(driver) = %q, want root", p)
	}
}
