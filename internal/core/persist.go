package core

import (
	"encoding/json"
	"fmt"
	"io"

	"intellog/internal/detect"
	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/spell"
)

// modelJSON is the on-disk form of a trained model. Both HW-graphs and
// their instances serialise as JSON (§5: "output as JSON files which can
// be queried by JSON query tools").
type modelJSON struct {
	Version   int                 `json:"version"`
	Config    Config              `json:"config"`
	SpellKeys []*spell.Key        `json:"spellKeys"`
	IntelKeys []*extract.IntelKey `json:"intelKeys"`
	KeyGroups map[int][]string    `json:"keyGroups"`
	Graph     *hwgraph.Graph      `json:"graph"`
}

// modelVersion guards format compatibility.
const modelVersion = 1

// toJSON converts a model to its on-disk form.
func (m *Model) toJSON() modelJSON {
	out := modelJSON{
		Version:   modelVersion,
		Config:    m.cfg,
		SpellKeys: m.Parser.Keys(),
		KeyGroups: m.KeyGroups,
		Graph:     m.Graph,
	}
	for _, ik := range m.Keys {
		out.IntelKeys = append(out.IntelKeys, ik)
	}
	return out
}

// fromJSON rebuilds a model from its on-disk form.
func fromJSON(in *modelJSON) (*Model, error) {
	if in.Version != modelVersion {
		return nil, fmt.Errorf("model version %d, want %d", in.Version, modelVersion)
	}
	if in.Graph == nil {
		return nil, fmt.Errorf("model has no HW-graph")
	}
	m := &Model{
		Parser:    spell.Restore(in.Config.SpellThreshold, in.SpellKeys),
		Keys:      map[int]*extract.IntelKey{},
		Graph:     in.Graph,
		KeyGroups: in.KeyGroups,
		cfg:       in.Config,
		lookup:    spell.NewLookupCache(0),
	}
	for _, ik := range in.IntelKeys {
		m.Keys[ik.ID] = ik
	}
	return m, nil
}

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m.toJSON())
}

// Load restores a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	return fromJSON(&in)
}

// checkpointJSON is the on-disk form of a streaming checkpoint: the
// trained model plus the online detector's in-flight session state, so a
// restarted process resumes mid-stream from one file.
type checkpointJSON struct {
	Version int                 `json:"version"`
	Model   modelJSON           `json:"model"`
	Stream  *detect.StreamState `json:"stream"`
	// Cursor is an opaque position in the input stream — the CLI stores
	// the count of raw input lines already consumed, so rerunning the
	// same command after a crash fast-forwards past them instead of
	// double-consuming.
	Cursor int64 `json:"cursor,omitempty"`
	// Analytics is an opaque serving-layer payload: the tenant's
	// analytics-engine state (clusters, rollups, session deviation
	// evidence), marshaled by the owner so the core stays decoupled from
	// the analytics package. Absent in checkpoints written before the
	// analytics layer existed — loaders treat nil as "start fresh".
	Analytics json.RawMessage `json:"analytics,omitempty"`
}

// checkpointVersion guards checkpoint format compatibility.
const checkpointVersion = 1

// SaveCheckpoint writes a streaming checkpoint: the model and the
// in-flight state of its stream detector (from StreamDetector.State).
func SaveCheckpoint(w io.Writer, m *Model, st *detect.StreamState) error {
	return SaveCheckpointAt(w, m, st, 0)
}

// SaveCheckpointAt is SaveCheckpoint with an input-stream cursor (see
// checkpointJSON.Cursor); zero means "resume from wherever the caller's
// input begins".
func SaveCheckpointAt(w io.Writer, m *Model, st *detect.StreamState, cursor int64) error {
	return SaveCheckpointState(w, m, st, cursor, nil)
}

// SaveCheckpointState is SaveCheckpointAt with an opaque serving-layer
// analytics payload (see checkpointJSON.Analytics); nil omits it.
func SaveCheckpointState(w io.Writer, m *Model, st *detect.StreamState, cursor int64, analytics []byte) error {
	out := checkpointJSON{
		Version:   checkpointVersion,
		Model:     m.toJSON(),
		Stream:    st,
		Cursor:    cursor,
		Analytics: analytics,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint. The
// returned stream state is handed to RestoreStream (or directly to
// detect.RestoreStreamDetector) to resume consumption.
func LoadCheckpoint(r io.Reader) (*Model, *detect.StreamState, error) {
	m, st, _, err := LoadCheckpointAt(r)
	return m, st, err
}

// LoadCheckpointAt is LoadCheckpoint plus the stored input cursor.
func LoadCheckpointAt(r io.Reader) (*Model, *detect.StreamState, int64, error) {
	m, st, cursor, _, err := LoadCheckpointState(r)
	return m, st, cursor, err
}

// LoadCheckpointState is LoadCheckpointAt plus the opaque analytics
// payload; nil when the checkpoint predates the analytics layer.
func LoadCheckpointState(r io.Reader) (*Model, *detect.StreamState, int64, []byte, error) {
	var in checkpointJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("decode checkpoint: %w", err)
	}
	if in.Version != checkpointVersion {
		return nil, nil, 0, nil, fmt.Errorf("checkpoint version %d, want %d", in.Version, checkpointVersion)
	}
	if in.Stream == nil {
		return nil, nil, 0, nil, fmt.Errorf("checkpoint has no stream state")
	}
	m, err := fromJSON(&in.Model)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return m, in.Stream, in.Cursor, in.Analytics, nil
}

// RestoreStream rebuilds the model's streaming detector from checkpoint
// state, replaying buffered records through the model.
func (m *Model) RestoreStream(cfg detect.StreamConfig, st *detect.StreamState) (*detect.StreamDetector, error) {
	return detect.RestoreStreamDetector(m.Detector(), cfg, st)
}
