package core

import (
	"encoding/json"
	"fmt"
	"io"

	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/spell"
)

// modelJSON is the on-disk form of a trained model. Both HW-graphs and
// their instances serialise as JSON (§5: "output as JSON files which can
// be queried by JSON query tools").
type modelJSON struct {
	Version   int                 `json:"version"`
	Config    Config              `json:"config"`
	SpellKeys []*spell.Key        `json:"spellKeys"`
	IntelKeys []*extract.IntelKey `json:"intelKeys"`
	KeyGroups map[int][]string    `json:"keyGroups"`
	Graph     *hwgraph.Graph      `json:"graph"`
}

// modelVersion guards format compatibility.
const modelVersion = 1

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Version:   modelVersion,
		Config:    m.cfg,
		SpellKeys: m.Parser.Keys(),
		KeyGroups: m.KeyGroups,
		Graph:     m.Graph,
	}
	for _, ik := range m.Keys {
		out.IntelKeys = append(out.IntelKeys, ik)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load restores a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	if in.Version != modelVersion {
		return nil, fmt.Errorf("model version %d, want %d", in.Version, modelVersion)
	}
	if in.Graph == nil {
		return nil, fmt.Errorf("model has no HW-graph")
	}
	m := &Model{
		Parser:    spell.Restore(in.Config.SpellThreshold, in.SpellKeys),
		Keys:      map[int]*extract.IntelKey{},
		Graph:     in.Graph,
		KeyGroups: in.KeyGroups,
		cfg:       in.Config,
		lookup:    spell.NewLookupCache(0),
	}
	for _, ik := range in.IntelKeys {
		m.Keys[ik.ID] = ik
	}
	return m, nil
}
