package core

import (
	"fmt"
	"testing"
	"time"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

// miniSession fabricates a Spark-executor-like session with two tasks.
func miniSession(id string, firstTask int) *logging.Session {
	t0 := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	lines := []string{
		"Changing view acls to root",
		"MemoryStore started with capacity 366 MB",
		fmt.Sprintf("Got assigned task %d", firstTask),
		fmt.Sprintf("Running task %d in stage 90", firstTask),
		fmt.Sprintf("Finished task %d in stage 90", firstTask),
		fmt.Sprintf("Got assigned task %d", firstTask+1),
		fmt.Sprintf("Running task %d in stage 90", firstTask+1),
		fmt.Sprintf("Finished task %d in stage 90", firstTask+1),
		"MemoryStore cleared",
		"Shutdown hook called",
	}
	s := &logging.Session{ID: id, Framework: logging.Spark}
	for i, l := range lines {
		s.Records = append(s.Records, logging.Record{
			Time: t0.Add(time.Duration(i) * time.Second), Level: logging.Info,
			Message: l, Framework: logging.Spark, SessionID: id,
		})
	}
	return s
}

// trainMini trains a tiny model. testing.TB so the fuzz targets can call
// it once per process from a *testing.F.
func trainMini(t testing.TB) *Model {
	t.Helper()
	var sessions []*logging.Session
	for i := 0; i < 4; i++ {
		sessions = append(sessions, miniSession(fmt.Sprintf("container_%02d", i), 10+2*i))
	}
	return Train(sessions, Config{})
}

func TestTrainBuildsModel(t *testing.T) {
	m := trainMini(t)
	if len(m.Keys) == 0 {
		t.Fatal("no Intel Keys")
	}
	if len(m.Graph.Nodes) == 0 {
		t.Fatal("no HW-graph nodes")
	}
	// The task keys must share a group.
	var taskGroup string
	for _, node := range m.Graph.Nodes {
		for _, e := range node.Entities {
			if e == "task" {
				taskGroup = node.Name
			}
		}
	}
	if taskGroup == "" {
		t.Fatalf("no group contains entity 'task'; nodes: %v", m.Graph.Render())
	}
	node := m.Graph.Nodes[taskGroup]
	if len(node.Keys) < 3 {
		t.Errorf("task group keys = %v, want the three task keys", node.Keys)
	}
	if !node.Critical {
		t.Error("task group should be critical (multiple keys)")
	}
}

func TestDetectCleanSession(t *testing.T) {
	m := trainMini(t)
	clean := miniSession("container_99", 70)
	report := m.Detect([]*logging.Session{clean})
	if len(report.Anomalies) != 0 {
		for _, a := range report.Anomalies {
			t.Logf("anomaly: %s %s %s", a.Kind, a.Group, a.Detail)
		}
		t.Fatalf("clean session produced %d anomalies", len(report.Anomalies))
	}
	if got := report.ProblematicSessions(); len(got) != 0 {
		t.Errorf("ProblematicSessions = %v", got)
	}
}

func TestDetectTruncatedSession(t *testing.T) {
	m := trainMini(t)
	killed := miniSession("container_k", 80)
	killed.Records = killed.Records[:4] // SIGKILL right after "Running task 80"
	report := m.Detect([]*logging.Session{killed})
	if len(report.Anomalies) == 0 {
		t.Fatal("truncated session produced no anomalies")
	}
	foundMissing := false
	for _, a := range report.Anomalies {
		if a.Kind == detect.MissingCriticalKeys || a.Kind == detect.MissingGroup {
			foundMissing = true
		}
	}
	if !foundMissing {
		for _, a := range report.Anomalies {
			t.Logf("anomaly: %s %s %s", a.Kind, a.Group, a.Detail)
		}
		t.Error("expected missing-critical-keys or missing-group anomaly")
	}
}

func TestDetectUnexpectedMessage(t *testing.T) {
	m := trainMini(t)
	s := miniSession("container_u", 90)
	bad := logging.Record{
		Time: s.Records[3].Time, Level: logging.Warn, Framework: logging.Spark,
		SessionID: s.ID, Message: "Failed to connect to host9:13562 for block fetch",
	}
	s.Records = append(s.Records[:4:4], append([]logging.Record{bad}, s.Records[4:]...)...)
	report := m.Detect([]*logging.Session{s})
	unexpected := report.ByKind(detect.UnexpectedMessage)
	if len(unexpected) != 1 {
		t.Fatalf("got %d unexpected-message anomalies, want 1 (all: %+v)", len(unexpected), report.Anomalies)
	}
	a := unexpected[0]
	if a.Extracted == nil {
		t.Fatal("no extraction on unexpected message")
	}
	if addrs := a.Extracted.Localities["ADDR"]; len(addrs) != 1 || addrs[0] != "host9:13562" {
		t.Errorf("extracted localities = %v, want host9:13562", a.Extracted.Localities)
	}
}

func TestDetectMissingTaskGroup(t *testing.T) {
	m := trainMini(t)
	idle := miniSession("container_i", 95)
	// Remove every task-related record (the SPARK-19731 signature: a
	// container that never receives tasks).
	var kept []logging.Record
	for _, r := range idle.Records {
		if containsAny(r.Message, "task") {
			continue
		}
		kept = append(kept, r)
	}
	idle.Records = kept
	report := m.Detect([]*logging.Session{idle})
	found := false
	for _, a := range report.ByKind(detect.MissingGroup) {
		if a.Group == "task" {
			found = true
		}
	}
	if !found {
		for _, a := range report.Anomalies {
			t.Logf("anomaly: %s %s %s", a.Kind, a.Group, a.Detail)
		}
		t.Error("idle container should report missing 'task' group")
	}
}

func TestMessagesBinding(t *testing.T) {
	m := trainMini(t)
	msgs := m.Messages([]*logging.Session{miniSession("container_m", 50)})
	if len(msgs) != 10 {
		t.Fatalf("got %d messages, want 10", len(msgs))
	}
	// The "Running task 50 in stage 90" message carries TASK and STAGE ids.
	foundTask := false
	for _, msg := range msgs {
		if len(msg.Identifiers["TASK"]) > 0 && len(msg.Identifiers["STAGE"]) > 0 {
			foundTask = true
		}
	}
	if !foundTask {
		t.Error("no message bound TASK and STAGE identifiers")
	}
}

func TestAblationDisableCriticalKeys(t *testing.T) {
	var sessions []*logging.Session
	for i := 0; i < 4; i++ {
		sessions = append(sessions, miniSession(fmt.Sprintf("c%d", i), 10+2*i))
	}
	m := Train(sessions, Config{DisableCriticalKeys: true, DisableMissingGroupCheck: true, DisableHierarchyCheck: true})
	killed := miniSession("ck", 80)
	killed.Records = killed.Records[:4]
	report := m.Detect([]*logging.Session{killed})
	if got := report.ByKind(detect.MissingCriticalKeys); len(got) != 0 {
		t.Errorf("critical keys disabled but still reported: %+v", got)
	}
}

func TestKindString(t *testing.T) {
	if detect.UnexpectedMessage.String() != "unexpected-message" {
		t.Error("kind name wrong")
	}
	if detect.Kind(42).String() != "kind(42)" {
		t.Error("out-of-range kind")
	}
}

func containsAny(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
