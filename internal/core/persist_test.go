package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainMini(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Keys) != len(m.Keys) {
		t.Errorf("keys: %d vs %d", len(loaded.Keys), len(m.Keys))
	}
	if len(loaded.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Errorf("nodes: %d vs %d", len(loaded.Graph.Nodes), len(m.Graph.Nodes))
	}
	// The loaded model must detect identically.
	clean := miniSession("container_rt", 70)
	if got := loaded.Detect([]*logging.Session{clean}); len(got.Anomalies) != 0 {
		for _, a := range got.Anomalies {
			t.Logf("anomaly: %s %s %s", a.Kind, a.Group, a.Detail)
		}
		t.Errorf("loaded model flags clean session")
	}
	killed := miniSession("container_rk", 80)
	killed.Records = killed.Records[:4]
	origN := len(m.Detect([]*logging.Session{killed}).Anomalies)
	loadN := len(loaded.Detect([]*logging.Session{killed}).Anomalies)
	if origN == 0 || origN != loadN {
		t.Errorf("detection differs after reload: %d vs %d", origN, loadN)
	}
	// Unexpected-message extraction still works through the loaded model.
	s := miniSession("container_ru", 90)
	s.Records[3].Message = "Failed to connect to host9:13562 for block fetch"
	rep := loaded.Detect([]*logging.Session{s})
	if len(rep.ByKind(detect.UnexpectedMessage)) == 0 {
		t.Error("loaded model misses unexpected messages")
	}
}

// checkpointCorpus interleaves a clean, a truncated, and an anomalous
// session into one record stream, round-robin (the aggregated-log shape
// the online mode consumes).
func checkpointCorpus() []logging.Record {
	clean := miniSession("container_a", 30)
	truncated := miniSession("container_b", 40)
	truncated.Records = truncated.Records[:4]
	odd := miniSession("container_c", 50)
	odd.Records[3].Message = "Failed to connect to host9:13562 for block fetch"
	var recs []logging.Record
	for i := 0; ; i++ {
		emitted := false
		for _, s := range []*logging.Session{clean, truncated, odd} {
			if i < len(s.Records) {
				recs = append(recs, s.Records[i])
				emitted = true
			}
		}
		if !emitted {
			return recs
		}
	}
}

// TestCheckpointRestoreByteIdenticalReport kills a streaming detector
// mid-corpus, persists model + in-flight state through SaveCheckpoint,
// restores both in a "new process" via LoadCheckpoint, and finishes the
// corpus: every finding and the final summary must be byte-identical to
// an uninterrupted run.
func TestCheckpointRestoreByteIdenticalReport(t *testing.T) {
	m := trainMini(t)
	cfg := detect.StreamConfig{IdleTimeout: time.Minute, MaxSessionMsgs: 32}
	recs := checkpointCorpus()

	run := func(consume func(sd *detect.StreamDetector, emit func([]detect.Anomaly)) *detect.Report) (string, string) {
		t.Helper()
		var all []detect.Anomaly
		emit := func(a []detect.Anomaly) { all = append(all, a...) }
		sd := detect.NewStream(m.Detector(), cfg)
		rep := consume(sd, emit)
		emit(rep.Anomalies)
		raw, err := json.Marshal(all)
		if err != nil {
			t.Fatalf("marshal findings: %v", err)
		}
		return string(raw), rep.Summary()
	}

	wantFindings, wantSummary := run(func(sd *detect.StreamDetector, emit func([]detect.Anomaly)) *detect.Report {
		for _, r := range recs {
			emit(sd.Consume(r))
		}
		return sd.Flush()
	})

	// Interrupted run: consume half, checkpoint, "restart", finish.
	cut := len(recs) / 2
	var all []detect.Anomaly
	sd := detect.NewStream(m.Detector(), cfg)
	for _, r := range recs[:cut] {
		all = append(all, sd.Consume(r)...)
	}
	var ckpt bytes.Buffer
	if err := SaveCheckpoint(&ckpt, m, sd.State()); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	m2, st, err := LoadCheckpoint(&ckpt)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	sd2, err := m2.RestoreStream(cfg, st)
	if err != nil {
		t.Fatalf("RestoreStream: %v", err)
	}
	if sd2.Pending() != sd.Pending() {
		t.Fatalf("restored Pending = %d, want %d", sd2.Pending(), sd.Pending())
	}
	for _, r := range recs[cut:] {
		all = append(all, sd2.Consume(r)...)
	}
	rep := sd2.Flush()
	all = append(all, rep.Anomalies...)
	raw, err := json.Marshal(all)
	if err != nil {
		t.Fatalf("marshal findings: %v", err)
	}

	if string(raw) != wantFindings {
		t.Errorf("findings diverge after checkpoint/restore:\ngot:  %s\nwant: %s", raw, wantFindings)
	}
	if got := rep.Summary(); got != wantSummary {
		t.Errorf("summary diverges after checkpoint/restore:\ngot:  %q\nwant: %q", got, wantSummary)
	}
}

func TestCheckpointCursorRoundTrip(t *testing.T) {
	m := trainMini(t)
	sd := detect.NewStream(m.Detector(), detect.StreamConfig{})
	var buf bytes.Buffer
	if err := SaveCheckpointAt(&buf, m, sd.State(), 4242); err != nil {
		t.Fatalf("SaveCheckpointAt: %v", err)
	}
	if _, _, cur, err := LoadCheckpointAt(&buf); err != nil || cur != 4242 {
		t.Fatalf("LoadCheckpointAt = cursor %d, err %v; want 4242, nil", cur, err)
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if _, _, err := LoadCheckpoint(strings.NewReader("{")); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, _, err := LoadCheckpoint(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, _, err := LoadCheckpoint(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("checkpoint without stream state accepted")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("model without graph accepted")
	}
}
