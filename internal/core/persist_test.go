package core

import (
	"bytes"
	"strings"
	"testing"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainMini(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Keys) != len(m.Keys) {
		t.Errorf("keys: %d vs %d", len(loaded.Keys), len(m.Keys))
	}
	if len(loaded.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Errorf("nodes: %d vs %d", len(loaded.Graph.Nodes), len(m.Graph.Nodes))
	}
	// The loaded model must detect identically.
	clean := miniSession("container_rt", 70)
	if got := loaded.Detect([]*logging.Session{clean}); len(got.Anomalies) != 0 {
		for _, a := range got.Anomalies {
			t.Logf("anomaly: %s %s %s", a.Kind, a.Group, a.Detail)
		}
		t.Errorf("loaded model flags clean session")
	}
	killed := miniSession("container_rk", 80)
	killed.Records = killed.Records[:4]
	origN := len(m.Detect([]*logging.Session{killed}).Anomalies)
	loadN := len(loaded.Detect([]*logging.Session{killed}).Anomalies)
	if origN == 0 || origN != loadN {
		t.Errorf("detection differs after reload: %d vs %d", origN, loadN)
	}
	// Unexpected-message extraction still works through the loaded model.
	s := miniSession("container_ru", 90)
	s.Records[3].Message = "Failed to connect to host9:13562 for block fetch"
	rep := loaded.Detect([]*logging.Session{s})
	if len(rep.ByKind(detect.UnexpectedMessage)) == 0 {
		t.Error("loaded model misses unexpected messages")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("model without graph accepted")
	}
}
