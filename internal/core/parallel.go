package core

import (
	"runtime"
	"sync"

	"intellog/internal/extract"
	"intellog/internal/logging"
	"intellog/internal/spell"
)

// parallelism is the worker count for the embarrassingly parallel stages
// (Intel Key building, per-session binding, per-session detection).
func parallelism() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// buildIntelKeys runs extract.BuildIntelKey over all Spell keys with a
// worker pool. Results are positional, so the output is deterministic
// regardless of scheduling.
func buildIntelKeys(keys []*spell.Key) []*extract.IntelKey {
	out := make([]*extract.IntelKey, len(keys))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i] = extract.BuildIntelKey(keys[i])
			}
		}()
	}
	for i := range keys {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// bindSessions converts every session to Intel Messages in parallel,
// preserving session order. The Spell parser is only read (Lookup), which
// is safe concurrently once training consumption is done.
func bindSessions(parser *spell.Parser, keys map[int]*extract.IntelKey, sessions []*logging.Session) [][]*extract.Message {
	out := make([][]*extract.Message, len(sessions))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i] = BindSession(parser, keys, sessions[i])
			}
		}()
	}
	for i := range sessions {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
