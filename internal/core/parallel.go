package core

import (
	"intellog/internal/extract"
	"intellog/internal/logging"
	"intellog/internal/par"
	"intellog/internal/spell"
)

// buildIntelKeys runs extract.BuildIntelKey over all Spell keys with a
// worker pool. Results are positional, so the output is deterministic
// regardless of scheduling.
func buildIntelKeys(keys []*spell.Key) []*extract.IntelKey {
	out := make([]*extract.IntelKey, len(keys))
	par.ForEachIndex(len(keys), func(i int) {
		out[i] = extract.BuildIntelKey(keys[i])
	})
	return out
}

// bindSessions converts every session to Intel Messages in parallel,
// preserving session order. The Spell parser is only read (Lookup), which
// is safe concurrently once training consumption is done; the shared
// lookup cache is internally synchronized.
func bindSessions(parser *spell.Parser, keys map[int]*extract.IntelKey, cache *spell.LookupCache, sessions []*logging.Session) [][]*extract.Message {
	out := make([][]*extract.Message, len(sessions))
	par.ForEachIndex(len(sessions), func(i int) {
		out[i] = BindSessionCached(parser, keys, cache, sessions[i])
	})
	return out
}
