// Package core is the IntelLog facade (Fig. 2): it wires the four stages —
// log-key extraction (spell), information extraction (extract), HW-graph
// modeling (group + hwgraph) and anomaly detection (detect) — behind a
// Train/Detect API.
package core

import (
	"time"

	"intellog/internal/detect"
	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// Config controls training.
type Config struct {
	// SpellThreshold is Spell's matching threshold t (§5 sets 1.7).
	// Values ≤ 1 use spell.DefaultThreshold.
	SpellThreshold float64
	// DisableHierarchyCheck turns off lifespan-relation checking during
	// detection (ablation).
	DisableHierarchyCheck bool
	// DisableMissingGroupCheck turns off expected-group presence checking
	// during detection (ablation).
	DisableMissingGroupCheck bool
	// DisableCriticalKeys treats no Intel Key as critical during detection
	// (ablation of the Fig. 5 critical marking).
	DisableCriticalKeys bool
}

// Model is a trained IntelLog model for one targeted system.
type Model struct {
	// Parser is the trained Spell instance.
	Parser *spell.Parser
	// Keys maps Intel Key ID → Intel Key.
	Keys map[int]*extract.IntelKey
	// Graph is the HW-graph.
	Graph *hwgraph.Graph
	// KeyGroups maps Intel Key ID → entity group names.
	KeyGroups map[int][]string

	cfg Config
	// lookup memoizes raw message → Spell key across binding and
	// detection; sound because the parser stops consuming after training.
	lookup *spell.LookupCache
	// values interns identifier values; prototypes cached in lookup carry
	// interned sets from it, shared with the detector.
	values *hwgraph.ValueInterner
}

// Train runs the full training pipeline over normal-execution sessions.
func Train(sessions []*logging.Session, cfg Config) *Model {
	parser := spell.NewParser(cfg.SpellThreshold)

	// Stage 1: stream every message through Spell. Renderings repeat
	// heavily, so the token split is memoized by raw text (Consume copies
	// what it keeps, making the shared slices safe). The memo keeps the
	// full token split so stage 3 never tokenizes the same rendering
	// twice.
	type memoEntry struct {
		toks  []nlp.Token
		texts []string
	}
	memo := make(map[string]*memoEntry, 1024)
	for _, s := range sessions {
		for i := range s.Records {
			msg := s.Records[i].Message
			e, ok := memo[msg]
			if !ok {
				toks := nlp.Tokenize(msg)
				e = &memoEntry{toks: toks, texts: nlp.Texts(toks)}
				memo[msg] = e
			}
			parser.Consume(e.texts)
		}
	}

	// Stage 2: build Intel Keys (independent per key — parallel).
	keys := buildIntelKeys(parser.Keys())
	keyIndex := map[int]*extract.IntelKey{}
	for _, ik := range keys {
		keyIndex[ik.ID] = ik
	}

	// Stage 3: HW-graph modeling. Binding each session to Intel Messages
	// is independent per session (parallel); the graph builder itself
	// folds sessions sequentially, in input order, for determinism.
	//
	// The parser is frozen after stage 1, so the lookup cache can be
	// warmed from the stage-1 memo up front: every distinct rendering is
	// tokenized, looked up and bound exactly once, and the parallel
	// binding workers below run almost entirely on cache hits.
	builder := hwgraph.NewBuilder(keys)
	cache := spell.NewLookupCache(0)
	for msg, e := range memo {
		k := parser.Lookup(e.texts)
		cl := &extract.CachedLookup{Tokens: e.toks}
		if k != nil {
			if ik := keyIndex[k.ID]; ik != nil && ik.NaturalLanguage {
				cl.Proto = extract.Bind(ik, e.toks, time.Time{}, "", msg)
				cl.Proto.IdentifierSet()
				cl.Proto.IdentifierTypes()
				cl.Proto.TypeSignature() // precompute; shared by every copy
				builder.Values().InternMessage(cl.Proto)
			}
		}
		cache.AddAux(msg, k, cl)
	}
	for _, msgs := range bindSessions(parser, keyIndex, cache, sessions) {
		builder.AddSession(msgs)
	}

	return &Model{
		Parser:    parser,
		Keys:      keyIndex,
		Graph:     builder.Graph(),
		KeyGroups: builder.KeyGroups,
		cfg:       cfg,
		lookup:    cache,
		values:    builder.Values(),
	}
}

// BindSession converts a session's records to Intel Messages using the
// trained keys, skipping unmatched and non-NL messages.
func BindSession(parser *spell.Parser, keys map[int]*extract.IntelKey, s *logging.Session) []*extract.Message {
	return BindSessionCached(parser, keys, nil, s)
}

// BindSessionCached is BindSession with a raw-message lookup cache: the
// first occurrence of a rendering tokenizes, looks up and binds as usual
// and caches the result; every repeat either skips the record outright
// (unmatched or non-NL key) or shallow-copies the cached bound prototype.
// cache may be nil.
func BindSessionCached(parser *spell.Parser, keys map[int]*extract.IntelKey, cache *spell.LookupCache, s *logging.Session) []*extract.Message {
	var msgs []*extract.Message
	var rb extract.Rebinder
	for i := range s.Records {
		rec := &s.Records[i]
		if cache != nil {
			if k, aux, hit := cache.GetAux(rec.Message); hit {
				if k == nil {
					continue
				}
				if cl, ok := aux.(*extract.CachedLookup); ok && cl != nil {
					if cl.Proto != nil {
						msgs = append(msgs, rb.Rebind(cl.Proto, rec.Time, s.ID))
					}
					continue
				}
				// Entry without a memo (added via plain Add): fall through
				// and rebuild it below.
			}
		}
		tokens := nlp.Tokenize(rec.Message)
		k := parser.Lookup(nlp.Texts(tokens))
		cl := &extract.CachedLookup{Tokens: tokens}
		if k != nil {
			if ik := keys[k.ID]; ik != nil && ik.NaturalLanguage {
				cl.Proto = extract.Bind(ik, tokens, time.Time{}, "", rec.Message)
				cl.Proto.IdentifierSet()
				cl.Proto.IdentifierTypes()
				cl.Proto.TypeSignature() // precompute; shared by every copy
				msgs = append(msgs, rb.Rebind(cl.Proto, rec.Time, s.ID))
			}
		}
		if cache != nil {
			cache.AddAux(rec.Message, k, cl)
		}
	}
	return msgs
}

// Messages converts sessions to Intel Messages with the trained model
// (for storage and querying).
func (m *Model) Messages(sessions []*logging.Session) []*extract.Message {
	var out []*extract.Message
	for _, s := range sessions {
		out = append(out, BindSessionCached(m.Parser, m.Keys, m.lookup, s)...)
	}
	return out
}

// Detector returns the anomaly detector configured per the model's
// training config.
func (m *Model) Detector() *detect.Detector {
	d := detect.NewDetector(m.Parser, m.Keys, m.KeyGroups, m.Graph)
	// Share the model's lookup cache: training, binding and detection see
	// the same parser, so memoized lookups are interchangeable.
	if m.lookup != nil {
		d.Cache = m.lookup
	}
	d.Values = m.values
	d.CheckHierarchy = !m.cfg.DisableHierarchyCheck
	d.CheckMissingGroups = !m.cfg.DisableMissingGroupCheck
	if m.cfg.DisableCriticalKeys {
		for _, node := range m.Graph.Nodes {
			for _, sub := range node.Subroutines {
				for k := range sub.Critical {
					sub.Critical[k] = false
				}
			}
		}
	}
	return d
}

// Detect checks sessions against the trained model.
func (m *Model) Detect(sessions []*logging.Session) *detect.Report {
	return m.Detector().Detect(sessions)
}
