// Package core is the IntelLog facade (Fig. 2): it wires the four stages —
// log-key extraction (spell), information extraction (extract), HW-graph
// modeling (group + hwgraph) and anomaly detection (detect) — behind a
// Train/Detect API.
package core

import (
	"intellog/internal/detect"
	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// Config controls training.
type Config struct {
	// SpellThreshold is Spell's matching threshold t (§5 sets 1.7).
	// Values ≤ 1 use spell.DefaultThreshold.
	SpellThreshold float64
	// DisableHierarchyCheck turns off lifespan-relation checking during
	// detection (ablation).
	DisableHierarchyCheck bool
	// DisableMissingGroupCheck turns off expected-group presence checking
	// during detection (ablation).
	DisableMissingGroupCheck bool
	// DisableCriticalKeys treats no Intel Key as critical during detection
	// (ablation of the Fig. 5 critical marking).
	DisableCriticalKeys bool
}

// Model is a trained IntelLog model for one targeted system.
type Model struct {
	// Parser is the trained Spell instance.
	Parser *spell.Parser
	// Keys maps Intel Key ID → Intel Key.
	Keys map[int]*extract.IntelKey
	// Graph is the HW-graph.
	Graph *hwgraph.Graph
	// KeyGroups maps Intel Key ID → entity group names.
	KeyGroups map[int][]string

	cfg Config
}

// Train runs the full training pipeline over normal-execution sessions.
func Train(sessions []*logging.Session, cfg Config) *Model {
	parser := spell.NewParser(cfg.SpellThreshold)

	// Stage 1: stream every message through Spell.
	for _, s := range sessions {
		for i := range s.Records {
			parser.Consume(nlp.Texts(nlp.Tokenize(s.Records[i].Message)))
		}
	}

	// Stage 2: build Intel Keys (independent per key — parallel).
	keys := buildIntelKeys(parser.Keys())
	keyIndex := map[int]*extract.IntelKey{}
	for _, ik := range keys {
		keyIndex[ik.ID] = ik
	}

	// Stage 3: HW-graph modeling. Binding each session to Intel Messages
	// is independent per session (parallel); the graph builder itself
	// folds sessions sequentially, in input order, for determinism.
	builder := hwgraph.NewBuilder(keys)
	for _, msgs := range bindSessions(parser, keyIndex, sessions) {
		builder.AddSession(msgs)
	}

	return &Model{
		Parser:    parser,
		Keys:      keyIndex,
		Graph:     builder.Graph(),
		KeyGroups: builder.KeyGroups,
		cfg:       cfg,
	}
}

// BindSession converts a session's records to Intel Messages using the
// trained keys, skipping unmatched and non-NL messages.
func BindSession(parser *spell.Parser, keys map[int]*extract.IntelKey, s *logging.Session) []*extract.Message {
	var msgs []*extract.Message
	for i := range s.Records {
		rec := &s.Records[i]
		tokens := nlp.Tokenize(rec.Message)
		k := parser.Lookup(nlp.Texts(tokens))
		if k == nil {
			continue
		}
		ik := keys[k.ID]
		if ik == nil || !ik.NaturalLanguage {
			continue
		}
		msgs = append(msgs, extract.Bind(ik, tokens, rec.Time, s.ID, rec.Message))
	}
	return msgs
}

// Messages converts sessions to Intel Messages with the trained model
// (for storage and querying).
func (m *Model) Messages(sessions []*logging.Session) []*extract.Message {
	var out []*extract.Message
	for _, s := range sessions {
		out = append(out, BindSession(m.Parser, m.Keys, s)...)
	}
	return out
}

// Detector returns the anomaly detector configured per the model's
// training config.
func (m *Model) Detector() *detect.Detector {
	d := detect.NewDetector(m.Parser, m.Keys, m.KeyGroups, m.Graph)
	d.CheckHierarchy = !m.cfg.DisableHierarchyCheck
	d.CheckMissingGroups = !m.cfg.DisableMissingGroupCheck
	if m.cfg.DisableCriticalKeys {
		for _, node := range m.Graph.Nodes {
			for _, sub := range node.Subroutines {
				for k := range sub.Critical {
					sub.Critical[k] = false
				}
			}
		}
	}
	return d
}

// Detect checks sessions against the trained model.
func (m *Model) Detect(sessions []*logging.Session) *detect.Report {
	return m.Detector().Detect(sessions)
}
