package core

// Native fuzz target for the checkpoint path. Two contracts: (a) the
// loader must survive arbitrary bytes — malformed checkpoints return
// errors, never panics, and whatever *does* load must restore or be
// rejected cleanly; (b) for a kill/resume derived from the fuzz input
// (cut point and session interleaving), the combined findings must be
// byte-identical to an uninterrupted run over the same records, through
// a full model+state JSON round trip. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzCheckpointRoundTrip ./internal/core/

import (
	"bytes"
	"encoding/json"
	"testing"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

func FuzzCheckpointRoundTrip(f *testing.F) {
	m := trainMini(f)

	// Seed with a real checkpoint's bytes plus structurally interesting
	// junk.
	sd := detect.NewStream(m.Detector(), detect.StreamConfig{})
	for _, r := range miniSession("container_seed", 10).Records[:4] {
		sd.Consume(r)
	}
	var seed bytes.Buffer
	if err := SaveCheckpointAt(&seed, m, sd.State(), 4); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"stream":{}}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{0x00, 0xff, 0x7b, 0x7d})

	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) The loader never panics; a checkpoint that decodes must
		// either restore or be rejected with an error.
		if m2, st, _, err := LoadCheckpointAt(bytes.NewReader(data)); err == nil {
			if sd2, err := m2.RestoreStream(detect.StreamConfig{}, st); err == nil {
				sd2.Flush()
			}
		}

		// (b) Kill/resume parity on a record stream derived from the fuzz
		// bytes: two interleaved mini sessions, truncated and cut where the
		// input says.
		recs := interleaveMini(data)
		if len(recs) < 2 {
			return
		}
		cut := 1 + int(data[0])%(len(recs)-1)

		full := detect.NewStream(m.Detector(), detect.StreamConfig{})
		var uninterrupted []detect.Anomaly
		for _, r := range recs {
			uninterrupted = append(uninterrupted, full.Consume(r)...)
		}
		fullRep := full.Flush()
		uninterrupted = append(uninterrupted, fullRep.Anomalies...)

		first := detect.NewStream(m.Detector(), detect.StreamConfig{})
		var combined []detect.Anomaly
		for _, r := range recs[:cut] {
			combined = append(combined, first.Consume(r)...)
		}
		var buf bytes.Buffer
		if err := SaveCheckpointAt(&buf, m, first.State(), int64(cut)); err != nil {
			t.Fatalf("checkpoint at %d: %v", cut, err)
		}
		m2, st, cursor, err := LoadCheckpointAt(&buf)
		if err != nil {
			t.Fatalf("reload checkpoint: %v", err)
		}
		second, err := m2.RestoreStream(detect.StreamConfig{}, st)
		if err != nil {
			t.Fatalf("restore stream: %v", err)
		}
		for _, r := range recs[cursor:] {
			combined = append(combined, second.Consume(r)...)
		}
		rep := second.Flush()
		combined = append(combined, rep.Anomalies...)

		if rep.Sessions != fullRep.Sessions {
			t.Fatalf("resumed run saw %d sessions, uninterrupted %d", rep.Sessions, fullRep.Sessions)
		}
		got, err := json.Marshal(combined)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(uninterrupted)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("resumed findings diverge at cut %d:\ngot:  %s\nwant: %s", cut, got, want)
		}
	})
}

// interleaveMini turns fuzz bytes into a record stream over two mini
// sessions: each byte appends the next record of session (b>>6)&1, and
// bytes with the low bit set skip a record (truncation/holes).
func interleaveMini(data []byte) []logging.Record {
	if len(data) > 128 {
		data = data[:128]
	}
	srcs := []*logging.Session{miniSession("container_fz_a", 10), miniSession("container_fz_b", 12)}
	next := make([]int, len(srcs))
	var out []logging.Record
	for _, b := range data {
		si := int(b>>6) & 1
		if b&1 == 1 {
			next[si]++ // hole: drop one record of that session
		}
		if next[si] >= len(srcs[si].Records) {
			continue
		}
		out = append(out, srcs[si].Records[next[si]])
		next[si]++
	}
	return out
}
