package detect

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// fixture builds a tiny trained world by hand: two keys in one group with
// a strict order, plus an ignored non-NL key. testing.TB so the fuzz
// targets can build it once per process from a *testing.F.
func fixture(t testing.TB) *Detector {
	t.Helper()
	parser := spell.NewParser(0)
	sessions := [][]string{
		{"Registering worker node_01", "Registered worker node_01", "bufstart=11 bufend=22"},
		{"Registering worker node_02", "Registered worker node_02", "bufstart=31 bufend=92"},
	}
	var keys []*extract.IntelKey
	index := map[int]*extract.IntelKey{}
	var trainMsgs [][]*extract.Message
	for si, lines := range sessions {
		var msgs []*extract.Message
		for li, line := range lines {
			toks := nlp.Tokenize(line)
			k := parser.Consume(nlp.Texts(toks))
			ik, ok := index[k.ID]
			if !ok {
				ik = extract.BuildIntelKey(k)
				index[k.ID] = ik
				keys = append(keys, ik)
			}
			if !ik.NaturalLanguage {
				continue
			}
			msgs = append(msgs, extract.Bind(ik, toks,
				time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(si*100+li)*time.Second),
				"", line))
		}
		trainMsgs = append(trainMsgs, msgs)
	}
	// Rebuild Intel Keys after merges settled (samples may have changed).
	keys = keys[:0]
	for _, k := range parser.Keys() {
		ik := extract.BuildIntelKey(k)
		index[k.ID] = ik
		keys = append(keys, ik)
	}
	builder := hwgraph.NewBuilder(keys)
	for _, msgs := range trainMsgs {
		builder.AddSession(msgs)
	}
	return NewDetector(parser, index, builder.KeyGroups, builder.Graph())
}

func session(lines ...string) *logging.Session {
	s := &logging.Session{ID: "test", Framework: logging.Spark}
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	for i, l := range lines {
		s.Records = append(s.Records, logging.Record{
			Time: t0.Add(time.Duration(i) * time.Second), Level: logging.Info,
			Message: l, SessionID: "test", Framework: logging.Spark,
		})
	}
	return s
}

func TestCleanSessionNoAnomalies(t *testing.T) {
	d := fixture(t)
	got := d.DetectSession(session(
		"Registering worker node_07", "Registered worker node_07", "bufstart=5 bufend=6"))
	if len(got) != 0 {
		t.Fatalf("anomalies on clean session: %+v", got)
	}
}

func TestNonNLMessagesIgnored(t *testing.T) {
	d := fixture(t)
	// Matched non-NL key with never-seen values must not alarm (§5 ignore
	// list).
	got := d.DetectSession(session(
		"Registering worker node_07", "Registered worker node_07", "bufstart=999999 bufend=0"))
	if len(got) != 0 {
		t.Fatalf("non-NL message triggered: %+v", got)
	}
}

func TestUnexpectedMessageExtraction(t *testing.T) {
	d := fixture(t)
	got := d.DetectSession(session(
		"Registering worker node_07", "Registered worker node_07",
		"Lost connection to worker node_07 on host3:8020"))
	if len(got) != 1 || got[0].Kind != UnexpectedMessage {
		t.Fatalf("got %+v, want one unexpected-message", got)
	}
	a := got[0]
	if a.Record == nil || a.Extracted == nil {
		t.Fatal("unexpected anomaly lacks record/extraction")
	}
	if addrs := a.Extracted.Localities["ADDR"]; len(addrs) != 1 || addrs[0] != "host3:8020" {
		t.Errorf("extracted ADDR = %v", a.Extracted.Localities)
	}
	if a.Group != "worker" {
		t.Errorf("attributed to group %q, want worker", a.Group)
	}
}

func TestMissingCriticalKeyDetected(t *testing.T) {
	d := fixture(t)
	got := d.DetectSession(session("Registering worker node_07"))
	found := false
	for _, a := range got {
		if a.Kind == MissingCriticalKeys && a.Group == "worker" && len(a.MissingKeys) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("truncated subroutine not caught: %+v", got)
	}
}

func TestOrderViolationDetected(t *testing.T) {
	d := fixture(t)
	got := d.DetectSession(session(
		"Registered worker node_07", "Registering worker node_07"))
	found := false
	for _, a := range got {
		if a.Kind == OrderViolation && len(a.Pairs) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("order inversion not caught: %+v", got)
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{Anomalies: []Anomaly{
		{Session: "a", Kind: UnexpectedMessage},
		{Session: "a", Kind: OrderViolation},
		{Session: "b", Kind: MissingGroup},
	}}
	if got := r.ProblematicSessions(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ProblematicSessions = %v", got)
	}
	if got := r.ByKind(UnexpectedMessage); len(got) != 1 {
		t.Errorf("ByKind = %v", got)
	}
}

func TestDetectBatch(t *testing.T) {
	d := fixture(t)
	r := d.Detect([]*logging.Session{
		session("Registering worker node_07", "Registered worker node_07"),
		session("Registering worker node_08"),
	})
	if r.Sessions != 2 {
		t.Errorf("Sessions = %d", r.Sessions)
	}
	if len(r.ProblematicSessions()) != 1 {
		t.Errorf("ProblematicSessions = %v", r.ProblematicSessions())
	}
}

func TestReportSummary(t *testing.T) {
	empty := &Report{Sessions: 3}
	if got := empty.Summary(); !strings.Contains(got, "no anomalies") {
		t.Errorf("empty summary = %q", got)
	}
	r := &Report{Sessions: 5, Anomalies: []Anomaly{
		{Session: "a", Kind: UnexpectedMessage, Group: "fetcher"},
		{Session: "a", Kind: UnexpectedMessage, Group: "fetcher"},
		{Session: "b", Kind: MissingGroup, Group: "task"},
	}}
	got := r.Summary()
	for _, want := range []string{"5 sessions checked", "2 problematic", "3 findings",
		"unexpected-message", "missing-group", "fetcher (2)", "task (1)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary missing %q:\n%s", want, got)
		}
	}
}

// TestDetectParallelDeterministic pins the ordered merge: at every shard
// count — serial, small, and oversubscribed (more shards than sessions
// or CPUs) — DetectParallel must reproduce the exact serial report,
// anomaly order included, not merely the same multiset of findings.
func TestDetectParallelDeterministic(t *testing.T) {
	d := fixture(t)
	// A mixed batch: clean sessions, truncated subroutines, inversions and
	// unexpected messages, so the merge has real per-session findings to
	// keep in input order.
	var sessions []*logging.Session
	for i := 0; i < 23; i++ {
		var s *logging.Session
		switch i % 4 {
		case 0:
			s = session("Registering worker node_07", "Registered worker node_07")
		case 1:
			s = session("Registering worker node_08")
		case 2:
			s = session("Registered worker node_09", "Registering worker node_09")
		default:
			s = session("Lost connection to worker node_10 on host1:8020")
		}
		s.ID = fmt.Sprintf("s%02d", i)
		for r := range s.Records {
			s.Records[r].SessionID = s.ID
		}
		sessions = append(sessions, s)
	}

	want := d.DetectParallel(sessions, 1)
	if len(want.Anomalies) == 0 {
		t.Fatal("fixture batch produced no anomalies; test is vacuous")
	}
	for _, shards := range []int{2, 3, 7, 16, 64} {
		got := d.DetectParallel(sessions, shards)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: report diverges from serial\n got: %+v\nwant: %+v",
				shards, got, want)
		}
	}
	// Detect is the shards-per-CPU spelling of the same merge.
	if got := d.Detect(sessions); !reflect.DeepEqual(got, want) {
		t.Errorf("Detect diverges from serial DetectParallel")
	}
}
