package detect

// Native fuzz target for the streaming detector: the fuzzer invents an
// interleaving of sessions and messages (trained, non-NL, novel, and raw
// garbage), and the stream paths must (a) match batch detection exactly
// at 1 and 4 shards, and (b) keep every configured resource cap under a
// capped configuration without panicking. This is the conformance
// package's differential oracle driven by generated interleavings
// instead of simulated corpora. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzStreamConsume ./internal/detect/

import (
	"fmt"
	"testing"
	"time"

	"intellog/internal/logging"
)

func FuzzStreamConsume(f *testing.F) {
	// One fixture detector for the whole run; its lookup cache is
	// concurrency-safe and lookups are deterministic, so sharing it across
	// iterations only makes the fuzzing faster.
	d := fixture(f)
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte("\x00\x01\x02\x10\x11\x12\x20\x21\x22"))
	f.Add([]byte{0x04, 0x14, 0x24, 0x05, 0x15, 0x25, 0x06})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 512 {
			data = data[:512]
		}
		// Decode the bytes into a record stream: high nibble picks one of
		// four sessions, low nibble picks the message (trained pair, non-NL,
		// novel, garbage variants).
		t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
		recs := make([]logging.Record, 0, len(data))
		for i, b := range data {
			id := fmt.Sprintf("s%d", (b>>4)&3)
			var msg string
			switch b & 7 {
			case 0:
				msg = "Registering worker node_07"
			case 1:
				msg = "Registered worker node_07"
			case 2:
				msg = "bufstart=11 bufend=22"
			case 3:
				msg = "Totally novel failure on host8:1234"
			case 4:
				msg = fmt.Sprintf("garbage %d from byte %d", i, b)
			default:
				end := i + 8
				if end > len(data) {
					end = len(data)
				}
				msg = "raw " + string(data[i:end])
			}
			recs = append(recs, logging.Record{
				SessionID: id, Message: msg, Level: logging.Info,
				Framework: logging.Spark, Time: t0.Add(time.Duration(i) * time.Second),
			})
		}

		batch := d.Detect(logging.GroupSessions(recs))
		want := normalizeAnomalies(t, batch.Anomalies)
		for _, shards := range []int{1, 4} {
			s := NewStream(d, StreamConfig{Shards: shards})
			var streamed []Anomaly
			for _, r := range recs {
				streamed = append(streamed, s.Consume(r)...)
			}
			rep := s.Flush()
			streamed = append(streamed, rep.Anomalies...)
			if rep.Sessions != batch.Sessions {
				t.Fatalf("shards=%d: stream saw %d sessions, batch %d", shards, rep.Sessions, batch.Sessions)
			}
			got := normalizeAnomalies(t, streamed)
			if len(got) != len(want) {
				t.Fatalf("shards=%d: stream %d findings, batch %d", shards, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d: finding %d differs:\nstream: %s\nbatch:  %s", shards, i, got[i], want[i])
				}
			}
		}

		// Capped configuration: caps must hold at every step and the run
		// must finish cleanly regardless of the interleaving.
		cfg := StreamConfig{IdleTimeout: 3 * time.Second, MaxSessions: 2, MaxSessionMsgs: 2, Shards: 1}
		s := NewStream(d, cfg)
		for _, r := range recs {
			s.Consume(r)
			if p := s.Pending(); p > cfg.MaxSessions {
				t.Fatalf("Pending = %d exceeds MaxSessions %d", p, cfg.MaxSessions)
			}
		}
		for _, ss := range s.State().Sessions {
			if len(ss.Records) > cfg.MaxSessionMsgs {
				t.Fatalf("session %q buffered %d messages, cap %d", ss.ID, len(ss.Records), cfg.MaxSessionMsgs)
			}
		}
		s.Flush()
	})
}
