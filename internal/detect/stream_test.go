package detect

import (
	"testing"
	"time"

	"intellog/internal/logging"
)

func streamRec(session, msg string, at time.Time) logging.Record {
	return logging.Record{SessionID: session, Message: msg, Time: at, Level: logging.Info}
}

func TestStreamImmediateUnexpected(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	if got := s.Consume(streamRec("c1", "Registering worker node_07", t0)); len(got) != 0 {
		t.Fatalf("normal record flagged: %+v", got)
	}
	got := s.Consume(streamRec("c1", "Totally novel failure on host8:1234", t0.Add(time.Second)))
	if len(got) != 1 || got[0].Kind != UnexpectedMessage {
		t.Fatalf("unexpected message not reported immediately: %+v", got)
	}
}

func TestStreamCloseSessionStructuralChecks(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	s.Consume(streamRec("c1", "Registering worker node_07", t0))
	// Session truncated: Registered never arrives.
	got := s.CloseSession("c1")
	found := false
	for _, a := range got {
		if a.Kind == MissingCriticalKeys {
			found = true
		}
	}
	if !found {
		t.Errorf("missing critical key not found at close: %+v", got)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after close", s.Pending())
	}
}

func TestStreamIdleTimeoutFinalizes(t *testing.T) {
	s := NewStreamDetector(fixture(t), time.Minute)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	s.Consume(streamRec("old", "Registering worker node_07", t0))
	// A much later record on another session idles out "old".
	got := s.Consume(streamRec("new", "Registering worker node_08", t0.Add(5*time.Minute)))
	foundMissing := false
	for _, a := range got {
		if a.Kind == MissingCriticalKeys && a.Session == "old" {
			foundMissing = true
		}
	}
	if !foundMissing {
		t.Errorf("idle session not finalized: %+v", got)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (only 'new')", s.Pending())
	}
}

func TestStreamFlushMatchesBatch(t *testing.T) {
	d := fixture(t)
	lines := []string{"Registering worker node_07", "Registered worker node_07"}
	// Batch detection.
	batch := d.DetectSession(session(lines...))
	// Stream detection of the same session.
	s := NewStreamDetector(d, 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	for i, l := range lines {
		s.Consume(streamRec("test", l, t0.Add(time.Duration(i)*time.Second)))
	}
	stream := s.Flush()
	if len(batch) != len(stream.Anomalies) {
		t.Errorf("batch %d anomalies vs stream %d", len(batch), len(stream.Anomalies))
	}
}

func TestStreamCloseUnknownSession(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	if got := s.CloseSession("nope"); got != nil {
		t.Errorf("closing unknown session returned %+v", got)
	}
}
