package detect

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"intellog/internal/logging"
	"intellog/internal/sim"
)

func streamRec(session, msg string, at time.Time) logging.Record {
	return logging.Record{SessionID: session, Message: msg, Time: at, Level: logging.Info}
}

func TestStreamImmediateUnexpected(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	if got := s.Consume(streamRec("c1", "Registering worker node_07", t0)); len(got) != 0 {
		t.Fatalf("normal record flagged: %+v", got)
	}
	got := s.Consume(streamRec("c1", "Totally novel failure on host8:1234", t0.Add(time.Second)))
	if len(got) != 1 || got[0].Kind != UnexpectedMessage {
		t.Fatalf("unexpected message not reported immediately: %+v", got)
	}
}

func TestStreamCloseSessionStructuralChecks(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	s.Consume(streamRec("c1", "Registering worker node_07", t0))
	// Session truncated: Registered never arrives.
	got := s.CloseSession("c1")
	found := false
	for _, a := range got {
		if a.Kind == MissingCriticalKeys {
			found = true
		}
	}
	if !found {
		t.Errorf("missing critical key not found at close: %+v", got)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after close", s.Pending())
	}
}

func TestStreamIdleTimeoutFinalizes(t *testing.T) {
	s := NewStreamDetector(fixture(t), time.Minute)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	s.Consume(streamRec("old", "Registering worker node_07", t0))
	// A much later record on another session idles out "old".
	got := s.Consume(streamRec("new", "Registering worker node_08", t0.Add(5*time.Minute)))
	foundMissing := false
	for _, a := range got {
		if a.Kind == MissingCriticalKeys && a.Session == "old" {
			foundMissing = true
		}
	}
	if !foundMissing {
		t.Errorf("idle session not finalized: %+v", got)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (only 'new')", s.Pending())
	}
}

func TestStreamFlushMatchesBatch(t *testing.T) {
	d := fixture(t)
	lines := []string{"Registering worker node_07", "Registered worker node_07"}
	// Batch detection.
	batch := d.DetectSession(session(lines...))
	// Stream detection of the same session.
	s := NewStreamDetector(d, 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	for i, l := range lines {
		s.Consume(streamRec("test", l, t0.Add(time.Duration(i)*time.Second)))
	}
	stream := s.Flush()
	if len(batch) != len(stream.Anomalies) {
		t.Errorf("batch %d anomalies vs stream %d", len(batch), len(stream.Anomalies))
	}
}

func TestStreamCloseUnknownSession(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	if got := s.CloseSession("nope"); got != nil {
		t.Errorf("closing unknown session returned %+v", got)
	}
}

// TestStreamNoSelfExpiry is the regression test for the self-expiry bug:
// a gap just over IdleTimeout between two records of the SAME session
// must not finalize the session on its own second record — the arrival
// proves the session alive. The buggy code split the session in two and
// reported spurious missing-critical-keys findings.
func TestStreamNoSelfExpiry(t *testing.T) {
	s := NewStreamDetector(fixture(t), time.Minute)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	if got := s.Consume(streamRec("c1", "Registering worker node_07", t0)); len(got) != 0 {
		t.Fatalf("first record flagged: %+v", got)
	}
	// 61s later: just over the 60s idle timeout.
	if got := s.Consume(streamRec("c1", "Registered worker node_07", t0.Add(61*time.Second))); len(got) != 0 {
		t.Fatalf("second record idled out its own session: %+v", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (session split)", s.Pending())
	}
	if rep := s.Flush(); len(rep.Anomalies) != 0 {
		t.Fatalf("complete session flagged at flush: %+v", rep.Anomalies)
	}
}

// parityCorpus interleaves three sessions out of order: a clean one, a
// truncated one, and one that only ever produces unexpected messages.
func parityCorpus() []logging.Record {
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	return []logging.Record{
		// "b" appears first in the stream but its first record is LATER
		// than a's — the ordering-contract case.
		streamRec("b", "Registering worker node_08", t0.Add(5*time.Second)),
		streamRec("a", "Registering worker node_07", t0),
		streamRec("c", "Totally novel failure on host8:1234", t0.Add(2*time.Second)),
		streamRec("a", "Registered worker node_07", t0.Add(6*time.Second)),
		streamRec("c", "Totally novel failure on host8:1234", t0.Add(7*time.Second)),
		streamRec("b", "bufstart=11 bufend=22", t0.Add(8*time.Second)),
	}
}

// normalizeAnomalies renders anomalies as sorted JSON lines so reports
// can be compared independent of emission order.
func normalizeAnomalies(t *testing.T, anomalies []Anomaly) []string {
	t.Helper()
	out := make([]string, len(anomalies))
	for i, a := range anomalies {
		raw, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal anomaly: %v", err)
		}
		out[i] = string(raw)
	}
	sort.Strings(out)
	return out
}

// TestStreamBatchParity asserts Detector.Detect and StreamDetector+Flush
// yield identical reports on the same corpus: same session count, same
// findings (compared as normalized JSON), including the unmatched-only
// session and the out-of-order interleaving.
func TestStreamBatchParity(t *testing.T) {
	d := fixture(t)
	recs := parityCorpus()

	batch := d.Detect(logging.GroupSessions(recs))

	for _, shards := range []int{1, 4} {
		s := NewStream(d, StreamConfig{Shards: shards})
		var streamed []Anomaly
		for _, r := range recs {
			streamed = append(streamed, s.Consume(r)...)
		}
		rep := s.Flush()
		streamed = append(streamed, rep.Anomalies...)

		if rep.Sessions != batch.Sessions {
			t.Errorf("shards=%d: stream saw %d sessions, batch %d", shards, rep.Sessions, batch.Sessions)
		}
		got := normalizeAnomalies(t, streamed)
		want := normalizeAnomalies(t, batch.Anomalies)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: stream %d findings, batch %d:\nstream: %v\nbatch: %v",
				shards, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("shards=%d: finding %d differs:\nstream: %s\nbatch:  %s", shards, i, got[i], want[i])
			}
		}
	}
}

// TestStreamUnexpectedCarriesFramework covers the bare-session bug: the
// unexpected-message path must build the session from the record, not an
// ID-only stub.
func TestStreamUnexpectedCarriesFramework(t *testing.T) {
	s := NewStreamDetector(fixture(t), 0)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	rec := streamRec("c1", "Totally novel failure on host8:1234", t0)
	rec.Framework = logging.Spark
	got := s.Consume(rec)
	if len(got) != 1 || got[0].Kind != UnexpectedMessage {
		t.Fatalf("got %+v, want one unexpected-message", got)
	}
	if got[0].Record.Framework != logging.Spark {
		t.Errorf("anomaly record lost framework: %+v", got[0].Record)
	}
}

// TestStreamMaxSessionMsgsOverflow proves graceful degradation: past the
// per-session cap, messages are dropped with exactly one Overflow finding
// and the buffered state stays bounded.
func TestStreamMaxSessionMsgsOverflow(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{MaxSessionMsgs: 1})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	if got := s.Consume(streamRec("c1", "Registering worker node_07", t0)); len(got) != 0 {
		t.Fatalf("first buffered record flagged: %+v", got)
	}
	got := s.Consume(streamRec("c1", "Registered worker node_07", t0.Add(time.Second)))
	if len(got) != 1 || got[0].Kind != Overflow {
		t.Fatalf("cap breach not reported as overflow: %+v", got)
	}
	// A third matched record must NOT re-announce the overflow.
	if got := s.Consume(streamRec("c1", "Registered worker node_07", t0.Add(2*time.Second))); len(got) != 0 {
		t.Fatalf("overflow re-announced: %+v", got)
	}
	st := s.State()
	if len(st.Sessions) != 1 || len(st.Sessions[0].Records) != 1 {
		t.Fatalf("buffered state not bounded: %+v", st.Sessions)
	}
	if !st.Sessions[0].Overflowed || st.Sessions[0].Dropped != 2 {
		t.Errorf("overflow state = %+v, want overflowed with 2 dropped", st.Sessions[0])
	}
}

// TestStreamMaxSessionsEviction proves the in-flight cap: a new session
// beyond the cap force-closes the longest-idle one with an Overflow
// finding plus its structural findings. One shard makes the eviction
// order deterministic (the cap is otherwise split across hash shards).
func TestStreamMaxSessionsEviction(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{MaxSessions: 2, Shards: 1})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	s.Consume(streamRec("old", "Registering worker node_07", t0))
	s.Consume(streamRec("mid", "Registering worker node_08", t0.Add(time.Second)))
	got := s.Consume(streamRec("new", "Registering worker node_09", t0.Add(2*time.Second)))
	var overflow, missing bool
	for _, a := range got {
		if a.Kind == Overflow && a.Session == "old" {
			overflow = true
		}
		if a.Kind == MissingCriticalKeys && a.Session == "old" {
			missing = true
		}
	}
	if !overflow || !missing {
		t.Fatalf("eviction findings missing (overflow=%v structural=%v): %+v", overflow, missing, got)
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2 (cap)", s.Pending())
	}
}

// TestStreamIdleExpiryAcrossManySessions exercises the heap: dozens of
// sessions with staggered last-record times, expired in waves as the
// stream clock advances.
func TestStreamIdleExpiryAcrossManySessions(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{IdleTimeout: time.Minute, Shards: 4})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		s.Consume(streamRec(fmt.Sprintf("s%02d", i), "Registering worker node_07", t0.Add(time.Duration(i)*time.Second)))
	}
	if s.Pending() != 30 {
		t.Fatalf("Pending = %d, want 30", s.Pending())
	}
	// A record 10 minutes later idles out all 30 earlier sessions.
	got := s.Consume(streamRec("late", "Registering worker node_08", t0.Add(10*time.Minute)))
	expired := map[string]bool{}
	for _, a := range got {
		if a.Kind == MissingCriticalKeys {
			expired[a.Session] = true
		}
	}
	if len(expired) != 30 {
		t.Errorf("expired %d sessions, want 30", len(expired))
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

// TestStreamCheckpointRestoreParity kills the detector mid-corpus and
// restores it from its State snapshot; the combined findings must be
// byte-identical to an uninterrupted run.
func TestStreamCheckpointRestoreParity(t *testing.T) {
	d := fixture(t)
	cfg := StreamConfig{IdleTimeout: time.Minute, MaxSessionMsgs: 8}
	recs := parityCorpus()

	full := NewStream(d, cfg)
	var uninterrupted []Anomaly
	for _, r := range recs {
		uninterrupted = append(uninterrupted, full.Consume(r)...)
	}
	fullRep := full.Flush()
	uninterrupted = append(uninterrupted, fullRep.Anomalies...)

	cut := len(recs) / 2
	first := NewStream(d, cfg)
	var combined []Anomaly
	for _, r := range recs[:cut] {
		combined = append(combined, first.Consume(r)...)
	}
	st := first.State()
	// Round-trip the state through JSON like a real checkpoint file.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var restored StreamState
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	second, err := RestoreStreamDetector(d, cfg, &restored)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if second.Pending() != first.Pending() {
		t.Fatalf("restored Pending = %d, want %d", second.Pending(), first.Pending())
	}
	for _, r := range recs[cut:] {
		combined = append(combined, second.Consume(r)...)
	}
	rep := second.Flush()
	combined = append(combined, rep.Anomalies...)

	if rep.Sessions != fullRep.Sessions {
		t.Errorf("restored run saw %d sessions, uninterrupted %d", rep.Sessions, fullRep.Sessions)
	}
	got, err := json.Marshal(combined)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("restored report differs from uninterrupted run:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestStreamRestoreRejectsModelMismatch: a checkpoint whose buffered
// records no longer bind under the model must fail loudly, not resume
// with silently different state.
func TestStreamRestoreRejectsModelMismatch(t *testing.T) {
	d := fixture(t)
	st := &StreamState{
		Seen: 1, NextSeq: 1,
		Sessions: []SessionState{{
			ID: "c1", StartSeq: 1,
			Records: []StampedMessage{{Message: "Never trained rendering zzz"}},
		}},
	}
	if _, err := RestoreStreamDetector(d, StreamConfig{}, st); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

// TestStreamConcurrentConsume drives many sessions from parallel
// producers (records of one session stay on one goroutine, preserving
// per-session order) with idle expiry and caps active; under -race this
// proves the sharded locking discipline.
func TestStreamConcurrentConsume(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{IdleTimeout: time.Minute, MaxSessions: 64, MaxSessionMsgs: 16})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("w%d-s%d", w, i)
				at := t0.Add(time.Duration(i) * time.Second)
				s.Consume(streamRec(id, "Registering worker node_07", at))
				s.Consume(streamRec(id, "Totally novel failure on host8:1234", at.Add(time.Millisecond)))
				s.Consume(streamRec(id, "Registered worker node_07", at.Add(2*time.Millisecond)))
				if i%7 == 0 {
					s.CloseSession(id)
				}
				_ = s.Pending()
			}
		}(w)
	}
	wg.Wait()
	rep := s.Flush()
	if rep.Sessions != 8*40 {
		t.Errorf("Sessions = %d, want %d", rep.Sessions, 8*40)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after flush", s.Pending())
	}
}

// TestStreamFaultInjectedCorpus runs a heavily perturbed corpus
// (truncation, corruption, duplication, reordering, mid-session cuts)
// through a capped detector: it must complete without panicking, keep
// memory bounded by the caps, and surface overflow explicitly.
func TestStreamFaultInjectedCorpus(t *testing.T) {
	d := fixture(t)
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
	var recs []logging.Record
	for sess := 0; sess < 12; sess++ {
		id := fmt.Sprintf("f%02d", sess)
		base := t0.Add(time.Duration(sess) * 10 * time.Second)
		for rep := 0; rep < 6; rep++ {
			at := base.Add(time.Duration(rep) * time.Second)
			recs = append(recs,
				streamRec(id, "Registering worker node_07", at),
				streamRec(id, "Registered worker node_07", at.Add(500*time.Millisecond)))
		}
	}
	inj := sim.NewFaultInjector(7)
	inj.TruncateProb = 0.2
	inj.CorruptProb = 0.2
	inj.DuplicateProb = 0.2
	inj.ReorderWindow = 5
	inj.CutProb = 0.5
	perturbed := inj.Perturb(recs)

	cfg := StreamConfig{IdleTimeout: 30 * time.Second, MaxSessions: 4, MaxSessionMsgs: 3}
	s := NewStream(d, cfg)
	var all []Anomaly
	for _, r := range perturbed {
		all = append(all, s.Consume(r)...)
		if p := s.Pending(); p > cfg.MaxSessions {
			t.Fatalf("Pending = %d exceeds MaxSessions %d", p, cfg.MaxSessions)
		}
	}
	st := s.State()
	for _, ss := range st.Sessions {
		if len(ss.Records) > cfg.MaxSessionMsgs {
			t.Errorf("session %q buffered %d messages, cap %d", ss.ID, len(ss.Records), cfg.MaxSessionMsgs)
		}
	}
	rep := s.Flush()
	all = append(all, rep.Anomalies...)
	overflow := 0
	for _, a := range all {
		if a.Kind == Overflow {
			overflow++
		}
	}
	if overflow == 0 {
		t.Error("capped run over a fault-injected corpus surfaced no overflow findings")
	}
}
