package detect

import (
	"fmt"
	"math"
	"sort"
	"time"

	"intellog/internal/logging"
)

// StreamState is a serializable snapshot of a StreamDetector's in-flight
// state. Together with the trained model (see core.SaveCheckpoint) it is
// everything a restarted process needs to resume mid-stream and produce
// the same final report as an uninterrupted run.
//
// Buffered Intel Messages are not serialized directly: they are a pure
// function of (raw text, time, session) under a fixed model, so the
// snapshot stores the raw text and timestamp of each buffered record and
// RestoreStreamDetector re-binds them through the model. That keeps the
// checkpoint format independent of the extraction internals.
type StreamState struct {
	// Latest is the newest record time the stream had seen.
	Latest time.Time `json:"latest"`
	// Seen is the number of sessions opened so far (Report.Sessions).
	Seen uint64 `json:"sessionsSeen"`
	// NextSeq continues the session arrival order across restarts.
	NextSeq uint64 `json:"nextSeq"`
	// AnomalySeq continues the anomaly emission order (Anomaly.Seq)
	// across restarts, so /v1/anomalies cursors held by clients stay
	// valid over a checkpoint/restore cycle. Absent in pre-existing
	// checkpoints, which restore with the sequence reset to zero.
	AnomalySeq uint64 `json:"anomalySeq,omitempty"`
	// Sessions are the in-flight sessions, in arrival order.
	Sessions []SessionState `json:"sessions,omitempty"`
	// Sticky is the raw-line sessionizer's stickiness state at the cut:
	// the session ID that lines without an extractable ID were being
	// attributed to (logging.SessionAssigner.Current). The detector
	// itself neither produces nor consumes it — callers that sessionize
	// raw lines stash it here before saving and SessionAssigner.Resume
	// it after restoring, so ID-less lines keep their attribution across
	// a restart. Empty in older checkpoints and for streams whose
	// records arrive already carrying session IDs.
	Sticky string `json:"sticky,omitempty"`
	// WALSeq is the write-ahead-log cursor this snapshot covers: every
	// logged record with seq ≤ WALSeq is reflected in the state, so a
	// boot-time replay feeds only the suffix past it. Like Sticky, the
	// detector itself neither produces nor consumes it — intellogd's
	// tenant layer stamps it at the checkpoint barrier and reconciles
	// against it on restore. Zero in older checkpoints and for servers
	// running without a WAL.
	WALSeq uint64 `json:"walSeq,omitempty"`
}

// SessionState is one in-flight session inside a StreamState.
type SessionState struct {
	ID        string            `json:"id"`
	Framework logging.Framework `json:"framework,omitempty"`
	First     time.Time         `json:"first"`
	Last      time.Time         `json:"last"`
	StartSeq  uint64            `json:"startSeq"`
	// Overflowed and Dropped carry the MaxSessionMsgs degradation state so
	// a restored session keeps dropping instead of re-announcing overflow.
	Overflowed bool `json:"overflowed,omitempty"`
	Dropped    int  `json:"dropped,omitempty"`
	// Records are the session's buffered (matched, natural-language)
	// records: exactly what re-binding needs, nothing more.
	Records []StampedMessage `json:"records,omitempty"`
}

// StampedMessage is one buffered record in a checkpoint.
type StampedMessage struct {
	Time    time.Time `json:"t"`
	Message string    `json:"m"`
}

// State snapshots the in-flight sessions. Producers should be quiesced
// first (no concurrent Consume) if the snapshot must pair exactly with a
// position in the input stream — shards are locked one at a time, so a
// record consumed mid-snapshot lands on one side or the other per shard.
func (s *StreamDetector) State() *StreamState {
	st := &StreamState{
		Seen:       s.seen.Load(),
		NextSeq:    s.startSeq.Load(),
		AnomalySeq: s.anomSeq.Load(),
	}
	if at := s.latest.Load(); at != math.MinInt64 {
		st.Latest = time.Unix(0, at).UTC()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, b := range sh.sessions {
			ss := SessionState{
				ID: b.id, Framework: b.fw,
				First: b.first, Last: b.last, StartSeq: b.startSeq,
				Overflowed: b.overflowed, Dropped: b.dropped,
			}
			for i, m := range b.msgs {
				ss.Records = append(ss.Records, StampedMessage{Time: b.times[i], Message: m.Raw})
			}
			st.Sessions = append(st.Sessions, ss)
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Sessions, func(i, j int) bool {
		return st.Sessions[i].StartSeq < st.Sessions[j].StartSeq
	})
	return st
}

// RestoreStreamDetector rebuilds a streaming detector from a snapshot
// taken by State, replaying each buffered record through the (identically
// trained) model. It fails if a buffered record no longer binds to an
// Intel Key — the sign of a model/checkpoint mismatch.
func RestoreStreamDetector(d *Detector, cfg StreamConfig, st *StreamState) (*StreamDetector, error) {
	s := NewStream(d, cfg)
	if !st.Latest.IsZero() {
		s.latest.Store(st.Latest.UnixNano())
	}
	s.seen.Store(st.Seen)
	s.startSeq.Store(st.NextSeq)
	s.anomSeq.Store(st.AnomalySeq)
	for i := range st.Sessions {
		ss := &st.Sessions[i]
		sh := s.shard(ss.ID)
		if _, dup := sh.sessions[ss.ID]; dup {
			return nil, fmt.Errorf("checkpoint lists session %q twice", ss.ID)
		}
		buf := &sessionBuf{
			id: ss.ID, fw: ss.Framework,
			first: ss.First, last: ss.Last, startSeq: ss.StartSeq,
			overflowed: ss.Overflowed, dropped: ss.Dropped,
		}
		for _, rm := range ss.Records {
			rec := logging.Record{
				Time: rm.Time, Message: rm.Message,
				SessionID: ss.ID, Framework: ss.Framework,
			}
			key, cl := d.lookupRecord(&rec)
			if key == nil || cl.Proto == nil {
				return nil, fmt.Errorf("checkpoint session %q: record %q does not bind under this model (checkpoint/model mismatch)", ss.ID, rm.Message)
			}
			buf.msgs = append(buf.msgs, cl.Proto)
			buf.times = append(buf.times, rm.Time)
		}
		sh.sessions[ss.ID] = buf
		s.inFlight.Add(1)
		if s.trackExpiry() {
			sh.heap.push(expiryEntry{at: buf.last.UnixNano(), id: buf.id})
			sh.syncEarliestLocked()
		}
	}
	return s, nil
}
