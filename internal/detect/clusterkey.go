package detect

import (
	"sort"
	"strconv"
)

// ClusterTerms returns the anomaly's template terms: the stable,
// parameter-free features the analytics layer clusters on. Two anomalies
// with the same term multiset are near-duplicates by construction —
// concrete identifier values, addresses, and timestamps are excluded, so
// ten thousand repeats of one fault collapse onto one term set.
//
// The result is sorted, and every term is a pure function of the
// anomaly's content (never of arrival order or clock), so batch,
// streaming, and resumed runs produce identical terms for the same
// finding. Namespaced prefixes keep feature spaces from colliding
// (a group named "sig" must not alias a signature "sig").
func (a *Anomaly) ClusterTerms() []string {
	out := make([]string, 0, 8)
	out = append(out, "kind:"+a.Kind.String())
	if a.Group != "" {
		out = append(out, "group:"+a.Group)
	}
	if a.Signature != "" {
		out = append(out, "sig:"+a.Signature)
	}
	for _, k := range a.MissingKeys {
		out = append(out, "miss:"+strconv.Itoa(k))
	}
	for _, p := range a.Pairs {
		out = append(out, "order:"+strconv.Itoa(p[0])+">"+strconv.Itoa(p[1]))
	}
	switch a.Kind {
	case UnexpectedMessage:
		// The ad-hoc extraction is the template: entities, operations,
		// identifier *types*, value units, and locality classes all come
		// from the key, not from the concrete message parameters. The
		// Message's cached accessors are deliberately avoided — they
		// memoize lazily, and ClusterTerms may run concurrently with a
		// query-API read of the same anomaly.
		if m := a.Extracted; m != nil {
			for _, e := range m.Entities {
				out = append(out, "ent:"+e)
			}
			for _, op := range m.Operations {
				out = append(out, "op:"+op.String())
			}
			for t := range m.Identifiers {
				out = append(out, "idt:"+t)
			}
			for u := range m.Values {
				out = append(out, "unit:"+u)
			}
			for c := range m.Localities {
				out = append(out, "loc:"+c)
			}
		}
	case MissingGroup, HierarchyViolation:
		// Detail is stable for these kinds (built from group names and
		// trained relations, not per-record values). Overflow details name
		// the session — a parameter — so overflows cluster on kind alone.
		if a.Detail != "" {
			out = append(out, "detail:"+a.Detail)
		}
	}
	sort.Strings(out)
	return out
}
