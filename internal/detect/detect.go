// Package detect implements IntelLog's anomaly-detection phase (§4.2).
// For each incoming session it instantiates the trained HW-graph and
// reports two kinds of anomalies: unexpected log messages (no Intel Key
// matches) and erroneous HW-graph instances (missed critical Intel Keys,
// order violations, abnormal signatures, missing expected groups, or
// hierarchy violations). Unexpected messages additionally go through the
// §3 extraction pipeline so users can query their fields.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/par"
	"intellog/internal/spell"
)

// Kind classifies an anomaly finding.
type Kind int

// Anomaly kinds. UnexpectedMessage corresponds to the paper's first
// category; the others are facets of "erroneous HW-graph instance".
const (
	UnexpectedMessage Kind = iota
	MissingCriticalKeys
	OrderViolation
	UnknownSignature
	MissingGroup
	HierarchyViolation
	// Overflow is a streaming-only finding: a session hit a configured
	// resource cap (max buffered messages, or max in-flight sessions) and
	// was degraded — further messages dropped, or the session force-closed
	// early. It marks results that may be partial rather than a fault in
	// the monitored system itself.
	Overflow
)

var kindNames = [...]string{
	"unexpected-message", "missing-critical-keys", "order-violation",
	"unknown-signature", "missing-group", "hierarchy-violation",
	"overflow",
}

// String returns the kebab-case kind name.
func (k Kind) String() string {
	if k < UnexpectedMessage || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Anomaly is one finding in one session.
type Anomaly struct {
	// Seq is a monotonically increasing sequence number stamped by the
	// streaming detector on every anomaly it emits (Consume, CloseSession
	// and Flush alike); batch detection leaves it zero. It gives callers a
	// stable ordering handle across calls — the cursor of the serving
	// layer's /v1/anomalies endpoint — and survives checkpoint/restore
	// (see StreamState.NextAnomalySeq). Excluded from JSON so the
	// conformance oracle's canonical report form stays byte-identical
	// across execution paths.
	Seq       uint64 `json:"-"`
	Session   string
	Kind      Kind
	Group     string
	Signature string
	// Record is the offending log record (unexpected messages only).
	Record *logging.Record
	// Extracted is the §3 extraction applied to the unexpected message; it
	// carries the entities/identifiers/localities users query during
	// diagnosis (the paper's case study 1).
	Extracted *extract.Message
	// MissingKeys lists absent critical Intel Key IDs.
	MissingKeys []int
	// Pairs lists violated BEFORE relations (a should precede b).
	Pairs [][2]int
	// Detail is a human-readable summary.
	Detail string
}

// Report aggregates detection over a batch of sessions.
type Report struct {
	Sessions  int
	Anomalies []Anomaly
}

// ProblematicSessions returns the distinct session IDs with at least one
// anomaly, in first-appearance order.
func (r *Report) ProblematicSessions() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range r.Anomalies {
		if !seen[a.Session] {
			seen[a.Session] = true
			out = append(out, a.Session)
		}
	}
	return out
}

// ByKind returns the anomalies of one kind.
func (r *Report) ByKind(k Kind) []Anomaly {
	var out []Anomaly
	for _, a := range r.Anomalies {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// Summary renders an aggregate view: anomaly counts by kind and the
// affected entity groups, ordered by count.
func (r *Report) Summary() string {
	if len(r.Anomalies) == 0 {
		return fmt.Sprintf("%d sessions checked, no anomalies\n", r.Sessions)
	}
	kinds := map[Kind]int{}
	groups := map[string]int{}
	for _, a := range r.Anomalies {
		kinds[a.Kind]++
		if a.Group != "" {
			groups[a.Group]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sessions checked, %d problematic, %d findings\n",
		r.Sessions, len(r.ProblematicSessions()), len(r.Anomalies))
	for k := UnexpectedMessage; int(k) < len(kindNames); k++ {
		if n := kinds[k]; n > 0 {
			fmt.Fprintf(&b, "  %-22s %d\n", k.String()+":", n)
		}
	}
	if len(groups) > 0 {
		names := make([]string, 0, len(groups))
		for g := range groups {
			names = append(names, g)
		}
		sort.Slice(names, func(i, j int) bool {
			if groups[names[i]] != groups[names[j]] {
				return groups[names[i]] > groups[names[j]]
			}
			return names[i] < names[j]
		})
		b.WriteString("  entity groups involved: ")
		for i, g := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s (%d)", g, groups[g])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detector checks sessions against a trained model.
type Detector struct {
	// Parser is the trained Spell instance (used via Lookup only).
	Parser *spell.Parser
	// Keys maps Intel Key ID → Intel Key.
	Keys map[int]*extract.IntelKey
	// KeyGroups maps Intel Key ID → entity groups.
	KeyGroups map[int][]string
	// Graph is the trained HW-graph.
	Graph *hwgraph.Graph

	// CheckHierarchy enables lifespan-relation checking (on by default via
	// NewDetector).
	CheckHierarchy bool
	// CheckMissingGroups enables expected-group presence checking.
	CheckMissingGroups bool

	// Cache memoizes raw message → Spell key. Detection streams repeat
	// the same renderings (heartbeats, retries), so most records skip the
	// Tokenize+Lookup work entirely. May be nil; NewDetector installs one.
	Cache *spell.LookupCache

	// Values is the model's identifier-value interner; prototypes carry
	// interned identifier sets from it so Algorithm 2 never hashes value
	// strings. May be nil (the assigners then intern per run).
	Values *hwgraph.ValueInterner
}

// NewDetector assembles a Detector with all checks enabled.
func NewDetector(p *spell.Parser, keys map[int]*extract.IntelKey, keyGroups map[int][]string, g *hwgraph.Graph) *Detector {
	return &Detector{
		Parser: p, Keys: keys, KeyGroups: keyGroups, Graph: g,
		CheckHierarchy: true, CheckMissingGroups: true,
		Cache: spell.NewLookupCache(0),
	}
}

// lookupRecord resolves a record's Spell key through the cache, memoizing
// the token split and bound prototype per raw message: a repeat rendering
// costs a cache probe, and binding it one shallow copy. The returned memo
// is shared and read-only.
func (d *Detector) lookupRecord(rec *logging.Record) (key *spell.Key, cl *extract.CachedLookup) {
	if d.Cache != nil {
		if k, aux, hit := d.Cache.GetAux(rec.Message); hit {
			if cl, ok := aux.(*extract.CachedLookup); ok && cl != nil {
				return k, cl
			}
			// Entry without a memo (added via plain Add): rebuild it.
		}
	}
	tokens := nlp.Tokenize(rec.Message)
	key = d.Parser.Lookup(nlp.Texts(tokens))
	cl = &extract.CachedLookup{Tokens: tokens}
	if key != nil {
		if ik := d.Keys[key.ID]; ik != nil && ik.NaturalLanguage {
			cl.Proto = extract.Bind(ik, tokens, time.Time{}, "", rec.Message)
			cl.Proto.IdentifierSet()
			cl.Proto.IdentifierTypes() // precompute; shared by every copy
			if d.Values != nil {
				d.Values.InternMessage(cl.Proto)
			}
		}
	}
	if d.Cache != nil {
		d.Cache.AddAux(rec.Message, key, cl)
	}
	return key, cl
}

// DetectSession checks one session and returns its anomalies.
func (d *Detector) DetectSession(s *logging.Session) []Anomaly {
	var anomalies []Anomaly
	var msgs []*extract.Message
	var rb extract.Rebinder

	for i := range s.Records {
		rec := &s.Records[i]
		key, cl := d.lookupRecord(rec)
		if key == nil {
			anomalies = append(anomalies, d.unexpected(s, rec, cl.Tokens))
			continue
		}
		if cl.Proto == nil {
			// §5: matched non-NL keys are on the ignore list — matching one
			// never triggers an unexpected-message error.
			continue
		}
		msgs = append(msgs, rb.Rebind(cl.Proto, rec.Time, s.ID))
	}

	anomalies = append(anomalies, d.checkInstances(s.ID, msgs)...)
	return anomalies
}

// Detect runs DetectSession over a batch. Sessions are independent, so
// they are checked by a worker pool; the report lists anomalies in
// session input order regardless of scheduling.
func (d *Detector) Detect(sessions []*logging.Session) *Report {
	r := &Report{Sessions: len(sessions)}
	perSession := make([][]Anomaly, len(sessions))
	par.ForEachIndex(len(sessions), func(i int) {
		perSession[i] = d.DetectSession(sessions[i])
	})
	for _, anomalies := range perSession {
		r.Anomalies = append(r.Anomalies, anomalies...)
	}
	return r
}

// unexpected builds the UnexpectedMessage anomaly, running ad-hoc
// extraction on the message so its fields are queryable.
func (d *Detector) unexpected(s *logging.Session, rec *logging.Record, tokens []nlp.Token) Anomaly {
	adhoc := &spell.Key{ID: -1, Tokens: nlp.Texts(tokens), Sample: nlp.Texts(tokens)}
	ik := extract.BuildIntelKey(adhoc)
	m := extract.Bind(ik, tokens, rec.Time, s.ID, rec.Message)
	grp := ""
	// Attribute the message to a trained entity group — the paper's
	// diagnosis flow groups unexpected messages by entity ("all of the
	// unexpected messages belong to the 'fetcher' entity group"). The
	// operation's subject is the acting component, so it wins over other
	// extracted entities.
	var candidates []string
	for _, op := range ik.Operations {
		if op.Subject != "" {
			candidates = append(candidates, op.Subject)
		}
	}
	candidates = append(candidates, ik.Entities...)
	for _, e := range candidates {
		if n := d.findGroupOf(e); n != "" {
			grp = n
			break
		}
	}
	if grp == "" && len(ik.Entities) > 0 {
		grp = ik.Entities[0]
	}
	return Anomaly{
		Session: s.ID, Kind: UnexpectedMessage, Group: grp,
		Record: rec, Extracted: m,
		Detail: fmt.Sprintf("no Intel Key matches %q", rec.Message),
	}
}

// findGroupOf returns the trained group containing an entity phrase.
// Groups are probed in sorted name order: an entity listed under several
// groups must resolve to the same one on every run — iterating the node
// map directly made the attribution (and therefore the detection report)
// nondeterministic, which the conformance oracle flags.
func (d *Detector) findGroupOf(entity string) string {
	names := make([]string, 0, len(d.Graph.Nodes))
	for name := range d.Graph.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, e := range d.Graph.Nodes[name].Entities {
			if e == entity {
				return name
			}
		}
	}
	return ""
}

// checkInstances verifies the session's HW-graph instance: per-group
// subroutine instances against trained subroutines, expected-group
// presence, and lifespan-relation consistency.
// assigners pools Algorithm 2 scratch state across the parallel
// per-session detection workers; checkInstances consumes each group's
// instances before assigning the next group, so reuse is safe.
var assigners = sync.Pool{New: func() any { return new(hwgraph.Assigner) }}

func (d *Detector) checkInstances(session string, msgs []*extract.Message) []Anomaly {
	var anomalies []Anomaly

	byGroup := map[string][]*extract.Message{}
	spans := map[string]hwgraph.Span{}
	for idx, m := range msgs {
		for _, g := range d.KeyGroups[m.KeyID] {
			byGroup[g] = append(byGroup[g], m)
			sp, ok := spans[g]
			if !ok {
				spans[g] = hwgraph.Span{First: idx, Last: idx}
			} else {
				sp.Last = idx
				spans[g] = sp
			}
		}
	}

	groupNames := make([]string, 0, len(byGroup))
	for g := range byGroup {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)

	asn := assigners.Get().(*hwgraph.Assigner)
	defer assigners.Put(asn)
	asn.SetValues(d.Values)
	for _, g := range groupNames {
		node := d.Graph.Nodes[g]
		if node == nil {
			continue
		}
		for _, inst := range asn.Assign(byGroup[g]) {
			sig := inst.Signature()
			sub := node.Subroutines[sig]
			if sub == nil {
				if len(node.Subroutines) > 0 {
					anomalies = append(anomalies, Anomaly{
						Session: session, Kind: UnknownSignature, Group: g, Signature: sig,
						Detail: fmt.Sprintf("group %q has no trained subroutine with signature %q", g, sig),
					})
				}
				continue
			}
			seq := make([]int, len(inst.Msgs))
			for i, m := range inst.Msgs {
				seq[i] = m.KeyID
			}
			if missing := sub.MissingCritical(seq); len(missing) > 0 {
				anomalies = append(anomalies, Anomaly{
					Session: session, Kind: MissingCriticalKeys, Group: g, Signature: sig,
					MissingKeys: missing,
					Detail:      fmt.Sprintf("subroutine %q in group %q missed %d critical Intel Keys", sig, g, len(missing)),
				})
			}
			if pairs := sub.Violations(seq); len(pairs) > 0 {
				anomalies = append(anomalies, Anomaly{
					Session: session, Kind: OrderViolation, Group: g, Signature: sig,
					Pairs:  pairs,
					Detail: fmt.Sprintf("subroutine %q in group %q broke %d BEFORE relations", sig, g, len(pairs)),
				})
			}
		}
	}

	if d.CheckMissingGroups {
		for _, g := range d.Graph.ExpectedGroups() {
			if g == hwgraph.MiscGroup {
				continue
			}
			if _, ok := byGroup[g]; !ok {
				anomalies = append(anomalies, Anomaly{
					Session: session, Kind: MissingGroup, Group: g,
					Detail: fmt.Sprintf("group %q appeared in every training session but is absent", g),
				})
			}
		}
	}

	if d.CheckHierarchy {
		for i := 0; i < len(groupNames); i++ {
			for j := i + 1; j < len(groupNames); j++ {
				a, b := groupNames[i], groupNames[j]
				// Single-message groups have point lifespans whose position
				// jitters with scheduling; only wide spans carry structure.
				if len(byGroup[a]) < 2 || len(byGroup[b]) < 2 ||
					spans[a].First == spans[a].Last || spans[b].First == spans[b].Last {
					continue
				}
				trained := d.Graph.Relation(a, b)
				if trained != hwgraph.Parent && trained != hwgraph.Before {
					continue
				}
				observed := hwgraph.SessionRelation(spans[a], spans[b])
				if observed != trained {
					anomalies = append(anomalies, Anomaly{
						Session: session, Kind: HierarchyViolation, Group: a,
						Detail: fmt.Sprintf("groups %q and %q trained %v but observed %v", a, b, trained, observed),
					})
				}
			}
		}
	}

	return anomalies
}
