// Package detect implements IntelLog's anomaly-detection phase (§4.2).
// For each incoming session it instantiates the trained HW-graph and
// reports two kinds of anomalies: unexpected log messages (no Intel Key
// matches) and erroneous HW-graph instances (missed critical Intel Keys,
// order violations, abnormal signatures, missing expected groups, or
// hierarchy violations). Unexpected messages additionally go through the
// §3 extraction pipeline so users can query their fields.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"intellog/internal/extract"
	"intellog/internal/hwgraph"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/par"
	"intellog/internal/spell"
)

// Kind classifies an anomaly finding.
type Kind int

// Anomaly kinds. UnexpectedMessage corresponds to the paper's first
// category; the others are facets of "erroneous HW-graph instance".
const (
	UnexpectedMessage Kind = iota
	MissingCriticalKeys
	OrderViolation
	UnknownSignature
	MissingGroup
	HierarchyViolation
	// Overflow is a streaming-only finding: a session hit a configured
	// resource cap (max buffered messages, or max in-flight sessions) and
	// was degraded — further messages dropped, or the session force-closed
	// early. It marks results that may be partial rather than a fault in
	// the monitored system itself.
	Overflow
)

var kindNames = [...]string{
	"unexpected-message", "missing-critical-keys", "order-violation",
	"unknown-signature", "missing-group", "hierarchy-violation",
	"overflow",
}

// String returns the kebab-case kind name.
func (k Kind) String() string {
	if k < UnexpectedMessage || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Anomaly is one finding in one session.
type Anomaly struct {
	// Seq is a monotonically increasing sequence number stamped by the
	// streaming detector on every anomaly it emits (Consume, CloseSession
	// and Flush alike); batch detection leaves it zero. It gives callers a
	// stable ordering handle across calls — the cursor of the serving
	// layer's /v1/anomalies endpoint — and survives checkpoint/restore
	// (see StreamState.NextAnomalySeq). Excluded from JSON so the
	// conformance oracle's canonical report form stays byte-identical
	// across execution paths.
	Seq uint64 `json:"-"`
	// At is the anomaly's event time: the offending record's timestamp
	// for unexpected messages, the session's newest record time for the
	// end-of-session structural findings. It is derived purely from the
	// records (never from the wall clock), so batch and streaming runs
	// stamp identical times — the analytics layer's time-bucketed rollups
	// rely on that. Excluded from JSON for the same reason Seq is: the
	// canonical report form predates it.
	At        time.Time `json:"-"`
	Session   string
	Kind      Kind
	Group     string
	Signature string
	// Record is the offending log record (unexpected messages only).
	Record *logging.Record
	// Extracted is the §3 extraction applied to the unexpected message; it
	// carries the entities/identifiers/localities users query during
	// diagnosis (the paper's case study 1).
	Extracted *extract.Message
	// MissingKeys lists absent critical Intel Key IDs.
	MissingKeys []int
	// Pairs lists violated BEFORE relations (a should precede b).
	Pairs [][2]int
	// Detail is a human-readable summary.
	Detail string
}

// Report aggregates detection over a batch of sessions.
type Report struct {
	Sessions  int
	Anomalies []Anomaly
}

// ProblematicSessions returns the distinct session IDs with at least one
// anomaly, in first-appearance order.
func (r *Report) ProblematicSessions() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range r.Anomalies {
		if !seen[a.Session] {
			seen[a.Session] = true
			out = append(out, a.Session)
		}
	}
	return out
}

// ByKind returns the anomalies of one kind.
func (r *Report) ByKind(k Kind) []Anomaly {
	var out []Anomaly
	for _, a := range r.Anomalies {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// Summary renders an aggregate view: anomaly counts by kind and the
// affected entity groups, ordered by count.
func (r *Report) Summary() string {
	if len(r.Anomalies) == 0 {
		return fmt.Sprintf("%d sessions checked, no anomalies\n", r.Sessions)
	}
	kinds := map[Kind]int{}
	groups := map[string]int{}
	for _, a := range r.Anomalies {
		kinds[a.Kind]++
		if a.Group != "" {
			groups[a.Group]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sessions checked, %d problematic, %d findings\n",
		r.Sessions, len(r.ProblematicSessions()), len(r.Anomalies))
	for k := UnexpectedMessage; int(k) < len(kindNames); k++ {
		if n := kinds[k]; n > 0 {
			fmt.Fprintf(&b, "  %-22s %d\n", k.String()+":", n)
		}
	}
	if len(groups) > 0 {
		names := make([]string, 0, len(groups))
		for g := range groups {
			names = append(names, g)
		}
		sort.Slice(names, func(i, j int) bool {
			if groups[names[i]] != groups[names[j]] {
				return groups[names[i]] > groups[names[j]]
			}
			return names[i] < names[j]
		})
		b.WriteString("  entity groups involved: ")
		for i, g := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s (%d)", g, groups[g])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detector checks sessions against a trained model.
type Detector struct {
	// Parser is the trained Spell instance (used via Lookup only).
	Parser *spell.Parser
	// Keys maps Intel Key ID → Intel Key.
	Keys map[int]*extract.IntelKey
	// KeyGroups maps Intel Key ID → entity groups.
	KeyGroups map[int][]string
	// Graph is the trained HW-graph.
	Graph *hwgraph.Graph

	// CheckHierarchy enables lifespan-relation checking (on by default via
	// NewDetector).
	CheckHierarchy bool
	// CheckMissingGroups enables expected-group presence checking.
	CheckMissingGroups bool

	// Cache memoizes raw message → Spell key. Detection streams repeat
	// the same renderings (heartbeats, retries), so most records skip the
	// Tokenize+Lookup work entirely. May be nil; NewDetector installs one.
	Cache *spell.LookupCache

	// Values is the model's identifier-value interner; prototypes carry
	// interned identifier sets from it so Algorithm 2 never hashes value
	// strings. May be nil (the assigners then intern per run).
	Values *hwgraph.ValueInterner

	// scratch pools per-worker detection state (Algorithm 2 assigner,
	// group buckets, key-sequence buffers) across sessions; see
	// sessionScratch. Detectors must not be copied once detection starts.
	scratch sync.Pool

	// groupOnce lazily builds the entity→group attribution table and the
	// expected-group list from the (frozen) trained graph, replacing the
	// per-call sorted scans that dominated unexpected-message handling.
	groupOnce   sync.Once
	entityGroup map[string]string
	expected    []string
}

// sessionScratch is one detection worker's reusable state. Batch shards
// and stream finalizers check one session at a time, so everything here
// is sized by the widest session seen and reused for the rest of the
// worker's lifetime — the per-session map/slice churn that used to
// dominate the allocation profile is gone.
type sessionScratch struct {
	asn  hwgraph.Assigner
	msgs []*extract.Message

	// Group buckets replace the per-session byGroup/spans maps. Buckets
	// are created once per distinct group name and invalidated by epoch
	// stamping, so a new session touches no map at all on the hot path:
	// keyBuckets resolves an Intel Key ID straight to its buckets.
	epoch      uint64
	buckets    map[string]*groupBucket
	keyBuckets [][]*groupBucket
	keyBuilt   []bool
	touched    []*groupBucket

	// seq and order back the per-instance key sequence and its
	// first-occurrence reduction.
	seq   []int
	order []int

	// l1 is the worker's private resolve memo over the shared lookup
	// cache: message → (key, memo) with no lock, no atomics and no LRU
	// bookkeeping on a hit. Detection streams repeat a few thousand
	// distinct renderings, so nearly every record resolves here; the
	// shared cache only sees each rendering once per scratch epoch.
	// Bounded by l1ResolveCap with wholesale reset (the map is cheap to
	// refill from the shared cache). l1Hits accumulates the hits counted
	// locally; putScratch flushes them to the shared cache's counter.
	l1     map[string]resolveMemo
	l1Hits uint64
}

// resolveMemo is one L1 entry: the resolution lookupRecord produced for a
// raw message under the frozen model (a pure function of the text, so a
// worker-local copy can never go stale during detection).
type resolveMemo struct {
	key *spell.Key
	cl  *extract.CachedLookup
}

// l1ResolveCap bounds a worker's private resolve memo; at a few hundred
// bytes per entry the worst case stays a few MB per worker. It must
// comfortably exceed a stream's distinct-rendering working set (the
// evaluation corpora run ~10k) or the wholesale reset thrashes.
const l1ResolveCap = 1 << 15

// groupBucket collects one entity group's messages within one session.
type groupBucket struct {
	name  string
	epoch uint64
	msgs  []*extract.Message
	span  hwgraph.Span
}

// getScratch hands out a pooled worker scratch.
func (d *Detector) getScratch() *sessionScratch {
	if v := d.scratch.Get(); v != nil {
		return v.(*sessionScratch)
	}
	scr := &sessionScratch{buckets: map[string]*groupBucket{}}
	scr.asn.SetValues(d.Values)
	return scr
}

func (d *Detector) putScratch(scr *sessionScratch) {
	if scr.l1Hits > 0 {
		if d.Cache != nil {
			d.Cache.AddHits(scr.l1Hits)
		}
		scr.l1Hits = 0
	}
	d.scratch.Put(scr)
}

// bucketsFor resolves an Intel Key ID to the group buckets it feeds,
// building the per-key bucket list on first sight.
func (scr *sessionScratch) bucketsFor(d *Detector, keyID int) []*groupBucket {
	if keyID < 0 {
		return nil
	}
	for keyID >= len(scr.keyBuckets) {
		scr.keyBuckets = append(scr.keyBuckets, nil)
		scr.keyBuilt = append(scr.keyBuilt, false)
	}
	if !scr.keyBuilt[keyID] {
		var bs []*groupBucket
		for _, g := range d.KeyGroups[keyID] {
			b := scr.buckets[g]
			if b == nil {
				b = &groupBucket{name: g}
				scr.buckets[g] = b
			}
			bs = append(bs, b)
		}
		scr.keyBuckets[keyID] = bs
		scr.keyBuilt[keyID] = true
	}
	return scr.keyBuckets[keyID]
}

// NewDetector assembles a Detector with all checks enabled.
func NewDetector(p *spell.Parser, keys map[int]*extract.IntelKey, keyGroups map[int][]string, g *hwgraph.Graph) *Detector {
	return &Detector{
		Parser: p, Keys: keys, KeyGroups: keyGroups, Graph: g,
		CheckHierarchy: true, CheckMissingGroups: true,
		Cache: spell.NewLookupCache(0),
	}
}

// lookupRecord resolves a record's Spell key through the cache, memoizing
// the token split and bound prototype per raw message: a repeat rendering
// costs a cache probe, and binding it one shallow copy. The returned memo
// is shared and read-only.
func (d *Detector) lookupRecord(rec *logging.Record) (key *spell.Key, cl *extract.CachedLookup) {
	if d.Cache != nil {
		if k, aux, hit := d.Cache.GetAux(rec.Message); hit {
			if cl, ok := aux.(*extract.CachedLookup); ok && cl != nil {
				return k, cl
			}
			// Entry without a memo (added via plain Add): rebuild it.
		}
	}
	tokens := nlp.Tokenize(rec.Message)
	key = d.Parser.Lookup(nlp.Texts(tokens))
	cl = &extract.CachedLookup{Tokens: tokens}
	if key != nil {
		if ik := d.Keys[key.ID]; ik != nil && ik.NaturalLanguage {
			cl.Proto = extract.Bind(ik, tokens, time.Time{}, "", rec.Message)
			cl.Proto.IdentifierSet()
			cl.Proto.IdentifierTypes()
			cl.Proto.TypeSignature() // precompute; shared by every copy
			if d.Values != nil {
				d.Values.InternMessage(cl.Proto)
			}
		}
	} else {
		// Unmatched rendering: every repeat becomes an unexpected-message
		// anomaly, so precompute the ad-hoc extraction once here instead of
		// once per record in unexpected (which used to dominate the
		// allocation profile on anomaly-heavy streams).
		d.buildAdhoc(rec.Message, cl)
	}
	if d.Cache != nil {
		d.Cache.AddAux(rec.Message, key, cl)
	}
	return key, cl
}

// lookupRecordScr is lookupRecord through the worker's private L1 memo:
// a hit costs one unsynchronized map probe. Resolution is a pure
// function of the raw text under the frozen model, so the memo never
// goes stale; it is reset wholesale at l1ResolveCap.
func (d *Detector) lookupRecordScr(rec *logging.Record, scr *sessionScratch) (*spell.Key, *extract.CachedLookup) {
	if m, ok := scr.l1[rec.Message]; ok {
		scr.l1Hits++
		return m.key, m.cl
	}
	key, cl := d.lookupRecord(rec)
	if scr.l1 == nil {
		scr.l1 = make(map[string]resolveMemo, 1024)
	} else if len(scr.l1) >= l1ResolveCap {
		clear(scr.l1)
	}
	scr.l1[rec.Message] = resolveMemo{key: key, cl: cl}
	return key, cl
}

// buildAdhoc fills cl's unexpected-message memo for an unmatched raw
// message: the ad-hoc Intel Key, its entity-group attribution, and the
// summary line. Everything here depends only on the text (the group
// table is frozen with the graph), so it runs once per distinct
// rendering and unexpected binds per record from the memo.
func (d *Detector) buildAdhoc(msg string, cl *extract.CachedLookup) {
	texts := nlp.Texts(cl.Tokens)
	adhoc := &spell.Key{ID: -1, Tokens: texts, Sample: texts}
	ik := extract.BuildIntelKey(adhoc)
	// Attribute the message to a trained entity group — the paper's
	// diagnosis flow groups unexpected messages by entity ("all of the
	// unexpected messages belong to the 'fetcher' entity group"). The
	// operation's subject is the acting component, so it wins over other
	// extracted entities.
	grp := ""
	for _, op := range ik.Operations {
		if op.Subject != "" {
			if n := d.findGroupOf(op.Subject); n != "" {
				grp = n
				break
			}
		}
	}
	if grp == "" {
		for _, e := range ik.Entities {
			if n := d.findGroupOf(e); n != "" {
				grp = n
				break
			}
		}
	}
	if grp == "" && len(ik.Entities) > 0 {
		grp = ik.Entities[0]
	}
	cl.Adhoc, cl.AdhocGroup = ik, grp
	cl.AdhocDetail = fmt.Sprintf("no Intel Key matches %q", msg)
}

// DetectSession checks one session and returns its anomalies.
func (d *Detector) DetectSession(s *logging.Session) []Anomaly {
	scr := d.getScratch()
	defer d.putScratch(scr)
	return d.detectSession(s, scr)
}

// detectSession is DetectSession over caller-owned worker scratch.
// Structural checks consume the shared bound prototypes directly — the
// instance checks read only rendering-derived fields (key ID, identifier
// sets/types), so no per-record message copy is made.
func (d *Detector) detectSession(s *logging.Session, scr *sessionScratch) []Anomaly {
	var anomalies []Anomaly
	msgs := scr.msgs[:0]

	// last is the newest record time seen in the session: the event time
	// stamped on the end-of-session structural anomalies. The streaming
	// path tracks the same maximum in sessionBuf.last, so both paths
	// stamp identical times.
	var last time.Time
	for i := range s.Records {
		rec := &s.Records[i]
		if rec.Time.After(last) {
			last = rec.Time
		}
		key, cl := d.lookupRecordScr(rec, scr)
		if key == nil {
			anomalies = append(anomalies, d.unexpected(s, rec, cl))
			continue
		}
		if cl.Proto == nil {
			// §5: matched non-NL keys are on the ignore list — matching one
			// never triggers an unexpected-message error.
			continue
		}
		msgs = append(msgs, cl.Proto)
	}
	scr.msgs = msgs

	anomalies = append(anomalies, d.checkInstances(s.ID, last, msgs, scr)...)
	return anomalies
}

// Detect runs DetectSession over a batch on a worker pool sized to the
// machine; the report lists anomalies in session input order regardless
// of scheduling. Equivalent to DetectParallel(sessions, 0).
func (d *Detector) Detect(sessions []*logging.Session) *Report {
	return d.DetectParallel(sessions, 0)
}

// DetectParallel shards batch detection across sessions: shard w checks
// sessions w, w+shards, w+2·shards, … with worker-local scratch, and the
// merge appends per-session findings in input order — so the report is
// byte-identical at every shard count (the conformance oracle proves
// serial == parallel(2, 8, NumCPU) on every corpus). shards ≤ 0 uses one
// shard per CPU. Each shard is a real goroutine even beyond the CPU
// count, so oversubscribed counts still exercise the concurrent paths.
func (d *Detector) DetectParallel(sessions []*logging.Session, shards int) *Report {
	if shards <= 0 {
		shards = par.Workers()
	}
	if shards > len(sessions) {
		shards = len(sessions)
	}
	r := &Report{Sessions: len(sessions)}
	perSession := make([][]Anomaly, len(sessions))
	par.ForEach(shards, shards, func(w int) {
		scr := d.getScratch()
		defer d.putScratch(scr)
		for i := w; i < len(sessions); i += shards {
			perSession[i] = d.detectSession(sessions[i], scr)
		}
	})
	for _, anomalies := range perSession {
		r.Anomalies = append(r.Anomalies, anomalies...)
	}
	return r
}

// unexpected builds the UnexpectedMessage anomaly from the rendering's
// cached ad-hoc extraction; only the per-record Bind (time and session
// vary) runs per repeat.
func (d *Detector) unexpected(s *logging.Session, rec *logging.Record, cl *extract.CachedLookup) Anomaly {
	if cl.Adhoc == nil {
		// Memo published without the adhoc extraction (a bare cache Add
		// from outside lookupRecord): fill a private copy, leaving the
		// shared memo untouched.
		tmp := &extract.CachedLookup{Tokens: cl.Tokens}
		d.buildAdhoc(rec.Message, tmp)
		cl = tmp
	}
	m := extract.Bind(cl.Adhoc, cl.Tokens, rec.Time, s.ID, rec.Message)
	return Anomaly{
		At:      rec.Time,
		Session: s.ID, Kind: UnexpectedMessage, Group: cl.AdhocGroup,
		Record: rec, Extracted: m,
		Detail: cl.AdhocDetail,
	}
}

// findGroupOf returns the trained group containing an entity phrase,
// via a table precomputed from the frozen graph. An entity listed under
// several groups resolves to the lexically smallest group name — the
// same answer the original sorted per-call scan produced, which the
// conformance oracle pins (iterating the node map directly once made
// the attribution nondeterministic).
func (d *Detector) findGroupOf(entity string) string {
	d.groupOnce.Do(d.buildGroupIndex)
	return d.entityGroup[entity]
}

// expectedGroups caches Graph.ExpectedGroups (sorted, frozen with the
// graph) so the per-session presence check allocates nothing.
func (d *Detector) expectedGroups() []string {
	d.groupOnce.Do(d.buildGroupIndex)
	return d.expected
}

// buildGroupIndex precomputes entity→group attribution and the
// expected-group list. Runs once; the graph is frozen during detection.
func (d *Detector) buildGroupIndex() {
	names := make([]string, 0, len(d.Graph.Nodes))
	for name := range d.Graph.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	idx := make(map[string]string)
	for _, name := range names {
		for _, e := range d.Graph.Nodes[name].Entities {
			if _, ok := idx[e]; !ok {
				idx[e] = name
			}
		}
	}
	d.entityGroup = idx
	d.expected = d.Graph.ExpectedGroups()
}

// checkInstances verifies the session's HW-graph instance: per-group
// subroutine instances against trained subroutines, expected-group
// presence, and lifespan-relation consistency. scr is the calling
// worker's scratch; checkInstances consumes each group's instances
// before assigning the next group, so assigner reuse is safe. last is
// the session's newest record time, stamped as the event time of every
// structural finding.
func (d *Detector) checkInstances(session string, last time.Time, msgs []*extract.Message, scr *sessionScratch) []Anomaly {
	var anomalies []Anomaly

	// Bucket messages by entity group. Epoch stamping invalidates the
	// previous session's buckets without clearing (or allocating) any map:
	// a key ID resolves straight to its buckets through keyBuckets.
	scr.epoch++
	touched := scr.touched[:0]
	for idx, m := range msgs {
		for _, b := range scr.bucketsFor(d, m.KeyID) {
			if b.epoch != scr.epoch {
				b.epoch = scr.epoch
				b.msgs = b.msgs[:0]
				b.span = hwgraph.Span{First: idx, Last: idx}
				touched = append(touched, b)
			} else {
				b.span.Last = idx
			}
			b.msgs = append(b.msgs, m)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i].name < touched[j].name })
	scr.touched = touched

	for _, gb := range touched {
		g := gb.name
		node := d.Graph.Nodes[g]
		if node == nil {
			continue
		}
		for _, inst := range scr.asn.Assign(gb.msgs) {
			sig := inst.Signature()
			sub := node.Subroutines[sig]
			if sub == nil {
				if len(node.Subroutines) > 0 {
					anomalies = append(anomalies, Anomaly{
						At:      last,
						Session: session, Kind: UnknownSignature, Group: g, Signature: sig,
						Detail: fmt.Sprintf("group %q has no trained subroutine with signature %q", g, sig),
					})
				}
				continue
			}
			seq := scr.seq[:0]
			for _, m := range inst.Msgs {
				seq = append(seq, m.KeyID)
			}
			scr.seq = seq
			// Reduce once; both checks consume the reduction (duplicates
			// carry no signal for either).
			order := hwgraph.FirstOccurrenceInto(scr.order[:0], seq)
			scr.order = order
			if missing := sub.MissingCritical(order); len(missing) > 0 {
				anomalies = append(anomalies, Anomaly{
					At:      last,
					Session: session, Kind: MissingCriticalKeys, Group: g, Signature: sig,
					MissingKeys: missing,
					Detail:      fmt.Sprintf("subroutine %q in group %q missed %d critical Intel Keys", sig, g, len(missing)),
				})
			}
			if pairs := sub.ViolationsOrder(order); len(pairs) > 0 {
				anomalies = append(anomalies, Anomaly{
					At:      last,
					Session: session, Kind: OrderViolation, Group: g, Signature: sig,
					Pairs:  pairs,
					Detail: fmt.Sprintf("subroutine %q in group %q broke %d BEFORE relations", sig, g, len(pairs)),
				})
			}
		}
	}

	if d.CheckMissingGroups {
		for _, g := range d.expectedGroups() {
			if g == hwgraph.MiscGroup {
				continue
			}
			if b, ok := scr.buckets[g]; !ok || b.epoch != scr.epoch {
				anomalies = append(anomalies, Anomaly{
					At:      last,
					Session: session, Kind: MissingGroup, Group: g,
					Detail: fmt.Sprintf("group %q appeared in every training session but is absent", g),
				})
			}
		}
	}

	if d.CheckHierarchy {
		for i := 0; i < len(touched); i++ {
			for j := i + 1; j < len(touched); j++ {
				ga, gb := touched[i], touched[j]
				// Single-message groups have point lifespans whose position
				// jitters with scheduling; only wide spans carry structure.
				if len(ga.msgs) < 2 || len(gb.msgs) < 2 ||
					ga.span.First == ga.span.Last || gb.span.First == gb.span.Last {
					continue
				}
				trained := d.Graph.Relation(ga.name, gb.name)
				if trained != hwgraph.Parent && trained != hwgraph.Before {
					continue
				}
				observed := hwgraph.SessionRelation(ga.span, gb.span)
				if observed != trained {
					anomalies = append(anomalies, Anomaly{
						At:      last,
						Session: session, Kind: HierarchyViolation, Group: ga.name,
						Detail: fmt.Sprintf("groups %q and %q trained %v but observed %v", ga.name, gb.name, trained, observed),
					})
				}
			}
		}
	}

	return anomalies
}
