package detect

import (
	"time"

	"intellog/internal/extract"
	"intellog/internal/logging"
)

// StreamDetector consumes log records one at a time — the online mode of
// Fig. 2, where IntelLog "consumes newly incoming logs and automatically
// reports anomalies". Unexpected messages are reported immediately;
// HW-graph instance checks run when a session ends (explicitly, or after
// IdleTimeout with no records, judged by log timestamps).
type StreamDetector struct {
	// IdleTimeout closes a session when its log time falls this far behind
	// the newest record seen. Zero disables idle finalization.
	IdleTimeout time.Duration

	d        *Detector
	sessions map[string]*sessionBuf
	order    []string
	latest   time.Time
	rb       extract.Rebinder
}

// sessionBuf accumulates one in-flight session.
type sessionBuf struct {
	id   string
	msgs []*extract.Message
	last time.Time
}

// NewStreamDetector wraps a trained Detector for streaming consumption.
func NewStreamDetector(d *Detector, idle time.Duration) *StreamDetector {
	return &StreamDetector{IdleTimeout: idle, d: d, sessions: map[string]*sessionBuf{}}
}

// Pending returns the number of in-flight sessions.
func (s *StreamDetector) Pending() int { return len(s.sessions) }

// Consume processes one record. The returned anomalies are the immediate
// findings: an unexpected-message report for this record, plus the
// end-of-session findings of any session the record's timestamp idles
// out.
func (s *StreamDetector) Consume(rec logging.Record) []Anomaly {
	var out []Anomaly
	if rec.Time.After(s.latest) {
		s.latest = rec.Time
	}
	if s.IdleTimeout > 0 {
		out = append(out, s.expireIdle()...)
	}

	buf, ok := s.sessions[rec.SessionID]
	if !ok {
		buf = &sessionBuf{id: rec.SessionID}
		s.sessions[rec.SessionID] = buf
		s.order = append(s.order, rec.SessionID)
	}
	buf.last = rec.Time

	key, cl := s.d.lookupRecord(&rec)
	if key == nil {
		sess := &logging.Session{ID: rec.SessionID}
		out = append(out, s.d.unexpected(sess, &rec, cl.Tokens))
		return out
	}
	if cl.Proto == nil {
		// Matched non-NL key: ignore-listed, never an anomaly.
		return out
	}
	buf.msgs = append(buf.msgs, s.rb.Rebind(cl.Proto, rec.Time, rec.SessionID))
	return out
}

// CloseSession finalizes one session and returns its structural findings.
func (s *StreamDetector) CloseSession(id string) []Anomaly {
	buf, ok := s.sessions[id]
	if !ok {
		return nil
	}
	delete(s.sessions, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return s.d.checkInstances(buf.id, buf.msgs)
}

// Flush finalizes every in-flight session (end of stream) and returns the
// combined report.
func (s *StreamDetector) Flush() *Report {
	r := &Report{Sessions: len(s.order)}
	ids := append([]string(nil), s.order...)
	for _, id := range ids {
		r.Anomalies = append(r.Anomalies, s.CloseSession(id)...)
	}
	return r
}

// expireIdle finalizes sessions whose last record is older than
// IdleTimeout relative to the newest record seen.
func (s *StreamDetector) expireIdle() []Anomaly {
	var out []Anomaly
	cutoff := s.latest.Add(-s.IdleTimeout)
	ids := append([]string(nil), s.order...)
	for _, id := range ids {
		if buf := s.sessions[id]; buf != nil && buf.last.Before(cutoff) {
			out = append(out, s.CloseSession(id)...)
		}
	}
	return out
}
