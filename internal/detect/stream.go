package detect

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intellog/internal/extract"
	"intellog/internal/logging"
	"intellog/internal/par"
	"intellog/internal/spell"
)

// StreamConfig tunes the online detector.
type StreamConfig struct {
	// IdleTimeout closes a session when its log time falls this far behind
	// the newest record seen on any session. Zero disables idle
	// finalization. Idleness is judged by log timestamps (event time), not
	// wall-clock, so replayed corpora behave identically to live streams.
	IdleTimeout time.Duration
	// MaxSessions bounds the number of in-flight sessions; when a new
	// session would exceed it, the longest-idle session is force-closed
	// with an Overflow anomaly. Zero means unbounded.
	MaxSessions int
	// MaxSessionMsgs bounds the Intel Messages buffered per session; once
	// reached, further matched messages are dropped and a single Overflow
	// anomaly is emitted for the session. Zero means unbounded.
	MaxSessionMsgs int
	// Shards sets the number of session shards (rounded down to a power of
	// two). Zero picks a default sized for moderate concurrency. When
	// MaxSessions is set, the shard count never exceeds it, so the global
	// in-flight bound holds exactly.
	Shards int
}

// defaultStreamShards balances lock contention against per-Consume sweep
// cost; sixteen shards keep eight concurrent producers essentially
// uncontended.
const defaultStreamShards = 16

// StreamDetector consumes log records one at a time — the online mode of
// Fig. 2, where IntelLog "consumes newly incoming logs and automatically
// reports anomalies". Unexpected messages are reported immediately;
// HW-graph instance checks run when a session ends (explicitly, after
// IdleTimeout with no records, or when a resource cap forces it closed).
//
// Sessions are sharded by ID: Consume, CloseSession, Pending and State
// are safe for concurrent use, and records of different sessions proceed
// in parallel. Idle expiry is driven by a per-shard min-heap keyed by
// last-record time, so consuming a record costs O(log sessions) in the
// worst case and O(1) when nothing is idle — there is no per-record scan
// of the session table.
type StreamDetector struct {
	cfg StreamConfig
	d   *Detector

	shards []*streamShard
	mask   uint64
	seed   maphash.Seed

	latest   atomic.Int64  // newest record time seen (UnixNano)
	inFlight atomic.Int64  // sessions currently buffered
	seen     atomic.Uint64 // sessions ever opened (Report.Sessions)
	startSeq atomic.Uint64 // session arrival order, survives checkpoints
	anomSeq  atomic.Uint64 // anomaly emission order (Anomaly.Seq), survives checkpoints
}

// streamShard owns one slice of the session space. All fields are guarded
// by mu except earliest, which mirrors the heap top for lock-free staleness
// checks by other shards' consumers.
type streamShard struct {
	mu       sync.Mutex
	sessions map[string]*sessionBuf
	heap     expiryHeap
	earliest atomic.Int64 // heap-top time, or math.MaxInt64 when empty
}

// sessionBuf accumulates one in-flight session. msgs holds the shared
// bound prototypes (the structural checks read only rendering-derived
// fields, so no per-record copy is made); times carries each record's
// timestamp positionally, which is all the checkpoint snapshot needs.
type sessionBuf struct {
	id          string
	fw          logging.Framework
	msgs        []*extract.Message
	times       []time.Time
	first, last time.Time
	startSeq    uint64
	overflowed  bool // MaxSessionMsgs hit; further messages dropped
	dropped     int  // messages dropped after overflow
}

// sessionBufs recycles session buffers across open/finalize cycles. A
// high-churn stream (short sessions, hostile churn profiles) otherwise
// allocates one buffer plus two growing slices per session; recycling
// keeps the msgs/times capacity from the previous tenant of the buffer.
// Safe because checkInstances does not retain msgs, and every string an
// emitted Anomaly keeps (session ID, details) is a value-copied header
// onto immutable bytes.
var sessionBufs = sync.Pool{New: func() any { return new(sessionBuf) }}

// newSessionBuf rents a reset buffer and stamps its identity fields.
func newSessionBuf(id string, fw logging.Framework, at time.Time, startSeq uint64) *sessionBuf {
	b := sessionBufs.Get().(*sessionBuf)
	b.id, b.fw = id, fw
	b.first, b.last = at, at
	b.startSeq = startSeq
	return b
}

// releaseSessionBuf returns a finalized buffer to the pool. The msgs
// capacity keeps its prototype pointers — they reference model-owned
// prototypes that outlive every buffer, so pinning them is harmless and
// skipping the clear keeps release O(1).
func releaseSessionBuf(b *sessionBuf) {
	b.id = ""
	b.fw = logging.Framework("")
	b.msgs = b.msgs[:0]
	b.times = b.times[:0]
	b.first, b.last = time.Time{}, time.Time{}
	b.startSeq = 0
	b.overflowed = false
	b.dropped = 0
	sessionBufs.Put(b)
}

// expiryEntry schedules one session's idle check. Entries are lazily
// invalidated: a session touched after its entry was pushed simply gets a
// fresh entry when the stale one surfaces, so no per-record heap fix-up is
// needed.
type expiryEntry struct {
	at int64 // session's last-record time when pushed (UnixNano)
	id string
}

// expiryHeap is a binary min-heap of expiryEntry by time.
type expiryHeap []expiryEntry

func (h *expiryHeap) push(e expiryEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].at <= (*h)[i].at {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *expiryHeap) pop() expiryEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = expiryEntry{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && old[l].at < old[m].at {
			m = l
		}
		if r < n && old[r].at < old[m].at {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// NewStreamDetector wraps a trained Detector for streaming consumption
// with only an idle timeout configured (the pre-existing constructor).
func NewStreamDetector(d *Detector, idle time.Duration) *StreamDetector {
	return NewStream(d, StreamConfig{IdleTimeout: idle})
}

// NewStream wraps a trained Detector for streaming consumption.
func NewStream(d *Detector, cfg StreamConfig) *StreamDetector {
	n := cfg.Shards
	if n <= 0 {
		n = defaultStreamShards
	}
	if cfg.MaxSessions > 0 && n > cfg.MaxSessions {
		// More shards than the session budget would make the per-shard cap
		// zero; shrink so every shard can hold at least one session and the
		// sum of per-shard caps stays within MaxSessions.
		n = cfg.MaxSessions
	}
	// Round down to a power of two for mask addressing.
	for n&(n-1) != 0 {
		n &= n - 1
	}
	s := &StreamDetector{
		cfg:    cfg,
		d:      d,
		shards: make([]*streamShard, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range s.shards {
		sh := &streamShard{sessions: make(map[string]*sessionBuf)}
		sh.earliest.Store(math.MaxInt64)
		s.shards[i] = sh
	}
	s.latest.Store(math.MinInt64)
	return s
}

// shard maps a session ID to its shard.
func (s *StreamDetector) shard(id string) *streamShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[maphash.String(s.seed, id)&s.mask]
}

// maxPerShard is the in-flight cap of one shard (0 = unbounded). Shard
// count never exceeds MaxSessions, so the per-shard quotient is ≥ 1 and
// the sum over shards never exceeds the global cap.
func (s *StreamDetector) maxPerShard() int {
	if s.cfg.MaxSessions <= 0 {
		return 0
	}
	return s.cfg.MaxSessions / len(s.shards)
}

// trackExpiry reports whether the heaps are maintained at all; with no
// idle timeout and no session cap they are skipped entirely, so the
// hot path carries no scheduling overhead.
func (s *StreamDetector) trackExpiry() bool {
	return s.cfg.IdleTimeout > 0 || s.cfg.MaxSessions > 0
}

// Pending returns the number of in-flight sessions.
func (s *StreamDetector) Pending() int { return int(s.inFlight.Load()) }

// ExpiryDepth returns the total number of scheduled expiry-heap entries
// across shards — an observability hook (the serving layer exports it as
// a gauge). Lazily invalidated entries are counted until they surface, so
// the depth can exceed Pending; a steadily growing gap signals a stream
// whose sessions are touched far more often than they expire.
func (s *StreamDetector) ExpiryDepth() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.heap)
		sh.mu.Unlock()
	}
	return n
}

// AnomalySeq returns the sequence number of the last anomaly stamped
// (zero before any finding). The next emitted anomaly gets AnomalySeq+1.
func (s *StreamDetector) AnomalySeq() uint64 { return s.anomSeq.Load() }

// stamp assigns each anomaly the next emission sequence number. Slices
// from one call are stamped contiguously; concurrent Consume calls
// interleave their ranges but every anomaly still gets a unique,
// strictly increasing number.
func (s *StreamDetector) stamp(as []Anomaly) []Anomaly {
	if len(as) == 0 {
		return as
	}
	last := s.anomSeq.Add(uint64(len(as)))
	first := last - uint64(len(as)) + 1
	for i := range as {
		as[i].Seq = first + uint64(i)
	}
	return as
}

// SessionsSeen returns the number of sessions opened since construction
// (or since the checkpoint the detector was restored from).
func (s *StreamDetector) SessionsSeen() int { return int(s.seen.Load()) }

// Consume processes one record. The returned anomalies are the immediate
// findings: an unexpected-message report for this record, an overflow
// report if a resource cap was hit, plus the end-of-session findings of
// any session the record's timestamp idles out. The record's own session
// is exempt from idle expiry — its arrival proves the session alive, so
// it can never idle itself out (even with an out-of-order timestamp).
func (s *StreamDetector) Consume(rec logging.Record) []Anomaly {
	// Resolve the record before taking any lock; the lookup cache is
	// concurrency-safe and this is the expensive part of the hot path.
	key, cl := s.d.lookupRecord(&rec)
	return s.consumeResolved(rec, key, cl)
}

// ConsumeBatch processes a slice of records with the pipeline split into
// two stages: the resolution stage (tokenize, Spell lookup, prototype
// bind — the CPU-heavy part) fans out across a worker pool, and the apply
// stage runs strictly in input order on the calling goroutine. Because
// resolution is a pure function of the raw text under a fixed model, the
// returned anomalies are identical to calling Consume once per record in
// order — only the wall-clock changes. workers ≤ 0 sizes the pool to the
// machine.
func (s *StreamDetector) ConsumeBatch(recs []logging.Record, workers int) []Anomaly {
	if len(recs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	rp := resolvedScratch.Get().(*[]resolvedRec)
	resolved := *rp
	if cap(resolved) < len(recs) {
		resolved = make([]resolvedRec, len(recs))
	} else {
		resolved = resolved[:len(recs)]
	}
	// Stride the batch across workers (not one task per record) so each
	// worker resolves through a pooled scratch's private L1 memo — the
	// common repeat rendering costs one unsynchronized map probe instead
	// of a shared-cache round trip per record.
	par.ForEach(workers, workers, func(w int) {
		scr := s.d.getScratch()
		defer s.d.putScratch(scr)
		for i := w; i < len(recs); i += workers {
			resolved[i].key, resolved[i].cl = s.d.lookupRecordScr(&recs[i], scr)
		}
	})
	var out []Anomaly
	for i := range recs {
		out = append(out, s.consumeResolved(recs[i], resolved[i].key, resolved[i].cl)...)
	}
	*rp = resolved[:0]
	resolvedScratch.Put(rp)
	return out
}

// resolvedRec carries one record's resolution-stage result into the
// ordered apply stage.
type resolvedRec struct {
	key *spell.Key
	cl  *extract.CachedLookup
}

// resolvedScratch recycles the per-ConsumeBatch resolution array. Every
// slot in [0, len(recs)) is overwritten by the resolve stage before the
// apply stage reads it, so the array is reused without clearing; the
// pointers a parked array pins reference the model and its bounded
// lookup cache, which outlive the pool.
var resolvedScratch = sync.Pool{New: func() any { return new([]resolvedRec) }}

// consumeResolved is the ordered apply stage: it advances the stream
// clock, buffers (or rejects) the already-resolved record, and collects
// any sessions the record's timestamp idles out.
func (s *StreamDetector) consumeResolved(rec logging.Record, key *spell.Key, cl *extract.CachedLookup) []Anomaly {
	// Advance the stream clock (monotone max of record times).
	now := rec.Time.UnixNano()
	latest := s.latest.Load()
	for now > latest && !s.latest.CompareAndSwap(latest, now) {
		latest = s.latest.Load()
	}
	if now > latest {
		latest = now
	}
	cutoff := int64(math.MinInt64)
	if s.cfg.IdleTimeout > 0 {
		cutoff = latest - int64(s.cfg.IdleTimeout)
	}

	sh := s.shard(rec.SessionID)
	sh.mu.Lock()

	// Expire idle sessions in this shard first: freed capacity may spare
	// an eviction below. The current session is exempt.
	var expired, evicted []*sessionBuf
	if s.cfg.IdleTimeout > 0 {
		expired = sh.expireLocked(cutoff, rec.SessionID)
		s.inFlight.Add(int64(-len(expired)))
	}

	buf, ok := sh.sessions[rec.SessionID]
	if !ok {
		if cap := s.maxPerShard(); cap > 0 && len(sh.sessions) >= cap {
			if b := sh.evictOldestLocked(); b != nil {
				evicted = append(evicted, b)
				s.inFlight.Add(-1)
			}
		}
		buf = newSessionBuf(rec.SessionID, rec.Framework, rec.Time, s.startSeq.Add(1))
		sh.sessions[rec.SessionID] = buf
		s.inFlight.Add(1)
		s.seen.Add(1)
		if s.trackExpiry() {
			sh.heap.push(expiryEntry{at: now, id: rec.SessionID})
		}
	} else if rec.Time.After(buf.last) {
		// The heap entry goes stale here; expireLocked refreshes it lazily
		// when it surfaces, so no O(log n) fix-up per record.
		buf.last = rec.Time
	}

	var out []Anomaly
	switch {
	case key == nil:
		sess := &logging.Session{ID: rec.SessionID, Framework: rec.Framework}
		out = append(out, s.d.unexpected(sess, &rec, cl))
	case cl.Proto == nil:
		// Matched non-NL key: ignore-listed, never an anomaly.
	default:
		if max := s.cfg.MaxSessionMsgs; max > 0 && len(buf.msgs) >= max {
			if !buf.overflowed {
				buf.overflowed = true
				out = append(out, Anomaly{
					At:      rec.Time,
					Session: buf.id, Kind: Overflow,
					Detail: fmt.Sprintf("session %q reached the %d buffered-message cap; further messages dropped", buf.id, max),
				})
			}
			buf.dropped++
		} else {
			buf.msgs = append(buf.msgs, cl.Proto)
			buf.times = append(buf.times, rec.Time)
		}
	}

	sh.syncEarliestLocked()
	sh.mu.Unlock()

	// Finalize outside the lock: the bufs are out of the maps, so they are
	// exclusively owned here and go back to the pool once checked.
	var findings []Anomaly
	for _, b := range evicted {
		findings = append(findings, Anomaly{
			At:      b.last,
			Session: b.id, Kind: Overflow,
			Detail: fmt.Sprintf("session %q force-closed: %d in-flight sessions reached the cap", b.id, s.cfg.MaxSessions),
		})
		findings = append(findings, s.finalize(b)...)
		releaseSessionBuf(b)
	}
	for _, b := range expired {
		findings = append(findings, s.finalize(b)...)
		releaseSessionBuf(b)
	}
	out = append(findings, out...)

	// Sweep the other shards for idle sessions. The per-shard earliest
	// mirror makes the common case a lock-free load per shard; a shard is
	// only locked when its oldest entry is actually past the cutoff.
	if s.cfg.IdleTimeout > 0 {
		for _, o := range s.shards {
			if o == sh || o.earliest.Load() >= cutoff {
				continue
			}
			o.mu.Lock()
			stale := o.expireLocked(cutoff, "")
			s.inFlight.Add(int64(-len(stale)))
			o.syncEarliestLocked()
			o.mu.Unlock()
			for _, b := range stale {
				out = append(out, s.finalize(b)...)
				releaseSessionBuf(b)
			}
		}
	}
	return s.stamp(out)
}

// expireLocked removes and returns every session whose last record is
// older than cutoff, skipping exempt. Stale heap entries (their session
// was touched or closed since the push) are dropped or refreshed as they
// surface. Caller holds sh.mu.
func (sh *streamShard) expireLocked(cutoff int64, exempt string) []*sessionBuf {
	var out []*sessionBuf
	var deferred *expiryEntry
	for len(sh.heap) > 0 {
		if sh.heap[0].at >= cutoff {
			break
		}
		e := sh.heap.pop()
		buf := sh.sessions[e.id]
		if buf == nil {
			continue // session closed since the entry was pushed
		}
		if last := buf.last.UnixNano(); last > e.at {
			sh.heap.push(expiryEntry{at: last, id: e.id}) // refresh stale entry
			continue
		}
		if e.id == exempt {
			// Keep the exempt session scheduled, but re-push only after the
			// loop — re-pushing an entry already past the cutoff now would
			// surface it again immediately.
			deferred = &e
			continue
		}
		delete(sh.sessions, e.id)
		out = append(out, buf)
	}
	if deferred != nil {
		sh.heap.push(*deferred)
	}
	return out
}

// evictOldestLocked removes and returns the longest-idle session, or nil
// if the shard is empty. Caller holds sh.mu.
func (sh *streamShard) evictOldestLocked() *sessionBuf {
	for len(sh.heap) > 0 {
		e := sh.heap.pop()
		buf := sh.sessions[e.id]
		if buf == nil {
			continue
		}
		if last := buf.last.UnixNano(); last > e.at {
			sh.heap.push(expiryEntry{at: last, id: e.id})
			continue
		}
		delete(sh.sessions, e.id)
		return buf
	}
	return nil
}

// syncEarliestLocked publishes the heap top for lock-free staleness
// checks. Caller holds sh.mu.
func (sh *streamShard) syncEarliestLocked() {
	if len(sh.heap) == 0 {
		sh.earliest.Store(math.MaxInt64)
		return
	}
	sh.earliest.Store(sh.heap[0].at)
}

// finalize runs the end-of-session structural checks on an owned buffer.
func (s *StreamDetector) finalize(buf *sessionBuf) []Anomaly {
	scr := s.d.getScratch()
	defer s.d.putScratch(scr)
	return s.d.checkInstances(buf.id, buf.last, buf.msgs, scr)
}

// CloseSession finalizes one session and returns its structural findings.
func (s *StreamDetector) CloseSession(id string) []Anomaly {
	sh := s.shard(id)
	sh.mu.Lock()
	buf, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		s.inFlight.Add(-1)
	}
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	out := s.finalize(buf)
	releaseSessionBuf(buf)
	return s.stamp(out)
}

// Flush finalizes every in-flight session (end of stream) and returns the
// combined report. Sessions finalize in first-record-time order (ties by
// arrival), matching the batch detector's session ordering; the checks
// themselves run on a worker pool. Report.Sessions counts every session
// the stream opened, not just those still in flight.
func (s *StreamDetector) Flush() *Report {
	var bufs []*sessionBuf
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, b := range sh.sessions {
			bufs = append(bufs, b)
		}
		sh.sessions = make(map[string]*sessionBuf)
		sh.heap = sh.heap[:0]
		sh.earliest.Store(math.MaxInt64)
		sh.mu.Unlock()
	}
	s.inFlight.Add(int64(-len(bufs)))
	sort.Slice(bufs, func(i, j int) bool {
		if !bufs[i].first.Equal(bufs[j].first) {
			return bufs[i].first.Before(bufs[j].first)
		}
		return bufs[i].startSeq < bufs[j].startSeq
	})
	perSession := make([][]Anomaly, len(bufs))
	par.ForEachIndex(len(bufs), func(i int) {
		perSession[i] = s.finalize(bufs[i])
		releaseSessionBuf(bufs[i])
	})
	r := &Report{Sessions: int(s.seen.Load())}
	for _, anomalies := range perSession {
		r.Anomalies = append(r.Anomalies, anomalies...)
	}
	// Stamp after the parallel finalize, in report order, so Flush
	// findings extend the stream's emission sequence monotonically.
	s.stamp(r.Anomalies)
	return r
}
