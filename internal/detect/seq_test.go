package detect

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestAnomalySeqMonotonic pins the cursor contract of the streaming
// detector: every anomaly emitted — mid-stream via Consume, at explicit
// CloseSession, and at Flush — carries a strictly increasing, gapless
// sequence number, so a caller can page findings with "give me everything
// after seq N" and never miss or re-see one.
func TestAnomalySeqMonotonic(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)

	var got []Anomaly
	// Two unexpected messages in one session, one in another.
	got = append(got, s.Consume(streamRec("c1", "Totally novel failure alpha", t0))...)
	got = append(got, s.Consume(streamRec("c1", "Totally novel failure beta", t0.Add(time.Second)))...)
	got = append(got, s.Consume(streamRec("c2", "Totally novel failure gamma", t0.Add(2*time.Second)))...)
	got = append(got, s.CloseSession("c1")...)
	rep := s.Flush()
	got = append(got, rep.Anomalies...)

	if len(got) < 3 {
		t.Fatalf("corpus produced only %d findings, need ≥ 3 to exercise ordering", len(got))
	}
	for i, a := range got {
		if want := uint64(i + 1); a.Seq != want {
			t.Errorf("anomaly %d has seq %d, want %d (gapless, strictly increasing)", i, a.Seq, want)
		}
	}
	if s.AnomalySeq() != uint64(len(got)) {
		t.Errorf("AnomalySeq() = %d, want %d", s.AnomalySeq(), len(got))
	}
}

// TestAnomalySeqExcludedFromJSON: the conformance oracle canonicalizes
// reports by JSON-marshaling anomalies; the path-dependent Seq must never
// leak into that form or batch/stream parity would break byte-for-byte.
func TestAnomalySeqExcludedFromJSON(t *testing.T) {
	a := Anomaly{Seq: 42, Session: "c1", Kind: Overflow, Detail: "x"}
	b := Anomaly{Seq: 7, Session: "c1", Kind: Overflow, Detail: "x"}
	ja, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("Seq leaked into JSON:\n%s\n%s", ja, jb)
	}
}

// TestAnomalySeqUniqueUnderConcurrency: concurrent Consume calls may
// interleave their stamped ranges, but no two anomalies ever share a
// sequence number and the counter never runs backwards.
func TestAnomalySeqUniqueUnderConcurrency(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{Shards: 4})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)

	const workers, perWorker = 8, 40
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := "c" + string(rune('A'+w))
				as := s.Consume(streamRec(id, "Totally novel failure zeta", t0.Add(time.Duration(i)*time.Millisecond)))
				mu.Lock()
				for _, a := range as {
					if a.Seq == 0 {
						t.Error("anomaly stamped with seq 0")
					}
					if seen[a.Seq] {
						t.Errorf("seq %d assigned twice", a.Seq)
					}
					seen[a.Seq] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != workers*perWorker {
		t.Fatalf("expected %d unexpected-message findings, got %d", workers*perWorker, len(seen))
	}
	if s.AnomalySeq() != uint64(len(seen)) {
		t.Errorf("AnomalySeq() = %d after %d findings", s.AnomalySeq(), len(seen))
	}
}

// TestAnomalySeqSurvivesCheckpoint: a restored detector continues the
// emission sequence where the checkpoint left off, so anomaly cursors
// held across a restart stay valid (no duplicate or reused numbers).
func TestAnomalySeqSurvivesCheckpoint(t *testing.T) {
	d := fixture(t)
	s := NewStream(d, StreamConfig{})
	t0 := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)

	pre := s.Consume(streamRec("c1", "Totally novel failure alpha", t0))
	if len(pre) != 1 || pre[0].Seq != 1 {
		t.Fatalf("priming finding = %+v, want one anomaly with seq 1", pre)
	}
	st := s.State()
	if st.AnomalySeq != 1 {
		t.Fatalf("checkpoint AnomalySeq = %d, want 1", st.AnomalySeq)
	}

	restored, err := RestoreStreamDetector(fixture(t), StreamConfig{}, st)
	if err != nil {
		t.Fatal(err)
	}
	post := restored.Consume(streamRec("c2", "Totally novel failure beta", t0.Add(time.Second)))
	if len(post) != 1 || post[0].Seq != 2 {
		t.Fatalf("post-restore finding = %+v, want one anomaly with seq 2", post)
	}
}
