// Package workload reproduces the paper's workload generator (§6.1): it
// randomly draws HiBench-style jobs for Spark and MapReduce and TPC-H
// queries (via a Hive-like interface) for Tez, with randomized input
// sizes and resource configurations, and submits them to the simulated
// cluster.
package workload

import (
	"fmt"
	"math/rand"

	"intellog/internal/logging"
	"intellog/internal/sim"
)

// HiBenchJobs mirrors the HiBench suite's breadth: text processing,
// machine learning and graph processing.
var HiBenchJobs = []string{
	"WordCount", "Sort", "TeraSort", "Grep", "KMeans", "Bayes", "PageRank",
	"NWeight", "Aggregation", "Join", "Scan",
}

// MLJobs lists distributed-training workloads for the TensorFlow
// extension (§9 future work).
var MLJobs = []string{
	"ResNet50", "Inception", "Word2Vec", "Transformer", "NCF", "WideDeep",
}

// StreamingJobs lists the Flink pipelines (the HiBench streaming bench
// plus the usual demo topologies).
var StreamingJobs = []string{
	"Identity", "Repartition", "StatefulWordCount", "FixWindow",
	"ClickstreamJoin", "FraudDetection", "SessionWindows",
}

// StorageJobs lists HDFS write-path workloads (DFSIO-style block write
// batches).
var StorageJobs = []string{
	"DFSIOWrite", "TeraGen", "DistCp", "HBaseWALFlush", "LogArchive",
}

// TPCHQueries lists the 22 TPC-H queries submitted through Hive on Tez.
var TPCHQueries = func() []string {
	qs := make([]string, 22)
	for i := range qs {
		qs[i] = fmt.Sprintf("Query %d", i+1)
	}
	return qs
}()

// ConfigSet is one resource configuration (the paper submits jobs under
// five sets with different input sizes and allocations).
type ConfigSet struct {
	InputMB    int
	Containers int
	Cores      int
	MemoryMB   int
}

// DefaultConfigSets are the five configurations used by the Table 6
// experiments.
var DefaultConfigSets = []ConfigSet{
	{InputMB: 512, Containers: 4, Cores: 2, MemoryMB: 2048},
	{InputMB: 1024, Containers: 6, Cores: 4, MemoryMB: 4096},
	{InputMB: 2048, Containers: 8, Cores: 4, MemoryMB: 4096},
	{InputMB: 4096, Containers: 12, Cores: 8, MemoryMB: 8192},
	{InputMB: 8192, Containers: 16, Cores: 8, MemoryMB: 16384},
}

// TrainingConfigSets are the carefully tuned configurations used for the
// model-training runs (§6.1). Detection jobs use DefaultConfigSets, whose
// larger inputs and allocations produce session lengths the training
// phase never saw — the paper's source of variable-length sessions.
var TrainingConfigSets = []ConfigSet{
	{InputMB: 512, Containers: 6, Cores: 2, MemoryMB: 2048},
	{InputMB: 1024, Containers: 4, Cores: 2, MemoryMB: 2048},
	{InputMB: 2048, Containers: 6, Cores: 4, MemoryMB: 4096},
	{InputMB: 4096, Containers: 8, Cores: 4, MemoryMB: 4096},
}

// Generator submits randomized jobs to a simulated cluster.
type Generator struct {
	Cluster *sim.Cluster
	rng     *rand.Rand
}

// NewGenerator wraps a cluster with a deterministic job chooser.
func NewGenerator(c *sim.Cluster, seed int64) *Generator {
	return &Generator{Cluster: c, rng: rand.New(rand.NewSource(seed))}
}

// RandomSpec draws a job spec for the framework: a HiBench job for Spark
// and MapReduce, a TPC-H query for Tez.
func (g *Generator) RandomSpec(fw logging.Framework) sim.JobSpec {
	cfg := DefaultConfigSets[g.rng.Intn(len(DefaultConfigSets))]
	return g.SpecWithConfig(fw, cfg)
}

// SpecWithConfig draws a job name for the framework under a fixed config.
func (g *Generator) SpecWithConfig(fw logging.Framework, cfg ConfigSet) sim.JobSpec {
	var name string
	switch fw {
	case logging.Tez:
		name = TPCHQueries[g.rng.Intn(len(TPCHQueries))]
	case logging.TensorFlow:
		name = MLJobs[g.rng.Intn(len(MLJobs))]
	case logging.Flink:
		name = StreamingJobs[g.rng.Intn(len(StreamingJobs))]
	case logging.HDFS:
		name = StorageJobs[g.rng.Intn(len(StorageJobs))]
	default:
		name = HiBenchJobs[g.rng.Intn(len(HiBenchJobs))]
	}
	return sim.JobSpec{
		Framework: fw, Name: name,
		InputMB: cfg.InputMB, Containers: cfg.Containers,
		CoresPerContainer: cfg.Cores, MemoryMB: cfg.MemoryMB,
	}
}

// Submit runs one random job with the given fault.
func (g *Generator) Submit(fw logging.Framework, fault sim.FaultKind) *sim.JobResult {
	return g.Cluster.RunJob(g.RandomSpec(fw), fault)
}

// TrainingCorpus submits n clean jobs and returns all their sessions —
// the model-training phase, where configurations guarantee successful
// normal execution (§6.1).
func (g *Generator) TrainingCorpus(fw logging.Framework, n int) []*logging.Session {
	var sessions []*logging.Session
	for i := 0; i < n; i++ {
		cfg := TrainingConfigSets[g.rng.Intn(len(TrainingConfigSets))]
		res := g.Cluster.RunJob(g.SpecWithConfig(fw, cfg), sim.FaultNone)
		sessions = append(sessions, res.Sessions...)
	}
	return sessions
}
