package workload

// The workload generator sits between the conformance harness and the
// simulator: if its draws depended on anything but (cluster seed,
// generator seed), regenerated corpora would silently drift. Same seeds
// must reproduce the exact submission sequence — specs, session IDs, and
// record streams.

import (
	"fmt"
	"strings"
	"testing"

	"intellog/internal/logging"
	"intellog/internal/sim"
)

func renderSessions(sessions []*logging.Session) string {
	var b strings.Builder
	for _, s := range sessions {
		f := logging.FormatterFor(s.Framework)
		fmt.Fprintf(&b, "== %s %s\n", s.ID, s.Framework)
		for _, r := range s.Records {
			b.WriteString(f.Render(r))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestTrainingCorpusDeterminism(t *testing.T) {
	for _, fw := range []logging.Framework{logging.Spark, logging.MapReduce, logging.Tez} {
		fw := fw
		t.Run(string(fw), func(t *testing.T) {
			t.Parallel()
			gen := func() string {
				g := NewGenerator(sim.NewCluster(10, 55), 56)
				return renderSessions(g.TrainingCorpus(fw, 3))
			}
			a, b := gen(), gen()
			if a == "" {
				t.Fatal("training corpus rendered empty")
			}
			if a != b {
				t.Fatal("same seeds produced different training corpora")
			}
		})
	}
}

func TestSubmitSequenceDeterminism(t *testing.T) {
	run := func() string {
		g := NewGenerator(sim.NewCluster(10, 90), 91)
		var b strings.Builder
		for i, fault := range []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork} {
			res := g.Submit(logging.Spark, fault)
			fmt.Fprintf(&b, "job %d: %s %s input=%d containers=%d\n",
				i, res.Spec.Name, res.Fault, res.Spec.InputMB, res.Spec.Containers)
			b.WriteString(renderSessions(res.Sessions))
		}
		return b.String()
	}
	if run() != run() {
		t.Fatal("same seeds produced different submission sequences")
	}
}
