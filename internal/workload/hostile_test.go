package workload

// The hostile profiles feed the conformance matrix, so they inherit the
// same regeneration contract as the generator: (profile, seed) must
// reproduce the exact reshaped stream. They also carry an invariant of
// their own — per-session record order is never disturbed — because the
// order-based detector and the differential oracle both assume it.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"intellog/internal/logging"
	"intellog/internal/sim"
)

// hostileInput builds a deterministic multi-framework stream to reshape.
func hostileInput(t *testing.T) []logging.Record {
	t.Helper()
	g := NewGenerator(sim.NewCluster(8, 71), 72)
	var recs []logging.Record
	for _, fw := range []logging.Framework{logging.Spark, logging.Flink, logging.HDFS} {
		res := g.Submit(fw, sim.FaultNone)
		for _, s := range res.Sessions {
			recs = append(recs, s.Records...)
		}
	}
	if len(recs) == 0 {
		t.Fatal("hostile input stream is empty")
	}
	return recs
}

func renderRecords(recs []logging.Record) string {
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%s|%s|%s\n", r.SessionID, r.Time.Format(time.RFC3339Nano), r.Message)
	}
	return b.String()
}

func bySession(recs []logging.Record) map[string][]logging.Record {
	m := make(map[string][]logging.Record)
	for _, r := range recs {
		m[r.SessionID] = append(m[r.SessionID], r)
	}
	return m
}

// isSubsequence reports whether want's messages appear in order within
// got's (equality is the special case with no extra records).
func isSubsequence(want, got []logging.Record) bool {
	i := 0
	for _, g := range got {
		if i < len(want) && want[i].Message == g.Message {
			i++
		}
	}
	return i == len(want)
}

func TestHostileDeterminismAndSeedSensitivity(t *testing.T) {
	in := hostileInput(t)
	for _, p := range HostileProfiles() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			a := renderRecords(ApplyHostile(p, in, 7))
			b := renderRecords(ApplyHostile(p, in, 7))
			if a != b {
				t.Fatal("same (profile, seed) produced different streams")
			}
			if c := renderRecords(ApplyHostile(p, in, 8)); a == c {
				t.Fatal("different seeds produced byte-identical streams; profile ignores its seed")
			}
			if a == renderRecords(in) {
				t.Fatal("profile left the stream untouched")
			}
		})
	}
}

// TestHostilePreservesSessionOrder pins the invariant the detector
// depends on: reshaping never changes the order of a session's records.
// Time-only profiles must keep each session's message sequence exactly;
// dupstorm may add repeats but the original sequence must survive as a
// subsequence. All profiles must keep per-session timestamps monotonic.
func TestHostilePreservesSessionOrder(t *testing.T) {
	in := hostileInput(t)
	want := bySession(in)
	for _, p := range HostileProfiles() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			out := ApplyHostile(p, in, 13)
			got := bySession(out)
			if len(got) != len(want) {
				t.Fatalf("session count changed: got %d want %d", len(got), len(want))
			}
			for id, w := range want {
				g := got[id]
				if p.TimeOnly() {
					if len(g) != len(w) {
						t.Fatalf("session %s: record count changed: got %d want %d", id, len(g), len(w))
					}
					for i := range w {
						if g[i].Message != w[i].Message {
							t.Fatalf("session %s: record %d reordered", id, i)
						}
					}
				} else if !isSubsequence(w, g) {
					t.Fatalf("session %s: original sequence not preserved under %s", id, p)
				}
				for i := 1; i < len(g); i++ {
					if g[i].Time.Before(g[i-1].Time) {
						t.Fatalf("session %s: timestamps regress at record %d under %s", id, i, p)
					}
				}
			}
		})
	}
}

// TestHostileShapes spot-checks that each profile produces the traffic
// shape it advertises.
func TestHostileShapes(t *testing.T) {
	in := hostileInput(t)

	t.Run("skew-multiday", func(t *testing.T) {
		out := ApplyHostile(HostileSkew, in, 21)
		first, last := out[0].Time, out[0].Time
		ordered := true
		for i, r := range out {
			if r.Time.Before(first) {
				first = r.Time
			}
			if r.Time.After(last) {
				last = r.Time
			}
			if i > 0 && r.Time.Before(out[i-1].Time) {
				ordered = false
			}
		}
		if span := last.Sub(first); span < 24*time.Hour {
			t.Fatalf("skewed corpus spans %v, want a multi-day spread", span)
		}
		if ordered {
			t.Fatal("skewed stream is still in timestamp order; skew should interleave sessions across days")
		}
	})

	t.Run("churn-contiguous", func(t *testing.T) {
		out := ApplyHostile(HostileChurn, in, 22)
		seen := make(map[string]bool)
		last := ""
		for _, r := range out {
			if r.SessionID != last {
				if seen[r.SessionID] {
					t.Fatalf("session %s appears in two separate blocks", r.SessionID)
				}
				seen[r.SessionID] = true
				last = r.SessionID
			}
		}
	})

	t.Run("dupstorm-grows", func(t *testing.T) {
		out := ApplyHostile(HostileDupStorm, in, 23)
		if len(out) <= len(in) {
			t.Fatalf("dupstorm did not add records: %d <= %d", len(out), len(in))
		}
	})

	t.Run("burst-gaps", func(t *testing.T) {
		out := ApplyHostile(HostileBurst, in, 24)
		gaps := 0
		for i := 1; i < len(out); i++ {
			if out[i].Time.Sub(out[i-1].Time) >= time.Minute {
				gaps++
			}
		}
		if gaps == 0 {
			t.Fatal("burst profile produced no inter-burst silences")
		}
	})

	t.Run("unknown-profile-identity", func(t *testing.T) {
		out := ApplyHostile(HostileProfile(""), in, 25)
		if renderRecords(out) != renderRecords(in) {
			t.Fatal("empty profile must be the identity transform")
		}
	})
}
