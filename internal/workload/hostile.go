package workload

import (
	"fmt"
	"math/rand"
	"time"

	"intellog/internal/logging"
)

// HostileProfile names a deterministic stream transform that reshapes a
// generated corpus into traffic the serving path finds hard: bursts,
// tenant churn, clock skew, duplicate storms. Profiles rearrange arrival
// shape — timestamps, stream order, repetition — but never the order of
// records *within* a session, which is the invariant the order-based
// detector and the differential oracle depend on.
type HostileProfile string

// The hostile profiles.
const (
	// HostileBurst compresses arrivals into dense bursts separated by
	// minutes of silence, the thundering-herd shape of retry storms.
	HostileBurst HostileProfile = "burst"
	// HostileSkew gives every session its own clock offset of up to ±36h,
	// stretching the corpus over multiple days and making the merged
	// stream arrive far out of timestamp order.
	HostileSkew HostileProfile = "skew"
	// HostileChurn serializes sessions into contiguous short-lived blocks:
	// many tenants connecting, logging for a few seconds, and vanishing.
	HostileChurn HostileProfile = "churn"
	// HostileDupStorm repeats records — steady low-rate duplicates plus
	// occasional storms of one line — the at-least-once delivery failure
	// mode of log shippers.
	HostileDupStorm HostileProfile = "dupstorm"
)

// HostileProfiles lists every profile, in flag-documentation order.
func HostileProfiles() []HostileProfile {
	return []HostileProfile{HostileBurst, HostileSkew, HostileChurn, HostileDupStorm}
}

// Known reports whether p names a defined profile.
func (p HostileProfile) Known() bool {
	switch p {
	case HostileBurst, HostileSkew, HostileChurn, HostileDupStorm:
		return true
	}
	return false
}

// HostileFlagDoc is the -hostile usage string shared by the CLIs.
var HostileFlagDoc = fmt.Sprintf("hostile traffic profile (one of %v; empty for none)", HostileProfiles())

// TimeOnly reports whether the profile changes only arrival shape
// (timestamps and stream order), never the per-session record content.
// Time-only profiles are safe to hold to the detection-accuracy floors,
// because detection is order-based and never consults timestamps;
// duplicate-injecting profiles legitimately change what the detector
// sees, so they are held to the differential oracle only.
func (p HostileProfile) TimeOnly() bool { return p != HostileDupStorm }

// ApplyHostile reshapes a corpus stream under the profile, deterministic
// in (profile, seed). The input is not mutated. Per-session record order
// is always preserved; per-session timestamps stay monotonic. An unknown
// or empty profile returns a copy of the input unchanged.
func ApplyHostile(p HostileProfile, recs []logging.Record, seed int64) []logging.Record {
	out := append([]logging.Record(nil), recs...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	switch p {
	case HostileBurst:
		applyBurst(out, rng)
	case HostileSkew:
		applySkew(out, rng)
	case HostileChurn:
		out = applyChurn(out, rng)
	case HostileDupStorm:
		out = applyDupStorm(out, rng)
	}
	return out
}

// applyBurst rewrites timestamps in place: runs of 40–240 records land
// microseconds apart, then the clock jumps one to ten minutes. Stream
// order is untouched, and the new clock is globally monotonic, so every
// session's internal order and monotonicity survive.
func applyBurst(recs []logging.Record, rng *rand.Rand) {
	clock := recs[0].Time
	i := 0
	for i < len(recs) {
		n := 40 + rng.Intn(200)
		if i+n > len(recs) {
			n = len(recs) - i
		}
		for j := 0; j < n; j++ {
			clock = clock.Add(time.Duration(50+rng.Intn(2000)) * time.Microsecond)
			recs[i+j].Time = clock
		}
		i += n
		clock = clock.Add(time.Duration(1+rng.Intn(10)) * time.Minute)
	}
}

// applySkew adds a per-session clock offset drawn in [-36h, +36h], in
// first-appearance order so the draw sequence is deterministic. Stream
// order is untouched: the merged stream now arrives wildly out of
// timestamp order and spans several days, but each session's own clock
// only shifts, staying monotonic.
func applySkew(recs []logging.Record, rng *rand.Rand) {
	offsets := make(map[string]time.Duration)
	for i := range recs {
		off, ok := offsets[recs[i].SessionID]
		if !ok {
			off = time.Duration(rng.Int63n(int64(72*time.Hour))) - 36*time.Hour
			offsets[recs[i].SessionID] = off
		}
		recs[i].Time = recs[i].Time.Add(off)
	}
}

// applyChurn rebuilds the stream as contiguous per-session blocks in
// first-appearance order: each tenant connects, logs its whole session
// within a few seconds, and disconnects before the next appears.
func applyChurn(recs []logging.Record, rng *rand.Rand) []logging.Record {
	index := make(map[string]int)
	var blocks [][]logging.Record
	for _, r := range recs {
		i, ok := index[r.SessionID]
		if !ok {
			i = len(blocks)
			index[r.SessionID] = i
			blocks = append(blocks, nil)
		}
		blocks[i] = append(blocks[i], r)
	}
	out := recs[:0]
	clock := recs[0].Time
	for _, block := range blocks {
		for i := range block {
			clock = clock.Add(time.Duration(1+rng.Intn(20)) * time.Millisecond)
			block[i].Time = clock
			out = append(out, block[i])
		}
		clock = clock.Add(time.Duration(200+rng.Intn(2000)) * time.Millisecond)
	}
	return out
}

// applyDupStorm re-emits records: a steady ~7% duplicate rate (each
// duplicated record repeated 1–3 extra times) plus, roughly every 400
// records, a storm repeating one line 20–49 more times. Duplicates keep
// the original timestamp, the way a replaying shipper would resend them.
func applyDupStorm(recs []logging.Record, rng *rand.Rand) []logging.Record {
	out := make([]logging.Record, 0, len(recs)+len(recs)/4)
	for i, r := range recs {
		out = append(out, r)
		if rng.Intn(15) == 0 {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				out = append(out, r)
			}
		}
		if i > 0 && i%400 == 0 {
			for n := 20 + rng.Intn(30); n > 0; n-- {
				out = append(out, r)
			}
		}
	}
	return out
}
