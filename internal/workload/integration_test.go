package workload

import (
	"testing"

	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
)

// trainModel trains IntelLog on n clean jobs of a framework.
func trainModel(t *testing.T, fw logging.Framework, n int) (*core.Model, *Generator) {
	t.Helper()
	cluster := sim.NewCluster(8, 1)
	gen := NewGenerator(cluster, 2)
	sessions := gen.TrainingCorpus(fw, n)
	if len(sessions) == 0 {
		t.Fatal("no training sessions")
	}
	return core.Train(sessions, core.Config{}), gen
}

func jobDetected(m *core.Model, res *sim.JobResult) bool {
	report := m.Detect(res.Sessions)
	return len(report.Anomalies) > 0
}

func TestSparkCleanJobsNoFalsePositives(t *testing.T) {
	m, gen := trainModel(t, logging.Spark, 12)
	fp := 0
	for i := 0; i < 5; i++ {
		res := gen.Submit(logging.Spark, sim.FaultNone)
		if jobDetected(m, res) {
			report := m.Detect(res.Sessions)
			for _, a := range report.Anomalies[:minInt(5, len(report.Anomalies))] {
				t.Logf("FP anomaly: %s group=%s %s", a.Kind, a.Group, a.Detail)
			}
			fp++
		}
	}
	if fp > 1 {
		t.Errorf("%d/5 clean Spark jobs flagged", fp)
	}
}

func TestSparkFaultsDetected(t *testing.T) {
	m, gen := trainModel(t, logging.Spark, 12)
	for _, fault := range []sim.FaultKind{sim.FaultKill, sim.FaultNetwork, sim.FaultNode, sim.FaultSpill, sim.FaultIdleContainers} {
		res := gen.Submit(logging.Spark, fault)
		if !jobDetected(m, res) {
			t.Errorf("Spark %s fault not detected", fault)
		}
	}
}

func TestMapReduceFaultsDetected(t *testing.T) {
	m, gen := trainModel(t, logging.MapReduce, 10)
	fp := 0
	for i := 0; i < 3; i++ {
		if jobDetected(m, gen.Submit(logging.MapReduce, sim.FaultNone)) {
			fp++
		}
	}
	if fp > 1 {
		t.Errorf("%d/3 clean MR jobs flagged", fp)
	}
	for _, fault := range []sim.FaultKind{sim.FaultKill, sim.FaultNetwork, sim.FaultNode} {
		res := gen.Submit(logging.MapReduce, fault)
		if !jobDetected(m, res) {
			t.Errorf("MR %s fault not detected", fault)
		}
	}
}

func TestTezFaultsDetected(t *testing.T) {
	m, gen := trainModel(t, logging.Tez, 10)
	fp := 0
	for i := 0; i < 3; i++ {
		if jobDetected(m, gen.Submit(logging.Tez, sim.FaultNone)) {
			fp++
		}
	}
	if fp > 1 {
		t.Errorf("%d/3 clean Tez jobs flagged", fp)
	}
	for _, fault := range []sim.FaultKind{sim.FaultKill, sim.FaultNetwork, sim.FaultSpill} {
		res := gen.Submit(logging.Tez, fault)
		if !jobDetected(m, res) {
			t.Errorf("Tez %s fault not detected", fault)
		}
	}
}

func TestGeneratorDrawsFromSuites(t *testing.T) {
	gen := NewGenerator(sim.NewCluster(4, 5), 6)
	seenSpark := map[string]bool{}
	seenTez := map[string]bool{}
	for i := 0; i < 40; i++ {
		seenSpark[gen.RandomSpec(logging.Spark).Name] = true
		seenTez[gen.RandomSpec(logging.Tez).Name] = true
	}
	if len(seenSpark) < 4 {
		t.Errorf("Spark job diversity too low: %v", seenSpark)
	}
	if len(seenTez) < 4 {
		t.Errorf("Tez query diversity too low: %v", seenTez)
	}
	for name := range seenTez {
		if name[:5] != "Query" {
			t.Errorf("Tez drew non-TPC-H job %q", name)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestFaultMatrix exercises every framework × fault combination once and
// asserts job-level detection for the disruptive faults.
func TestFaultMatrix(t *testing.T) {
	frameworks := []logging.Framework{logging.Spark, logging.MapReduce, logging.Tez, logging.TensorFlow}
	disruptive := []sim.FaultKind{sim.FaultKill, sim.FaultNetwork, sim.FaultNode}
	for _, fw := range frameworks {
		m, gen := trainModel(t, fw, 10)
		for _, fault := range disruptive {
			res := gen.Submit(fw, fault)
			if len(res.Affected) == 0 {
				t.Errorf("%s/%s: fault affected no sessions", fw, fault)
				continue
			}
			if !jobDetected(m, res) {
				t.Errorf("%s/%s: not detected", fw, fault)
			}
		}
	}
}

func TestTensorFlowCleanNoFP(t *testing.T) {
	m, gen := trainModel(t, logging.TensorFlow, 10)
	fp := 0
	for i := 0; i < 4; i++ {
		if jobDetected(m, gen.Submit(logging.TensorFlow, sim.FaultNone)) {
			fp++
		}
	}
	if fp > 1 {
		t.Errorf("%d/4 clean TF jobs flagged", fp)
	}
}
