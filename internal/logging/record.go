// Package logging defines the log record model shared by every stage of
// IntelLog: raw log lines, parsed records, and sessions (the unit of
// analysis, one session per YARN container).
package logging

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Level is a syslog-style severity recorded on each log line.
type Level int

// Severity levels in increasing order of importance.
const (
	Trace Level = iota
	Debug
	Info
	Warn
	Error
	Fatal
)

var levelNames = [...]string{"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "FATAL"}

// String returns the upper-case level name used in log files.
func (l Level) String() string {
	if l < Trace || l > Fatal {
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
	return levelNames[l]
}

// ParseLevel maps a level name (any case) to a Level. Unknown names map to
// Info, the overwhelmingly common default in analytics-system logs.
func ParseLevel(s string) Level {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "TRACE":
		return Trace
	case "DEBUG":
		return Debug
	case "WARN", "WARNING":
		return Warn
	case "ERROR":
		return Error
	case "FATAL":
		return Fatal
	default:
		return Info
	}
}

// Framework identifies which targeted system produced a log line.
type Framework string

// Frameworks targeted by this implementation, mirroring the paper's
// deployment (three analytics systems managed by YARN) plus the
// nova-compute corpus used in Table 1.
const (
	Spark       Framework = "spark"
	MapReduce   Framework = "mapreduce"
	Tez         Framework = "tez"
	Yarn        Framework = "yarn"
	NovaCompute Framework = "nova-compute"
	// TensorFlow implements the paper's §9 future work: extending IntelLog
	// to distributed machine-learning systems.
	TensorFlow Framework = "tensorflow"
	// Flink covers streaming dataflow jobs: a JobManager plus TaskManager
	// containers whose sessions center on the checkpointing lifecycle.
	Flink Framework = "flink"
	// HDFS covers datanode logs: block write pipelines, packet
	// responders, scanners and heartbeats — also the layout family of the
	// public LogHub HDFS corpus (see internal/corpus).
	HDFS Framework = "hdfs"
	// YarnRM covers ResourceManager HA pairs: leader election,
	// active/standby transitions and failover recovery. Distinct from
	// Yarn (the per-container NM/RM daemon chatter of Table 1) — YarnRM
	// sessions are the RM instances themselves.
	YarnRM Framework = "yarn-rm"
)

// Known reports whether fw is one of the frameworks above. Callers that
// accept framework names from the outside (e.g. the ingest API) must
// check it before FormatterFor, whose default case would otherwise
// silently parse an unknown name with the Hadoop layout.
func (fw Framework) Known() bool {
	switch fw {
	case Spark, MapReduce, Tez, Yarn, NovaCompute, TensorFlow, Flink, HDFS, YarnRM:
		return true
	}
	return false
}

// Record is one parsed log message.
type Record struct {
	// Time is the log timestamp.
	Time time.Time
	// Level is the severity parsed from the line.
	Level Level
	// Source is the logging component, e.g. "BlockManager" for Spark or a
	// fully qualified class for Hadoop.
	Source string
	// Message is the free-text body of the line (after the header fields).
	Message string
	// Framework identifies the producing system.
	Framework Framework
	// SessionID identifies the YARN container (= session) that wrote the
	// line; empty if the producing daemon is not containerised.
	SessionID string

	// TemplateID is ground-truth metadata set by the simulator: the ID of
	// the template that generated the message. It is never consulted by the
	// analysis pipeline; experiments use it to score extraction accuracy.
	TemplateID string
}

// Session is the unit IntelLog analyses: the ordered log of one YARN
// container (§5 of the paper).
type Session struct {
	// ID is the container ID.
	ID string
	// Framework is the system that ran inside the container.
	Framework Framework
	// Records holds the session's log messages in emission order.
	Records []Record
}

// Len returns the number of log messages in the session.
func (s *Session) Len() int { return len(s.Records) }

// Messages returns just the message bodies, in order.
func (s *Session) Messages() []string {
	out := make([]string, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Message
	}
	return out
}

// Span returns the first and last timestamps of the session. A session with
// no records returns two zero times.
func (s *Session) Span() (first, last time.Time) {
	if len(s.Records) == 0 {
		return
	}
	return s.Records[0].Time, s.Records[len(s.Records)-1].Time
}

// GroupSessions partitions records by SessionID, preserving record order
// within each session and ordering sessions by the time of their first
// record (ties keep first-appearance order, so the sort is stable under
// interleaving). Records with an empty SessionID are grouped under "".
func GroupSessions(records []Record) []*Session {
	index := make(map[string]*Session)
	var order []*Session
	for _, r := range records {
		s, ok := index[r.SessionID]
		if !ok {
			s = &Session{ID: r.SessionID, Framework: r.Framework}
			index[r.SessionID] = s
			order = append(order, s)
		}
		s.Records = append(s.Records, r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Records[0].Time.Before(order[j].Records[0].Time)
	})
	return order
}
