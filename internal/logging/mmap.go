//go:build unix

package logging

import (
	"os"
	"syscall"
)

// MapFile maps path read-only into memory and returns the file's bytes
// as a view over the mapping. The mapping is deliberately never
// unmapped: batch inputs are read once per process and every Record
// parsed out of them (see ParseLinesBytes) references the mapped bytes
// directly, so the mapping's lifetime is the process's. Compared to
// ReadFile + string conversion the file's bytes are never copied onto
// the heap at all — the page cache is the buffer.
//
// An empty file (or an unmappable one, e.g. a pipe) falls back to an
// ordinary read, which satisfies the same immutable-forever contract.
func MapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return os.ReadFile(path)
	}
	return data, nil
}
