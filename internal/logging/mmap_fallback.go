//go:build !unix

package logging

import "os"

// MapFile reads path into memory on platforms without mmap support.
// The returned bytes satisfy the same contract as the mapped variant:
// immutable for the life of the process.
func MapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
