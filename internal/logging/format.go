package logging

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"time"
	"unsafe"
)

// Formatter converts between raw log lines and Records for one framework's
// on-disk log format. The paper implements these as small pattern-matching
// front-ends (§5); new systems plug in by adding a Formatter.
type Formatter interface {
	// Parse converts one raw line into a Record. ok is false for lines that
	// do not match the format (e.g. stack-trace continuations), which
	// callers append to the previous record or skip.
	Parse(line string) (rec Record, ok bool)
	// Render converts a Record back into the framework's raw line format.
	Render(rec Record) string
}

// hadoopLayout is the log4j timestamp used by Hadoop, Tez and YARN.
const hadoopLayout = "2006-01-02 15:04:05,000"

// sparkLayout is Spark's default conversion pattern timestamp.
const sparkLayout = "06/01/02 15:04:05"

// novaLayout is the oslo.log timestamp used by OpenStack services.
const novaLayout = "2006-01-02 15:04:05.000"

var (
	hadoopLine = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}) (TRACE|DEBUG|INFO|WARN|ERROR|FATAL) \[([^\]]*)\] (\S+): (.*)$`)
	sparkLine  = regexp.MustCompile(`^(\d{2}/\d{2}/\d{2} \d{2}:\d{2}:\d{2}) (TRACE|DEBUG|INFO|WARN|ERROR|FATAL) ([^:]+): (.*)$`)
	novaLine   = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3}) (\d+) (TRACE|DEBUG|INFO|WARNING|ERROR|CRITICAL) (\S+) (?:\[([^\]]*)\] )?(.*)$`)
	tfLine     = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{6}): ([IWEF]) (\S+)\] (.*)$`)
	flinkLine  = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}) (TRACE|DEBUG|INFO|WARN|ERROR|FATAL) +(\S+) +- (.*)$`)
)

// FlinkFormatter parses Flink's default log4j conversion pattern
// (`%d %-5p %-60c %x - %m`):
//
//	2019-03-01 12:00:00,123 INFO  org.apache.flink.runtime.checkpoint.CheckpointCoordinator - message
type FlinkFormatter struct{}

// Parse implements Formatter.
func (FlinkFormatter) Parse(line string) (Record, bool) {
	m := flinkLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	t, err := time.Parse(hadoopLayout, m[1])
	if err != nil {
		return Record{}, false
	}
	return Record{
		Time:      t,
		Level:     ParseLevel(m[2]),
		Source:    m[3],
		Message:   m[4],
		Framework: Flink,
	}, true
}

// Render implements Formatter. The level is left-padded to five columns,
// matching log4j's %-5p.
func (FlinkFormatter) Render(rec Record) string {
	return fmt.Sprintf("%s %-5s %s - %s",
		rec.Time.Format(hadoopLayout), rec.Level, rec.Source, rec.Message)
}

// tfLayout is the absl/glog timestamp TensorFlow uses.
const tfLayout = "2006-01-02 15:04:05.000000"

// TFFormatter parses TensorFlow's glog-style layout:
//
//	2019-03-01 12:00:00.123456: I tensorflow/core/distributed_runtime/master.cc:267] message
type TFFormatter struct{}

// Parse implements Formatter.
func (TFFormatter) Parse(line string) (Record, bool) {
	m := tfLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	t, err := time.Parse(tfLayout, m[1])
	if err != nil {
		return Record{}, false
	}
	lvl := Info
	switch m[2] {
	case "W":
		lvl = Warn
	case "E":
		lvl = Error
	case "F":
		lvl = Fatal
	}
	return Record{
		Time: t, Level: lvl, Source: m[3], Message: m[4], Framework: TensorFlow,
	}, true
}

// Render implements Formatter.
func (TFFormatter) Render(rec Record) string {
	letter := "I"
	switch rec.Level {
	case Warn:
		letter = "W"
	case Error:
		letter = "E"
	case Fatal:
		letter = "F"
	}
	return fmt.Sprintf("%s: %s %s] %s",
		rec.Time.Format(tfLayout), letter, rec.Source, rec.Message)
}

// HadoopFormatter parses the log4j layout shared by Hadoop MapReduce, Tez
// and the YARN daemons:
//
//	2019-03-01 12:00:00,123 INFO [thread] org.apache.hadoop.mapred.MapTask: message
type HadoopFormatter struct {
	// Framework is stamped onto parsed records (MapReduce, Tez or Yarn).
	Framework Framework
}

// Parse implements Formatter.
func (f HadoopFormatter) Parse(line string) (Record, bool) {
	m := hadoopLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	t, err := time.Parse(hadoopLayout, m[1])
	if err != nil {
		return Record{}, false
	}
	return Record{
		Time:      t,
		Level:     ParseLevel(m[2]),
		Source:    m[4],
		Message:   m[5],
		Framework: f.Framework,
	}, true
}

// Render implements Formatter. The thread field is rendered as "main"; the
// analysis pipeline never consults it.
func (f HadoopFormatter) Render(rec Record) string {
	return fmt.Sprintf("%s %s [main] %s: %s",
		rec.Time.Format(hadoopLayout), rec.Level, rec.Source, rec.Message)
}

// SparkFormatter parses Spark's default console layout:
//
//	19/03/01 12:00:00 INFO BlockManager: message
type SparkFormatter struct{}

// Parse implements Formatter.
func (SparkFormatter) Parse(line string) (Record, bool) {
	m := sparkLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	t, err := time.Parse(sparkLayout, m[1])
	if err != nil {
		return Record{}, false
	}
	return Record{
		Time:      t,
		Level:     ParseLevel(m[2]),
		Source:    strings.TrimSpace(m[3]),
		Message:   m[4],
		Framework: Spark,
	}, true
}

// Render implements Formatter.
func (SparkFormatter) Render(rec Record) string {
	return fmt.Sprintf("%s %s %s: %s",
		rec.Time.Format(sparkLayout), rec.Level, rec.Source, rec.Message)
}

// NovaFormatter parses the oslo.log layout of OpenStack nova-compute:
//
//	2019-03-01 12:00:00.123 4392 INFO nova.compute.manager [req-...] message
type NovaFormatter struct{}

// Parse implements Formatter.
func (NovaFormatter) Parse(line string) (Record, bool) {
	m := novaLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	t, err := time.Parse(novaLayout, m[1])
	if err != nil {
		return Record{}, false
	}
	return Record{
		Time:      t,
		Level:     ParseLevel(m[3]),
		Source:    m[4],
		Message:   m[6],
		Framework: NovaCompute,
	}, true
}

// Render implements Formatter.
func (NovaFormatter) Render(rec Record) string {
	return fmt.Sprintf("%s 4392 %s %s [req-0] %s",
		rec.Time.Format(novaLayout), rec.Level, rec.Source, rec.Message)
}

// FormatterFor returns the Formatter for a framework. HDFS and the
// ResourceManager share Hadoop's log4j layout; only the stamped
// Framework differs.
func FormatterFor(fw Framework) Formatter {
	switch fw {
	case Spark:
		return SparkFormatter{}
	case NovaCompute:
		return NovaFormatter{}
	case TensorFlow:
		return TFFormatter{}
	case Flink:
		return FlinkFormatter{}
	default:
		return HadoopFormatter{Framework: fw}
	}
}

// ParseLines parses a raw log file's lines with the given formatter.
// Non-matching lines (stack traces, wrapped messages) are appended to the
// message of the preceding record, matching how log collectors treat
// multi-line events; leading non-matching lines are dropped.
func ParseLines(f Formatter, lines []string) []Record {
	var out []Record
	for _, line := range lines {
		if line == "" {
			continue
		}
		if rec, ok := f.Parse(line); ok {
			out = append(out, rec)
			continue
		}
		if len(out) > 0 {
			out[len(out)-1].Message += "\n" + line
		}
	}
	return out
}

// ParseLinesBytes is ParseLines over a raw file image, producing
// byte-identical records without materializing a lines slice: each line
// is handed to the formatter as a zero-copy string view into data.
// data must stay live and unmodified for as long as the records (and
// anything derived from them) are in use — MapFile's process-lifetime
// mappings guarantee exactly that, which is what makes the view safe.
func ParseLinesBytes(f Formatter, data []byte) []Record {
	var out []Record
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i]
			data = data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		s := unsafe.String(&line[0], len(line))
		if rec, ok := f.Parse(s); ok {
			out = append(out, rec)
			continue
		}
		if len(out) > 0 {
			out[len(out)-1].Message += "\n" + s
		}
	}
	return out
}
