package logging

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestParseLinesBytesDifferential pins the zero-copy parser to the
// string parser, edge by edge: continuation lines, blank lines, leading
// junk, missing trailing newline and invalid UTF-8 must all come out
// byte-identical.
func TestParseLinesBytesDifferential(t *testing.T) {
	cases := []struct {
		name string
		fw   Framework
		text string
	}{
		{"empty", Spark, ""},
		{"newline only", Spark, "\n\n\n"},
		{"single line no newline", Spark,
			"19/03/01 12:00:00 INFO BlockManager: Registering block manager"},
		{"trailing newline", Spark,
			"19/03/01 12:00:00 INFO BlockManager: Registering block manager\n"},
		{"continuation lines", Spark,
			"19/03/01 12:00:00 ERROR Executor: Exception in task 0.0\n" +
				"java.io.IOException: Connection reset\n" +
				"\tat java.net.SocketInputStream.read\n" +
				"19/03/01 12:00:01 INFO Executor: Finished task 0.0\n"},
		{"leading junk dropped", Spark,
			"not a log line\nanother stray\n" +
				"19/03/01 12:00:00 INFO DAGScheduler: Job 0 finished\n"},
		{"blank lines between records", Spark,
			"19/03/01 12:00:00 INFO A: one\n\n\n19/03/01 12:00:01 INFO B: two\n"},
		{"invalid utf8 in message", Spark,
			"19/03/01 12:00:00 INFO Fetcher: bad bytes \xff\xfe here\n"},
		{"hadoop format", MapReduce,
			"2019-03-01 12:00:00,123 INFO [main] org.apache.hadoop.mapred.MapTask: spill complete\n" +
				"stack continuation\n"},
		{"tez format", Tez,
			"2019-03-01 12:00:00,123 WARN [main] org.apache.tez.dag.app.DAGAppMaster: recovering\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := FormatterFor(tc.fw)
			want := ParseLines(f, strings.Split(tc.text, "\n"))
			got := ParseLinesBytes(f, []byte(tc.text))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ParseLinesBytes diverges from ParseLines\nbytes:  %+v\nstring: %+v", got, want)
			}
		})
	}
}

// TestMapFile checks the mapped reader returns exactly the file's bytes
// and that the empty-file fallback holds.
func TestMapFile(t *testing.T) {
	dir := t.TempDir()
	content := []byte("19/03/01 12:00:00 INFO A: one\nnot a match\n\xff raw bytes")
	path := filepath.Join(dir, "session.log")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(content) {
		t.Fatalf("MapFile = %q, want %q", got, content)
	}

	empty := filepath.Join(dir, "empty.log")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := MapFile(empty); err != nil || len(got) != 0 {
		t.Fatalf("MapFile(empty) = (%q, %v)", got, err)
	}

	if _, err := MapFile(filepath.Join(dir, "missing.log")); err == nil {
		t.Fatal("MapFile(missing) did not error")
	}
}

// TestMapFileParsePipeline runs the full mapped pipeline — MapFile →
// ParseLinesBytes — against ReadFile → ParseLines over the same file,
// proving the zero-copy views produce identical records.
func TestMapFileParsePipeline(t *testing.T) {
	dir := t.TempDir()
	text := "19/03/01 12:00:00 INFO BlockManager: Registering block manager\n" +
		"19/03/01 12:00:01 ERROR Executor: Exception in task 1.0\n" +
		"\tat org.apache.spark.executor.Executor\n" +
		"19/03/01 12:00:02 INFO Executor: Finished task 1.0\n"
	path := filepath.Join(dir, "c1.log")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f := FormatterFor(Spark)
	want := ParseLines(f, strings.Split(text, "\n"))
	data, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := ParseLinesBytes(f, data)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mapped pipeline diverges\nmapped: %+v\nstring: %+v", got, want)
	}
}
