package logging

// Clock-skew / multi-day audit of the sessionizers. The hostile skew
// profile (internal/workload) offsets whole sessions by up to ±36h, so
// an aggregated stream can interleave records whose timestamps disagree
// by days while per-session order stays intact. These tests pin the
// properties GroupSessions and the sticky SessionAssigner must keep
// under that shape: grouping is purely ID-driven, per-session record
// order is arrival order (never re-sorted by timestamp), session
// ordering is deterministic with a stable tie-break, and stickiness
// survives timestamp regressions between records.

import (
	"testing"
	"time"
)

func skewRec(sid string, at time.Time, msg string) Record {
	return Record{Time: at, Level: Info, Source: "src", Message: msg, Framework: Spark, SessionID: sid}
}

// TestGroupSessionsClockSkew: two sessions interleaved record-by-record,
// one running a calendar day behind the other. Grouping must follow the
// stamped IDs, keep each session's arrival order even where timestamps
// regress across the stream, and order sessions by first-record time —
// which under skew is NOT first-appearance order.
func TestGroupSessionsClockSkew(t *testing.T) {
	t0 := time.Date(2019, 3, 4, 12, 0, 0, 0, time.UTC)
	skewed := t0.Add(-24 * time.Hour) // the skewed session lags a full day
	recs := []Record{
		skewRec("ahead", t0, "a0"),
		skewRec("behind", skewed, "b0"),
		skewRec("ahead", t0.Add(time.Second), "a1"),
		skewRec("behind", skewed.Add(time.Second), "b1"),
		skewRec("ahead", t0.Add(2*time.Second), "a2"),
		skewRec("behind", skewed.Add(2*time.Second), "b2"),
	}
	sessions := GroupSessions(recs)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	// "behind" appears second in the stream but starts a day earlier, so
	// it must lead the first-record-time ordering.
	if sessions[0].ID != "behind" || sessions[1].ID != "ahead" {
		t.Fatalf("session order = [%s %s], want [behind ahead]", sessions[0].ID, sessions[1].ID)
	}
	for _, s := range sessions {
		if len(s.Records) != 3 {
			t.Fatalf("session %s has %d records, want 3", s.ID, len(s.Records))
		}
		for i, r := range s.Records {
			want := string(s.ID[0]) + string(rune('0'+i))
			if r.Message != want {
				t.Fatalf("session %s record %d = %q, want %q (arrival order lost)", s.ID, i, r.Message, want)
			}
		}
	}
}

// TestGroupSessionsMultiDayTie: sessions whose first records carry the
// exact same timestamp (multi-day corpora folded to day boundaries do
// this) must keep first-appearance order — the sort is stable, so equal
// first times cannot flip across runs.
func TestGroupSessionsMultiDayTie(t *testing.T) {
	t0 := time.Date(2019, 3, 4, 0, 0, 0, 0, time.UTC)
	var recs []Record
	ids := []string{"s3", "s1", "s2"}
	for day, sid := range ids {
		recs = append(recs, skewRec(sid, t0, "first"))
		recs = append(recs, skewRec(sid, t0.Add(time.Duration(day+1)*24*time.Hour), "later"))
	}
	sessions := GroupSessions(recs)
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	for i, want := range ids {
		if sessions[i].ID != want {
			t.Fatalf("tie-broken order[%d] = %s, want %s (first-appearance order lost)", i, sessions[i].ID, want)
		}
	}
}

// TestAssignerStickyAcrossTimestampRegression: stickiness is an order
// property, not a time property. A record whose timestamp jumps back a
// day (skewed session interleaved mid-stream) must not reset or confuse
// the sticky state, and ID-less records keep attributing to the most
// recent extractable session regardless of time travel.
func TestAssignerStickyAcrossTimestampRegression(t *testing.T) {
	byPrefix := func(r *Record) string {
		if len(r.Message) > 0 && r.Message[0] == '#' {
			return r.Message[1:3]
		}
		return ""
	}
	t0 := time.Date(2019, 3, 4, 12, 0, 0, 0, time.UTC)
	a := SessionAssigner{Extract: byPrefix}
	stream := []struct {
		rec  Record
		want string
	}{
		{skewRec("", t0, "#s1 start"), "s1"},
		{skewRec("", t0.Add(-36*time.Hour), "continuation, no id"), "s1"},
		{skewRec("", t0.Add(time.Hour), "#s2 start"), "s2"},
		{skewRec("", t0.Add(-48*time.Hour), "skewed continuation"), "s2"},
		{skewRec("", t0.Add(2*time.Hour), "still no id"), "s2"},
	}
	for i, step := range stream {
		rec := step.rec
		if !a.Assign(&rec) {
			t.Fatalf("record %d dropped; a session was already active", i)
		}
		if rec.SessionID != step.want {
			t.Fatalf("record %d assigned to %q, want %q", i, rec.SessionID, step.want)
		}
	}
	if a.Current() != "s2" {
		t.Fatalf("Current() = %q, want s2", a.Current())
	}
}

// TestSplitBySessionSkewEqualsGrouping: splitting an ID-carrying skewed
// stream must agree with GroupSessions on membership — the sticky path
// only differs in session ordering (first appearance vs first-record
// time), which matters for multi-day corpora and is pinned here.
func TestSplitBySessionSkewEqualsGrouping(t *testing.T) {
	t0 := time.Date(2019, 3, 4, 12, 0, 0, 0, time.UTC)
	extract := func(r *Record) string { return r.SessionID }
	recs := []Record{
		skewRec("late", t0, "l0"),
		skewRec("early", t0.Add(-30*time.Hour), "e0"),
		skewRec("late", t0.Add(time.Second), "l1"),
		skewRec("early", t0.Add(-30*time.Hour).Add(time.Second), "e1"),
	}
	split := SplitBySession(recs, extract)
	grouped := GroupSessions(recs)
	if len(split) != 2 || len(grouped) != 2 {
		t.Fatalf("split=%d grouped=%d sessions, want 2 each", len(split), len(grouped))
	}
	// Same membership either way.
	bySplit := map[string]int{}
	for _, s := range split {
		bySplit[s.ID] = len(s.Records)
	}
	for _, g := range grouped {
		if bySplit[g.ID] != len(g.Records) {
			t.Fatalf("session %s: split holds %d records, grouped holds %d", g.ID, bySplit[g.ID], len(g.Records))
		}
	}
	// Ordering contracts diverge deliberately: split is first-appearance,
	// grouped is first-record time.
	if split[0].ID != "late" {
		t.Fatalf("SplitBySession order[0] = %s, want late (first appearance)", split[0].ID)
	}
	if grouped[0].ID != "early" {
		t.Fatalf("GroupSessions order[0] = %s, want early (first-record time)", grouped[0].ID)
	}
}
