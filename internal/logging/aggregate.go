package logging

import "regexp"

// containerIDPattern matches YARN container IDs wherever they appear in a
// log line ("container_1551400000000_0001_01_000002", with or without an
// epoch component).
var containerIDPattern = regexp.MustCompile(`container(?:_e\d+)?_\d{10,13}_\d{4}_\d{2}_\d{6}`)

// SessionIDExtractor derives a session ID from a record, or "" when the
// record carries none.
type SessionIDExtractor func(*Record) string

// ContainerIDExtractor finds a YARN container ID in the record's message
// — the common case for log-aggregation output, where one file interleaves
// many containers' lines, each mentioning its container.
func ContainerIDExtractor(rec *Record) string {
	return containerIDPattern.FindString(rec.Message)
}

// SessionAssigner is the streaming form of SplitBySession: it stamps
// records with a session ID one at a time, carrying the stickiness state
// (records without an extractable ID belong to the most recent session
// seen) across calls. It is the sessionizer of the online pipeline — the
// `intellog stream` subcommand feeds each parsed line through one before
// handing it to the stream detector.
type SessionAssigner struct {
	// Extract derives the session ID; nil uses ContainerIDExtractor.
	Extract SessionIDExtractor

	current string
}

// Resume restores the stickiness state, so a sessionizer rebuilt after a
// checkpoint restore keeps attributing ID-less records to the session
// that was active at the cut instead of dropping them.
func (a *SessionAssigner) Resume(id string) { a.current = id }

// Current returns the session ID that ID-less records currently stick to
// ("" before any session has been seen).
func (a *SessionAssigner) Current() string { return a.current }

// Assign sets rec.SessionID and reports whether the record belongs to any
// session. A false return means no session has been seen yet (leading
// daemon chatter), and the record should be dropped.
func (a *SessionAssigner) Assign(rec *Record) bool {
	extract := a.Extract
	if extract == nil {
		extract = ContainerIDExtractor
	}
	id := extract(rec)
	if id == "" {
		id = a.current
	}
	if id == "" {
		return false
	}
	a.current = id
	rec.SessionID = id
	return true
}

// SplitBySession partitions an aggregated record stream into sessions
// using the extractor. Records without a session ID stick to the session
// of the most recent extractable record (log aggregation interleaves a
// container's block of lines contiguously), or are dropped if none has
// been seen yet. Sessions are ordered by first appearance.
func SplitBySession(records []Record, extract SessionIDExtractor) []*Session {
	assigner := SessionAssigner{Extract: extract}
	index := map[string]*Session{}
	var order []*Session
	for i := range records {
		rec := records[i]
		if !assigner.Assign(&rec) {
			continue
		}
		s, ok := index[rec.SessionID]
		if !ok {
			s = &Session{ID: rec.SessionID, Framework: rec.Framework}
			index[rec.SessionID] = s
			order = append(order, s)
		}
		s.Records = append(s.Records, rec)
	}
	return order
}
