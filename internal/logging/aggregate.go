package logging

import "regexp"

// containerIDPattern matches YARN container IDs wherever they appear in a
// log line ("container_1551400000000_0001_01_000002", with or without an
// epoch component).
var containerIDPattern = regexp.MustCompile(`container(?:_e\d+)?_\d{10,13}_\d{4}_\d{2}_\d{6}`)

// SessionIDExtractor derives a session ID from a record, or "" when the
// record carries none.
type SessionIDExtractor func(*Record) string

// ContainerIDExtractor finds a YARN container ID in the record's message
// — the common case for log-aggregation output, where one file interleaves
// many containers' lines, each mentioning its container.
func ContainerIDExtractor(rec *Record) string {
	return containerIDPattern.FindString(rec.Message)
}

// SplitBySession partitions an aggregated record stream into sessions
// using the extractor. Records without a session ID stick to the session
// of the most recent extractable record (log aggregation interleaves a
// container's block of lines contiguously), or are dropped if none has
// been seen yet. Sessions are ordered by first appearance.
func SplitBySession(records []Record, extract SessionIDExtractor) []*Session {
	if extract == nil {
		extract = ContainerIDExtractor
	}
	index := map[string]*Session{}
	var order []*Session
	current := ""
	for i := range records {
		id := extract(&records[i])
		if id == "" {
			id = current
		}
		if id == "" {
			continue
		}
		current = id
		s, ok := index[id]
		if !ok {
			s = &Session{ID: id, Framework: records[i].Framework}
			index[id] = s
			order = append(order, s)
		}
		rec := records[i]
		rec.SessionID = id
		s.Records = append(s.Records, rec)
	}
	return order
}
