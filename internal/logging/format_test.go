package logging

import (
	"strings"
	"testing"
	"time"
)

func mustTime(t *testing.T, layout, s string) time.Time {
	t.Helper()
	tm, err := time.Parse(layout, s)
	if err != nil {
		t.Fatalf("parse time %q: %v", s, err)
	}
	return tm
}

func TestHadoopFormatterParse(t *testing.T) {
	f := HadoopFormatter{Framework: MapReduce}
	line := "2019-03-01 12:00:00,123 INFO [fetcher#1] org.apache.hadoop.mapreduce.task.reduce.Fetcher: fetcher#1 about to shuffle output of map attempt_01"
	rec, ok := f.Parse(line)
	if !ok {
		t.Fatalf("Parse(%q) failed", line)
	}
	if rec.Level != Info {
		t.Errorf("Level = %v, want Info", rec.Level)
	}
	if rec.Source != "org.apache.hadoop.mapreduce.task.reduce.Fetcher" {
		t.Errorf("Source = %q", rec.Source)
	}
	if rec.Message != "fetcher#1 about to shuffle output of map attempt_01" {
		t.Errorf("Message = %q", rec.Message)
	}
	want := mustTime(t, hadoopLayout, "2019-03-01 12:00:00,123")
	if !rec.Time.Equal(want) {
		t.Errorf("Time = %v, want %v", rec.Time, want)
	}
	if rec.Framework != MapReduce {
		t.Errorf("Framework = %v, want mapreduce", rec.Framework)
	}
}

func TestHadoopFormatterRoundTrip(t *testing.T) {
	f := HadoopFormatter{Framework: Tez}
	in := Record{
		Time:      mustTime(t, hadoopLayout, "2019-06-22 08:01:02,007"),
		Level:     Warn,
		Source:    "org.apache.tez.runtime.task.TezTaskRunner",
		Message:   "Task attempt attempt_1 failed",
		Framework: Tez,
	}
	out, ok := f.Parse(f.Render(in))
	if !ok {
		t.Fatal("round-trip parse failed")
	}
	if out.Message != in.Message || out.Level != in.Level || out.Source != in.Source || !out.Time.Equal(in.Time) {
		t.Errorf("round trip mismatch: got %+v want %+v", out, in)
	}
}

func TestSparkFormatterRoundTrip(t *testing.T) {
	f := SparkFormatter{}
	in := Record{
		Time:      mustTime(t, sparkLayout, "19/03/01 12:00:00"),
		Level:     Info,
		Source:    "BlockManager",
		Message:   "Registering BlockManager BlockManagerId(1, host1, 38211, None)",
		Framework: Spark,
	}
	out, ok := f.Parse(f.Render(in))
	if !ok {
		t.Fatal("round-trip parse failed")
	}
	if out.Message != in.Message || out.Source != in.Source || !out.Time.Equal(in.Time) {
		t.Errorf("round trip mismatch: got %+v want %+v", out, in)
	}
}

func TestNovaFormatterParse(t *testing.T) {
	f := NovaFormatter{}
	line := "2019-03-01 12:00:00.123 4392 INFO nova.compute.manager [req-abc 1 2] Took 12.07 seconds to build instance."
	rec, ok := f.Parse(line)
	if !ok {
		t.Fatalf("Parse(%q) failed", line)
	}
	if rec.Source != "nova.compute.manager" {
		t.Errorf("Source = %q", rec.Source)
	}
	if rec.Message != "Took 12.07 seconds to build instance." {
		t.Errorf("Message = %q", rec.Message)
	}
	if rec.Framework != NovaCompute {
		t.Errorf("Framework = %v", rec.Framework)
	}
}

func TestNovaFormatterWarningLevel(t *testing.T) {
	f := NovaFormatter{}
	line := "2019-03-01 12:00:00.123 4392 WARNING nova.compute.manager [req-abc] Instance shutdown by itself."
	rec, ok := f.Parse(line)
	if !ok {
		t.Fatal("parse failed")
	}
	if rec.Level != Warn {
		t.Errorf("Level = %v, want Warn", rec.Level)
	}
}

func TestParseLinesMultiline(t *testing.T) {
	f := SparkFormatter{}
	lines := []string{
		"19/03/01 12:00:00 ERROR Executor: Exception in task 0.0 in stage 1.0 (TID 4)",
		"java.io.IOException: Connection reset by peer",
		"\tat sun.nio.ch.FileDispatcherImpl.read0(Native Method)",
		"19/03/01 12:00:01 INFO Executor: Finished task 1.0 in stage 1.0 (TID 5). 1109 bytes result sent to driver",
	}
	recs := ParseLines(f, lines)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !strings.Contains(recs[0].Message, "Connection reset by peer") {
		t.Errorf("stack trace not folded into record: %q", recs[0].Message)
	}
	if recs[0].Level != Error {
		t.Errorf("Level = %v, want Error", recs[0].Level)
	}
}

func TestParseLinesDropsLeadingGarbage(t *testing.T) {
	f := SparkFormatter{}
	recs := ParseLines(f, []string{"not a log line", ""})
	if len(recs) != 0 {
		t.Fatalf("got %d records, want 0", len(recs))
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"INFO": Info, "info": Info, "WARN": Warn, "WARNING": Warn,
		"ERROR": Error, "FATAL": Fatal, "DEBUG": Debug, "TRACE": Trace,
		"bogus": Info, "": Info,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Info.String() != "INFO" || Fatal.String() != "FATAL" {
		t.Error("level names wrong")
	}
	if got := Level(42).String(); got != "LEVEL(42)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestGroupSessions(t *testing.T) {
	recs := []Record{
		{SessionID: "c1", Message: "a", Framework: Spark},
		{SessionID: "c2", Message: "b", Framework: Spark},
		{SessionID: "c1", Message: "c", Framework: Spark},
	}
	sessions := GroupSessions(recs)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	if sessions[0].ID != "c1" || sessions[0].Len() != 2 {
		t.Errorf("session 0 = %q len %d, want c1 len 2", sessions[0].ID, sessions[0].Len())
	}
	if got := sessions[0].Messages(); got[0] != "a" || got[1] != "c" {
		t.Errorf("messages out of order: %v", got)
	}
}

// TestGroupSessionsOrdersByFirstRecordTime covers the documented ordering
// contract under out-of-order interleaving: session "late" appears FIRST
// in the record stream but its first record is timestamped after both of
// "early"'s, so it must sort after "early" — first-appearance order is
// only the tie-break.
func TestGroupSessionsOrdersByFirstRecordTime(t *testing.T) {
	t0 := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	recs := []Record{
		{SessionID: "late", Message: "x", Time: t0.Add(10 * time.Second)},
		{SessionID: "early", Message: "a", Time: t0},
		{SessionID: "late", Message: "y", Time: t0.Add(11 * time.Second)},
		{SessionID: "early", Message: "b", Time: t0.Add(12 * time.Second)},
		{SessionID: "tie", Message: "t", Time: t0.Add(10 * time.Second)},
	}
	sessions := GroupSessions(recs)
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	if sessions[0].ID != "early" {
		t.Errorf("first session = %q, want early (earliest first record)", sessions[0].ID)
	}
	// "late" and "tie" share a first-record time; stability keeps stream
	// appearance order ("late" first).
	if sessions[1].ID != "late" || sessions[2].ID != "tie" {
		t.Errorf("tie broken unstably: %q, %q", sessions[1].ID, sessions[2].ID)
	}
	// Record order within a session is still emission order.
	if got := sessions[0].Messages(); got[0] != "a" || got[1] != "b" {
		t.Errorf("early session records reordered: %v", got)
	}
}

func TestSessionSpan(t *testing.T) {
	var s Session
	first, last := s.Span()
	if !first.IsZero() || !last.IsZero() {
		t.Error("empty session should span zero times")
	}
	t0 := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	s.Records = []Record{{Time: t0}, {Time: t0.Add(time.Minute)}}
	first, last = s.Span()
	if !first.Equal(t0) || !last.Equal(t0.Add(time.Minute)) {
		t.Errorf("Span() = %v..%v", first, last)
	}
}

func TestFormatterFor(t *testing.T) {
	if _, ok := FormatterFor(Spark).(SparkFormatter); !ok {
		t.Error("FormatterFor(Spark) not SparkFormatter")
	}
	if _, ok := FormatterFor(NovaCompute).(NovaFormatter); !ok {
		t.Error("FormatterFor(NovaCompute) not NovaFormatter")
	}
	hf, ok := FormatterFor(Yarn).(HadoopFormatter)
	if !ok || hf.Framework != Yarn {
		t.Error("FormatterFor(Yarn) not HadoopFormatter{Yarn}")
	}
}

func TestContainerIDExtractor(t *testing.T) {
	cases := map[string]string{
		"Start request for container container_1551400000000_0001_01_000002 by user h": "container_1551400000000_0001_01_000002",
		"Assigned container_e17_1551400000000_0001_01_000002 to attempt":               "container_e17_1551400000000_0001_01_000002",
		"no id here": "",
	}
	for msg, want := range cases {
		rec := Record{Message: msg}
		if got := ContainerIDExtractor(&rec); got != want {
			t.Errorf("ContainerIDExtractor(%q) = %q, want %q", msg, got, want)
		}
	}
}

func TestSplitBySession(t *testing.T) {
	recs := []Record{
		{Message: "leading line without id"},
		{Message: "Launching container container_1551400000000_0001_01_000001 now"},
		{Message: "some continuation line"},
		{Message: "Launching container container_1551400000000_0001_01_000002 now"},
		{Message: "another continuation"},
		{Message: "back to container_1551400000000_0001_01_000001 again"},
	}
	sessions := SplitBySession(recs, nil)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if sessions[0].Len() != 3 { // launch + continuation + back-to
		t.Errorf("session 1 has %d records, want 3", sessions[0].Len())
	}
	if sessions[1].Len() != 2 {
		t.Errorf("session 2 has %d records, want 2", sessions[1].Len())
	}
	for _, s := range sessions {
		for _, r := range s.Records {
			if r.SessionID != s.ID {
				t.Errorf("record session %q != %q", r.SessionID, s.ID)
			}
		}
	}
}

func TestSplitBySessionCustomExtractor(t *testing.T) {
	recs := []Record{
		{Source: "w1", Message: "a"},
		{Source: "w2", Message: "b"},
		{Source: "w1", Message: "c"},
	}
	bySource := func(r *Record) string { return r.Source }
	sessions := SplitBySession(recs, bySource)
	if len(sessions) != 2 || sessions[0].Len() != 2 {
		t.Errorf("custom extractor sessions wrong: %d", len(sessions))
	}
}
