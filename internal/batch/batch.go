// Package batch is the pooled record-batch lifecycle of the serving hot
// path. The ingest wires (NDJSON and ILS1) decode thousands of batches
// per second, and before this package each batch was a freshly allocated
// []logging.Record that died the moment the detector consumed it —
// steady-state serving spent ~30% of its CPU in the collector walking
// that churn. A Batch instead rents its backing array from a Pool and is
// handed off, owner to owner, along the whole path:
//
//	decode → admission → WAL append → queue placement → ordered apply → Release
//
// exactly one goroutine owns a live Batch at any moment, and the final
// owner returns it to the pool for the next fill.
//
// The backing store is deliberately pointer-sparse: records are stored
// by value, and callers resolve strings through the model's interner /
// lookup cache before appending, so a batch holds canonical string
// references rather than private copies. Releasing does not zero the
// array — the strings a parked batch pins are interned and shared with
// the model anyway, and the next fill overwrites the headers.
//
// The ownership contract is enforced, not documented-and-hoped:
// releasing a batch twice panics (atomically checked, so the panic fires
// under -race too, not instead of it), and a test-mode leak detector
// (DetectLeaks) catches batches that were acquired and then dropped
// without Release — the bug that would silently re-grow GC pressure.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"intellog/internal/logging"
)

// DefaultRecordCap is the backing-array capacity of a freshly allocated
// Batch — sized for the replay client's default 256–512-record batches
// so the first fill takes no growth step. Grow handles bigger batches.
const DefaultRecordCap = 512

// defaultShardCap bounds one shard's parked batches. Shards × cap ×
// DefaultRecordCap records is the pool's worst-case parked footprint
// (~poolShards*32*512 record headers, a few MB); beyond it a released
// batch is surrendered to the GC instead of parked.
const defaultShardCap = 32

// poolShards spreads Get/Put across independent locks. Ingest runs a
// handful of handler goroutines plus the tenant workers, so a small
// fixed fan-out keeps the freelist essentially uncontended without
// per-P machinery.
const poolShards = 8

// Batch is one pooled record batch. Recs is the live fill — callers
// append to it directly (or through Append) and may re-slice it in
// place, e.g. to filter invalid records out before hand-off. The batch
// is single-owner: whoever holds it may touch Recs, and exactly one
// owner must eventually call Release, after which the batch (and any
// view of Recs) must not be touched again.
type Batch struct {
	Recs []logging.Record

	pool *Pool
	// live is 1 between Get and Release; the CAS in Release makes a
	// double release a deterministic panic rather than a data race.
	live atomic.Int32
	// canary, in leak-detect mode, is finalizer-armed so a live batch
	// dropped without Release surfaces as a counted leak (see
	// DetectLeaks). nil outside tests.
	canary *leakCanary
}

// leakCanary is the finalizer target of leak-detect mode. It lives and
// dies with its batch but is a separate allocation, so arming and
// disarming the finalizer never resurrects the batch itself.
type leakCanary struct {
	pool *Pool
	capa int
}

// Pool is a sharded free list of Batches. The zero value is not usable;
// call NewPool. All methods are safe for concurrent use.
type Pool struct {
	shards [poolShards]poolShard
	next   atomic.Uint32 // round-robin shard cursor

	hits        atomic.Uint64 // Get served from the chosen shard
	steals      atomic.Uint64 // Get served from another shard's list
	misses      atomic.Uint64 // Get allocated fresh (every list empty)
	outstanding atomic.Int64  // live batches (Get minus Release)
	leaked      atomic.Uint64 // dropped-without-Release batches (leak-detect mode)

	mu         sync.Mutex
	leakReport func(recordCap int) // test hook, set by DetectLeaks

	recordCap int
	shardCap  int
}

type poolShard struct {
	mu   sync.Mutex
	free []*Batch
	// pad the shard to its own cache line so two shards' locks never
	// false-share.
	_ [40]byte
}

// NewPool builds a pool whose fresh batches start with capacity
// recordCap (0 = DefaultRecordCap).
func NewPool(recordCap int) *Pool {
	if recordCap <= 0 {
		recordCap = DefaultRecordCap
	}
	return &Pool{recordCap: recordCap, shardCap: defaultShardCap}
}

// Get rents a batch with len(Recs) == 0. The caller owns it until it
// either calls Release or hands ownership to exactly one next owner.
func (p *Pool) Get() *Batch {
	idx := p.next.Add(1)
	home := int(idx % poolShards)
	b := p.shards[home].pop()
	switch {
	case b != nil:
		p.hits.Add(1)
	default:
		for i := 1; i < poolShards && b == nil; i++ {
			b = p.shards[(home+i)%poolShards].pop()
		}
		if b != nil {
			p.steals.Add(1)
		} else {
			p.misses.Add(1)
			b = &Batch{Recs: make([]logging.Record, 0, p.recordCap), pool: p}
		}
	}
	b.live.Store(1)
	p.outstanding.Add(1)
	p.armCanary(b)
	return b
}

// Len returns the number of records in the fill.
func (b *Batch) Len() int { return len(b.Recs) }

// Append adds one record to the fill.
func (b *Batch) Append(rec logging.Record) { b.Recs = append(b.Recs, rec) }

// Grow ensures capacity for at least n total records, so a caller with a
// size hint (Content-Length, frame record count) pays at most one growth
// step instead of log₂(n) of them.
func (b *Batch) Grow(n int) {
	if n <= cap(b.Recs) {
		return
	}
	grown := make([]logging.Record, len(b.Recs), n)
	copy(grown, b.Recs)
	b.Recs = grown
}

// Release returns the batch to its pool. It must be called exactly once
// per Get, by whichever owner the batch ended up with; a second call
// panics. After Release the batch and every view of Recs are invalid.
func (b *Batch) Release() {
	if !b.live.CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("batch: double release of %d-cap batch", cap(b.Recs)))
	}
	p := b.pool
	p.outstanding.Add(-1)
	p.disarmCanary(b)
	b.Recs = b.Recs[:0]
	idx := p.next.Add(1)
	if !p.shards[int(idx%poolShards)].push(b, p.shardCap) {
		// Freelist full: surrender the batch to the GC. The canary is
		// already disarmed, so this is not a leak.
		b.pool = nil
	}
}

func (sh *poolShard) pop() *Batch {
	sh.mu.Lock()
	n := len(sh.free)
	if n == 0 {
		sh.mu.Unlock()
		return nil
	}
	b := sh.free[n-1]
	sh.free[n-1] = nil
	sh.free = sh.free[:n-1]
	sh.mu.Unlock()
	return b
}

func (sh *poolShard) push(b *Batch, max int) bool {
	sh.mu.Lock()
	if len(sh.free) >= max {
		sh.mu.Unlock()
		return false
	}
	sh.free = append(sh.free, b)
	sh.mu.Unlock()
	return true
}

// Stats is a point-in-time snapshot of the pool's accounting.
type Stats struct {
	// Hits, Steals and Misses partition every Get: served from the home
	// shard, served from a sibling shard, or freshly allocated.
	Hits, Steals, Misses uint64
	// Outstanding is the number of live batches right now. At quiesce it
	// must be zero; a steadily growing floor is a leak.
	Outstanding int64
	// Leaked counts batches the leak detector saw dropped without
	// Release (always 0 outside DetectLeaks mode).
	Leaked uint64
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:        p.hits.Load(),
		Steals:      p.steals.Load(),
		Misses:      p.misses.Load(),
		Outstanding: p.outstanding.Load(),
		Leaked:      p.leaked.Load(),
	}
}

// DetectLeaks arms the leak detector: from now on every batch carries a
// finalizer-backed canary, and a live batch that becomes unreachable
// without Release increments Stats.Leaked and calls report (which may be
// nil). Test-only — the canary costs two SetFinalizer calls per batch
// lifecycle, which the hot path must not pay; production leak visibility
// is the Outstanding gauge instead.
func (p *Pool) DetectLeaks(report func(recordCap int)) {
	p.mu.Lock()
	if report == nil {
		report = func(int) {}
	}
	p.leakReport = report
	p.mu.Unlock()
}

func (p *Pool) armCanary(b *Batch) {
	p.mu.Lock()
	report := p.leakReport
	p.mu.Unlock()
	if report == nil {
		return
	}
	if b.canary == nil {
		b.canary = &leakCanary{pool: p, capa: cap(b.Recs)}
	}
	b.canary.capa = cap(b.Recs)
	runtime.SetFinalizer(b.canary, func(c *leakCanary) {
		c.pool.leaked.Add(1)
		c.pool.outstanding.Add(-1)
		c.pool.mu.Lock()
		rep := c.pool.leakReport
		c.pool.mu.Unlock()
		if rep != nil {
			rep(c.capa)
		}
	})
}

func (p *Pool) disarmCanary(b *Batch) {
	if b.canary != nil {
		runtime.SetFinalizer(b.canary, nil)
	}
}
