package batch

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"intellog/internal/logging"
)

func TestGetReleaseRecycles(t *testing.T) {
	p := NewPool(8)
	b := p.Get()
	if b.Len() != 0 {
		t.Fatalf("fresh batch has %d records, want 0", b.Len())
	}
	b.Append(logging.Record{Message: "a"})
	b.Append(logging.Record{Message: "b"})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	b.Release()

	got := p.Get()
	if got != b {
		t.Fatalf("second Get did not recycle the released batch")
	}
	if got.Len() != 0 {
		t.Fatalf("recycled batch has %d records, want 0", got.Len())
	}
	got.Release()

	st := p.Stats()
	if st.Misses != 1 || st.Hits+st.Steals != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 hit/steal", st)
	}
	if st.Outstanding != 0 {
		t.Fatalf("outstanding = %d after all releases, want 0", st.Outstanding)
	}
}

func TestGrow(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	defer b.Release()
	b.Append(logging.Record{Message: "keep"})
	b.Grow(1000)
	if cap(b.Recs) < 1000 {
		t.Fatalf("cap = %d after Grow(1000)", cap(b.Recs))
	}
	if b.Len() != 1 || b.Recs[0].Message != "keep" {
		t.Fatalf("Grow lost the fill: %+v", b.Recs)
	}
	// Growing to a smaller size is a no-op.
	prev := cap(b.Recs)
	b.Grow(10)
	if cap(b.Recs) != prev {
		t.Fatalf("Grow(10) changed cap %d -> %d", prev, cap(b.Recs))
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	b.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("double release did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double release") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	b.Release()
}

func TestLeakDetectorCatchesDroppedBatch(t *testing.T) {
	p := NewPool(4)
	leakCh := make(chan int, 1)
	p.DetectLeaks(func(recordCap int) { leakCh <- recordCap })

	// Acquire a batch in a scope the compiler can prove dead, then drop
	// it on the floor without Release.
	func() {
		b := p.Get()
		b.Append(logging.Record{Message: "leaked"})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		select {
		case capa := <-leakCh:
			if capa < 4 {
				t.Fatalf("leak reported cap %d, want >= 4", capa)
			}
			st := p.Stats()
			if st.Leaked != 1 {
				t.Fatalf("Leaked = %d, want 1", st.Leaked)
			}
			if st.Outstanding != 0 {
				t.Fatalf("Outstanding = %d after leak accounting, want 0", st.Outstanding)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak detector never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLeakDetectorSilentOnRelease(t *testing.T) {
	p := NewPool(4)
	p.DetectLeaks(func(recordCap int) {
		t.Errorf("leak reported for a properly released batch (cap %d)", recordCap)
	})
	for i := 0; i < 100; i++ {
		b := p.Get()
		b.Append(logging.Record{Message: "ok"})
		b.Release()
	}
	// Give any stray finalizer a chance to fire before the test ends.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	time.Sleep(20 * time.Millisecond)
	if st := p.Stats(); st.Leaked != 0 {
		t.Fatalf("Leaked = %d, want 0", st.Leaked)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	p := NewPool(16)
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := p.Get()
				for j := 0; j < seed%4+1; j++ {
					b.Append(logging.Record{Message: "m", SessionID: "s"})
				}
				if b.Len() == 0 {
					t.Errorf("empty fill")
				}
				b.Release()
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("outstanding = %d after quiesce, want 0", st.Outstanding)
	}
	if total := st.Hits + st.Steals + st.Misses; total != workers*rounds {
		t.Fatalf("hits+steals+misses = %d, want %d", total, workers*rounds)
	}
	// With heavy reuse the vast majority of Gets must be recycles.
	if st.Misses > workers*poolShards {
		t.Fatalf("misses = %d, pool is not recycling", st.Misses)
	}
}

func TestFreelistBounded(t *testing.T) {
	p := NewPool(4)
	var live []*Batch
	// Far more batches than the freelist can park.
	for i := 0; i < poolShards*defaultShardCap*2; i++ {
		live = append(live, p.Get())
	}
	for _, b := range live {
		b.Release()
	}
	parked := 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		parked += len(p.shards[i].free)
		p.shards[i].mu.Unlock()
	}
	if parked > poolShards*defaultShardCap {
		t.Fatalf("parked %d batches, cap is %d", parked, poolShards*defaultShardCap)
	}
	if st := p.Stats(); st.Outstanding != 0 {
		t.Fatalf("outstanding = %d, want 0", st.Outstanding)
	}
}
