package conformance

import (
	"bytes"
	"testing"

	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/workload"
)

// TestMatrixShape pins the acceptance contract of the corpus matrix: at
// least thirteen corpora, spanning at least six frameworks and at least
// two hostile traffic profiles, with at least one line-fault-injected
// corpus. Shrinking the matrix below that weakens the oracle, so it
// fails here first.
func TestMatrixShape(t *testing.T) {
	matrix := DefaultMatrix()
	if len(matrix) < 13 {
		t.Fatalf("matrix has %d corpora, want ≥ 13", len(matrix))
	}
	faulted := 0
	fws := map[logging.Framework]bool{}
	hostiles := map[workload.HostileProfile]bool{}
	for _, sp := range matrix {
		if sp.LineFaults {
			faulted++
		}
		fws[sp.Framework] = true
		if sp.Hostile != "" {
			if !sp.Hostile.Known() {
				t.Errorf("corpus %s names unknown hostile profile %q", sp.Name, sp.Hostile)
			}
			hostiles[sp.Hostile] = true
		}
	}
	if faulted < 1 {
		t.Errorf("matrix has no line-fault-injected corpus")
	}
	if len(fws) < 6 {
		t.Errorf("matrix spans %d frameworks, want ≥ 6", len(fws))
	}
	if len(hostiles) < 2 {
		t.Errorf("matrix spans %d hostile profiles, want ≥ 2", len(hostiles))
	}
	for _, fw := range []logging.Framework{
		logging.Spark, logging.MapReduce, logging.Tez,
		logging.TensorFlow, logging.Flink, logging.HDFS, logging.YarnRM,
	} {
		if !fws[fw] {
			t.Errorf("matrix misses framework %s", fw)
		}
	}
	gated := 0
	for _, sp := range GatedSpecs() {
		if sp.Hostile != "" {
			gated++
		}
	}
	if gated < 2 {
		t.Errorf("only %d hostile corpora are accuracy-gated, want ≥ 2 (time-only profiles must stay gateable)", gated)
	}
}

// TestCorpusDeterminism: the harness's own contract — a Spec regenerates
// byte-identically, including the perturbed corpora.
func TestCorpusDeterminism(t *testing.T) {
	// Index 0 and 5 cover clean and line-faulted corpora; 12 and 14 cover
	// a time-only hostile profile and dupstorm stacked on line faults.
	for _, sp := range []Spec{DefaultMatrix()[0], DefaultMatrix()[5], DefaultMatrix()[12], DefaultMatrix()[14]} {
		a, b := sp.Generate(), sp.Generate()
		if len(a.Records) != len(b.Records) {
			t.Fatalf("%s: %d vs %d records across regenerations", sp.Name, len(a.Records), len(b.Records))
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("%s: record %d differs across regenerations:\n%+v\n%+v", sp.Name, i, a.Records[i], b.Records[i])
			}
		}
		if len(a.Truth) != len(b.Truth) {
			t.Fatalf("%s: ground truth differs across regenerations", sp.Name)
		}
		for id := range a.Truth {
			if !b.Truth[id] {
				t.Fatalf("%s: ground truth session %s missing on regeneration", sp.Name, id)
			}
		}
	}
}

// TestDifferentialOracle is the tentpole: over every corpus of the
// matrix, batch detection, the streaming detector at 1/4/16 shards and a
// checkpoint/kill/resume run must produce byte-identical canonicalized
// reports.
func TestDifferentialOracle(t *testing.T) {
	for _, sp := range DefaultMatrix() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			c := sp.Generate()
			if len(c.Records) == 0 {
				t.Fatal("empty corpus")
			}
			m := ModelFor(sp.Framework)
			paths, err := RunOracle(m, c.Records, sp.Seed+99)
			if err != nil {
				t.Fatal(err)
			}
			ref := paths[0]
			for _, p := range paths[1:] {
				if !bytes.Equal(p.Canon, ref.Canon) {
					t.Errorf("path %s diverged from %s over %d records:\n%s",
						p.Path, ref.Path, len(c.Records), firstDiff(ref.Canon, p.Canon))
				}
			}
		})
	}
}

// firstDiff renders the first differing canonical line of two reports.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return "line " + itoa(i) + ":\n  want: " + string(al[i]) + "\n  got:  " + string(bl[i])
		}
	}
	return "reports differ in length: " + itoa(len(al)) + " vs " + itoa(len(bl)) + " lines"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestAccuracyGates scores batch detection against the simulator's
// ground truth on the gated corpora and enforces the per-framework
// floors. The measured scores are logged so floor updates stay honest.
func TestAccuracyGates(t *testing.T) {
	for _, sp := range GatedSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			c := sp.Generate()
			m := ModelFor(sp.Framework)
			sessions := c.Sessions()
			score := ScoreReport(m.Detect(sessions), sessions, c.Truth)
			t.Logf("%s: %s", sp.Framework, score)
			gate, ok := DefaultGates[sp.Framework]
			if !ok {
				t.Fatalf("no gate configured for %s", sp.Framework)
			}
			if err := gate.Check(score); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGatesCatchCrippledDetector proves the gates actually bite: a model
// trained with every structural check disabled (no critical keys, no
// hierarchy check, no missing-group check) must land below the recall
// floor and fail the gate. If this test ever passes the gate, the gates
// have gone soft.
func TestGatesCatchCrippledDetector(t *testing.T) {
	sp := GatedSpecs()[0] // spark-faulted
	c := sp.Generate()
	crippled := core.Train(TrainingSessions(sp.Framework), core.Config{
		DisableCriticalKeys:      true,
		DisableHierarchyCheck:    true,
		DisableMissingGroupCheck: true,
	})
	sessions := c.Sessions()
	score := ScoreReport(crippled.Detect(sessions), sessions, c.Truth)
	t.Logf("crippled detector: %s", score)
	if err := DefaultGates[sp.Framework].Check(score); err == nil {
		t.Fatalf("gate passed a detector with all structural checks disabled (%s) — floors are too low", score)
	}
}
