package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/par"
)

// The differential oracle: one record stream, several execution paths,
// one canonical report form. Batch detection, the streaming detector at
// 1/4/16 shards and a checkpoint/kill/resume run must all reduce to the
// same canonical bytes — any divergence means a path changed detection
// semantics.

// Canonicalize renders a report in a canonical byte form: the session
// count plus every anomaly as its JSON encoding, sorted. Emission order
// (which legitimately differs between batch, streaming and resumed runs)
// is erased; everything else — kinds, groups, signatures, offending
// records, extracted fields — must match byte for byte.
func Canonicalize(r *detect.Report) ([]byte, error) {
	lines := make([]string, len(r.Anomalies))
	for i := range r.Anomalies {
		raw, err := json.Marshal(&r.Anomalies[i])
		if err != nil {
			return nil, fmt.Errorf("marshal anomaly: %w", err)
		}
		lines[i] = string(raw)
	}
	sort.Strings(lines)
	out, err := json.MarshalIndent(struct {
		Sessions  int      `json:"sessions"`
		Anomalies []string `json:"anomalies"`
	}{r.Sessions, lines}, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// PathReport is one execution path's canonicalized outcome.
type PathReport struct {
	Path  string
	Canon []byte
}

// BatchPath runs plain batch detection over the stream's session view.
func BatchPath(d *detect.Detector, recs []logging.Record) *detect.Report {
	return d.Detect(logging.GroupSessions(recs))
}

// BatchParallelPath runs sharded batch detection at an explicit shard
// count. The ordered merge must make it byte-identical to BatchPath.
func BatchParallelPath(d *detect.Detector, recs []logging.Record, shards int) *detect.Report {
	return d.DetectParallel(logging.GroupSessions(recs), shards)
}

// StreamBatchPath consumes the stream through the two-stage ConsumeBatch
// pipeline (parallel resolve, ordered apply) in chunks, which must be
// indistinguishable from record-at-a-time Consume.
func StreamBatchPath(d *detect.Detector, recs []logging.Record, chunk, workers int) *detect.Report {
	sd := detect.NewStream(d, detect.StreamConfig{})
	var all []detect.Anomaly
	for len(recs) > 0 {
		n := chunk
		if n > len(recs) {
			n = len(recs)
		}
		all = append(all, sd.ConsumeBatch(recs[:n], workers)...)
		recs = recs[n:]
	}
	rep := sd.Flush()
	all = append(all, rep.Anomalies...)
	return &detect.Report{Sessions: rep.Sessions, Anomalies: all}
}

// StreamPath consumes the stream record by record at the given shard
// count and combines mid-stream findings with the flush report.
func StreamPath(d *detect.Detector, recs []logging.Record, shards int) *detect.Report {
	sd := detect.NewStream(d, detect.StreamConfig{Shards: shards})
	var all []detect.Anomaly
	for _, r := range recs {
		all = append(all, sd.Consume(r)...)
	}
	rep := sd.Flush()
	all = append(all, rep.Anomalies...)
	return &detect.Report{Sessions: rep.Sessions, Anomalies: all}
}

// ResumePath kills the streaming run after cut records, checkpoints it
// through the real persistence layer (model + stream state + cursor, as a
// crash-stopped CLI would), reloads everything from the checkpoint bytes,
// and finishes the stream on the restored detector — the full
// kill/resume story, including the model's JSON round-trip.
func ResumePath(m *core.Model, recs []logging.Record, cut int) (*detect.Report, error) {
	if cut < 0 || cut > len(recs) {
		return nil, fmt.Errorf("cut %d out of range [0,%d]", cut, len(recs))
	}
	first := detect.NewStream(m.Detector(), detect.StreamConfig{})
	var all []detect.Anomaly
	for _, r := range recs[:cut] {
		all = append(all, first.Consume(r)...)
	}

	var buf bytes.Buffer
	if err := core.SaveCheckpointAt(&buf, m, first.State(), int64(cut)); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m2, st, cursor, err := core.LoadCheckpointAt(&buf)
	if err != nil {
		return nil, fmt.Errorf("reload checkpoint: %w", err)
	}
	if cursor != int64(cut) {
		return nil, fmt.Errorf("checkpoint cursor %d, want %d", cursor, cut)
	}
	second, err := m2.RestoreStream(detect.StreamConfig{}, st)
	if err != nil {
		return nil, fmt.Errorf("restore stream: %w", err)
	}

	for _, r := range recs[cursor:] {
		all = append(all, second.Consume(r)...)
	}
	rep := second.Flush()
	all = append(all, rep.Anomalies...)
	return &detect.Report{Sessions: rep.Sessions, Anomalies: all}, nil
}

// OracleShards are the session-shard counts the streaming oracle
// exercises.
var OracleShards = []int{1, 4, 16}

// OracleBatchShards are the worker-shard counts the parallel batch
// oracle exercises: fixed small counts plus the machine's CPU width.
// Every count spawns real goroutines (see par.ForEach), so the ordered
// merge is exercised under genuine concurrency even on small machines.
func OracleBatchShards() []int {
	shards := []int{2, 8}
	if n := par.Workers(); n != 2 && n != 8 {
		shards = append(shards, n)
	}
	return shards
}

// RunOracle runs every execution path over one record stream — batch,
// sharded-parallel batch at OracleBatchShards, streaming at
// OracleShards, chunked two-stage streaming, and kill/resume at a seeded
// random cut — and returns the per-path canonical reports. Callers
// assert every PathReport.Canon equals the first (the batch reference).
func RunOracle(m *core.Model, recs []logging.Record, seed int64) ([]PathReport, error) {
	d := m.Detector()
	var out []PathReport
	add := func(path string, rep *detect.Report) error {
		canon, err := Canonicalize(rep)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, PathReport{Path: path, Canon: canon})
		return nil
	}

	if err := add("batch", BatchPath(d, recs)); err != nil {
		return nil, err
	}
	for _, shards := range OracleBatchShards() {
		if err := add(fmt.Sprintf("batch-par-%d", shards), BatchParallelPath(d, recs, shards)); err != nil {
			return nil, err
		}
	}
	for _, shards := range OracleShards {
		if err := add(fmt.Sprintf("stream-%d", shards), StreamPath(d, recs, shards)); err != nil {
			return nil, err
		}
	}
	if err := add("stream-batched", StreamBatchPath(d, recs, 64, 4)); err != nil {
		return nil, err
	}
	// Randomized (but seeded) cut point: somewhere strictly inside the
	// stream, so both halves do real work.
	cut := 1
	if len(recs) > 2 {
		cut = 1 + rand.New(rand.NewSource(seed)).Intn(len(recs)-1)
	}
	rep, err := ResumePath(m, recs, cut)
	if err != nil {
		return nil, fmt.Errorf("resume at %d: %w", cut, err)
	}
	if err := add(fmt.Sprintf("resume-at-%d", cut), rep); err != nil {
		return nil, err
	}
	return out, nil
}
