package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"intellog/internal/core"
	"intellog/internal/corpus"
	"intellog/internal/logging"
)

// The LogHub-shaped loader corpora join the differential oracle: records
// parsed from real-world line layouts (through the zero-copy byte path)
// must flow through batch, parallel-batch, streaming and kill/resume
// detection identically, exactly like simulated corpora. Models are
// trained on the fixture's own sessions — the point is path equivalence
// over foreign-layout input, not accuracy.

func loadFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "corpus", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLoaderCorporaOracle(t *testing.T) {
	cases := []struct {
		name string
		load func(t *testing.T) corpus.Corpus
	}{
		{"loghub-hdfs", func(t *testing.T) corpus.Corpus {
			return corpus.LoadHDFS(loadFixture(t, "hdfs_sample.log"), loadFixture(t, "hdfs_labels.csv"))
		}},
		{"loghub-bgl", func(t *testing.T) corpus.Corpus {
			return corpus.LoadBGL(loadFixture(t, "bgl_sample.log"))
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := tc.load(t)
			if len(c.Records) == 0 {
				t.Fatal("loader produced no records")
			}
			m := core.Train(c.Sessions(), core.Config{})
			// The unsessionized remainder (namenode lines with no block ID)
			// rides along in the stream, like daemon chatter in production.
			paths, err := RunOracle(m, c.Records, 4242)
			if err != nil {
				t.Fatal(err)
			}
			ref := paths[0]
			for _, p := range paths[1:] {
				if !bytes.Equal(p.Canon, ref.Canon) {
					t.Errorf("path %s diverged from %s over %d loaded records:\n%s",
						p.Path, ref.Path, len(c.Records), firstDiff(ref.Canon, p.Canon))
				}
			}
		})
	}
}

// TestLoaderTruthShape sanity-checks the loaded ground truth against the
// session view the detector scores — every labelled session must exist,
// so loader corpora can be accuracy-scored the way simulated ones are.
func TestLoaderTruthShape(t *testing.T) {
	hdfs := corpus.LoadHDFS(loadFixture(t, "hdfs_sample.log"), loadFixture(t, "hdfs_labels.csv"))
	ids := map[string]bool{}
	for _, s := range hdfs.Sessions() {
		if s.Framework != logging.HDFS {
			t.Fatalf("session %s framework = %q, want %q", s.ID, s.Framework, logging.HDFS)
		}
		ids[s.ID] = true
	}
	for blk := range hdfs.Truth {
		if !ids[blk] {
			t.Errorf("label sidecar names block %s with no records in the fixture", blk)
		}
	}

	bgl := corpus.LoadBGL(loadFixture(t, "bgl_sample.log"))
	anomalous := 0
	for _, bad := range bgl.Truth {
		if bad {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Fatal("BGL fixture carries no alert-labelled nodes; the labelled-corpus path is untested")
	}
}
