package conformance

import (
	"bytes"
	"encoding/json"
	"testing"

	"intellog/internal/analytics"
	"intellog/internal/detect"
)

// The analytics layer inherits the differential oracle's contract: the
// engine's snapshot must be a pure function of the anomaly multiset, so
// feeding it any execution path's report — batch, sharded streaming,
// chunked streaming, or a kill/resume run — must produce byte-identical
// clusters, explanations and rollups.

// analyticsSnapshot feeds one report into a fresh engine and renders
// the canonical snapshot bytes.
func analyticsSnapshot(t *testing.T, c *Corpus, rep *detect.Report) []byte {
	t.Helper()
	m := ModelFor(c.Spec.Framework)
	e := analytics.NewEngine(analytics.Config{}, m.Graph)
	e.ObserveBatch(rep.Anomalies)
	out, err := json.MarshalIndent(e.Snapshot(), "", " ")
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return out
}

// TestAnalyticsDeterminism proves snapshot byte-identity across every
// execution path of every corpus in the matrix, plus a mid-feed
// checkpoint/restore of the engine itself.
func TestAnalyticsDeterminism(t *testing.T) {
	for _, sp := range DefaultMatrix() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			c := sp.Generate()
			m := ModelFor(sp.Framework)

			ref := analyticsSnapshot(t, c, BatchPath(m.Detector(), c.Records))
			paths := map[string]*detect.Report{
				"stream-4":       StreamPath(m.Detector(), c.Records, 4),
				"stream-batched": StreamBatchPath(m.Detector(), c.Records, 64, 4),
			}
			resume, err := ResumePath(m, c.Records, len(c.Records)/2)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			paths["resume"] = resume
			for name, rep := range paths {
				if got := analyticsSnapshot(t, c, rep); !bytes.Equal(got, ref) {
					t.Errorf("%s snapshot diverges from batch (%d vs %d bytes)", name, len(got), len(ref))
				}
			}

			// Kill the engine mid-feed, restore from its serialized state,
			// finish the feed: same bytes as the straight-through run.
			rep := BatchPath(m.Detector(), c.Records)
			cut := len(rep.Anomalies) / 2
			first := analytics.NewEngine(analytics.Config{}, m.Graph)
			first.ObserveBatch(rep.Anomalies[:cut])
			blob, err := first.StateJSON()
			if err != nil {
				t.Fatalf("state: %v", err)
			}
			second, err := analytics.RestoreJSON(analytics.Config{}, m.Graph, blob)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			second.ObserveBatch(rep.Anomalies[cut:])
			got, err := json.MarshalIndent(second.Snapshot(), "", " ")
			if err != nil {
				t.Fatalf("marshal snapshot: %v", err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("restored-engine snapshot diverges from straight-through run")
			}
		})
	}
}

// TestAnalyticsGroundTruth checks the clustering against the
// simulator's fault annotations on three faulted corpora: the anomalies
// from truth-affected sessions must concentrate in one dominant cluster,
// and that cluster's explanation must walk through a group the faulted
// sessions actually implicated.
func TestAnalyticsGroundTruth(t *testing.T) {
	for _, name := range []string{"spark-faulted", "flink-faulted", "hdfs-faulted"} {
		var spec *Spec
		for _, sp := range DefaultMatrix() {
			if sp.Name == name {
				sp := sp
				spec = &sp
				break
			}
		}
		if spec == nil {
			t.Fatalf("corpus %s missing from matrix", name)
		}
		t.Run(name, func(t *testing.T) {
			c := spec.Generate()
			m := ModelFor(spec.Framework)
			rep := BatchPath(m.Detector(), c.Records)
			e := analytics.NewEngine(analytics.Config{}, m.Graph)
			e.ObserveBatch(rep.Anomalies)

			// Count truth-session anomalies per cluster, and collect the
			// groups those anomalies implicate — the faulting subroutines.
			byCluster := map[uint64]int{}
			faultGroups := map[string]bool{}
			total := 0
			for i := range rep.Anomalies {
				a := &rep.Anomalies[i]
				if !c.Truth[a.Session] {
					continue
				}
				total++
				if a.Group != "" {
					faultGroups[a.Group] = true
				}
				if ae := e.Explain(a); ae.ClusterID != 0 {
					byCluster[ae.ClusterID]++
				}
			}
			if total == 0 {
				t.Fatalf("no anomalies in truth-affected sessions")
			}
			// Each of these corpora cycles through two injected fault
			// kinds, and each kind concentrates in its own dominant
			// cluster: the top cluster must hold a quarter of the truth
			// anomalies on its own and the top two a majority together.
			var domID, secondID uint64
			dom, second := 0, 0
			for id, n := range byCluster {
				switch {
				case n > dom || (n == dom && id < domID):
					secondID, second = domID, dom
					domID, dom = id, n
				case n > second || (n == second && id < secondID):
					secondID, second = id, n
				}
			}
			if share := float64(dom) / float64(total); share < 0.25 {
				t.Fatalf("dominant cluster holds %d/%d truth anomalies (share %.2f < 0.25)", dom, total, share)
			}
			if share := float64(dom+second) / float64(total); share < 0.5 {
				t.Fatalf("top two clusters hold %d/%d truth anomalies (share %.2f < 0.5)", dom+second, total, share)
			}

			var cluster *analytics.Cluster
			for _, cl := range e.Snapshot().Clusters {
				if cl.ID == domID {
					cl := cl
					cluster = &cl
					break
				}
			}
			if cluster == nil {
				t.Fatalf("dominant cluster %d missing from snapshot", domID)
			}
			if cluster.Explanation == nil || len(cluster.Explanation.Path) == 0 {
				t.Fatalf("dominant cluster has no explanation path")
			}
			onPath := false
			for _, step := range cluster.Explanation.Path {
				if faultGroups[step.Group] {
					onPath = true
					break
				}
			}
			if !onPath {
				t.Errorf("explanation path %v misses every faulted group %v",
					cluster.Explanation.Path, sortedGroups(faultGroups))
			}
		})
	}
}

func sortedGroups(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BenchmarkClusterIngest measures the analytics engine's ingest +
// snapshot rate over the bench corpus's anomalies. logs_per_sec is the
// record-stream-equivalent rate (corpus records per second of
// clustering work), directly comparable to the detect benches: the
// engine keeps up with emission as long as it stays above their
// logs/sec.
func BenchmarkClusterIngest(b *testing.B) {
	c, d := benchSetup(b)
	rep := BatchPath(d, c.Records)
	if len(rep.Anomalies) == 0 {
		b.Fatal("bench corpus produced no anomalies")
	}
	graph := ModelFor(c.Spec.Framework).Graph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := analytics.NewEngine(analytics.Config{}, graph)
		e.ObserveBatch(rep.Anomalies)
		if snap := e.Snapshot(); len(snap.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
	sec := b.Elapsed().Seconds()
	anomaliesPerSec := float64(len(rep.Anomalies)*b.N) / sec
	logsPerSec := float64(len(c.Records)*b.N) / sec
	b.ReportMetric(anomaliesPerSec, "anomalies/sec")
	b.ReportMetric(logsPerSec, "logs/sec")
	writeDetectBenchJSON(b, "BenchmarkClusterIngest", map[string]float64{
		"logs_per_sec":      logsPerSec,
		"anomalies_per_sec": anomaliesPerSec,
		"anomalies_per_op":  float64(len(rep.Anomalies)),
	})
}
