package conformance

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"intellog/internal/logging"
)

// TestBytePathDifferential proves the zero-copy byte-slice front end is
// semantically invisible on every corpus of the matrix: render each
// session back to its raw on-disk line format, parse it through both
// ParseLines (string path) and ParseLinesBytes (the mmap'd batch path),
// and require (a) record-identical parses and (b) byte-identical
// canonical reports from batch detection over the two parses. Rendering
// round-trips the multi-line messages the line-fault corpora produce,
// so the continuation-line logic is exercised on both sides.
func TestBytePathDifferential(t *testing.T) {
	for _, spec := range DefaultMatrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			corpus := spec.Generate()
			f := logging.FormatterFor(spec.Framework)

			// Render per session, as the per-session .log files on disk
			// would hold the stream.
			var stringRecs, byteRecs []logging.Record
			for _, sess := range logging.GroupSessions(corpus.Records) {
				var sb strings.Builder
				for _, rec := range sess.Records {
					sb.WriteString(f.Render(rec))
					sb.WriteByte('\n')
				}
				text := sb.String()

				viaStrings := logging.ParseLines(f, strings.Split(text, "\n"))
				viaBytes := logging.ParseLinesBytes(f, []byte(text))
				if !reflect.DeepEqual(viaBytes, viaStrings) {
					t.Fatalf("session %s: byte parse diverges from string parse", sess.ID)
				}
				for i := range viaStrings {
					viaStrings[i].SessionID = sess.ID
					viaBytes[i].SessionID = sess.ID
				}
				stringRecs = append(stringRecs, viaStrings...)
				byteRecs = append(byteRecs, viaBytes...)
			}

			d := ModelFor(spec.Framework).Detector()
			want, err := Canonicalize(BatchPath(d, stringRecs))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Canonicalize(BatchPath(d, byteRecs))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("byte-path report diverges from string-path report\nstring:\n%s\nbytes:\n%s", want, got)
			}
		})
	}
}
