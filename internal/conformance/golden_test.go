package conformance

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"intellog/internal/experiments"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./internal/conformance -run TestExperimentsGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenOpts pins the evaluation the golden file captures: small enough
// to regenerate in a few seconds, large enough that every table and
// figure renders real content. Changing these invalidates the golden —
// regenerate with -update and review the diff.
var goldenOpts = experiments.RunOptions{Run: "all", TrainJobs: 6, Seed: 7}

// TestExperimentsGolden regenerates the full cmd/experiments output
// (every table and figure of §6) and diffs it byte-for-byte against the
// checked-in golden. Any change to parsing, extraction, graph modeling,
// detection or table formatting shows up here as a reviewable diff
// instead of silent drift.
func TestExperimentsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating the evaluation takes a few seconds; skipped with -short")
	}
	var buf bytes.Buffer
	if err := experiments.Run(&buf, goldenOpts); err != nil {
		t.Fatalf("experiments.Run: %v", err)
	}
	golden := filepath.Join("testdata", "experiments_train6_seed7.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Show the first divergent line with context; the full regenerated
	// output is written next to the golden for offline diffing.
	got := buf.Bytes()
	rej := golden + ".rej"
	if err := os.WriteFile(rej, got, 0o644); err != nil {
		t.Logf("could not write %s: %v", rej, err)
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("experiments output diverged from golden at line %d:\n  golden: %s\n  got:    %s\n(full output in %s; refresh with -update if intended)",
				i+1, wl[i], gl[i], rej)
		}
	}
	t.Fatalf("experiments output diverged from golden: %d lines vs %d (full output in %s; refresh with -update if intended)",
		len(gl), len(wl), rej)
}

// TestExperimentsRunUnknownName covers Run's error path (the CLI exits 2
// on it).
func TestExperimentsRunUnknownName(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.Run(&buf, experiments.RunOptions{Run: "nope"}); err == nil {
		t.Fatal("unknown run name accepted")
	}
}
