// Package conformance is the repo's correctness substrate: a reusable
// harness that (a) generates seeded detection corpora from the simulated
// cluster (frameworks × fault profiles × sizes), (b) proves the batch,
// sharded-streaming and checkpoint/kill/resume execution paths produce
// byte-identical canonicalized reports (the differential oracle), and
// (c) scores detection against the simulator's ground-truth annotations,
// enforcing per-framework precision/recall/F1 floors as regression gates.
// Every future perf or refactor PR inherits these tests: if a change
// perturbs detection semantics, the oracle or a gate fails loudly instead
// of a table in experiments_output.txt drifting silently.
package conformance

import (
	"sort"
	"sync"

	"intellog/internal/core"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

// Harness-wide seeds. Corpora carry their own seeds (Spec.Seed); these
// only pin the shared reference models.
const (
	harnessSeed      = 101
	harnessTrainJobs = 12
)

// Spec describes one generated conformance corpus.
type Spec struct {
	// Name labels the corpus in test output.
	Name string
	// Framework selects the simulated system.
	Framework logging.Framework
	// Jobs is the number of jobs submitted.
	Jobs int
	// Faults is the per-job fault cycle (job i gets Faults[i mod len]);
	// empty means every job is clean.
	Faults []sim.FaultKind
	// Seed drives the cluster, workload draws and (when enabled) the
	// line-level fault injector, so a Spec regenerates identically.
	Seed int64
	// LineFaults additionally perturbs the aggregated record stream with
	// a sim.FaultInjector (truncation, corruption, duplication, bounded
	// reordering, mid-session cuts) — the collection-pipeline fault model,
	// applied before every execution path so the differential oracle still
	// holds on mangled input.
	LineFaults bool
	// Hostile reshapes the aggregated stream's arrival pattern (bursts,
	// clock skew, tenant churn, duplicate storms — see workload.ApplyHostile)
	// after interleaving and before LineFaults. Time-only profiles keep the
	// corpus accuracy-gateable; dupstorm corpora are oracle-only.
	Hostile workload.HostileProfile
}

// Corpus is one generated detection corpus: a time-ordered aggregated
// record stream plus the simulator's ground truth.
type Corpus struct {
	Spec Spec
	// Records is the aggregated stream, interleaved across sessions in
	// timestamp order — what the online detector would consume live, and
	// what logging.GroupSessions turns into the batch view.
	Records []logging.Record
	// Truth marks the session IDs the injected faults touched.
	Truth map[string]bool
	// SessionIDs lists every generated session, in job/session order
	// (before any line-fault perturbation).
	SessionIDs []string
}

// Generate builds the corpus. Same Spec ⇒ byte-identical corpus: the
// cluster, workload generator and fault injector are all seeded from
// Spec.Seed.
func (sp Spec) Generate() *Corpus {
	cluster := sim.NewCluster(26, sp.Seed)
	gen := workload.NewGenerator(cluster, sp.Seed+1)
	var jobs []*sim.JobResult
	for i := 0; i < sp.Jobs; i++ {
		fault := sim.FaultNone
		if len(sp.Faults) > 0 {
			fault = sp.Faults[i%len(sp.Faults)]
		}
		jobs = append(jobs, gen.Submit(sp.Framework, fault))
	}

	var recs []logging.Record
	var ids []string
	for _, j := range jobs {
		for _, s := range j.Sessions {
			ids = append(ids, s.ID)
			for _, r := range s.Records {
				r.SessionID = s.ID
				r.Framework = s.Framework
				recs = append(recs, r)
			}
		}
	}
	// Interleave sessions the way an aggregated stream arrives: by
	// timestamp, stable so equal-time records keep emission order.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })

	if sp.Hostile != "" {
		recs = workload.ApplyHostile(sp.Hostile, recs, sp.Seed+3)
	}

	if sp.LineFaults {
		inj := sim.NewFaultInjector(sp.Seed + 2)
		inj.TruncateProb = 0.03
		inj.CorruptProb = 0.03
		inj.DuplicateProb = 0.05
		inj.ReorderWindow = 4
		inj.CutProb = 0.25
		recs = inj.Perturb(recs)
	}

	return &Corpus{Spec: sp, Records: recs, Truth: sim.MergeAffected(jobs), SessionIDs: ids}
}

// Sessions returns the corpus's batch view: records grouped by session,
// ordered by first-record time (the same view Detector.Detect scores).
func (c *Corpus) Sessions() []*logging.Session {
	return logging.GroupSessions(c.Records)
}

// DefaultMatrix is the corpus matrix the conformance tests run: every
// simulated framework, clean and fault-injected jobs, two sizes, corpora
// with line-level (collection-pipeline) faults on top, and hostile
// traffic profiles (burst, clock skew, tenant churn, duplicate storms).
// New corpora are appended — several tests pin entries by index.
func DefaultMatrix() []Spec {
	return []Spec{
		{Name: "spark-clean", Framework: logging.Spark, Jobs: 4, Seed: 201},
		{Name: "spark-faulted", Framework: logging.Spark, Jobs: 6, Seed: 202,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork}},
		{Name: "mapreduce-faulted", Framework: logging.MapReduce, Jobs: 6, Seed: 203,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultNode, sim.FaultKill}},
		{Name: "tez-faulted", Framework: logging.Tez, Jobs: 6, Seed: 204,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultNetwork, sim.FaultNode}},
		{Name: "spark-large-mixed", Framework: logging.Spark, Jobs: 10, Seed: 205,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork, sim.FaultNode, sim.FaultSlowShutdown}},
		{Name: "mapreduce-line-faults", Framework: logging.MapReduce, Jobs: 5, Seed: 206,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill}, LineFaults: true},
		{Name: "tez-line-faults", Framework: logging.Tez, Jobs: 4, Seed: 207,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultNetwork}, LineFaults: true},
		{Name: "tensorflow-faulted", Framework: logging.TensorFlow, Jobs: 6, Seed: 208,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork}},
		{Name: "flink-faulted", Framework: logging.Flink, Jobs: 6, Seed: 209,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork}},
		{Name: "hdfs-faulted", Framework: logging.HDFS, Jobs: 6, Seed: 210,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultNetwork, sim.FaultKill}},
		{Name: "yarnrm-failover", Framework: logging.YarnRM, Jobs: 6, Seed: 211,
			Faults: []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork}},
		{Name: "spark-hostile-burst", Framework: logging.Spark, Jobs: 6, Seed: 218,
			Faults:  []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNetwork},
			Hostile: workload.HostileBurst},
		{Name: "flink-hostile-skew", Framework: logging.Flink, Jobs: 5, Seed: 213,
			Faults:  []sim.FaultKind{sim.FaultNone, sim.FaultNetwork, sim.FaultKill},
			Hostile: workload.HostileSkew},
		{Name: "mapreduce-hostile-churn", Framework: logging.MapReduce, Jobs: 5, Seed: 214,
			Faults:  []sim.FaultKind{sim.FaultNone, sim.FaultKill, sim.FaultNode},
			Hostile: workload.HostileChurn},
		{Name: "hdfs-hostile-dupstorm-linefaults", Framework: logging.HDFS, Jobs: 4, Seed: 215,
			Faults:  []sim.FaultKind{sim.FaultNone, sim.FaultNetwork},
			Hostile: workload.HostileDupStorm, LineFaults: true},
	}
}

// GatedSpecs are the corpora the accuracy gates score: per framework, a
// mix of clean jobs and the three real injected problems (§6.4), with no
// line-level mangling — corrupt message bytes would create unexpected-
// message findings in clean sessions and measure the injector, not the
// detector. Hostile corpora are gated only for time-only profiles:
// detection is order-based and never consults timestamps, so burst /
// skew / churn must not move accuracy, while dupstorm legitimately
// changes what the detector sees and stays oracle-only.
func GatedSpecs() []Spec {
	m := DefaultMatrix()
	var out []Spec
	for i, sp := range m {
		if i == 0 || sp.LineFaults || (sp.Hostile != "" && !sp.Hostile.TimeOnly()) {
			continue
		}
		if sp.Name == "spark-large-mixed" {
			// Mixed-fault jumbo corpus: oracle coverage, not a gate — the
			// SlowShutdown benign-config scenario is the paper's designed
			// false positive.
			continue
		}
		out = append(out, sp)
	}
	return out
}

// models caches one trained reference model per framework; training is
// the expensive part of the harness and every test shares it.
var models = struct {
	sync.Mutex
	byFW  map[logging.Framework]*core.Model
	train map[logging.Framework][]*logging.Session
}{byFW: map[logging.Framework]*core.Model{}, train: map[logging.Framework][]*logging.Session{}}

// TrainingSessions returns (and caches) the harness's clean training
// corpus for a framework. The training cluster is separate from every
// corpus cluster, so detection always runs on unseen jobs.
func TrainingSessions(fw logging.Framework) []*logging.Session {
	models.Lock()
	defer models.Unlock()
	return trainingLocked(fw)
}

func trainingLocked(fw logging.Framework) []*logging.Session {
	if s, ok := models.train[fw]; ok {
		return s
	}
	cluster := sim.NewCluster(26, harnessSeed)
	gen := workload.NewGenerator(cluster, harnessSeed+1)
	s := gen.TrainingCorpus(fw, harnessTrainJobs)
	models.train[fw] = s
	return s
}

// ModelFor returns (and caches) the trained reference model for a
// framework.
func ModelFor(fw logging.Framework) *core.Model {
	models.Lock()
	defer models.Unlock()
	if m, ok := models.byFW[fw]; ok {
		return m
	}
	m := core.Train(trainingLocked(fw), core.Config{})
	models.byFW[fw] = m
	return m
}
