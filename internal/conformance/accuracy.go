package conformance

import (
	"fmt"

	"intellog/internal/detect"
	"intellog/internal/logging"
)

// Accuracy gates: detection scored at session granularity against the
// simulator's fault annotations (Table 4/8 shape), with per-framework
// floors enforced as test failures instead of printed tables. The floors
// are set well below the currently measured scores (see
// conformance_test.go for the measured values) so simulator noise across
// seeds passes, but a real detection regression — a lost check, a parser
// change that stops keys matching, a broken session ordering — lands far
// below them.

// Score is a session-granularity detection score. A session counts as a
// true positive when the detector flags it and the simulator marked it
// fault-affected.
type Score struct {
	Sessions  int
	TP        int
	FP        int
	FN        int
	Precision float64
	Recall    float64
	F1        float64
}

// String renders the score compactly for test output.
func (s Score) String() string {
	return fmt.Sprintf("sessions=%d tp=%d fp=%d fn=%d P=%.3f R=%.3f F1=%.3f",
		s.Sessions, s.TP, s.FP, s.FN, s.Precision, s.Recall, s.F1)
}

// ScoreReport scores one detection report against ground truth over the
// given sessions.
func ScoreReport(rep *detect.Report, sessions []*logging.Session, truth map[string]bool) Score {
	flagged := map[string]bool{}
	for _, id := range rep.ProblematicSessions() {
		flagged[id] = true
	}
	s := Score{Sessions: len(sessions)}
	for _, sess := range sessions {
		problem := truth[sess.ID]
		switch {
		case flagged[sess.ID] && problem:
			s.TP++
		case flagged[sess.ID] && !problem:
			s.FP++
		case !flagged[sess.ID] && problem:
			s.FN++
		}
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// Gate is one framework's accuracy floor.
type Gate struct {
	Framework    logging.Framework
	MinPrecision float64
	MinRecall    float64
	MinF1        float64
}

// Check returns a loud error when the score is below any floor.
func (g Gate) Check(s Score) error {
	if s.TP+s.FN == 0 {
		return fmt.Errorf("%s: no fault-affected sessions in corpus — gate cannot score", g.Framework)
	}
	var fails []string
	if s.Precision < g.MinPrecision {
		fails = append(fails, fmt.Sprintf("precision %.3f < floor %.3f", s.Precision, g.MinPrecision))
	}
	if s.Recall < g.MinRecall {
		fails = append(fails, fmt.Sprintf("recall %.3f < floor %.3f", s.Recall, g.MinRecall))
	}
	if s.F1 < g.MinF1 {
		fails = append(fails, fmt.Sprintf("F1 %.3f < floor %.3f", s.F1, g.MinF1))
	}
	if len(fails) > 0 {
		return fmt.Errorf("accuracy gate FAILED for %s (%s): %v — detection regressed vs the simulator ground truth",
			g.Framework, s, fails)
	}
	return nil
}

// DefaultGates are the per-framework floors over the GatedSpecs corpora.
// Measured scores at the pinned seeds (documented so floor updates stay
// honest):
//
//	spark      P=1.000 R=1.000 F1=1.000
//	mapreduce  P=1.000 R=1.000 F1=1.000 (clean-faulted and hostile-churn)
//	tez        P=0.960 R=1.000 F1=0.980
//	tensorflow P=1.000 R=1.000 F1=1.000
//	flink      P=1.000 R=1.000 F1=1.000 (clean-faulted and hostile-skew)
//	hdfs       P=1.000 R=1.000 F1=1.000
//	yarn-rm    P=1.000 R=1.000 F1=1.000
//	spark+burst P=1.000 R=1.000 F1=1.000
//
// Floors sit ≥ 10 points under the measured precision and exactly tight
// enough on recall that disabling the structural checks (critical keys,
// hierarchy, missing groups) lands below them — see
// TestGatesCatchCrippledDetector, which measured R=0.857 for that
// mutation.
var DefaultGates = map[logging.Framework]Gate{
	logging.Spark:      {Framework: logging.Spark, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.MapReduce:  {Framework: logging.MapReduce, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.Tez:        {Framework: logging.Tez, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.TensorFlow: {Framework: logging.TensorFlow, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.Flink:      {Framework: logging.Flink, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.HDFS:       {Framework: logging.HDFS, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
	logging.YarnRM:     {Framework: logging.YarnRM, MinPrecision: 0.85, MinRecall: 0.90, MinF1: 0.90},
}
