package conformance

import (
	"os"
	"runtime"
	"testing"

	"intellog/internal/benchjson"
	"intellog/internal/detect"
	"intellog/internal/logging"
)

// Detection throughput over a real conformance corpus, archived with the
// same schema as the spell/throughput suite: setting
// INTELLOG_BENCH_DETECT_JSON=BENCH_detect.json merges each bench's
// headline numbers into that file, keeping the detection perf trajectory
// machine-readable alongside BENCH_spell.json.

func writeDetectBenchJSON(b *testing.B, name string, metrics map[string]float64) {
	if err := benchjson.Merge(os.Getenv("INTELLOG_BENCH_DETECT_JSON"), name, metrics); err != nil {
		b.Fatal(err)
	}
}

// allocCounter snapshots the runtime's cumulative malloc count so a
// bench can archive allocs-per-record alongside logs/sec — the number
// the pooled batch path exists to push down, guarded lower-is-better by
// scripts/bench_compare.sh.
type allocCounter struct{ start uint64 }

func startAllocCount() allocCounter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return allocCounter{start: ms.Mallocs}
}

func (a allocCounter) perRecord(records int) float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if records <= 0 {
		return 0
	}
	return float64(ms.Mallocs-a.start) / float64(records)
}

// benchCorpus is the largest clean-ish corpus of the matrix, generated
// once per bench process.
var benchCorpus *Corpus

func benchSetup(b *testing.B) (*Corpus, *detect.Detector) {
	if benchCorpus == nil {
		benchCorpus = DefaultMatrix()[4].Generate() // spark-large-mixed
	}
	return benchCorpus, ModelFor(logging.Spark).Detector()
}

// BenchmarkConformanceBatchDetect measures batch detection throughput
// over the corpus's session view.
func BenchmarkConformanceBatchDetect(b *testing.B) {
	c, d := benchSetup(b)
	sessions := c.Sessions()
	b.ReportAllocs()
	b.ResetTimer()
	ac := startAllocCount()
	for i := 0; i < b.N; i++ {
		if rep := d.Detect(sessions); rep.Sessions != len(sessions) {
			b.Fatalf("report covers %d sessions, want %d", rep.Sessions, len(sessions))
		}
	}
	allocsPerRecord := ac.perRecord(len(c.Records) * b.N)
	logsPerSec := float64(len(c.Records)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(logsPerSec, "logs/sec")
	writeDetectBenchJSON(b, "BenchmarkConformanceBatchDetect", map[string]float64{
		"logs_per_sec":      logsPerSec,
		"logs_per_op":       float64(len(c.Records)),
		"allocs_per_record": allocsPerRecord,
	})
}

// benchMatrixCorpora are the new-framework corpora of the matrix, each
// detected with its own framework's model — the breadth counterpart to
// the spark-only benches above.
var benchMatrixCorpora []*Corpus

// BenchmarkConformanceBatchDetectMatrix measures batch detection across
// the matrix's new-framework corpora (TensorFlow, Flink, HDFS, YARN RM),
// one Detect per corpus per iteration.
func BenchmarkConformanceBatchDetectMatrix(b *testing.B) {
	if benchMatrixCorpora == nil {
		m := DefaultMatrix()
		for _, sp := range m[7:11] { // tensorflow-faulted … yarnrm-failover
			benchMatrixCorpora = append(benchMatrixCorpora, sp.Generate())
		}
	}
	type unit struct {
		sessions []*logging.Session
		d        *detect.Detector
	}
	var units []unit
	records := 0
	for _, c := range benchMatrixCorpora {
		units = append(units, unit{c.Sessions(), ModelFor(c.Spec.Framework).Detector()})
		records += len(c.Records)
	}
	b.ReportAllocs()
	b.ResetTimer()
	ac := startAllocCount()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			if rep := u.d.Detect(u.sessions); rep.Sessions != len(u.sessions) {
				b.Fatalf("report covers %d sessions, want %d", rep.Sessions, len(u.sessions))
			}
		}
	}
	allocsPerRecord := ac.perRecord(records * b.N)
	logsPerSec := float64(records*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(logsPerSec, "logs/sec")
	writeDetectBenchJSON(b, "BenchmarkConformanceBatchDetectMatrix", map[string]float64{
		"logs_per_sec":      logsPerSec,
		"logs_per_op":       float64(records),
		"allocs_per_record": allocsPerRecord,
	})
}

// BenchmarkConformanceStreamDetect measures the sharded streaming path
// over the same record stream, consumed one record at a time.
func BenchmarkConformanceStreamDetect(b *testing.B) {
	c, d := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	ac := startAllocCount()
	for i := 0; i < b.N; i++ {
		sd := detect.NewStream(d, detect.StreamConfig{Shards: 16})
		for _, r := range c.Records {
			sd.Consume(r)
		}
		sd.Flush()
	}
	allocsPerRecord := ac.perRecord(len(c.Records) * b.N)
	logsPerSec := float64(len(c.Records)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(logsPerSec, "logs/sec")
	writeDetectBenchJSON(b, "BenchmarkConformanceStreamDetect", map[string]float64{
		"logs_per_sec":      logsPerSec,
		"logs_per_op":       float64(len(c.Records)),
		"allocs_per_record": allocsPerRecord,
	})
}
