package spell

// Token interning: every distinct token string is assigned a dense int32
// ID once, so the hot matching paths (positional match, LCS merge) compare
// integers instead of strings and the variableLooking classification is
// computed once per distinct token instead of once per occurrence.
//
// The interner is written only while the owning Parser consumes (training
// is single-threaded per parser). Lookup never touches it — positional
// matching probes the anchor index by token text — so concurrent readers
// only ever see the read-only per-key ID slices.

// wildcardID is the interned ID of Wildcard. It is always 0: the
// interner reserves it at construction.
const wildcardID int32 = 0

// interner maps token strings to dense int32 IDs and back.
type interner struct {
	ids map[string]int32
	// toks is the inverse table: toks[id] is the token text.
	toks []string
	// vari caches variableLooking per distinct token.
	vari []bool
}

func newInterner() *interner {
	in := &interner{ids: make(map[string]int32, 256)}
	in.intern(Wildcard) // reserve id 0
	return in
}

// intern returns the ID for tok, assigning a fresh one on first sight.
// Write path — only the consuming goroutine may call it.
func (in *interner) intern(tok string) int32 {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := int32(len(in.toks))
	in.ids[tok] = id
	in.toks = append(in.toks, tok)
	in.vari = append(in.vari, variableLooking(tok))
	return id
}

// token returns the text of an interned ID.
func (in *interner) token(id int32) string { return in.toks[id] }

// variable reports variableLooking for an interned ID.
func (in *interner) variable(id int32) bool { return in.vari[id] }
