package spell_test

import (
	"fmt"
	"sync"
	"testing"

	"intellog/internal/spell"
)

func TestLookupCacheHitMissAndNegative(t *testing.T) {
	c := spell.NewLookupCache(4)
	if _, hit := c.Get("a"); hit {
		t.Fatal("empty cache reported a hit")
	}
	k := &spell.Key{ID: 3, Tokens: []string{"a"}}
	c.Add("a", k)
	if got, hit := c.Get("a"); !hit || got != k {
		t.Fatalf("Get(a) = %v, %v", got, hit)
	}
	// Negative entries are hits carrying a nil key.
	c.Add("miss", nil)
	if got, hit := c.Get("miss"); !hit || got != nil {
		t.Fatalf("negative Get = %v, %v; want nil, true", got, hit)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2 hits / 1 miss", hits, misses)
	}
}

func TestLookupCacheEvictsLRU(t *testing.T) {
	c := spell.NewLookupCache(3)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("m%d", i), &spell.Key{ID: i})
	}
	c.Get("m0") // m0 becomes most recent; m1 is now LRU
	c.Add("m3", &spell.Key{ID: 3})
	if _, hit := c.Get("m1"); hit {
		t.Fatal("LRU entry m1 survived eviction")
	}
	for _, m := range []string{"m0", "m2", "m3"} {
		if _, hit := c.Get(m); !hit {
			t.Fatalf("%s evicted unexpectedly", m)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestLookupCacheUpdateExisting(t *testing.T) {
	c := spell.NewLookupCache(2)
	c.Add("m", nil)
	k := &spell.Key{ID: 9}
	c.Add("m", k)
	if got, hit := c.Get("m"); !hit || got != k {
		t.Fatalf("updated entry = %v, %v", got, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Add, want 1", c.Len())
	}
}

// TestLookupCacheFastPathBoundary pins the recency semantics at exactly
// the cap/2 fast-path cutoff: once Len reaches cap/2, hits switch to the
// write-locked path and start updating LRU order; below it they do not.
func TestLookupCacheFastPathBoundary(t *testing.T) {
	// At the boundary (Len == cap/2) a Get refreshes recency, so the
	// touched entry survives eviction.
	c := spell.NewLookupCache(4)
	c.Add("m0", &spell.Key{ID: 0})
	c.Add("m1", &spell.Key{ID: 1})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (= cap/2)", c.Len())
	}
	c.Get("m0") // slow path: moves m0 to front, m1 becomes LRU
	c.Add("m2", &spell.Key{ID: 2})
	c.Add("m3", &spell.Key{ID: 3})
	c.Add("m4", &spell.Key{ID: 4}) // evicts
	if _, hit := c.Get("m1"); hit {
		t.Error("m1 survived; Get at the boundary should have refreshed m0, making m1 the LRU")
	}
	if _, hit := c.Get("m0"); !hit {
		t.Error("m0 evicted despite boundary-path recency refresh")
	}

	// Below the boundary (Len < cap/2) a Get is served lock-shared and
	// recency is deliberately NOT refreshed — the entry is nowhere near
	// eviction at that point, and insertion order decides later.
	c2 := spell.NewLookupCache(6)
	c2.Add("a0", &spell.Key{ID: 0})
	c2.Add("a1", &spell.Key{ID: 1})
	c2.Get("a0") // fast path: no recency update
	for i := 2; i < 7; i++ {
		c2.Add(fmt.Sprintf("a%d", i), &spell.Key{ID: i})
	}
	if _, hit := c2.Get("a0"); hit {
		t.Error("a0 survived; fast-path Get must not have refreshed recency")
	}
	if _, hit := c2.Get("a1"); !hit {
		t.Error("a1 evicted out of insertion order")
	}
}

// TestLookupCacheAddAuxOverwritesCachedMiss covers the memo-rebuild path:
// a plain cached miss later gains a key and an aux memo in place.
func TestLookupCacheAddAuxOverwritesCachedMiss(t *testing.T) {
	c := spell.NewLookupCache(4)
	c.Add("m", nil)
	if k, aux, hit := c.GetAux("m"); !hit || k != nil || aux != nil {
		t.Fatalf("cached miss = (%v, %v, %v), want (nil, nil, true)", k, aux, hit)
	}
	key := &spell.Key{ID: 5}
	memo := "memoized lookup"
	c.AddAux("m", key, memo)
	k, aux, hit := c.GetAux("m")
	if !hit || k != key || aux != memo {
		t.Fatalf("overwritten entry = (%v, %v, %v), want key+aux hit", k, aux, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after in-place overwrite, want 1", c.Len())
	}
}

// TestLookupCacheStatsConcurrentReaders hammers Get/GetAux/Stats from
// parallel readers while a writer churns entries; under -race it proves
// the lock-free counters, and afterwards hits+misses must equal the exact
// number of reads issued.
func TestLookupCacheStatsConcurrentReaders(t *testing.T) {
	// Capacity exceeds everything added below, so the hot keys can never
	// be evicted and the hit/miss split is exact, not racy.
	c := spell.NewLookupCache(1024)
	for i := 0; i < 8; i++ {
		c.Add(fmt.Sprintf("hot%d", i), &spell.Key{ID: i})
	}
	const readers, reads = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if i%2 == 0 {
					c.Get(fmt.Sprintf("hot%d", i%8))
				} else {
					c.GetAux(fmt.Sprintf("cold%d-%d", w, i))
				}
				if i%100 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	// A concurrent writer keeps the write lock busy too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.AddAux(fmt.Sprintf("churn%d", i), nil, i)
		}
	}()
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != readers*reads {
		t.Errorf("hits %d + misses %d = %d, want %d reads", hits, misses, hits+misses, readers*reads)
	}
	if hits != readers*reads/2 || misses != readers*reads/2 {
		t.Errorf("hits %d / misses %d, want an exact %d/%d split", hits, misses, readers*reads/2, readers*reads/2)
	}
}

// TestLookupCacheConcurrent exercises the cache and a trained parser from
// many goroutines; run with -race it proves the concurrent-reader
// contract of the acceptance criteria.
func TestLookupCacheConcurrent(t *testing.T) {
	p := spell.NewParser(0)
	var msgs [][]string
	for i := 0; i < 64; i++ {
		m := []string{"task", fmt.Sprint(i), "finished", "on", fmt.Sprintf("host_%d", i%5)}
		p.Consume(append([]string(nil), m...))
		msgs = append(msgs, m)
	}
	c := spell.NewLookupCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m := msgs[(i+w)%len(msgs)]
				raw := fmt.Sprint(m)
				k, hit := c.Get(raw)
				if !hit {
					k = p.Lookup(m)
					c.Add(raw, k)
				}
				if k == nil {
					t.Errorf("trained message %v failed to match", m)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
