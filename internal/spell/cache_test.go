package spell_test

import (
	"fmt"
	"sync"
	"testing"

	"intellog/internal/spell"
)

func TestLookupCacheHitMissAndNegative(t *testing.T) {
	c := spell.NewLookupCache(4)
	if _, hit := c.Get("a"); hit {
		t.Fatal("empty cache reported a hit")
	}
	k := &spell.Key{ID: 3, Tokens: []string{"a"}}
	c.Add("a", k)
	if got, hit := c.Get("a"); !hit || got != k {
		t.Fatalf("Get(a) = %v, %v", got, hit)
	}
	// Negative entries are hits carrying a nil key.
	c.Add("miss", nil)
	if got, hit := c.Get("miss"); !hit || got != nil {
		t.Fatalf("negative Get = %v, %v; want nil, true", got, hit)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2 hits / 1 miss", hits, misses)
	}
}

func TestLookupCacheEvictsLRU(t *testing.T) {
	c := spell.NewLookupCache(3)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("m%d", i), &spell.Key{ID: i})
	}
	c.Get("m0") // m0 becomes most recent; m1 is now LRU
	c.Add("m3", &spell.Key{ID: 3})
	if _, hit := c.Get("m1"); hit {
		t.Fatal("LRU entry m1 survived eviction")
	}
	for _, m := range []string{"m0", "m2", "m3"} {
		if _, hit := c.Get(m); !hit {
			t.Fatalf("%s evicted unexpectedly", m)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestLookupCacheUpdateExisting(t *testing.T) {
	c := spell.NewLookupCache(2)
	c.Add("m", nil)
	k := &spell.Key{ID: 9}
	c.Add("m", k)
	if got, hit := c.Get("m"); !hit || got != k {
		t.Fatalf("updated entry = %v, %v", got, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Add, want 1", c.Len())
	}
}

// TestLookupCacheConcurrent exercises the cache and a trained parser from
// many goroutines; run with -race it proves the concurrent-reader
// contract of the acceptance criteria.
func TestLookupCacheConcurrent(t *testing.T) {
	p := spell.NewParser(0)
	var msgs [][]string
	for i := 0; i < 64; i++ {
		m := []string{"task", fmt.Sprint(i), "finished", "on", fmt.Sprintf("host_%d", i%5)}
		p.Consume(append([]string(nil), m...))
		msgs = append(msgs, m)
	}
	c := spell.NewLookupCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m := msgs[(i+w)%len(msgs)]
				raw := fmt.Sprint(m)
				k, hit := c.Get(raw)
				if !hit {
					k = p.Lookup(m)
					c.Add(raw, k)
				}
				if k == nil {
					t.Errorf("trained message %v failed to match", m)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
